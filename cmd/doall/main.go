// Command doall runs one work-performing protocol on an (n, t) instance
// under a chosen failure pattern and prints the paper's cost measures. The
// sweep subcommand crosses protocols × failure patterns × (n, t) grids ×
// seeds and runs the whole set in parallel via internal/batch. The explore
// subcommand walks the instance's crash-schedule space (exhaustively, or by
// worst-case search) and certifies the paper's bounds on every execution.
// The live subcommand runs a protocol on the concurrent execution plane —
// one goroutine per process over a latency-modelled transport — optionally
// replaying a crash schedule and comparing against the sim plane. The serve
// and join subcommands split the same live plane across OS processes: serve
// hosts the coordinator and listens, each join hosts a slice of the workers
// over TCP or a unix socket, and killing a join mid-run is a real crash
// fault with the same certificate semantics as a scheduled crash.
//
// Usage:
//
//	doall -protocol B -units 256 -workers 16 -failures cascade
//	doall -protocol C -units 16 -workers 8 -failures random -crash-p 0.05 -seed 7
//	doall -protocol D -units 256 -workers 16 -failures schedule -crash 1@10 -crash 2@20
//	doall sweep -protocols a,b,d -failures none,cascade,random -units 64,256 -workers 8,16 -seeds 1,2
//	doall explore -protocol A -n 8 -t 3 -crashes 2
//	doall explore -protocol B -n 64 -t 8 -crashes 7 -mode search -budget 5000
//	doall live -protocol B -units 256 -workers 16 -schedule 0@a7:keep:p0,1@r4 -jitter 100us -compare
//	doall live -protocol D -units 512 -workers 64 -seed 7 -compare
//	doall serve -protocol B -units 256 -workers 16 -joins 2 -listen 127.0.0.1:9095 -compare
//	doall join -connect 127.0.0.1:9095
//	doall serve -protocol D -units 64 -workers 8 -joins 2 -listen unix:/tmp/doall.sock -chaos-drop 0.1
//	doall join -connect unix:/tmp/doall.sock -chaos-drop 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/sim"
	"repro/internal/trace"
)

// crashFlags collects repeatable -crash PID@ROUND flags.
type crashFlags []doall.Crash

func (c *crashFlags) String() string { return fmt.Sprint(*c) }

func (c *crashFlags) Set(v string) error {
	pid, round, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("crash spec %q: want PID@ROUND", v)
	}
	p, err := strconv.Atoi(pid)
	if err != nil {
		return fmt.Errorf("crash spec %q: %w", v, err)
	}
	r, err := strconv.ParseInt(round, 10, 64)
	if err != nil {
		return fmt.Errorf("crash spec %q: %w", v, err)
	}
	*c = append(*c, doall.Crash{Process: p, Round: r})
	return nil
}

var protocols = map[string]doall.Protocol{
	"a":                 doall.ProtocolA,
	"b":                 doall.ProtocolB,
	"c":                 doall.ProtocolC,
	"c-lowmsg":          doall.ProtocolCLowMsg,
	"d":                 doall.ProtocolD,
	"trivial":           doall.Trivial,
	"single-checkpoint": doall.SingleCheckpoint,
	"uniform":           doall.UniformCheckpoint,
	"naive":             doall.NaiveSpread,
	"gossip":            doall.Gossip,
}

func main() {
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "sweep":
		err = runSweep(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "explore":
		err = runExplore(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "live":
		err = runLive(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "serve":
		err = runServe(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "join":
		err = runJoin(os.Args[2:])
	default:
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protoName = flag.String("protocol", "b", "protocol: a|b|c|c-lowmsg|d|gossip|trivial|single-checkpoint|uniform|naive")
		units     = flag.Int("units", 64, "number of work units (n)")
		workers   = flag.Int("workers", 16, "number of processes (t)")
		failures  = flag.String("failures", "none", "failure pattern: none|random|cascade|schedule")
		crashP    = flag.Float64("crash-p", 0.02, "per-action crash probability (random)")
		maxCrash  = flag.Int("max-crashes", -1, "max failures (-1 = workers-1)")
		seed      = flag.Int64("seed", 1, "failure seed (random)")
		between   = flag.Int("units-between", -1, "units before each crash (cascade; -1 = n/t)")
		k         = flag.Int("k", 0, "checkpoint count (uniform protocol)")
		bandwidth = flag.Int("bandwidth", 0, "per-round per-process outbound message cap (congested clique; 0 = unlimited)")
		verbose   = flag.Bool("v", false, "print per-worker stats")
		showTrace = flag.Bool("trace", false, "print an ASCII execution timeline")
		crashes   crashFlags
	)
	flag.Var(&crashes, "crash", "scheduled crash PID@ROUND (repeatable; schedule pattern)")
	flag.Parse()

	proto, ok := protocols[strings.ToLower(*protoName)]
	if !ok {
		return fmt.Errorf("unknown protocol %q", *protoName)
	}
	mc := *maxCrash
	if mc < 0 {
		mc = *workers - 1
	}
	ub := *between
	if ub < 0 {
		ub = maxInt(1, *units / *workers)
	}
	var f doall.Failures
	switch *failures {
	case "none":
		f = doall.NoFailures()
	case "random":
		f = doall.RandomFailures(*crashP, mc, *seed)
	case "cascade":
		f = doall.CascadeFailures(ub, mc)
	case "schedule":
		f = doall.ScheduledFailures(crashes...)
	default:
		return fmt.Errorf("unknown failure pattern %q", *failures)
	}

	var rec *trace.Recorder
	cfg := doall.Config{
		Units: *units, Workers: *workers, Protocol: proto,
		Failures: f, CheckpointK: *k, Bandwidth: *bandwidth, CheckInvariants: true,
	}
	if *showTrace {
		rec = trace.NewRecorder(0)
		hook := rec.Hook()
		cfg.Tracer = func(e doall.TraceEvent) {
			hook(sim.Event{
				Round: e.Round, PID: e.Worker, Work: e.Work, Sent: e.Sent,
				Crashed: e.Crashed, Halted: e.Halted,
			})
		}
	}
	res, err := doall.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("protocol:  %v (n=%d, t=%d, failures=%s)\n", proto, *units, *workers, *failures)
	fmt.Printf("work:      %d performed (%d distinct of %d)\n", res.Work, res.WorkDistinct, *units)
	fmt.Printf("messages:  %s\n", formatMessages(res.Messages, res.MessagesByKind))
	fmt.Printf("effort:    %d\n", res.Effort())
	fmt.Printf("rounds:    %d (simulated %d events)\n", res.Rounds, res.Events)
	fmt.Printf("processes: %d survived, %d crashed\n", res.Survivors, res.Crashes)
	if res.Deferred > 0 {
		fmt.Printf("deferred:  %d sends queued past the bandwidth cap of %d\n", res.Deferred, *bandwidth)
	}
	fmt.Printf("complete:  %v\n", res.Complete)
	if *verbose {
		fmt.Println("\nworker  status      work  sent  retired@")
		for i, w := range res.Workers {
			fmt.Printf("%6d  %-10s  %4d  %4d  %d\n", i, w.Status, w.Work, w.Sent, w.RetireRound)
		}
	}
	if rec != nil {
		fmt.Println()
		fmt.Print(rec.Timeline(160))
		fmt.Println()
		fmt.Print(rec.Summary())
	}
	if res.Survivors > 0 && !res.Complete {
		return fmt.Errorf("GUARANTEE VIOLATED: survivors exist but work incomplete")
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
