package main

import (
	"strings"
	"testing"

	"repro/internal/explore"
)

func mustCrash(t *testing.T, specs ...string) crashFlags {
	t.Helper()
	var c crashFlags
	for _, s := range specs {
		if err := c.Set(s); err != nil {
			t.Fatalf("crash flag %q: %v", s, err)
		}
	}
	return c
}

func TestBuildSchedule(t *testing.T) {
	t.Parallel()
	vec, err := buildSchedule("0@a7:keep:p0,1@r4", mustCrash(t, "2@6", "3@9"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 4 {
		t.Fatalf("merged vector has %d choices, want 4: %v", len(vec), vec)
	}
	want := explore.Choice{Victim: 2, Round: 6}
	if vec[2] != want {
		t.Errorf("crash flag merged as %+v, want %+v", vec[2], want)
	}
	if vec2, err := buildSchedule("", nil, 4); err != nil || vec2 != nil {
		t.Errorf("empty schedule: got (%v, %v), want (nil, nil)", vec2, err)
	}
}

func TestBuildScheduleRejects(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		schedule string
		crashes  crashFlags
		workers  int
		wantErr  string
	}{
		{"malformed schedule", "0@", nil, 8, "-schedule"},
		{"schedule victim out of range", "7@r4", nil, 4, "out of range"},
		{"crash victim out of range", "", mustCrash(t, "7@4"), 4, "out of range"},
		{"negative crash victim", "", mustCrash(t, "-1@4"), 4, "out of range"},
		{"negative crash round", "", mustCrash(t, "1@-4"), 8, "negative round"},
		{"schedule+crash contradiction", "1@r4", mustCrash(t, "1@6"), 8, "already has a fault"},
		{"duplicate crash flags", "", mustCrash(t, "1@4", "1@6"), 8, "already has a fault"},
		{"restart before crash", "1@r6:restart@r3", nil, 8, "bad choice"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := buildSchedule(tc.schedule, tc.crashes, tc.workers)
			if err == nil {
				t.Fatalf("accepted bad input (schedule=%q crashes=%v workers=%d)", tc.schedule, tc.crashes, tc.workers)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error is not one line: %q", err)
			}
		})
	}
}
