package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/explore"
)

// runExplore implements `doall explore`: walk the schedule space of one
// (protocol, n, t) instance — exhaustively for small spaces, by worst-case
// search for larger ones — certifying the paper's bounds on every explored
// execution. Stdout is a pure function of the inputs (timings go to
// stderr), so output is byte-identical for every -jobs value.
func runExplore(args []string) error {
	fs := flag.NewFlagSet("doall explore", flag.ExitOnError)
	var (
		protoName = fs.String("protocol", "a", "protocol: a|b|c|c-lowmsg|d|gossip|gossip-cap|trivial|single-checkpoint|naive")
		n         = fs.Int("n", 8, "number of work units (n)")
		t         = fs.Int("t", 3, "number of processes (t)")
		crashes   = fs.Int("crashes", 2, "max crashes per schedule (at most t-1)")
		depth     = fs.Int("depth", 0, "action-index horizon (0 = probe the failure-free run)")
		maxPrefix = fs.Int("max-prefix", -1, "delivery-prefix cap per crash (-1 = t)")
		mode      = fs.String("mode", "exhaustive", "exhaustive|search")
		budget    = fs.Int("budget", 2048, "schedule budget (search mode)")
		seed      = fs.Int64("seed", 1, "random-phase seed (search mode)")
		objName   = fs.String("objective", "effort", "search objective: effort|work|messages|rounds")
		jobs      = fs.Int("jobs", 0, "parallel shards (0 = GOMAXPROCS, 1 = sequential)")
		maxSched  = fs.Int64("max-schedules", 0, "refuse walks longer than this (0 = 4194304; canonical count for symmetric protocols)")
		replay    = fs.String("replay", "", "replay one decision vector (e.g. '0@a7:keep:p0,1@a3:keep:p0') and exit")
		plane     = fs.String("plane", "", "search mode: also replay the worst schedule on another plane (sim|live)")

		// Scale controls (exhaustive mode): symmetry, pruning, checkpointed
		// resume and cross-process sharding.
		full       = fs.Bool("full", false, "walk every raw schedule even for symmetric protocols (no symmetry reduction)")
		noPrune    = fs.Bool("no-prune", false, "disable prefix-equivalence replay sharing (every schedule replays from round 0)")
		force      = fs.Bool("force", false, "override the hard raw-schedule ceiling (weighted counters saturate)")
		checkpoint = fs.String("checkpoint", "", "persist walk progress to this file after every chunk")
		resume     = fs.Bool("resume", false, "resume the walk from -checkpoint instead of starting fresh")
		ckEvery    = fs.Int64("checkpoint-every", 0, "walk indices between checkpoint writes (0 = 16384)")
		stopAfter  = fs.Int64("stop-after", 0, "pause at the first chunk boundary past this many indices (requires -checkpoint)")
		shard      = fs.String("shard", "", "walk only slice i of N, as 'i/N' (merge finished shard checkpoints with -merge)")
		merge      = fs.String("merge", "", "comma-separated shard checkpoint files: merge them, print the combined report and exit")

		// Extended fault alphabet (exhaustive mode): each flag adds a block
		// of per-victim choices to the enumerated space.
		omissions = fs.Bool("omissions", false, "also enumerate send-omission choices per action × prefix")
		rounds    = fs.Int("rounds", -1, "also enumerate round crashes at rounds 0..N (-1 = none; required by -restart-delays/-slow-factors)")
		delays    = fs.String("restart-delays", "", "comma-separated restart delays d: each round crash also revived at crash+d")
		slows     = fs.String("slow-factors", "", "comma-separated slowdown factors (>= 2) per round trigger")
		drops     = fs.String("drops", "", "comma-separated delivery indices: drop the k-th message bound for the victim")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: doall explore [flags]")
		fmt.Fprintln(os.Stderr, "Certifies the paper's bounds over the instance's crash-schedule space.")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *merge != "" {
		paths := strings.Split(*merge, ",")
		for i := range paths {
			paths[i] = strings.TrimSpace(paths[i])
		}
		rep, err := explore.MergeCheckpoints(paths)
		if err != nil {
			return err
		}
		fmt.Print(rep.Text())
		if rep.ViolationCount > 0 {
			return fmt.Errorf("%d bound violations", rep.ViolationCount)
		}
		return nil
	}

	target, err := explore.NewTarget(strings.ToLower(*protoName), *n, *t, *crashes)
	if err != nil {
		return err
	}

	if *replay != "" {
		vec, err := explore.ParseVector(*replay)
		if err != nil {
			return err
		}
		cert := target.Certify(vec)
		res := cert.Result
		fmt.Printf("replay:    %s\n", vec)
		fmt.Printf("work:      %d performed (%d distinct of %d)\n", res.WorkTotal, res.WorkDistinct, *n)
		fmt.Printf("messages:  %d\n", res.Messages)
		fmt.Printf("effort:    %d\n", res.Effort())
		fmt.Printf("rounds:    %d\n", res.Rounds)
		fmt.Printf("processes: %d survived, %d crashed\n", res.Survivors, res.Crashes)
		fmt.Printf("collapsed: %v\n", cert.Collapsed)
		for _, v := range cert.Violations {
			fmt.Printf("VIOLATION: %s\n", v.Reason)
		}
		if len(cert.Violations) > 0 {
			return fmt.Errorf("%d violations", len(cert.Violations))
		}
		return nil
	}

	prefix := *maxPrefix
	if prefix < 0 {
		prefix = *t
	}

	start := time.Now()
	switch *mode {
	case "exhaustive":
		horizon := *depth
		if horizon <= 0 {
			probed, err := target.DefaultDepth()
			if err != nil {
				return err
			}
			horizon = probed
		}
		space := explore.NewSpace(*t, *crashes, horizon, prefix)
		space.Omissions = *omissions
		for r := int64(0); r <= int64(*rounds); r++ {
			space.Rounds = append(space.Rounds, r)
		}
		if space.RestartDelays, err = parseCSVInt64(*delays); err != nil {
			return fmt.Errorf("-restart-delays: %w", err)
		}
		if space.SlowFactors, err = parseCSVInt(*slows); err != nil {
			return fmt.Errorf("-slow-factors: %w", err)
		}
		if space.Drops, err = parseCSVInt(*drops); err != nil {
			return fmt.Errorf("-drops: %w", err)
		}
		opt := explore.Options{
			Jobs: *jobs, MaxSchedules: *maxSched,
			Full: *full, NoPrune: *noPrune, Force: *force,
			Checkpoint: *checkpoint, Resume: *resume,
			CheckpointEvery: *ckEvery, StopAfter: *stopAfter,
		}
		if *shard != "" {
			var i, cnt int
			if _, err := fmt.Sscanf(*shard, "%d/%d", &i, &cnt); err != nil || cnt <= 0 || i < 0 || i >= cnt {
				return fmt.Errorf("-shard %q: want 'i/N' with 0 <= i < N", *shard)
			}
			opt.Shard = explore.Shard{Index: i, Count: cnt}
		}
		rep, err := target.Enumerate(space, opt)
		if err != nil {
			return err
		}
		fmt.Print(rep.Text())
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "%d schedules in %v (%.0f schedules/sec)\n",
			rep.Schedules, elapsed.Round(time.Millisecond),
			float64(rep.Schedules)/elapsed.Seconds())
		if rep.ViolationCount > 0 {
			return fmt.Errorf("%d bound violations", rep.ViolationCount)
		}
	case "search":
		obj, err := explore.ParseObjective(*objName)
		if err != nil {
			return err
		}
		sr, err := target.Search(explore.SearchOptions{
			Objective: obj, Budget: *budget, Seed: *seed,
			Depth: *depth, MaxPrefix: prefix, Jobs: *jobs,
			Plane: *plane,
		})
		if err != nil {
			return err
		}
		fmt.Print(sr.Text())
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "%d schedules in %v (%.0f schedules/sec)\n",
			sr.Evaluated, elapsed.Round(time.Millisecond),
			float64(sr.Evaluated)/elapsed.Seconds())
		if sr.ViolationCount > 0 {
			return fmt.Errorf("%d bound violations", sr.ViolationCount)
		}
	default:
		return fmt.Errorf("unknown mode %q (want exhaustive|search)", *mode)
	}
	return nil
}

// parseCSVInt parses a comma-separated integer list; empty means nil.
func parseCSVInt(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseCSVInt64 is parseCSVInt for int64 lists.
func parseCSVInt64(s string) ([]int64, error) {
	ints, err := parseCSVInt(s)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, v := range ints {
		out = append(out, int64(v))
	}
	return out, nil
}
