package main

// Shared flag validation for the subcommands that take fault schedules and
// run grids. One path for -schedule/-crash merging means live and serve
// reject the same bad input with the same one-line message, instead of one
// of them silently accepting a schedule that can never fire.

import (
	"fmt"

	"repro/internal/explore"
)

// validateGrid rejects impossible (n, t) instances before any machinery
// spins up.
func validateGrid(units, workers int) error {
	if units < 1 {
		return fmt.Errorf("-units must be at least 1 (got %d)", units)
	}
	if workers < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", workers)
	}
	return nil
}

// buildSchedule merges the -schedule grammar string and the repeatable
// -crash flags into one validated fault vector for a workers-process run.
// Contradictions — two faults for one victim, whichever flags they came
// from — and victims outside [0, workers) are errors, not silent no-ops.
func buildSchedule(schedule string, crashes crashFlags, workers int) (explore.Vector, error) {
	vec, err := explore.ParseVector(schedule)
	if err != nil {
		return nil, fmt.Errorf("-schedule: %w", err)
	}
	victims := make(map[int]bool, len(vec)+len(crashes))
	for _, c := range vec {
		victims[c.Victim] = true
	}
	for _, c := range crashes {
		if c.Round < 0 {
			return nil, fmt.Errorf("-crash %d@%d: negative round", c.Process, c.Round)
		}
		if victims[c.Process] {
			return nil, fmt.Errorf("-crash %d@%d: process %d already has a fault from -schedule or an earlier -crash; each victim may fault once",
				c.Process, c.Round, c.Process)
		}
		victims[c.Process] = true
		vec = append(vec, explore.Choice{Victim: c.Process, Round: c.Round})
	}
	for _, c := range vec {
		if c.Victim < 0 || c.Victim >= workers {
			return nil, fmt.Errorf("fault victim %d out of range: %d workers means PIDs 0..%d", c.Victim, workers, workers-1)
		}
	}
	if err := vec.Validate(); err != nil {
		return nil, err
	}
	return vec, nil
}
