package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
)

// runJoin is the worker half of a multi-process cluster: it connects to a
// doall serve, hosts the PID range the serve assigns (the protocol and
// instance size arrive in the welcome frame — a join needs no run flags of
// its own), and exits when the run completes or the serve stays unreachable
// past -reconnect-grace. Killing a join mid-run is a real crash fault; the
// serve books its PIDs as crashed.
func runJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	var (
		connect   = fs.String("connect", "127.0.0.1:9095", "serve address: host:port, or unix:/path/to.sock")
		grace     = fs.Duration("reconnect-grace", 3*time.Second, "how long to keep redialing a lost serve connection")
		drop      = fs.Float64("chaos-drop", 0, "drop each outbound frame's first transmission with this probability")
		dup       = fs.Float64("chaos-dup", 0, "duplicate outbound frames with this probability")
		reorder   = fs.Float64("chaos-reorder", 0, "hold outbound frames for reordering with this probability")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed for the chaos decisions (deterministic per frame)")
		verbose   = fs.Bool("v", false, "log join lifecycle events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *grace <= 0 {
		return fmt.Errorf("-reconnect-grace must be positive (got %v)", *grace)
	}
	if strings.TrimSpace(*connect) == "" {
		return fmt.Errorf("-connect must name the serve address")
	}

	network, addr := live.ParseWireAddr(*connect)
	cfg := live.JoinConfig{
		Network: network, Addr: addr,
		Steppers: func(spec live.WireSpec) (func(int) sim.Stepper, error) {
			tg, err := explore.NewTarget(spec.Protocol, spec.Units, spec.Workers, max(spec.Workers-1, 0))
			if err != nil {
				return nil, err
			}
			return core.SteppersFor(tg.NewProcs())
		},
		Chaos:          live.WireChaos{Drop: *drop, Dup: *dup, Reorder: *reorder, Seed: *chaosSeed},
		ReconnectGrace: *grace,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	return live.Join(cfg)
}
