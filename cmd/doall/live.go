package main

import (
	"flag"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runLive executes one protocol on the live concurrent execution plane:
// one goroutine per process over a channel transport with a configurable
// latency model, crash schedules replayed from the explore grammar. With
// -compare the same configuration also runs on the single-threaded sim
// engine and the two planes' Results and traces must be identical —
// the command fails loudly if concurrency leaked into the outcome.
func runLive(args []string) error {
	fs := flag.NewFlagSet("live", flag.ExitOnError)
	var (
		protoName = fs.String("protocol", "b", "protocol: a|b|c|c-lowmsg|d|gossip|single-checkpoint|naive")
		units     = fs.Int("units", 64, "number of work units (n)")
		workers   = fs.Int("workers", 16, "number of processes (t), one goroutine each")
		schedule  = fs.String("schedule", "", "crash schedule in the explore grammar, e.g. 0@a7:keep:p0,1@r4")
		seed      = fs.Int64("seed", 1, "transport latency seed (deterministic -seed mode)")
		latency   = fs.Duration("latency", 0, "fixed per-yield transport delay")
		jitter    = fs.Duration("jitter", 0, "max random extra transport delay")
		compare   = fs.Bool("compare", false, "also run the sim plane and require identical Result and trace")
		verbose   = fs.Bool("v", false, "print per-worker stats")
		showTrace = fs.Bool("trace", false, "print an ASCII execution timeline")
		loss      = fs.Float64("loss", 0, "drop each delivered message with this probability (seeded, replayable)")
		lossSeed  = fs.Int64("loss-seed", 1, "rng seed for -loss")
		maxDrops  = fs.Int("max-drops", 8, "at most this many messages lost to -loss")
		bandwidth = fs.Int("bandwidth", 0, "per-round per-process outbound message cap (congested clique; 0 = unlimited)")
		crashes   crashFlags
	)
	fs.Var(&crashes, "crash", "scheduled crash PID@ROUND (repeatable, merged into the schedule)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := validateGrid(*units, *workers); err != nil {
		return err
	}
	vec, err := buildSchedule(*schedule, crashes, *workers)
	if err != nil {
		return err
	}

	// explore.NewTarget is the canonical protocol-name resolver; the bounds
	// it computes are not enforced here, only the process builders and the
	// single-active flag are used.
	tg, err := explore.NewTarget(strings.ToLower(*protoName), *units, *workers, max(*workers-1, 0))
	if err != nil {
		return err
	}
	opt := planeOptions{
		n: *units, t: *workers,
		maxActive: 0,
		bandwidth: *bandwidth,
		newSteppers: func() (func(int) sim.Stepper, error) {
			return core.SteppersFor(tg.NewProcs())
		},
		// Fresh adversary per plane: the schedule adversary and the seeded
		// loss stream are stateful and single-use, and the same seed must
		// lose the same messages on both planes for -compare to hold.
		newAdversary: func() sim.Adversary {
			if *loss <= 0 {
				return vec.Adversary()
			}
			return adversary.NewChain(vec.Adversary(), adversary.NewLoss(*loss, *maxDrops, *lossSeed))
		},
	}
	if tg.SingleActive {
		opt.maxActive = 1
	}

	rec := trace.NewRecorder(0)
	liveRes, err := runLivePlane(opt, live.NewChanTransport(live.Latency{
		Base: *latency, Jitter: *jitter, Seed: *seed,
	}), rec.Hook())
	if err != nil {
		return err
	}

	fmt.Printf("plane:     live (%d goroutines, latency=%v jitter=%v seed=%d)\n",
		*workers, *latency, *jitter, *seed)
	fmt.Printf("protocol:  %s (n=%d, t=%d, schedule=%s)\n", strings.ToUpper(*protoName), *units, *workers, vec)
	printResultBlock(liveRes, *units)

	if *compare {
		if err := compareAgainstSim(opt, liveRes, rec); err != nil {
			return err
		}
	}
	return finishReport(liveRes, *verbose, *showTrace, rec)
}

// printResultBlock renders the standard cost-measure block; live and serve
// share it so cluster output cannot drift from single-process output.
func printResultBlock(res sim.Result, units int) {
	fmt.Printf("work:      %d performed (%d distinct of %d)\n", res.WorkTotal, res.WorkDistinct, units)
	fmt.Printf("messages:  %s\n", formatMessages(res.Messages, res.MessagesByKind))
	fmt.Printf("effort:    %d\n", res.Effort())
	fmt.Printf("rounds:    %d (simulated %d events)\n", res.Rounds, res.Events)
	fmt.Printf("processes: %d survived, %d crashed\n", res.Survivors, res.Crashes)
	if res.Restarts > 0 || res.Dropped > 0 || res.Omitted > 0 {
		fmt.Printf("faults:    %d restarts, %d dropped in transit, %d sends omitted\n",
			res.Restarts, res.Dropped, res.Omitted)
	}
	if res.Deferred > 0 {
		fmt.Printf("deferred:  %d sends queued past the bandwidth cap\n", res.Deferred)
	}
	fmt.Printf("complete:  %v\n", res.Complete())
}

// compareAgainstSim replays the same configuration on the sim engine and
// fails loudly unless Result and trace are identical — the -compare flag of
// both live and serve.
func compareAgainstSim(opt planeOptions, liveRes sim.Result, rec *trace.Recorder) error {
	simRec := trace.NewRecorder(0)
	simRes, err := runSimPlane(opt, simRec.Hook())
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(simRes, liveRes) {
		return fmt.Errorf("PLANES DIVERGE:\nsim:  %+v\nlive: %+v", simRes, liveRes)
	}
	if d := trace.Diff(rec.Events(), simRec.Events()); d != "" {
		return fmt.Errorf("PLANE TRACES DIVERGE: %s", d)
	}
	fmt.Printf("compare:   sim plane identical (%d events, traces equal)\n", simRes.Events)
	return nil
}

// finishReport prints the optional per-worker table and timeline, then
// enforces the paper's completion guarantee.
func finishReport(res sim.Result, verbose, showTrace bool, rec *trace.Recorder) error {
	if verbose {
		fmt.Println("\nworker  status      work  sent  retired@")
		for i, w := range res.PerProc {
			fmt.Printf("%6d  %-10s  %4d  %4d  %d\n", i, w.Status, w.Work, w.Sent, w.RetireRound)
		}
	}
	if showTrace {
		fmt.Println()
		fmt.Print(rec.Timeline(160))
	}
	if res.Survivors > 0 && !res.Complete() {
		return fmt.Errorf("GUARANTEE VIOLATED: survivors exist but work incomplete")
	}
	return nil
}

// planeOptions is one configuration runnable on either plane.
type planeOptions struct {
	n, t         int
	maxActive    int
	bandwidth    int
	newSteppers  func() (func(int) sim.Stepper, error)
	newAdversary func() sim.Adversary
}

func runLivePlane(opt planeOptions, tr live.Transport, hook func(sim.Event)) (sim.Result, error) {
	steppers, err := opt.newSteppers()
	if err != nil {
		return sim.Result{}, err
	}
	return live.Run(live.Config{
		NumProcs: opt.t, NumUnits: opt.n,
		Adversary: opt.newAdversary(), MaxActive: opt.maxActive,
		Bandwidth:       opt.bandwidth,
		DetailedMetrics: true, Tracer: hook, Transport: tr,
	}, steppers)
}

func runSimPlane(opt planeOptions, hook func(sim.Event)) (sim.Result, error) {
	steppers, err := opt.newSteppers()
	if err != nil {
		return sim.Result{}, err
	}
	return core.RunSteppers(opt.n, opt.t, steppers, core.RunOptions{
		Adversary: opt.newAdversary(), MaxActive: opt.maxActive,
		Bandwidth:       opt.bandwidth,
		DetailedMetrics: true, Tracer: hook,
	})
}

// formatMessages renders a message total with its per-kind breakdown; the
// run and live subcommands share it so their output cannot drift apart.
func formatMessages(total int64, byKind map[string]int64) string {
	var b strings.Builder
	b.WriteString(strconv.FormatInt(total, 10))
	if len(byKind) > 0 {
		kinds := make([]string, 0, len(byKind))
		for kind := range byKind {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, kind := range kinds {
			parts[i] = fmt.Sprintf("%s=%d", kind, byKind[kind])
		}
		fmt.Fprintf(&b, "  (%s)", strings.Join(parts, " "))
	}
	return b.String()
}
