package main

// Multi-process cluster tests: real OS processes, real sockets, real
// signals. The joins are this test binary re-executed in helper mode
// (TestHelperProcess), so `go test` needs no pre-built doall on PATH. The
// serve side runs in-test through the live API to get at the Result the
// subcommand would only print.

import (
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
)

// TestHelperProcess is not a test: re-executed with DOALL_HELPER set, it
// becomes a doall subcommand for the cluster tests to spawn and signal.
func TestHelperProcess(t *testing.T) {
	role := os.Getenv("DOALL_HELPER")
	if role == "" {
		return
	}
	var err error
	switch role {
	case "join":
		err = runJoin(strings.Fields(os.Getenv("DOALL_HELPER_ARGS")))
	default:
		err = fmt.Errorf("unknown helper role %q", role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnJoin starts one join OS process against addr and arranges for its
// corpse to be collected however the test ends.
func spawnJoin(t *testing.T, addr string, extraArgs string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess")
	cmd.Env = append(os.Environ(),
		"DOALL_HELPER=join",
		"DOALL_HELPER_ARGS=-connect "+addr+" "+extraArgs)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn join: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// clusterEngineRef runs the engine reference for a cluster configuration,
// resolving the protocol exactly as runJoin does.
func clusterEngineRef(t *testing.T, protocol string, n, tt int, adv sim.Adversary) sim.Result {
	t.Helper()
	tg, err := explore.NewTarget(protocol, n, tt, max(tt-1, 0))
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.SteppersFor(tg.NewProcs())
	if err != nil {
		t.Fatal(err)
	}
	maxActive := 0
	if tg.SingleActive {
		maxActive = 1
	}
	res, err := core.RunSteppers(n, tt, st, core.RunOptions{
		Adversary: adv, MaxActive: maxActive, DetailedMetrics: true,
	})
	if err != nil {
		t.Fatalf("engine reference: %v", err)
	}
	return res
}

// TestClusterProcessSIGKILL sends a real SIGKILL to one of two join
// processes mid-run: the serve side must book the vanished join's whole PID
// range as crashes, and the cluster Result must equal the engine's for the
// equivalent explore.Vector crash schedule — process death is just another
// point in the certified fault space.
func TestClusterProcessSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	const protocol, n, tt = "b", 24, 6
	wt, err := live.NewWireTransport(live.WireOptions{
		Network: "tcp", Addr: "127.0.0.1:0", Joins: 2,
		Spec: live.WireSpec{Protocol: protocol, Units: n, Workers: tt,
			// The latency stretches the run so the kill lands mid-flight.
			Latency: live.Latency{Base: 3 * time.Millisecond, Seed: 5}},
		Grace: 400 * time.Millisecond, ReadyTimeout: 30 * time.Second,
		RTO: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	survivor := spawnJoin(t, wt.Addr(), "-reconnect-grace 10s")
	victim := spawnJoin(t, wt.Addr(), "-reconnect-grace 10s")
	if err := wt.WaitReady(); err != nil {
		t.Fatal(err)
	}
	type runOut struct {
		res sim.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := live.Run(live.Config{
			NumProcs: tt, NumUnits: n, MaxActive: 1, DetailedMetrics: true, Transport: wt,
		}, nil)
		done <- runOut{res, err}
	}()
	time.Sleep(25 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("cluster run: %v", out.err)
	}
	if err := survivor.Wait(); err != nil {
		t.Errorf("surviving join exited with: %v", err)
	}

	// The victim's PID range — whichever of the two it was assigned — must
	// be exactly the crashed set.
	res := out.res
	if res.Crashes != tt/2 {
		t.Fatalf("crashes = %d, want %d (one join's PID range)", res.Crashes, tt/2)
	}
	var vec explore.Vector
	crashedLo := -1
	for pid := range res.PerProc {
		if res.PerProc[pid].Status != sim.StatusCrashed {
			continue
		}
		if crashedLo == -1 {
			crashedLo = pid
		}
		vec = append(vec, explore.Choice{Victim: pid, Round: res.PerProc[pid].RetireRound})
	}
	if crashedLo != 0 && crashedLo != tt/2 {
		t.Fatalf("crashed PIDs %v do not form one join's range", vec)
	}
	for i, c := range vec {
		if c.Victim != crashedLo+i {
			t.Fatalf("crashed PIDs %v are not contiguous from %d", vec, crashedLo)
		}
	}
	if err := vec.Validate(); err != nil {
		t.Fatalf("reconstructed vector: %v", err)
	}
	want := clusterEngineRef(t, protocol, n, tt, vec.Adversary())
	if !reflect.DeepEqual(want, res) {
		t.Fatalf("SIGKILL-equivalent schedule diverges:\nsim:     %+v\ncluster: %+v", want, res)
	}
}

// TestClusterProcessSoak cycles a few full multi-process cluster runs —
// varying protocol, join count and chaos — each checked against the engine.
// Bounded small: it is the cross-process smoke the in-process soak
// (internal/live) cannot provide.
func TestClusterProcessSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	cases := []struct {
		protocol string
		n, tt    int
		joins    int
		chaos    string
	}{
		{"b", 24, 6, 2, ""},
		{"d", 16, 4, 3, "-chaos-drop 0.15 -chaos-seed 7"},
		{"c", 16, 4, 2, "-chaos-drop 0.1 -chaos-dup 0.1 -chaos-reorder 0.1 -chaos-seed 3"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/j%d", tc.protocol, tc.joins), func(t *testing.T) {
			tg, err := explore.NewTarget(tc.protocol, tc.n, tc.tt, max(tc.tt-1, 0))
			if err != nil {
				t.Fatal(err)
			}
			maxActive := 0
			if tg.SingleActive {
				maxActive = 1
			}
			wt, err := live.NewWireTransport(live.WireOptions{
				Network: "tcp", Addr: "127.0.0.1:0", Joins: tc.joins,
				Spec:  live.WireSpec{Protocol: tc.protocol, Units: tc.n, Workers: tc.tt},
				Grace: 10 * time.Second, ReadyTimeout: 30 * time.Second,
				RTO: 5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			joins := make([]*exec.Cmd, tc.joins)
			for i := range joins {
				joins[i] = spawnJoin(t, wt.Addr(), "-reconnect-grace 10s "+tc.chaos)
			}
			if err := wt.WaitReady(); err != nil {
				t.Fatal(err)
			}
			res, err := live.Run(live.Config{
				NumProcs: tc.tt, NumUnits: tc.n, MaxActive: maxActive,
				DetailedMetrics: true, Transport: wt,
			}, nil)
			if err != nil {
				t.Fatalf("cluster run: %v", err)
			}
			for i, j := range joins {
				if err := j.Wait(); err != nil {
					t.Errorf("join %d exited with: %v", i, err)
				}
			}
			want := clusterEngineRef(t, tc.protocol, tc.n, tc.tt, nil)
			if !reflect.DeepEqual(want, res) {
				t.Fatalf("cluster diverges from engine:\nsim:     %+v\ncluster: %+v", want, res)
			}
		})
	}
}
