package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runServe is the coordinator half of a multi-process cluster: it listens,
// waits for -joins worker processes (doall join) to connect, and runs the
// unchanged live plane with the workers on the far side of the wire. A join
// that vanishes past -grace is a real crash fault with the certificate
// semantics explore's schedules describe — SIGKILL a join and the Result
// reads exactly like the equivalent scheduled crash of its PID range. With
// -compare the finished cluster Result and trace must match the
// single-threaded sim engine's bit for bit.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		protoName = fs.String("protocol", "b", "protocol: a|b|c|c-lowmsg|d|gossip|single-checkpoint|naive")
		units     = fs.Int("units", 64, "number of work units (n)")
		workers   = fs.Int("workers", 16, "number of processes (t), split across the joins")
		joins     = fs.Int("joins", 2, "join processes to wait for; PIDs are split evenly across them")
		listen    = fs.String("listen", "127.0.0.1:0", "listen address: host:port, or unix:/path/to.sock")
		schedule  = fs.String("schedule", "", "crash schedule in the explore grammar, e.g. 0@a7:keep:p0,1@r4")
		seed      = fs.Int64("seed", 1, "join-side latency seed (shipped in the welcome spec)")
		latency   = fs.Duration("latency", 0, "fixed per-yield delay applied by the joins")
		jitter    = fs.Duration("jitter", 0, "max random extra join-side delay")
		grace     = fs.Duration("grace", 3*time.Second, "reconnect grace before a vanished join's workers count as crashed")
		readyWait = fs.Duration("ready-timeout", 60*time.Second, "how long to wait for all joins to connect")
		drop      = fs.Float64("chaos-drop", 0, "drop each outbound frame's first transmission with this probability")
		dup       = fs.Float64("chaos-dup", 0, "duplicate outbound frames with this probability")
		reorder   = fs.Float64("chaos-reorder", 0, "hold outbound frames for reordering with this probability")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed for the chaos decisions (deterministic per frame)")
		loss      = fs.Float64("loss", 0, "drop each delivered message with this probability (seeded, replayable)")
		lossSeed  = fs.Int64("loss-seed", 1, "rng seed for -loss")
		maxDrops  = fs.Int("max-drops", 8, "at most this many messages lost to -loss")
		bandwidth = fs.Int("bandwidth", 0, "per-round per-process outbound message cap (congested clique; 0 = unlimited)")
		compare   = fs.Bool("compare", false, "also run the sim plane and require identical Result and trace")
		verbose   = fs.Bool("v", false, "print per-worker stats")
		showTrace = fs.Bool("trace", false, "print an ASCII execution timeline")
		crashes   crashFlags
	)
	fs.Var(&crashes, "crash", "scheduled crash PID@ROUND (repeatable, merged into the schedule)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := validateGrid(*units, *workers); err != nil {
		return err
	}
	if *joins < 1 {
		return fmt.Errorf("-joins must be at least 1 (got %d)", *joins)
	}
	if *joins > *workers {
		return fmt.Errorf("-joins %d exceeds -workers %d: every join needs at least one PID", *joins, *workers)
	}
	vec, err := buildSchedule(*schedule, crashes, *workers)
	if err != nil {
		return err
	}
	tg, err := explore.NewTarget(strings.ToLower(*protoName), *units, *workers, max(*workers-1, 0))
	if err != nil {
		return err
	}
	opt := planeOptions{
		n: *units, t: *workers,
		bandwidth: *bandwidth,
		newSteppers: func() (func(int) sim.Stepper, error) {
			return core.SteppersFor(tg.NewProcs())
		},
		newAdversary: func() sim.Adversary {
			if *loss <= 0 {
				return vec.Adversary()
			}
			return adversary.NewChain(vec.Adversary(), adversary.NewLoss(*loss, *maxDrops, *lossSeed))
		},
	}
	if tg.SingleActive {
		opt.maxActive = 1
	}

	network, addr := live.ParseWireAddr(*listen)
	wt, err := live.NewWireTransport(live.WireOptions{
		Network: network, Addr: addr, Joins: *joins,
		Spec: live.WireSpec{
			Protocol: strings.ToLower(*protoName), Units: *units, Workers: *workers,
			Latency: live.Latency{Base: *latency, Jitter: *jitter, Seed: *seed},
		},
		Chaos: live.WireChaos{Drop: *drop, Dup: *dup, Reorder: *reorder, Seed: *chaosSeed},
		Grace: *grace, ReadyTimeout: *readyWait,
	})
	if err != nil {
		return err
	}
	fmt.Printf("listening: %s %s (waiting for %d joins)\n", network, wt.Addr(), *joins)
	if err := wt.WaitReady(); err != nil {
		return err
	}
	fmt.Printf("cluster:   %d joins connected, %d workers\n", *joins, *workers)

	rec := trace.NewRecorder(0)
	clusterRes, err := live.Run(live.Config{
		NumProcs: *workers, NumUnits: *units,
		Adversary: opt.newAdversary(), MaxActive: opt.maxActive,
		Bandwidth:       opt.bandwidth,
		DetailedMetrics: true, Tracer: rec.Hook(), Transport: wt,
	}, nil)
	if err != nil {
		return err
	}

	fmt.Printf("plane:     cluster (%d joins over %s, latency=%v jitter=%v seed=%d grace=%v)\n",
		*joins, network, *latency, *jitter, *seed, *grace)
	fmt.Printf("protocol:  %s (n=%d, t=%d, schedule=%s)\n", strings.ToUpper(*protoName), *units, *workers, vec)
	printResultBlock(clusterRes, *units)

	if *compare {
		if err := compareAgainstSim(opt, clusterRes, rec); err != nil {
			return err
		}
	}
	return finishReport(clusterRes, *verbose, *showTrace, rec)
}
