package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/batch"
)

// runSweep implements `doall sweep`: cross protocols × failure patterns ×
// (n, t) grid × seeds and execute the whole set in parallel through the
// batch runner. Output order is the deterministic sweep order regardless of
// -jobs.
func runSweep(args []string) error {
	fs := flag.NewFlagSet("doall sweep", flag.ExitOnError)
	var (
		protoCSV   = fs.String("protocols", "a,b,d", "comma-separated protocols to cross (see doall -h for names)")
		failureCSV = fs.String("failures", "none,cascade,random", "comma-separated failure patterns: none|cascade|random")
		unitsCSV   = fs.String("units", "64,256", "comma-separated unit counts (n)")
		workersCSV = fs.String("workers", "8,16", "comma-separated process counts (t)")
		seedsCSV   = fs.String("seeds", "1", "comma-separated seeds (random failures)")
		crashP     = fs.Float64("crash-p", 0.02, "per-action crash probability (random pattern)")
		jobs       = fs.Int("jobs", 0, "parallel runs (0 = GOMAXPROCS, 1 = sequential)")
		maxRound   = fs.Int64("max-round", 0, "abort runs exceeding this round (0 = engine default)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "Usage: doall sweep [flags]")
		fmt.Fprintln(os.Stderr, "Runs every protocol × failure pattern × (n, t) × seed combination in parallel.")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	sweep := batch.Sweep{
		CheckInvariants: true,
		MaxRound:        *maxRound,
	}
	protoNames := splitCSV(*protoCSV)
	if len(protoNames) == 0 {
		return fmt.Errorf("-protocols: empty list")
	}
	for _, name := range protoNames {
		proto, ok := protocols[strings.ToLower(name)]
		if !ok {
			return fmt.Errorf("unknown protocol %q", name)
		}
		sweep.Protocols = append(sweep.Protocols, proto)
	}
	failureNames := splitCSV(*failureCSV)
	if len(failureNames) == 0 {
		return fmt.Errorf("-failures: empty list")
	}
	for _, name := range failureNames {
		switch strings.ToLower(name) {
		case "none":
			sweep.Failures = append(sweep.Failures, batch.NoFailureSpec())
		case "cascade":
			sweep.Failures = append(sweep.Failures, batch.CascadeFailureSpec())
		case "random":
			sweep.Failures = append(sweep.Failures, batch.RandomFailureSpec(*crashP))
		default:
			return fmt.Errorf("unknown failure pattern %q (want none|cascade|random)", name)
		}
	}
	units, err := parseInts(*unitsCSV)
	if err != nil {
		return fmt.Errorf("-units: %w", err)
	}
	workers, err := parseInts(*workersCSV)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	for _, n := range units {
		for _, t := range workers {
			sweep.Grid = append(sweep.Grid, batch.GridPoint{Units: n, Workers: t})
		}
	}
	seeds, err := parseInts(*seedsCSV)
	if err != nil {
		return fmt.Errorf("-seeds: %w", err)
	}
	for _, s := range seeds {
		sweep.Seeds = append(sweep.Seeds, int64(s))
	}

	sweepJobs := sweep.Jobs()
	start := time.Now()
	results := batch.Run(sweepJobs, batch.Options{Workers: *jobs})
	elapsed := time.Since(start)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "run\twork\tdistinct\tmessages\teffort\trounds\tcrashes\tcomplete")
	bad := 0
	for _, r := range results {
		if r.Err != nil {
			bad++
			fmt.Fprintf(w, "%s\tERROR: %v\n", r.Name, r.Err)
			continue
		}
		if r.GuaranteeViolated() {
			bad++
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			r.Name, r.Result.Work, r.Result.WorkDistinct, r.Result.Messages,
			r.Result.Effort(), r.Result.Rounds, r.Result.Crashes, r.Result.Complete)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	workerCount := *jobs
	if workerCount <= 0 {
		workerCount = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "%d runs in %v (%d jobs in parallel)\n",
		len(results), elapsed.Round(time.Millisecond), workerCount)
	if bad > 0 {
		return fmt.Errorf("%d runs failed or violated the completion guarantee", bad)
	}
	return nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
