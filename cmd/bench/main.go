// Command bench measures the Engine*, Sweep*, Explore* and Live* simulator
// benchmarks and records the perf trajectory in a JSON baseline
// (BENCH_engine.json): ns/op, allocs/op, bytes/op and events/run per
// benchmark.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_engine.json             # (re)write baseline
//	go run ./cmd/bench -diff BENCH_engine.json            # measure + compare
//	go run ./cmd/bench -diff BENCH_engine.json -strict    # exit 1 on regression
//
// With -diff, regressions beyond -threshold (default 1.25 = +25%) on any of
// ns/op, allocs/op and bytes/op are printed as warnings (GitHub annotation
// format under CI) without changing the exit status: micro-benchmark noise
// across machines should not break builds, only leave a trail. With
// -strict, regressions are printed as errors and the command exits 1 — CI
// flips this per branch, warning on pull requests and failing on main.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchmarks"
)

func main() {
	out := flag.String("out", "", "write measured records to this JSON file")
	diff := flag.String("diff", "", "compare measurements against this baseline JSON")
	threshold := flag.Float64("threshold", 1.25, "warn when ns/op exceeds baseline×threshold")
	strict := flag.Bool("strict", false, "exit 1 when -diff finds regressions (CI uses this on main)")
	flag.Parse()
	if *out == "" && *diff == "" {
		fmt.Fprintln(os.Stderr, "bench: need -out and/or -diff")
		os.Exit(2)
	}

	recs := benchmarks.Measure()
	for _, r := range recs {
		fmt.Printf("%-28s %12.0f ns/op %8d allocs/op %10d B/op %8.0f events/run",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.EventsPerRun)
		if r.SchedulesPerSec > 0 {
			fmt.Printf(" %10.0f schedules/sec", r.SchedulesPerSec)
		}
		fmt.Println()
	}

	if *out != "" {
		if err := benchmarks.WriteJSON(*out, recs); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *diff != "" {
		base, err := benchmarks.ReadJSON(*diff)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		regs := benchmarks.Compare(base, recs, *threshold)
		if len(regs) == 0 {
			fmt.Printf("no ns/allocs/bytes regressions beyond %.0f%% vs %s\n", (*threshold-1)*100, *diff)
			return
		}
		// ::warning:: / ::error:: render as annotations in GitHub Actions and
		// as plain lines everywhere else.
		level := "warning"
		if *strict {
			level = "error"
		}
		for _, reg := range regs {
			fmt.Printf("::%s title=bench regression::%s is %.2fx baseline %s (%.0f -> %.0f)\n",
				level, reg.Name, reg.Ratio, reg.Metric, reg.Base, reg.Current)
		}
		if *strict {
			os.Exit(1)
		}
	}
}
