// Command bench measures the Engine*, Sweep*, Explore* and Live* simulator
// benchmarks and records the perf trajectory: the latest baseline in
// BENCH_engine.json (ns/op, allocs/op, bytes/op and events/run per
// benchmark) and the per-PR history in BENCH_history.json, from which the
// README's trajectory table is regenerated.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_engine.json             # (re)write baseline
//	go run ./cmd/bench -diff BENCH_engine.json            # measure + compare
//	go run ./cmd/bench -diff BENCH_engine.json -strict    # exit 1 on regression
//	go run ./cmd/bench -out BENCH_engine.json \
//	    -history BENCH_history.json -label PR7 \
//	    -readme README.md                                 # baseline + trajectory + README table
//
// With -diff, regressions beyond -threshold (default 1.25 = +25%) on any of
// ns/op, allocs/op and bytes/op are printed as warnings (GitHub annotation
// format under CI) without changing the exit status: micro-benchmark noise
// across machines should not break builds, only leave a trail. Improvements
// beyond the same margin are reported distinctly, as a cue to refresh the
// committed baseline. The live/engine ns-per-op ratios are compared too —
// ratios cancel machine speed, so the gap check is meaningful on any
// machine — and a gap more than -gapslack (default 1.15 = +15%) above the
// recorded one counts as a regression. With -strict, regressions are printed
// as errors and the command exits 1 — CI flips this per branch, warning on
// pull requests and failing on main.
//
// With -history, the measurements are appended to the named trajectory file
// under -label (replacing an existing entry with the same label); with
// -readme, the perf table between the bench-trajectory markers in the named
// file is regenerated from the trajectory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchmarks"
)

func main() {
	out := flag.String("out", "", "write measured records to this JSON file")
	diff := flag.String("diff", "", "compare measurements against this baseline JSON")
	threshold := flag.Float64("threshold", 1.25, "warn when a metric exceeds baseline×threshold")
	gapSlack := flag.Float64("gapslack", 1.15, "warn when a live/engine ns ratio exceeds baseline×gapslack")
	strict := flag.Bool("strict", false, "exit 1 when -diff finds regressions (CI uses this on main)")
	history := flag.String("history", "", "append measurements to this trajectory JSON file")
	label := flag.String("label", "", "trajectory label for -history (e.g. PR7)")
	readme := flag.String("readme", "", "regenerate the perf table between the bench-trajectory markers in this file")
	flag.Parse()
	if *out == "" && *diff == "" && *history == "" && *readme == "" {
		fmt.Fprintln(os.Stderr, "bench: need -out, -diff, -history or -readme")
		os.Exit(2)
	}
	if (*history != "") != (*label != "") {
		fmt.Fprintln(os.Stderr, "bench: -history and -label go together")
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	var recs []benchmarks.Record
	if *out != "" || *diff != "" || *history != "" {
		recs = benchmarks.Measure()
		for _, r := range recs {
			fmt.Printf("%-28s %12.0f ns/op %8d allocs/op %10d B/op %8.0f events/run",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.EventsPerRun)
			if r.SchedulesPerSec > 0 {
				fmt.Printf(" %10.0f schedules/sec", r.SchedulesPerSec)
			}
			fmt.Println()
		}
		for _, g := range benchmarks.Gaps(recs) {
			fmt.Printf("%-28s %.2fx %s\n", g.Live+"/"+g.Engine, g.Ratio, g.Engine)
		}
	}

	if *out != "" {
		if err := benchmarks.WriteJSON(*out, recs); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *history != "" {
		entries, err := benchmarks.ReadHistory(*history)
		if err != nil {
			fail(err)
		}
		entries = benchmarks.AppendHistory(entries, *label, recs)
		if err := benchmarks.WriteHistory(*history, entries); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %s in %s\n", *label, *history)
	}

	if *readme != "" {
		path := *history
		if path == "" {
			path = "BENCH_history.json"
		}
		entries, err := benchmarks.ReadHistory(path)
		if err != nil {
			fail(err)
		}
		if len(entries) == 0 {
			fail(fmt.Errorf("%s: empty trajectory, nothing to render", path))
		}
		if err := benchmarks.UpdateReadme(*readme, entries); err != nil {
			fail(err)
		}
		fmt.Printf("regenerated trajectory table in %s\n", *readme)
	}

	if *diff != "" {
		base, err := benchmarks.ReadJSON(*diff)
		if err != nil {
			fail(err)
		}
		regs := benchmarks.Compare(base, recs, *threshold)
		regs = append(regs, benchmarks.CompareGaps(base, recs, *gapSlack)...)
		imps := benchmarks.Improvements(base, recs, *threshold)
		// ::warning:: / ::error:: / ::notice:: render as annotations in GitHub
		// Actions and as plain lines everywhere else.
		for _, imp := range imps {
			fmt.Printf("::notice title=bench improvement::%s is %.2fx baseline %s (%.0f -> %.0f); consider refreshing %s\n",
				imp.Name, imp.Ratio, imp.Metric, imp.Base, imp.Current, *diff)
		}
		if len(regs) == 0 {
			fmt.Printf("no ns/allocs/bytes/gap regressions beyond %.0f%% vs %s\n", (*threshold-1)*100, *diff)
			return
		}
		level := "warning"
		if *strict {
			level = "error"
		}
		for _, reg := range regs {
			fmt.Printf("::%s title=bench regression::%s is %.2fx baseline %s (%.2f -> %.2f)\n",
				level, reg.Name, reg.Ratio, reg.Metric, reg.Base, reg.Current)
		}
		if *strict {
			os.Exit(1)
		}
	}
}
