// Command experiments reruns every reproduction experiment (T1–T9, F1–F7,
// X1–X6) and writes EXPERIMENTS.md with measured-vs-bound tables.
//
// Experiments fan out across -jobs workers via the internal/batch runner;
// the output file is byte-identical for every worker count (timings go to
// stderr, and the nondeterministic async experiment is excluded unless
// -include-async is set).
//
// Usage:
//
//	experiments [-o EXPERIMENTS.md] [-only T1,F2,...] [-jobs N] [-include-async]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out          = flag.String("o", "EXPERIMENTS.md", "output file (- for stdout)")
		only         = flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
		jobs         = flag.Int("jobs", 0, "parallel experiment runs (0 = GOMAXPROCS, 1 = sequential)")
		includeAsync = flag.Bool("include-async", false,
			"include the real-goroutine async experiment (F6), whose exact values vary run-to-run")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	// An explicit -only selection may name nondeterministic experiments;
	// only the default everything-run restricts itself to the
	// byte-reproducible set.
	var exps []experiments.Experiment
	if *includeAsync || len(want) > 0 {
		exps = experiments.Select(experiments.All(), want)
	} else {
		exps = experiments.Deterministic()
	}
	if len(exps) == 0 {
		return fmt.Errorf("no experiments match %q", *only)
	}

	start := time.Now()
	tables := experiments.Run(exps, *jobs)
	elapsed := time.Since(start)
	for _, table := range tables {
		fmt.Fprintf(os.Stderr, "%s: %d rows, %d bound failures\n",
			table.ID, len(table.Rows), table.Failures())
		if table.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: ERROR: %v\n", table.ID, table.Err)
		}
	}
	failures := experiments.TotalFailures(tables)
	fmt.Fprintf(os.Stderr, "%d experiments in %v, %d bound failures\n",
		len(tables), elapsed.Round(time.Millisecond), failures)

	content := experiments.Report(tables)
	if *out == "-" {
		fmt.Print(content)
	} else if err := os.WriteFile(*out, []byte(content), 0o644); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d bound failures", failures)
	}
	return nil
}
