package doall

import (
	"repro/internal/agreement"
	"repro/internal/core"
)

// AgreementConfig parameterises the §5 Byzantine agreement reduction: the
// general (process 0) broadcasts its value to the f+1 senders, which then
// perform the "work" of informing all n processes using a work protocol.
type AgreementConfig struct {
	// Processes is n, the system size; Faults is t, the failure bound
	// (processes 0..Faults are the senders).
	Processes int
	Faults    int
	// Value is the general's input.
	Value int
	// Protocol picks the work protocol: ProtocolA, ProtocolB (default —
	// O(n + t√t) messages in O(n) rounds, Bracha's bound made constructive)
	// or ProtocolC (O(n + t log t) messages at exponential time).
	Protocol Protocol
	// Failures injects crash failures; nil means failure-free.
	Failures Failures
}

// AgreementResult reports an agreement run.
type AgreementResult struct {
	// Decisions[i] is process i's decided value, or -1 if it crashed.
	Decisions []int
	// Value is the common decided value (the agreement property is
	// verified; Run returns an error if any two survivors disagree).
	Value int
	// Metrics carries the run's cost.
	Metrics Result
}

// RunAgreement executes one Byzantine agreement instance for crash faults.
func RunAgreement(cfg AgreementConfig) (AgreementResult, error) {
	proto := agreement.UseB
	switch cfg.Protocol {
	case ProtocolA:
		proto = agreement.UseA
	case ProtocolC, ProtocolCLowMsg:
		proto = agreement.UseC
	}
	opt := core.RunOptions{DetailedMetrics: true, MaxActive: 1}
	if cfg.Failures != nil {
		opt.Adversary = cfg.Failures.adversary()
	}
	out, err := agreement.Run(agreement.Config{
		N: cfg.Processes, F: cfg.Faults, Value: cfg.Value, Protocol: proto,
	}, opt)
	if err != nil {
		return AgreementResult{}, err
	}
	v, err := out.Agreement()
	if err != nil {
		return AgreementResult{}, err
	}
	return AgreementResult{
		Decisions: out.Decisions,
		Value:     v,
		Metrics:   newResult(out.Result),
	}, nil
}
