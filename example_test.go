package doall_test

import (
	"fmt"

	"repro"
)

// The basic flow: pick a protocol, a failure pattern, and run.
func ExampleRun() {
	res, err := doall.Run(doall.Config{
		Units:    64,
		Workers:  16,
		Protocol: doall.ProtocolB,
		Failures: doall.CascadeFailures(4, 15),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("complete:", res.Complete, "distinct:", res.WorkDistinct, "survivors:", res.Survivors)
	// Output: complete: true distinct: 64 survivors: 1
}

// Failure-free Protocol D matches the paper's exact n/t + 2 round count.
func ExampleRun_protocolD() {
	res, err := doall.Run(doall.Config{
		Units:    64,
		Workers:  8,
		Protocol: doall.ProtocolD,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", res.Rounds, "work:", res.Work)
	// Output: rounds: 10 work: 64
}

// Scheduled failures give exact control over crash timing, including
// crash-mid-broadcast delivery subsets.
func ExampleScheduledFailures() {
	res, err := doall.Run(doall.Config{
		Units:    16,
		Workers:  4,
		Protocol: doall.ProtocolA,
		Failures: doall.ScheduledFailures(
			doall.Crash{Process: 0, Round: 3},
			doall.Crash{Process: 1, AtAction: 2, KeepWork: true},
		),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("complete:", res.Complete, "crashes:", res.Crashes)
	// Output: complete: true crashes: 2
}

// Byzantine agreement for crash faults (§5): all survivors decide the
// general's value.
func ExampleRunAgreement() {
	out, err := doall.RunAgreement(doall.AgreementConfig{
		Processes: 16,
		Faults:    3,
		Value:     7,
		Protocol:  doall.ProtocolB,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("decided:", out.Value)
	// Output: decided: 7
}
