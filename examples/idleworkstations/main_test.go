package main

import "testing"

// TestRunSmoke executes the example end to end, defaults and a custom
// instance both: the SAT batch must complete despite reclaimed stations.
func TestRunSmoke(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stations", "4", "-reclaimed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stations", "many"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
