// Idleworkstations: the paper's LAN scenario — jobs distributed among idle
// workstations, where a "failure" is a user reclaiming her machine. The
// batch is a brute-force SAT check (evaluating a boolean formula at every
// assignment, the paper's example of idempotent work) run under Protocol D,
// which parallelises across stations and degrades gracefully as machines
// disappear.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("idleworkstations", flag.ContinueOnError)
	var (
		stations  = fs.Int("stations", 8, "idle workstations in the pool")
		reclaimed = fs.Int("reclaimed", 5, "stations reclaimed by their users mid-batch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// (x1 ∨ ¬x3 ∨ x5) ∧ (¬x1 ∨ x2 ∨ ¬x6) ∧ (x3 ∨ x4 ∨ x6) ∧ (¬x2 ∨ ¬x4 ∨ ¬x5)
	formula, err := workload.NewFormula(6, [][3]int{
		{1, -3, 5}, {-1, 2, -6}, {3, 4, 6}, {-2, -4, -5},
	})
	if err != nil {
		return err
	}
	n := formula.Size()

	// Users reclaim machines at staggered times.
	var crashes []doall.Crash
	for k := 0; k < *reclaimed && k < *stations-1; k++ {
		crashes = append(crashes, doall.Crash{
			Process: k, Round: int64(2 + 3*k),
		})
	}

	res, err := doall.Run(doall.Config{
		Units:    n,
		Workers:  *stations,
		Protocol: doall.ProtocolD,
		Failures: doall.ScheduledFailures(crashes...),
		Observer: func(_, unit int) { formula.Do(unit) },
	})
	if err != nil {
		return err
	}

	sat, complete := formula.Satisfiable()
	fmt.Printf("assignments evaluated: %d distinct of %d (%d evaluations incl. repeats)\n",
		res.WorkDistinct, n, res.Work)
	fmt.Printf("stations reclaimed: %d, still idle at the end: %d\n", res.Crashes, res.Survivors)
	fmt.Printf("rounds: %d (failure-free would be n/t + 2 = %d), messages: %d\n",
		res.Rounds, n / *stations + 2, res.Messages)
	if !complete {
		return fmt.Errorf("batch incomplete despite %d survivors", res.Survivors)
	}
	fmt.Printf("formula satisfiable: %v\n", sat)
	return nil
}
