// Dynamicqueue: the paper's §4 closing remark (and the variant IBM
// patented) — work arrives continually at individual sites, is not common
// knowledge, and the system runs agreement periodically to redistribute it.
// Jobs arrive at random sites over several periods; sites crash along the
// way; everything any surviving site learned gets done.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/dynamic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sites   = flag.Int("sites", 8, "number of sites")
		jobs    = flag.Int("jobs", 96, "jobs arriving over the run")
		periods = flag.Int("periods", 6, "agreement periods")
	)
	flag.Parse()

	// Jobs arrive round-robin during the first periods-1 phases (nothing
	// may arrive after the final agreement). Arrivals avoid the two sites
	// that will be reclaimed: a job arriving at a site that dies before the
	// next agreement is irrecoverably lost — the documented boundary of the
	// guarantee — and this demo shows the positive case.
	arrivalSites := *sites - 2
	injections := make([]dynamic.Injection, *jobs)
	for u := 1; u <= *jobs; u++ {
		injections[u-1] = dynamic.Injection{
			Phase:   1 + (u-1)%(*periods-1),
			Process: (u * 7) % arrivalSites,
			Unit:    u,
		}
	}
	scripts, err := dynamic.Scripts(dynamic.Config{
		T: *sites, Units: *jobs, Phases: *periods, Injections: injections,
	})
	if err != nil {
		return err
	}

	// Two sites die mid-run, after their first arrivals have been shared
	// (each period is a couple of agreement rounds plus ⌈|S|/|T|⌉ work
	// rounds, so these land around periods 3 and 4).
	adv := adversary.NewSchedule(
		adversary.Crash{PID: *sites - 1, Round: 12},
		adversary.Crash{PID: *sites - 2, Round: 20},
	)
	res, err := core.Run(*jobs, *sites, scripts, core.RunOptions{
		Adversary: adv, DetailedMetrics: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("sites: %d (%d crashed mid-run), periods: %d\n", *sites, res.Crashes, *periods)
	fmt.Printf("jobs arrived: %d — done: %d distinct (%d executions)\n",
		*jobs, res.WorkDistinct, res.WorkTotal)
	fmt.Printf("agreement traffic: %d messages over %d rounds\n", res.Messages, res.Rounds)
	if !res.Complete() {
		return fmt.Errorf("jobs lost despite survivors")
	}
	fmt.Println("queue drained: every job any surviving site knew about was executed.")
	return nil
}
