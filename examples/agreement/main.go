// Agreement: the paper's §5 application. A general must broadcast a value
// to n processes so that all non-crashed processes decide the same value —
// Byzantine agreement for crash faults — by reducing agreement to Do-All:
// "informing process p" is one idempotent unit of work performed by the
// f+1 senders. Via Protocol B this costs O(n + t√t) messages in O(n) rounds,
// matching Bracha's nonconstructive bound constructively.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n     = flag.Int("n", 32, "number of processes")
		f     = flag.Int("f", 5, "failure bound (f+1 senders)")
		value = flag.Int("value", 7, "the general's value")
	)
	flag.Parse()

	fmt.Printf("Byzantine agreement (crash faults): n=%d, f=%d, general's value=%d\n\n", *n, *f, *value)

	// Case 1: failure-free — validity requires everyone decide the
	// general's value.
	res, err := doall.RunAgreement(doall.AgreementConfig{
		Processes: *n, Faults: *f, Value: *value, Protocol: doall.ProtocolB,
	})
	if err != nil {
		return err
	}
	fmt.Printf("failure-free: all %d processes decided %d (messages=%d rounds=%d)\n",
		len(res.Decisions), res.Value, res.Metrics.Messages, res.Metrics.Rounds)

	// Case 2: the general crashes mid-broadcast, reaching only one sender;
	// the senders then crash in a cascade. Agreement must still hold.
	res2, err := doall.RunAgreement(doall.AgreementConfig{
		Processes: *n, Faults: *f, Value: *value, Protocol: doall.ProtocolB,
		Failures: doall.CombinedFailures(
			doall.ScheduledFailures(doall.Crash{
				Process: 0, AtAction: 1, Deliver: []bool{true},
			}),
			doall.CascadeFailures(3, *f-1),
		),
	})
	if err != nil {
		return err
	}
	decided, crashed := 0, 0
	for _, d := range res2.Decisions {
		if d < 0 {
			crashed++
		} else {
			decided++
		}
	}
	fmt.Printf("general crashes mid-broadcast + sender cascade: %d crashed, %d survivors all decided %d\n",
		crashed, decided, res2.Value)
	fmt.Printf("(agreement holds regardless of which value won the race)\n")
	return nil
}
