// Asyncpool: the paper's §2.1 remark made concrete — Protocol A in a fully
// asynchronous system with a failure detector. Workers are real goroutines,
// messages travel over channels with random delays, and activation is
// triggered by the (sound) failure detector instead of synchronous
// deadlines. Jobs are shell-out-style tasks simulated by short sleeps.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/live"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		jobs     = flag.Int("jobs", 64, "number of idempotent jobs")
		workers  = flag.Int("workers", 16, "worker goroutines")
		kills    = flag.Int("kills", 6, "workers killed mid-run")
		maxDelay = flag.Duration("max-delay", 300*time.Microsecond, "max message delay")
		seed     = flag.Int64("seed", 42, "delay seed")
	)
	flag.Parse()

	net := live.NewNetwork(*workers, *maxDelay, *seed)
	executed := make(chan [2]int, 8**jobs)
	cluster := live.NewCluster(live.ClusterConfig{
		N: *jobs, T: *workers,
		Perform: func(w, u int) {
			time.Sleep(50 * time.Microsecond) // the actual job
			executed <- [2]int{w, u}
		},
	}, net)

	start := time.Now()
	cluster.Start()

	// Kill the active worker every few completed jobs.
	go func() {
		killed := 0
		per := *jobs / (*kills + 1)
		count := 0
		for ev := range executed {
			count++
			if killed < *kills && count%max(per, 1) == 0 && ev[0] != *workers-1 {
				cluster.Crash(ev[0])
				killed++
				fmt.Printf("  [%v] worker %d killed after job %d\n",
					time.Since(start).Round(time.Millisecond), ev[0], ev[1])
			}
		}
	}()

	complete := cluster.Wait()
	close(executed)
	total, distinct := cluster.Log().Totals()

	fmt.Printf("\njobs: %d distinct of %d done (%d executions incl. repeats)\n",
		distinct, *jobs, total)
	fmt.Printf("messages on the wire: %d, wall time: %v\n",
		net.Sent(), time.Since(start).Round(time.Millisecond))
	if !complete {
		return fmt.Errorf("job pool incomplete")
	}
	fmt.Println("all jobs done despite failures — the async Protocol A guarantee.")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
