// Valvecheck: the paper's motivating scenario. Before fuel is added to the
// reactor, every valve must be verified closed — and the verification
// procedure must tolerate the checking controllers crashing, as long as one
// survives. Checking a valve is idempotent, so it fits the Do-All framework
// exactly.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("valvecheck", flag.ContinueOnError)
	var (
		valves      = fs.Int("valves", 96, "number of valves to verify")
		controllers = fs.Int("controllers", 16, "number of crash-prone controllers")
		crashP      = fs.Float64("crash-p", 0.02, "per-action crash probability")
		seed        = fs.Int64("seed", 1, "failure seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	bank := workload.NewValves(*valves)
	res, err := doall.Run(doall.Config{
		Units:    *valves,
		Workers:  *controllers,
		Protocol: doall.ProtocolB, // work-optimal and time-optimal-ish
		Failures: doall.RandomFailures(*crashP, *controllers-1, *seed),
		Observer: func(_, unit int) { bank.Do(unit) },
	})
	if err != nil {
		return err
	}

	fmt.Printf("valves: %d, controllers: %d, crashes injected: %d, survivors: %d\n",
		*valves, *controllers, res.Crashes, res.Survivors)
	fmt.Printf("all valves verified closed: %v\n", bank.AllClosed())
	fmt.Printf("checks performed (with repeats): %d — overhead %.1f%%\n",
		res.Work, 100*float64(res.Work-int64(*valves))/float64(*valves))
	fmt.Printf("checkpoint messages: %d, rounds: %d\n", res.Messages, res.Rounds)

	redundant := 0
	for u := 1; u <= *valves; u++ {
		if bank.Checks(u) > 1 {
			redundant++
		}
	}
	fmt.Printf("valves checked more than once (lost to crashes): %d\n", redundant)
	if !bank.AllClosed() && res.Survivors > 0 {
		return fmt.Errorf("BUG: survivors exist but valves remain unverified")
	}
	fmt.Println("safe to add fuel.")
	return nil
}
