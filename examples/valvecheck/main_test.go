package main

import "testing"

// TestRunSmoke executes the example end to end, defaults and a custom
// instance both: every valve must verify despite the random crashes.
func TestRunSmoke(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-valves", "24", "-controllers", "6", "-crash-p", "0.05", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-valves", "nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
