// Quickstart: run each protocol on the same faulty workload and compare the
// paper's three cost measures — work, messages, time.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	const (
		units   = 64
		workers = 16
	)
	fmt.Printf("Do-All: n=%d units across t=%d crash-prone workers\n", units, workers)
	fmt.Printf("Adversary: every active worker crashes after %d units, %d failures total\n\n",
		units/workers, workers-1)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\twork\tmessages\teffort\trounds\tsurvivors\tcomplete")
	for _, p := range []doall.Protocol{
		doall.ProtocolA, doall.ProtocolB, doall.ProtocolD,
		doall.Trivial, doall.SingleCheckpoint,
	} {
		res, err := doall.Run(doall.Config{
			Units:    units,
			Workers:  workers,
			Protocol: p,
			// Fresh adversary per run: failure specs are single-use.
			Failures:        doall.CascadeFailures(units/workers, workers-1),
			CheckInvariants: true,
		})
		if err != nil {
			return fmt.Errorf("protocol %v: %w", p, err)
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%d\t%v\n",
			p, res.Work, res.Messages, res.Effort(), res.Rounds, res.Survivors, res.Complete)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	// Protocol C needs small n + t: its takeover deadlines are exponential.
	res, err := doall.Run(doall.Config{
		Units: 16, Workers: 8, Protocol: doall.ProtocolC,
		Failures:        doall.CascadeFailures(2, 7),
		CheckInvariants: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nProtocol C (n=16, t=8, cascade): work=%d messages=%d rounds=%d (exponential by design; engine simulated %d events)\n",
		res.Work, res.Messages, res.Rounds, res.Events)
	return nil
}
