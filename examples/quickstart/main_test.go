package main

import "testing"

// TestRunSmoke executes the example end to end: the cascade-adversary
// comparison must finish every protocol without error.
func TestRunSmoke(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
