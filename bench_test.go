// Benchmarks, one per experiment in DESIGN.md's index (T1–T9, F1–F7,
// X1–X6): each run regenerates the corresponding EXPERIMENTS.md table and
// fails if any paper bound is violated, so `go test -bench=.` re-verifies
// the whole reproduction. The Suite* benchmarks run the whole deterministic
// suite through the internal/batch fan-out runner (sequential vs all-cores
// measures the orchestration speedup); the Engine* benchmarks measure the
// simulator substrate itself.
package doall_test

import (
	"testing"

	"repro"
	"repro/internal/batch"
	"repro/internal/benchmarks"
	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, run func() experiments.Table) {
	b.Helper()
	rows := 0
	for i := 0; i < b.N; i++ {
		t := run()
		if t.Err != nil {
			b.Fatal(t.Err)
		}
		if f := t.Failures(); f > 0 {
			b.Fatalf("%d paper-bound failures", f)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkT1_ProtocolA(b *testing.B) { benchExperiment(b, experiments.T1ProtocolA) }
func BenchmarkT2_ProtocolB(b *testing.B) { benchExperiment(b, experiments.T2ProtocolB) }
func BenchmarkT3_ProtocolC(b *testing.B) { benchExperiment(b, experiments.T3ProtocolC) }
func BenchmarkT4_ProtocolCLowMsg(b *testing.B) {
	benchExperiment(b, experiments.T4ProtocolCLowMsg)
}
func BenchmarkT5_ProtocolD(b *testing.B)       { benchExperiment(b, experiments.T5ProtocolD) }
func BenchmarkT6_ProtocolDRevert(b *testing.B) { benchExperiment(b, experiments.T6ProtocolDRevert) }
func BenchmarkT7_ProtocolDFailureFree(b *testing.B) {
	benchExperiment(b, experiments.T7ProtocolDFailureFree)
}
func BenchmarkT8_Agreement(b *testing.B) { benchExperiment(b, experiments.T8Agreement) }
func BenchmarkT9_Bootstrap(b *testing.B) { benchExperiment(b, experiments.T9Bootstrap) }

func BenchmarkF1_CheckpointFrequency(b *testing.B) {
	benchExperiment(b, experiments.F1CheckpointFrequency)
}
func BenchmarkF2_NaiveVsC(b *testing.B) { benchExperiment(b, experiments.F2NaiveVsC) }
func BenchmarkF3_EffortComparison(b *testing.B) {
	benchExperiment(b, experiments.F3EffortComparison)
}
func BenchmarkF4_TimeDegradation(b *testing.B) {
	benchExperiment(b, experiments.F4TimeDegradation)
}
func BenchmarkF5_SharedMemoryWriteAll(b *testing.B) {
	benchExperiment(b, experiments.F5SharedMemory)
}
func BenchmarkF6_AsyncProtocolA(b *testing.B) {
	benchExperiment(b, experiments.F6AsyncProtocolA)
}
func BenchmarkF7_DynamicWork(b *testing.B) { benchExperiment(b, experiments.F7DynamicWork) }

func BenchmarkX1_FastForward(b *testing.B) { benchExperiment(b, experiments.X1FastForward) }
func BenchmarkX2_PartialCheckpointAblation(b *testing.B) {
	benchExperiment(b, experiments.X2PartialCheckpointAblation)
}
func BenchmarkX3_RevertThreshold(b *testing.B) {
	benchExperiment(b, experiments.X3RevertThreshold)
}
func BenchmarkX4_ScheduleSpace(b *testing.B) {
	benchExperiment(b, experiments.X4ScheduleSpace)
}
func BenchmarkX5_FaultSurvival(b *testing.B) {
	benchExperiment(b, experiments.X5FaultSurvival)
}
func BenchmarkX6_CertificationAtScale(b *testing.B) {
	benchExperiment(b, experiments.X6CertificationAtScale)
}

// Suite benchmarks: the full deterministic experiment suite through the
// batch runner. Comparing Sequential vs Parallel measures the fan-out
// speedup on the machine at hand.

func benchSuite(b *testing.B, workers int) {
	b.Helper()
	exps := experiments.Deterministic()
	for i := 0; i < b.N; i++ {
		tables := experiments.Run(exps, workers)
		if f := experiments.TotalFailures(tables); f > 0 {
			b.Fatalf("%d paper-bound failures", f)
		}
	}
}

func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }
func BenchmarkSuiteParallel(b *testing.B)   { benchSuite(b, 0) }

// BenchmarkSweepParallel runs a protocol × failure × grid sweep through the
// batch runner at full width; jobs are rebuilt-free (NewFailures rebuilds
// only the stateful adversary per run).
func BenchmarkSweepParallel(b *testing.B) {
	jobs := batch.Sweep{
		Protocols: []doall.Protocol{doall.ProtocolA, doall.ProtocolB, doall.ProtocolD},
		Failures: []batch.FailureSpec{
			batch.NoFailureSpec(), batch.CascadeFailureSpec(), batch.RandomFailureSpec(0.02),
		},
		Grid:  []batch.GridPoint{{Units: 64, Workers: 8}, {Units: 256, Workers: 16}},
		Seeds: []int64{1, 2},
	}.Jobs()
	b.ReportMetric(float64(len(jobs)), "jobs")
	for i := 0; i < b.N; i++ {
		for _, r := range batch.Run(jobs, batch.Options{}) {
			if r.Err != nil {
				b.Fatal(r.Name, r.Err)
			}
			if r.GuaranteeViolated() {
				b.Fatal(r.Name, "guarantee violated")
			}
		}
	}
}

// Engine micro-benchmarks: the cost of one simulated protocol run. The case
// definitions live in internal/benchmarks, shared with cmd/bench so the
// committed BENCH_engine.json baseline tracks exactly these benchmarks.

func benchEngineCase(b *testing.B, name string) {
	b.Helper()
	for _, c := range benchmarks.EngineCases() {
		if c.Name == name {
			benchmarks.Run(b, c)
			return
		}
	}
	b.Fatalf("unknown engine case %q", name)
}

func BenchmarkEngineProtocolB(b *testing.B) { benchEngineCase(b, "EngineProtocolB") }

func BenchmarkEngineProtocolD(b *testing.B) { benchEngineCase(b, "EngineProtocolD") }

func BenchmarkEngineProtocolCFastForward(b *testing.B) {
	benchEngineCase(b, "EngineProtocolCFastForward")
}

func BenchmarkEngineLargeT(b *testing.B) { benchEngineCase(b, "EngineLargeT") }

func BenchmarkEngineBroadcastFanout(b *testing.B) { benchEngineCase(b, "EngineBroadcastFanout") }

func BenchmarkEngineFaultStorm(b *testing.B) { benchEngineCase(b, "EngineFaultStorm") }

// BenchmarkEngineGossip measures the successor protocol — leader-free epoch
// gossip, all processes concurrent — through a crash cascade; the Capped
// variant adds the congested-clique bandwidth cap, so its delta is the
// deferred-send queue's cost under constant rumor overflow.
func BenchmarkEngineGossip(b *testing.B) { benchEngineCase(b, "EngineGossip") }

func BenchmarkEngineGossipCapped(b *testing.B) { benchEngineCase(b, "EngineGossipCapped") }

// BenchmarkSweepReuse measures pooled engine reuse across a whole job sweep
// on one worker (allocs/op ≈ total per-run setup cost); shared with
// cmd/bench via internal/benchmarks like the Engine* cases.
func BenchmarkSweepReuse(b *testing.B) {
	for _, c := range benchmarks.SweepCases() {
		if c.Name == "SweepReuseSmall" {
			benchmarks.RunSweep(b, c)
			return
		}
	}
	b.Fatal("unknown sweep case")
}

// BenchmarkExploreSmall measures schedule-space certification throughput
// (schedules/sec): one op exhaustively walks and certifies the Protocol B
// schedule space at the acceptance-criterion instance. Shared with
// cmd/bench so BENCH_engine.json tracks exploration speed.
func BenchmarkExploreSmall(b *testing.B) { benchExploreCase(b, "ExploreSmall") }

// BenchmarkExploreLarge is ExploreSmall's certification-scale sibling: a
// ~65x larger space on the symmetric trivial baseline, walked in canonical
// mode (orbit representatives + prefix-equivalence pruning). ExploreLargeFull
// walks the same space raw, so the pair's schedules/sec ratio isolates the
// symmetry-reduction win.
func BenchmarkExploreLarge(b *testing.B) { benchExploreCase(b, "ExploreLarge") }

func BenchmarkExploreLargeFull(b *testing.B) { benchExploreCase(b, "ExploreLargeFull") }

func benchExploreCase(b *testing.B, name string) {
	b.Helper()
	for _, c := range benchmarks.ExploreCases() {
		if c.Name == name {
			benchmarks.RunExplore(b, c)
			return
		}
	}
	b.Fatalf("unknown explore case %q", name)
}

// Live plane micro-benchmarks: the same workloads as their Engine* twins,
// run over real goroutines and the channel transport. The delta against the
// matching Engine* case is the barrier's cost per run. Shared with cmd/bench
// via internal/benchmarks.

func benchLiveCase(b *testing.B, name string) {
	b.Helper()
	for _, c := range benchmarks.LiveCases() {
		if c.Name == name {
			benchmarks.RunLive(b, c)
			return
		}
	}
	b.Fatalf("unknown live case %q", name)
}

func BenchmarkLiveProtocolB(b *testing.B) { benchLiveCase(b, "LiveProtocolB") }

func BenchmarkLiveProtocolD(b *testing.B) { benchLiveCase(b, "LiveProtocolD") }

func BenchmarkLiveFaultStorm(b *testing.B) { benchLiveCase(b, "LiveFaultStorm") }

func BenchmarkLiveGossip(b *testing.B) { benchLiveCase(b, "LiveGossip") }

func BenchmarkAgreementViaB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := doall.RunAgreement(doall.AgreementConfig{
			Processes: 64, Faults: 8, Value: 1, Protocol: doall.ProtocolB,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Value != 1 {
			b.Fatal("validity broken")
		}
	}
}
