// Package doall implements the fault-tolerant work-performing protocols of
// Dwork, Halpern and Waarts, "Performing Work Efficiently in the Presence of
// Faults" (PODC 1992 / SIAM J. Comput.): t synchronous message-passing
// processes subject to crash failures must perform n idempotent units of
// work, and in every execution in which at least one process survives, all
// the work must be done.
//
// Four protocols are provided, trading work, messages and time:
//
//   - ProtocolA: single active worker with partial (√t-group) and full
//     checkpoints. O(n + t) work, O(t√t) messages, O(nt + t²) rounds.
//   - ProtocolB: Protocol A with go-ahead polling at takeover. O(n + t)
//     work, O(t√t) messages, O(n + t) rounds.
//   - ProtocolC: most-knowledgeable takeover with recursive fault
//     detection. O(n + t) work, n + O(t log t) messages, exponential time.
//     ProtocolCLowMsg is the Corollary 3.9 variant with O(t log t) messages.
//   - ProtocolD: parallel work with agreement phases. n/t + 2 rounds and
//     ≤ 2t² messages when nothing fails; degrades gracefully, reverting to
//     Protocol A if more than half the live processes die in one phase.
//
// A successor protocol from the literature that followed the paper is also
// provided: Gossip, a leader-free epidemic strategy whose per-epoch
// communication is bounded by construction, designed for the
// congested-clique bandwidth cap (Config.Bandwidth).
//
// Baselines from the paper's motivating discussion (Trivial,
// SingleCheckpoint, UniformCheckpoint, NaiveSpread) are included for
// comparison, as is the §5 Byzantine agreement application (RunAgreement)
// and an asynchronous Protocol A over real goroutines with a failure
// detector (see internal/live and the examples).
package doall

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Protocol selects a work-performing strategy.
type Protocol int

const (
	// ProtocolA is the checkpointing protocol of §2 (Theorem 2.3).
	ProtocolA Protocol = iota + 1
	// ProtocolB adds go-ahead polling for O(n + t) time (Theorem 2.8).
	ProtocolB
	// ProtocolC is the O(n + t log t)-message protocol of §3 (Theorem 3.8).
	ProtocolC
	// ProtocolCLowMsg is the Corollary 3.9 variant reporting every ⌈n/t⌉
	// units: O(t log t) messages.
	ProtocolCLowMsg
	// ProtocolD alternates parallel work and agreement phases (§4,
	// Theorem 4.1).
	ProtocolD
	// Trivial has every process perform every unit: tn work, no messages.
	Trivial
	// SingleCheckpoint has one worker checkpoint to everyone after every
	// unit: n + t − 1 work, ~tn messages.
	SingleCheckpoint
	// UniformCheckpoint checkpoints to everyone every ⌈n/k⌉ units
	// (Config.CheckpointK); the §2 strawman.
	UniformCheckpoint
	// NaiveSpread is §3's strawman: report unit u to process u mod t, most
	// knowledgeable takes over, no fault detection; Θ(n + t²) worst-case
	// effort.
	NaiveSpread
	// Gossip is the successor strategy in the epidemic/gossip style:
	// leader-free two-round epochs in which every process works on the first
	// missing unit of its private seeded order and gossips its done-view to
	// ~log t rotating peers. Pairs naturally with Config.Bandwidth (the
	// congested-clique cap).
	Gossip
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolA:
		return "A"
	case ProtocolB:
		return "B"
	case ProtocolC:
		return "C"
	case ProtocolCLowMsg:
		return "C-lowmsg"
	case ProtocolD:
		return "D"
	case Trivial:
		return "trivial"
	case SingleCheckpoint:
		return "single-checkpoint"
	case UniformCheckpoint:
		return "uniform-checkpoint"
	case NaiveSpread:
		return "naive-spread"
	case Gossip:
		return "gossip"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// SingleActive reports whether the protocol maintains the at-most-one-
// active-process invariant (checkable via Config.CheckInvariants).
func (p Protocol) SingleActive() bool {
	switch p {
	case ProtocolA, ProtocolB, ProtocolC, ProtocolCLowMsg,
		SingleCheckpoint, UniformCheckpoint, NaiveSpread:
		return true
	default:
		return false
	}
}

// Config describes one run.
type Config struct {
	// Units is n, the number of idempotent work units (IDs 1..n).
	Units int
	// Workers is t, the number of processes (IDs 0..t-1).
	Workers int
	// Protocol selects the strategy (required).
	Protocol Protocol
	// Failures injects crash failures; nil means failure-free.
	Failures Failures
	// CheckpointK sets k for UniformCheckpoint (ignored otherwise).
	CheckpointK int
	// RevertFactor overrides Protocol D's revert threshold (0 = paper's 2).
	RevertFactor float64
	// DisableRevert turns off Protocol D's Protocol A fallback.
	DisableRevert bool
	// CheckInvariants enables the at-most-one-active check for
	// single-active protocols.
	CheckInvariants bool
	// MaxRound aborts runaway executions (0 = no limit; note Protocol C's
	// deadlines are exponential in n + t by design).
	MaxRound int64
	// Bandwidth caps the point-to-point messages each process may transmit
	// per round — the congested-clique model. Over-budget sends are queued
	// on the sender and transmitted by later rounds (Result.Deferred counts
	// them). 0 means unlimited.
	Bandwidth int
	// Observer, when non-nil, is called once per performed unit of work
	// with the worker and unit (e.g. to drive a workload.Workload).
	Observer func(worker, unit int)
	// Tracer, when non-nil, receives one event per committed action —
	// feed it to a trace recorder to render execution timelines.
	Tracer func(TraceEvent)
}

// TraceEvent describes one committed action of one worker.
type TraceEvent struct {
	Round   int64
	Worker  int
	Work    int // unit performed this round (0 = none)
	Sent    int // messages transmitted this round
	Crashed bool
	Halted  bool
}

// Run executes the configured protocol and returns its metrics. Protocols
// A–D run on the simulator's zero-goroutine stepper substrate unless the
// config needs script-only features (Observer); results are identical on
// either substrate. Engines are recycled from a pool across runs
// (sim.Engine.Reset), so sweeping millions of configurations pays near-zero
// per-run setup allocation; pooling is invisible in the results.
func Run(cfg Config) (Result, error) {
	procs, err := buildProcs(cfg)
	if err != nil {
		return Result{}, err
	}
	opt := core.RunOptions{
		MaxRound:        cfg.MaxRound,
		Bandwidth:       cfg.Bandwidth,
		DetailedMetrics: true,
	}
	if cfg.Tracer != nil {
		tr := cfg.Tracer
		opt.Tracer = func(e sim.Event) {
			tr(TraceEvent{
				Round: e.Round, Worker: e.PID, Work: e.Work, Sent: e.Sent,
				Crashed: e.Crashed, Halted: e.Halted,
			})
		}
	}
	if cfg.Failures != nil {
		opt.Adversary = cfg.Failures.adversary()
	}
	if cfg.CheckInvariants && cfg.Protocol.SingleActive() {
		opt.MaxActive = 1
	}
	res, err := core.RunProcs(cfg.Units, cfg.Workers, procs, opt)
	if err != nil {
		return Result{}, err
	}
	return newResult(res), nil
}

func buildProcs(cfg Config) (core.Procs, error) {
	if cfg.Workers <= 0 {
		return core.Procs{}, fmt.Errorf("doall: Workers = %d, need at least one", cfg.Workers)
	}
	if cfg.Units < 0 {
		return core.Procs{}, fmt.Errorf("doall: Units = %d, need non-negative", cfg.Units)
	}
	exec := execFor(cfg)
	scripted := func(scripts func(int) sim.Script, err error) (core.Procs, error) {
		if err != nil {
			return core.Procs{}, err
		}
		return core.Procs{Scripts: scripts}, nil
	}
	switch cfg.Protocol {
	case ProtocolA:
		return core.ProtocolAProcs(core.ABConfig{N: cfg.Units, T: cfg.Workers, Exec: exec})
	case ProtocolB:
		return core.ProtocolBProcs(core.ABConfig{N: cfg.Units, T: cfg.Workers, Exec: exec})
	case ProtocolC:
		return core.ProtocolCProcs(core.CConfig{N: cfg.Units, T: cfg.Workers, Exec: exec})
	case ProtocolCLowMsg:
		every := (cfg.Units + cfg.Workers - 1) / max(cfg.Workers, 1)
		return core.ProtocolCProcs(core.CConfig{
			N: cfg.Units, T: cfg.Workers, Exec: exec, ReportEvery: max(every, 1),
		})
	case ProtocolD:
		return core.ProtocolDProcs(core.DConfig{
			N: cfg.Units, T: cfg.Workers, Exec: exec,
			RevertFactor: cfg.RevertFactor, DisableRevert: cfg.DisableRevert,
		})
	case Trivial:
		if cfg.Observer == nil {
			return core.Procs{Scripts: core.TrivialScripts(cfg.Units, cfg.Workers)}, nil
		}
		return core.Procs{Scripts: trivialObserved(cfg)}, nil
	case SingleCheckpoint:
		return scripted(core.UniformCheckpointScripts(core.UniformConfig{
			N: cfg.Units, T: cfg.Workers, K: max(cfg.Units, 1), Exec: exec,
		}))
	case UniformCheckpoint:
		if cfg.CheckpointK <= 0 {
			return core.Procs{}, fmt.Errorf("doall: UniformCheckpoint needs CheckpointK > 0")
		}
		return scripted(core.UniformCheckpointScripts(core.UniformConfig{
			N: cfg.Units, T: cfg.Workers, K: cfg.CheckpointK, Exec: exec,
		}))
	case NaiveSpread:
		return scripted(core.NaiveSpreadScripts(core.NaiveConfig{N: cfg.Units, T: cfg.Workers, Exec: exec}))
	case Gossip:
		return core.GossipProcs(core.GossipConfig{N: cfg.Units, T: cfg.Workers, Exec: exec})
	default:
		return core.Procs{}, fmt.Errorf("doall: unknown protocol %v", cfg.Protocol)
	}
}

// execFor wires the user's Observer into the protocol's work executor.
func execFor(cfg Config) core.WorkExecutor {
	if cfg.Observer == nil {
		return nil
	}
	obs := cfg.Observer
	return func(p *sim.Proc, unit int) {
		p.StepWork(unit)
		obs(p.ID(), unit)
	}
}

func trivialObserved(cfg Config) func(int) sim.Script {
	obs := cfg.Observer
	return func(id int) sim.Script {
		return func(p *sim.Proc) {
			for u := 1; u <= cfg.Units; u++ {
				p.StepWork(u)
				obs(id, u)
			}
		}
	}
}
