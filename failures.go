package doall

import (
	"repro/internal/adversary"
	"repro/internal/sim"
)

// Failures describes a crash-failure pattern for a run. Implementations are
// single-use: build a fresh value per Run call.
type Failures interface {
	adversary() sim.Adversary
}

type failureSpec struct {
	adv sim.Adversary
}

func (f failureSpec) adversary() sim.Adversary { return f.adv }

// NoFailures is the failure-free environment.
func NoFailures() Failures { return failureSpec{adv: adversary.None()} }

// RandomFailures crashes each committed action with probability p, at most
// maxCrashes times (use Workers-1 to preserve a survivor). Crash points
// inside a round (work kept or lost, broadcast prefix delivered) are chosen
// randomly; runs are reproducible for a fixed seed.
func RandomFailures(p float64, maxCrashes int, seed int64) Failures {
	return failureSpec{adv: adversary.NewRandom(p, maxCrashes, seed)}
}

// CascadeFailures crashes every process at its first send after it has
// performed unitsBetween units of work, keeping the work but suppressing the
// broadcast: the adversarial pattern behind the paper's worst-case redo
// chains.
func CascadeFailures(unitsBetween, maxCrashes int) Failures {
	return failureSpec{adv: adversary.NewCascade(unitsBetween, maxCrashes)}
}

// Crash is one planned failure for ScheduledFailures. Exactly one of Round /
// AtAction triggers it: Round ≥ 0 crashes the process at the start of that
// round, AtAction > 0 crashes it while committing its AtAction-th action,
// with KeepWork controlling whether a work unit in that action survives and
// Deliver selecting which messages of the broadcast escape.
type Crash struct {
	Process  int
	Round    int64
	AtAction int
	KeepWork bool
	Deliver  []bool
}

// ScheduledFailures executes a fixed crash plan.
func ScheduledFailures(crashes ...Crash) Failures {
	converted := make([]adversary.Crash, len(crashes))
	for i, c := range crashes {
		converted[i] = adversary.Crash{
			PID: c.Process, Round: c.Round, AtAction: c.AtAction,
			KeepWork: c.KeepWork, Deliver: c.Deliver,
		}
	}
	return failureSpec{adv: adversary.NewSchedule(converted...)}
}

// CombinedFailures chains several failure patterns; the first crash verdict
// wins and scheduled crashes are unioned.
func CombinedFailures(specs ...Failures) Failures {
	advs := make([]sim.Adversary, len(specs))
	for i, s := range specs {
		advs[i] = s.adversary()
	}
	return failureSpec{adv: adversary.NewChain(advs...)}
}
