package doall

import (
	"repro/internal/adversary"
	"repro/internal/sim"
)

// Failures describes a fault pattern for a run — crashes, crash-recovery
// restarts, message loss and rate slowdowns. Implementations are single-use:
// build a fresh value per Run call.
type Failures interface {
	adversary() sim.Adversary
}

type failureSpec struct {
	adv sim.Adversary
}

func (f failureSpec) adversary() sim.Adversary { return f.adv }

// NoFailures is the failure-free environment.
func NoFailures() Failures { return failureSpec{adv: adversary.None()} }

// RandomFailures crashes each committed action with probability p, at most
// maxCrashes times (use Workers-1 to preserve a survivor). Crash points
// inside a round (work kept or lost, broadcast prefix delivered) are chosen
// randomly; runs are reproducible for a fixed seed.
func RandomFailures(p float64, maxCrashes int, seed int64) Failures {
	return failureSpec{adv: adversary.NewRandom(p, maxCrashes, seed)}
}

// CascadeFailures crashes every process at its first send after it has
// performed unitsBetween units of work, keeping the work but suppressing the
// broadcast: the adversarial pattern behind the paper's worst-case redo
// chains.
func CascadeFailures(unitsBetween, maxCrashes int) Failures {
	return failureSpec{adv: adversary.NewCascade(unitsBetween, maxCrashes)}
}

// Crash is one planned failure for ScheduledFailures. Exactly one of Round /
// AtAction triggers it: Round ≥ 0 crashes the process at the start of that
// round, AtAction > 0 crashes it while committing its AtAction-th action,
// with KeepWork controlling whether a work unit in that action survives and
// Deliver selecting which messages of the broadcast escape. RestartAt > 0
// additionally schedules a crash-recovery restart at that (strictly later)
// round; only the stepper-substrate protocol bodies support recovery, and a
// non-recoverable process simply stays crashed.
type Crash struct {
	Process   int
	Round     int64
	AtAction  int
	KeepWork  bool
	Deliver   []bool
	RestartAt int64
}

// ScheduledFailures executes a fixed crash plan.
func ScheduledFailures(crashes ...Crash) Failures {
	converted := make([]adversary.Crash, len(crashes))
	for i, c := range crashes {
		converted[i] = adversary.Crash{
			PID: c.Process, Round: c.Round, AtAction: c.AtAction,
			KeepWork: c.KeepWork, Deliver: c.Deliver, RestartAt: c.RestartAt,
		}
	}
	return failureSpec{adv: adversary.NewSchedule(converted...)}
}

// LossyFailures drops each transmitted message at delivery time with
// probability p, at most maxDrops times. The sender still pays for a lost
// message (it counts in Result.Messages); the recipient never sees it. Runs
// are reproducible for a fixed seed.
func LossyFailures(p float64, maxDrops int, seed int64) Failures {
	return failureSpec{adv: adversary.NewLoss(p, maxDrops, seed)}
}

// SlowdownFailures degrades one worker to rate 1/factor from its first
// committed action at or after the given round: each action is followed by
// factor-1 idle rounds, the paper's slow-workstation regime.
func SlowdownFailures(process int, round int64, factor int) Failures {
	return failureSpec{adv: &adversary.Slowdown{PID: process, Round: round, Factor: factor}}
}

// CombinedFailures chains several failure patterns; the first non-surviving
// verdict wins, scheduled crashes and restarts are unioned, and a message is
// delivered only if every member lets it through.
func CombinedFailures(specs ...Failures) Failures {
	advs := make([]sim.Adversary, len(specs))
	for i, s := range specs {
		advs[i] = s.adversary()
	}
	return failureSpec{adv: adversary.NewChain(advs...)}
}
