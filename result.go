package doall

import "repro/internal/sim"

// Result reports the cost of a run in the paper's three measures — work,
// messages and time — plus bookkeeping.
type Result struct {
	// Work counts units performed, with multiplicity; WorkDistinct counts
	// distinct units.
	Work         int64
	WorkDistinct int
	// Messages counts point-to-point messages transmitted; MessagesByKind
	// breaks them down by payload kind (checkpoints, go-aheads, polls...).
	Messages       int64
	MessagesByKind map[string]int64
	// Rounds is the round by which every process had retired.
	Rounds int64
	// Complete reports whether every unit was performed. The paper's
	// guarantee: Complete holds whenever Survivors > 0.
	Complete bool
	// Survivors counts processes that terminated voluntarily; Crashes
	// counts injected failures.
	Survivors int
	Crashes   int
	// Restarts counts crash-recovery revivals; Dropped counts messages lost
	// in transit (sent, and so paid for, but never delivered); Omitted
	// counts sends suppressed at the source by omission faults (never sent,
	// not in Messages); Deferred counts sends that overflowed the
	// Config.Bandwidth budget and were queued for a later round.
	Restarts int64
	Dropped  int64
	Omitted  int64
	Deferred int64
	// Events counts simulated script steps; Rounds/Events measures how much
	// quiet time the engine fast-forwarded over.
	Events int64
	// Workers holds per-process statistics.
	Workers []WorkerStats
}

// Effort is work plus messages, the paper's combined cost measure.
func (r Result) Effort() int64 { return r.Work + r.Messages }

// WorkerStats summarises one process.
type WorkerStats struct {
	// Status is "terminated", "crashed" or "running".
	Status string
	// Work counts units this process performed; Sent counts messages it
	// transmitted; RetireRound is when it stopped.
	Work        int64
	Sent        int64
	RetireRound int64
}

func newResult(res sim.Result) Result {
	out := Result{
		Work:           res.WorkTotal,
		WorkDistinct:   res.WorkDistinct,
		Messages:       res.Messages,
		MessagesByKind: res.MessagesByKind,
		Rounds:         res.Rounds,
		Complete:       res.Complete(),
		Survivors:      res.Survivors,
		Crashes:        res.Crashes,
		Restarts:       res.Restarts,
		Dropped:        res.Dropped,
		Omitted:        res.Omitted,
		Deferred:       res.Deferred,
		Events:         res.Events,
		Workers:        make([]WorkerStats, len(res.PerProc)),
	}
	for i, p := range res.PerProc {
		out.Workers[i] = WorkerStats{
			Status:      p.Status.String(),
			Work:        p.Work,
			Sent:        p.Sent,
			RetireRound: p.RetireRound,
		}
	}
	return out
}
