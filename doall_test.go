package doall

import (
	"testing"

	"repro/internal/workload"
)

func TestRunAllProtocolsFailureFree(t *testing.T) {
	for _, p := range []Protocol{
		ProtocolA, ProtocolB, ProtocolD, Trivial, SingleCheckpoint, NaiveSpread,
	} {
		res, err := Run(Config{Units: 32, Workers: 8, Protocol: p, CheckInvariants: true})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.Complete {
			t.Fatalf("%v: incomplete", p)
		}
		if res.WorkDistinct != 32 {
			t.Fatalf("%v: distinct = %d", p, res.WorkDistinct)
		}
	}
	// Protocol C variants need small n + t (exponential deadlines).
	for _, p := range []Protocol{ProtocolC, ProtocolCLowMsg} {
		res, err := Run(Config{Units: 16, Workers: 4, Protocol: p, CheckInvariants: true})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.Complete {
			t.Fatalf("%v: incomplete", p)
		}
	}
}

func TestRunWithFailures(t *testing.T) {
	for _, f := range []Failures{
		NoFailures(),
		RandomFailures(0.05, 7, 42),
		CascadeFailures(4, 7),
		ScheduledFailures(Crash{Process: 0, Round: 3}),
		CombinedFailures(
			ScheduledFailures(Crash{Process: 1, Round: 5}),
			CascadeFailures(8, 2),
		),
	} {
		res, err := Run(Config{
			Units: 32, Workers: 8, Protocol: ProtocolB,
			Failures: f, CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Survivors > 0 && !res.Complete {
			t.Fatalf("guarantee violated: %+v", res)
		}
	}
}

func TestRunObserverDrivesWorkload(t *testing.T) {
	valves := workload.NewValves(16)
	res, err := Run(Config{
		Units: 16, Workers: 4, Protocol: ProtocolB,
		Failures: CascadeFailures(4, 3),
		Observer: func(_, unit int) { valves.Do(unit) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || !valves.AllClosed() {
		t.Fatal("valves not all closed")
	}
}

func TestRunUniformCheckpointK(t *testing.T) {
	res, err := Run(Config{
		Units: 32, Workers: 8, Protocol: UniformCheckpoint, CheckpointK: 4,
		Failures: CascadeFailures(8, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
	if _, err := Run(Config{Units: 8, Workers: 2, Protocol: UniformCheckpoint}); err == nil {
		t.Fatal("want error without CheckpointK")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Units: 4, Workers: 0, Protocol: ProtocolA}); err == nil {
		t.Fatal("want error for Workers=0")
	}
	if _, err := Run(Config{Units: -1, Workers: 2, Protocol: ProtocolA}); err == nil {
		t.Fatal("want error for Units<0")
	}
	if _, err := Run(Config{Units: 4, Workers: 2}); err == nil {
		t.Fatal("want error for missing protocol")
	}
}

func TestResultEffort(t *testing.T) {
	res, err := Run(Config{Units: 16, Workers: 4, Protocol: ProtocolA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Effort() != res.Work+res.Messages {
		t.Fatal("effort mismatch")
	}
	if len(res.Workers) != 4 {
		t.Fatalf("workers = %d", len(res.Workers))
	}
	if res.Workers[0].Status != "terminated" {
		t.Fatalf("worker 0 status = %q", res.Workers[0].Status)
	}
}

func TestProtocolStrings(t *testing.T) {
	if ProtocolA.String() != "A" || ProtocolCLowMsg.String() != "C-lowmsg" {
		t.Fatal("protocol names wrong")
	}
	if !ProtocolA.SingleActive() || ProtocolD.SingleActive() {
		t.Fatal("SingleActive wrong")
	}
}

func TestRunAgreementPublicAPI(t *testing.T) {
	res, err := RunAgreement(AgreementConfig{
		Processes: 12, Faults: 3, Value: 9, Protocol: ProtocolB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 9 {
		t.Fatalf("decided %d, want 9", res.Value)
	}
	for pid, d := range res.Decisions {
		if d != 9 {
			t.Fatalf("process %d decided %d", pid, d)
		}
	}
	// Under a crashing general, agreement still holds.
	res2, err := RunAgreement(AgreementConfig{
		Processes: 12, Faults: 3, Value: 9, Protocol: ProtocolB,
		Failures: ScheduledFailures(Crash{Process: 0, AtAction: 1, Deliver: []bool{true}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value != 0 && res2.Value != 9 {
		t.Fatalf("decided %d", res2.Value)
	}
}
