package live_test

// Loopback wire-cluster harness: a serve-side Plane over a WireTransport
// plus N in-process Join runtimes talking real TCP (or unix) sockets. The
// cmd-level tests re-run the same shape as separate OS processes; here the
// joins share the test process so every conformance leg can run in the
// normal test matrix (and under -race).

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
)

// steppersByName resolves a protocol name exactly as a join process does,
// returning the steppers and whether the protocol claims the single-active
// invariant.
func steppersByName(protocol string, n, tt int) (func(int) sim.Stepper, bool, error) {
	tg, err := explore.NewTarget(protocol, n, tt, max(tt-1, 0))
	if err != nil {
		return nil, false, err
	}
	st, err := core.SteppersFor(tg.NewProcs())
	return st, tg.SingleActive, err
}

// wireCluster configures one loopback cluster run.
type wireCluster struct {
	protocol   string
	n, tt      int
	joins      int
	bandwidth  int    // > 0: congested-clique per-round outbound cap (serve-side)
	network    string // "tcp" (default) or "unix"
	latency    live.Latency
	serveChaos live.WireChaos
	joinChaos  live.WireChaos
	bounce     int // > 0: bounce every join's connection this many times mid-run
	delayHook  func(pid int, d time.Duration)
}

// run executes the cluster and returns the serve-side Result, trace and
// error; join runtimes must all exit cleanly.
func (cc wireCluster) run(t *testing.T, mkAdv func() sim.Adversary) (sim.Result, []sim.Event, error) {
	t.Helper()
	network := cc.network
	addr := "127.0.0.1:0"
	if network == "" {
		network = "tcp"
	}
	if network == "unix" {
		addr = filepath.Join(t.TempDir(), "doall.sock")
	}
	joins := cc.joins
	if joins == 0 {
		joins = 2
	}
	_, single, err := steppersByName(cc.protocol, cc.n, cc.tt)
	if err != nil {
		t.Fatalf("protocol %q: %v", cc.protocol, err)
	}
	maxActive := 0
	if single {
		maxActive = 1
	}
	wt, err := live.NewWireTransport(live.WireOptions{
		Network: network, Addr: addr, Joins: joins,
		Spec:  live.WireSpec{Protocol: cc.protocol, Units: cc.n, Workers: cc.tt, Latency: cc.latency},
		Chaos: cc.serveChaos, Grace: 10 * time.Second, ReadyTimeout: 30 * time.Second,
		RTO: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	joinErrs := make(chan error, joins)
	for i := 0; i < joins; i++ {
		go func() {
			joinErrs <- live.Join(live.JoinConfig{
				Network: network, Addr: wt.Addr(),
				Steppers: func(spec live.WireSpec) (func(int) sim.Stepper, error) {
					st, _, err := steppersByName(spec.Protocol, spec.Units, spec.Workers)
					return st, err
				},
				Chaos: cc.joinChaos, ReconnectGrace: 10 * time.Second,
				RTO: 5 * time.Millisecond, DelayHook: cc.delayHook,
			})
		}()
	}
	if err := wt.WaitReady(); err != nil {
		t.Fatalf("cluster ready: %v", err)
	}
	stopBounce := make(chan struct{})
	if cc.bounce > 0 {
		go func() {
			for k := 0; k < cc.bounce; k++ {
				select {
				case <-stopBounce:
					return
				case <-time.After(3 * time.Millisecond):
				}
				for i := 0; i < joins; i++ {
					wt.BounceConn(i)
				}
			}
		}()
	}
	var trace []sim.Event
	res, runErr := live.Run(live.Config{
		NumProcs: cc.tt, NumUnits: cc.n,
		Adversary: mkAdv(), MaxActive: maxActive, Bandwidth: cc.bandwidth,
		DetailedMetrics: true,
		Tracer:          func(e sim.Event) { trace = append(trace, e) },
		Transport:       wt,
	}, nil)
	close(stopBounce)
	for i := 0; i < joins; i++ {
		if jerr := <-joinErrs; jerr != nil {
			t.Errorf("join %d: %v", i, jerr)
		}
	}
	return res, trace, runErr
}

// engineReference runs the same configuration on the sim engine with a
// trace.
func engineReference(t *testing.T, protocol string, n, tt, bandwidth int, mkAdv func() sim.Adversary) (sim.Result, []sim.Event, error) {
	t.Helper()
	st, single, err := steppersByName(protocol, n, tt)
	if err != nil {
		t.Fatalf("steppers: %v", err)
	}
	maxActive := 0
	if single {
		maxActive = 1
	}
	var trace []sim.Event
	res, runErr := core.RunSteppers(n, tt, st, core.RunOptions{
		Adversary: mkAdv(), MaxActive: maxActive, Bandwidth: bandwidth,
		DetailedMetrics: true,
		Tracer:          func(e sim.Event) { trace = append(trace, e) },
	})
	return res, trace, runErr
}

// requireWireConformance runs one configuration on the engine and as a wire
// cluster and requires identical Result, error text and full trace.
func requireWireConformance(t *testing.T, cc wireCluster, mkAdv func() sim.Adversary) sim.Result {
	t.Helper()
	simRes, simTrace, simErr := engineReference(t, cc.protocol, cc.n, cc.tt, cc.bandwidth, mkAdv)
	wireRes, wireTrace, wireErr := cc.run(t, mkAdv)
	if fmt.Sprint(simErr) != fmt.Sprint(wireErr) {
		t.Fatalf("errors diverge:\nsim:  %v\nwire: %v", simErr, wireErr)
	}
	if !reflect.DeepEqual(simRes, wireRes) {
		t.Fatalf("results diverge:\nsim:  %+v\nwire: %+v", simRes, wireRes)
	}
	if !reflect.DeepEqual(simTrace, wireTrace) {
		t.Fatalf("traces diverge: sim %d events, wire %d events\nsim:  %+v\nwire: %+v",
			len(simTrace), len(wireTrace), simTrace, wireTrace)
	}
	return wireRes
}

func noAdv() sim.Adversary { return nil }

// TestWireClusterConformance is the tentpole's acceptance leg: every
// protocol A–D as a loopback TCP cluster of 2 joins, failure-free and under
// replayed explore.Vector fault schedules, DeepEqual to the engine in
// Result, error and trace.
func TestWireClusterConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns socket clusters")
	}
	grids := []struct{ n, t int }{{16, 4}, {24, 8}}
	protocols := []string{"a", "b", "c", "c-lowmsg", "d", "gossip"}
	for _, g := range grids {
		for _, proto := range protocols {
			for advName, mkAdv := range planeAdversaries(g.n, g.t) {
				name := fmt.Sprintf("%s/n=%d,t=%d/%s", proto, g.n, g.t, advName)
				proto, g, mkAdv := proto, g, mkAdv
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res := requireWireConformance(t, wireCluster{protocol: proto, n: g.n, tt: g.t, joins: 2}, mkAdv)
					_ = res
				})
			}
		}
	}
}

// TestWireClusterBandwidthCap is the congested-clique wire leg: gossip under
// a per-round outbound cap of half its fanout, run as a loopback TCP cluster,
// must match the capped engine exactly — the deferred-send queue and the
// pump phase are plane-side state, so the wire plane inherits them unchanged.
func TestWireClusterBandwidthCap(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns socket clusters")
	}
	n, tt := 24, 8
	cap := max(1, (core.GossipFanout(tt)+1)/2)
	for advName, mkAdv := range planeAdversaries(n, tt) {
		advName, mkAdv := advName, mkAdv
		t.Run(advName, func(t *testing.T) {
			t.Parallel()
			res := requireWireConformance(t,
				wireCluster{protocol: "gossip", n: n, tt: tt, joins: 2, bandwidth: cap}, mkAdv)
			if res.Deferred == 0 {
				t.Fatalf("cap %d below fanout %d should defer rumors", cap, core.GossipFanout(tt))
			}
		})
	}
}

// TestWireClusterUnixSocket runs one representative leg over a unix socket:
// the framing and lifecycle are transport-network-agnostic.
func TestWireClusterUnixSocket(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns socket clusters")
	}
	mkAdv := planeAdversaries(24, 8)["cascade"]
	requireWireConformance(t, wireCluster{protocol: "b", n: 24, tt: 8, joins: 3, network: "unix"}, mkAdv)
}

// TestWireClusterChaos runs clusters whose both directions suffer seeded
// drop/duplicate/reorder chaos: the sequencing layer (dedup, reorder
// buffer, retransmission) must deliver exactly-once in-order semantics, so
// the Result and trace still match the engine exactly.
func TestWireClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos retransmission sleeps")
	}
	const n, tt = 24, 8
	cases := []struct {
		name                  string
		serveChaos, joinChaos live.WireChaos
	}{
		{"drop", live.WireChaos{Drop: 0.15, Seed: 3}, live.WireChaos{Drop: 0.15, Seed: 4}},
		{"dup-all", live.WireChaos{Dup: 1}, live.WireChaos{Dup: 1}},
		{"reorder", live.WireChaos{Reorder: 0.25, Seed: 5}, live.WireChaos{Reorder: 0.25, Seed: 6}},
		{"storm", live.WireChaos{Drop: 0.1, Dup: 0.1, Reorder: 0.1, Seed: 7}, live.WireChaos{Drop: 0.1, Dup: 0.1, Reorder: 0.1, Seed: 8}},
	}
	mkAdv := planeAdversaries(n, tt)["cascade"]
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			requireWireConformance(t, wireCluster{
				protocol: "b", n: n, tt: tt, joins: 2,
				serveChaos: c.serveChaos, joinChaos: c.joinChaos,
			}, mkAdv)
		})
	}
}

// TestWireClusterReconnect drops every join's connection mid-run,
// repeatedly: the rejoin handshake plus the peers' resend buffers must make
// the interruptions invisible — same Result, same trace, no errors.
func TestWireClusterReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("reconnect sleeps")
	}
	mkAdv := planeAdversaries(24, 8)["cascade"]
	requireWireConformance(t, wireCluster{
		protocol: "b", n: 24, tt: 8, joins: 2,
		latency: live.Latency{Base: 500 * time.Microsecond, Jitter: time.Millisecond, Seed: 9},
		bounce:  3,
	}, mkAdv)
}

// TestWireClusterSoak is the bounded multi-process soak: a rotation of
// protocols × fault schedules × chaos profiles on fresh clusters, every run
// checked against the engine. Bounded by iteration count so CI wall-clock
// stays predictable.
func TestWireClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	const n, tt = 16, 4
	protocols := []string{"a", "b", "c", "d"}
	advs := []func() sim.Adversary{
		noAdv,
		planeAdversaries(n, tt)["cascade"],
		faultAdversaries(n, tt)["storm"],
	}
	for i := 0; i < 8; i++ {
		proto := protocols[i%len(protocols)]
		mkAdv := advs[i%len(advs)]
		chaos := live.WireChaos{}
		if i%2 == 1 {
			chaos = live.WireChaos{Drop: 0.08, Dup: 0.08, Reorder: 0.08, Seed: int64(i)}
		}
		name := fmt.Sprintf("iter-%d-%s", i, proto)
		t.Run(name, func(t *testing.T) {
			requireWireConformance(t, wireCluster{
				protocol: proto, n: n, tt: tt, joins: 1 + i%3,
				serveChaos: chaos, joinChaos: chaos,
			}, mkAdv)
		})
	}
}

// TestWireClusterJoinDeath kills one join mid-run — its session is
// force-expired, the protocol-level equivalent of SIGKILLing the join
// process and letting the reconnect grace lapse (the cmd-level cluster test
// sends the real signal) — and checks the serve side books the vanished
// PIDs as crashes producing the same certificate as the equivalent
// explore.Vector crash schedule.
func TestWireClusterJoinDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns socket clusters")
	}
	const n, tt = 24, 6
	wt, err := live.NewWireTransport(live.WireOptions{
		Network: "tcp", Addr: "127.0.0.1:0", Joins: 2,
		Spec:  live.WireSpec{Protocol: "b", Units: n, Workers: tt, Latency: live.Latency{Base: 100 * time.Microsecond, Seed: 17}},
		Grace: 10 * time.Second, RTO: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill session 1 (PIDs [3,6)) once the cluster has visibly stepped a
	// while: the 20th latency draw proves the run is genuinely mid-flight.
	var draws atomic.Int64
	var kill sync.Once
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			errs <- live.Join(live.JoinConfig{
				Network: "tcp", Addr: wt.Addr(),
				Steppers: func(spec live.WireSpec) (func(int) sim.Stepper, error) {
					st, _, err := steppersByName(spec.Protocol, spec.Units, spec.Workers)
					return st, err
				},
				ReconnectGrace: 300 * time.Millisecond, RTO: 5 * time.Millisecond,
				DelayHook: func(int, time.Duration) {
					if draws.Add(1) == 20 {
						kill.Do(func() { go wt.ExpireSession(1) })
					}
				},
			})
		}()
	}
	if err := wt.WaitReady(); err != nil {
		t.Fatal(err)
	}
	res, runErr := live.Run(live.Config{
		NumProcs: tt, NumUnits: n, MaxActive: 1, DetailedMetrics: true, Transport: wt,
	}, nil)
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	failures := 0
	for i := 0; i < 2; i++ {
		if <-errs != nil {
			failures++ // the killed join errors out by design
		}
	}
	if failures != 1 {
		t.Errorf("join failures = %d, want exactly 1 (the expired session)", failures)
	}
	const half = 3 // session 1's range is [3, 6)
	if res.Crashes != tt-half {
		t.Fatalf("crashes = %d, want %d (the dead join's PID range)", res.Crashes, tt-half)
	}
	// Reconstruct the equivalent explore.Vector crash schedule from the
	// retire rounds the deaths landed at and replay it on the engine: the
	// certificates must agree.
	var vec explore.Vector
	for pid := half; pid < tt; pid++ {
		if res.PerProc[pid].Status != sim.StatusCrashed {
			t.Fatalf("pid %d: status %v, want crashed", pid, res.PerProc[pid].Status)
		}
		vec = append(vec, explore.Choice{Victim: pid, Round: res.PerProc[pid].RetireRound})
	}
	if err := vec.Validate(); err != nil {
		t.Fatalf("reconstructed vector: %v", err)
	}
	simRes, _, simErr := engineReference(t, "b", n, tt, 0, func() sim.Adversary { return vec.Adversary() })
	if simErr != nil {
		t.Fatalf("engine replay: %v", simErr)
	}
	if !reflect.DeepEqual(simRes, res) {
		t.Fatalf("SIGKILL-equivalent schedule diverges:\nsim:  %+v\nwire: %+v", simRes, res)
	}
}
