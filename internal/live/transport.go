package live

import (
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Grant is one coordinator→process frame: the messages delivered to the
// process this round plus permission to take one step. Round is the round
// being granted — the worker refuses a grant whose round disagrees with its
// process's clock, so a transport that reorders or replays frames is caught
// deterministically. Kill tears the process worker down instead (crash,
// halt or plane shutdown).
type Grant struct {
	Round int64
	Msgs  []sim.Message
	Kill  bool
}

// YieldFrame is one process→coordinator frame: everything the process
// produced for one granted round in a single hop — the yield the body
// returned (or the panic it raised), stamped with the round it answers.
// Round is the barrier's sense value: the RoundBatch accepts only frames
// carrying the round currently armed, so a transport that delays a frame
// past its round cannot corrupt a later barrier.
type YieldFrame struct {
	PID      int
	Round    int64
	Yield    sim.Yield
	PanicVal any
	Panicked bool
}

// YieldSink is where a transport lands inbound yield frames: the plane's
// RoundBatch barrier. Arrive is safe to call from any goroutine and never
// blocks; the sink absorbs one frame per granted process per round.
type YieldSink interface {
	Arrive(f YieldFrame)
}

// Transport carries the barrier traffic of a live plane: grants outbound to
// the process workers, yields inbound to the coordinator's RoundBatch. The
// contract every implementation must provide:
//
//   - per-process FIFO order on grants, and a happens-before edge on every
//     transferred frame (the in-process implementation gets both from
//     channels and the barrier's atomics; a socket implementation gets them
//     from the connection);
//   - SendGrant never blocks on a worker that is parked between steps, and
//     SendYield never blocks the worker longer than the transport's own
//     delivery delay (the coordinator grants at most one step per process
//     per round, so capacity one per process suffices);
//   - RecvGrant blocks until a grant (or Close) arrives; every SendYield
//     frame is eventually handed to the sink, exactly once.
//
// Delivery TIMING is entirely the transport's: frames may take arbitrarily
// long and arrive in any cross-process order. The sense-reversing barrier
// makes the run's Result independent of it, which is what a future socket
// transport needs: serialize Grant/YieldFrame, drain inbound frames into
// the sink from the connection reader (the shape ChanTransport's unbatched
// mode rehearses) — nothing about the coordinator changes.
type Transport interface {
	// Open sizes the transport for n processes and installs the sink that
	// receives every yield frame; called by Plane.Run before any frame
	// flows. A pooled plane may Open its own transport once per run, so
	// implementations should tolerate repeated Open calls with the same n.
	Open(n int, sink YieldSink)
	// SendGrant hands one grant to process pid (coordinator side).
	SendGrant(pid int, g Grant)
	// RecvGrant blocks for the next grant addressed to pid (worker side);
	// ok=false means the transport closed underneath the worker.
	RecvGrant(pid int) (g Grant, ok bool)
	// SendYield hands one yield frame toward the sink (worker side).
	SendYield(f YieldFrame)
	// Close tears the transport down after every worker has exited.
	Close()
}

// Latency models per-frame delivery delay on the yield path: Base plus a
// uniformly random extra in [0, Jitter), drawn from a per-process generator
// seeded Seed+pid — reproducible wall-clock timing without any cross-worker
// lock. Delays perturb real arrival order at the barrier (that is their
// point: they exercise it) but never the Result.
type Latency struct {
	Base   time.Duration
	Jitter time.Duration
	Seed   int64
}

func (l Latency) delay(rng *rand.Rand) time.Duration {
	d := l.Base
	if l.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(l.Jitter)))
	}
	return d
}

// ChanTransport is the in-process Transport: one capacity-1 grant channel
// per process, yields delivered straight into the plane's RoundBatch. It is
// the default transport of a Plane and survives reuse across pooled runs
// (Open with an unchanged n keeps the channels).
//
// The yield path has two modes. Batched (the default): SendYield calls the
// sink on the worker's own goroutine — the whole round's output lands in
// the RoundBatch in one hop, no intermediate queue, no coordinator wakeup
// except for the round's last frame. Unbatched (NewUnbatchedChanTransport):
// frames go through a channel drained by a pump goroutine, the shape a
// socket transport's connection reader has — one queue hop per frame. The
// two modes draw identical latency streams for identical seeds, a property
// TestTransportLatencyDeterminism pins.
type ChanTransport struct {
	lat       Latency
	unbatched bool
	sink      YieldSink
	grants    []chan Grant
	frames    chan YieldFrame // unbatched mode: the pump's inbound queue
	pumpDone  chan struct{}
	rngs      []*rand.Rand
	closed    bool

	// delayHook, when non-nil, observes every drawn delay before it is
	// slept (test instrumentation; see export_test.go).
	delayHook func(pid int, d time.Duration)
}

// NewChanTransport builds an in-process transport with the given latency
// model (zero Latency means immediate delivery).
func NewChanTransport(lat Latency) *ChanTransport {
	return &ChanTransport{lat: lat}
}

// NewUnbatchedChanTransport builds an in-process transport that routes every
// yield frame through an internal queue drained by a pump goroutine instead
// of calling the sink directly — the delivery topology a socket transport's
// reader loop has. Results and latency streams are identical to the batched
// transport for identical seeds; only the number of in-process hops per
// frame differs.
func NewUnbatchedChanTransport(lat Latency) *ChanTransport {
	return &ChanTransport{lat: lat, unbatched: true}
}

// Open implements Transport.
func (ct *ChanTransport) Open(n int, sink YieldSink) {
	ct.sink = sink
	if len(ct.grants) != n || ct.closed {
		ct.grants = make([]chan Grant, n)
		for i := range ct.grants {
			ct.grants[i] = make(chan Grant, 1)
		}
		ct.closed = false
	}
	if ct.lat.Base > 0 || ct.lat.Jitter > 0 {
		// Fresh generators every run: the delay stream is a per-run
		// deterministic function of (Seed, pid, draw index).
		ct.rngs = make([]*rand.Rand, n)
		for i := range ct.rngs {
			ct.rngs[i] = rand.New(rand.NewSource(ct.lat.Seed + int64(i)))
		}
	}
	if ct.unbatched {
		ct.frames = make(chan YieldFrame, n)
		ct.pumpDone = make(chan struct{})
		go ct.pump()
	}
}

// pump drains the unbatched frame queue into the sink until Close.
func (ct *ChanTransport) pump() {
	for f := range ct.frames {
		ct.sink.Arrive(f)
	}
	close(ct.pumpDone)
}

// SendGrant implements Transport.
func (ct *ChanTransport) SendGrant(pid int, g Grant) { ct.grants[pid] <- g }

// RecvGrant implements Transport.
func (ct *ChanTransport) RecvGrant(pid int) (Grant, bool) {
	g, ok := <-ct.grants[pid]
	return g, ok
}

// SendYield implements Transport. The latency model runs here, on the
// worker's own goroutine, so delays overlap across processes like real
// network transit instead of serializing at the coordinator.
func (ct *ChanTransport) SendYield(f YieldFrame) {
	if ct.rngs != nil {
		d := ct.lat.delay(ct.rngs[f.PID])
		if ct.delayHook != nil {
			ct.delayHook(f.PID, d)
		}
		if d > 0 {
			time.Sleep(d)
		}
	}
	if ct.unbatched {
		ct.frames <- f
		return
	}
	ct.sink.Arrive(f)
}

// Close implements Transport.
func (ct *ChanTransport) Close() {
	if ct.closed {
		return
	}
	ct.closed = true
	if ct.unbatched && ct.frames != nil {
		close(ct.frames)
		<-ct.pumpDone
	}
	for _, ch := range ct.grants {
		close(ch)
	}
}
