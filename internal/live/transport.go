package live

import (
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Grant is one coordinator→process frame: the messages delivered to the
// process this round plus permission to take one step. Round is the round
// being granted — the worker refuses a grant whose round disagrees with its
// process's clock, so a transport that reorders or replays frames is caught
// deterministically. Kill tears the process worker down instead (crash,
// halt or plane shutdown).
type Grant struct {
	Round int64
	Msgs  []sim.Message
	Kill  bool
}

// YieldFrame is one process→coordinator frame: the yield the process body
// returned for the granted round, or the panic it raised.
type YieldFrame struct {
	PID      int
	Yield    sim.Yield
	PanicVal any
	Panicked bool
}

// Transport carries the barrier traffic of a live plane: grants outbound to
// the process workers, yields inbound to the coordinator. The contract every
// implementation must provide:
//
//   - per-process FIFO order on grants, and a happens-before edge on every
//     transferred frame (the in-process implementation gets both from
//     channels; a socket implementation gets them from the connection);
//   - SendGrant never blocks on a worker that is parked between steps, and
//     SendYield never blocks the worker longer than the transport's own
//     delivery delay (the coordinator grants at most one step per process
//     per round, so capacity one per process suffices);
//   - Recv* block until a frame (or Close) arrives.
//
// Delivery TIMING is entirely the transport's: frames may take arbitrarily
// long and arrive in any cross-process order. The coordinator's barrier
// makes the run's Result independent of it, which is what a future socket
// transport needs: serialize Grant/YieldFrame and give the remote end a
// thin sim.Host view (the static run shape plus the round each grant
// carries) — nothing about the coordinator changes.
type Transport interface {
	// Open sizes the transport for n processes; called once by Plane.Run
	// before any frame flows.
	Open(n int)
	// SendGrant hands one grant to process pid (coordinator side).
	SendGrant(pid int, g Grant)
	// RecvGrant blocks for the next grant addressed to pid (worker side);
	// ok=false means the transport closed underneath the worker.
	RecvGrant(pid int) (g Grant, ok bool)
	// SendYield hands one yield frame to the coordinator (worker side).
	SendYield(f YieldFrame)
	// RecvYield blocks for the next yield frame to arrive, in whatever
	// order the wire produces (coordinator side).
	RecvYield() YieldFrame
	// Close tears the transport down after every worker has exited.
	Close()
}

// Latency models per-frame delivery delay on the yield path: Base plus a
// uniformly random extra in [0, Jitter), drawn from a per-process generator
// seeded Seed+pid — reproducible wall-clock timing without any cross-worker
// lock. Delays perturb real arrival order at the coordinator (that is their
// point: they exercise the barrier) but never the Result.
type Latency struct {
	Base   time.Duration
	Jitter time.Duration
	Seed   int64
}

func (l Latency) delay(rng *rand.Rand) time.Duration {
	d := l.Base
	if l.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(l.Jitter)))
	}
	return d
}

// ChanTransport is the in-process Transport: one capacity-1 grant channel
// per process and a shared yield channel wide enough that no worker ever
// blocks sending. It is the default transport of a Plane.
type ChanTransport struct {
	lat    Latency
	grants []chan Grant
	yields chan YieldFrame
	rngs   []*rand.Rand
}

// NewChanTransport builds an in-process transport with the given latency
// model (zero Latency means immediate delivery).
func NewChanTransport(lat Latency) *ChanTransport {
	return &ChanTransport{lat: lat}
}

// Open implements Transport.
func (ct *ChanTransport) Open(n int) {
	ct.grants = make([]chan Grant, n)
	for i := range ct.grants {
		ct.grants[i] = make(chan Grant, 1)
	}
	ct.yields = make(chan YieldFrame, n)
	if ct.lat.Base > 0 || ct.lat.Jitter > 0 {
		ct.rngs = make([]*rand.Rand, n)
		for i := range ct.rngs {
			ct.rngs[i] = rand.New(rand.NewSource(ct.lat.Seed + int64(i)))
		}
	}
}

// SendGrant implements Transport.
func (ct *ChanTransport) SendGrant(pid int, g Grant) { ct.grants[pid] <- g }

// RecvGrant implements Transport.
func (ct *ChanTransport) RecvGrant(pid int) (Grant, bool) {
	g, ok := <-ct.grants[pid]
	return g, ok
}

// SendYield implements Transport. The latency model runs here, on the
// worker's own goroutine, so delays overlap across processes like real
// network transit instead of serializing at the coordinator.
func (ct *ChanTransport) SendYield(f YieldFrame) {
	if ct.rngs != nil {
		if d := ct.lat.delay(ct.rngs[f.PID]); d > 0 {
			time.Sleep(d)
		}
	}
	ct.yields <- f
}

// RecvYield implements Transport.
func (ct *ChanTransport) RecvYield() YieldFrame { return <-ct.yields }

// Close implements Transport.
func (ct *ChanTransport) Close() {
	for _, ch := range ct.grants {
		close(ch)
	}
}
