package live

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Grant is one coordinator→process frame: the messages delivered to the
// process this round plus permission to take one step. Round is the round
// being granted — the worker refuses a grant whose round disagrees with its
// process's clock, so a transport that reorders or replays frames is caught
// deterministically. Kill tears the process worker down instead (crash,
// halt or plane shutdown).
type Grant struct {
	Round int64
	Msgs  []sim.Message
	Kill  bool
}

// YieldFrame is one process→coordinator frame: everything the process
// produced for one granted round in a single hop — the yield the body
// returned (or the panic it raised), stamped with the round it answers.
// Round is the barrier's sense value: the RoundBatch accepts only frames
// carrying the round currently armed, so a transport that delays a frame
// past its round cannot corrupt a later barrier.
type YieldFrame struct {
	PID      int
	Round    int64
	Yield    sim.Yield
	PanicVal any
	Panicked bool

	// Label and Active relay the process's post-step state label and active
	// flag for transports whose workers live in other OS processes
	// (WorkerHoster): the plane cannot read them off a local sim.Proc, so
	// every yield carries them. The in-process transports leave both zero.
	Label  string
	Active bool
	// Died marks a synthesized frame for a granted worker whose host
	// process vanished (connection lost past the reconnect grace): the
	// plane books it as a crash in the granted round, with no event
	// committed — the same shape as an engine round-start crash.
	Died bool
}

// YieldSink is where a transport lands inbound yield frames: the plane's
// RoundBatch barrier. Arrive is safe to call from any goroutine and never
// blocks; the sink absorbs one frame per granted process per round.
type YieldSink interface {
	Arrive(f YieldFrame)
}

// Transport carries the barrier traffic of a live plane: grants outbound to
// the process workers, yields inbound to the coordinator's RoundBatch. The
// contract every implementation must provide:
//
//   - per-process FIFO order on grants, and a happens-before edge on every
//     transferred frame (the in-process implementation gets both from
//     channels and the barrier's atomics; a socket implementation gets them
//     from the connection);
//   - SendGrant never blocks on a worker that is parked between steps, and
//     SendYield never blocks the worker longer than the transport's own
//     delivery delay (the coordinator grants at most one step per process
//     per round, so capacity one per process suffices);
//   - RecvGrant blocks until a grant (or Close) arrives; every SendYield
//     frame is eventually handed to the sink, exactly once.
//
// Delivery TIMING is entirely the transport's: frames may take arbitrarily
// long and arrive in any cross-process order. The sense-reversing barrier
// makes the run's Result independent of it, which is what a future socket
// transport needs: serialize Grant/YieldFrame, drain inbound frames into
// the sink from the connection reader (the shape ChanTransport's unbatched
// mode rehearses) — nothing about the coordinator changes.
type Transport interface {
	// Open sizes the transport for n processes and installs the sink that
	// receives every yield frame; called by Plane.Run before any frame
	// flows. A pooled plane may Open its own transport once per run, so
	// implementations should tolerate repeated Open calls with the same n.
	Open(n int, sink YieldSink)
	// SendGrant hands one grant to process pid (coordinator side).
	SendGrant(pid int, g Grant)
	// RecvGrant blocks for the next grant addressed to pid (worker side);
	// ok=false means the transport closed underneath the worker.
	RecvGrant(pid int) (g Grant, ok bool)
	// SendYield hands one yield frame toward the sink (worker side).
	SendYield(f YieldFrame)
	// Close tears the transport down after every worker has exited. Close
	// is idempotent, and SendGrant/SendYield on a closed transport are
	// defined no-ops — a worker yielding during plane teardown, or a late
	// restart firing after shutdown, must not panic the plane.
	Close()
}

// WorkerHoster is the optional Transport extension for transports whose
// workers live in other OS processes. A Transport implementing it switches
// Plane.Run into remote mode: the plane builds no local sim.Procs and spawns
// no worker goroutines — process labels and active flags arrive with each
// YieldFrame, crash checkpointing and revival are relayed as transport
// operations, and a worker whose host process vanishes surfaces as a frame
// with Died set, which the plane books as a crash in the granted round.
type WorkerHoster interface {
	Transport
	// WorkerRecoverable reports whether pid's stepper supports crash
	// checkpointing (sim.Recoverable) and its host process is still
	// reachable — the remote counterpart of Proc.SnapshotState's boolean.
	WorkerRecoverable(pid int) bool
	// SnapshotWorker checkpoints pid at crash time: the remote counterpart
	// of Proc.DropMail followed by Proc.SnapshotState. Only called after
	// WorkerRecoverable(pid) reported true.
	SnapshotWorker(pid int)
	// RestoreWorker revives pid from the checkpoint SnapshotWorker took:
	// the remote counterpart of Proc.RestoreState.
	RestoreWorker(pid int)
}

// Latency models per-frame delivery delay on the yield path: Base plus a
// uniformly random extra in [0, Jitter), drawn from a per-process generator
// seeded Seed+pid — reproducible wall-clock timing without any cross-worker
// lock. Delays perturb real arrival order at the barrier (that is their
// point: they exercise it) but never the Result.
type Latency struct {
	Base   time.Duration
	Jitter time.Duration
	Seed   int64
}

func (l Latency) delay(rng *rand.Rand) time.Duration {
	d := l.Base
	if l.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(l.Jitter)))
	}
	return d
}

// ChanTransport is the in-process Transport: one capacity-1 grant channel
// per process, yields delivered straight into the plane's RoundBatch. It is
// the default transport of a Plane and survives reuse across pooled runs
// (Open with an unchanged n keeps the channels).
//
// The yield path has two modes. Batched (the default): SendYield calls the
// sink on the worker's own goroutine — the whole round's output lands in
// the RoundBatch in one hop, no intermediate queue, no coordinator wakeup
// except for the round's last frame. Unbatched (NewUnbatchedChanTransport):
// frames go through a channel drained by a pump goroutine, the shape a
// socket transport's connection reader has — one queue hop per frame. The
// two modes draw identical latency streams for identical seeds, a property
// TestTransportLatencyDeterminism pins.
type ChanTransport struct {
	lat       Latency
	unbatched bool
	sink      YieldSink
	grants    []chan Grant
	frames    chan YieldFrame // unbatched mode: the pump's inbound queue
	pumpDone  chan struct{}
	rngs      []*rand.Rand

	// Shutdown never closes the grant or frame channels — a raw close racing
	// a send is a data race even when the panic is recovered. Instead Close
	// closes done, and every blocking channel operation selects against it:
	// sends racing Close become defined no-ops, parked RecvGrants are
	// released with ok=false, and the channels themselves are simply dropped
	// to the collector. closed short-circuits the quiescent case; closeMu
	// serializes Close itself (idempotent, safe from any goroutine).
	done    chan struct{}
	closed  atomic.Bool
	closeMu sync.Mutex

	// delayHook, when non-nil, observes every drawn delay before it is
	// slept (test instrumentation; see export_test.go).
	delayHook func(pid int, d time.Duration)
}

// NewChanTransport builds an in-process transport with the given latency
// model (zero Latency means immediate delivery).
func NewChanTransport(lat Latency) *ChanTransport {
	return &ChanTransport{lat: lat}
}

// NewUnbatchedChanTransport builds an in-process transport that routes every
// yield frame through an internal queue drained by a pump goroutine instead
// of calling the sink directly — the delivery topology a socket transport's
// reader loop has. Results and latency streams are identical to the batched
// transport for identical seeds; only the number of in-process hops per
// frame differs.
func NewUnbatchedChanTransport(lat Latency) *ChanTransport {
	return &ChanTransport{lat: lat, unbatched: true}
}

// Open implements Transport.
func (ct *ChanTransport) Open(n int, sink YieldSink) {
	ct.sink = sink
	if len(ct.grants) != n || ct.closed.Load() {
		ct.grants = make([]chan Grant, n)
		for i := range ct.grants {
			ct.grants[i] = make(chan Grant, 1)
		}
	}
	if ct.done == nil || ct.closed.Load() {
		ct.done = make(chan struct{})
		ct.closed.Store(false)
	}
	if ct.lat.Base > 0 || ct.lat.Jitter > 0 {
		// Fresh generators every run: the delay stream is a per-run
		// deterministic function of (Seed, pid, draw index).
		ct.rngs = make([]*rand.Rand, n)
		for i := range ct.rngs {
			ct.rngs[i] = rand.New(rand.NewSource(ct.lat.Seed + int64(i)))
		}
	}
	if ct.unbatched {
		ct.frames = make(chan YieldFrame, n)
		ct.pumpDone = make(chan struct{})
		go ct.pump()
	}
}

// pump drains the unbatched frame queue into the sink until Close, then
// flushes whatever was already queued so no accepted frame is lost.
func (ct *ChanTransport) pump() {
	defer close(ct.pumpDone)
	for {
		select {
		case f := <-ct.frames:
			ct.sink.Arrive(f)
		case <-ct.done:
			for {
				select {
				case f := <-ct.frames:
					ct.sink.Arrive(f)
				default:
					return
				}
			}
		}
	}
}

// SendGrant implements Transport. Sending on a closed transport is a no-op:
// the flag check catches the quiescent case, the select the window where
// Close lands mid-send.
func (ct *ChanTransport) SendGrant(pid int, g Grant) {
	if ct.closed.Load() {
		return
	}
	select {
	case ct.grants[pid] <- g:
	case <-ct.done: // closed underneath the send: the worker is gone
	}
}

// RecvGrant implements Transport.
func (ct *ChanTransport) RecvGrant(pid int) (Grant, bool) {
	select {
	case g := <-ct.grants[pid]:
		return g, true
	case <-ct.done:
		return Grant{}, false
	}
}

// SendYield implements Transport. The latency model runs here, on the
// worker's own goroutine, so delays overlap across processes like real
// network transit instead of serializing at the coordinator.
func (ct *ChanTransport) SendYield(f YieldFrame) {
	if ct.rngs != nil {
		d := ct.lat.delay(ct.rngs[f.PID])
		if ct.delayHook != nil {
			ct.delayHook(f.PID, d)
		}
		if d > 0 {
			time.Sleep(d)
		}
	}
	if ct.closed.Load() {
		return // transport torn down underneath a yielding worker: no-op
	}
	if ct.unbatched {
		ct.sendFrame(f)
		return
	}
	// The batched path hands the frame straight to the sink; the RoundBatch
	// drops frames for rounds it is not collecting, so no recover guard is
	// needed (and none may wrap Arrive — it would swallow coordinator
	// panics, not transport ones).
	ct.sink.Arrive(f)
}

// sendFrame queues one frame on the unbatched pump, tolerating a racing
// Close exactly as SendGrant does.
func (ct *ChanTransport) sendFrame(f YieldFrame) {
	select {
	case ct.frames <- f:
	case <-ct.done:
	}
}

// Close implements Transport. It is idempotent and safe to call
// concurrently with sends (which become no-ops): shutdown is signalled
// through done, never by closing a channel a sender might be touching.
func (ct *ChanTransport) Close() {
	ct.closeMu.Lock()
	defer ct.closeMu.Unlock()
	if ct.closed.Load() {
		return
	}
	ct.closed.Store(true)
	if ct.done != nil { // Close before any Open: nothing to release
		close(ct.done)
	}
	if ct.unbatched && ct.pumpDone != nil {
		<-ct.pumpDone
	}
}
