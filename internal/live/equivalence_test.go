package live_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
)

// The live plane must be indistinguishable from the single-threaded sim
// engine in everything but execution mechanics: same Result — work,
// messages (by kind), rounds, events, per-process stats — and same error,
// for every protocol, instance size and adversary, including replayed
// explore.Vector crash schedules with mid-broadcast delivery masks.

type planeCase struct {
	name      string
	steppers  func() (func(int) sim.Stepper, error)
	maxActive int
	// bandwidth, when > 0, runs both planes under the congested-clique
	// per-round outbound cap (sim/live Config.Bandwidth).
	bandwidth int
}

func planeCases(n, t int) []planeCase {
	fromProcs := func(pr core.Procs, err error) (func(int) sim.Stepper, error) {
		if err != nil {
			return nil, err
		}
		if pr.Steppers == nil {
			return nil, fmt.Errorf("default config should build steppers")
		}
		return pr.Steppers, nil
	}
	return []planeCase{
		{
			name: "A",
			steppers: func() (func(int) sim.Stepper, error) {
				return fromProcs(core.ProtocolAProcs(core.ABConfig{N: n, T: t}))
			},
			maxActive: 1,
		},
		{
			name: "B",
			steppers: func() (func(int) sim.Stepper, error) {
				return fromProcs(core.ProtocolBProcs(core.ABConfig{N: n, T: t}))
			},
			maxActive: 1,
		},
		{
			name:      "C",
			steppers:  func() (func(int) sim.Stepper, error) { return fromProcs(core.ProtocolCProcs(core.CConfig{N: n, T: t})) },
			maxActive: 1,
		},
		{
			name: "C-lowmsg",
			steppers: func() (func(int) sim.Stepper, error) {
				return fromProcs(core.ProtocolCProcs(core.CConfig{N: n, T: t, ReportEvery: max(1, n/t)}))
			},
			maxActive: 1,
		},
		{
			name:     "D",
			steppers: func() (func(int) sim.Stepper, error) { return fromProcs(core.ProtocolDProcs(core.DConfig{N: n, T: t})) },
		},
		{
			name: "gossip",
			steppers: func() (func(int) sim.Stepper, error) {
				return fromProcs(core.GossipProcs(core.GossipConfig{N: n, T: t}))
			},
		},
		{
			// The congested-clique leg: the same gossip machines under a
			// bandwidth cap of half the fanout, so every epoch's rumor
			// overflow exercises the deferred-send queue on both planes.
			name: "gossip-cap",
			steppers: func() (func(int) sim.Stepper, error) {
				return fromProcs(core.GossipProcs(core.GossipConfig{N: n, T: t}))
			},
			bandwidth: max(1, (core.GossipFanout(t)+1)/2),
		},
	}
}

// planeAdversaries builds fresh (stateful) adversaries per run.
func planeAdversaries(n, t int) map[string]func() sim.Adversary {
	advs := map[string]func() sim.Adversary{
		"none":    func() sim.Adversary { return nil },
		"cascade": func() sim.Adversary { return adversary.NewCascade(max(1, n/t), t-1) },
	}
	for _, seed := range []int64{1, 42} {
		advs[fmt.Sprintf("random-%d", seed)] = func() sim.Adversary {
			return adversary.NewRandom(0.05, t-1, seed)
		}
	}
	if t > 1 {
		advs["sleep-crash"] = func() sim.Adversary {
			return adversary.NewSchedule(adversary.Crash{PID: t - 1, Round: 2})
		}
	}
	// Replayed explore.Vector schedules: action-triggered crashes with
	// keep-work and delivery masks (mid-broadcast crashes) plus a round
	// trigger, the exact decision grammar the exploration subsystem walks.
	vectors := []string{
		"0@a3:keep:p1",
		"0@a2:lose:m5,1@a4:keep:p2",
		fmt.Sprintf("1@a1:lose:p0,%d@r4", t-1),
	}
	for _, s := range vectors {
		vec, err := explore.ParseVector(s)
		if err != nil {
			panic(err)
		}
		advs["vector-"+s] = func() sim.Adversary { return vec.Adversary() }
	}
	return advs
}

// runBoth executes the same configuration on the sim engine and on the live
// plane and requires identical outcomes. The transport argument lets cases
// inject latency/jitter; nil means the default immediate channel transport.
func runBoth(t *testing.T, n, tt int, c planeCase, mkAdv func() sim.Adversary, tr live.Transport) (sim.Result, error) {
	t.Helper()
	steppers, err := c.steppers()
	if err != nil {
		t.Fatalf("steppers: %v", err)
	}
	simRes, simErr := core.RunSteppers(n, tt, steppers, core.RunOptions{
		Adversary:       mkAdv(),
		MaxActive:       c.maxActive,
		Bandwidth:       c.bandwidth,
		DetailedMetrics: true,
	})
	steppers, err = c.steppers() // protocol state is single-use; rebuild
	if err != nil {
		t.Fatalf("steppers: %v", err)
	}
	liveRes, liveErr := live.Run(live.Config{
		NumProcs:        tt,
		NumUnits:        n,
		Adversary:       mkAdv(),
		MaxActive:       c.maxActive,
		Bandwidth:       c.bandwidth,
		DetailedMetrics: true,
		Transport:       tr,
	}, steppers)
	if fmt.Sprint(simErr) != fmt.Sprint(liveErr) {
		t.Fatalf("plane errors diverge:\nsim:  %v\nlive: %v", simErr, liveErr)
	}
	if !reflect.DeepEqual(simRes, liveRes) {
		t.Fatalf("planes diverge:\nsim:  %+v\nlive: %+v", simRes, liveRes)
	}
	return liveRes, liveErr
}

func TestLivePlaneEquivalence(t *testing.T) {
	grids := []struct{ n, t int }{{16, 4}, {24, 8}, {30, 7}, {144, 12}}
	for _, g := range grids {
		for _, c := range planeCases(g.n, g.t) {
			for advName, mkAdv := range planeAdversaries(g.n, g.t) {
				name := fmt.Sprintf("%s/n=%d,t=%d/%s", c.name, g.n, g.t, advName)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res, err := runBoth(t, g.n, g.t, c, mkAdv, nil)
					if err == nil {
						if err := core.CheckCompletion(res); err != nil {
							t.Fatalf("completion: %v", err)
						}
					}
				})
			}
		}
	}
}

// TestLivePlaneEquivalenceUnderJitter re-runs a slice of the grid over a
// transport that delays every yield by a random 0–200µs: arrival order at
// the coordinator is scrambled for real, the Result must not move.
func TestLivePlaneEquivalenceUnderJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock jitter sleeps")
	}
	g := struct{ n, t int }{24, 8}
	for _, c := range planeCases(g.n, g.t) {
		for advName, mkAdv := range planeAdversaries(g.n, g.t) {
			name := fmt.Sprintf("%s/%s", c.name, advName)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				tr := live.NewChanTransport(live.Latency{Jitter: 200 * time.Microsecond, Seed: 7})
				runBoth(t, g.n, g.t, c, mkAdv, tr)
			})
		}
	}
}

// TestLivePlaneScriptSubstrate runs goroutine-shimmed Scripts (the legacy
// substrate) on the live plane: three layers of goroutines deep, same
// Result.
func TestLivePlaneScriptSubstrate(t *testing.T) {
	n, tt := 24, 6
	scripts, err := core.ProtocolBScripts(core.ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	mkAdv := func() sim.Adversary { return adversary.NewCascade(2, tt-1) }
	simRes, err := core.Run(n, tt, scripts, core.RunOptions{
		Adversary: mkAdv(), MaxActive: 1, DetailedMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	scripts, err = core.ProtocolBScripts(core.ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := live.Run(live.Config{
		NumProcs: tt, NumUnits: n, Adversary: mkAdv(), MaxActive: 1, DetailedMetrics: true,
	}, func(id int) sim.Stepper { return sim.ScriptStepper(scripts(id)) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(simRes, liveRes) {
		t.Fatalf("planes diverge:\nsim:  %+v\nlive: %+v", simRes, liveRes)
	}
}

// TestLivePlaneSingleUse pins the single-use contract.
func TestLivePlaneSingleUse(t *testing.T) {
	pr, err := core.ProtocolAProcs(core.ABConfig{N: 4, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	pl := live.New(live.Config{NumProcs: 2, NumUnits: 4}, pr.Steppers)
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(); err == nil {
		t.Fatal("second Run should refuse")
	}
}
