package live_test

// Cross-plane conformance suite for the extended fault alphabet: every
// fault kind — send omission, transient message loss, crash recovery, rate
// degradation, and their compositions — run on the single-threaded sim
// engine and the concurrent live plane over the same protocol × grid table,
// requiring reflect.DeepEqual Results, identical error text and identical
// event traces. A fault kind whose two executions diverge in any observable
// is a conformance bug on one of the planes, by construction.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
)

// faultAdversaries builds fresh single-use adversaries per fault kind. Each
// entry exercises one letter of the alphabet (or a composition) through the
// same decision points both planes share.
func faultAdversaries(n, t int) map[string]func() sim.Adversary {
	advs := map[string]func() sim.Adversary{
		// Transient message loss: seeded rng consulted once per delivery in
		// delivery order on both planes.
		"loss": func() sim.Adversary { return adversary.NewLoss(0.1, t-1, 11) },
		// Rate degradation via the adversary verdict: process 0 runs at
		// quarter speed from round 2.
		"slowdown": func() sim.Adversary { return &adversary.Slowdown{PID: 0, Round: 2, Factor: 4} },
		// Crash recovery via the schedule: a round crash with a scheduled
		// restart, plus an action crash whose restart rides the verdict.
		"restart-schedule": func() sim.Adversary {
			return adversary.NewSchedule(
				adversary.Crash{PID: 0, Round: 2, RestartAt: 6},
				adversary.Crash{PID: 1, AtAction: 2, KeepWork: true, RestartAt: 9},
			)
		},
		// Full-alphabet storm: loss, slowdown and recovering crashes chained;
		// every member sees every delivery, so the rng stream is shared
		// deterministically across planes.
		"storm": func() sim.Adversary {
			return adversary.NewChain(
				adversary.NewLoss(0.05, t-1, 7),
				&adversary.Slowdown{PID: t - 1, Round: 1, Factor: 3},
				adversary.NewSchedule(
					adversary.Crash{PID: 0, Round: 3, RestartAt: 7},
					adversary.Crash{PID: 1, AtAction: 3},
				),
			)
		},
	}
	// Replayed explore.Vector schedules over the extended grammar: send
	// omission, message drop, slowdown, and crash-with-restart choices.
	vectors := []string{
		"0@a2:omit:p1",
		"0@a1:omit:m0,1@d2",
		fmt.Sprintf("0@r1:slow:4,%d@d3", t-1),
		"0@a2:keep:p1:restart@r8,1@r2:restart@r6",
		fmt.Sprintf("0@a1:lose:p0:restart@r5,1@r0:slow:2,%d@r3", t-1),
	}
	for _, s := range vectors {
		vec, err := explore.ParseVector(s)
		if err != nil {
			panic(err)
		}
		advs["vector-"+s] = func() sim.Adversary { return vec.Adversary() }
	}
	return advs
}

// runBothTraced mirrors runBoth and additionally captures and compares the
// full event trace of both planes.
func runBothTraced(t *testing.T, n, tt int, c planeCase, mkAdv func() sim.Adversary) (sim.Result, error) {
	t.Helper()
	steppers, err := c.steppers()
	if err != nil {
		t.Fatalf("steppers: %v", err)
	}
	var simTrace []sim.Event
	simRes, simErr := core.RunSteppers(n, tt, steppers, core.RunOptions{
		Adversary:       mkAdv(),
		MaxActive:       c.maxActive,
		Bandwidth:       c.bandwidth,
		DetailedMetrics: true,
		Tracer:          func(e sim.Event) { simTrace = append(simTrace, e) },
	})
	steppers, err = c.steppers() // protocol state is single-use; rebuild
	if err != nil {
		t.Fatalf("steppers: %v", err)
	}
	var liveTrace []sim.Event
	liveRes, liveErr := live.Run(live.Config{
		NumProcs:        tt,
		NumUnits:        n,
		Adversary:       mkAdv(),
		MaxActive:       c.maxActive,
		Bandwidth:       c.bandwidth,
		DetailedMetrics: true,
		Tracer:          func(e sim.Event) { liveTrace = append(liveTrace, e) },
	}, steppers)
	if fmt.Sprint(simErr) != fmt.Sprint(liveErr) {
		t.Fatalf("plane errors diverge:\nsim:  %v\nlive: %v", simErr, liveErr)
	}
	if !reflect.DeepEqual(simRes, liveRes) {
		t.Fatalf("planes diverge:\nsim:  %+v\nlive: %+v", simRes, liveRes)
	}
	if !reflect.DeepEqual(simTrace, liveTrace) {
		t.Fatalf("plane traces diverge: sim %d events, live %d events\nsim:  %+v\nlive: %+v",
			len(simTrace), len(liveTrace), simTrace, liveTrace)
	}
	return liveRes, liveErr
}

// TestFaultConformance is the cross-plane equivalence matrix over protocol ×
// fault kind × grid.
func TestFaultConformance(t *testing.T) {
	grids := []struct{ n, t int }{{16, 4}, {24, 8}, {30, 7}}
	for _, g := range grids {
		for _, c := range planeCases(g.n, g.t) {
			for advName, mkAdv := range faultAdversaries(g.n, g.t) {
				name := fmt.Sprintf("%s/n=%d,t=%d/%s", c.name, g.n, g.t, advName)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runBothTraced(t, g.n, g.t, c, mkAdv)
				})
			}
		}
	}
}

// TestFaultConformanceWireTCP is the third-substrate leg of the fault
// matrix: the same protocol × fault-alphabet configurations — omission,
// loss, slowdown, crash-restart, the composed storm — run as a loopback-TCP
// wire cluster (serve-side plane, two socket-joined worker hosts) and must
// produce the engine's exact Result and trace, including crash
// checkpoint/restore relayed as control frames.
func TestFaultConformanceWireTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns socket clusters")
	}
	g := struct{ n, t int }{16, 4}
	for _, proto := range []string{"a", "b", "c", "d", "gossip"} {
		for advName, mkAdv := range faultAdversaries(g.n, g.t) {
			name := fmt.Sprintf("%s/n=%d,t=%d/%s", proto, g.n, g.t, advName)
			proto, mkAdv := proto, mkAdv
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				requireWireConformance(t, wireCluster{protocol: proto, n: g.n, tt: g.t, joins: 2}, mkAdv)
			})
		}
	}
}

// TestFaultConformanceReplayDeterminism replays the heaviest composed
// adversary twice on each plane: seeded fault schedules must be exactly
// reproducible, not merely plane-equivalent.
func TestFaultConformanceReplayDeterminism(t *testing.T) {
	g := struct{ n, t int }{24, 8}
	for _, c := range planeCases(g.n, g.t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			mkAdv := faultAdversaries(g.n, g.t)["storm"]
			r1, err1 := runBothTraced(t, g.n, g.t, c, mkAdv)
			r2, err2 := runBothTraced(t, g.n, g.t, c, mkAdv)
			if fmt.Sprint(err1) != fmt.Sprint(err2) || !reflect.DeepEqual(r1, r2) {
				t.Fatalf("replay diverges:\nfirst:  %+v (%v)\nsecond: %+v (%v)", r1, err1, r2, err2)
			}
		})
	}
}

// TestConformanceRestartObservables pins the restart bookkeeping both
// planes must agree on: a recovered process shows in Restarts (global and
// per-proc) and finishes the protocol.
func TestConformanceRestartObservables(t *testing.T) {
	n, tt := 16, 4
	mkAdv := func() sim.Adversary {
		return adversary.NewSchedule(adversary.Crash{PID: 1, Round: 2, RestartAt: 5})
	}
	for _, c := range planeCases(n, tt) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			res, err := runBothTraced(t, n, tt, c, mkAdv)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Crashes != 1 {
				t.Fatalf("crashes = %d, want 1", res.Crashes)
			}
			if res.Restarts != 1 || res.PerProc[1].Restarts != 1 {
				t.Fatalf("restarts = %d (proc 1: %d), want 1/1", res.Restarts, res.PerProc[1].Restarts)
			}
			if err := core.CheckCompletion(res); err != nil {
				t.Fatalf("completion after recovery: %v", err)
			}
		})
	}
}
