package live

import (
	"bufio"
	"errors"
	"net"
	"sort"
	"sync"
	"time"
)

var errPeerClosed = errors.New("live: wire peer closed")

// wirePeer is one endpoint of a sequenced wire link: the reliability layer
// both the serve transport and each join run over their connection. It turns
// a raw (and possibly chaos-afflicted, possibly reconnecting) byte stream
// into exactly-once, in-order delivery of sequenced frames:
//
//   - Outbound: send assigns ascending Seq numbers and buffers every encoded
//     frame until a cumulative ack covers it. The first transmission passes
//     through the chaos layer (drop/duplicate/hold); a retransmit ticker
//     replays unacked frames verbatim, chaos-free, so every frame
//     eventually lands. On reconnect the whole unacked buffer is replayed.
//   - Inbound: frames below the expected Seq are duplicates (suppressed,
//     re-acked so the sender stops resending); frames above it are parked in
//     an out-of-order buffer; in-sequence frames — and whatever the buffer
//     now continues — are queued for the dispatcher.
//   - Dispatch: a single goroutine drains the in-order queue and calls
//     deliver without holding any peer lock. One dispatcher per peer means
//     delivery order is frame order even across a reconnect, where the old
//     and new connections' readers briefly coexist.
//
// Connection lifecycle is the owner's: attach installs a (re)connected
// conn + its handshake-time buffered reader and replays unacked frames;
// a failed read or write detaches the conn and fires onDown once per
// attached conn.
type wirePeer struct {
	chaos   WireChaos
	chaosOn bool
	rto     time.Duration
	deliver func(*wireFrame)
	onDown  func(err error)

	mu      sync.Mutex
	conn    net.Conn
	sendSeq uint64
	unacked map[uint64][]byte
	held    [][]byte // chaos-held first transmissions awaiting later traffic
	want    uint64   // next inbound Seq to deliver
	parked  map[uint64]*wireFrame
	queue   []*wireFrame
	qReady  *sync.Cond
	closed  bool
	done    chan struct{}
}

func newWirePeer(chaos WireChaos, rto time.Duration, deliver func(*wireFrame), onDown func(error)) *wirePeer {
	if rto <= 0 {
		rto = defaultRTO
	}
	p := &wirePeer{
		chaos: chaos, chaosOn: chaos.enabled(), rto: rto,
		deliver: deliver, onDown: onDown,
		unacked: make(map[uint64][]byte),
		parked:  make(map[uint64]*wireFrame),
		want:    1,
		done:    make(chan struct{}),
	}
	p.qReady = sync.NewCond(&p.mu)
	go p.dispatch()
	go p.retransmitLoop()
	return p
}

// attach installs a fresh connection (br carries any bytes the handshake's
// buffered reader over-read; nil for a bare conn), replays the unacked
// buffer, and starts the connection's reader.
func (p *wirePeer) attach(conn net.Conn, br *bufio.Reader) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	p.held = p.held[:0]
	for _, seq := range p.unackedSeqsLocked() {
		p.writeLocked(conn, p.unacked[seq])
	}
	p.mu.Unlock()
	if br == nil {
		br = bufio.NewReaderSize(conn, 64<<10)
	}
	go p.readLoop(conn, br)
}

// send sequences, buffers and (chaos permitting) transmits one frame.
func (p *wirePeer) send(f *wireFrame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errPeerClosed
	}
	// Encode before committing the Seq: a frame that cannot encode (an
	// unregistered gob payload, say) must not consume a sequence number, or
	// the permanent hole would silently park every later frame on the
	// receiver.
	f.Seq = p.sendSeq + 1
	b, err := encodeWireFrame(f)
	if err != nil {
		return err
	}
	p.sendSeq++
	p.unacked[f.Seq] = b
	conn := p.conn
	if conn == nil {
		return nil // disconnected: replayed on the next attach
	}
	if p.chaosOn {
		switch p.chaos.decide(f.Seq) {
		case chaosDrop:
			return nil // first transmission lost; the retransmit tick repairs
		case chaosDup:
			p.writeLocked(conn, b)
			p.writeLocked(conn, b)
		case chaosHold:
			p.held = append(p.held, b)
			return nil // sent after the next frame: reordered
		default:
			p.writeLocked(conn, b)
		}
	} else {
		p.writeLocked(conn, b)
	}
	p.flushHeldLocked()
	return nil
}

// sendAckLocked acknowledges everything delivered so far. Acks are
// unsequenced and bypass chaos: they are cumulative, so any later ack
// supersedes a lost one.
func (p *wirePeer) sendAckLocked() {
	conn := p.conn
	if conn == nil {
		return
	}
	b, err := encodeWireFrame(&wireFrame{Kind: frameAck, AckUpTo: p.want - 1})
	if err != nil {
		return
	}
	p.writeLocked(conn, b)
	p.flushHeldLocked()
}

func (p *wirePeer) flushHeldLocked() {
	if len(p.held) == 0 || p.conn == nil {
		return
	}
	held := p.held
	p.held = p.held[:0]
	for _, b := range held {
		p.writeLocked(p.conn, b)
	}
}

func (p *wirePeer) writeLocked(conn net.Conn, b []byte) {
	if p.conn != conn || conn == nil {
		return
	}
	if _, err := conn.Write(b); err != nil {
		p.downLocked(conn, err)
	}
}

// downLocked detaches a failed connection, once, and notifies the owner.
func (p *wirePeer) downLocked(conn net.Conn, err error) {
	if p.conn != conn || p.closed {
		return
	}
	p.conn = nil
	conn.Close()
	if p.onDown != nil {
		go p.onDown(err) // without p.mu: the owner's handler takes its own locks
	}
}

// bounce force-drops the current connection as if it had failed — test
// instrumentation for the reconnect path.
func (p *wirePeer) bounce() {
	p.mu.Lock()
	if c := p.conn; c != nil {
		p.downLocked(c, errors.New("live: wire connection bounced"))
	}
	p.mu.Unlock()
}

func (p *wirePeer) readLoop(conn net.Conn, br *bufio.Reader) {
	for {
		f, err := readWireFrame(br)
		if err != nil {
			p.mu.Lock()
			p.downLocked(conn, err)
			p.mu.Unlock()
			return
		}
		p.handle(f)
	}
}

// handle files one inbound frame: acks prune the resend buffer; sequenced
// frames are deduplicated, reordered, and queued for the dispatcher.
func (p *wirePeer) handle(f *wireFrame) {
	p.mu.Lock()
	switch {
	case f.Kind == frameAck:
		for s := range p.unacked {
			if s <= f.AckUpTo {
				delete(p.unacked, s)
			}
		}
	case f.Seq == 0:
		// Handshake frames never reach an attached peer; drop.
	case f.Seq < p.want:
		// Duplicate of a delivered frame (chaos dup, retransmit overlap, or
		// resend-after-reconnect): suppress, re-ack so the sender stops.
		p.sendAckLocked()
	case f.Seq > p.want:
		if _, dup := p.parked[f.Seq]; !dup {
			p.parked[f.Seq] = f
		}
		p.sendAckLocked()
	default:
		p.queue = append(p.queue, f)
		p.want++
		for {
			nf, ok := p.parked[p.want]
			if !ok {
				break
			}
			delete(p.parked, p.want)
			p.queue = append(p.queue, nf)
			p.want++
		}
		p.sendAckLocked()
		p.qReady.Signal()
	}
	p.mu.Unlock()
}

// dispatch is the peer's single delivery goroutine: it drains the in-order
// queue, calling deliver lock-free so handlers may call back into send.
func (p *wirePeer) dispatch() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.qReady.Wait()
		}
		if len(p.queue) == 0 { // closed and drained
			p.mu.Unlock()
			return
		}
		f := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		p.deliver(f)
	}
}

// retransmitLoop replays unacked frames (in Seq order, chaos-free) every
// rto while a connection is attached: the repair path for chaos drops and
// for frames whose ack was lost to a dying connection.
func (p *wirePeer) retransmitLoop() {
	t := time.NewTicker(p.rto)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
		}
		p.mu.Lock()
		if conn := p.conn; conn != nil && len(p.unacked) > 0 {
			p.held = p.held[:0] // held firsts are in unacked; replay covers them
			for _, seq := range p.unackedSeqsLocked() {
				p.writeLocked(conn, p.unacked[seq])
			}
		}
		p.mu.Unlock()
	}
}

func (p *wirePeer) unackedSeqsLocked() []uint64 {
	seqs := make([]uint64, 0, len(p.unacked))
	for s := range p.unacked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// waitDrained blocks until every sent frame has been acked (or the timeout
// or close): the graceful path for "the kill grants actually arrived".
func (p *wirePeer) waitDrained(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		drained := len(p.unacked) == 0 || p.closed
		p.mu.Unlock()
		if drained || time.Now().After(deadline) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// close tears the peer down: the conn is closed, the dispatcher drains what
// was already in order and exits, the retransmit loop stops. Idempotent.
func (p *wirePeer) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	close(p.done)
	p.qReady.Broadcast()
	p.mu.Unlock()
}
