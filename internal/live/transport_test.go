package live_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sim"
)

// delayLog records every latency draw a transport makes, per PID.
type delayLog struct {
	mu  sync.Mutex
	seq map[int][]time.Duration
}

func newDelayLog() *delayLog { return &delayLog{seq: map[int][]time.Duration{}} }

func (l *delayLog) hook(pid int, d time.Duration) {
	l.mu.Lock()
	l.seq[pid] = append(l.seq[pid], d)
	l.mu.Unlock()
}

// runWithTransport executes the Protocol B cascade workload on the given
// transport and returns the Result.
func runWithTransport(t *testing.T, n, tt int, tr live.Transport) sim.Result {
	t.Helper()
	steppers, err := core.SteppersFor(core.ProtocolBProcs(core.ABConfig{N: n, T: tt}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.Run(live.Config{
		NumProcs:  tt,
		NumUnits:  n,
		Adversary: adversary.NewCascade(4, tt-1),
		MaxActive: 1,
		Transport: tr,
	}, steppers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTransportLatencyDeterminism pins the Latency model's contract: for
// identical {Base, Jitter, Seed}, the batched (direct-to-sink) and unbatched
// (queue + pump goroutine) frame paths draw identical per-PID delay
// sequences — the delay stream is a deterministic function of
// (Seed, pid, draw index), independent of delivery topology — and both runs
// produce the engine's Result.
func TestTransportLatencyDeterminism(t *testing.T) {
	t.Parallel()
	const n, tt = 24, 6
	lat := live.Latency{Base: 20 * time.Microsecond, Jitter: 80 * time.Microsecond, Seed: 42}

	steppers, err := core.SteppersFor(core.ProtocolBProcs(core.ABConfig{N: n, T: tt}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunSteppers(n, tt, steppers, core.RunOptions{
		Adversary: adversary.NewCascade(4, tt-1),
		MaxActive: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	batched := live.NewChanTransport(lat)
	batchedLog := newDelayLog()
	batched.SetDelayHook(batchedLog.hook)

	unbatched := live.NewUnbatchedChanTransport(lat)
	unbatchedLog := newDelayLog()
	unbatched.SetDelayHook(unbatchedLog.hook)

	resBatched := runWithTransport(t, n, tt, batched)
	resUnbatched := runWithTransport(t, n, tt, unbatched)

	if !reflect.DeepEqual(resBatched, want) {
		t.Errorf("batched result diverges from engine:\nlive:   %+v\nengine: %+v", resBatched, want)
	}
	if !reflect.DeepEqual(resUnbatched, want) {
		t.Errorf("unbatched result diverges from engine:\nlive:   %+v\nengine: %+v", resUnbatched, want)
	}

	if len(batchedLog.seq) == 0 {
		t.Fatal("no delays drawn: latency model did not engage")
	}
	if !reflect.DeepEqual(batchedLog.seq, unbatchedLog.seq) {
		t.Errorf("delay streams diverge between frame paths:\nbatched:   %v\nunbatched: %v",
			batchedLog.seq, unbatchedLog.seq)
	}
	for pid, seq := range batchedLog.seq {
		for i, d := range seq {
			if d < lat.Base || d >= lat.Base+lat.Jitter {
				t.Errorf("pid %d draw %d: delay %v outside [%v, %v)", pid, i, d, lat.Base, lat.Base+lat.Jitter)
			}
		}
	}
}

// TestTransportLatencySeedReproducible pins that re-running with the same
// seed reproduces the exact delay stream, and a different seed changes it.
func TestTransportLatencySeedReproducible(t *testing.T) {
	t.Parallel()
	const n, tt = 16, 4
	draw := func(seed int64) map[int][]time.Duration {
		tr := live.NewChanTransport(live.Latency{Base: time.Microsecond, Jitter: 50 * time.Microsecond, Seed: seed})
		log := newDelayLog()
		tr.SetDelayHook(log.hook)
		runWithTransport(t, n, tt, tr)
		return log.seq
	}
	a, b, c := draw(7), draw(7), draw(8)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different delay streams:\n%v\n%v", a, b)
	}
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds produced identical delay streams: %v", a)
	}
	if fmt.Sprint(a) == "" {
		t.Fatal("empty stream")
	}
	if testing.Short() {
		return // the TCP leg spawns socket clusters
	}
	// Cross-transport coherence: the same seed must reproduce the same
	// per-PID delay streams when the workers live in socket-joined processes
	// — a join's rng is seeded Seed+pid exactly as ChanTransport's, so where
	// the work ran cannot show in the latency draws.
	drawWire := func(seed int64) map[int][]time.Duration {
		log := newDelayLog()
		cc := wireCluster{
			protocol: "b", n: n, tt: tt, joins: 2,
			latency:   live.Latency{Base: time.Microsecond, Jitter: 50 * time.Microsecond, Seed: seed},
			delayHook: log.hook,
		}
		if _, _, err := cc.run(t, func() sim.Adversary { return adversary.NewCascade(4, tt-1) }); err != nil {
			t.Fatalf("wire run: %v", err)
		}
		return log.seq
	}
	if wa := drawWire(7); !reflect.DeepEqual(a, wa) {
		t.Errorf("seed 7: wire delay streams diverge from ChanTransport's:\nchan: %v\nwire: %v", a, wa)
	}
	if wc := drawWire(8); !reflect.DeepEqual(c, wc) {
		t.Errorf("seed 8: wire delay streams diverge from ChanTransport's:\nchan: %v\nwire: %v", c, wc)
	}
}
