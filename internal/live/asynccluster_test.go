package live

import (
	"testing"
	"time"
)

func TestAsyncFailureFree(t *testing.T) {
	// Zero delay makes deliveries synchronous, so termination indications
	// always land before the failure detector's report: exactly n units.
	n, tt := 64, 16
	net := NewNetwork(tt, 0, 1)
	c := NewCluster(ClusterConfig{N: n, T: tt}, net)
	c.Start()
	if !c.Wait() {
		t.Fatal("work incomplete")
	}
	total, dist := c.Log().Totals()
	if dist != n {
		t.Fatalf("distinct = %d, want %d", dist, n)
	}
	if total != int64(n) {
		t.Fatalf("work = %d, want exactly n (only worker 0 acts)", total)
	}
}

func TestAsyncFailureFreeDelayed(t *testing.T) {
	// With real delays a detector report may overtake in-flight
	// checkpoints, so successors can redo trailing chunks — the work
	// bound 3n still holds.
	n, tt := 64, 16
	net := NewNetwork(tt, 200*time.Microsecond, 1)
	c := NewCluster(ClusterConfig{N: n, T: tt}, net)
	c.Start()
	if !c.Wait() {
		t.Fatal("work incomplete")
	}
	total, dist := c.Log().Totals()
	if dist != n {
		t.Fatalf("distinct = %d, want %d", dist, n)
	}
	if total > int64(3*n) {
		t.Fatalf("work = %d, want ≤ 3n", total)
	}
}

func TestAsyncCrashCascade(t *testing.T) {
	n, tt := 64, 16
	net := NewNetwork(tt, 100*time.Microsecond, 2)
	perf := make(chan int, 4*n)
	cfg := ClusterConfig{N: n, T: tt, Perform: func(w, u int) { perf <- w }}
	c := NewCluster(cfg, net)
	c.Start()
	// Crash each active worker shortly after it begins working, up to t-1
	// failures; the timeout exits once the surviving workers finish.
	crashed := 0
	seen := make(map[int]bool)
injection:
	for crashed < tt-1 {
		select {
		case w := <-perf:
			if !seen[w] && w != tt-1 { // the last worker must survive
				seen[w] = true
				c.Crash(w)
				crashed++
			}
		case <-time.After(200 * time.Millisecond):
			break injection
		}
	}
	go func() {
		for range perf { // drain so workers never block; exits on close
		}
	}()
	if !c.Wait() {
		t.Fatal("work incomplete despite a survivor")
	}
	// All workers have stopped, so no further Perform calls can race the
	// close.
	close(perf)
	total, _ := c.Log().Totals()
	// Work-optimality: O(n + t) with the paper's constant 3 (plus the
	// crashed workers' partial subchunks).
	if total > int64(3*n+tt) {
		t.Fatalf("work = %d, want ≤ 3n + t = %d", total, 3*n+tt)
	}
}

func TestAsyncAllButOneCrashBeforeStart(t *testing.T) {
	n, tt := 32, 8
	net := NewNetwork(tt, 50*time.Microsecond, 3)
	c := NewCluster(ClusterConfig{N: n, T: tt}, net)
	for j := 0; j < tt-1; j++ {
		c.Crash(j)
	}
	c.Start()
	if !c.Wait() {
		t.Fatal("survivor did not finish the work")
	}
}

func TestAsyncDetectorSoundness(t *testing.T) {
	d := NewDetector(4)
	if d.Retired(2) {
		t.Fatal("fresh detector reports retirement")
	}
	if d.AllRetiredBelow(1) {
		t.Fatal("process 0 not retired yet")
	}
	d.MarkRetired(0)
	if !d.AllRetiredBelow(1) || d.AllRetiredBelow(2) {
		t.Fatal("AllRetiredBelow wrong")
	}
	sub := d.Subscribe()
	d.MarkRetired(1)
	select {
	case <-sub:
	case <-time.After(time.Second):
		t.Fatal("no retirement notification")
	}
}

func TestAsyncNetworkDelivery(t *testing.T) {
	net := NewNetwork(2, 0, 4)
	net.Send(0, 1, "x")
	select {
	case m := <-net.Inbox(1):
		if m.Payload != "x" || m.From != 0 {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
	if net.Sent() != 1 {
		t.Fatalf("sent = %d", net.Sent())
	}
	// Out-of-range destinations vanish silently.
	net.Send(0, 9, "y")
	net.Close()
}

func TestAsyncWorkLog(t *testing.T) {
	w := NewWorkLog(3)
	w.Perform(1)
	w.Perform(1)
	w.Perform(2)
	total, dist := w.Totals()
	if total != 3 || dist != 2 {
		t.Fatalf("totals = %d/%d", total, dist)
	}
	if w.Complete() {
		t.Fatal("not complete yet")
	}
	w.Perform(3)
	if !w.Complete() {
		t.Fatal("should be complete")
	}
}

func TestAsyncMessageBound(t *testing.T) {
	// Messages stay O(t√t) in the failure-free case (no work reports are
	// sent over the network, only checkpoints).
	n, tt := 64, 16
	net := NewNetwork(tt, 0, 5)
	c := NewCluster(ClusterConfig{N: n, T: tt}, net)
	c.Start()
	c.Wait()
	if net.Sent() > int64(9*tt*4) { // 9·t·√t with √16 = 4
		t.Fatalf("messages = %d > 9t√t", net.Sent())
	}
}

func TestAsyncRepeatedRuns(t *testing.T) {
	// Stress many seeds/delays for ordering robustness (run with -race).
	// Recycling each network forces later iterations onto pooled carcasses,
	// so a missed drain or counter reset would surface as an incomplete run.
	for seed := int64(0); seed < 8; seed++ {
		n, tt := 16, 4
		net := NewNetwork(tt, 30*time.Microsecond, seed)
		c := NewCluster(ClusterConfig{N: n, T: tt}, net)
		c.Start()
		if seed%2 == 0 {
			c.Crash(0)
		}
		if !c.Wait() {
			t.Fatalf("seed %d incomplete", seed)
		}
		if net.Sent() == 0 {
			t.Fatalf("seed %d sent no messages", seed)
		}
		net.Recycle()
	}
}
