// This file (with asynccluster.go, formerly package asyncnet) is the fully
// asynchronous end of the live plane: the paper's §2.1 remark that Protocol
// A "can be easily modified to run in a completely asynchronous system
// equipped with a failure detection mechanism". Where the barrier plane
// keeps the synchronous round structure and makes concurrency invisible in
// the Result, here there are no rounds at all: processes are free-running
// goroutines exchanging messages over channels with arbitrary
// (seeded-random) delays, and a sound failure detector — it never reports a
// live process as retired, and eventually reports every retired one —
// replaces the synchronous deadlines: process j becomes active once the
// detector has reported processes 0..j−1 retired, instead of waiting until
// round DD(j).
package live

import (
	"math/rand"
	"sync"
	"time"
)

// NetMessage is a routed protocol message.
type NetMessage struct {
	From    int
	To      int
	Payload any
}

// Network routes messages between processes with per-message random delays,
// modelling full asynchrony. It is safe for concurrent use.
type Network struct {
	mu       sync.Mutex
	rng      *rand.Rand
	inboxes  []chan NetMessage
	maxDelay time.Duration
	sent     int64
	wg       sync.WaitGroup
	inflight []sync.WaitGroup // per-sender in-flight deliveries
	closed   bool
}

// netPool recycles Network carcasses — the inbox channels and per-sender
// waitgroup slice are the expensive parts of a network build, and experiment
// sweeps construct one network per run. Reset discipline mirrors
// core.runPooled: NewNetwork takes a carcass only when the shape matches,
// reseeds the delay RNG and zeroes the counters; Recycle closes, drains every
// inbox (so stale messages never leak into the next run) and parks the
// carcass.
var netPool sync.Pool

// NewNetwork builds a network for t processes. maxDelay bounds the random
// per-message delivery delay; seed makes delay choices reproducible. Carcasses
// parked by Recycle are reused when their process count matches.
func NewNetwork(t int, maxDelay time.Duration, seed int64) *Network {
	if c, ok := netPool.Get().(*Network); ok && len(c.inboxes) == t {
		c.rng.Seed(seed)
		c.maxDelay = maxDelay
		c.sent = 0
		c.closed = false
		return c
	}
	n := &Network{
		rng:      rand.New(rand.NewSource(seed)),
		inboxes:  make([]chan NetMessage, t),
		maxDelay: maxDelay,
		inflight: make([]sync.WaitGroup, t),
	}
	for i := range n.inboxes {
		// Generous buffering: a checkpoint burst is at most t messages and
		// senders must never block on a crashed recipient's inbox.
		n.inboxes[i] = make(chan NetMessage, 4*t+16)
	}
	return n
}

// delivery is a pooled envelope for a delayed message: the timer callback is
// created once per envelope (fn is a bound method value), so a steady stream
// of delayed sends allocates neither closures nor envelopes.
type delivery struct {
	n   *Network
	msg NetMessage
	fn  func()
}

var deliveryPool sync.Pool

func init() { // assigned here: the New hook and delivery.run refer to each other
	deliveryPool.New = func() any {
		d := &delivery{}
		d.fn = d.run
		return d
	}
}

// run fires when the delay elapses: deliver, scrub the payload reference so
// the pooled envelope pins nothing, and park the envelope.
func (d *delivery) run() {
	n, msg := d.n, d.msg
	d.n = nil
	d.msg = NetMessage{}
	deliveryPool.Put(d)
	n.deliver(msg)
}

// deliver lands a message in its inbox (or drops it if the recipient stopped
// draining) and retires the in-flight accounting taken out by Send.
func (n *Network) deliver(m NetMessage) {
	defer n.wg.Done()
	if m.From >= 0 && m.From < len(n.inflight) {
		defer n.inflight[m.From].Done()
	}
	select {
	case n.inboxes[m.To] <- m:
	default:
		// Inbox full: the recipient stopped draining (retired); drop.
	}
}

// Send routes a message with a random delay. Messages to out-of-range or
// closed destinations vanish, as messages to crashed processes do.
func (n *Network) Send(from, to int, payload any) {
	if to < 0 || to >= len(n.inboxes) {
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	delay := time.Duration(0)
	if n.maxDelay > 0 {
		delay = time.Duration(n.rng.Int63n(int64(n.maxDelay)))
	}
	n.sent++
	n.wg.Add(1)
	if from >= 0 && from < len(n.inflight) {
		n.inflight[from].Add(1)
	}
	n.mu.Unlock()

	m := NetMessage{From: from, To: to, Payload: payload}
	if delay == 0 {
		n.deliver(m)
		return
	}
	d := deliveryPool.Get().(*delivery)
	d.n, d.msg = n, m
	time.AfterFunc(delay, d.fn)
}

// FlushFrom blocks until every message already sent by `from` has been
// delivered (or dropped). The cluster calls it before reporting a
// retirement, so failure-detector reports never overtake the retiree's own
// messages — the asynchronous analogue of the synchronous model's guarantee
// that a round's messages land before the next round's deadlines. Without
// this ordering, a successor can take over knowing nothing and the 3n work
// bound of Theorem 2.3 degenerates to O(nt) (see DESIGN.md §7.6).
func (n *Network) FlushFrom(from int) {
	if from < 0 || from >= len(n.inflight) {
		return
	}
	// Safe: the sender has stopped, so no concurrent Add can race the Wait.
	n.inflight[from].Wait()
}

// Inbox returns the receive channel of process id.
func (n *Network) Inbox(id int) <-chan NetMessage { return n.inboxes[id] }

// Sent returns the number of messages handed to the network so far.
func (n *Network) Sent() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent
}

// Close waits for in-flight deliveries and stops accepting sends.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}

// Recycle closes the network, drains whatever its recipients left unread and
// parks the carcass for NewNetwork to reuse. The caller promises that no
// goroutine still holds an Inbox channel or will call Send — a recycled
// network's channels belong to the next run.
func (n *Network) Recycle() {
	n.Close()
	for _, ch := range n.inboxes {
		for drained := false; !drained; {
			select {
			case <-ch:
			default:
				drained = true
			}
		}
	}
	netPool.Put(n)
}

// Detector is a sound and eventually-complete failure detector: Retired(p)
// is reported only after p has actually crashed or terminated, and every
// retirement is eventually reported to every subscriber.
type Detector struct {
	mu      sync.Mutex
	retired []bool
	waiters []chan struct{}
}

// NewDetector builds a detector for t processes.
func NewDetector(t int) *Detector {
	return &Detector{retired: make([]bool, t)}
}

// MarkRetired records that process p has crashed or terminated. Only the
// runtime that actually observed the retirement may call it (soundness).
func (d *Detector) MarkRetired(p int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.retired[p] {
		return
	}
	d.retired[p] = true
	for _, w := range d.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

// Retired reports whether p is known retired.
func (d *Detector) Retired(p int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retired[p]
}

// AllRetiredBelow reports whether every process with ID < p is known
// retired.
func (d *Detector) AllRetiredBelow(p int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < p; i++ {
		if !d.retired[i] {
			return false
		}
	}
	return true
}

// Subscribe returns a channel that receives a token whenever some process
// retires. The channel has capacity 1 and coalesces notifications.
func (d *Detector) Subscribe() <-chan struct{} {
	ch := make(chan struct{}, 1)
	d.mu.Lock()
	d.waiters = append(d.waiters, ch)
	d.mu.Unlock()
	return ch
}

// WorkLog records performed work units with multiplicity; it is safe for
// concurrent use.
type WorkLog struct {
	mu    sync.Mutex
	done  []bool
	total int64
	dist  int
}

// NewWorkLog builds a log over units 1..n.
func NewWorkLog(n int) *WorkLog {
	return &WorkLog{done: make([]bool, n+1)}
}

// Perform records one execution of unit u.
func (w *WorkLog) Perform(u int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.total++
	if u >= 1 && u < len(w.done) && !w.done[u] {
		w.done[u] = true
		w.dist++
	}
}

// Totals returns (units performed with multiplicity, distinct units).
func (w *WorkLog) Totals() (int64, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total, w.dist
}

// Complete reports whether every unit has been performed.
func (w *WorkLog) Complete() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dist == len(w.done)-1
}
