package live

import (
	"fmt"
	"io"
	"time"
)

// SetDelayHook installs a test observer that sees every latency draw
// (pid, delay) before the sending worker sleeps it. Test-only: the hook is
// how TestTransportLatencyDeterminism pins the batched and unbatched frame
// paths to identical delay streams.
func (ct *ChanTransport) SetDelayHook(h func(pid int, d time.Duration)) { ct.delayHook = h }

// BounceConn force-drops join i's current connection as if the network had
// failed, without declaring the session dead — test instrumentation for the
// reconnect + resend path.
func (wt *WireTransport) BounceConn(i int) {
	if i >= 0 && i < len(wt.sessions) {
		wt.sessions[i].peer.bounce()
	}
}

// ExpireSession force-expires join i's session as if its reconnect grace had
// already lapsed: the deterministic in-process stand-in for SIGKILLing the
// join process (the cmd-level cluster test sends the real signal).
func (wt *WireTransport) ExpireSession(i int) {
	if i >= 0 && i < len(wt.sessions) {
		wt.expire(wt.sessions[i])
	}
}

// DebugState renders the coordinator's book for hang diagnosis in tests.
func (pl *Plane) DebugState() string {
	s := fmt.Sprintf("now=%d live=%d sense=%d pending=%d active=%d\n",
		pl.now, pl.live, pl.batch.sense.Load(), pl.batch.pending.Load(), pl.active.Load())
	for pid, ps := range pl.procs {
		s += fmt.Sprintf("  pid%d status=%v runnable=%v granted=%v sleeping=%v(wake=%d) stalled=%v killed=%v snapped=%v armed=%v present=%v\n",
			pid, ps.status, ps.runnable, ps.granted, ps.sleeping, ps.wakeAt, ps.stalled, ps.killed, ps.snapped,
			pl.batch.slots[pid].armed, pl.batch.slots[pid].present)
	}
	return s
}

// Wire frame codec exports for fuzz/round-trip tests.
type WireFrame = wireFrame

func EncodeWireFrame(f *WireFrame) ([]byte, error)    { return encodeWireFrame(f) }
func DecodeWireFrame(body []byte) (*WireFrame, error) { return decodeWireFrame(body) }
func ReadWireFrame(r io.Reader) (*WireFrame, error)   { return readWireFrame(r) }
func WriteWireFrame(w io.Writer, f *WireFrame) error  { return writeWireFrame(w, f) }
func ChaosDecide(c WireChaos, seq uint64) uint8       { return uint8(c.decide(seq)) }

const (
	FrameHello   = frameHello
	FrameWelcome = frameWelcome
	FrameReady   = frameReady
	FrameGrant   = frameGrant
	FrameYield   = frameYield
	FrameCrash   = frameCrash
	FrameRestart = frameRestart
	FrameAck     = frameAck
)
