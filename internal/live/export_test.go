package live

import "time"

// SetDelayHook installs a test observer that sees every latency draw
// (pid, delay) before the sending worker sleeps it. Test-only: the hook is
// how TestTransportLatencyDeterminism pins the batched and unbatched frame
// paths to identical delay streams.
func (ct *ChanTransport) SetDelayHook(h func(pid int, d time.Duration)) { ct.delayHook = h }
