package live_test

// Shutdown lifecycle regression tests. The bug these pin: ChanTransport
// sends racing Close used to panic on the freshly closed grant channels —
// a worker yielding during plane teardown, or a late restart firing after
// shutdown, could take the whole process down. The contract now: Close is
// idempotent and concurrency-safe, sends after (or racing) Close are
// defined no-ops, and RecvGrant reports ok=false to parked workers.
// Run with -race: the point is the interleavings, not the assertions.

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/live"
)

// countSink is a stand-in YieldSink that only counts arrivals.
type countSink struct{ n atomic.Int64 }

func (s *countSink) Arrive(live.YieldFrame) { s.n.Add(1) }

func chanTransports() map[string]func() *live.ChanTransport {
	return map[string]func() *live.ChanTransport{
		"batched":   func() *live.ChanTransport { return live.NewChanTransport(live.Latency{}) },
		"unbatched": func() *live.ChanTransport { return live.NewUnbatchedChanTransport(live.Latency{}) },
	}
}

// TestChanTransportCloseRace hammers SendGrant/SendYield from many
// goroutines while Close lands concurrently (and repeatedly): no send may
// panic, and every parked RecvGrant must be released with ok=false.
func TestChanTransportCloseRace(t *testing.T) {
	for mode, mk := range chanTransports() {
		mode, mk := mode, mk
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			const n, iters = 8, 200
			for it := 0; it < iters; it++ {
				ct := mk()
				sink := &countSink{}
				ct.Open(n, sink)
				var wg sync.WaitGroup
				// Workers drain grants until the transport closes under them.
				for pid := 0; pid < n; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						for {
							if _, ok := ct.RecvGrant(pid); !ok {
								return
							}
						}
					}(pid)
				}
				// Senders race the close from both directions.
				for pid := 0; pid < n; pid++ {
					wg.Add(2)
					go func(pid int) {
						defer wg.Done()
						for r := int64(0); r < 20; r++ {
							ct.SendGrant(pid, live.Grant{Round: r})
						}
					}(pid)
					go func(pid int) {
						defer wg.Done()
						for r := int64(0); r < 20; r++ {
							ct.SendYield(live.YieldFrame{PID: pid, Round: r})
						}
					}(pid)
				}
				// Two concurrent closers: Close must also race itself safely.
				for c := 0; c < 2; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						ct.Close()
					}()
				}
				wg.Wait()
			}
		})
	}
}

// TestChanTransportSendAfterClose pins the quiescent half of the contract:
// once Close has returned, sends are silent no-ops, receives report closure,
// and closing again changes nothing.
func TestChanTransportSendAfterClose(t *testing.T) {
	for mode, mk := range chanTransports() {
		mode, mk := mode, mk
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			ct := mk()
			sink := &countSink{}
			ct.Open(4, sink)
			ct.Close()
			ct.Close() // idempotent
			for pid := 0; pid < 4; pid++ {
				ct.SendGrant(pid, live.Grant{Round: 1}) // must not panic
				ct.SendYield(live.YieldFrame{PID: pid, Round: 1})
				if _, ok := ct.RecvGrant(pid); ok {
					t.Fatalf("pid %d: RecvGrant ok after Close", pid)
				}
			}
			if got := sink.n.Load(); got != 0 {
				t.Fatalf("%d yields reached the sink after Close", got)
			}
		})
	}
}

// TestChanTransportReopen pins pooled-plane reuse: a closed transport must
// come back to full service on the next Open, whatever n it is given.
func TestChanTransportReopen(t *testing.T) {
	for mode, mk := range chanTransports() {
		mode, mk := mode, mk
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			ct := mk()
			for round, n := range []int{4, 4, 6} { // same n twice, then resized
				sink := &countSink{}
				ct.Open(n, sink)
				done := make(chan live.Grant, 1)
				go func() {
					g, ok := ct.RecvGrant(n - 1)
					if !ok {
						g = live.Grant{Round: -1}
					}
					done <- g
				}()
				ct.SendGrant(n-1, live.Grant{Round: int64(round)})
				if g := <-done; g.Round != int64(round) {
					t.Fatalf("reopen %d: got grant round %d, want %d", round, g.Round, round)
				}
				ct.SendYield(live.YieldFrame{PID: 0})
				if mode == "batched" && sink.n.Load() != 1 {
					t.Fatalf("reopen %d: yield did not reach the sink", round)
				}
				ct.Close()
			}
		})
	}
}
