package live_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sim"
)

// Stress coverage for the live plane: hundreds of real goroutines, crash
// storms, concurrent planes. These run in the ordinary suite and are the
// payload of CI's `go test -race ./internal/live` job — the scheduling
// pressure of -race plus jitter is what shakes out ordering bugs the
// deterministic barrier must absorb.

// TestLiveStressLargeT runs Protocol B with 256 processes through a full
// crash cascade (255 failures) and requires bit-identical Results across
// planes.
func TestLiveStressLargeT(t *testing.T) {
	n, tt := 1024, 256
	pr, err := core.ProtocolBProcs(core.ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := core.RunSteppers(n, tt, pr.Steppers, core.RunOptions{
		Adversary: adversary.NewCascade(4, tt-1), MaxActive: 1, DetailedMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pr, err = core.ProtocolBProcs(core.ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := live.Run(live.Config{
		NumProcs: tt, NumUnits: n,
		Adversary: adversary.NewCascade(4, tt-1), MaxActive: 1, DetailedMetrics: true,
	}, pr.Steppers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(simRes, liveRes) {
		t.Fatalf("planes diverge at t=%d:\nsim:  %+v\nlive: %+v", tt, simRes, liveRes)
	}
	if liveRes.Crashes != tt-1 {
		t.Fatalf("cascade crashed %d of %d", liveRes.Crashes, tt-1)
	}
	if err := core.CheckCompletion(liveRes); err != nil {
		t.Fatal(err)
	}
}

// TestLiveStressCrashStorm drives Protocol D with 128 processes through
// aggressive random crash storms across several seeds, jittered transport
// included, and checks plane equivalence plus the completion guarantee on
// every run.
func TestLiveStressCrashStorm(t *testing.T) {
	n, tt := 512, 128
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			mkAdv := func() sim.Adversary { return adversary.NewRandom(0.10, tt-1, seed) }
			pr, err := core.ProtocolDProcs(core.DConfig{N: n, T: tt})
			if err != nil {
				t.Fatal(err)
			}
			simRes, simErr := core.RunSteppers(n, tt, pr.Steppers, core.RunOptions{
				Adversary: mkAdv(), DetailedMetrics: true,
			})
			pr, err = core.ProtocolDProcs(core.DConfig{N: n, T: tt})
			if err != nil {
				t.Fatal(err)
			}
			var tr live.Transport
			if !testing.Short() {
				tr = live.NewChanTransport(live.Latency{Jitter: 20 * time.Microsecond, Seed: seed})
			}
			liveRes, liveErr := live.Run(live.Config{
				NumProcs: tt, NumUnits: n,
				Adversary: mkAdv(), DetailedMetrics: true, Transport: tr,
			}, pr.Steppers)
			if fmt.Sprint(simErr) != fmt.Sprint(liveErr) {
				t.Fatalf("plane errors diverge:\nsim:  %v\nlive: %v", simErr, liveErr)
			}
			if !reflect.DeepEqual(simRes, liveRes) {
				t.Fatalf("planes diverge:\nsim:  %+v\nlive: %+v", simRes, liveRes)
			}
			if liveErr == nil {
				if err := core.CheckCompletion(liveRes); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestLiveStressConcurrentPlanes runs many planes at once — the fan-out a
// test-plane harness or a parallel sweep would produce — to cross-stress
// the per-plane state under the race detector.
func TestLiveStressConcurrentPlanes(t *testing.T) {
	n, tt := 64, 16
	const planes = 8
	var wg sync.WaitGroup
	results := make([]sim.Result, planes)
	errs := make([]error, planes)
	for i := 0; i < planes; i++ {
		pr, err := core.ProtocolBProcs(core.ABConfig{N: n, T: tt})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, steppers func(int) sim.Stepper) {
			defer wg.Done()
			results[i], errs[i] = live.Run(live.Config{
				NumProcs: tt, NumUnits: n,
				Adversary: adversary.NewCascade(2, tt-1), MaxActive: 1, DetailedMetrics: true,
			}, steppers)
		}(i, pr.Steppers)
	}
	wg.Wait()
	for i := 1; i < planes; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("concurrent plane %d diverged:\nfirst: %+v\nthis:  %+v", i, results[0], results[i])
		}
	}
}

// TestLiveStressPanicProc pins the failure path: a process body that panics
// mid-run must fail the plane with the engine's error and Result.
func TestLiveStressPanicProc(t *testing.T) {
	n, tt := 16, 4
	// Build one coherent protocol instance per plane, wrapping process 2.
	wrapped := func() func(int) sim.Stepper {
		pr, err := core.ProtocolBProcs(core.ABConfig{N: n, T: tt})
		if err != nil {
			t.Fatal(err)
		}
		return func(id int) sim.Stepper {
			st := pr.Steppers(id)
			if id == 2 {
				return panicAfter{inner: st, id: id}
			}
			return st
		}
	}
	simRes, simErr := core.RunSteppers(n, tt, wrapped(), core.RunOptions{DetailedMetrics: true})
	liveRes, liveErr := live.Run(live.Config{
		NumProcs: tt, NumUnits: n, DetailedMetrics: true,
	}, wrapped())
	if simErr == nil || liveErr == nil {
		t.Fatalf("want both planes to fail: sim=%v live=%v", simErr, liveErr)
	}
	if fmt.Sprint(simErr) != fmt.Sprint(liveErr) {
		t.Fatalf("plane errors diverge:\nsim:  %v\nlive: %v", simErr, liveErr)
	}
	if !reflect.DeepEqual(simRes, liveRes) {
		t.Fatalf("planes diverge:\nsim:  %+v\nlive: %+v", simRes, liveRes)
	}
}

// panicAfter panics on the wrapped process's third step.
type panicAfter struct {
	inner sim.Stepper
	id    int
}

func (pa panicAfter) Step(p *sim.Proc) sim.Yield {
	if p.Now() >= 3 {
		panic(fmt.Sprintf("injected fault in proc %d", pa.id))
	}
	return pa.inner.Step(p)
}
