package live

// The wire protocol: how a serve-side Plane and its join-side workers talk
// across OS processes. Every frame on a connection is length-prefixed —
// a 4-byte big-endian body length followed by a self-contained gob encoding
// of one wireFrame. Self-contained per frame (a fresh gob stream each time,
// type descriptors included) costs a few bytes but is what lets the chaos
// layer drop, duplicate or reorder whole frames without desynchronising a
// persistent decoder state — and what makes resend-after-reconnect a plain
// byte replay.
//
// Frame kinds split into two planes:
//
//   - Handshake (frameHello / frameWelcome / frameReady) travels raw on a
//     fresh connection before the sequenced session starts, Seq 0.
//   - Session traffic (frameGrant / frameYield / frameCrash / frameRestart)
//     is sequenced by wirePeer: ascending Seq per direction, cumulative
//     acks (frameAck, unsequenced), sender-side retransmission of unacked
//     frames, receiver-side dedup and reordering. See peer.go.
//
// Message payloads cross as gob interface values; every concrete payload a
// protocol sends must be gob.Registered (internal/core does this for the
// DHW92 protocol suite in its wire.go).

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
)

// Frame kinds. Values are part of the wire format; append only.
const (
	frameHello   uint8 = iota + 1 // join → serve: first frame on any connection
	frameWelcome                  // serve → join: session id + run spec (fresh joins)
	frameReady                    // join → serve: workers built, recoverability bits
	frameGrant                    // serve → join: one step grant (or kill)
	frameYield                    // join → serve: one step's yield
	frameCrash                    // serve → join: checkpoint pid at crash time
	frameRestart                  // serve → join: revive pid from its checkpoint
	frameAck                      // either: cumulative ack of sequenced frames
)

// maxWireFrame bounds a frame body; a length prefix beyond it is rejected
// before any allocation, so a corrupt or hostile peer cannot OOM the reader.
const maxWireFrame = 16 << 20

// WireSpec is the run configuration the serve side announces to each join in
// its welcome frame: everything a join needs to build its slice of the
// cluster. Lo/Hi is the join's contiguous PID range [Lo, Hi).
type WireSpec struct {
	Protocol string // protocol name the join resolves to steppers
	Units    int    // n
	Workers  int    // t, across the whole cluster
	Lo, Hi   int
	Latency  Latency // join-side yield latency model (per-PID seeded streams)
}

// wireFrame is the single envelope every wire message travels in. One flat
// struct rather than a per-kind union: gob omits zero fields, so unused
// fields cost nothing on the wire, and one decoder path covers every kind.
type wireFrame struct {
	Seq  uint64 // 0 on handshake and ack frames; ascending per direction otherwise
	Kind uint8

	// Session traffic (grant / yield / crash / restart).
	PID      int
	Round    int64
	Kill     bool
	Msgs     []sim.Message
	Yield    sim.Yield
	Panicked bool
	PanicMsg string // panic value flattened to text; fmt renders it identically
	Label    string
	Active   bool

	// frameAck: every sequenced frame up to and including AckUpTo arrived.
	AckUpTo uint64

	// Handshake.
	Session     uint64
	Rejoin      bool
	Spec        WireSpec
	Recoverable []bool // ready frame: per-PID (range-relative) sim.Recoverable bits
}

// encodeWireFrame renders one frame ready to write: 4-byte big-endian body
// length, then the gob body.
func encodeWireFrame(f *wireFrame) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("live: wire frame encode: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b, nil
}

// decodeWireFrame parses one frame body (the bytes after the length prefix),
// rejecting loudly anything that is not a well-formed frame.
func decodeWireFrame(body []byte) (*wireFrame, error) {
	f := &wireFrame{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(f); err != nil {
		return nil, fmt.Errorf("live: wire frame decode: %w", err)
	}
	if f.Kind < frameHello || f.Kind > frameAck {
		return nil, fmt.Errorf("live: wire frame kind %d unknown", f.Kind)
	}
	return f, nil
}

// readWireFrame reads one length-prefixed frame. A partial read — the
// connection dying mid-frame — surfaces as io.ErrUnexpectedEOF, never as a
// truncated frame handed onward.
func readWireFrame(r io.Reader) (*wireFrame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxWireFrame {
		return nil, fmt.Errorf("live: wire frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return decodeWireFrame(body)
}

// writeWireFrame encodes and writes one frame in a single Write call.
func writeWireFrame(w io.Writer, f *wireFrame) error {
	b, err := encodeWireFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WireChaos injects deterministic frame-level faults on a peer's outbound
// sequenced frames: each first transmission is dropped, duplicated, or held
// for reordering with the configured probabilities, decided purely by
// (Seed, frame seq) — the same seed reproduces the same fault pattern
// regardless of timing. Chaos never touches retransmissions or acks, which
// is what keeps every run live: a dropped frame sits in the sender's unacked
// buffer until the retransmit tick replays it cleanly. Probabilities must be
// in [0, 1] and sum to at most 1.
type WireChaos struct {
	Drop    float64
	Dup     float64
	Reorder float64
	Seed    int64
}

func (c WireChaos) enabled() bool { return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 }

func (c WireChaos) validate() error {
	if c.Drop < 0 || c.Dup < 0 || c.Reorder < 0 || c.Drop+c.Dup+c.Reorder > 1 {
		return fmt.Errorf("live: wire chaos probabilities must be non-negative and sum to at most 1 (drop=%v dup=%v reorder=%v)",
			c.Drop, c.Dup, c.Reorder)
	}
	return nil
}

type chaosAction uint8

const (
	chaosNone chaosAction = iota
	chaosDrop
	chaosDup
	chaosHold
)

// decide maps one sequenced frame to its chaos action: a pure function of
// (Seed, seq) via a splitmix64 hash, so runs with the same seed fault the
// same frames.
func (c WireChaos) decide(seq uint64) chaosAction {
	x := uint64(c.Seed) ^ (seq * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / (1 << 53)
	switch {
	case u < c.Drop:
		return chaosDrop
	case u < c.Drop+c.Dup:
		return chaosDup
	case u < c.Drop+c.Dup+c.Reorder:
		return chaosHold
	}
	return chaosNone
}

// yieldFromWire converts a received yield frame into the plane-side
// YieldFrame, rehydrating the panic value as its text rendering (fmt.Errorf
// of a string renders identically, so cross-plane error texts still match).
func yieldFromWire(f *wireFrame) YieldFrame {
	var pv any
	if f.Panicked {
		pv = f.PanicMsg
	}
	return YieldFrame{
		PID: f.PID, Round: f.Round, Yield: f.Yield,
		PanicVal: pv, Panicked: f.Panicked,
		Label: f.Label, Active: f.Active,
	}
}

// defaultRTO is the retransmit interval for unacked frames; small enough
// that chaos-dropped frames stall a round barely perceptibly, large enough
// that loopback acks always win the race.
const defaultRTO = 20 * time.Millisecond
