package live_test

// Wire-format tests: frame codec round trips over the whole protocol
// payload alphabet, partial-read and bounds behaviour of the length-prefixed
// reader, chaos-decision determinism, and a decode fuzzer. These pin the
// byte-level contract the cluster tests exercise end to end.

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sim"
	"repro/internal/view"
)

// wireSampleFrames covers every frame kind, with session frames carrying
// every gob-registered payload the DHW92 protocol suite sends — a missing
// registration fails here at encode time instead of hanging a live cluster.
func wireSampleFrames() []*live.WireFrame {
	msgs := func(payload any) []sim.Message {
		return []sim.Message{{From: 1, To: 2, SentAt: 7, Payload: payload}}
	}
	frames := []*live.WireFrame{
		{Kind: live.FrameHello, Session: 12, Rejoin: true},
		{Kind: live.FrameWelcome, Session: 12, Spec: live.WireSpec{
			Protocol: "b", Units: 24, Workers: 8, Lo: 4, Hi: 8,
			Latency: live.Latency{Base: 1000, Jitter: 2000, Seed: 42},
		}},
		{Kind: live.FrameReady, Session: 12, Recoverable: []bool{true, false, true}},
		{Kind: live.FrameGrant, Seq: 1, PID: 3, Round: 9, Msgs: msgs(core.PartialCP{C: 4})},
		{Kind: live.FrameGrant, Seq: 2, PID: 3, Round: 10, Kill: true},
		{Kind: live.FrameYield, Seq: 3, PID: 3, Round: 9, Label: "b:coord", Active: true,
			Yield: sim.Yield{Kind: sim.YieldAction, Action: sim.Action{
				WorkUnit: 5,
				Sends:    []sim.Send{{To: 0, Payload: core.FullCP{C: 4, G: 2}}},
				Broadcast: sim.Broadcast{To: []int{0, 1, 2}, Payload: &core.DView{
					Phase: 2, S: []uint64{0b1011}, T: []uint64{0b0100}, Done: false,
				}},
			}}},
		{Kind: live.FrameYield, Seq: 4, PID: 5, Round: 11,
			Yield: sim.Yield{Kind: sim.YieldSleep, Until: 272629760}},
		{Kind: live.FrameYield, Seq: 5, PID: 6, Round: 12, Panicked: true,
			PanicMsg: "sim: invariant violated at round 12"},
		{Kind: live.FrameCrash, Seq: 6, PID: 2, Round: 3},
		{Kind: live.FrameRestart, Seq: 7, PID: 2, Round: 6},
		{Kind: live.FrameAck, AckUpTo: 7},
	}
	// One grant per remaining payload kind the protocols put on the wire.
	for i, payload := range []any{
		core.GoAhead{},
		core.AreYouAlive{},
		core.Alive{},
		core.COrdinary{View: view.Snapshot{
			Faulty: []bool{false, true}, Point: []int{3, 0}, Round: []int64{8, 2},
		}, Value: core.PartialCP{C: 1}},
		core.UniformDone{U: 6},
		core.NaiveReport{},
	} {
		frames = append(frames, &live.WireFrame{
			Kind: live.FrameGrant, Seq: uint64(10 + i), PID: 1, Round: 4, Msgs: msgs(payload),
		})
	}
	return frames
}

// TestWireFrameRoundTrip pins encode → write → read → decode as the
// identity over the full frame alphabet, both per-frame and as a packed
// stream (frames must be self-delimiting back to back).
func TestWireFrameRoundTrip(t *testing.T) {
	t.Parallel()
	var stream bytes.Buffer
	frames := wireSampleFrames()
	for i, f := range frames {
		b, err := live.EncodeWireFrame(f)
		if err != nil {
			t.Fatalf("frame %d (kind %d): encode: %v", i, f.Kind, err)
		}
		got, err := live.ReadWireFrame(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("frame %d (kind %d): read back: %v", i, f.Kind, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("frame %d (kind %d) round trip diverges:\nsent: %+v\ngot:  %+v", i, f.Kind, f, got)
		}
		stream.Write(b)
	}
	for i := range frames {
		got, err := live.ReadWireFrame(&stream)
		if err != nil {
			t.Fatalf("packed stream frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, frames[i]) {
			t.Errorf("packed stream frame %d diverges: %+v", i, got)
		}
	}
	if stream.Len() != 0 {
		t.Errorf("%d trailing bytes after reading all frames", stream.Len())
	}
}

// TestWireFrameTruncation pins the reader's behaviour on a connection dying
// mid-frame: every proper prefix of a valid frame is an error — EOF only at
// the clean boundary (zero bytes), io.ErrUnexpectedEOF anywhere inside —
// and never a mangled frame handed onward.
func TestWireFrameTruncation(t *testing.T) {
	t.Parallel()
	full, err := live.EncodeWireFrame(&live.WireFrame{
		Kind: live.FrameYield, Seq: 8, PID: 1, Round: 3, Label: "b:worker",
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		_, err := live.ReadWireFrame(bytes.NewReader(full[:cut]))
		switch {
		case err == nil:
			t.Fatalf("cut at %d of %d: truncated frame accepted", cut, len(full))
		case cut == 0 && err != io.EOF:
			t.Errorf("cut at 0: want clean io.EOF, got %v", err)
		case cut > 0 && cut < 4 && !errors.Is(err, io.ErrUnexpectedEOF):
			t.Errorf("cut inside header at %d: want io.ErrUnexpectedEOF, got %v", cut, err)
		case cut >= 4 && !errors.Is(err, io.ErrUnexpectedEOF):
			t.Errorf("cut inside body at %d: want io.ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// TestWireFrameBounds pins the pre-allocation header checks: zero-length
// and over-limit length prefixes are rejected before any body read, and a
// frame body that decodes to an unknown kind is refused.
func TestWireFrameBounds(t *testing.T) {
	t.Parallel()
	read := func(hdr []byte) error {
		_, err := live.ReadWireFrame(bytes.NewReader(hdr))
		return err
	}
	if err := read([]byte{0, 0, 0, 0}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("zero-length frame: want out-of-range error, got %v", err)
	}
	// 64MB length prefix with no body: must be refused on the header alone,
	// not by attempting (and failing) a 64MB allocation + read.
	if err := read([]byte{0x04, 0, 0, 0}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("oversized frame: want out-of-range error, got %v", err)
	}
	if _, err := live.DecodeWireFrame(nil); err == nil {
		t.Error("empty body decoded")
	}
	bad, err := live.EncodeWireFrame(&live.WireFrame{Kind: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.ReadWireFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown kind: want rejection, got %v", err)
	}
}

// TestWireChaosDeterministic pins that chaos decisions are a pure function
// of (Seed, seq) — the property that makes chaotic cluster runs replayable —
// and that the empirical action mix tracks the configured probabilities.
func TestWireChaosDeterministic(t *testing.T) {
	t.Parallel()
	c := live.WireChaos{Drop: 0.2, Dup: 0.1, Reorder: 0.15, Seed: 99}
	const trials = 20000
	counts := map[uint8]int{}
	for seq := uint64(1); seq <= trials; seq++ {
		a := live.ChaosDecide(c, seq)
		if b := live.ChaosDecide(c, seq); b != a {
			t.Fatalf("seq %d: decision not deterministic (%d then %d)", seq, a, b)
		}
		counts[a]++
	}
	total := float64(trials)
	for want, got := range map[float64]int{0.2: counts[1], 0.1: counts[2], 0.15: counts[3]} {
		if f := float64(got) / total; f < want-0.02 || f > want+0.02 {
			t.Errorf("action rate %.3f, want ~%.2f", f, want)
		}
	}
	other := live.WireChaos{Drop: 0.2, Dup: 0.1, Reorder: 0.15, Seed: 100}
	same := 0
	for seq := uint64(1); seq <= 1000; seq++ {
		if live.ChaosDecide(c, seq) == live.ChaosDecide(other, seq) {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical fault patterns")
	}
}

// FuzzWireFrame feeds arbitrary bodies to the decoder: anything it accepts
// must re-encode and decode back to the same frame (the codec is stable on
// its accepted set), and anything else must be rejected loudly — never a
// panic, never a silent truncation.
func FuzzWireFrame(f *testing.F) {
	for _, fr := range wireSampleFrames() {
		b, err := live.EncodeWireFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b[4:]) // seed with the body, sans length prefix
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x81, 0x03, 0x01})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := live.DecodeWireFrame(body)
		if err != nil {
			return // rejected loudly: fine
		}
		b, err := live.EncodeWireFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v\nframe: %+v", err, fr)
		}
		again, err := live.ReadWireFrame(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("re-encoded frame does not read back: %v\nframe: %+v", err, fr)
		}
		if !reflect.DeepEqual(again, fr) {
			t.Fatalf("codec not stable:\nfirst:  %+v\nsecond: %+v", fr, again)
		}
	})
}
