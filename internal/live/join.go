package live

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
)

// JoinConfig configures one join process: the worker-hosting half of a wire
// cluster.
type JoinConfig struct {
	// Network is "tcp" or "unix" ("" = tcp); Addr the serve address.
	Network string
	Addr    string
	// Steppers resolves the run the serve side announced into this join's
	// process bodies; it is called once, with the welcome frame's spec
	// (Lo/Hi already set to this join's PID range).
	Steppers func(spec WireSpec) (func(id int) sim.Stepper, error)
	// Chaos afflicts this join's outbound frames (the yield direction).
	Chaos WireChaos
	// ReconnectGrace is how long to keep redialing a lost serve connection
	// before giving up; 0 means 3s. It should not exceed the serve side's
	// Grace, or the serve will declare this join dead first.
	ReconnectGrace time.Duration
	// RTO is the retransmit interval for unacked frames; 0 = default.
	RTO time.Duration
	// DelayHook observes latency draws (test instrumentation, the
	// counterpart of ChanTransport.SetDelayHook).
	DelayHook func(pid int, d time.Duration)
	// Logf, when non-nil, receives join lifecycle notes.
	Logf func(format string, args ...any)
}

// joinHost is the sim.Host a join gives each of its hosted procs: the run
// shape from the spec, the round from the last grant. AddActive is a no-op —
// the active flag crosses the wire with every yield frame (Proc.Active), and
// the serve-side plane keeps the cluster-wide count.
type joinHost struct {
	workers, units int
	now            int64
}

func (h *joinHost) NumProcs() int { return h.workers }
func (h *joinHost) NumUnits() int { return h.units }
func (h *joinHost) Round() int64  { return h.now }
func (h *joinHost) AddActive(int) {}

// joinWorker is one hosted process: its Proc, its per-worker host clock, its
// latency rng, and the grant queue its goroutine consumes. Capacity 2 never
// blocks the dispatcher: the coordinator has at most one step grant in
// flight per process, plus possibly one kill.
type joinWorker struct {
	pid    int
	proc   *sim.Proc
	host   *joinHost
	rng    *rand.Rand
	grants chan Grant
}

type joinRuntime struct {
	cfg     JoinConfig
	network string
	grace   time.Duration
	spec    WireSpec
	session uint64
	peer    *wirePeer
	workers []*joinWorker // index pid - spec.Lo
	wg      sync.WaitGroup
	down    chan error
}

// Join connects to a serve process, hosts the PID range it assigns, and
// blocks until the run is over (every worker killed by the coordinator) or
// the serve connection is lost beyond recovery. The returned error is nil
// for a clean run.
//
// Lifecycle: dial → hello/welcome (spec + session id) → build workers →
// ready (recoverability bits) → sequenced session. Workers step exactly as
// the in-process plane's workers do — receive a grant, deliver its messages,
// TryStep, apply the latency model, send the yield — with crash checkpoint /
// restore arriving as control frames while the worker is parked. If the
// connection drops, the join redials under the same session id within
// ReconnectGrace; the peers' resend buffers make the reconnect invisible to
// the run.
func Join(cfg JoinConfig) error {
	if cfg.Steppers == nil {
		return errors.New("live: JoinConfig.Steppers is required")
	}
	if err := cfg.Chaos.validate(); err != nil {
		return err
	}
	j := &joinRuntime{
		cfg:     cfg,
		network: cfg.Network,
		grace:   cfg.ReconnectGrace,
		down:    make(chan error, 1),
	}
	if j.network == "" {
		j.network = "tcp"
	}
	if j.grace <= 0 {
		j.grace = 3 * time.Second
	}
	conn, br, welcome, err := j.dialServe(false)
	if err != nil {
		return err
	}
	spec := welcome.Spec
	if spec.Workers <= 0 || spec.Lo < 0 || spec.Lo >= spec.Hi || spec.Hi > spec.Workers {
		conn.Close()
		return fmt.Errorf("live: serve assigned invalid PID range [%d,%d) of %d workers", spec.Lo, spec.Hi, spec.Workers)
	}
	j.spec = spec
	j.session = welcome.Session
	steppers, err := cfg.Steppers(spec)
	if err != nil {
		conn.Close()
		return err
	}
	useLat := spec.Latency.Base > 0 || spec.Latency.Jitter > 0
	recov := make([]bool, spec.Hi-spec.Lo)
	j.workers = make([]*joinWorker, spec.Hi-spec.Lo)
	for i := range j.workers {
		pid := spec.Lo + i
		st := steppers(pid)
		h := &joinHost{workers: spec.Workers, units: spec.Units}
		w := &joinWorker{pid: pid, host: h, proc: sim.NewHostedProc(h, pid, st), grants: make(chan Grant, 2)}
		if _, ok := st.(sim.Recoverable); ok {
			recov[i] = true
		}
		if useLat {
			// Same per-PID stream as ChanTransport: seeded Seed+pid, one
			// draw per yield — cross-transport latency coherence.
			w.rng = rand.New(rand.NewSource(spec.Latency.Seed + int64(pid)))
		}
		j.workers[i] = w
	}
	if err := writeWireFrame(conn, &wireFrame{Kind: frameReady, Session: j.session, Recoverable: recov}); err != nil {
		conn.Close()
		return fmt.Errorf("live: join ready handshake: %w", err)
	}
	conn.SetDeadline(time.Time{})
	j.logf("joined as session %d, hosting PIDs [%d,%d) of %d", j.session, spec.Lo, spec.Hi, spec.Workers)
	j.peer = newWirePeer(cfg.Chaos, cfg.RTO, j.deliver, j.onDown)
	j.peer.attach(conn, br)
	j.wg.Add(len(j.workers))
	for _, w := range j.workers {
		go j.runWorker(w)
	}
	return j.supervise()
}

// dialServe opens a connection and runs the raw handshake through the
// welcome frame. The returned reader carries any over-read bytes and must be
// handed to peer.attach.
func (j *joinRuntime) dialServe(rejoin bool) (net.Conn, *bufio.Reader, *wireFrame, error) {
	conn, err := net.DialTimeout(j.network, j.cfg.Addr, 5*time.Second)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("live: join dial %s %s: %w", j.network, j.cfg.Addr, err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeWireFrame(conn, &wireFrame{Kind: frameHello, Session: j.session, Rejoin: rejoin}); err != nil {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("live: join hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	welcome, err := readWireFrame(br)
	if err != nil || welcome.Kind != frameWelcome {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("live: serve answered hello with frame kind %d", welcome.Kind)
		}
		return nil, nil, nil, fmt.Errorf("live: join handshake: %w", err)
	}
	return conn, br, welcome, nil
}

// deliver handles one in-order sequenced frame from the serve side, on the
// peer's dispatcher goroutine. Grants queue to the worker; crash/restart
// control frames touch the Proc directly — safe, because the coordinator
// only crashes or revives processes that are parked between steps.
func (j *joinRuntime) deliver(f *wireFrame) {
	i := f.PID - j.spec.Lo
	if i < 0 || i >= len(j.workers) {
		return
	}
	w := j.workers[i]
	switch f.Kind {
	case frameGrant:
		w.grants <- Grant{Round: f.Round, Msgs: f.Msgs, Kill: f.Kill}
	case frameCrash:
		// The plane's crash path, remote half, in the plane's order:
		// deactivate first — so the checkpoint a revival restores does not
		// resurrect the crash-time active claim — then drop pre-crash mail
		// and checkpoint.
		w.proc.SetActive(false)
		w.proc.DropMail()
		w.proc.SnapshotState()
	case frameRestart:
		w.proc.RestoreState()
	}
}

// runWorker is the join-side worker goroutine: the in-process plane's worker
// loop with the transport hops replaced by the sequenced peer.
func (j *joinRuntime) runWorker(w *joinWorker) {
	defer j.wg.Done()
	for g := range w.grants {
		if g.Kill {
			w.proc.Release()
			return
		}
		w.host.now = g.Round
		for _, m := range g.Msgs {
			w.proc.Deliver(m)
		}
		y, pv, panicked := w.proc.TryStep()
		if w.rng != nil {
			d := j.spec.Latency.delay(w.rng)
			if j.cfg.DelayHook != nil {
				j.cfg.DelayHook(w.pid, d)
			}
			if d > 0 {
				time.Sleep(d)
			}
		}
		f := &wireFrame{
			Kind: frameYield, PID: w.pid, Round: g.Round, Yield: y,
			Panicked: panicked, Label: w.proc.Label(), Active: w.proc.Active(),
		}
		if panicked {
			f.PanicMsg = fmt.Sprint(pv)
		}
		if err := j.peer.send(f); err != nil && err != errPeerClosed {
			// The yield cannot cross the wire (an unregistered gob payload
			// type, most likely). Substitute a panicked frame so the serve
			// side fails the run loudly instead of hanging the barrier on a
			// yield that will never come.
			j.peer.send(&wireFrame{Kind: frameYield, PID: w.pid, Round: g.Round,
				Panicked: true, PanicMsg: fmt.Sprintf("live: yield frame for proc %d: %v", w.pid, err)})
		}
	}
}

// supervise waits for the run to end (all workers killed) while mending the
// connection whenever it drops. A serve that stays unreachable past
// ReconnectGrace ends the join with an error.
func (j *joinRuntime) supervise() error {
	workersDone := make(chan struct{})
	go func() {
		j.wg.Wait()
		close(workersDone)
	}()
	for {
		select {
		case <-workersDone:
			// Every worker consumed its kill grant, which means the serve
			// side already holds every yield; drain the final acks and go.
			j.peer.waitDrained(2 * time.Second)
			j.peer.close()
			j.logf("run complete, all %d workers released", len(j.workers))
			return nil
		case err := <-j.down:
			select {
			case <-workersDone:
				continue // lost the conn after the run ended: clean exit path
			default:
			}
			j.logf("serve connection lost (%v), redialing", err)
			if rejoinErr := j.rejoin(); rejoinErr != nil {
				j.killWorkers()
				j.peer.close()
				return fmt.Errorf("live: join lost serve connection: %v (reconnect: %v)", err, rejoinErr)
			}
			j.logf("rejoined as session %d", j.session)
		}
	}
}

// rejoin redials under the same session id until it succeeds or the grace
// expires; on success the peer replays everything unacked.
func (j *joinRuntime) rejoin() error {
	deadline := time.Now().Add(j.grace)
	for {
		conn, br, _, err := j.dialServe(true)
		if err == nil {
			conn.SetDeadline(time.Time{})
			j.peer.attach(conn, br)
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// killWorkers tears down the hosted procs after an unrecoverable connection
// loss.
func (j *joinRuntime) killWorkers() {
	for _, w := range j.workers {
		select {
		case w.grants <- Grant{Kill: true}:
		default: // queue full: a kill is already pending
		}
	}
	j.wg.Wait()
}

func (j *joinRuntime) onDown(err error) {
	select {
	case j.down <- err:
	default:
	}
}

func (j *joinRuntime) logf(format string, args ...any) {
	if j.cfg.Logf != nil {
		j.cfg.Logf(format, args...)
	}
}
