package live

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// WireOptions configures the serve side of a wire cluster.
type WireOptions struct {
	// Network is "tcp" or "unix" ("" = tcp); Addr the listen address
	// (host:port, or a socket path for unix).
	Network string
	Addr    string
	// Joins is how many join processes the cluster expects; the worker PID
	// space [0, Spec.Workers) is split into Joins contiguous ranges,
	// assigned in connection order (an even split, remainder to the
	// earliest joins).
	Joins int
	// Spec is the run announced to every join (Lo/Hi are filled per
	// session). Spec.Workers must equal the plane's NumProcs.
	Spec WireSpec
	// Chaos afflicts the serve side's outbound frames; joins configure
	// their own direction themselves.
	Chaos WireChaos
	// Grace is how long a disconnected join may reconnect before its
	// workers are declared dead (crashed); 0 means 3s.
	Grace time.Duration
	// ReadyTimeout bounds WaitReady; 0 means 60s.
	ReadyTimeout time.Duration
	// RTO is the retransmit interval for unacked frames; 0 means the
	// package default.
	RTO time.Duration
}

// WireTransport is the serve side of the wire protocol: a Transport (and
// WorkerHoster) whose workers live in join processes. It listens, assigns
// each fresh join a contiguous PID range, and relays the plane's grants and
// the joins' yields over sequenced peers — so the unchanged Plane runs the
// cluster exactly as it runs in-process goroutines. A join that vanishes
// past the reconnect grace surfaces as Died frames for its PIDs, which the
// plane books as crashes: SIGKILL of a join process is a real fault with the
// certificate semantics explore's crash schedules describe.
type WireTransport struct {
	opts WireOptions
	ln   net.Listener

	mu       sync.Mutex
	sink     YieldSink
	sessions []*wireSession
	assigned int // sessions handed to fresh joins so far
	ready    int // sessions whose join completed the ready handshake
	readyCh  chan struct{}
	closed   bool
	pidSess  []*wireSession
	pending  []pendingGrant // per PID: the armed grant a yield has not answered
	dead     []bool
}

// pendingGrant records one in-flight step grant so a session death knows
// which round its Died frames must answer.
type pendingGrant struct {
	round int64
	armed bool
}

// wireSession is one join's slot: its PID range, recoverability bits, and
// the sequenced peer carrying its traffic across reconnects.
type wireSession struct {
	wt     *WireTransport
	id     uint64
	lo, hi int
	recov  []bool
	peer   *wirePeer
	grace  *time.Timer
	dead   bool
}

var _ WorkerHoster = (*WireTransport)(nil)

// NewWireTransport validates the options, binds the listener and starts
// accepting joins. The plane may Run immediately — grants to workers whose
// join has not yet completed its handshake simply queue in the session peer
// — but WaitReady is the polite way to sequence output.
func NewWireTransport(opts WireOptions) (*WireTransport, error) {
	if opts.Network == "" {
		opts.Network = "tcp"
	}
	if opts.Network != "tcp" && opts.Network != "unix" {
		return nil, fmt.Errorf("live: wire network must be tcp or unix, not %q", opts.Network)
	}
	if opts.Joins < 1 {
		return nil, fmt.Errorf("live: wire cluster needs at least 1 join, not %d", opts.Joins)
	}
	if opts.Spec.Workers < opts.Joins {
		return nil, fmt.Errorf("live: %d joins cannot split %d workers", opts.Joins, opts.Spec.Workers)
	}
	if err := opts.Chaos.validate(); err != nil {
		return nil, err
	}
	if opts.Grace <= 0 {
		opts.Grace = 3 * time.Second
	}
	if opts.ReadyTimeout <= 0 {
		opts.ReadyTimeout = 60 * time.Second
	}
	if opts.Network == "unix" {
		os.Remove(opts.Addr) // a stale socket file from a dead serve
	}
	ln, err := net.Listen(opts.Network, opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("live: wire listen: %w", err)
	}
	w := opts.Spec.Workers
	wt := &WireTransport{
		opts:    opts,
		ln:      ln,
		readyCh: make(chan struct{}),
		pidSess: make([]*wireSession, w),
		pending: make([]pendingGrant, w),
		dead:    make([]bool, w),
	}
	lo := 0
	for i := 0; i < opts.Joins; i++ {
		size := w / opts.Joins
		if i < w%opts.Joins {
			size++
		}
		s := &wireSession{wt: wt, id: uint64(i + 1), lo: lo, hi: lo + size, recov: make([]bool, size)}
		s.peer = newWirePeer(opts.Chaos, opts.RTO, s.deliver, s.down)
		wt.sessions = append(wt.sessions, s)
		for pid := lo; pid < s.hi; pid++ {
			wt.pidSess[pid] = s
		}
		lo = s.hi
	}
	go wt.acceptLoop()
	return wt, nil
}

// Addr returns the bound listen address (useful with ":0").
func (wt *WireTransport) Addr() string { return wt.ln.Addr().String() }

// WaitReady blocks until every join has connected and completed its
// handshake, or the configured timeout passes.
func (wt *WireTransport) WaitReady() error {
	select {
	case <-wt.readyCh:
		return nil
	case <-time.After(wt.opts.ReadyTimeout):
		wt.mu.Lock()
		ready := wt.ready
		wt.mu.Unlock()
		return fmt.Errorf("live: wire cluster: %d of %d joins ready after %v",
			ready, wt.opts.Joins, wt.opts.ReadyTimeout)
	}
}

func (wt *WireTransport) acceptLoop() {
	for {
		conn, err := wt.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go wt.handshake(conn)
	}
}

// handshake runs the raw (unsequenced) connection setup: hello in, welcome
// out, and — for fresh joins — the ready frame in. The connection then
// attaches to the session's peer, which replays anything unacked (the
// resend half of the reconnect contract). The handshake's buffered reader
// is handed to the peer so over-read bytes survive.
func (wt *WireTransport) handshake(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReaderSize(conn, 64<<10)
	hello, err := readWireFrame(br)
	if err != nil || hello.Kind != frameHello {
		conn.Close()
		return
	}
	if hello.Rejoin {
		wt.mu.Lock()
		var s *wireSession
		if i := int(hello.Session) - 1; i >= 0 && i < len(wt.sessions) {
			s = wt.sessions[i]
		}
		if s == nil || s.dead || wt.closed {
			wt.mu.Unlock()
			conn.Close() // unknown session, or its grace already expired
			return
		}
		if s.grace != nil {
			s.grace.Stop()
			s.grace = nil
		}
		wt.mu.Unlock()
		if writeWireFrame(conn, &wireFrame{Kind: frameWelcome, Session: s.id}) != nil {
			conn.Close()
			return
		}
		conn.SetDeadline(time.Time{})
		s.peer.attach(conn, br)
		return
	}
	wt.mu.Lock()
	if wt.closed || wt.assigned >= len(wt.sessions) {
		wt.mu.Unlock()
		conn.Close() // cluster full (or shutting down)
		return
	}
	s := wt.sessions[wt.assigned]
	wt.assigned++
	wt.mu.Unlock()
	spec := wt.opts.Spec
	spec.Lo, spec.Hi = s.lo, s.hi
	if writeWireFrame(conn, &wireFrame{Kind: frameWelcome, Session: s.id, Spec: spec}) != nil {
		conn.Close()
		return
	}
	ready, err := readWireFrame(br)
	if err != nil || ready.Kind != frameReady || len(ready.Recoverable) != s.hi-s.lo {
		conn.Close()
		return
	}
	wt.mu.Lock()
	copy(s.recov, ready.Recoverable)
	wt.ready++
	if wt.ready == len(wt.sessions) {
		close(wt.readyCh)
	}
	wt.mu.Unlock()
	conn.SetDeadline(time.Time{})
	s.peer.attach(conn, br)
}

// deliver handles one in-order sequenced frame from a join: only yields are
// expected inbound.
func (s *wireSession) deliver(f *wireFrame) {
	if f.Kind != frameYield {
		return
	}
	wt := s.wt
	wt.mu.Lock()
	if f.PID < s.lo || f.PID >= s.hi || wt.closed || wt.dead[f.PID] {
		// Out-of-range, shut down, or a yield that raced the session's death:
		// once expire has synthesized Died frames for the range, late yields
		// from the vanished join's dispatcher must not resurrect the pid.
		wt.mu.Unlock()
		return
	}
	wt.pending[f.PID] = pendingGrant{}
	sink := wt.sink
	wt.mu.Unlock()
	if sink != nil {
		sink.Arrive(yieldFromWire(f))
	}
}

// down fires when the session's connection fails: the join has Grace to
// reconnect before its workers are declared dead.
func (s *wireSession) down(error) {
	wt := s.wt
	wt.mu.Lock()
	if s.dead || wt.closed || s.grace != nil {
		wt.mu.Unlock()
		return
	}
	s.grace = time.AfterFunc(wt.opts.Grace, func() { wt.expire(s) })
	wt.mu.Unlock()
}

// expire declares a vanished join's workers dead: every armed grant in its
// range is answered with a synthesized Died frame (a crash in the granted
// round), and future grants to the range answer the same way. The barrier
// never stalls on a killed process.
func (wt *WireTransport) expire(s *wireSession) {
	wt.mu.Lock()
	if s.dead || wt.closed {
		wt.mu.Unlock()
		return
	}
	s.dead = true
	type death struct {
		pid   int
		round int64
	}
	var died []death
	for pid := s.lo; pid < s.hi; pid++ {
		wt.dead[pid] = true
		if pg := wt.pending[pid]; pg.armed {
			wt.pending[pid] = pendingGrant{}
			died = append(died, death{pid, pg.round})
		}
	}
	sink := wt.sink
	wt.mu.Unlock()
	s.peer.close()
	if sink == nil {
		return
	}
	for _, d := range died {
		sink.Arrive(YieldFrame{PID: d.pid, Round: d.round, Died: true})
	}
}

// Open implements Transport. n must match the Workers the transport was
// built for — the spec already went out to joins, so a mismatch is a
// programming error, not a runtime condition.
func (wt *WireTransport) Open(n int, sink YieldSink) {
	if n != len(wt.pidSess) {
		panic(fmt.Sprintf("live: WireTransport built for %d workers, plane opened with %d", len(wt.pidSess), n))
	}
	wt.mu.Lock()
	wt.sink = sink
	wt.mu.Unlock()
}

// SendGrant implements Transport: grants are relayed to the owning session's
// peer. Grants to dead PIDs answer with an asynchronous Died frame — asynch
// because Arrive may complete the batch and run the whole coordinator turn,
// which must not reenter the granting token holder's stack mid-loop.
func (wt *WireTransport) SendGrant(pid int, g Grant) {
	wt.mu.Lock()
	if wt.closed || pid < 0 || pid >= len(wt.pidSess) {
		wt.mu.Unlock()
		return
	}
	s := wt.pidSess[pid]
	if wt.dead[pid] {
		sink := wt.sink
		wt.mu.Unlock()
		if !g.Kill && sink != nil {
			go sink.Arrive(YieldFrame{PID: pid, Round: g.Round, Died: true})
		}
		return
	}
	if !g.Kill {
		wt.pending[pid] = pendingGrant{round: g.Round, armed: true}
	}
	sink := wt.sink
	wt.mu.Unlock()
	err := s.peer.send(&wireFrame{Kind: frameGrant, PID: pid, Round: g.Round, Kill: g.Kill, Msgs: g.Msgs})
	if err != nil && err != errPeerClosed && !g.Kill && sink != nil {
		// The grant cannot cross the wire (an unregistered gob payload in its
		// messages, most likely): answer it with a panicked yield so the run
		// fails loudly instead of hanging the barrier. Asynchronous for the
		// same reentrancy reason as the Died synthesis above.
		go sink.Arrive(YieldFrame{PID: pid, Round: g.Round, Panicked: true,
			PanicVal: fmt.Sprintf("live: grant frame for proc %d: %v", pid, err)})
	}
}

// RecvGrant implements Transport. The plane never spawns local workers on a
// WorkerHoster transport, so nothing should ever call it.
func (wt *WireTransport) RecvGrant(int) (Grant, bool) { return Grant{}, false }

// SendYield implements Transport; serve-side workers do not exist, so this
// is never called.
func (wt *WireTransport) SendYield(YieldFrame) {}

// Close implements Transport: it first gives each live session a moment to
// ack its outstanding frames (the kill grants the plane's shutdown just
// sent — a chaos-dropped kill must be retransmitted or the join would hang),
// then tears down the listener and peers. Idempotent.
func (wt *WireTransport) Close() {
	wt.mu.Lock()
	if wt.closed {
		wt.mu.Unlock()
		return
	}
	live := make([]*wireSession, 0, len(wt.sessions))
	for _, s := range wt.sessions {
		if !s.dead {
			live = append(live, s)
		}
	}
	wt.mu.Unlock()
	for _, s := range live {
		s.peer.waitDrained(2 * time.Second)
	}
	wt.mu.Lock()
	if wt.closed {
		wt.mu.Unlock()
		return
	}
	wt.closed = true
	for _, s := range wt.sessions {
		if s.grace != nil {
			s.grace.Stop()
			s.grace = nil
		}
	}
	wt.mu.Unlock()
	wt.ln.Close()
	for _, s := range wt.sessions {
		s.peer.close()
	}
	if wt.opts.Network == "unix" {
		os.Remove(wt.opts.Addr)
	}
}

// WorkerRecoverable implements WorkerHoster: the bit the join reported at
// handshake, and the join must still be reachable.
func (wt *WireTransport) WorkerRecoverable(pid int) bool {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	if wt.closed || pid < 0 || pid >= len(wt.pidSess) || wt.dead[pid] {
		return false
	}
	s := wt.pidSess[pid]
	return s.recov[pid-s.lo]
}

// SnapshotWorker implements WorkerHoster: relays the crash-time checkpoint
// (drop mail + snapshot) to the join hosting pid.
func (wt *WireTransport) SnapshotWorker(pid int) {
	wt.sendControl(pid, frameCrash)
}

// RestoreWorker implements WorkerHoster: relays the revival to the join
// hosting pid.
func (wt *WireTransport) RestoreWorker(pid int) {
	wt.sendControl(pid, frameRestart)
}

func (wt *WireTransport) sendControl(pid int, kind uint8) {
	wt.mu.Lock()
	if wt.closed || pid < 0 || pid >= len(wt.pidSess) || wt.dead[pid] {
		wt.mu.Unlock()
		return
	}
	s := wt.pidSess[pid]
	wt.mu.Unlock()
	s.peer.send(&wireFrame{Kind: kind, PID: pid})
}

// ParseWireAddr splits a user-facing cluster address into (network, addr):
// "unix:/path/to.sock" selects a unix socket, anything else is tcp. The
// serve and join subcommands share it so their -listen/-connect flags
// cannot drift apart.
func ParseWireAddr(s string) (network, addr string) {
	if rest, ok := strings.CutPrefix(s, "unix:"); ok {
		return "unix", rest
	}
	return "tcp", s
}
