// Package live is the concurrent execution plane: it runs the simulator's
// protocol state machines (sim.Stepper implementations, including
// goroutine-shimmed Scripts) unchanged over real goroutines — one per
// process — exchanging frames through a pluggable Transport (in-process
// channels today, sockets-shaped tomorrow).
//
// The plane is a BSP-style round barrier, implemented sense-reversing: each
// round the coordinator token holder delivers last round's messages, arms
// the RoundBatch (one slot per runnable process, the round number as the
// sense value, an atomic count of expected arrivals) and grants every
// runnable process one step. The processes step concurrently — genuinely in
// parallel, with the transport free to delay and reorder their yields —
// and each finished round lands in the batch as a single YieldFrame hop.
// The arrival that completes the batch wins the coordinator token and
// commits the collected yields in ascending PID order on its own goroutine,
// replicating the sim engine's scheduling, adversary consultation, message
// accounting and fast-forward semantics decision for decision. That makes
// the plane's Result (and error) reflect.DeepEqual the single-threaded
// engine's for the same configuration — the property
// TestLivePlaneEquivalence pins for every protocol × adversary × grid —
// while the execution underneath is true multi-goroutine concurrency,
// verified race-clean under `go test -race`. Because the token rides the
// frames instead of a dedicated coordinator goroutine, a solo runnable
// process re-grants itself without a single goroutine handoff — the
// common case in single-active protocols, and the reason the plane's
// wall-clock cost tracks the engine's instead of the scheduler's.
//
// Fault injection rides the same sim.Adversary interface as the engine:
// replaying an explore.Vector schedule against the live plane is
// Config{Adversary: vec.Adversary()}, nothing more. Round-triggered choices
// crash parked workers between rounds; action-triggered choices crash a
// process as its step commits, with the verdict's Deliver mask selecting
// which entries of the action's virtual send list survive — crashing a real
// goroutine mid-broadcast.
//
// The package also hosts the fully asynchronous Protocol A port (Cluster,
// Network, Detector, WorkLog — formerly package asyncnet): no rounds, no
// barrier, arbitrary message delays, a failure detector instead of
// deadlines. The barrier plane and the async cluster are the two ends of
// the liveness spectrum; DESIGN.md §6 maps the territory.
package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Config parameterises a live run. The fields mirror sim.Config: a config
// run on either plane must mean the same thing.
type Config struct {
	// NumProcs is the number of processes t (one goroutine each).
	NumProcs int
	// NumUnits is the number of work units n.
	NumUnits int
	// Adversary is the fault injector (nil: failure-free). Any sim.Adversary
	// works — explore.Vector replay included.
	Adversary sim.Adversary
	// MaxRound aborts runs that exceed this round (0 = a large default).
	MaxRound int64
	// MaxActive, when > 0, verifies the at-most-MaxActive invariant after
	// every round.
	MaxActive int
	// Bandwidth, when > 0, caps the messages each process may transmit per
	// round, deferring the overflow exactly as sim.Config.Bandwidth does.
	Bandwidth int
	// DetailedMetrics enables per-kind message counting.
	DetailedMetrics bool
	// Tracer, when non-nil, receives one event per committed action, in the
	// exact order the sim engine would emit them. Calls are serialized (the
	// coordinator token guarantees mutual exclusion) but arrive on whichever
	// worker goroutine holds the token, not on the Run caller's.
	Tracer func(sim.Event)
	// Transport carries the barrier traffic; nil means an in-process
	// channel transport with zero latency, owned and reused by the plane.
	// A Transport implementing WorkerHoster (the wire transport) switches
	// the plane into remote mode: the steppers func passed to New/Run is
	// ignored (may be nil) and the processes live wherever the transport's
	// workers are hosted.
	Transport Transport
}

// procState is the coordinator's book on one process. The *sim.Proc inside
// is worker-owned while a step is in flight; the coordinator touches it only
// between the process's steps (grant frames and barrier arrivals establish
// the happens-before edges).
type procState struct {
	p        *sim.Proc
	status   sim.Status
	sleeping bool
	wakeAt   int64
	runnable bool
	granted  bool // granted a step this round, yield pending or collected
	killed   bool // worker torn down (crash, halt or shutdown)

	// Extended fault alphabet (mirrors the engine's Proc fields): stalled
	// marks a rate-degraded process serving its post-action stall rounds,
	// slowFactor its persistent factor; snapped records a crash checkpoint
	// held for revival, restartAts the pending Verdict.RestartAt revival
	// rounds (ascending; the engine's restart heap entries for this PID).
	stalled    bool
	slowFactor int
	snapped    bool
	restartAts []int64
	restarts   int64

	// Bandwidth cap (mirrors the engine's Proc fields): sendq holds
	// committed-but-untransmitted messages awaiting budget, sentInRound
	// meters this round's transmissions (lazily restamped via sentRound),
	// deferred totals the overflowed sends.
	sendq       []sim.Message
	sentRound   int64
	sentInRound int
	deferred    int64

	retireRound int64
	workDone    int64
	msgsSent    int64
	actions     int64

	// Remote mode (WorkerHoster transports): the process lives in another
	// OS process, so ps.p is unused; label and active mirror the state the
	// worker's yield frames report, updated at commit.
	active bool
	label  string

	mail []sim.Message // this round's deliveries, recycled per round
}

// bcastRec is one committed broadcast awaiting delivery, exactly as the sim
// engine stores it: a single shared record regardless of fanout.
type bcastRec struct {
	from    int
	sentAt  int64
	payload any
	to      []int
}

// yieldSlot holds one collected yield until the PID-ordered commit. armed
// marks the slot as expecting a frame for the round in flight; present
// marks the frame as landed.
type yieldSlot struct {
	armed    bool
	present  bool
	yield    sim.Yield
	panicVal any
	panicked bool

	// Remote-mode frame extras (see YieldFrame).
	label  string
	active bool
	died   bool
}

// RoundBatch is the arrival half of the plane's sense-reversing barrier:
// the PID-indexed batch of yield frames for the round in flight. The
// coordinator arms one slot per granted process and publishes the round as
// the sense value and the grant count as the pending counter before the
// first grant goes out; workers' frames then land via Arrive in whatever
// order the transport produces. The arrival that brings pending to zero
// wins the coordinator token and runs the serial phases (commit, faults,
// delivery, fast-forward, next grant) inline on its own goroutine — there
// is no dedicated coordinator goroutine to wake, which is what removes the
// per-round handoff tax. Frames carrying a stale sense or an unarmed PID
// are dropped without touching the counter, so a transport that replays or
// reorders frames cannot release the barrier early; only the granted
// worker's own (possibly panicked) frame can.
type RoundBatch struct {
	pl      *Plane
	sense   atomic.Int64 // the round currently armed (-1 when idle)
	pending atomic.Int64 // granted frames still missing this round
	slots   []yieldSlot
}

var _ YieldSink = (*RoundBatch)(nil)

// Arrive implements YieldSink: it files one worker's frame into its armed
// slot and, on completing the batch, runs the coordinator turn for the
// round. Safe for concurrent use by any number of transport goroutines.
func (rb *RoundBatch) Arrive(f YieldFrame) {
	if f.PID < 0 || f.PID >= len(rb.slots) || f.Round != rb.sense.Load() {
		return // stale or alien frame: transport contract violation, dropped
	}
	s := &rb.slots[f.PID]
	if !s.armed || s.present {
		return
	}
	s.present = true
	s.yield, s.panicVal, s.panicked = f.Yield, f.PanicVal, f.Panicked
	s.label, s.active, s.died = f.Label, f.Active, f.Died
	if rb.pending.Add(-1) == 0 {
		rb.pl.turn(false)
	}
}

// Plane coordinates one live run. It implements sim.Host for its processes.
// A Plane built with New is single-use; the package-level Run recycles
// planes (goroutine bookkeeping, process handles, frame slots, buffers and
// the default transport included) through an internal sync.Pool, mirroring
// the engine's runPooled.
type Plane struct {
	cfg Config
	tr  Transport
	// homeTr is the plane-owned default transport, built lazily for runs
	// without a Config.Transport and reused across pooled runs (its grant
	// channels survive; Close is never called on it).
	homeTr *ChanTransport
	ownTr  bool
	// remote marks a WorkerHoster transport: the workers live in other OS
	// processes, so the plane builds no sim.Procs and spawns no worker
	// goroutines; hoster carries the per-process operations it relays.
	remote bool
	hoster WorkerHoster

	// allProcs retains every process slot ever used by this plane so pooled
	// reuse recycles procState and sim.Proc values; procs is the current
	// run's prefix.
	allProcs []*procState
	procs    []*procState
	now      int64
	live     int
	// active is the SetActive count; workers update it concurrently from
	// inside their steps, hence the atomic (the engine's plain field relies
	// on strict alternation the plane deliberately gives up).
	active atomic.Int64

	pendingNext     []sim.Message
	spare           []sim.Message
	pendingBcast    []bcastRec
	spareBcast      []bcastRec
	pendingUnsorted bool

	batch        RoundBatch
	grantScratch []int
	done         chan struct{}

	// Optional adversary extensions, resolved once per reset by type
	// assertion (nil when not implemented), exactly as the engine's Reset.
	dropper   sim.DeliveryAdversary
	restarter sim.Restarter

	unitsDone    []bool
	distinctDone int
	metrics      sim.Result
	err          error

	wg      sync.WaitGroup
	started bool
}

var _ sim.Host = (*Plane)(nil)

// NumProcs implements sim.Host.
func (pl *Plane) NumProcs() int { return pl.cfg.NumProcs }

// NumUnits implements sim.Host.
func (pl *Plane) NumUnits() int { return pl.cfg.NumUnits }

// Round implements sim.Host. Workers read it only inside a step; the token
// holder writes it only between rounds, and every grant frame carries a
// happens-before edge, so the plain field is race-free.
func (pl *Plane) Round() int64 { return pl.now }

// AddActive implements sim.Host.
func (pl *Plane) AddActive(delta int) { pl.active.Add(int64(delta)) }

// New builds a plane; steppers(id) supplies each process's body (use
// sim.ScriptStepper to run blocking Scripts).
func New(cfg Config, steppers func(id int) sim.Stepper) *Plane {
	pl := &Plane{}
	pl.reset(cfg, steppers)
	return pl
}

// planePool recycles planes across package-level Run calls: the live
// counterpart of the engine's runPooled, with the same reset-then-scrub
// discipline.
var planePool = sync.Pool{New: func() any { return &Plane{} }}

// Run executes a complete run on a pooled plane: behaviourally identical to
// New(cfg, steppers).Run(), but process handles, frame slots, message
// buffers and the default transport are recycled across calls.
func Run(cfg Config, steppers func(id int) sim.Stepper) (sim.Result, error) {
	pl := planePool.Get().(*Plane)
	pl.reset(cfg, steppers)
	res, err := pl.Run()
	pl.scrub()
	planePool.Put(pl)
	return res, err
}

// reset readies a (possibly recycled) plane for one run, recycling every
// buffer whose capacity survives scrub.
func (pl *Plane) reset(cfg Config, steppers func(id int) sim.Stepper) {
	if cfg.Adversary == nil {
		cfg.Adversary = sim.NopAdversary{}
	}
	if cfg.MaxRound == 0 {
		cfg.MaxRound = sim.Forever
	}
	pl.ownTr = cfg.Transport == nil
	if pl.ownTr {
		if pl.homeTr == nil {
			pl.homeTr = NewChanTransport(Latency{})
		}
		cfg.Transport = pl.homeTr
	}
	pl.cfg = cfg
	pl.tr = cfg.Transport
	pl.hoster, _ = cfg.Transport.(WorkerHoster)
	pl.remote = pl.hoster != nil
	pl.now = 0
	pl.live = cfg.NumProcs
	pl.active.Store(0)
	pl.pendingNext = pl.pendingNext[:0]
	pl.spare = pl.spare[:0]
	pl.pendingBcast = pl.pendingBcast[:0]
	pl.spareBcast = pl.spareBcast[:0]
	pl.pendingUnsorted = false
	if n := cfg.NumProcs; n <= cap(pl.batch.slots) {
		pl.batch.slots = pl.batch.slots[:n]
	} else {
		pl.batch.slots = make([]yieldSlot, n)
	}
	pl.batch.pl = pl
	pl.batch.sense.Store(-1)
	pl.batch.pending.Store(0)
	if n := cfg.NumUnits + 1; n <= cap(pl.unitsDone) {
		pl.unitsDone = pl.unitsDone[:n]
		clear(pl.unitsDone)
	} else {
		pl.unitsDone = make([]bool, n)
	}
	pl.distinctDone = 0
	pl.metrics = sim.Result{CompletedRound: -1}
	if cfg.NumUnits == 0 {
		pl.metrics.CompletedRound = 0
	}
	if cfg.DetailedMetrics {
		pl.metrics.MessagesByKind = make(map[string]int64)
	}
	pl.err = nil
	pl.dropper, _ = cfg.Adversary.(sim.DeliveryAdversary)
	pl.restarter, _ = cfg.Adversary.(sim.Restarter)
	pl.started = false
	pl.done = nil
	for len(pl.allProcs) < cfg.NumProcs {
		pl.allProcs = append(pl.allProcs, &procState{})
	}
	pl.procs = pl.allProcs[:cfg.NumProcs]
	for id, ps := range pl.procs {
		if !pl.remote {
			if ps.p == nil {
				ps.p = sim.NewHostedProc(pl, id, steppers(id))
			} else {
				ps.p.Rehost(pl, id, steppers(id))
			}
		}
		p, restartAts, mail, sendq := ps.p, ps.restartAts[:0], ps.mail[:0], ps.sendq[:0]
		*ps = procState{
			p: p, status: sim.StatusRunning,
			runnable:   true, // round 0: everyone steps, as in the engine
			restartAts: restartAts, mail: mail,
			sendq: sendq, sentRound: -1,
		}
	}
}

// scrub runs after a pooled run: it releases every payload reference the
// run parked in the plane's recycled buffers (pending messages and records,
// frame slots, per-process mail and Proc internals), so an idle plane
// sitting in the pool does not keep the previous run's data alive. Only the
// finished run's procs are touched — allProcs beyond cfg.NumProcs were
// scrubbed by the last run that used them.
func (pl *Plane) scrub() {
	pl.pendingNext = scrubSlice(pl.pendingNext)
	pl.spare = scrubSlice(pl.spare)
	pl.pendingBcast = scrubSlice(pl.pendingBcast)
	pl.spareBcast = scrubSlice(pl.spareBcast)
	for i := range pl.batch.slots {
		pl.batch.slots[i] = yieldSlot{}
	}
	for _, ps := range pl.procs {
		ps.mail = scrubSlice(ps.mail)
		ps.sendq = scrubSlice(ps.sendq)
		if ps.p != nil { // nil for procs only ever used by remote runs
			ps.p.Scrub()
		}
	}
}

// scrubSlice zeroes a recycled buffer through its full capacity — dropping
// the payload references parked in the cap region — and truncates it.
func scrubSlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	clear(s[:cap(s)])
	return s[:0]
}

// worker is the per-process goroutine: receive a grant, deliver its
// messages into the local inbox, take one step, send the whole round's
// output back as one frame. It owns the *sim.Proc for the duration of the
// step; panics in the process body are converted to frames by TryStep so
// the run fails deterministically.
func (pl *Plane) worker(pid int) {
	defer pl.wg.Done()
	ps := pl.procs[pid]
	for {
		g, ok := pl.tr.RecvGrant(pid)
		if !ok || g.Kill {
			ps.p.Release() // free the script shim goroutine, if any
			return
		}
		if g.Round != ps.p.Now() {
			// The transport delivered a stale or reordered grant; surface it
			// through the deterministic failure path instead of stepping the
			// process in the wrong round.
			pl.tr.SendYield(YieldFrame{PID: pid, Round: ps.p.Now(), Panicked: true, PanicVal: fmt.Sprintf(
				"live: transport granted round %d to proc %d at round %d", g.Round, pid, ps.p.Now())})
			continue
		}
		for _, m := range g.Msgs {
			ps.p.Deliver(m)
		}
		y, pv, panicked := ps.p.TryStep()
		pl.tr.SendYield(YieldFrame{PID: pid, Round: g.Round, Yield: y, PanicVal: pv, Panicked: panicked})
	}
}

// Run executes the run to completion and returns the aggregated metrics.
// The caller's goroutine runs the opening coordinator turn, then blocks
// until some token holder declares the run over; the round loop itself is
// the engine's, phase for phase, executed by whichever goroutine completes
// each round's batch.
func (pl *Plane) Run() (sim.Result, error) {
	if pl.started {
		return sim.Result{}, fmt.Errorf("live: Plane is single-use; build a new one per run")
	}
	pl.started = true
	pl.done = make(chan struct{})
	pl.tr.Open(pl.cfg.NumProcs, &pl.batch)
	if !pl.remote {
		pl.wg.Add(pl.cfg.NumProcs)
		for id := range pl.procs {
			go pl.worker(id)
		}
	}
	defer pl.shutdown()
	pl.turn(true)
	<-pl.done
	pl.finalize()
	return pl.metrics, pl.err
}

// turn is one tenure of the coordinator token. Unless this is the opening
// turn it first commits the round whose batch just completed; it then
// advances through the engine's inter-round phases — fault injection,
// delivery, wakeups, fast-forwards — until either a new set of grants is in
// flight (the token parks at the barrier, to be picked up by the round's
// last arrival) or the run is over (finish releases Run's goroutine).
// Exactly one goroutine executes turn at any time: the token passes from
// Run's goroutine to the last arriver of each batch, with the barrier's
// atomic counter carrying the happens-before edge for all plane state.
func (pl *Plane) turn(opening bool) {
	if !opening {
		pl.commit()
		if pl.err != nil {
			pl.finish()
			return
		}
		if err := pl.checkInvariants(); err != nil {
			pl.fail(err)
			pl.finish()
			return
		}
		if !pl.advanceRound() {
			pl.finish()
			return
		}
	}
	for pl.live > 0 || pl.restartPending() {
		if pl.now > pl.cfg.MaxRound {
			pl.fail(fmt.Errorf("%w: round %d > %d", sim.ErrRoundLimit, pl.now, pl.cfg.MaxRound))
			pl.finish()
			return
		}
		// Revivals precede this round's scheduled crashes and deliveries,
		// exactly as in the engine's round loop.
		pl.restartDue()
		pl.crashScheduled()
		pl.deliver()
		pl.wakeSleepers()
		pl.pumpDeferred()
		if pl.grantRunnable() > 0 {
			return // token parked at the barrier until the batch completes
		}
		// No grants this round: the engine's loop would commit nothing and
		// fast-forward; replicate its error-check and round-advance phases.
		if err := pl.checkInvariants(); err != nil {
			pl.fail(err)
			pl.finish()
			return
		}
		if !pl.advanceRound() {
			pl.finish()
			return
		}
	}
	pl.finish()
}

// advanceRound runs the engine's end-of-round phase: fast-forward to the
// next interesting round, or report the run over (deadlock included).
func (pl *Plane) advanceRound() bool {
	next := pl.nextRound()
	if next == sim.Forever {
		if pl.live > 0 {
			pl.fail(sim.ErrDeadlock)
		}
		return false
	}
	pl.now = next
	return true
}

// finish declares the run over, releasing Run's goroutine. Called exactly
// once, by the final token holder.
func (pl *Plane) finish() { close(pl.done) }

func (pl *Plane) fail(err error) {
	if pl.err == nil {
		pl.err = err
	}
}

// killWorker tears down one process's goroutine, exactly once.
func (pl *Plane) killWorker(ps *procState, pid int) {
	if ps.killed {
		return
	}
	ps.killed = true
	pl.tr.SendGrant(pid, Grant{Kill: true})
}

// shutdown releases every remaining worker and closes the transport (the
// plane-owned default transport is kept open for pooled reuse; nothing
// leaks, its channels are empty once every worker consumed its kill
// grant). All workers are parked between steps whenever shutdown runs, so
// the kill grants land without blocking.
func (pl *Plane) shutdown() {
	for pid, ps := range pl.procs {
		pl.killWorker(ps, pid)
	}
	pl.wg.Wait()
	if !pl.ownTr {
		pl.tr.Close()
	}
}

// crashScheduled applies round-triggered crashes at the start of a round:
// the victims' workers are parked (possibly mid-sleep), so the crash is a
// state flip plus a kill grant.
func (pl *Plane) crashScheduled() {
	for _, pid := range pl.cfg.Adversary.ScheduledCrashes(pl.now) {
		if pid < 0 || pid >= len(pl.procs) {
			continue
		}
		ps := pl.procs[pid]
		if ps.status != sim.StatusRunning {
			continue
		}
		pl.crash(ps, pid, 0)
	}
}

// crash retires one process as crashed; the counters and flags mirror the
// engine's crash() so Results agree field for field. restartAt carries the
// verdict's revival round (0 for round-triggered crashes, which never see a
// verdict). A crash that may be revived — an explicit restartAt, or any
// crash under a Restarter adversary whose round schedule is opaque —
// checkpoints the process and leaves its worker parked instead of killing
// it; non-recoverable processes (script shims included) are torn down as
// before.
func (pl *Plane) crash(ps *procState, pid int, restartAt int64) {
	ps.status = sim.StatusCrashed
	pl.deactivate(ps)
	ps.retireRound = pl.now
	ps.runnable = false
	ps.sleeping = false
	ps.stalled = false
	ps.sendq = ps.sendq[:0] // bandwidth-deferred sends die with the sender
	pl.live--
	pl.metrics.Crashes++
	if !pl.remote {
		ps.p.DropMail() // as the engine's crash clears the inbox
	}
	if (restartAt > pl.now || pl.restarter != nil) && pl.snapshotWorker(ps, pid) {
		ps.snapped = true
		if restartAt > pl.now {
			// Keep pending revival rounds ascending, as the engine's heap
			// orders its entries.
			i := len(ps.restartAts)
			for i > 0 && ps.restartAts[i-1] > restartAt {
				i--
			}
			ps.restartAts = append(ps.restartAts, 0)
			copy(ps.restartAts[i+1:], ps.restartAts[i:])
			ps.restartAts[i] = restartAt
		}
		return
	}
	pl.killWorker(ps, pid)
}

// deactivate clears one process's active flag at retirement (crash, halt,
// panic), keeping the at-most-active count in sync. Local procs own the flag
// (SetActive routes its delta through the Host); a remote proc's flag is the
// plane-side mirror of its yield frames, so the plane adjusts the count
// itself.
func (pl *Plane) deactivate(ps *procState) {
	if !pl.remote {
		ps.p.SetActive(false)
		return
	}
	if ps.active {
		ps.active = false
		pl.active.Add(-1)
	}
}

// snapshotWorker checkpoints a crashing process for possible revival,
// reporting whether its stepper supports it — Proc.SnapshotState locally, a
// relayed control frame for remote workers (whose recoverability the
// transport learned at handshake; a worker whose host process is gone is not
// recoverable).
func (pl *Plane) snapshotWorker(ps *procState, pid int) bool {
	if !pl.remote {
		return ps.p.SnapshotState()
	}
	if ps.killed || !pl.hoster.WorkerRecoverable(pid) {
		return false
	}
	pl.hoster.SnapshotWorker(pid)
	return true
}

// restoreWorker rewinds a crashed process to its crash checkpoint, reporting
// whether one was held — Proc.RestoreState locally, a relayed control frame
// for remote workers.
func (pl *Plane) restoreWorker(ps *procState, pid int) bool {
	if !pl.remote {
		return ps.p.RestoreState()
	}
	if !ps.snapped || !pl.hoster.WorkerRecoverable(pid) {
		return false
	}
	pl.hoster.RestoreWorker(pid)
	return true
}

// transportCrash retires a granted process whose remote host process
// vanished mid-round (the transport synthesized a Died frame for it). The
// bookkeeping is the engine's round-start crash: no event is committed for
// the granted round, exactly as an engine process crashed at round R never
// steps at R — which is what maps a SIGKILLed join process onto the crash
// verdicts explore certificates describe.
func (pl *Plane) transportCrash(ps *procState, pid int) {
	ps.killed = true // the worker's host process is gone; nothing to tear down
	ps.status = sim.StatusCrashed
	pl.deactivate(ps)
	ps.retireRound = pl.now
	ps.runnable = false
	ps.sleeping = false
	ps.stalled = false
	ps.sendq = ps.sendq[:0] // bandwidth-deferred sends die with the sender
	pl.live--
	pl.metrics.Crashes++
}

// restartDue revives crashed processes whose scheduled restart round has
// arrived: verdict-scheduled revivals first, then the adversary's round
// schedule, matching the engine's restartDue. Per-process revival attempts
// are idempotent (restart is guarded), so the engine's global (round, pid)
// heap order and the plane's pid-major order commit the same state.
func (pl *Plane) restartDue() {
	for pid, ps := range pl.procs {
		for len(ps.restartAts) > 0 && ps.restartAts[0] <= pl.now {
			ps.restartAts = ps.restartAts[1:]
			pl.restart(ps, pid)
		}
	}
	if pl.restarter != nil {
		for _, pid := range pl.restarter.ScheduledRestarts(pl.now) {
			if pid >= 0 && pid < len(pl.procs) {
				pl.restart(pl.procs[pid], pid)
			}
		}
	}
}

// restart revives one crashed process from its crash checkpoint; requests
// that cannot be honoured are ignored, exactly as in the engine.
func (pl *Plane) restart(ps *procState, pid int) {
	if ps.status != sim.StatusCrashed || ps.killed || !pl.restoreWorker(ps, pid) {
		return
	}
	ps.snapped = false
	ps.status = sim.StatusRunning
	ps.sleeping = false
	ps.stalled = false
	ps.slowFactor = 0
	ps.retireRound = 0
	ps.runnable = true // the revived process steps in its restart round
	ps.restarts++
	pl.live++
	pl.metrics.Restarts++
}

// restartPending reports whether a scheduled restart can still revive some
// process once live hits zero: the engine's restartPending over the plane's
// per-process pending lists.
func (pl *Plane) restartPending() bool {
	for _, ps := range pl.procs {
		if len(ps.restartAts) > 0 && ps.status == sim.StatusCrashed && ps.snapped && !ps.killed {
			return true
		}
	}
	return pl.restarter != nil && pl.restarter.NextScheduledRestart(pl.now-1) >= 0
}

// deliver stages the messages committed last round into per-process mail
// batches, merging broadcast records with point-to-point sends by sender
// PID exactly as the engine's deliver does, so inboxes observe the same
// (delivery round, sender) order on both planes. Recipients gaining mail
// become runnable.
func (pl *Plane) deliver() {
	msgs, recs := pl.pendingNext, pl.pendingBcast
	if len(msgs) == 0 && len(recs) == 0 {
		return
	}
	if pl.pendingUnsorted {
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].from < recs[j].from })
		pl.pendingUnsorted = false
	}
	mi, ri := 0, 0
	for mi < len(msgs) || ri < len(recs) {
		if mi < len(msgs) && (ri >= len(recs) || msgs[mi].From <= recs[ri].from) {
			m := msgs[mi]
			mi++
			pl.stage(m)
			continue
		}
		r := recs[ri]
		ri++
		for _, to := range r.to {
			pl.stage(sim.Message{From: r.from, To: to, SentAt: r.sentAt, Payload: r.payload})
		}
	}
	pl.pendingNext = pl.spare[:0]
	pl.spare = msgs[:0]
	for i := range recs {
		recs[i] = bcastRec{}
	}
	pl.pendingBcast = pl.spareBcast[:0]
	pl.spareBcast = recs[:0]
}

// stage queues one message for delivery with this round's grant, first
// consulting the delivery adversary (transient loss) exactly where the
// engine's deposit does. A stalled recipient keeps the mail but is not
// woken by it.
func (pl *Plane) stage(m sim.Message) {
	ps := pl.procs[m.To]
	if ps.status != sim.StatusRunning {
		return
	}
	if pl.dropper != nil && !pl.dropper.OnDeliver(pl.now, m) {
		pl.metrics.Dropped++
		return
	}
	ps.mail = append(ps.mail, m)
	if !ps.stalled {
		ps.runnable = true
	}
}

// wakeSleepers makes every sleeping process whose wake time has arrived
// runnable.
func (pl *Plane) wakeSleepers() {
	for _, ps := range pl.procs {
		if ps.status == sim.StatusRunning && ps.sleeping && ps.wakeAt <= pl.now {
			ps.runnable = true
		}
	}
}

// budgetLeft returns the process's remaining transmissions this round under
// the bandwidth cap, lazily resetting the per-round meter (the engine's
// budgetLeft, on plane state).
func (pl *Plane) budgetLeft(ps *procState) int {
	if ps.sentRound != pl.now {
		ps.sentRound = pl.now
		ps.sentInRound = 0
	}
	return pl.cfg.Bandwidth - ps.sentInRound
}

// transmit books one capped-mode message onto the next-round buffer,
// mirroring the engine's transmit: Messages advance at transmission, not
// commit.
func (pl *Plane) transmit(ps *procState, pid int, m sim.Message) {
	pl.metrics.Messages++
	ps.msgsSent++
	ps.sentInRound++
	if pl.metrics.MessagesByKind != nil {
		pl.metrics.MessagesByKind[sim.PayloadKind(m.Payload)]++
	}
	if n := len(pl.pendingNext); n > 0 && pl.pendingNext[n-1].From > pid {
		pl.pendingUnsorted = true
	}
	pl.pendingNext = append(pl.pendingNext, m)
}

// pumpDeferred drains bandwidth-deferred send queues into the next-round
// buffer in ascending PID order, up to each process's round budget — the
// engine's pump phase, run in the same slot of the round (after wakeups,
// before this round's steps are granted, and so before their commits land).
func (pl *Plane) pumpDeferred() {
	if pl.cfg.Bandwidth <= 0 {
		return
	}
	for pid, ps := range pl.procs {
		q := ps.sendq
		if len(q) == 0 {
			continue
		}
		i := 0
		for i < len(q) && pl.budgetLeft(ps) > 0 {
			pl.transmit(ps, pid, q[i])
			i++
		}
		if i > 0 {
			rest := copy(q, q[i:])
			clear(q[rest:]) // drop moved payload references
			ps.sendq = q[:rest]
		}
	}
}

// commitCapped walks an action's virtual send list under the bandwidth cap,
// transmitting while the budget lasts and queueing the remainder, exactly as
// the engine's commitCapped (broadcasts flatten; error text and valid-prefix
// accounting unchanged). Reports false when the run has failed.
func (pl *Plane) commitCapped(ps *procState, pid int, sends []sim.Send, bcast sim.Broadcast) bool {
	for _, s := range sends {
		if s.To < 0 || s.To >= len(pl.procs) {
			pl.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", pid, s.To))
			return false
		}
		pl.sendCapped(ps, pid, sim.Message{From: pid, To: s.To, SentAt: pl.now, Payload: s.Payload})
	}
	for _, to := range bcast.To {
		if to < 0 || to >= len(pl.procs) {
			pl.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", pid, to))
			return false
		}
		pl.sendCapped(ps, pid, sim.Message{From: pid, To: to, SentAt: pl.now, Payload: bcast.Payload})
	}
	return true
}

// sendCapped transmits one committed message within budget or defers it,
// counting the deferral once at the overflowing commit.
func (pl *Plane) sendCapped(ps *procState, pid int, m sim.Message) {
	if pl.budgetLeft(ps) > 0 {
		pl.transmit(ps, pid, m)
		return
	}
	ps.sendq = append(ps.sendq, m)
	ps.deferred++
	pl.metrics.Deferred++
}

// grantRunnable arms the barrier and grants one step to every runnable
// process, returning the grant count. The batch shape — armed slots, sense
// value, pending counter — is fully published before the first grant goes
// out: the first worker to finish may arrive before later grants are even
// sent, and the barrier must already know how many frames the round owes.
//
// The send loop walks grantScratch, not pl.procs: the next token tenure can
// begin the moment the final grant's worker arrives, and from then on this
// (former) holder may touch nothing the new holder writes. Every read of
// plane state in the loop precedes that final SendGrant in program order,
// and the final send happens-before the next tenure through the granted
// worker's frame and the barrier's counter.
func (pl *Plane) grantRunnable() int {
	grants := pl.grantScratch[:0]
	for pid, ps := range pl.procs {
		if ps.status != sim.StatusRunning || !ps.runnable {
			continue
		}
		ps.sleeping = false
		ps.stalled = false
		ps.granted = true
		pl.batch.slots[pid].armed = true
		grants = append(grants, pid)
	}
	pl.grantScratch = grants
	if len(grants) == 0 {
		return 0
	}
	pl.batch.sense.Store(pl.now)
	pl.batch.pending.Store(int64(len(grants)))
	for _, pid := range grants {
		pl.tr.SendGrant(pid, Grant{Round: pl.now, Msgs: pl.procs[pid].mail})
	}
	return len(grants)
}

// commit applies the completed batch in ascending PID order — the engine's
// stepRunnable order — so stateful adversaries, metrics and message buffers
// observe the identical sequence. On a fatal error the remaining yields are
// discarded uncounted, matching the engine, whose later processes never
// step at all.
func (pl *Plane) commit() {
	for pid, ps := range pl.procs {
		slot := &pl.batch.slots[pid]
		if !slot.armed {
			continue
		}
		slot.armed, slot.present = false, false
		died, label, activeNow := slot.died, slot.label, slot.active
		slot.died, slot.label, slot.active = false, "", false
		ps.granted = false
		ps.mail = ps.mail[:0]
		if pl.err != nil {
			continue // run already failed: drop, uncounted
		}
		if died {
			// The worker's host process vanished while holding this grant:
			// a crash in the granted round, no event committed.
			pl.transportCrash(ps, pid)
			continue
		}
		if pl.remote {
			// Mirror the post-step label and active flag the frame carried;
			// local procs update the count from inside their steps, remote
			// ones here, before the invariant is next sampled.
			ps.label = label
			if activeNow != ps.active {
				ps.active = activeNow
				if activeNow {
					pl.active.Add(1)
				} else {
					pl.active.Add(-1)
				}
			}
		}
		pl.metrics.Events++
		if slot.panicked {
			ps.status = sim.StatusCrashed
			pl.deactivate(ps)
			ps.retireRound = pl.now
			ps.runnable = false
			pl.live--
			pl.killWorker(ps, pid)
			// Error text matches the sim engine verbatim so cross-plane
			// comparisons can require errors to be identical.
			pl.fail(fmt.Errorf("sim: proc %d panicked: %v", pid, slot.panicVal))
			continue
		}
		switch y := slot.yield; y.Kind {
		case sim.YieldAction:
			pl.commitAction(ps, pid, y.Action)
		case sim.YieldSleep:
			ps.sleeping = true
			ps.wakeAt = y.Until
			ps.runnable = false
		case sim.YieldHalt:
			ps.status = sim.StatusTerminated
			pl.deactivate(ps)
			ps.retireRound = pl.now
			ps.runnable = false
			pl.live--
			pl.trace(ps, pid, sim.Action{}, false, true)
			pl.killWorker(ps, pid)
		}
	}
}

// commitAction applies one action: adversary verdict, work and message
// accounting, next-round buffering. It is the engine's commit transliterated
// onto the plane's state.
func (pl *Plane) commitAction(ps *procState, pid int, a sim.Action) {
	ps.actions++
	verdict := pl.cfg.Adversary.OnAction(pl.now, pid, a)
	keepWork := true
	sends := a.Sends
	bcast := a.Broadcast
	if verdict.Crash {
		keepWork = verdict.KeepWork
		// Crash mid-broadcast: the Deliver mask indexes the action's virtual
		// send list (explicit sends, then the broadcast per recipient); the
		// surviving subset is materialized as plain messages.
		sends, bcast = nil, sim.Broadcast{}
		for i, n := 0, a.SendCount(); i < n && i < len(verdict.Deliver); i++ {
			if verdict.Deliver[i] {
				sends = append(sends, a.SendAt(i))
			}
		}
	} else if verdict.Omit {
		// Send omission: same Deliver-mask filtering as a crash, but the
		// process lives on and keeps its work (engine commit, verbatim).
		n := a.SendCount()
		sends, bcast = nil, sim.Broadcast{}
		for i := 0; i < n && i < len(verdict.Deliver); i++ {
			if verdict.Deliver[i] {
				sends = append(sends, a.SendAt(i))
			}
		}
		pl.metrics.Omitted += int64(n - len(sends))
	}
	if a.WorkUnit > 0 && keepWork {
		pl.metrics.WorkTotal++
		ps.workDone++
		if a.WorkUnit < len(pl.unitsDone) && !pl.unitsDone[a.WorkUnit] {
			pl.unitsDone[a.WorkUnit] = true
			pl.distinctDone++
			if pl.distinctDone == pl.cfg.NumUnits && pl.metrics.CompletedRound < 0 {
				pl.metrics.CompletedRound = pl.now
			}
		}
	}
	if pl.cfg.Bandwidth > 0 {
		if !pl.commitCapped(ps, pid, sends, bcast) {
			return
		}
	} else {
		if len(sends) > 0 || len(bcast.To) > 0 {
			if n := len(pl.pendingNext); n > 0 && pl.pendingNext[n-1].From > pid {
				pl.pendingUnsorted = true
			}
			if n := len(pl.pendingBcast); n > 0 && pl.pendingBcast[n-1].from > pid {
				pl.pendingUnsorted = true
			}
		}
		var runKind string
		var runCount int64
		for _, s := range sends {
			if s.To < 0 || s.To >= len(pl.procs) {
				if runCount > 0 {
					pl.metrics.MessagesByKind[runKind] += runCount
				}
				pl.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", pid, s.To))
				return
			}
			pl.metrics.Messages++
			ps.msgsSent++
			if pl.metrics.MessagesByKind != nil {
				if k := sim.PayloadKind(s.Payload); k == runKind {
					runCount++
				} else {
					if runCount > 0 {
						pl.metrics.MessagesByKind[runKind] += runCount
					}
					runKind, runCount = k, 1
				}
			}
			pl.pendingNext = append(pl.pendingNext, sim.Message{
				From: pid, To: s.To, SentAt: pl.now, Payload: s.Payload,
			})
		}
		if runCount > 0 {
			pl.metrics.MessagesByKind[runKind] += runCount
		}
		if len(bcast.To) > 0 {
			var counted int64
			for _, to := range bcast.To {
				if to < 0 || to >= len(pl.procs) {
					if counted > 0 && pl.metrics.MessagesByKind != nil {
						pl.metrics.MessagesByKind[sim.PayloadKind(bcast.Payload)] += counted
					}
					pl.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", pid, to))
					return
				}
				counted++
				pl.metrics.Messages++
				ps.msgsSent++
			}
			if pl.metrics.MessagesByKind != nil {
				pl.metrics.MessagesByKind[sim.PayloadKind(bcast.Payload)] += counted
			}
			pl.pendingBcast = append(pl.pendingBcast, bcastRec{
				from: pid, sentAt: pl.now, payload: bcast.Payload, to: bcast.To,
			})
		}
	}
	pl.trace(ps, pid, a, verdict.Crash, false)
	if verdict.Crash {
		pl.crash(ps, pid, verdict.RestartAt)
		return
	}
	if verdict.Slow > 0 {
		ps.slowFactor = verdict.Slow
	}
	if ps.slowFactor > 1 {
		// Rate degradation: the next action is slowFactor rounds away; the
		// stall is a sleep that mail cannot cut short (see stage).
		ps.sleeping, ps.stalled = true, true
		ps.wakeAt = pl.now + int64(ps.slowFactor)
		ps.runnable = false
	}
}

func (pl *Plane) trace(ps *procState, pid int, a sim.Action, crashed, halted bool) {
	if pl.cfg.Tracer == nil {
		return
	}
	label := ps.label
	if !pl.remote {
		label = ps.p.Label()
	}
	pl.cfg.Tracer(sim.Event{
		Round: pl.now, PID: pid, Label: label,
		Work: a.WorkUnit, Sent: a.SendCount(),
		Crashed: crashed, Halted: halted,
	})
}

func (pl *Plane) checkInvariants() error {
	if pl.cfg.MaxActive <= 0 {
		return nil
	}
	if n := int(pl.active.Load()); n > pl.cfg.MaxActive {
		return fmt.Errorf("sim: invariant violated at round %d: %d active processes (max %d)",
			pl.now, n, pl.cfg.MaxActive)
	}
	return nil
}

// nextRound fast-forwards over quiet stretches exactly as the engine does:
// someone runnable or mail in flight means the next round, otherwise the
// earliest wake time or scheduled crash.
func (pl *Plane) nextRound() int64 {
	for _, ps := range pl.procs {
		if ps.status == sim.StatusRunning && ps.runnable {
			return pl.now + 1
		}
	}
	if len(pl.pendingNext) > 0 || len(pl.pendingBcast) > 0 {
		return pl.now + 1
	}
	next := sim.Forever
	for _, ps := range pl.procs {
		if ps.status == sim.StatusRunning && ps.sleeping && ps.wakeAt < next {
			next = ps.wakeAt
		}
	}
	if c := pl.cfg.Adversary.NextScheduledCrash(pl.now); c >= 0 && c < next {
		next = c
	}
	// Pending revivals bound the jump too, stale entries included (the
	// engine's restart heap behaves the same way).
	for _, ps := range pl.procs {
		for _, at := range ps.restartAts {
			if at < next {
				next = at
			}
		}
	}
	if pl.restarter != nil {
		if r := pl.restarter.NextScheduledRestart(pl.now); r >= 0 && r < next {
			next = r
		}
	}
	if next <= pl.now {
		next = pl.now + 1
	}
	return next
}

// finalize mirrors the engine's finalize so the Result agrees field for
// field, PerProc included.
func (pl *Plane) finalize() {
	pl.metrics.Rounds = pl.now
	pl.metrics.WorkDistinct = pl.distinctDone
	pl.metrics.PerProc = make([]sim.ProcStats, len(pl.procs))
	last := int64(0)
	for i, ps := range pl.procs {
		pl.metrics.PerProc[i] = sim.ProcStats{
			Status: ps.status, Work: ps.workDone, Sent: ps.msgsSent,
			RetireRound: ps.retireRound, Actions: ps.actions,
			Restarts: ps.restarts, Deferred: ps.deferred,
		}
		if ps.status != sim.StatusRunning {
			if ps.retireRound > last {
				last = ps.retireRound
			}
			if ps.status == sim.StatusTerminated {
				pl.metrics.Survivors++
			}
		}
	}
	if pl.err == nil {
		pl.metrics.Rounds = last
	}
}
