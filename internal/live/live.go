// Package live is the concurrent execution plane: it runs the simulator's
// protocol state machines (sim.Stepper implementations, including
// goroutine-shimmed Scripts) unchanged over real goroutines — one per
// process — exchanging frames through a pluggable Transport (in-process
// channels today, sockets-shaped tomorrow).
//
// The plane is a BSP-style round barrier. Each round the coordinator
// delivers last round's messages, grants every runnable process one step,
// and the processes step concurrently — genuinely in parallel, with the
// transport free to delay and reorder their yields. The coordinator then
// commits the collected yields in ascending PID order, replicating the sim
// engine's scheduling, adversary consultation, message accounting and
// fast-forward semantics decision for decision. That makes the plane's
// Result (and error) reflect.DeepEqual the single-threaded engine's for the
// same configuration — the property TestLivePlaneEquivalence pins for every
// protocol × adversary × grid — while the execution underneath is true
// multi-goroutine concurrency, verified race-clean under `go test -race`.
//
// Fault injection rides the same sim.Adversary interface as the engine:
// replaying an explore.Vector schedule against the live plane is
// Config{Adversary: vec.Adversary()}, nothing more. Round-triggered choices
// crash parked workers between rounds; action-triggered choices crash a
// process as its step commits, with the verdict's Deliver mask selecting
// which entries of the action's virtual send list survive — crashing a real
// goroutine mid-broadcast.
//
// The package also hosts the fully asynchronous Protocol A port (Cluster,
// Network, Detector, WorkLog — formerly package asyncnet): no rounds, no
// barrier, arbitrary message delays, a failure detector instead of
// deadlines. The barrier plane and the async cluster are the two ends of
// the liveness spectrum; DESIGN.md §6 maps the territory.
package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Config parameterises a live run. The fields mirror sim.Config: a config
// run on either plane must mean the same thing.
type Config struct {
	// NumProcs is the number of processes t (one goroutine each).
	NumProcs int
	// NumUnits is the number of work units n.
	NumUnits int
	// Adversary is the fault injector (nil: failure-free). Any sim.Adversary
	// works — explore.Vector replay included.
	Adversary sim.Adversary
	// MaxRound aborts runs that exceed this round (0 = a large default).
	MaxRound int64
	// MaxActive, when > 0, verifies the at-most-MaxActive invariant after
	// every round.
	MaxActive int
	// DetailedMetrics enables per-kind message counting.
	DetailedMetrics bool
	// Tracer, when non-nil, receives one event per committed action, in the
	// exact order the sim engine would emit them.
	Tracer func(sim.Event)
	// Transport carries the barrier traffic; nil means an in-process
	// channel transport with zero latency.
	Transport Transport
}

// procState is the coordinator's book on one process. The *sim.Proc inside
// is worker-owned while a step is in flight; the coordinator touches it only
// between the process's steps (grant/yield frames establish the
// happens-before edges).
type procState struct {
	p        *sim.Proc
	status   sim.Status
	sleeping bool
	wakeAt   int64
	runnable bool
	granted  bool // granted a step this round, yield pending or collected
	killed   bool // worker torn down (crash, halt or shutdown)

	// Extended fault alphabet (mirrors the engine's Proc fields): stalled
	// marks a rate-degraded process serving its post-action stall rounds,
	// slowFactor its persistent factor; snapped records a crash checkpoint
	// held for revival, restartAts the pending Verdict.RestartAt revival
	// rounds (ascending; the engine's restart heap entries for this PID).
	stalled    bool
	slowFactor int
	snapped    bool
	restartAts []int64
	restarts   int64

	retireRound int64
	workDone    int64
	msgsSent    int64
	actions     int64

	mail []sim.Message // this round's deliveries, recycled per round
}

// bcastRec is one committed broadcast awaiting delivery, exactly as the sim
// engine stores it: a single shared record regardless of fanout.
type bcastRec struct {
	from    int
	sentAt  int64
	payload any
	to      []int
}

// yieldSlot holds one collected yield until the PID-ordered commit.
type yieldSlot struct {
	present  bool
	yield    sim.Yield
	panicVal any
	panicked bool
}

// Plane coordinates one live run. It implements sim.Host for its processes.
// A Plane is single-use: build with New, execute with Run.
type Plane struct {
	cfg Config
	tr  Transport

	procs []*procState
	now   int64
	live  int
	// active is the SetActive count; workers update it concurrently from
	// inside their steps, hence the atomic (the engine's plain field relies
	// on strict alternation the plane deliberately gives up).
	active atomic.Int64

	pendingNext     []sim.Message
	spare           []sim.Message
	pendingBcast    []bcastRec
	spareBcast      []bcastRec
	pendingUnsorted bool

	slots []yieldSlot

	// Optional adversary extensions, resolved once in New by type assertion
	// (nil when not implemented), exactly as the engine's Reset does.
	dropper   sim.DeliveryAdversary
	restarter sim.Restarter

	unitsDone    []bool
	distinctDone int
	metrics      sim.Result
	err          error

	wg      sync.WaitGroup
	started bool
}

var _ sim.Host = (*Plane)(nil)

// NumProcs implements sim.Host.
func (pl *Plane) NumProcs() int { return pl.cfg.NumProcs }

// NumUnits implements sim.Host.
func (pl *Plane) NumUnits() int { return pl.cfg.NumUnits }

// Round implements sim.Host. Workers read it only inside a step; the
// coordinator writes it only between rounds, and every grant frame carries a
// happens-before edge, so the plain field is race-free.
func (pl *Plane) Round() int64 { return pl.now }

// AddActive implements sim.Host.
func (pl *Plane) AddActive(delta int) { pl.active.Add(int64(delta)) }

// New builds a plane; steppers(id) supplies each process's body (use
// sim.ScriptStepper to run blocking Scripts).
func New(cfg Config, steppers func(id int) sim.Stepper) *Plane {
	if cfg.Adversary == nil {
		cfg.Adversary = sim.NopAdversary{}
	}
	if cfg.MaxRound == 0 {
		cfg.MaxRound = sim.Forever
	}
	if cfg.Transport == nil {
		cfg.Transport = NewChanTransport(Latency{})
	}
	pl := &Plane{
		cfg:       cfg,
		tr:        cfg.Transport,
		live:      cfg.NumProcs,
		slots:     make([]yieldSlot, cfg.NumProcs),
		unitsDone: make([]bool, cfg.NumUnits+1),
		metrics:   sim.Result{CompletedRound: -1},
	}
	if cfg.NumUnits == 0 {
		pl.metrics.CompletedRound = 0
	}
	if cfg.DetailedMetrics {
		pl.metrics.MessagesByKind = make(map[string]int64)
	}
	pl.dropper, _ = cfg.Adversary.(sim.DeliveryAdversary)
	pl.restarter, _ = cfg.Adversary.(sim.Restarter)
	pl.procs = make([]*procState, cfg.NumProcs)
	for id := range pl.procs {
		pl.procs[id] = &procState{
			p:        sim.NewHostedProc(pl, id, steppers(id)),
			status:   sim.StatusRunning,
			runnable: true, // round 0: everyone steps, as in the engine
		}
	}
	return pl
}

// Run executes a complete run for convenience: New(cfg, steppers).Run().
func Run(cfg Config, steppers func(id int) sim.Stepper) (sim.Result, error) {
	return New(cfg, steppers).Run()
}

// worker is the per-process goroutine: receive a grant, deliver its
// messages into the local inbox, take one step, send the yield back. It
// owns the *sim.Proc for the duration of the step; panics in the process
// body are converted to frames by TryStep so the coordinator can fail the
// run deterministically.
func (pl *Plane) worker(pid int) {
	defer pl.wg.Done()
	ps := pl.procs[pid]
	for {
		g, ok := pl.tr.RecvGrant(pid)
		if !ok || g.Kill {
			ps.p.Release() // free the script shim goroutine, if any
			return
		}
		if g.Round != ps.p.Now() {
			// The transport delivered a stale or reordered grant; surface it
			// through the deterministic failure path instead of stepping the
			// process in the wrong round.
			pl.tr.SendYield(YieldFrame{PID: pid, Panicked: true, PanicVal: fmt.Sprintf(
				"live: transport granted round %d to proc %d at round %d", g.Round, pid, ps.p.Now())})
			continue
		}
		for _, m := range g.Msgs {
			ps.p.Deliver(m)
		}
		y, pv, panicked := ps.p.TryStep()
		pl.tr.SendYield(YieldFrame{PID: pid, Yield: y, PanicVal: pv, Panicked: panicked})
	}
}

// Run executes the run to completion and returns the aggregated metrics.
// The round loop is the engine's, phase for phase; only the stepping in the
// middle is concurrent.
func (pl *Plane) Run() (sim.Result, error) {
	if pl.started {
		return sim.Result{}, fmt.Errorf("live: Plane is single-use; build a new one per run")
	}
	pl.started = true
	pl.tr.Open(pl.cfg.NumProcs)
	pl.wg.Add(pl.cfg.NumProcs)
	for id := range pl.procs {
		go pl.worker(id)
	}
	defer func() {
		pl.shutdown()
	}()
	for pl.live > 0 || pl.restartPending() {
		if pl.now > pl.cfg.MaxRound {
			pl.fail(fmt.Errorf("%w: round %d > %d", sim.ErrRoundLimit, pl.now, pl.cfg.MaxRound))
			break
		}
		// Revivals precede this round's scheduled crashes and deliveries,
		// exactly as in the engine's round loop.
		pl.restartDue()
		pl.crashScheduled()
		pl.deliver()
		pl.wakeSleepers()
		granted := pl.grantRunnable()
		pl.collect(granted)
		pl.commit()
		if pl.err != nil {
			break
		}
		if err := pl.checkInvariants(); err != nil {
			pl.fail(err)
			break
		}
		next := pl.nextRound()
		if next == sim.Forever {
			if pl.live > 0 {
				pl.fail(sim.ErrDeadlock)
			}
			break
		}
		pl.now = next
	}
	pl.finalize()
	return pl.metrics, pl.err
}

func (pl *Plane) fail(err error) {
	if pl.err == nil {
		pl.err = err
	}
}

// killWorker tears down one process's goroutine, exactly once.
func (pl *Plane) killWorker(ps *procState, pid int) {
	if ps.killed {
		return
	}
	ps.killed = true
	pl.tr.SendGrant(pid, Grant{Kill: true})
}

// shutdown releases every remaining worker and closes the transport. All
// workers are parked between steps whenever the coordinator runs, so the
// kill grants land without blocking.
func (pl *Plane) shutdown() {
	for pid, ps := range pl.procs {
		pl.killWorker(ps, pid)
	}
	pl.wg.Wait()
	pl.tr.Close()
}

// crashScheduled applies round-triggered crashes at the start of a round:
// the victims' workers are parked (possibly mid-sleep), so the crash is a
// state flip plus a kill grant.
func (pl *Plane) crashScheduled() {
	for _, pid := range pl.cfg.Adversary.ScheduledCrashes(pl.now) {
		if pid < 0 || pid >= len(pl.procs) {
			continue
		}
		ps := pl.procs[pid]
		if ps.status != sim.StatusRunning {
			continue
		}
		pl.crash(ps, pid, 0)
	}
}

// crash retires one process as crashed; the counters and flags mirror the
// engine's crash() so Results agree field for field. restartAt carries the
// verdict's revival round (0 for round-triggered crashes, which never see a
// verdict). A crash that may be revived — an explicit restartAt, or any
// crash under a Restarter adversary whose round schedule is opaque —
// checkpoints the process and leaves its worker parked instead of killing
// it; non-recoverable processes (script shims included) are torn down as
// before.
func (pl *Plane) crash(ps *procState, pid int, restartAt int64) {
	ps.status = sim.StatusCrashed
	ps.p.SetActive(false)
	ps.retireRound = pl.now
	ps.runnable = false
	ps.sleeping = false
	ps.stalled = false
	pl.live--
	pl.metrics.Crashes++
	ps.p.DropMail() // as the engine's crash clears the inbox
	if (restartAt > pl.now || pl.restarter != nil) && ps.p.SnapshotState() {
		ps.snapped = true
		if restartAt > pl.now {
			// Keep pending revival rounds ascending, as the engine's heap
			// orders its entries.
			i := len(ps.restartAts)
			for i > 0 && ps.restartAts[i-1] > restartAt {
				i--
			}
			ps.restartAts = append(ps.restartAts, 0)
			copy(ps.restartAts[i+1:], ps.restartAts[i:])
			ps.restartAts[i] = restartAt
		}
		return
	}
	pl.killWorker(ps, pid)
}

// restartDue revives crashed processes whose scheduled restart round has
// arrived: verdict-scheduled revivals first, then the adversary's round
// schedule, matching the engine's restartDue. Per-process revival attempts
// are idempotent (restart is guarded), so the engine's global (round, pid)
// heap order and the plane's pid-major order commit the same state.
func (pl *Plane) restartDue() {
	for pid, ps := range pl.procs {
		for len(ps.restartAts) > 0 && ps.restartAts[0] <= pl.now {
			ps.restartAts = ps.restartAts[1:]
			pl.restart(ps, pid)
		}
	}
	if pl.restarter != nil {
		for _, pid := range pl.restarter.ScheduledRestarts(pl.now) {
			if pid >= 0 && pid < len(pl.procs) {
				pl.restart(pl.procs[pid], pid)
			}
		}
	}
}

// restart revives one crashed process from its crash checkpoint; requests
// that cannot be honoured are ignored, exactly as in the engine.
func (pl *Plane) restart(ps *procState, pid int) {
	if ps.status != sim.StatusCrashed || ps.killed || !ps.p.RestoreState() {
		return
	}
	ps.snapped = false
	ps.status = sim.StatusRunning
	ps.sleeping = false
	ps.stalled = false
	ps.slowFactor = 0
	ps.retireRound = 0
	ps.runnable = true // the revived process steps in its restart round
	ps.restarts++
	pl.live++
	pl.metrics.Restarts++
}

// restartPending reports whether a scheduled restart can still revive some
// process once live hits zero: the engine's restartPending over the plane's
// per-process pending lists.
func (pl *Plane) restartPending() bool {
	for _, ps := range pl.procs {
		if len(ps.restartAts) > 0 && ps.status == sim.StatusCrashed && ps.snapped && !ps.killed {
			return true
		}
	}
	return pl.restarter != nil && pl.restarter.NextScheduledRestart(pl.now-1) >= 0
}

// deliver stages the messages committed last round into per-process mail
// batches, merging broadcast records with point-to-point sends by sender
// PID exactly as the engine's deliver does, so inboxes observe the same
// (delivery round, sender) order on both planes. Recipients gaining mail
// become runnable.
func (pl *Plane) deliver() {
	msgs, recs := pl.pendingNext, pl.pendingBcast
	if len(msgs) == 0 && len(recs) == 0 {
		return
	}
	if pl.pendingUnsorted {
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].from < recs[j].from })
		pl.pendingUnsorted = false
	}
	mi, ri := 0, 0
	for mi < len(msgs) || ri < len(recs) {
		if mi < len(msgs) && (ri >= len(recs) || msgs[mi].From <= recs[ri].from) {
			m := msgs[mi]
			mi++
			pl.stage(m)
			continue
		}
		r := recs[ri]
		ri++
		for _, to := range r.to {
			pl.stage(sim.Message{From: r.from, To: to, SentAt: r.sentAt, Payload: r.payload})
		}
	}
	pl.pendingNext = pl.spare[:0]
	pl.spare = msgs[:0]
	for i := range recs {
		recs[i] = bcastRec{}
	}
	pl.pendingBcast = pl.spareBcast[:0]
	pl.spareBcast = recs[:0]
}

// stage queues one message for delivery with this round's grant, first
// consulting the delivery adversary (transient loss) exactly where the
// engine's deposit does. A stalled recipient keeps the mail but is not
// woken by it.
func (pl *Plane) stage(m sim.Message) {
	ps := pl.procs[m.To]
	if ps.status != sim.StatusRunning {
		return
	}
	if pl.dropper != nil && !pl.dropper.OnDeliver(pl.now, m) {
		pl.metrics.Dropped++
		return
	}
	ps.mail = append(ps.mail, m)
	if !ps.stalled {
		ps.runnable = true
	}
}

// wakeSleepers makes every sleeping process whose wake time has arrived
// runnable.
func (pl *Plane) wakeSleepers() {
	for _, ps := range pl.procs {
		if ps.status == sim.StatusRunning && ps.sleeping && ps.wakeAt <= pl.now {
			ps.runnable = true
		}
	}
}

// grantRunnable grants one step to every runnable process and returns how
// many grants went out. The workers now step concurrently; the transport
// delivers their yields in whatever order its latency model produces.
func (pl *Plane) grantRunnable() int {
	granted := 0
	for pid, ps := range pl.procs {
		if ps.status != sim.StatusRunning || !ps.runnable {
			continue
		}
		ps.sleeping = false
		ps.stalled = false
		ps.granted = true
		granted++
		pl.tr.SendGrant(pid, Grant{Round: pl.now, Msgs: ps.mail})
	}
	return granted
}

// collect gathers exactly the granted yields into PID-indexed slots. This
// is the barrier: arrival order is arbitrary, commit order is not.
func (pl *Plane) collect(granted int) {
	for i := 0; i < granted; i++ {
		f := pl.tr.RecvYield()
		pl.slots[f.PID] = yieldSlot{
			present: true, yield: f.Yield, panicVal: f.PanicVal, panicked: f.Panicked,
		}
	}
}

// commit applies the collected yields in ascending PID order — the engine's
// stepRunnable order — so stateful adversaries, metrics and message buffers
// observe the identical sequence. On a fatal error the remaining yields are
// discarded uncounted, matching the engine, whose later processes never
// step at all.
func (pl *Plane) commit() {
	for pid, ps := range pl.procs {
		slot := &pl.slots[pid]
		if !slot.present {
			continue
		}
		slot.present = false
		if !ps.granted {
			continue // stale frame from a transport violating its contract
		}
		ps.granted = false
		ps.mail = ps.mail[:0]
		if pl.err != nil {
			continue // run already failed: drop, uncounted
		}
		pl.metrics.Events++
		if slot.panicked {
			ps.status = sim.StatusCrashed
			ps.p.SetActive(false)
			ps.retireRound = pl.now
			ps.runnable = false
			pl.live--
			pl.killWorker(ps, pid)
			// Error text matches the sim engine verbatim so cross-plane
			// comparisons can require errors to be identical.
			pl.fail(fmt.Errorf("sim: proc %d panicked: %v", pid, slot.panicVal))
			continue
		}
		switch y := slot.yield; y.Kind {
		case sim.YieldAction:
			pl.commitAction(ps, pid, y.Action)
		case sim.YieldSleep:
			ps.sleeping = true
			ps.wakeAt = y.Until
			ps.runnable = false
		case sim.YieldHalt:
			ps.status = sim.StatusTerminated
			ps.p.SetActive(false)
			ps.retireRound = pl.now
			ps.runnable = false
			pl.live--
			pl.trace(ps, pid, sim.Action{}, false, true)
			pl.killWorker(ps, pid)
		}
	}
}

// commitAction applies one action: adversary verdict, work and message
// accounting, next-round buffering. It is the engine's commit transliterated
// onto the plane's state.
func (pl *Plane) commitAction(ps *procState, pid int, a sim.Action) {
	ps.actions++
	verdict := pl.cfg.Adversary.OnAction(pl.now, pid, a)
	keepWork := true
	sends := a.Sends
	bcast := a.Broadcast
	if verdict.Crash {
		keepWork = verdict.KeepWork
		// Crash mid-broadcast: the Deliver mask indexes the action's virtual
		// send list (explicit sends, then the broadcast per recipient); the
		// surviving subset is materialized as plain messages.
		sends, bcast = nil, sim.Broadcast{}
		for i, n := 0, a.SendCount(); i < n && i < len(verdict.Deliver); i++ {
			if verdict.Deliver[i] {
				sends = append(sends, a.SendAt(i))
			}
		}
	} else if verdict.Omit {
		// Send omission: same Deliver-mask filtering as a crash, but the
		// process lives on and keeps its work (engine commit, verbatim).
		n := a.SendCount()
		sends, bcast = nil, sim.Broadcast{}
		for i := 0; i < n && i < len(verdict.Deliver); i++ {
			if verdict.Deliver[i] {
				sends = append(sends, a.SendAt(i))
			}
		}
		pl.metrics.Omitted += int64(n - len(sends))
	}
	if a.WorkUnit > 0 && keepWork {
		pl.metrics.WorkTotal++
		ps.workDone++
		if a.WorkUnit < len(pl.unitsDone) && !pl.unitsDone[a.WorkUnit] {
			pl.unitsDone[a.WorkUnit] = true
			pl.distinctDone++
			if pl.distinctDone == pl.cfg.NumUnits && pl.metrics.CompletedRound < 0 {
				pl.metrics.CompletedRound = pl.now
			}
		}
	}
	if len(sends) > 0 || len(bcast.To) > 0 {
		if n := len(pl.pendingNext); n > 0 && pl.pendingNext[n-1].From > pid {
			pl.pendingUnsorted = true
		}
		if n := len(pl.pendingBcast); n > 0 && pl.pendingBcast[n-1].from > pid {
			pl.pendingUnsorted = true
		}
	}
	var runKind string
	var runCount int64
	for _, s := range sends {
		if s.To < 0 || s.To >= len(pl.procs) {
			if runCount > 0 {
				pl.metrics.MessagesByKind[runKind] += runCount
			}
			pl.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", pid, s.To))
			return
		}
		pl.metrics.Messages++
		ps.msgsSent++
		if pl.metrics.MessagesByKind != nil {
			if k := sim.PayloadKind(s.Payload); k == runKind {
				runCount++
			} else {
				if runCount > 0 {
					pl.metrics.MessagesByKind[runKind] += runCount
				}
				runKind, runCount = k, 1
			}
		}
		pl.pendingNext = append(pl.pendingNext, sim.Message{
			From: pid, To: s.To, SentAt: pl.now, Payload: s.Payload,
		})
	}
	if runCount > 0 {
		pl.metrics.MessagesByKind[runKind] += runCount
	}
	if len(bcast.To) > 0 {
		var counted int64
		for _, to := range bcast.To {
			if to < 0 || to >= len(pl.procs) {
				if counted > 0 && pl.metrics.MessagesByKind != nil {
					pl.metrics.MessagesByKind[sim.PayloadKind(bcast.Payload)] += counted
				}
				pl.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", pid, to))
				return
			}
			counted++
			pl.metrics.Messages++
			ps.msgsSent++
		}
		if pl.metrics.MessagesByKind != nil {
			pl.metrics.MessagesByKind[sim.PayloadKind(bcast.Payload)] += counted
		}
		pl.pendingBcast = append(pl.pendingBcast, bcastRec{
			from: pid, sentAt: pl.now, payload: bcast.Payload, to: bcast.To,
		})
	}
	pl.trace(ps, pid, a, verdict.Crash, false)
	if verdict.Crash {
		pl.crash(ps, pid, verdict.RestartAt)
		return
	}
	if verdict.Slow > 0 {
		ps.slowFactor = verdict.Slow
	}
	if ps.slowFactor > 1 {
		// Rate degradation: the next action is slowFactor rounds away; the
		// stall is a sleep that mail cannot cut short (see stage).
		ps.sleeping, ps.stalled = true, true
		ps.wakeAt = pl.now + int64(ps.slowFactor)
		ps.runnable = false
	}
}

func (pl *Plane) trace(ps *procState, pid int, a sim.Action, crashed, halted bool) {
	if pl.cfg.Tracer == nil {
		return
	}
	pl.cfg.Tracer(sim.Event{
		Round: pl.now, PID: pid, Label: ps.p.Label(),
		Work: a.WorkUnit, Sent: a.SendCount(),
		Crashed: crashed, Halted: halted,
	})
}

func (pl *Plane) checkInvariants() error {
	if pl.cfg.MaxActive <= 0 {
		return nil
	}
	if n := int(pl.active.Load()); n > pl.cfg.MaxActive {
		return fmt.Errorf("sim: invariant violated at round %d: %d active processes (max %d)",
			pl.now, n, pl.cfg.MaxActive)
	}
	return nil
}

// nextRound fast-forwards over quiet stretches exactly as the engine does:
// someone runnable or mail in flight means the next round, otherwise the
// earliest wake time or scheduled crash.
func (pl *Plane) nextRound() int64 {
	for _, ps := range pl.procs {
		if ps.status == sim.StatusRunning && ps.runnable {
			return pl.now + 1
		}
	}
	if len(pl.pendingNext) > 0 || len(pl.pendingBcast) > 0 {
		return pl.now + 1
	}
	next := sim.Forever
	for _, ps := range pl.procs {
		if ps.status == sim.StatusRunning && ps.sleeping && ps.wakeAt < next {
			next = ps.wakeAt
		}
	}
	if c := pl.cfg.Adversary.NextScheduledCrash(pl.now); c >= 0 && c < next {
		next = c
	}
	// Pending revivals bound the jump too, stale entries included (the
	// engine's restart heap behaves the same way).
	for _, ps := range pl.procs {
		for _, at := range ps.restartAts {
			if at < next {
				next = at
			}
		}
	}
	if pl.restarter != nil {
		if r := pl.restarter.NextScheduledRestart(pl.now); r >= 0 && r < next {
			next = r
		}
	}
	if next <= pl.now {
		next = pl.now + 1
	}
	return next
}

// finalize mirrors the engine's finalize so the Result agrees field for
// field, PerProc included.
func (pl *Plane) finalize() {
	pl.metrics.Rounds = pl.now
	pl.metrics.WorkDistinct = pl.distinctDone
	pl.metrics.PerProc = make([]sim.ProcStats, len(pl.procs))
	last := int64(0)
	for i, ps := range pl.procs {
		pl.metrics.PerProc[i] = sim.ProcStats{
			Status: ps.status, Work: ps.workDone, Sent: ps.msgsSent,
			RetireRound: ps.retireRound, Actions: ps.actions,
			Restarts: ps.restarts,
		}
		if ps.status != sim.StatusRunning {
			if ps.retireRound > last {
				last = ps.retireRound
			}
			if ps.status == sim.StatusTerminated {
				pl.metrics.Survivors++
			}
		}
	}
	if pl.err == nil {
		pl.metrics.Rounds = last
	}
}
