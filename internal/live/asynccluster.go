package live

import (
	"sync"

	"repro/internal/group"
)

// Checkpoint payloads mirror the synchronous Protocol A messages.

// PartialCP is "(c)": subchunk c complete, sent to the sender's group
// remainder.
type PartialCP struct{ C int }

// FullCP is "(c, g)": group g informed that subchunk c is complete.
type FullCP struct{ C, G int }

// ClusterConfig parameterises an asynchronous Protocol A cluster.
type ClusterConfig struct {
	// N is the number of work units, T the number of worker goroutines.
	N, T int
	// Perform executes a unit of work; nil just records it in the log.
	Perform func(worker, unit int)
}

// Cluster runs Protocol A over real goroutines. Create with NewCluster,
// start with Start, optionally Crash workers, then Wait.
type Cluster struct {
	cfg ClusterConfig
	net *Network
	fd  *Detector
	log *WorkLog
	q   group.Sqrt

	wg      sync.WaitGroup
	crashCh []chan struct{}
	crashMu sync.Mutex
	crashed []bool
}

// NewCluster builds a cluster with the given message-delay bound and seed.
func NewCluster(cfg ClusterConfig, net *Network) *Cluster {
	c := &Cluster{
		cfg:     cfg,
		net:     net,
		fd:      NewDetector(cfg.T),
		log:     NewWorkLog(cfg.N),
		q:       group.NewSqrt(cfg.T),
		crashCh: make([]chan struct{}, cfg.T),
		crashed: make([]bool, cfg.T),
	}
	for i := range c.crashCh {
		c.crashCh[i] = make(chan struct{})
	}
	return c
}

// Log exposes the shared work log.
func (c *Cluster) Log() *WorkLog { return c.log }

// Detector exposes the failure detector.
func (c *Cluster) Detector() *Detector { return c.fd }

// Start launches every worker goroutine.
func (c *Cluster) Start() {
	for j := 0; j < c.cfg.T; j++ {
		c.wg.Add(1)
		go c.worker(j)
	}
}

// Crash kills worker j (idempotent). The failure detector learns of it when
// the worker goroutine actually stops — never before — preserving
// soundness.
func (c *Cluster) Crash(j int) {
	c.crashMu.Lock()
	defer c.crashMu.Unlock()
	if j < 0 || j >= c.cfg.T || c.crashed[j] {
		return
	}
	c.crashed[j] = true
	close(c.crashCh[j])
}

// Wait blocks until every worker has retired and reports whether all work
// was performed.
func (c *Cluster) Wait() bool {
	c.wg.Wait()
	c.net.Close()
	return c.log.Complete()
}

// worker is the asynchronous Protocol A body for worker j: wait until the
// failure detector reports every lower-numbered worker retired (instead of
// the synchronous deadline DD(j)), then take over from the last checkpoint
// heard.
func (c *Cluster) worker(j int) {
	defer c.wg.Done()
	defer c.fd.MarkRetired(j)
	// Retirement must not be reported before j's sent messages land (see
	// Network.FlushFrom); j has stopped sending once this defer runs.
	defer c.net.FlushFrom(j)
	retireNotify := c.fd.Subscribe()
	inbox := c.net.Inbox(j)
	var lastC int
	var lastFull *FullCP
	var lastFrom int
	handle := func(m NetMessage) bool {
		switch pl := m.Payload.(type) {
		case PartialCP:
			if c.isTermination(j, pl.C, 0, false) {
				return true
			}
			if pl.C >= lastC {
				lastC, lastFull, lastFrom = pl.C, nil, m.From
			}
		case FullCP:
			if c.isTermination(j, pl.C, pl.G, true) {
				return true
			}
			if pl.C >= lastC {
				cp := pl
				lastC, lastFull, lastFrom = pl.C, &cp, m.From
			}
		}
		return false
	}
	for j != 0 {
		// Prefer pending checkpoints over activation: a termination
		// indication queued behind the failure detector's report must win
		// (detector reports cover voluntary termination too).
		select {
		case m := <-inbox:
			if handle(m) {
				return
			}
			continue
		default:
		}
		if c.fd.AllRetiredBelow(j) {
			break
		}
		select {
		case <-c.crashCh[j]:
			return
		case m := <-inbox:
			if handle(m) {
				return
			}
		case <-retireNotify:
			// Re-check the takeover condition.
		}
	}
	c.doWork(j, lastC, lastFull, lastFrom)
}

func (c *Cluster) isTermination(j, cp, g int, full bool) bool {
	if cp != c.cfg.T {
		return false
	}
	return !full || g == c.q.GroupOf(j)
}

// doWork mirrors the synchronous DoWork (Fig. 1): takeover chores from the
// last checkpoint heard, then the remaining subchunks with partial and full
// checkpoints.
func (c *Cluster) doWork(j, lastC int, lastFull *FullCP, lastFrom int) {
	gj := c.q.GroupOf(j)
	switch {
	case lastC == 0 && lastFull == nil:
		// Nothing heard: start from scratch.
	case lastFull == nil:
		if !c.partialCheckpoint(j, lastC) {
			return
		}
		if c.chunkBoundary(lastC) && !c.fullCheckpoint(j, lastC, gj+1) {
			return
		}
	case c.q.GroupOf(lastFrom) != gj:
		if !c.partialCheckpoint(j, lastC) {
			return
		}
		if !c.fullCheckpoint(j, lastC, gj+1) {
			return
		}
	default:
		if !c.echo(j, *lastFull) {
			return
		}
		if !c.fullCheckpoint(j, lastC, lastFull.G+1) {
			return
		}
	}
	w := (c.cfg.N + c.cfg.T - 1) / c.cfg.T
	for sc := lastC + 1; sc <= c.cfg.T; sc++ {
		lo, hi := (sc-1)*w+1, min(sc*w, c.cfg.N)
		for u := lo; u <= hi; u++ {
			if c.isCrashed(j) {
				return
			}
			c.log.Perform(u)
			if c.cfg.Perform != nil {
				c.cfg.Perform(j, u)
			}
		}
		if !c.partialCheckpoint(j, sc) {
			return
		}
		if c.chunkBoundary(sc) && !c.fullCheckpoint(j, sc, gj+1) {
			return
		}
	}
}

func (c *Cluster) chunkBoundary(sc int) bool {
	return sc > 0 && (sc%c.q.S == 0 || sc == c.cfg.T)
}

// partialCheckpoint broadcasts "(c)" to j's group remainder; false means j
// crashed mid-broadcast.
func (c *Cluster) partialCheckpoint(j, cp int) bool {
	return c.broadcast(j, c.q.Remainder(j), PartialCP{C: cp})
}

func (c *Cluster) echo(j int, payload any) bool {
	return c.broadcast(j, c.q.Remainder(j), payload)
}

// fullCheckpoint informs groups fromG.. and checkpoints each notification to
// j's own group.
func (c *Cluster) fullCheckpoint(j, cp, fromG int) bool {
	for g := fromG; g <= c.q.G; g++ {
		if !c.broadcast(j, c.q.Members(g), FullCP{C: cp, G: g}) {
			return false
		}
		if !c.echo(j, FullCP{C: cp, G: g}) {
			return false
		}
	}
	return true
}

// broadcast sends to each recipient individually, checking for a crash
// between sends — an asynchronous crash mid-broadcast reaches an arbitrary
// prefix of the recipients, matching the paper's failure model.
func (c *Cluster) broadcast(j int, to []int, payload any) bool {
	for _, dst := range to {
		if dst == j {
			continue
		}
		if c.isCrashed(j) {
			return false
		}
		c.net.Send(j, dst, payload)
	}
	return !c.isCrashed(j)
}

func (c *Cluster) isCrashed(j int) bool {
	select {
	case <-c.crashCh[j]:
		return true
	default:
		return false
	}
}
