package view

import (
	"testing"
	"testing/quick"

	"repro/internal/group"
)

func newIx(t int) *Index { return NewIndex(group.NewLevels(t)) }

func TestIndexSlots(t *testing.T) {
	ix := newIx(8)
	// G0 + 7 groups of the binary tree over 8 processes.
	if ix.Slots() != 8 {
		t.Fatalf("slots = %d, want 8", ix.Slots())
	}
	if ix.Slot(group.G0) != 0 {
		t.Fatal("G0 must be slot 0")
	}
}

func TestInitialView(t *testing.T) {
	ix := newIx(8)
	v := New(ix, 0, 8)
	if v.WorkPoint() != 1 {
		t.Fatalf("work point = %d, want 1", v.WorkPoint())
	}
	if v.Reduced() != 0 {
		t.Fatalf("reduced = %d, want 0", v.Reduced())
	}
	// Pointer of process 0's level-1 group (all processes) must skip owner.
	slot := ix.Slot(group.GroupID{Level: 1, Index: 0})
	if v.Pointer(slot) != 1 {
		t.Fatalf("level-1 pointer = %d, want 1 (lowest excluding owner)", v.Pointer(slot))
	}
	// A group not containing the owner points at its lowest member.
	gid, _ := ix.Levels().GroupOf(7, 3)
	if p := New(ix, 0, 8).Pointer(ix.Slot(gid)); p != 6 {
		t.Fatalf("pointer into %v = %d, want 6", gid, p)
	}
}

func TestReducedView(t *testing.T) {
	ix := newIx(4)
	v := New(ix, 0, 4)
	v.AdvanceWork(1)
	v.AdvanceWork(2)
	v.MarkFaulty(3)
	if v.Reduced() != 3 {
		t.Fatalf("reduced = %d, want 2 work + 1 fault = 3", v.Reduced())
	}
	// Marking the same process twice does not double-count.
	v.MarkFaulty(3)
	if v.FaultyCount() != 1 {
		t.Fatalf("faulty count = %d, want 1", v.FaultyCount())
	}
}

func TestMergeByRecency(t *testing.T) {
	ix := newIx(4)
	a := New(ix, 0, 4)
	b := New(ix, 1, 4)
	slot := ix.Slot(group.GroupID{Level: 1, Index: 0})
	b.SetPointer(slot, 3, 10)
	b.MarkFaulty(2)
	b.AdvanceWork(9)

	a.Merge(b.Snapshot())
	if a.Pointer(slot) != 3 {
		t.Fatalf("pointer not adopted: %d", a.Pointer(slot))
	}
	if !a.Faulty(2) {
		t.Fatal("faulty set not merged")
	}
	if a.WorkPoint() != 2 {
		t.Fatalf("work point = %d, want 2", a.WorkPoint())
	}

	// Older info must not overwrite newer.
	stale := New(ix, 2, 4)
	stale.SetPointer(slot, 1, 5) // round 5 < 10
	a.Merge(stale.Snapshot())
	if a.Pointer(slot) != 3 {
		t.Fatalf("stale merge overwrote pointer: %d", a.Pointer(slot))
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	ix := newIx(4)
	v := New(ix, 0, 4)
	s := v.Snapshot()
	v.MarkFaulty(1)
	v.AdvanceWork(3)
	if s.Faulty[1] || s.Point[0] != 1 {
		t.Fatal("snapshot aliases the view")
	}
}

func TestNormalizedPointerSkipsFaulty(t *testing.T) {
	ix := newIx(8)
	v := New(ix, 0, 8)
	slot := ix.Slot(group.GroupID{Level: 1, Index: 0}) // group {0..7}
	// Pointer starts at 1; mark 1 and 2 faulty: normalization lands on 3.
	v.MarkFaulty(1)
	v.MarkFaulty(2)
	got, ok := v.NormalizedPointer(slot, 0)
	if !ok || got != 3 {
		t.Fatalf("normalized = %d,%v, want 3", got, ok)
	}
	// Everyone else faulty: not ok.
	for p := 3; p < 8; p++ {
		v.MarkFaulty(p)
	}
	if _, ok := v.NormalizedPointer(slot, 0); ok {
		t.Fatal("want not-ok when all others retired")
	}
}

func TestSuccessorWraps(t *testing.T) {
	ix := newIx(4)
	v := New(ix, 0, 4)
	gid, _ := ix.Levels().GroupOf(0, 2) // {0,1}
	slot := ix.Slot(gid)
	s, ok := v.Successor(slot, 1, 0)
	if !ok || s != 1 {
		t.Fatalf("successor of 1 in {0,1}\\{0} = %d,%v, want itself", s, ok)
	}
}

func TestMergeMonotoneProperty(t *testing.T) {
	// Merging can never decrease the reduced view.
	ix := newIx(8)
	f := func(work uint8, faults uint8, owner uint8) bool {
		v := New(ix, int(owner%8), 8)
		o := New(ix, int(owner+1)%8, 8)
		for i := 0; i < int(work%6); i++ {
			o.AdvanceWork(int64(i + 1))
		}
		for p := 0; p < 8; p++ {
			if faults&(1<<p) != 0 && p != int(owner%8) {
				o.MarkFaulty(p)
			}
		}
		before := v.Reduced()
		v.Merge(o.Snapshot())
		return v.Reduced() >= before && v.Reduced() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutativeOnReducedView(t *testing.T) {
	// Order of merging two snapshots never changes the resulting reduced
	// view (pointwise max/union are commutative).
	ix := newIx(8)
	f := func(w1, w2, f1, f2 uint8) bool {
		mkSnap := func(work int, faults uint8, owner int) Snapshot {
			v := New(ix, owner, 8)
			for i := 0; i < work%7; i++ {
				v.AdvanceWork(int64(10 + i))
			}
			for p := 0; p < 8; p++ {
				if faults&(1<<p) != 0 && p != owner {
					v.MarkFaulty(p)
				}
			}
			return v.Snapshot()
		}
		s1 := mkSnap(int(w1), f1, 1)
		s2 := mkSnap(int(w2), f2, 2)
		a := New(ix, 0, 8)
		a.Merge(s1)
		a.Merge(s2)
		b := New(ix, 0, 8)
		b.Merge(s2)
		b.Merge(s1)
		return a.Reduced() == b.Reduced() && a.WorkPoint() == b.WorkPoint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	ix := newIx(8)
	v := New(ix, 0, 8)
	o := New(ix, 1, 8)
	o.AdvanceWork(2)
	o.MarkFaulty(5)
	s := o.Snapshot()
	v.Merge(s)
	r1 := v.Reduced()
	v.Merge(s)
	if v.Reduced() != r1 {
		t.Fatalf("second merge changed reduced view: %d -> %d", r1, v.Reduced())
	}
}
