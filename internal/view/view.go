// Package view implements Protocol C's knowledge state: the set F of
// processes known to be retired, and per-group pointer/round tables tracking
// the last known report into each group of the level tree (plus the work
// pointer into G0). Views are merged pointwise by recency and compared by
// the paper's "reduced view" scalar.
package view

import (
	"fmt"

	"repro/internal/group"
)

// Index flattens the groups of a level tree (plus G0) into dense slots so
// views can be stored and copied as slices. Slot 0 is always G0.
type Index struct {
	lv    group.Levels
	ids   []group.GroupID
	spans []group.Span
	slot  map[group.GroupID]int
}

// NewIndex builds the group index for a level tree.
func NewIndex(lv group.Levels) *Index {
	ids := append([]group.GroupID{group.G0}, lv.AllGroups()...)
	ix := &Index{
		lv:    lv,
		ids:   ids,
		spans: make([]group.Span, len(ids)),
		slot:  make(map[group.GroupID]int, len(ids)),
	}
	for i, id := range ids {
		ix.slot[id] = i
		if i > 0 {
			ix.spans[i] = lv.Span(id)
		}
	}
	return ix
}

// Levels returns the underlying level tree.
func (ix *Index) Levels() group.Levels { return ix.lv }

// Slots returns the number of tracked groups including G0.
func (ix *Index) Slots() int { return len(ix.ids) }

// Slot returns the dense index of a group.
func (ix *Index) Slot(id group.GroupID) int {
	s, ok := ix.slot[id]
	if !ok {
		panic(fmt.Sprintf("view: unknown group %v", id))
	}
	return s
}

// Span returns the process span of the group in the given slot (slot > 0).
func (ix *Index) Span(slot int) group.Span { return ix.spans[slot] }

// View is one process's knowledge. The zero value is not usable; use New.
type View struct {
	ix *Index
	// faulty[p] records that p is known to be retired; faultyCount = |F|.
	faulty      []bool
	faultyCount int
	// point[s] is, for s = 0, the next unit of work to perform (the paper's
	// pointᵢ[G0]); for s > 0, the process in the group of slot s that the
	// next report into that group should go to.
	point []int
	// round[s] is the round at which the last known report recorded in
	// point[s] was sent (0 = initial).
	round []int64
}

// New builds the initial view of process owner: no known failures, work
// pointer 1, and each group pointer at the lowest-numbered member other
// than owner.
func New(ix *Index, owner, t int) *View {
	v := &View{
		ix:     ix,
		faulty: make([]bool, t),
		point:  make([]int, ix.Slots()),
		round:  make([]int64, ix.Slots()),
	}
	v.point[0] = 1
	for s := 1; s < ix.Slots(); s++ {
		span := ix.spans[s]
		first := span.Lo
		if first == owner {
			first++
		}
		if first >= span.Hi {
			first = span.Lo // singleton {owner}: pointer degenerate
		}
		v.point[s] = first
	}
	return v
}

// Clone returns an independent deep copy of the view; only the immutable
// Index is shared. Crash-recovery checkpoints of Protocol C machines rely on
// the clone being insulated from every later mutation of the original.
func (v *View) Clone() *View {
	return &View{
		ix:          v.ix,
		faulty:      append([]bool(nil), v.faulty...),
		faultyCount: v.faultyCount,
		point:       append([]int(nil), v.point...),
		round:       append([]int64(nil), v.round...),
	}
}

// Snapshot is an immutable copy of a view, carried inside ordinary messages.
type Snapshot struct {
	Faulty []bool
	Point  []int
	Round  []int64
}

// Snapshot deep-copies the view's state.
func (v *View) Snapshot() Snapshot {
	s := Snapshot{
		Faulty: make([]bool, len(v.faulty)),
		Point:  make([]int, len(v.point)),
		Round:  make([]int64, len(v.round)),
	}
	copy(s.Faulty, v.faulty)
	copy(s.Point, v.point)
	copy(s.Round, v.round)
	return s
}

// Merge folds a received snapshot into the view: failure sets union, and
// each group slot adopts the snapshot's pointer when its round is more
// recent.
func (v *View) Merge(s Snapshot) {
	for p, f := range s.Faulty {
		if f {
			v.MarkFaulty(p)
		}
	}
	for slot := range v.point {
		if slot < len(s.Round) && s.Round[slot] > v.round[slot] {
			v.round[slot] = s.Round[slot]
			v.point[slot] = s.Point[slot]
		}
	}
}

// MarkFaulty records that process p has retired.
func (v *View) MarkFaulty(p int) {
	if p >= 0 && p < len(v.faulty) && !v.faulty[p] {
		v.faulty[p] = true
		v.faultyCount++
	}
}

// Faulty reports whether p is known to be retired.
func (v *View) Faulty(p int) bool { return p >= 0 && p < len(v.faulty) && v.faulty[p] }

// FaultyCount returns |F|.
func (v *View) FaultyCount() int { return v.faultyCount }

// Reduced returns the paper's reduced view: pointᵢ[G0] − 1 + |Fᵢ|, the
// number of work units known done plus the number of known failures.
func (v *View) Reduced() int { return v.point[0] - 1 + v.faultyCount }

// WorkPoint returns the next unit of work to perform (pointᵢ[G0]).
func (v *View) WorkPoint() int { return v.point[0] }

// AdvanceWork records that unit WorkPoint() was performed at the given
// round.
func (v *View) AdvanceWork(round int64) {
	v.point[0]++
	v.round[0] = round
}

// Pointer returns the current pointer into the group at slot.
func (v *View) Pointer(slot int) int { return v.point[slot] }

// SetPointer records a report into the group at slot: the report was sent at
// round `round` and the next report should go to `next`.
func (v *View) SetPointer(slot, next int, round int64) {
	v.point[slot] = next
	v.round[slot] = round
}

// AdvancePointer moves the pointer without touching the round: used when a
// failed poll skips past a retired process (no message entered the group, so
// there is nothing new to timestamp; merged F sets let other processes skip
// the same way).
func (v *View) AdvancePointer(slot, next int) {
	v.point[slot] = next
}

// NormalizedPointer returns the first eligible target at or cyclically after
// the group pointer, skipping owner and known-retired processes. ok=false
// means every other member of the group is known retired.
func (v *View) NormalizedPointer(slot, owner int) (int, bool) {
	span := v.ix.Span(slot)
	cur := v.point[slot]
	excl := func(p int) bool { return p == owner || v.Faulty(p) }
	if cur >= span.Lo && cur < span.Hi && !excl(cur) {
		return cur, true
	}
	if cur < span.Lo || cur >= span.Hi {
		cur = span.Lo
		if !excl(cur) {
			return cur, true
		}
	}
	return group.CyclicSuccessor(span.Lo, span.Hi, cur, excl)
}

// Successor returns the cyclic successor of p within the group at slot,
// skipping owner and known-retired processes; ok=false when no eligible
// process remains.
func (v *View) Successor(slot, p, owner int) (int, bool) {
	span := v.ix.Span(slot)
	excl := func(q int) bool { return q == owner || v.Faulty(q) }
	return group.CyclicSuccessor(span.Lo, span.Hi, p, excl)
}
