package trace

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
)

// Round-trip determinism across execution planes: a run recorded on the
// live plane, replayed through the sim engine under the same configuration
// and crash schedule, must produce the identical event stream — same
// rounds, same PIDs, same labels, same order. Traces are the finest-grained
// observable the simulator exposes, so this pins plane equivalence at a
// resolution Result comparison cannot.

type roundtripCase struct {
	name  string
	n, t  int
	procs func(n, t int) (core.Procs, error)
	mkAdv func(n, t int) sim.Adversary
}

func roundtripCases() []roundtripCase {
	vec, err := explore.ParseVector("0@a4:keep:p2,1@a6:lose:m3")
	if err != nil {
		panic(err)
	}
	return []roundtripCase{
		{
			name: "B-cascade", n: 48, t: 8,
			procs: func(n, t int) (core.Procs, error) { return core.ProtocolBProcs(core.ABConfig{N: n, T: t}) },
			mkAdv: func(n, t int) sim.Adversary { return adversary.NewCascade(max(1, n/t), t-1) },
		},
		{
			name: "A-vector-midbroadcast", n: 24, t: 6,
			procs: func(n, t int) (core.Procs, error) { return core.ProtocolAProcs(core.ABConfig{N: n, T: t}) },
			mkAdv: func(n, t int) sim.Adversary { return vec.Adversary() },
		},
		{
			name: "D-random", n: 64, t: 16,
			procs: func(n, t int) (core.Procs, error) { return core.ProtocolDProcs(core.DConfig{N: n, T: t}) },
			mkAdv: func(n, t int) sim.Adversary { return adversary.NewRandom(0.05, t-1, 11) },
		},
		{
			name: "C-sleep-crash", n: 20, t: 5,
			procs: func(n, t int) (core.Procs, error) { return core.ProtocolCProcs(core.CConfig{N: n, T: t}) },
			mkAdv: func(n, t int) sim.Adversary {
				return adversary.NewSchedule(adversary.Crash{PID: t - 1, Round: 2})
			},
		},
	}
}

func recordLive(t *testing.T, c roundtripCase) *Recorder {
	t.Helper()
	pr, err := c.procs(c.n, c.t)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	if _, err := live.Run(live.Config{
		NumProcs: c.t, NumUnits: c.n, Adversary: c.mkAdv(c.n, c.t), Tracer: rec.Hook(),
	}, pr.Steppers); err != nil {
		t.Fatal(err)
	}
	return rec
}

func recordSim(t *testing.T, c roundtripCase) *Recorder {
	t.Helper()
	pr, err := c.procs(c.n, c.t)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	if _, err := core.RunProcs(c.n, c.t, pr, core.RunOptions{
		Adversary: c.mkAdv(c.n, c.t), Tracer: rec.Hook(),
	}); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestLiveTraceRoundTrip(t *testing.T) {
	for _, c := range roundtripCases() {
		t.Run(c.name, func(t *testing.T) {
			liveRec := recordLive(t, c)
			simRec := recordSim(t, c)
			if d := Diff(liveRec.Events(), simRec.Events()); d != "" {
				t.Fatalf("live trace does not replay through the sim plane: %s", d)
			}
			if len(liveRec.Events()) == 0 {
				t.Fatal("recorded no events")
			}
			// And the rendered artifacts agree too, timeline and summary.
			if liveRec.Timeline(120) != simRec.Timeline(120) {
				t.Fatal("timelines diverge")
			}
			if liveRec.Summary() != simRec.Summary() {
				t.Fatal("summaries diverge")
			}
		})
	}
}

// TestLiveTraceReplayDeterminism records the same live configuration twice
// and requires identical traces: the plane's concurrency must not leak into
// the observable event order.
func TestLiveTraceReplayDeterminism(t *testing.T) {
	for _, c := range roundtripCases() {
		t.Run(c.name, func(t *testing.T) {
			a := recordLive(t, c)
			b := recordLive(t, c)
			if d := Diff(a.Events(), b.Events()); d != "" {
				t.Fatalf("live trace not deterministic: %s", d)
			}
		})
	}
}

func TestDiff(t *testing.T) {
	ev := func(r int64, pid int) sim.Event { return sim.Event{Round: r, PID: pid} }
	if d := Diff([]sim.Event{ev(0, 1)}, []sim.Event{ev(0, 1)}); d != "" {
		t.Fatalf("equal streams diff: %s", d)
	}
	if d := Diff([]sim.Event{ev(0, 1)}, []sim.Event{ev(0, 2)}); d == "" {
		t.Fatal("divergent events not reported")
	}
	if d := Diff([]sim.Event{ev(0, 1)}, []sim.Event{ev(0, 1), ev(1, 1)}); d == "" {
		t.Fatal("length divergence not reported")
	}
	if want := "event counts diverge: 1 vs 2 (first 1 equal)"; Diff([]sim.Event{ev(0, 1)}, []sim.Event{ev(0, 1), ev(1, 1)}) != want {
		t.Fatalf("unexpected diff text %q", Diff([]sim.Event{ev(0, 1)}, []sim.Event{ev(0, 1), ev(1, 1)}))
	}
}
