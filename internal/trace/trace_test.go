package trace

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestRecorderCapturesRun(t *testing.T) {
	rec := NewRecorder(0)
	scripts, err := core.ProtocolBScripts(core.ABConfig{N: 8, T: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(8, 4, scripts, core.RunOptions{
		Adversary: adversary.NewCascade(2, 3),
		Tracer:    rec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	tl := rec.Timeline(0)
	for _, want := range []string{"p0", "p3", "W", "X", "rounds:"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
	sum := rec.Summary()
	if !strings.Contains(sum, "p0") || !strings.Contains(sum, "work") {
		t.Fatalf("summary:\n%s", sum)
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := NewRecorder(3)
	hook := rec.Hook()
	for i := 0; i < 10; i++ {
		hook(sim.Event{Round: int64(i), PID: 0, Work: 1})
	}
	if len(rec.Events()) != 3 || rec.Dropped() != 7 {
		t.Fatalf("events=%d dropped=%d", len(rec.Events()), rec.Dropped())
	}
	if !strings.Contains(rec.Timeline(0), "7 dropped") {
		t.Fatal("dropped count not reported")
	}
}

func TestTimelineSymbols(t *testing.T) {
	cases := []struct {
		e    sim.Event
		want byte
	}{
		{sim.Event{Work: 1}, 'W'},
		{sim.Event{Sent: 2}, 'S'},
		{sim.Event{Work: 1, Sent: 1}, 'B'},
		{sim.Event{Crashed: true}, 'X'},
		{sim.Event{Halted: true}, 'H'},
		{sim.Event{}, '.'},
	}
	for _, c := range cases {
		if got := symbol(c.e); got != c.want {
			t.Errorf("symbol(%+v) = %c, want %c", c.e, got, c.want)
		}
	}
}

func TestTimelineGapCompression(t *testing.T) {
	rec := NewRecorder(0)
	hook := rec.Hook()
	hook(sim.Event{Round: 0, PID: 0, Work: 1})
	hook(sim.Event{Round: 1, PID: 0, Work: 1})
	hook(sim.Event{Round: 1000, PID: 1, Work: 1})
	tl := rec.Timeline(0)
	if !strings.Contains(tl, "quiet gaps compressed") {
		t.Fatalf("gap note missing:\n%s", tl)
	}
	if !strings.Contains(tl, "0..1, 1000") {
		t.Fatalf("axis intervals wrong:\n%s", tl)
	}
}

func TestTimelineColumnLimit(t *testing.T) {
	rec := NewRecorder(0)
	hook := rec.Hook()
	for i := 0; i < 50; i++ {
		hook(sim.Event{Round: int64(i), PID: 0, Work: 1})
	}
	tl := rec.Timeline(10)
	if !strings.Contains(tl, "beyond column limit") {
		t.Fatalf("column truncation not reported:\n%s", tl)
	}
}

func TestEmptyTimeline(t *testing.T) {
	rec := NewRecorder(0)
	if got := rec.Timeline(0); got != "(no events)\n" {
		t.Fatalf("empty timeline = %q", got)
	}
}
