// Package trace records simulator events and renders them as ASCII
// timelines — one row per process, one column per active round — for
// debugging protocol executions and for the -trace mode of cmd/doall.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Recorder accumulates events from a run (bounded to avoid unbounded growth
// on exponential-time protocols).
type Recorder struct {
	limit   int
	events  []sim.Event
	dropped int
}

// NewRecorder builds a recorder keeping at most limit events (0 = a large
// default).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 100_000
	}
	return &Recorder{limit: limit}
}

// Hook returns the engine tracer callback.
func (r *Recorder) Hook() func(sim.Event) {
	return func(e sim.Event) {
		if len(r.events) >= r.limit {
			r.dropped++
			return
		}
		r.events = append(r.events, e)
	}
}

// Events returns the recorded events in order.
func (r *Recorder) Events() []sim.Event { return r.events }

// Dropped reports how many events exceeded the limit.
func (r *Recorder) Dropped() int { return r.dropped }

// symbol classifies an event for the timeline:
//
//	W work   S send   B work+send   X crash   H halt   .  idle action
func symbol(e sim.Event) byte {
	switch {
	case e.Crashed:
		return 'X'
	case e.Halted:
		return 'H'
	case e.Work > 0 && e.Sent > 0:
		return 'B'
	case e.Work > 0:
		return 'W'
	case e.Sent > 0:
		return 'S'
	default:
		return '.'
	}
}

// Timeline renders the run as one row per process over the rounds in which
// anything happened, compressing quiet gaps. maxCols bounds the width
// (0 = 120 columns).
func (r *Recorder) Timeline(maxCols int) string {
	if maxCols <= 0 {
		maxCols = 120
	}
	if len(r.events) == 0 {
		return "(no events)\n"
	}
	// Collect the distinct active rounds, in order.
	roundSet := make(map[int64]bool)
	maxPID := 0
	for _, e := range r.events {
		roundSet[e.Round] = true
		if e.PID > maxPID {
			maxPID = e.PID
		}
	}
	rounds := make([]int64, 0, len(roundSet))
	for rd := range roundSet {
		rounds = append(rounds, rd)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	if len(rounds) > maxCols {
		rounds = rounds[:maxCols]
	}
	col := make(map[int64]int, len(rounds))
	for i, rd := range rounds {
		col[rd] = i
	}

	grid := make([][]byte, maxPID+1)
	for pid := range grid {
		grid[pid] = []byte(strings.Repeat(" ", len(rounds)))
	}
	truncated := 0
	for _, e := range r.events {
		c, ok := col[e.Round]
		if !ok {
			truncated++
			continue
		}
		grid[e.PID][c] = symbol(e)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "timeline (%d active rounds%s; W work, S send, B both, X crash, H halt, . idle)\n",
		len(rounds), gapNote(rounds))
	for pid, row := range grid {
		fmt.Fprintf(&b, "p%-3d |%s|\n", pid, string(row))
	}
	b.WriteString(axis(rounds))
	if truncated > 0 || r.dropped > 0 {
		fmt.Fprintf(&b, "(%d events beyond column limit, %d dropped)\n", truncated, r.dropped)
	}
	return b.String()
}

// gapNote flags fast-forwarded gaps in the round sequence.
func gapNote(rounds []int64) string {
	for i := 1; i < len(rounds); i++ {
		if rounds[i] != rounds[i-1]+1 {
			return ", quiet gaps compressed"
		}
	}
	return ""
}

// axis lists the column rounds as compressed intervals (columns are only
// the rounds in which something happened).
func axis(rounds []int64) string {
	if len(rounds) == 0 {
		return ""
	}
	var spans []string
	start, prev := rounds[0], rounds[0]
	flush := func() {
		if start == prev {
			spans = append(spans, fmt.Sprint(start))
		} else {
			spans = append(spans, fmt.Sprintf("%d..%d", start, prev))
		}
	}
	for _, rd := range rounds[1:] {
		if rd != prev+1 {
			flush()
			start = rd
		}
		prev = rd
	}
	flush()
	return "rounds: " + strings.Join(spans, ", ") + "\n"
}

// Diff compares two event streams and returns the empty string when they
// are identical, or a description of the first divergence. The live-plane
// round-trip tests and `doall live -compare` use it to pin that a run
// recorded on one execution plane replays to the identical trace on the
// other.
func Diff(a, b []sim.Event) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("event counts diverge: %d vs %d (first %d equal)", len(a), len(b), n)
	}
	return ""
}

// Summary aggregates per-process event counts.
func (r *Recorder) Summary() string {
	type agg struct{ work, sent, acts int }
	byPID := map[int]*agg{}
	for _, e := range r.events {
		a := byPID[e.PID]
		if a == nil {
			a = &agg{}
			byPID[e.PID] = a
		}
		if e.Work > 0 {
			a.work++
		}
		a.sent += e.Sent
		a.acts++
	}
	pids := make([]int, 0, len(byPID))
	for pid := range byPID {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var b strings.Builder
	b.WriteString("proc  actions  work  sent\n")
	for _, pid := range pids {
		a := byPID[pid]
		fmt.Fprintf(&b, "p%-4d %7d  %4d  %4d\n", pid, a.acts, a.work, a.sent)
	}
	return b.String()
}
