package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(8, false)
	if s.Count() != 0 || s.Has(3) {
		t.Fatal("fresh set not empty")
	}
	s.Add(3)
	s.Add(3)
	s.Add(5)
	if s.Count() != 2 || !s.Has(3) || !s.Has(5) || s.Has(4) {
		t.Fatalf("after adds: %v", s.Members())
	}
	s.Remove(3)
	s.Remove(3)
	if s.Count() != 1 || s.Has(3) {
		t.Fatal("remove broken")
	}
	full := New(4, true)
	if full.Count() != 4 {
		t.Fatal("full set wrong")
	}
}

func TestMembersAndRank(t *testing.T) {
	s := New(8, false)
	for _, x := range []int{6, 1, 4} {
		s.Add(x)
	}
	m := s.Members()
	if len(m) != 3 || m[0] != 1 || m[1] != 4 || m[2] != 6 {
		t.Fatalf("members = %v", m)
	}
	if s.RankOf(1) != 0 || s.RankOf(4) != 1 || s.RankOf(6) != 2 || s.RankOf(7) != 3 {
		t.Fatal("ranks wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(4, true)
	c := s.Clone()
	c.Remove(0)
	if !s.Has(0) || c.Has(0) {
		t.Fatal("clone aliases")
	}
	if !s.Equal(s.Clone()) || s.Equal(c) {
		t.Fatal("equal wrong")
	}
}

func TestSnapshotAndFrom(t *testing.T) {
	s := New(5, false)
	s.Add(2)
	s.Add(4)
	r := From(s.Snapshot(), 5)
	if !r.Equal(s) {
		t.Fatal("roundtrip broken")
	}
	// Snapshot is a copy.
	snap := s.Snapshot()
	s.Add(0)
	if snap[0]&1 != 0 {
		t.Fatal("snapshot aliases")
	}
	// From masks bits beyond the domain size.
	masked := From([]uint64{^uint64(0)}, 5)
	if masked.Count() != 5 || masked.Has(5) {
		t.Fatalf("from mask = %v", masked.Members())
	}
}

func TestIntersectUnion(t *testing.T) {
	a := New(6, false)
	for _, x := range []int{1, 2, 3} {
		a.Add(x)
	}
	b := New(6, false)
	for _, x := range []int{2, 3, 4} {
		b.Add(x)
	}
	i := a.Clone()
	i.Intersect(b.Snapshot())
	if len(i.Members()) != 2 || !i.Has(2) || !i.Has(3) {
		t.Fatalf("intersect = %v", i.Members())
	}
	u := a.Clone()
	u.Union(b.Snapshot())
	if u.Count() != 4 {
		t.Fatalf("union = %v", u.Members())
	}
	// Subtraction is intersection with the complement.
	d := a.Clone()
	d.Subtract(b.Snapshot())
	if d.Count() != 1 || !d.Has(1) {
		t.Fatalf("subtract = %v", d.Members())
	}
}

func TestRankAcrossWords(t *testing.T) {
	s := New(200, false)
	for _, x := range []int{0, 63, 64, 130, 199} {
		s.Add(x)
	}
	want := map[int]int{0: 0, 1: 1, 63: 1, 64: 2, 65: 3, 130: 3, 131: 4, 199: 4, 200: 5}
	for i, r := range want {
		if got := s.RankOf(i); got != r {
			t.Fatalf("RankOf(%d) = %d, want %d", i, got, r)
		}
	}
}

func TestSetLawsProperty(t *testing.T) {
	// Intersection is a lower bound, union an upper bound, counts agree
	// with membership.
	f := func(aBits, bBits uint16) bool {
		a, b := fromMask(aBits), fromMask(bBits)
		i := a.Clone()
		i.Intersect(b.Snapshot())
		u := a.Clone()
		u.Union(b.Snapshot())
		for x := 0; x < 16; x++ {
			if i.Has(x) != (a.Has(x) && b.Has(x)) {
				return false
			}
			if u.Has(x) != (a.Has(x) || b.Has(x)) {
				return false
			}
		}
		d := a.Clone()
		d.Subtract(b.Snapshot())
		for x := 0; x < 16; x++ {
			if d.Has(x) != (a.Has(x) && !b.Has(x)) {
				return false
			}
		}
		return i.Count() == len(i.Members()) && u.Count() == len(u.Members()) &&
			d.Count() == len(d.Members())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fromMask(m uint16) *Set {
	s := New(16, false)
	for x := 0; x < 16; x++ {
		if m&(1<<x) != 0 {
			s.Add(x)
		}
	}
	return s
}
