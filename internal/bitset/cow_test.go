package bitset

import (
	"reflect"
	"testing"
)

// TestSharedFreezesView pins copy-on-write: mutations after Shared must not
// be visible through the published words, for every mutating operation.
func TestSharedFreezesView(t *testing.T) {
	muts := map[string]func(s *Set){
		"Add":       func(s *Set) { s.Add(9) },
		"Remove":    func(s *Set) { s.Remove(2) },
		"Intersect": func(s *Set) { s.Intersect([]uint64{0b100}) },
		"Union":     func(s *Set) { s.Union([]uint64{0b1000000}) },
		"Subtract":  func(s *Set) { s.Subtract([]uint64{0b100}) },
		"Clear":     func(s *Set) { s.Clear() },
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			s := New(70, false)
			for _, i := range []int{2, 5, 64} {
				s.Add(i)
			}
			view := s.Shared()
			frozen := make([]uint64, len(view))
			copy(frozen, view)
			mut(s)
			if !reflect.DeepEqual(view, frozen) {
				t.Fatalf("shared view mutated by %s: %v != %v", name, view, frozen)
			}
		})
	}
}

// TestSharedNoCopyWithoutMutation verifies repeated Shared calls between
// mutations hand out the same words (the whole point of the COW snapshot).
func TestSharedNoCopyWithoutMutation(t *testing.T) {
	s := New(100, true)
	a, b := s.Shared(), s.Shared()
	if &a[0] != &b[0] {
		t.Fatal("Shared allocated a copy without an intervening mutation")
	}
}

func TestAdoptShared(t *testing.T) {
	src := New(70, false)
	src.Add(3)
	src.Add(66)
	view := src.Shared()

	dst := New(70, true)
	dst.AdoptShared(view)
	if dst.Count() != 2 || !dst.Has(3) || !dst.Has(66) {
		t.Fatalf("adopted set wrong: count=%d", dst.Count())
	}
	// Adoption is zero-copy when the layout matches...
	if &dst.Words()[0] != &view[0] {
		t.Fatal("AdoptShared copied despite matching layout")
	}
	// ...and the next mutation of either side leaves the other frozen.
	dst.Add(5)
	if src.Has(5) || src.Count() != 2 {
		t.Fatal("mutating the adopter leaked into the source")
	}
	src.Remove(3)
	if !dst.Has(3) {
		t.Fatal("mutating the source leaked into the adopter")
	}

	// Mismatched word counts fall back to a masked copy.
	short := New(70, false)
	short.AdoptShared([]uint64{0b110})
	if short.Count() != 2 || !short.Has(1) || !short.Has(2) {
		t.Fatalf("short adoption wrong: %v", short.Members())
	}

	// Dirty padding bits force the copy path and are masked off.
	dirty := New(3, false)
	dirty.AdoptShared([]uint64{0xFF})
	if dirty.Count() != 3 {
		t.Fatalf("dirty adoption count = %d, want 3", dirty.Count())
	}
}

func TestCopyFromAndClear(t *testing.T) {
	a := New(40, false)
	a.Add(1)
	a.Add(39)
	b := New(40, true)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom not equal")
	}
	b.Add(7)
	if a.Has(7) {
		t.Fatal("CopyFrom aliased the source")
	}
	// CopyFrom into a set whose words are published must not corrupt the
	// published view.
	view := b.Shared()
	frozen := make([]uint64, len(view))
	copy(frozen, view)
	b.CopyFrom(a)
	if !reflect.DeepEqual(view, frozen) {
		t.Fatal("CopyFrom wrote through a shared view")
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear left members")
	}
}

func TestAppendMembersAndForEach(t *testing.T) {
	s := New(130, false)
	want := []int{0, 63, 64, 100, 129}
	for _, i := range want {
		s.Add(i)
	}
	scratch := make([]int, 0, 8)
	got := s.AppendMembers(scratch[:0])
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendMembers = %v, want %v", got, want)
	}
	var walked []int
	s.ForEach(func(i int) { walked = append(walked, i) })
	if !reflect.DeepEqual(walked, want) {
		t.Fatalf("ForEach = %v, want %v", walked, want)
	}
}
