package bitset

import (
	"testing"
)

// Fuzzing the copy-on-write snapshot machinery: arbitrary interleavings of
// mutators with Shared / AdoptShared / CopyFrom across two sets, checked
// against a plain-copy oracle. Two invariants are enforced after every
// operation:
//
//  1. each set's contents equal its oracle's (membership, count, members
//     order);
//  2. every previously published shared view is frozen: the words a holder
//     received keep the exact values they had at publish time, no matter
//     how either set mutates afterwards.

const fuzzDomain = 77 // deliberately not a multiple of 64: padding bits exist

// oracle is the reference implementation: a plain bool slice, copied
// eagerly where Set copies lazily.
type oracle []bool

func (o oracle) count() int {
	n := 0
	for _, b := range o {
		if b {
			n++
		}
	}
	return n
}

func (o oracle) words() []uint64 {
	w := make([]uint64, (len(o)+63)/64)
	for i, b := range o {
		if b {
			w[i>>6] |= 1 << (i & 63)
		}
	}
	return w
}

type frozenView struct {
	view []uint64 // what the holder received
	want []uint64 // its contents at publish time
}

func checkFrozen(t *testing.T, views []frozenView, step int) {
	t.Helper()
	for vi, fv := range views {
		for i := range fv.want {
			if fv.view[i] != fv.want[i] {
				t.Fatalf("step %d: published view %d mutated: word %d = %#x, frozen %#x",
					step, vi, i, fv.view[i], fv.want[i])
			}
		}
	}
}

func checkMatches(t *testing.T, s *Set, o oracle, step int, name string) {
	t.Helper()
	if s.Count() != o.count() {
		t.Fatalf("step %d: %s.Count() = %d, oracle %d", step, name, s.Count(), o.count())
	}
	for i := 0; i < fuzzDomain; i++ {
		if s.Has(i) != o[i] {
			t.Fatalf("step %d: %s.Has(%d) = %v, oracle %v", step, name, i, s.Has(i), o[i])
		}
	}
	want := o.words()
	for i, w := range s.Words() {
		if w != want[i] {
			t.Fatalf("step %d: %s word %d = %#x, oracle %#x (padding corruption?)",
				step, name, i, w, want[i])
		}
	}
}

func FuzzCOWSnapshots(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 3, 0, 0, 5, 1, 5})                      // add, share, remove the shared bit
	f.Add([]byte{0, 76, 3, 0, 4, 0, 1, 76, 2, 0})              // boundary bit, share, adopt, remove, clear
	f.Add([]byte{0, 1, 128 + 0, 2, 5, 0, 128 + 3, 0, 6, 0})    // both sets, cross copy
	f.Add([]byte{0, 10, 3, 0, 128 + 4, 0, 128 + 0, 11, 5, 10}) // share A, adopt into B, diverge
	f.Add([]byte{7, 0, 3, 0, 6, 0, 0, 1, 128 + 6, 0})          // adopt-then-copy interleavings

	f.Fuzz(func(t *testing.T, data []byte) {
		sets := [2]*Set{New(fuzzDomain, false), New(fuzzDomain, false)}
		oracles := [2]oracle{make(oracle, fuzzDomain), make(oracle, fuzzDomain)}
		var views []frozenView

		for step := 0; step+1 < len(data); step += 2 {
			op, arg := data[step], int(data[step+1])
			si := 0
			if op >= 128 {
				si, op = 1, op-128
			}
			s, o := sets[si], oracles[si]
			other, otherO := sets[1-si], oracles[1-si]
			switch op % 8 {
			case 0:
				s.Add(arg % fuzzDomain)
				o[arg%fuzzDomain] = true
			case 1:
				s.Remove(arg % fuzzDomain)
				o[arg%fuzzDomain] = false
			case 2:
				s.Clear()
				for i := range o {
					o[i] = false
				}
			case 3:
				// Publish a shared view and remember its frozen contents.
				v := s.Shared()
				views = append(views, frozenView{view: v, want: append([]uint64(nil), v...)})
			case 4:
				// Adopt the other set's shared view: both sets now reference
				// the same words, COW-protected on both sides.
				s.AdoptShared(other.Shared())
				copy(o, otherO)
			case 5:
				// Adopt raw words with dirty padding bits: the masked-copy
				// fallback path.
				w := o.words()
				if len(w) > 0 {
					pad := uint(fuzzDomain % 64)
					w[len(w)-1] |= ^uint64(0) << pad
					w[0] |= uint64(arg)
				}
				s.AdoptShared(w)
				for i := 0; i < 64 && i < fuzzDomain; i++ {
					if uint64(arg)>>(i&63)&1 == 1 {
						o[i] = true
					}
				}
			case 6:
				s.CopyFrom(other)
				copy(o, otherO)
			case 7:
				// Adopt a short view (length mismatch): fallback copy, bits
				// beyond the words cleared.
				s.AdoptShared([]uint64{uint64(arg)})
				for i := range o {
					o[i] = i < 64 && uint64(arg)>>(i&63)&1 == 1
				}
			}
			checkMatches(t, sets[0], oracles[0], step, "A")
			checkMatches(t, sets[1], oracles[1], step, "B")
			checkFrozen(t, views, step)
		}
	})
}
