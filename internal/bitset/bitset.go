// Package bitset provides the small dense integer sets used by Protocol D
// and the dynamic-work variant for their S (outstanding units) and T (live
// processes) sets. Sets are stored as 64-bit words so the hot merge
// operations of the agreement phases (intersection, union, subtraction over
// views received from every peer) cost O(size/64) word operations instead of
// O(size) boolean loads.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a dense set over 0..size-1.
//
// Sets support copy-on-write snapshots: Shared hands out the backing words
// as an immutable view (for embedding in broadcast payloads without the per
// -broadcast copy Snapshot makes), and the next mutating operation copies
// the words first, so every previously published view stays frozen.
type Set struct {
	words []uint64
	size  int
	count int
	// shared marks the words as published (via Shared or AdoptShared):
	// mutators must copy before writing.
	shared bool
}

func wordsFor(size int) int { return (size + 63) / 64 }

// lastMask returns the valid-bit mask of the final word.
func lastMask(size int) uint64 {
	if r := size & 63; r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// New builds a set over 0..size-1, optionally full.
func New(size int, full bool) *Set {
	s := &Set{words: make([]uint64, wordsFor(size)), size: size}
	if full && size > 0 {
		for i := range s.words {
			s.words[i] = ^uint64(0)
		}
		s.words[len(s.words)-1] = lastMask(size)
		s.count = size
	}
	return s
}

// From builds a set over 0..size-1 from raw words (the wire form produced by
// Snapshot). Bits beyond size are ignored.
func From(words []uint64, size int) *Set {
	s := &Set{words: make([]uint64, wordsFor(size)), size: size}
	copy(s.words, words)
	if len(s.words) > 0 {
		s.words[len(s.words)-1] &= lastMask(size)
	}
	s.recount()
	return s
}

func (s *Set) recount() {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	s.count = c
}

// own makes the words writable, copying them first if they were published
// as a shared snapshot.
func (s *Set) own() {
	if s.shared {
		w := make([]uint64, len(s.words))
		copy(w, s.words)
		s.words = w
		s.shared = false
	}
}

// Has reports membership.
func (s *Set) Has(i int) bool {
	return i >= 0 && i < s.size && s.words[i>>6]&(uint64(1)<<(i&63)) != 0
}

// Add inserts i. Out-of-domain indices panic (word packing would otherwise
// corrupt padding bits silently, where the old []bool layout trapped).
func (s *Set) Add(i int) {
	s.check(i)
	w, b := i>>6, uint64(1)<<(i&63)
	if s.words[w]&b == 0 {
		s.own()
		s.words[w] |= b
		s.count++
	}
}

// Remove deletes i. Out-of-domain indices panic.
func (s *Set) Remove(i int) {
	s.check(i)
	w, b := i>>6, uint64(1)<<(i&63)
	if s.words[w]&b != 0 {
		s.own()
		s.words[w] &^= b
		s.count--
	}
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.size {
		panic(fmt.Sprintf("bitset: index %d out of domain [0,%d)", i, s.size))
	}
}

// Clone copies the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), size: s.size, count: s.count}
	copy(c.words, s.words)
	return c
}

// Snapshot returns a copy of the raw words for embedding in messages.
func (s *Set) Snapshot() []uint64 {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return w
}

// Shared returns the raw words as an immutable shared snapshot, suitable for
// embedding in messages without copying: the set's next mutation copies the
// words first (copy-on-write), so holders of the returned slice observe a
// frozen view. Holders must never write to it.
func (s *Set) Shared() []uint64 {
	s.shared = true
	return s.words
}

// AdoptShared repoints the set at words received from the wire (a peer's
// Shared or Snapshot view), without copying when the layout matches. The
// adopted words are treated as a shared snapshot — the next mutation copies
// — so the peers holding the same view are unaffected. Mismatched lengths or
// dirty padding bits fall back to a masked copy, like From.
func (s *Set) AdoptShared(words []uint64) {
	need := wordsFor(s.size)
	if len(words) == need && (need == 0 || words[need-1]&^lastMask(s.size) == 0) {
		s.words = words
		s.shared = true
		s.recount()
		return
	}
	if s.shared || len(s.words) != need {
		s.words = make([]uint64, need)
		s.shared = false
	} else {
		clear(s.words)
	}
	copy(s.words, words)
	if need > 0 {
		s.words[need-1] &= lastMask(s.size)
	}
	s.recount()
}

// CopyFrom makes the set an exact copy of o (same domain size required),
// reusing the backing words unless they are shared.
func (s *Set) CopyFrom(o *Set) {
	if s.size != o.size {
		panic(fmt.Sprintf("bitset: CopyFrom domain mismatch: %d != %d", s.size, o.size))
	}
	if s.shared || len(s.words) != len(o.words) {
		s.words = make([]uint64, len(o.words))
		s.shared = false
	}
	copy(s.words, o.words)
	s.count = o.count
}

// Clear empties the set, keeping the domain.
func (s *Set) Clear() {
	if s.shared {
		s.words = make([]uint64, wordsFor(s.size))
		s.shared = false
	} else {
		clear(s.words)
	}
	s.count = 0
}

// Words returns the set's backing words without copying. Callers must treat
// the slice as read-only.
func (s *Set) Words() []uint64 { return s.words }

// Size returns the domain size (the set ranges over 0..Size()-1).
func (s *Set) Size() int { return s.size }

// Members lists the elements in increasing order.
func (s *Set) Members() []int {
	return s.AppendMembers(make([]int, 0, s.count))
}

// AppendMembers appends the elements in increasing order to dst, returning
// the extended slice — the allocation-free Members for callers with a
// scratch buffer.
func (s *Set) AppendMembers(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			dst = append(dst, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// ForEach visits the elements in increasing order. The set must not be
// mutated during the visit.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// RankOf returns the paper's grade: the number of members less than i.
func (s *Set) RankOf(i int) int {
	if i <= 0 {
		return 0
	}
	if i > s.size {
		i = s.size
	}
	r := 0
	for wi := 0; wi < i>>6; wi++ {
		r += bits.OnesCount64(s.words[wi])
	}
	if rem := i & 63; rem != 0 {
		r += bits.OnesCount64(s.words[i>>6] & ((uint64(1) << rem) - 1))
	}
	return r
}

// Intersect removes every element absent from other (the paper's S ∩ Sᵢ).
// Words beyond len(other) are treated as empty.
func (s *Set) Intersect(other []uint64) {
	s.own()
	for i := range s.words {
		if i < len(other) {
			s.words[i] &= other[i]
		} else {
			s.words[i] = 0
		}
	}
	s.recount()
}

// Union adds every element of other (the paper's T ∪ Tᵢ); bits beyond the
// set's size are ignored.
func (s *Set) Union(other []uint64) {
	s.own()
	n := min(len(other), len(s.words))
	for i := 0; i < n; i++ {
		s.words[i] |= other[i]
	}
	if len(s.words) > 0 {
		s.words[len(s.words)-1] &= lastMask(s.size)
	}
	s.recount()
}

// Subtract removes every element present in other (set difference).
func (s *Set) Subtract(other []uint64) {
	s.own()
	n := min(len(other), len(s.words))
	for i := 0; i < n; i++ {
		s.words[i] &^= other[i]
	}
	s.recount()
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool {
	if s.count != o.count || s.size != o.size {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s *Set) Count() int { return s.count }
