// Package bitset provides the small dense integer sets used by Protocol D
// and the dynamic-work variant for their S (outstanding units) and T (live
// processes) sets.
package bitset

// Set is a dense set over 0..size-1.
type Set struct {
	bits  []bool
	count int
}

// New builds a set over 0..size-1, optionally full.
func New(size int, full bool) *Set {
	s := &Set{bits: make([]bool, size)}
	if full {
		for i := range s.bits {
			s.bits[i] = true
		}
		s.count = size
	}
	return s
}

// From builds a set from raw bits.
func From(bits []bool) *Set {
	s := &Set{bits: make([]bool, len(bits))}
	copy(s.bits, bits)
	for _, b := range s.bits {
		if b {
			s.count++
		}
	}
	return s
}

// Has reports membership.
func (s *Set) Has(i int) bool { return i >= 0 && i < len(s.bits) && s.bits[i] }

// Add inserts i.
func (s *Set) Add(i int) {
	if !s.bits[i] {
		s.bits[i] = true
		s.count++
	}
}

// Remove deletes i.
func (s *Set) Remove(i int) {
	if s.bits[i] {
		s.bits[i] = false
		s.count--
	}
}

// Clone copies the set.
func (s *Set) Clone() *Set {
	c := &Set{bits: make([]bool, len(s.bits)), count: s.count}
	copy(c.bits, s.bits)
	return c
}

// Snapshot returns a copy of the raw bits for embedding in messages.
func (s *Set) Snapshot() []bool {
	b := make([]bool, len(s.bits))
	copy(b, s.bits)
	return b
}

// Members lists the elements in increasing order.
func (s *Set) Members() []int {
	m := make([]int, 0, s.count)
	for i, b := range s.bits {
		if b {
			m = append(m, i)
		}
	}
	return m
}

// RankOf returns the paper's grade: the number of members less than i.
func (s *Set) RankOf(i int) int {
	r := 0
	for k := 0; k < i && k < len(s.bits); k++ {
		if s.bits[k] {
			r++
		}
	}
	return r
}

// Intersect removes every element absent from other (the paper's S ∩ Sᵢ).
func (s *Set) Intersect(other []bool) {
	for i := range s.bits {
		if s.bits[i] && (i >= len(other) || !other[i]) {
			s.bits[i] = false
			s.count--
		}
	}
}

// Union adds every element of other (the paper's T ∪ Tᵢ).
func (s *Set) Union(other []bool) {
	for i, b := range other {
		if b && i < len(s.bits) {
			s.Add(i)
		}
	}
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool {
	if s.count != o.count {
		return false
	}
	for i := range s.bits {
		if s.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s *Set) Count() int { return s.count }
