package agreement

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
)

// TestAgreementCValuePiggybackScenario builds the §5 situation that makes
// Protocol C's value-carrying checkpoints load-bearing: the general reaches
// only sender 0, sender 0 informs a few processes and crashes, and the
// taker — which never received a direct ValueMsg inform — must have learned
// the value from sender 0's ordinary (checkpoint) messages to continue with
// the same value. Without the piggyback the taker would spread its default
// value and split the decisions.
func TestAgreementCValuePiggybackScenario(t *testing.T) {
	n, f := 12, 3
	adv := adversary.NewChain(
		// The general's stage-1 broadcast reaches nobody (senders 1..3 stay
		// at value 0 until C's traffic reaches them).
		adversary.NewSchedule(adversary.Crash{PID: 0, AtAction: 5, KeepWork: true}),
	)
	// Process 0 is both general and first active sender: its 1st action is
	// the stage-1 broadcast (suppressed? no — AtAction 5 lets it through).
	// Actions 2..4 are C's fault-detection polls and the first work; the
	// 5th kills it mid-run.
	out, err := Run(Config{N: n, F: f, Value: 9, Protocol: UseC},
		core.RunOptions{Adversary: adv, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := out.Agreement()
	if err != nil {
		t.Fatal(err)
	}
	// The general survived long enough to send stage 1, so at least one
	// sender knows 9; whichever value won, agreement must hold — and since
	// stage 1 was delivered, validity requires 9.
	if v != 9 {
		t.Fatalf("decided %d, want 9", v)
	}
}

func TestAgreementCSenderCascade(t *testing.T) {
	// Senders crash in sequence mid-informing; C's most-knowledgeable
	// takeover plus piggybacked values must keep all decisions equal.
	n, f := 10, 3
	out, err := Run(Config{N: n, F: f, Value: 4, Protocol: UseC},
		core.RunOptions{Adversary: adversary.NewCascade(2, f), MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := out.Agreement()
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("decided %d, want 4 (general survived stage 1)", v)
	}
}

func TestAgreementCrashEverySenderActionSweep(t *testing.T) {
	// Single-crash sweep over the early actions of every sender, for A and
	// B: agreement must hold at every crash position.
	for _, proto := range []WorkProtocol{UseA, UseB} {
		for victim := 0; victim <= 3; victim++ {
			for at := 1; at <= 8; at++ {
				adv := adversary.NewSchedule(adversary.Crash{
					PID: victim, AtAction: at, KeepWork: at%2 == 0,
				})
				out, err := Run(Config{N: 10, F: 3, Value: 1, Protocol: proto},
					core.RunOptions{Adversary: adv, MaxActive: 1})
				if err != nil {
					t.Fatalf("%v victim=%d at=%d: %v", proto, victim, at, err)
				}
				if _, err := out.Agreement(); err != nil {
					t.Fatalf("%v victim=%d at=%d: %v", proto, victim, at, err)
				}
			}
		}
	}
}

func TestAgreementDecisionsShape(t *testing.T) {
	out, err := Run(Config{N: 8, F: 2, Value: 3, Protocol: UseB}, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Decisions) != 8 {
		t.Fatalf("decisions = %d entries", len(out.Decisions))
	}
	if out.Result.Survivors != 8 {
		t.Fatalf("survivors = %d", out.Result.Survivors)
	}
}
