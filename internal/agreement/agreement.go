// Package agreement implements the paper's §5 application: Byzantine
// agreement for crash failures built on the work protocols. The general
// (process 0) broadcasts its value to the f+1 senders; the senders then
// perform the "work" of informing all n processes, where performing unit u
// means sending the general's value to process u−1. Every process decides
// its current value at a predetermined round by which the work protocol has
// provably terminated.
//
// Using Protocol B this yields O(n + t√t) messages and O(n) rounds — the
// bound of Bracha's nonconstructive protocol, made constructive. Using
// Protocol C it yields O(n + t log t) messages at exponential time.
package agreement

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// WorkProtocol selects which work protocol the senders run.
type WorkProtocol int

const (
	// UseA runs Protocol A.
	UseA WorkProtocol = iota + 1
	// UseB runs Protocol B.
	UseB
	// UseC runs Protocol C with value piggybacking on ordinary messages.
	UseC
)

// String implements fmt.Stringer.
func (w WorkProtocol) String() string {
	switch w {
	case UseA:
		return "A"
	case UseB:
		return "B"
	case UseC:
		return "C"
	default:
		return fmt.Sprintf("WorkProtocol(%d)", int(w))
	}
}

// ValueMsg informs a process of the general's value: both the general's
// initial broadcast to the senders and the per-unit informs.
type ValueMsg struct {
	V int
}

// Kind implements sim.Kinder.
func (ValueMsg) Kind() string { return "value" }

// Config parameterises an agreement instance.
type Config struct {
	// N is the number of processes; unit u informs process u-1.
	N int
	// F bounds the number of crash failures; processes 0..F are the
	// senders (F+1 of them, so at least one survives).
	F int
	// Value is the general's input value. Processes start with value 0, so
	// a general that crashes before informing anyone yields decision 0.
	Value int
	// Protocol selects the work protocol (default UseB).
	Protocol WorkProtocol
}

// Outcome reports the decisions of an agreement run.
type Outcome struct {
	// Decisions[i] is process i's decided value; -1 if it crashed before
	// deciding.
	Decisions []int
	// Result carries the run's cost metrics.
	Result sim.Result
}

// Agreement verifies the agreement property: every decided value is the
// same. It returns the common value.
func (o Outcome) Agreement() (int, error) {
	v, seen := 0, false
	for pid, d := range o.Decisions {
		if d < 0 {
			continue
		}
		if seen && d != v {
			return 0, fmt.Errorf("agreement violated: process %d decided %d, others %d", pid, d, v)
		}
		v, seen = d, true
	}
	return v, nil
}

// Run executes one agreement instance under the given failure adversary.
func Run(cfg Config, opt core.RunOptions) (Outcome, error) {
	if cfg.N <= 0 {
		return Outcome{}, fmt.Errorf("agreement: n = %d", cfg.N)
	}
	if cfg.F < 0 || cfg.F >= cfg.N {
		return Outcome{}, fmt.Errorf("agreement: f = %d out of range [0,%d)", cfg.F, cfg.N)
	}
	proto := cfg.Protocol
	if proto == 0 {
		proto = UseB
	}
	senders := cfg.F + 1
	decisions := make([]int, cfg.N)
	values := make([]int, cfg.N)
	for i := range decisions {
		decisions[i] = -1
	}
	// Stage 1 occupies round 0; the work protocol starts at round 1.
	var tEnd int64
	switch proto {
	case UseA:
		tEnd = 1 + core.ProtocolARoundBound(cfg.N, senders)
	case UseB:
		tEnd = 1 + core.ProtocolBRoundBound(cfg.N, senders)
	case UseC:
		tEnd = satAdd64(1, core.ProtocolCRoundBound(cfg.N, senders, 1))
	default:
		return Outcome{}, fmt.Errorf("agreement: unknown protocol %v", proto)
	}

	workers := make([]int, senders)
	for i := range workers {
		workers[i] = i
	}
	scripts := func(id int) sim.Script {
		return func(p *sim.Proc) {
			adopt := func(m sim.Message) {
				switch pl := m.Payload.(type) {
				case ValueMsg:
					values[id] = pl.V
				case core.COrdinary:
					if v, ok := pl.Value.(int); ok {
						values[id] = v
					}
				}
			}
			p.SetTap(adopt)
			if id == 0 {
				// The general: stage 1 broadcast to the other senders (one
				// record on the engine's message plane).
				values[0] = cfg.Value
				rcpts := make([]int, 0, senders-1)
				for s := 1; s < senders; s++ {
					rcpts = append(rcpts, s)
				}
				p.StepBroadcast(rcpts, ValueMsg{V: cfg.Value})
			}
			if id < senders {
				runWork(p, cfg, proto, workers, values, id)
				decisions[id] = values[id]
				return
			}
			// Non-senders wait for the decision round, adopting values as
			// informs arrive (via the tap).
			for p.Now() < tEnd {
				p.WaitUntil(tEnd)
			}
			decisions[id] = values[id]
		}
	}
	res, err := core.Run(cfg.N, cfg.N, scripts, opt)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Decisions: decisions, Result: res}, nil
}

// runWork runs the chosen work protocol among the senders; performing unit
// u sends the sender's current value to process u-1 in the same round.
func runWork(p *sim.Proc, cfg Config, proto WorkProtocol, workers []int, values []int, pos int) {
	exec := func(pp *sim.Proc, unit int) {
		pp.StepWorkSend(unit, sim.Send{To: unit - 1, Payload: ValueMsg{V: values[pp.ID()]}})
	}
	switch proto {
	case UseA:
		abCfg := core.ABConfig{
			N: cfg.N, T: len(workers),
			Assign:     core.Assignment{Workers: workers},
			StartRound: 1,
			Exec:       exec,
		}
		_ = core.RunProtocolA(p, abCfg, pos)
	case UseB:
		abCfg := core.ABConfig{
			N: cfg.N, T: len(workers),
			Assign:     core.Assignment{Workers: workers},
			StartRound: 1,
			Exec:       exec,
		}
		_ = core.RunProtocolB(p, abCfg, pos)
	case UseC:
		cCfg := core.CConfig{
			N: cfg.N, T: len(workers),
			Assign:     core.Assignment{Workers: workers},
			StartRound: 1,
			Exec:       exec,
			// §5: Protocol C's checkpointing messages carry the value.
			PiggybackSend: func() any { return values[p.ID()] },
		}
		_ = core.RunProtocolC(p, cCfg, pos)
	}
}

func satAdd64(a, b int64) int64 {
	if a > sim.Forever-b {
		return sim.Forever
	}
	return a + b
}
