package agreement

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

func runAgreement(t *testing.T, cfg Config, adv sim.Adversary) Outcome {
	t.Helper()
	out, err := Run(cfg, core.RunOptions{Adversary: adv, MaxActive: 1, DetailedMetrics: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := out.Agreement(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAgreementFailureFreeValidity(t *testing.T) {
	for _, proto := range []WorkProtocol{UseA, UseB, UseC} {
		n, f := 12, 3
		if proto == UseC {
			n, f = 10, 3 // keep n+t small: C's decision round is exponential
		}
		out := runAgreement(t, Config{N: n, F: f, Value: 7, Protocol: proto}, nil)
		for pid, d := range out.Decisions {
			if d != 7 {
				t.Fatalf("%v: process %d decided %d, want the general's 7", proto, pid, d)
			}
		}
	}
}

func TestAgreementGeneralCrashesMidBroadcast(t *testing.T) {
	// The general reaches only a subset of senders in stage 1; agreement
	// must still hold (validity is vacuous: the general is faulty).
	for _, proto := range []WorkProtocol{UseA, UseB, UseC} {
		n, f := 10, 3
		for prefix := 0; prefix <= 3; prefix++ {
			adv := adversary.NewSchedule(adversary.Crash{
				PID: 0, AtAction: 1,
				Deliver: prefixMask(3, prefix),
			})
			out := runAgreement(t, Config{N: n, F: f, Value: 1, Protocol: proto}, adv)
			v, _ := out.Agreement()
			if v != 0 && v != 1 {
				t.Fatalf("%v prefix=%d: decided %d", proto, prefix, v)
			}
			if out.Decisions[0] != -1 {
				t.Fatalf("crashed general decided %d", out.Decisions[0])
			}
		}
	}
}

func prefixMask(n, k int) []bool {
	m := make([]bool, n)
	for i := 0; i < k && i < n; i++ {
		m[i] = true
	}
	return m
}

func TestAgreementSenderCascade(t *testing.T) {
	// Senders crash one after another mid-work; the survivors must still
	// drive every process to the same decision.
	for _, proto := range []WorkProtocol{UseA, UseB} {
		n, f := 16, 4
		adv := adversary.NewCascade(3, f)
		out := runAgreement(t, Config{N: n, F: f, Value: 5, Protocol: proto}, adv)
		v, _ := out.Agreement()
		if v != 5 {
			// The general survived stage 1 (cascade crashes after 3 work
			// units), so validity must hold.
			t.Fatalf("%v: decided %d, want 5", proto, v)
		}
	}
}

func TestAgreementRandomSweep(t *testing.T) {
	for _, proto := range []WorkProtocol{UseA, UseB} {
		for seed := int64(0); seed < 10; seed++ {
			runAgreement(t, Config{N: 14, F: 4, Value: 2, Protocol: proto},
				adversary.NewRandom(0.02, 4, seed))
		}
	}
}

func TestAgreementMessageBounds(t *testing.T) {
	// §5: via B the message count is O(n + t√t); via C it is O(n + t log t).
	n, f := 24, 3
	outB := runAgreement(t, Config{N: n, F: f, Value: 1, Protocol: UseB}, nil)
	tSenders := float64(f + 1)
	boundB := float64(n) + 1 + tSenders + 10*tSenders*math.Sqrt(tSenders)
	if float64(outB.Result.Messages) > boundB {
		t.Fatalf("B: messages = %d > %v", outB.Result.Messages, boundB)
	}
	outC := runAgreement(t, Config{N: 16, F: 3, Value: 1, Protocol: UseC}, nil)
	// n informs + general's broadcast + C overhead 8t log t + decision-time
	// slack.
	boundC := int64(16 + 4 + 8*4*2 + 16)
	if outC.Result.Messages > boundC {
		t.Fatalf("C: messages = %d > %d", outC.Result.Messages, boundC)
	}
}

func TestAgreementTimeViaB(t *testing.T) {
	// Via B the agreement runs in O(n) rounds for the senders; non-senders
	// decide at the predetermined bound.
	n, f := 24, 3
	out := runAgreement(t, Config{N: n, F: f, Value: 1, Protocol: UseB}, nil)
	bound := 1 + core.ProtocolBRoundBound(n, f+1)
	if out.Result.Rounds > bound {
		t.Fatalf("rounds = %d > %d", out.Result.Rounds, bound)
	}
}

func TestAgreementZeroFaultBound(t *testing.T) {
	// f = 0: the general alone informs everyone.
	out := runAgreement(t, Config{N: 8, F: 0, Value: 3, Protocol: UseB}, nil)
	for pid, d := range out.Decisions {
		if d != 3 {
			t.Fatalf("process %d decided %d", pid, d)
		}
	}
}

func TestAgreementConfigValidation(t *testing.T) {
	if _, err := Run(Config{N: 0, F: 0}, core.RunOptions{}); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := Run(Config{N: 4, F: 4}, core.RunOptions{}); err == nil {
		t.Fatal("want error for f>=n")
	}
}
