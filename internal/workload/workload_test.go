package workload

import (
	"testing"
	"testing/quick"
)

func TestValvesIdempotent(t *testing.T) {
	v := NewValves(4)
	v.Do(2)
	v.Do(2)
	v.Do(2)
	if !v.Done(2) || v.Done(1) {
		t.Fatal("done state wrong")
	}
	if v.Checks(2) != 3 {
		t.Fatalf("checks = %d, want 3", v.Checks(2))
	}
	if v.AllClosed() {
		t.Fatal("not all closed")
	}
	for u := 1; u <= 4; u++ {
		v.Do(u)
	}
	if !v.AllClosed() {
		t.Fatal("all closed expected")
	}
	// Out-of-range units are ignored.
	v.Do(0)
	v.Do(99)
}

func TestFormulaEvaluation(t *testing.T) {
	// (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ ¬x2 ∨ ¬x3): satisfiable (e.g. x1 only).
	f, err := NewFormula(3, [][3]int{{1, 2, 3}, {-1, -2, -3}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 8 {
		t.Fatalf("size = %d", f.Size())
	}
	for u := 1; u <= f.Size(); u++ {
		f.Do(u)
	}
	sat, complete := f.Satisfiable()
	if !sat || !complete {
		t.Fatalf("sat=%v complete=%v, want true/true", sat, complete)
	}
}

func TestFormulaUnsatisfiable(t *testing.T) {
	// x1 ∧ ¬x1 via padded clauses.
	f, err := NewFormula(1, [][3]int{{1, 1, 1}, {-1, -1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= f.Size(); u++ {
		f.Do(u)
	}
	if sat, _ := f.Satisfiable(); sat {
		t.Fatal("unsatisfiable formula reported sat")
	}
}

func TestFormulaValidation(t *testing.T) {
	if _, err := NewFormula(0, nil); err == nil {
		t.Fatal("want error for 0 vars")
	}
	if _, err := NewFormula(25, nil); err == nil {
		t.Fatal("want error for too many vars")
	}
	if _, err := NewFormula(2, [][3]int{{1, 3, 2}}); err == nil {
		t.Fatal("want error for out-of-range literal")
	}
	if _, err := NewFormula(2, [][3]int{{0, 1, 2}}); err == nil {
		t.Fatal("want error for zero literal")
	}
}

func TestFormulaMatchesDirectEvaluation(t *testing.T) {
	// Property: the workload's verdict equals direct evaluation.
	f, err := NewFormula(4, [][3]int{{1, -2, 3}, {-1, 2, 4}, {2, -3, -4}})
	if err != nil {
		t.Fatal(err)
	}
	check := func(raw uint8) bool {
		u := int(raw%16) + 1
		f.Do(u)
		assign := u - 1
		want := evalDirect(assign)
		f.mu.Lock()
		got := f.results[u]
		f.mu.Unlock()
		return got == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func evalDirect(a int) bool {
	x := func(v int) bool { return a>>(v-1)&1 == 1 }
	c1 := x(1) || !x(2) || x(3)
	c2 := !x(1) || x(2) || x(4)
	c3 := x(2) || !x(3) || !x(4)
	return c1 && c2 && c3
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(3)
	r.Do(1)
	r.Do(1)
	r.Do(3)
	if r.Multiplicity(1) != 2 || r.Multiplicity(2) != 0 || r.Multiplicity(3) != 1 {
		t.Fatal("multiplicities wrong")
	}
	if !r.Done(1) || r.Done(2) {
		t.Fatal("done wrong")
	}
	if r.Size() != 3 {
		t.Fatal("size wrong")
	}
}
