// Package workload provides the idempotent work abstractions used by the
// examples: the paper's motivating reactor-valve check, boolean-formula
// evaluation (verifying a step in a proof), and a generic recorder. All
// workloads are safe to repeat — the defining property of the paper's work
// units — and safe for concurrent use.
package workload

import (
	"fmt"
	"sync"
)

// Workload is a set of n idempotent units, executed by unit number (1..n).
type Workload interface {
	// Size returns the number of units.
	Size() int
	// Do performs unit u (1-based). Implementations must be idempotent.
	Do(u int)
	// Done reports whether unit u has been performed at least once.
	Done(u int) bool
}

// Valves models the paper's introduction: before fuel is added, every valve
// must be verified closed; verifying (and closing) a valve is idempotent.
type Valves struct {
	mu     sync.Mutex
	closed []bool
	checks []int
}

var _ Workload = (*Valves)(nil)

// NewValves builds a bank of n open valves.
func NewValves(n int) *Valves {
	return &Valves{closed: make([]bool, n+1), checks: make([]int, n+1)}
}

// Size implements Workload.
func (v *Valves) Size() int { return len(v.closed) - 1 }

// Do verifies valve u is closed, closing it if necessary.
func (v *Valves) Do(u int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if u < 1 || u >= len(v.closed) {
		return
	}
	v.checks[u]++
	v.closed[u] = true
}

// Done implements Workload.
func (v *Valves) Done(u int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return u >= 1 && u < len(v.closed) && v.closed[u]
}

// AllClosed reports whether every valve has been verified.
func (v *Valves) AllClosed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for u := 1; u < len(v.closed); u++ {
		if !v.closed[u] {
			return false
		}
	}
	return true
}

// Checks returns how many times valve u was checked (the multiplicity).
func (v *Valves) Checks(u int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if u < 1 || u >= len(v.checks) {
		return 0
	}
	return v.checks[u]
}

// Formula evaluates a boolean formula in 3-CNF over k variables at all 2^k
// assignments: unit u evaluates assignment u-1. It reproduces the paper's
// "evaluating a boolean formula at a particular assignment" example; the
// workload doubles as a brute-force satisfiability check.
type Formula struct {
	vars    int
	clauses [][3]int // literals: +v = var v, -v = ¬var v (1-based)

	mu      sync.Mutex
	results map[int]bool
}

var _ Workload = (*Formula)(nil)

// NewFormula builds the workload for the given 3-CNF clauses over vars
// variables.
func NewFormula(vars int, clauses [][3]int) (*Formula, error) {
	if vars < 1 || vars > 20 {
		return nil, fmt.Errorf("workload: vars = %d out of range [1,20]", vars)
	}
	for _, c := range clauses {
		for _, l := range c {
			if l == 0 || l > vars || -l > vars {
				return nil, fmt.Errorf("workload: literal %d out of range", l)
			}
		}
	}
	return &Formula{vars: vars, clauses: clauses, results: make(map[int]bool)}, nil
}

// Size implements Workload: one unit per assignment.
func (f *Formula) Size() int { return 1 << f.vars }

// Do evaluates assignment u-1.
func (f *Formula) Do(u int) {
	assign := u - 1
	sat := true
	for _, c := range f.clauses {
		clauseSat := false
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			bit := assign>>(v-1)&1 == 1
			if (l > 0) == bit {
				clauseSat = true
				break
			}
		}
		if !clauseSat {
			sat = false
			break
		}
	}
	f.mu.Lock()
	f.results[u] = sat
	f.mu.Unlock()
}

// Done implements Workload.
func (f *Formula) Done(u int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.results[u]
	return ok
}

// Satisfiable reports whether any evaluated assignment satisfied the
// formula, and whether all assignments have been evaluated.
func (f *Formula) Satisfiable() (sat, complete bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.results {
		if s {
			sat = true
		}
	}
	return sat, len(f.results) == 1<<f.vars
}

// Recorder is a plain workload that just records executions.
type Recorder struct {
	mu    sync.Mutex
	n     int
	count []int
}

var _ Workload = (*Recorder)(nil)

// NewRecorder builds a recorder over n units.
func NewRecorder(n int) *Recorder {
	return &Recorder{n: n, count: make([]int, n+1)}
}

// Size implements Workload.
func (r *Recorder) Size() int { return r.n }

// Do implements Workload.
func (r *Recorder) Do(u int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if u >= 1 && u <= r.n {
		r.count[u]++
	}
}

// Done implements Workload.
func (r *Recorder) Done(u int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return u >= 1 && u <= r.n && r.count[u] > 0
}

// Multiplicity returns how many times unit u ran.
func (r *Recorder) Multiplicity(u int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if u < 1 || u > r.n {
		return 0
	}
	return r.count[u]
}
