// Package sharedmem reproduces the paper's §1.1 comparison point: in the
// shared-memory model there is a straightforward algorithm — sequential
// work with a progress register as the checkpoint — achieving optimal
// O(n + t) effort (counting reads, writes and work) in O(nt) time, in
// contrast to the message-passing model where checkpointing costs the
// t√t/t·log t message terms of Protocols A–C.
//
// The substrate runs on the synchronous simulator: one shared-memory
// operation (read or write of one register) occupies one round, exactly like
// one unit of work or one broadcast in the message model.
package sharedmem

import (
	"fmt"

	"repro/internal/sim"
)

// Memory is a bank of shared registers accessible by all processes. The
// lock-step engine serialises access, so plain fields suffice.
type Memory struct {
	cells  []int
	reads  int64
	writes int64
}

// NewMemory builds a register bank of the given size.
func NewMemory(size int) *Memory {
	return &Memory{cells: make([]int, size)}
}

// Read returns the value of a register, consuming one round. A process that
// crashes during the round never observes the value.
func (m *Memory) Read(p *sim.Proc, addr int) int {
	p.StepIdle()
	m.reads++
	return m.cells[addr]
}

// Write stores a value into a register, consuming one round. The write does
// not take effect if the process crashes during the round (the engine kills
// the script before the store).
func (m *Memory) Write(p *sim.Proc, addr, v int) {
	p.StepIdle()
	m.writes++
	m.cells[addr] = v
}

// Ops returns (reads, writes) performed so far.
func (m *Memory) Ops() (int64, int64) { return m.reads, m.writes }

// Config parameterises a Write-All run.
type Config struct {
	// N is the number of work units, T the number of processes.
	N, T int
}

// progressAddr is the single checkpoint register: the highest unit known
// complete.
const progressAddr = 0

// Scripts builds the Write-All scripts over a fresh memory; it returns the
// memory so callers can inspect operation counts.
//
// The algorithm: process 0 performs units in order, writing the progress
// register after each unit (work round + write round). Process j wakes at
// deadline j·(2n+4) — by which time all lower processes have retired — reads
// the progress register, and either halts (all done) or takes over from the
// recorded unit. Effort: n work + n writes + ≤ t reads + ≤ t redone units.
func Scripts(cfg Config) (*Memory, func(id int) sim.Script, error) {
	if cfg.T <= 0 || cfg.N < 0 {
		return nil, nil, fmt.Errorf("sharedmem: invalid config n=%d t=%d", cfg.N, cfg.T)
	}
	mem := NewMemory(1)
	life := int64(2*cfg.N + 4)
	active := func(p *sim.Proc, from int) {
		p.SetActive(true)
		defer p.SetActive(false)
		for u := from + 1; u <= cfg.N; u++ {
			p.StepWork(u)
			mem.Write(p, progressAddr, u)
		}
	}
	scripts := func(j int) sim.Script {
		return func(p *sim.Proc) {
			if j == 0 {
				active(p, 0)
				return
			}
			p.WaitUntil(int64(j) * life)
			done := mem.Read(p, progressAddr)
			if done >= cfg.N {
				return
			}
			active(p, done)
		}
	}
	return mem, scripts, nil
}

// Result extends the simulator metrics with shared-memory effort.
type Result struct {
	Sim    sim.Result
	Reads  int64
	Writes int64
}

// Effort counts work plus reads plus writes, the §1.1 measure.
func (r Result) Effort() int64 { return r.Sim.WorkTotal + r.Reads + r.Writes }

// Run executes a Write-All instance under the given adversary.
func Run(cfg Config, adv sim.Adversary) (Result, error) {
	mem, scripts, err := Scripts(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := sim.New(sim.Config{
		NumProcs:  cfg.T,
		NumUnits:  cfg.N,
		Adversary: adv,
		MaxActive: 1,
	}, scripts).Run()
	if err != nil {
		return Result{}, err
	}
	reads, writes := mem.Ops()
	return Result{Sim: res, Reads: reads, Writes: writes}, nil
}
