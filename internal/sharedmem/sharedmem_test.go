package sharedmem

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

func TestWriteAllFailureFree(t *testing.T) {
	n, tt := 32, 8
	res, err := Run(Config{N: n, T: tt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sim.Complete() {
		t.Fatal("incomplete")
	}
	if res.Sim.WorkTotal != int64(n) {
		t.Fatalf("work = %d, want n", res.Sim.WorkTotal)
	}
	// n writes by the worker + t-1 reads by the watchers.
	if res.Writes != int64(n) || res.Reads != int64(tt-1) {
		t.Fatalf("reads/writes = %d/%d, want %d/%d", res.Reads, res.Writes, tt-1, n)
	}
	// Effort O(n + t): here exactly 2n + t - 1.
	if res.Effort() != int64(2*n+tt-1) {
		t.Fatalf("effort = %d, want %d", res.Effort(), 2*n+tt-1)
	}
}

func TestWriteAllEffortBoundUnderCascade(t *testing.T) {
	// §1.1: O(n + t) effort even with t-1 failures — each takeover costs one
	// read plus at most one redone unit plus its write.
	n, tt := 64, 16
	adv := adversary.NewCascade(1, tt-1)
	res, err := Run(Config{N: n, T: tt}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkComplete(res.Sim); err != nil {
		t.Fatal(err)
	}
	bound := int64(2*n + 4*tt)
	if res.Effort() > bound {
		t.Fatalf("effort = %d > %d (O(n+t))", res.Effort(), bound)
	}
}

func TestWriteAllTimeIsNT(t *testing.T) {
	// The price of the shared-memory simplicity is O(nt) time when failures
	// force late deadlines to pass.
	n, tt := 32, 8
	var crashes []adversary.Crash
	for pid := 0; pid < tt-1; pid++ {
		crashes = append(crashes, adversary.Crash{PID: pid, Round: 0})
	}
	res, err := Run(Config{N: n, T: tt}, adversary.NewSchedule(crashes...))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkComplete(res.Sim); err != nil {
		t.Fatal(err)
	}
	wantMin := int64(tt-1) * int64(2*n+4)
	if res.Sim.Rounds < wantMin {
		t.Fatalf("rounds = %d, want ≥ %d (deadline of the last process)", res.Sim.Rounds, wantMin)
	}
}

func TestWriteAllRandomSweep(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(Config{N: 24, T: 6}, adversary.NewRandom(0.05, 5, seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := checkComplete(res.Sim); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestWriteAllCrashBetweenWorkAndWrite(t *testing.T) {
	// The classic hazard: the unit is performed but the checkpoint write is
	// lost, so the taker redoes exactly that unit.
	n, tt := 16, 4
	adv := adversary.NewSchedule(adversary.Crash{PID: 0, AtAction: 4, KeepWork: true})
	// Action 4 is the write after unit 2 (work,write,work,write...).
	res, err := Run(Config{N: n, T: tt}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.WorkTotal != int64(n+1) {
		t.Fatalf("work = %d, want n+1 (one redone unit)", res.Sim.WorkTotal)
	}
}

func TestWriteAllValidation(t *testing.T) {
	if _, err := Run(Config{N: 4, T: 0}, nil); err == nil {
		t.Fatal("want error for t=0")
	}
}

func checkComplete(res sim.Result) error {
	if res.Survivors > 0 && !res.Complete() {
		return errIncomplete
	}
	return nil
}

var errIncomplete = errorString("survivors but incomplete work")

type errorString string

func (e errorString) Error() string { return string(e) }
