// Package bootstrap removes the paper's initial-common-knowledge assumption
// (§1): "if even one process knows about this work, then it can act as a
// general, run Byzantine agreement on the pool of work using one of the
// three algorithms, and then the actual work is performed by running the
// same algorithm a second time on the real work. If n, the amount of actual
// work, is Ω(t), then the overall cost at most doubles."
//
// Stage 1 runs the §5 agreement reduction with the pool description as the
// value; stage 2 runs the same work protocol over the agreed pool, starting
// at the predetermined round by which stage 1 has terminated.
package bootstrap

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// PoolMsg informs a process of the work pool (stage 1's "value").
type PoolMsg struct {
	Units []int
}

// Kind implements sim.Kinder.
func (PoolMsg) Kind() string { return "pool" }

// Config parameterises a bootstrapped run.
type Config struct {
	// Pool is the work only the general initially knows: engine unit IDs.
	Pool []int
	// T is the number of processes; F bounds failures (senders 0..F run the
	// pool agreement).
	T, F int
	// Protocol selects the work protocol for both stages: "A" or "B".
	// (Protocol C works identically but its exponential stage boundary
	// makes composed runs impractical to simulate at interesting sizes.)
	Protocol string
	// Exec performs one unit of real work in stage 2.
	Exec core.WorkExecutor
}

// Result reports a bootstrapped run.
type Result struct {
	Sim sim.Result
	// Stage1End is the predetermined round at which stage 2 began.
	Stage1End int64
	// PoolAgreed reports whether at least one survivor knew the pool (when
	// false, the general crashed before informing anyone, and no work was
	// required).
	PoolAgreed bool
}

// Run executes the two-stage bootstrapped protocol.
func Run(cfg Config, opt core.RunOptions) (Result, error) {
	if cfg.T <= 0 {
		return Result{}, fmt.Errorf("bootstrap: t = %d", cfg.T)
	}
	if cfg.F < 0 || cfg.F >= cfg.T {
		return Result{}, fmt.Errorf("bootstrap: f = %d out of range [0,%d)", cfg.F, cfg.T)
	}
	n := len(cfg.Pool)
	senders := cfg.F + 1
	runWork := core.RunProtocolB
	bound := core.ProtocolBRoundBound
	switch cfg.Protocol {
	case "", "B", "b":
	case "A", "a":
		runWork = core.RunProtocolA
		bound = core.ProtocolARoundBound
	default:
		return Result{}, fmt.Errorf("bootstrap: unsupported protocol %q", cfg.Protocol)
	}

	// Stage 1: the general informs the senders (round 0), the senders run
	// the work protocol where unit u means "send the pool to process u-1";
	// it terminates by stage1End for every failure pattern.
	stage1End := 1 + bound(cfg.T, senders) + 1
	pools := make([][]int, cfg.T) // per-process learned pool
	agreed := false

	scripts := func(id int) sim.Script {
		return func(p *sim.Proc) {
			p.SetTap(func(m sim.Message) {
				if pm, ok := m.Payload.(PoolMsg); ok {
					pools[id] = pm.Units
				}
			})
			if id == 0 {
				// The general knows the pool: one broadcast to the other
				// senders (a single record on the engine's message plane).
				pools[0] = cfg.Pool
				rcpts := make([]int, 0, senders-1)
				for s := 1; s < senders; s++ {
					rcpts = append(rcpts, s)
				}
				p.StepBroadcast(rcpts, PoolMsg{Units: cfg.Pool})
			}
			if id < senders {
				// Stage 1 work: logical unit u means "inform process u-1 of
				// the pool"; its engine unit ID is n+u so the informs never
				// collide with real units in the completion accounting.
				workers := idRange(senders)
				informExec := func(pp *sim.Proc, unit int) {
					pp.StepWorkSend(unit, sim.Send{
						To: unit - n - 1, Payload: PoolMsg{Units: pools[pp.ID()]},
					})
				}
				abCfg := core.ABConfig{
					N: cfg.T, T: senders,
					Assign:     core.Assignment{Workers: workers, Units: stageOneUnits(cfg.T, n)},
					StartRound: 1,
					Exec:       informExec,
				}
				_ = runWork(p, abCfg, id)
			}
			// Everyone waits out stage 1's deadline, then runs stage 2 on
			// the pool it learned.
			for p.Now() < stage1End {
				p.WaitUntil(stage1End)
			}
			pool := pools[id]
			if len(pool) == 0 {
				// The general crashed before any survivor learned the pool:
				// no process is obliged to (or can) do the work.
				return
			}
			agreed = true
			abCfg := core.ABConfig{
				N: len(pool), T: cfg.T,
				Assign:     core.Assignment{Units: pool},
				StartRound: stage1End,
				Exec:       cfg.Exec,
			}
			_ = runWork(p, abCfg, id)
		}
	}
	res, err := core.Run(n, cfg.T, scripts, opt)
	if err != nil {
		return Result{}, err
	}
	out := Result{Sim: res, Stage1End: stage1End, PoolAgreed: agreed}
	if agreed && res.Survivors > 0 && !res.Complete() {
		return out, fmt.Errorf("bootstrap: pool agreed and %d survivors but work incomplete", res.Survivors)
	}
	return out, nil
}

// stageOneUnits allocates stage-1 unit IDs that cannot collide with real
// (stage-2) units: informs are "work" for accounting, but only real units
// count toward completion, so they map above the n real unit IDs.
func stageOneUnits(t, n int) []int {
	units := make([]int, t)
	for i := range units {
		units[i] = n + 1 + i
	}
	return units
}

func idRange(k int) []int {
	ids := make([]int, k)
	for i := range ids {
		ids[i] = i
	}
	return ids
}
