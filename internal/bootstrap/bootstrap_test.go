package bootstrap

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
)

func pool(n int) []int {
	units := make([]int, n)
	for i := range units {
		units[i] = i + 1
	}
	return units
}

func TestBootstrapFailureFree(t *testing.T) {
	for _, proto := range []string{"A", "B"} {
		res, err := Run(Config{Pool: pool(32), T: 8, F: 3, Protocol: proto},
			core.RunOptions{MaxActive: 1})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !res.PoolAgreed || !res.Sim.Complete() {
			t.Fatalf("%s: agreed=%v complete=%v", proto, res.PoolAgreed, res.Sim.Complete())
		}
	}
}

func TestBootstrapCostAtMostDoubles(t *testing.T) {
	// §1: when n = Ω(t), the two-stage run costs at most about twice the
	// direct run (we allow 2.5× for the stage boundary slack).
	n, tt, f := 64, 8, 7
	boot, err := Run(Config{Pool: pool(n), T: tt, F: f, Protocol: "B"},
		core.RunOptions{MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := core.ProtocolBScripts(core.ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Run(n, tt, scripts, core.RunOptions{MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	bootEffort := boot.Sim.WorkTotal + boot.Sim.Messages
	directEffort := direct.WorkTotal + direct.Messages
	if bootEffort > directEffort*5/2 {
		t.Fatalf("bootstrap effort %d > 2.5× direct %d", bootEffort, directEffort)
	}
}

func TestBootstrapGeneralCrashesImmediately(t *testing.T) {
	// The general dies before informing anyone: no survivor knows the pool,
	// so no work is owed (and none can happen).
	res, err := Run(Config{Pool: pool(16), T: 8, F: 3, Protocol: "B"},
		core.RunOptions{
			Adversary: adversary.NewSchedule(adversary.Crash{PID: 0, Round: 0}),
			MaxActive: 1,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolAgreed {
		t.Fatal("pool agreed despite silent general")
	}
	if res.Sim.WorkDistinct != 0 {
		t.Fatalf("work happened without the pool: %d", res.Sim.WorkDistinct)
	}
}

func TestBootstrapGeneralCrashesMidBroadcast(t *testing.T) {
	// The general reaches a subset of senders: the pool must still spread
	// and the work complete.
	for prefix := 1; prefix <= 3; prefix++ {
		res, err := Run(Config{Pool: pool(16), T: 8, F: 3, Protocol: "B"},
			core.RunOptions{
				Adversary: adversary.NewSchedule(adversary.Crash{
					PID: 0, AtAction: 1, Deliver: prefixMask(3, prefix),
				}),
				MaxActive: 1,
			})
		if err != nil {
			t.Fatalf("prefix %d: %v", prefix, err)
		}
		if !res.PoolAgreed || !res.Sim.Complete() {
			t.Fatalf("prefix %d: agreed=%v complete=%v", prefix, res.PoolAgreed, res.Sim.Complete())
		}
	}
}

func prefixMask(n, k int) []bool {
	m := make([]bool, n)
	for i := 0; i < k && i < n; i++ {
		m[i] = true
	}
	return m
}

func TestBootstrapSenderCascade(t *testing.T) {
	// Senders crash throughout both stages (within the F bound).
	res, err := Run(Config{Pool: pool(32), T: 8, F: 3, Protocol: "B"},
		core.RunOptions{
			Adversary: adversary.NewCascade(2, 3),
			MaxActive: 1,
		})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sim.Complete() {
		t.Fatal("incomplete")
	}
}

func TestBootstrapRandomSweep(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(Config{Pool: pool(24), T: 6, F: 3, Protocol: "B"},
			core.RunOptions{
				Adversary: adversary.NewRandom(0.02, 3, seed),
				MaxActive: 1,
			})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.PoolAgreed && res.Sim.Survivors > 0 && !res.Sim.Complete() {
			t.Fatalf("seed %d: guarantee broken", seed)
		}
	}
}

func TestBootstrapValidation(t *testing.T) {
	if _, err := Run(Config{Pool: pool(4), T: 0, F: 0}, core.RunOptions{}); err == nil {
		t.Fatal("want error for t=0")
	}
	if _, err := Run(Config{Pool: pool(4), T: 4, F: 4}, core.RunOptions{}); err == nil {
		t.Fatal("want error for f>=t")
	}
	if _, err := Run(Config{Pool: pool(4), T: 4, F: 1, Protocol: "Z"}, core.RunOptions{}); err == nil {
		t.Fatal("want error for unknown protocol")
	}
}
