// Package adversary provides fault strategies for the synchronous simulator:
// explicit schedules (crashes, with or without recovery), seeded random
// crashes and message loss, rate slowdowns, and the structured worst cases
// used in the paper's analyses (crash-after-work cascades and checkpoint
// suppression).
package adversary

import (
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// None is the failure-free adversary.
func None() sim.Adversary { return sim.NopAdversary{} }

// Crash describes one planned failure. Exactly one of Round / AtAction
// selects the trigger:
//   - Round >= 0 crashes the process at the start of that round (even while
//     it sleeps);
//   - AtAction > 0 crashes the process as it commits its AtAction-th action,
//     with KeepWork and Deliver controlling what survives of that action.
type Crash struct {
	PID      int
	Round    int64
	AtAction int
	KeepWork bool
	Deliver  []bool
	// RestartAt > 0 schedules a crash-recovery restart at that round. The
	// process must be sim.Recoverable and the restart round must come after
	// the crash, or the request is ignored and the process stays down.
	RestartAt int64
}

// Schedule executes a fixed list of planned crashes and their restarts.
type Schedule struct {
	byRound   map[int64][]int
	byAction  map[int]*actionCrash
	byRestart map[int64][]int // restart round -> round-crash victims
	counts    map[int]int
}

type actionCrash struct {
	at        int
	keepWork  bool
	deliver   []bool
	restartAt int64
}

var (
	_ sim.Adversary = (*Schedule)(nil)
	_ sim.Restarter = (*Schedule)(nil)
)

// NewSchedule builds a Schedule from planned crashes. At most one
// action-triggered crash per PID is supported (a recovered process may crash
// again, but only through a round trigger).
func NewSchedule(crashes ...Crash) *Schedule {
	s := &Schedule{
		byRound:   make(map[int64][]int),
		byAction:  make(map[int]*actionCrash),
		byRestart: make(map[int64][]int),
		counts:    make(map[int]int),
	}
	for _, c := range crashes {
		if c.AtAction > 0 {
			s.byAction[c.PID] = &actionCrash{
				at: c.AtAction, keepWork: c.KeepWork, deliver: c.Deliver, restartAt: c.RestartAt,
			}
			continue
		}
		s.byRound[c.Round] = append(s.byRound[c.Round], c.PID)
		if c.RestartAt > c.Round {
			s.byRestart[c.RestartAt] = append(s.byRestart[c.RestartAt], c.PID)
		}
	}
	return s
}

// OnAction implements sim.Adversary.
func (s *Schedule) OnAction(_ int64, pid int, _ sim.Action) sim.Verdict {
	ac := s.byAction[pid]
	if ac == nil {
		return sim.Survive()
	}
	s.counts[pid]++
	if s.counts[pid] == ac.at {
		return sim.Verdict{Crash: true, KeepWork: ac.keepWork, Deliver: ac.deliver, RestartAt: ac.restartAt}
	}
	return sim.Survive()
}

// ScheduledCrashes implements sim.Adversary.
func (s *Schedule) ScheduledCrashes(r int64) []int {
	pids := s.byRound[r]
	sort.Ints(pids)
	return pids
}

// NextScheduledCrash implements sim.Adversary.
func (s *Schedule) NextScheduledCrash(after int64) int64 {
	next := int64(-1)
	for r := range s.byRound {
		if r > after && (next < 0 || r < next) {
			next = r
		}
	}
	return next
}

// ScheduledRestarts implements sim.Restarter for round-triggered crashes;
// action-triggered restarts travel in the crash verdict itself.
func (s *Schedule) ScheduledRestarts(r int64) []int {
	pids := s.byRestart[r]
	sort.Ints(pids)
	return pids
}

// NextScheduledRestart implements sim.Restarter.
func (s *Schedule) NextScheduledRestart(after int64) int64 {
	next := int64(-1)
	for r := range s.byRestart {
		if r > after && (next < 0 || r < next) {
			next = r
		}
	}
	return next
}

// Random crashes each committed action with probability P, up to MaxCrashes
// failures. On a crash, the work unit survives with probability 1/2 and each
// outgoing message is transmitted with probability 1/2, modelling arbitrary
// crash points inside a round. Runs are reproducible for a fixed seed.
type Random struct {
	sim.NopAdversary
	rng        *rand.Rand
	p          float64
	maxCrashes int
	crashed    int
}

var _ sim.Adversary = (*Random)(nil)

// NewRandom builds a Random adversary; maxCrashes should be at most t-1 to
// preserve the one-survivor guarantee.
func NewRandom(p float64, maxCrashes int, seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), p: p, maxCrashes: maxCrashes}
}

// OnAction implements sim.Adversary. The Deliver mask covers the action's
// virtual send list (explicit sends, then the broadcast per recipient), so
// broadcast-native actions draw exactly the same random verdicts as their
// per-send expansion.
func (r *Random) OnAction(_ int64, _ int, a sim.Action) sim.Verdict {
	if r.crashed >= r.maxCrashes || r.rng.Float64() >= r.p {
		return sim.Survive()
	}
	r.crashed++
	v := sim.Verdict{Crash: true, KeepWork: r.rng.Intn(2) == 0}
	if n := a.SendCount(); n > 0 {
		v.Deliver = make([]bool, n)
		for i := range v.Deliver {
			v.Deliver[i] = r.rng.Intn(2) == 0
		}
	}
	return v
}

// Crashes reports how many failures have been injected so far.
func (r *Random) Crashes() int { return r.crashed }

// Loss drops each transmitted message at delivery time with probability P,
// up to MaxDrops losses, modelling transient link faults: the sender paid
// for the message (it counts in Result.Messages) but the recipient never
// sees it. Runs are reproducible for a fixed seed; the rng stream is
// consumed one draw per delivery in delivery order, so the same seed yields
// the same lost set on every conforming execution plane.
type Loss struct {
	sim.NopAdversary
	rng      *rand.Rand
	p        float64
	maxDrops int
	dropped  int
}

var _ sim.DeliveryAdversary = (*Loss)(nil)

// NewLoss builds a Loss adversary dropping with probability p, at most
// maxDrops times.
func NewLoss(p float64, maxDrops int, seed int64) *Loss {
	return &Loss{rng: rand.New(rand.NewSource(seed)), p: p, maxDrops: maxDrops}
}

// OnDeliver implements sim.DeliveryAdversary.
func (l *Loss) OnDeliver(_ int64, _ sim.Message) bool {
	if l.dropped >= l.maxDrops || l.rng.Float64() >= l.p {
		return true
	}
	l.dropped++
	return false
}

// Dropped reports how many messages have been lost so far.
func (l *Loss) Dropped() int { return l.dropped }

// Slowdown degrades one process to rate 1/Factor from its first committed
// action at or after round Round: each later action is followed by Factor-1
// stalled rounds (the quarter-speed workstation of the model's rate
// discussion, for Factor 4). The verdict fires once; the engine keeps the
// factor until another verdict changes it.
type Slowdown struct {
	sim.NopAdversary
	PID    int
	Round  int64
	Factor int
	fired  bool
}

var _ sim.Adversary = (*Slowdown)(nil)

// OnAction implements sim.Adversary.
func (s *Slowdown) OnAction(r int64, pid int, _ sim.Action) sim.Verdict {
	if s.fired || pid != s.PID || r < s.Round {
		return sim.Survive()
	}
	s.fired = true
	return sim.Verdict{Slow: s.Factor}
}

// Cascade is the work-wasting adversary behind the worst cases of §2: it
// lets each process perform Units units of work and then crashes it at its
// next send, suppressing the entire broadcast. The work is kept but never
// reported, so every successor must redo it. MaxCrashes bounds the failures
// (use t-1 to preserve a survivor).
type Cascade struct {
	sim.NopAdversary
	units      int
	maxCrashes int
	crashed    int
	work       []int // per-PID work counters, grown on demand
}

var _ sim.Adversary = (*Cascade)(nil)

// NewCascade builds a Cascade adversary.
func NewCascade(units, maxCrashes int) *Cascade {
	return &Cascade{units: units, maxCrashes: maxCrashes}
}

// OnAction implements sim.Adversary.
func (c *Cascade) OnAction(_ int64, pid int, a sim.Action) sim.Verdict {
	if a.WorkUnit > 0 {
		for pid >= len(c.work) {
			c.work = append(c.work, 0)
		}
		c.work[pid]++
	}
	if c.crashed >= c.maxCrashes {
		return sim.Survive()
	}
	if a.SendCount() > 0 && pid < len(c.work) && c.work[pid] >= c.units {
		c.crashed++
		return sim.Verdict{Crash: true, KeepWork: true}
	}
	return sim.Survive()
}

// Crashes reports how many failures have been injected so far.
func (c *Cascade) Crashes() int { return c.crashed }

// KindCount crashes a process as it sends its Nth message of payload kind
// Kind, delivering the prefix of the broadcast of length Prefix (0 = nothing
// is delivered). It models crashing in the middle of a specific checkpoint.
type KindCount struct {
	sim.NopAdversary
	PID    int
	Kind   string
	N      int
	Prefix int
	seen   int
}

var _ sim.Adversary = (*KindCount)(nil)

// OnAction implements sim.Adversary. Sends are matched and the delivered
// prefix selected over the action's virtual send list, so a broadcast is
// truncated per recipient exactly like its per-send expansion.
func (k *KindCount) OnAction(_ int64, pid int, a sim.Action) sim.Verdict {
	n := a.SendCount()
	if pid != k.PID || n == 0 {
		return sim.Survive()
	}
	match := false
	for i := 0; i < n; i++ {
		if kindOf(a.SendAt(i).Payload) == k.Kind {
			match = true
			break
		}
	}
	if !match {
		return sim.Survive()
	}
	k.seen++
	if k.seen != k.N {
		return sim.Survive()
	}
	deliver := make([]bool, n)
	for i := 0; i < k.Prefix && i < len(deliver); i++ {
		deliver[i] = true
	}
	return sim.Verdict{Crash: true, KeepWork: true, Deliver: deliver}
}

func kindOf(p any) string {
	if kk, ok := p.(interface{ Kind() string }); ok {
		return kk.Kind()
	}
	return ""
}

// Chain composes several adversaries; the first non-surviving verdict
// (crash, omission or slowdown) wins, scheduled crashes and restarts are
// unioned, and a delivery goes through only if every member lets it.
type Chain struct {
	Advs []sim.Adversary
}

var (
	_ sim.Adversary         = (*Chain)(nil)
	_ sim.DeliveryAdversary = (*Chain)(nil)
	_ sim.Restarter         = (*Chain)(nil)
)

// NewChain composes adversaries.
func NewChain(advs ...sim.Adversary) *Chain { return &Chain{Advs: advs} }

// OnAction implements sim.Adversary.
func (c *Chain) OnAction(r int64, pid int, a sim.Action) sim.Verdict {
	for _, adv := range c.Advs {
		if v := adv.OnAction(r, pid, a); v.Crash || v.Omit || v.Slow > 0 {
			return v
		}
	}
	return sim.Survive()
}

// OnDeliver implements sim.DeliveryAdversary. Every delivery-aware member is
// consulted on every delivery — no short-circuit — so each member's rng
// stream advances identically whatever the others decide, keeping composed
// seeded adversaries replayable.
func (c *Chain) OnDeliver(r int64, m sim.Message) bool {
	ok := true
	for _, adv := range c.Advs {
		if d, isD := adv.(sim.DeliveryAdversary); isD && !d.OnDeliver(r, m) {
			ok = false
		}
	}
	return ok
}

// ScheduledRestarts implements sim.Restarter.
func (c *Chain) ScheduledRestarts(r int64) []int {
	var pids []int
	for _, adv := range c.Advs {
		if rs, isR := adv.(sim.Restarter); isR {
			pids = append(pids, rs.ScheduledRestarts(r)...)
		}
	}
	sort.Ints(pids)
	return pids
}

// NextScheduledRestart implements sim.Restarter.
func (c *Chain) NextScheduledRestart(after int64) int64 {
	next := int64(-1)
	for _, adv := range c.Advs {
		rs, isR := adv.(sim.Restarter)
		if !isR {
			continue
		}
		if n := rs.NextScheduledRestart(after); n >= 0 && (next < 0 || n < next) {
			next = n
		}
	}
	return next
}

// ScheduledCrashes implements sim.Adversary.
func (c *Chain) ScheduledCrashes(r int64) []int {
	var pids []int
	for _, adv := range c.Advs {
		pids = append(pids, adv.ScheduledCrashes(r)...)
	}
	sort.Ints(pids)
	return pids
}

// NextScheduledCrash implements sim.Adversary.
func (c *Chain) NextScheduledCrash(after int64) int64 {
	next := int64(-1)
	for _, adv := range c.Advs {
		if n := adv.NextScheduledCrash(after); n >= 0 && (next < 0 || n < next) {
			next = n
		}
	}
	return next
}
