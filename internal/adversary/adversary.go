// Package adversary provides crash-failure strategies for the synchronous
// simulator: explicit schedules, seeded random crashes, and the structured
// worst cases used in the paper's analyses (crash-after-work cascades and
// checkpoint suppression).
package adversary

import (
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// None is the failure-free adversary.
func None() sim.Adversary { return sim.NopAdversary{} }

// Crash describes one planned failure. Exactly one of Round / AtAction
// selects the trigger:
//   - Round >= 0 crashes the process at the start of that round (even while
//     it sleeps);
//   - AtAction > 0 crashes the process as it commits its AtAction-th action,
//     with KeepWork and Deliver controlling what survives of that action.
type Crash struct {
	PID      int
	Round    int64
	AtAction int
	KeepWork bool
	Deliver  []bool
}

// Schedule executes a fixed list of planned crashes.
type Schedule struct {
	byRound  map[int64][]int
	byAction map[int]*actionCrash
	counts   map[int]int
}

type actionCrash struct {
	at       int
	keepWork bool
	deliver  []bool
}

var _ sim.Adversary = (*Schedule)(nil)

// NewSchedule builds a Schedule from planned crashes. At most one
// action-triggered crash per PID is supported (one crash kills for good).
func NewSchedule(crashes ...Crash) *Schedule {
	s := &Schedule{
		byRound:  make(map[int64][]int),
		byAction: make(map[int]*actionCrash),
		counts:   make(map[int]int),
	}
	for _, c := range crashes {
		if c.AtAction > 0 {
			s.byAction[c.PID] = &actionCrash{at: c.AtAction, keepWork: c.KeepWork, deliver: c.Deliver}
		} else {
			s.byRound[c.Round] = append(s.byRound[c.Round], c.PID)
		}
	}
	return s
}

// OnAction implements sim.Adversary.
func (s *Schedule) OnAction(_ int64, pid int, _ sim.Action) sim.Verdict {
	ac := s.byAction[pid]
	if ac == nil {
		return sim.Survive()
	}
	s.counts[pid]++
	if s.counts[pid] == ac.at {
		return sim.Verdict{Crash: true, KeepWork: ac.keepWork, Deliver: ac.deliver}
	}
	return sim.Survive()
}

// ScheduledCrashes implements sim.Adversary.
func (s *Schedule) ScheduledCrashes(r int64) []int {
	pids := s.byRound[r]
	sort.Ints(pids)
	return pids
}

// NextScheduledCrash implements sim.Adversary.
func (s *Schedule) NextScheduledCrash(after int64) int64 {
	next := int64(-1)
	for r := range s.byRound {
		if r > after && (next < 0 || r < next) {
			next = r
		}
	}
	return next
}

// Random crashes each committed action with probability P, up to MaxCrashes
// failures. On a crash, the work unit survives with probability 1/2 and each
// outgoing message is transmitted with probability 1/2, modelling arbitrary
// crash points inside a round. Runs are reproducible for a fixed seed.
type Random struct {
	sim.NopAdversary
	rng        *rand.Rand
	p          float64
	maxCrashes int
	crashed    int
}

var _ sim.Adversary = (*Random)(nil)

// NewRandom builds a Random adversary; maxCrashes should be at most t-1 to
// preserve the one-survivor guarantee.
func NewRandom(p float64, maxCrashes int, seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), p: p, maxCrashes: maxCrashes}
}

// OnAction implements sim.Adversary. The Deliver mask covers the action's
// virtual send list (explicit sends, then the broadcast per recipient), so
// broadcast-native actions draw exactly the same random verdicts as their
// per-send expansion.
func (r *Random) OnAction(_ int64, _ int, a sim.Action) sim.Verdict {
	if r.crashed >= r.maxCrashes || r.rng.Float64() >= r.p {
		return sim.Survive()
	}
	r.crashed++
	v := sim.Verdict{Crash: true, KeepWork: r.rng.Intn(2) == 0}
	if n := a.SendCount(); n > 0 {
		v.Deliver = make([]bool, n)
		for i := range v.Deliver {
			v.Deliver[i] = r.rng.Intn(2) == 0
		}
	}
	return v
}

// Crashes reports how many failures have been injected so far.
func (r *Random) Crashes() int { return r.crashed }

// Cascade is the work-wasting adversary behind the worst cases of §2: it
// lets each process perform Units units of work and then crashes it at its
// next send, suppressing the entire broadcast. The work is kept but never
// reported, so every successor must redo it. MaxCrashes bounds the failures
// (use t-1 to preserve a survivor).
type Cascade struct {
	sim.NopAdversary
	units      int
	maxCrashes int
	crashed    int
	work       []int // per-PID work counters, grown on demand
}

var _ sim.Adversary = (*Cascade)(nil)

// NewCascade builds a Cascade adversary.
func NewCascade(units, maxCrashes int) *Cascade {
	return &Cascade{units: units, maxCrashes: maxCrashes}
}

// OnAction implements sim.Adversary.
func (c *Cascade) OnAction(_ int64, pid int, a sim.Action) sim.Verdict {
	if a.WorkUnit > 0 {
		for pid >= len(c.work) {
			c.work = append(c.work, 0)
		}
		c.work[pid]++
	}
	if c.crashed >= c.maxCrashes {
		return sim.Survive()
	}
	if a.SendCount() > 0 && pid < len(c.work) && c.work[pid] >= c.units {
		c.crashed++
		return sim.Verdict{Crash: true, KeepWork: true}
	}
	return sim.Survive()
}

// Crashes reports how many failures have been injected so far.
func (c *Cascade) Crashes() int { return c.crashed }

// KindCount crashes a process as it sends its Nth message of payload kind
// Kind, delivering the prefix of the broadcast of length Prefix (0 = nothing
// is delivered). It models crashing in the middle of a specific checkpoint.
type KindCount struct {
	sim.NopAdversary
	PID    int
	Kind   string
	N      int
	Prefix int
	seen   int
}

var _ sim.Adversary = (*KindCount)(nil)

// OnAction implements sim.Adversary. Sends are matched and the delivered
// prefix selected over the action's virtual send list, so a broadcast is
// truncated per recipient exactly like its per-send expansion.
func (k *KindCount) OnAction(_ int64, pid int, a sim.Action) sim.Verdict {
	n := a.SendCount()
	if pid != k.PID || n == 0 {
		return sim.Survive()
	}
	match := false
	for i := 0; i < n; i++ {
		if kindOf(a.SendAt(i).Payload) == k.Kind {
			match = true
			break
		}
	}
	if !match {
		return sim.Survive()
	}
	k.seen++
	if k.seen != k.N {
		return sim.Survive()
	}
	deliver := make([]bool, n)
	for i := 0; i < k.Prefix && i < len(deliver); i++ {
		deliver[i] = true
	}
	return sim.Verdict{Crash: true, KeepWork: true, Deliver: deliver}
}

func kindOf(p any) string {
	if kk, ok := p.(interface{ Kind() string }); ok {
		return kk.Kind()
	}
	return ""
}

// Chain composes several adversaries; the first non-surviving verdict wins,
// and scheduled crashes are unioned.
type Chain struct {
	Advs []sim.Adversary
}

var _ sim.Adversary = (*Chain)(nil)

// NewChain composes adversaries.
func NewChain(advs ...sim.Adversary) *Chain { return &Chain{Advs: advs} }

// OnAction implements sim.Adversary.
func (c *Chain) OnAction(r int64, pid int, a sim.Action) sim.Verdict {
	for _, adv := range c.Advs {
		if v := adv.OnAction(r, pid, a); v.Crash {
			return v
		}
	}
	return sim.Survive()
}

// ScheduledCrashes implements sim.Adversary.
func (c *Chain) ScheduledCrashes(r int64) []int {
	var pids []int
	for _, adv := range c.Advs {
		pids = append(pids, adv.ScheduledCrashes(r)...)
	}
	sort.Ints(pids)
	return pids
}

// NextScheduledCrash implements sim.Adversary.
func (c *Chain) NextScheduledCrash(after int64) int64 {
	next := int64(-1)
	for _, adv := range c.Advs {
		if n := adv.NextScheduledCrash(after); n >= 0 && (next < 0 || n < next) {
			next = n
		}
	}
	return next
}
