package adversary

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestLossSeededAndBounded pins the Loss adversary's contract: one rng draw
// per delivery in delivery order (so the same seed loses the same set), and
// never more than maxDrops losses.
func TestLossSeededAndBounded(t *testing.T) {
	const deliveries = 400
	run := func() ([]bool, int) {
		l := NewLoss(0.2, 10, 42)
		out := make([]bool, deliveries)
		for i := range out {
			out[i] = l.OnDeliver(int64(i), sim.Message{To: i % 4})
		}
		return out, l.Dropped()
	}
	first, dropped := run()
	if dropped != 10 {
		t.Fatalf("dropped = %d, want the maxDrops cap 10", dropped)
	}
	lost := 0
	for _, ok := range first {
		if !ok {
			lost++
		}
	}
	if lost != dropped {
		t.Fatalf("lost %d deliveries but Dropped() = %d", lost, dropped)
	}
	again, _ := run()
	if !reflect.DeepEqual(first, again) {
		t.Fatal("same seed lost a different delivery set")
	}
	never := NewLoss(0, 100, 1)
	for i := 0; i < 50; i++ {
		if !never.OnDeliver(0, sim.Message{}) {
			t.Fatal("p=0 dropped a message")
		}
	}
	always := NewLoss(1, 3, 1)
	for i := 0; i < 5; i++ {
		always.OnDeliver(0, sim.Message{})
	}
	if always.Dropped() != 3 {
		t.Fatalf("p=1 dropped %d, want exactly maxDrops 3", always.Dropped())
	}
}

// TestSlowdownFiresOnceAtRound pins the Slowdown verdict: nothing before
// the trigger round or for other processes, one Slow verdict at the first
// committed action at or after it, silence after.
func TestSlowdownFiresOnceAtRound(t *testing.T) {
	s := &Slowdown{PID: 1, Round: 3, Factor: 4}
	if v := s.OnAction(2, 1, sim.Action{}); v.Slow != 0 || v.Crash {
		t.Fatalf("fired before round: %+v", v)
	}
	if v := s.OnAction(5, 0, sim.Action{}); v.Slow != 0 {
		t.Fatalf("fired for wrong pid: %+v", v)
	}
	if v := s.OnAction(5, 1, sim.Action{}); v.Slow != 4 {
		t.Fatalf("verdict %+v, want Slow=4", v)
	}
	if v := s.OnAction(9, 1, sim.Action{}); v.Slow != 0 {
		t.Fatalf("fired twice: %+v", v)
	}
}

// TestScheduleRestarts pins the Restarter view of a schedule: only
// round-triggered crashes with a strictly later RestartAt are announced
// (action-triggered restarts ride the crash verdict), sorted per round.
func TestScheduleRestarts(t *testing.T) {
	s := NewSchedule(
		Crash{PID: 2, Round: 1, RestartAt: 5},
		Crash{PID: 0, Round: 2, RestartAt: 5},
		Crash{PID: 1, Round: 3},                  // never revived
		Crash{PID: 3, AtAction: 2, RestartAt: 9}, // rides the verdict
		Crash{PID: 4, Round: 7, RestartAt: 7},    // not strictly later: ignored
	)
	if got := s.ScheduledRestarts(5); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("ScheduledRestarts(5) = %v", got)
	}
	if got := s.ScheduledRestarts(9); got != nil {
		t.Fatalf("action-crash restart announced: %v", got)
	}
	if n := s.NextScheduledRestart(-1); n != 5 {
		t.Fatalf("NextScheduledRestart(-1) = %d", n)
	}
	if n := s.NextScheduledRestart(5); n != -1 {
		t.Fatalf("NextScheduledRestart(5) = %d", n)
	}
	v := s.OnAction(0, 3, sim.Action{})
	if !v.Crash {
		v = s.OnAction(1, 3, sim.Action{})
	}
	if !v.Crash || v.RestartAt != 9 {
		t.Fatalf("action-crash verdict %+v, want RestartAt 9", v)
	}
}

// TestChainDeliveryAndRestarts pins the Chain's composition rules for the
// extended alphabet: every delivery-aware member sees every delivery (no
// short-circuit, so composed rng streams stay replayable), a message dies
// if any member drops it, and restart schedules union across members.
func TestChainDeliveryAndRestarts(t *testing.T) {
	c := NewChain(
		NewLoss(1, 1, 7), // drops exactly the first delivery
		NewLoss(1, 2, 7),
		NewSchedule(Crash{PID: 0, Round: 1, RestartAt: 4}),
		NewSchedule(Crash{PID: 1, Round: 2, RestartAt: 6}),
	)
	if c.OnDeliver(0, sim.Message{}) {
		t.Fatal("both members drop, chain delivered")
	}
	if c.OnDeliver(0, sim.Message{}) {
		t.Fatal("second member still drops, chain delivered")
	}
	if !c.OnDeliver(0, sim.Message{}) {
		t.Fatal("all members exhausted, chain dropped")
	}
	if got := c.ScheduledRestarts(4); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("ScheduledRestarts(4) = %v", got)
	}
	if n := c.NextScheduledRestart(-1); n != 4 {
		t.Fatalf("NextScheduledRestart(-1) = %d", n)
	}
	if n := c.NextScheduledRestart(4); n != 6 {
		t.Fatalf("NextScheduledRestart(4) = %d", n)
	}
	slow := NewChain(&Slowdown{PID: 0, Round: 0, Factor: 3})
	if v := slow.OnAction(0, 0, sim.Action{}); v.Slow != 3 {
		t.Fatalf("chain swallowed the slowdown verdict: %+v", v)
	}
}

// TestRandomCrashesCounter covers the Crashes accessor alongside the
// bounded-injection contract.
func TestRandomCrashesCounter(t *testing.T) {
	r := NewRandom(1, 2, 5)
	for i := 0; i < 5; i++ {
		r.OnAction(0, i, sim.Action{WorkUnit: 1})
	}
	if r.Crashes() != 2 {
		t.Fatalf("Crashes() = %d, want the cap 2", r.Crashes())
	}
}
