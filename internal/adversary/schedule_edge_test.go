package adversary

import (
	"testing"

	"repro/internal/sim"
)

// Engine-level edge cases for Schedule: the crash plan corners that unit
// tests on OnAction alone cannot reach — round-0 crashes before any action,
// duplicate PIDs in one round, Deliver masks shorter and longer than the
// send list, and action triggers on processes that never act.

// workerScript performs units 1..n, broadcasting a marker to every other
// process after each unit.
func workerScript(n, t int) sim.Script {
	return func(p *sim.Proc) {
		var to []int
		for i := 0; i < t; i++ {
			to = append(to, i)
		}
		for u := 1; u <= n; u++ {
			p.StepWork(u)
			p.StepSend(p.Broadcast(to, u)...)
		}
	}
}

// listenerScript drains mail until the deadline, then halts.
func listenerScript(deadline int64) sim.Script {
	return func(p *sim.Proc) {
		for p.Now() < deadline {
			p.WaitUntil(deadline)
		}
	}
}

func runSchedule(t *testing.T, cfg sim.Config, scripts func(int) sim.Script) sim.Result {
	t.Helper()
	res, err := sim.New(cfg, scripts).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScheduleCrashAtRoundZero kills a process at the start of round 0: it
// must retire having committed no actions at all.
func TestScheduleCrashAtRoundZero(t *testing.T) {
	res := runSchedule(t, sim.Config{
		NumProcs: 2, NumUnits: 3,
		Adversary: NewSchedule(Crash{PID: 0, Round: 0}),
	}, func(id int) sim.Script {
		if id == 0 {
			return workerScript(3, 2)
		}
		return listenerScript(10)
	})
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	p0 := res.PerProc[0]
	if p0.Status != sim.StatusCrashed || p0.RetireRound != 0 {
		t.Fatalf("proc 0: %+v, want crashed at round 0", p0)
	}
	if p0.Actions != 0 || p0.Work != 0 || p0.Sent != 0 {
		t.Fatalf("proc 0 acted before the round-0 crash: %+v", p0)
	}
}

// TestScheduleDuplicatePIDOneRound plans the same victim twice in the same
// round: the engine must count a single crash (the second entry sees a
// non-running process).
func TestScheduleDuplicatePIDOneRound(t *testing.T) {
	s := NewSchedule(Crash{PID: 1, Round: 2}, Crash{PID: 1, Round: 2})
	if got := s.ScheduledCrashes(2); len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("ScheduledCrashes(2) = %v (duplicates are the adversary's problem to expose)", got)
	}
	res := runSchedule(t, sim.Config{
		NumProcs: 2, NumUnits: 4,
		Adversary: NewSchedule(Crash{PID: 1, Round: 2}, Crash{PID: 1, Round: 2}),
	}, func(id int) sim.Script {
		return workerScript(4, 2)
	})
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1 despite the duplicate plan", res.Crashes)
	}
	if res.PerProc[1].Status != sim.StatusCrashed {
		t.Fatalf("proc 1: %+v", res.PerProc[1])
	}
}

// TestScheduleDeliverMaskShorter crashes mid-broadcast with a mask shorter
// than the send list: unmasked sends are suppressed.
func TestScheduleDeliverMaskShorter(t *testing.T) {
	res := runSchedule(t, sim.Config{
		NumProcs: 4, NumUnits: 1,
		Adversary: NewSchedule(Crash{
			PID: 0, AtAction: 2, KeepWork: true, Deliver: []bool{true},
		}),
	}, func(id int) sim.Script {
		if id == 0 {
			return workerScript(1, 4) // action 2 is the 3-recipient broadcast
		}
		return listenerScript(5)
	})
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	// Only the first of the three sends survives the one-true mask.
	if res.Messages != 1 || res.PerProc[0].Sent != 1 {
		t.Fatalf("messages = %d (proc 0 sent %d), want 1 delivered", res.Messages, res.PerProc[0].Sent)
	}
	if res.WorkTotal != 1 {
		t.Fatalf("work = %d, want the kept unit", res.WorkTotal)
	}
}

// TestScheduleDeliverMaskLonger uses a mask longer than the send list: the
// extra entries are ignored, every real send is delivered, nothing panics,
// and KeepWork = false discards the work unit of the crashed action.
func TestScheduleDeliverMaskLonger(t *testing.T) {
	res := runSchedule(t, sim.Config{
		NumProcs: 3, NumUnits: 1,
		Adversary: NewSchedule(Crash{
			PID: 0, AtAction: 1, KeepWork: false,
			Deliver: []bool{true, true, true, true, true, true},
		}),
	}, func(id int) sim.Script {
		if id == 0 {
			return func(p *sim.Proc) { // one combined work+broadcast action
				p.StepWorkSend(1, sim.Send{To: 1, Payload: 1}, sim.Send{To: 2, Payload: 1})
			}
		}
		return listenerScript(5)
	})
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	if res.Messages != 2 {
		t.Fatalf("messages = %d, want both real sends delivered", res.Messages)
	}
	if res.WorkTotal != 0 {
		t.Fatalf("work = %d, want 0 (KeepWork = false on the crashed action)", res.WorkTotal)
	}
}

// TestScheduleActionCrashOnSilentPID plans an action-triggered crash for a
// process that never commits an action: the crash never fires and the run
// completes untouched.
func TestScheduleActionCrashOnSilentPID(t *testing.T) {
	res := runSchedule(t, sim.Config{
		NumProcs: 2, NumUnits: 2,
		Adversary: NewSchedule(Crash{PID: 1, AtAction: 1, KeepWork: true}),
	}, func(id int) sim.Script {
		if id == 0 {
			return workerScript(2, 1) // broadcasts reach nobody: t=1 list
		}
		return func(p *sim.Proc) {} // halts immediately, zero actions
	})
	if res.Crashes != 0 {
		t.Fatalf("crashes = %d, want 0 (victim never acts)", res.Crashes)
	}
	if res.PerProc[1].Status != sim.StatusTerminated || res.PerProc[1].Actions != 0 {
		t.Fatalf("proc 1: %+v", res.PerProc[1])
	}
	if !res.Complete() {
		t.Fatal("run incomplete")
	}
}

// TestScheduleActionCrashOutOfRangePID plans a crash for a PID outside the
// process set: it must be inert.
func TestScheduleActionCrashOutOfRangePID(t *testing.T) {
	res := runSchedule(t, sim.Config{
		NumProcs: 2, NumUnits: 2,
		Adversary: NewSchedule(Crash{PID: 9, AtAction: 1}, Crash{PID: 7, Round: 1}),
	}, func(id int) sim.Script {
		return workerScript(2, 2)
	})
	if res.Crashes != 0 || !res.Complete() {
		t.Fatalf("crashes = %d complete = %v, want inert plan", res.Crashes, res.Complete())
	}
}
