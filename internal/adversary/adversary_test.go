package adversary

import (
	"testing"

	"repro/internal/sim"
)

type kindPayload string

func (k kindPayload) Kind() string { return string(k) }

func TestScheduleActionCrash(t *testing.T) {
	s := NewSchedule(Crash{PID: 3, AtAction: 2, KeepWork: true})
	if v := s.OnAction(0, 3, sim.Action{WorkUnit: 1}); v.Crash {
		t.Fatal("crashed on first action, want second")
	}
	v := s.OnAction(1, 3, sim.Action{WorkUnit: 2})
	if !v.Crash || !v.KeepWork {
		t.Fatalf("verdict = %+v, want crash with kept work", v)
	}
	if v := s.OnAction(2, 4, sim.Action{}); v.Crash {
		t.Fatal("other pid crashed")
	}
}

func TestScheduleRoundCrash(t *testing.T) {
	s := NewSchedule(Crash{PID: 1, Round: 5}, Crash{PID: 2, Round: 5}, Crash{PID: 0, Round: 9})
	got := s.ScheduledCrashes(5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ScheduledCrashes(5) = %v", got)
	}
	if n := s.NextScheduledCrash(0); n != 5 {
		t.Fatalf("NextScheduledCrash(0) = %d, want 5", n)
	}
	if n := s.NextScheduledCrash(5); n != 9 {
		t.Fatalf("NextScheduledCrash(5) = %d, want 9", n)
	}
	if n := s.NextScheduledCrash(9); n != -1 {
		t.Fatalf("NextScheduledCrash(9) = %d, want -1", n)
	}
}

func TestRandomDeterministicAndBounded(t *testing.T) {
	mk := func() []bool {
		r := NewRandom(0.5, 3, 42)
		var out []bool
		for i := 0; i < 50; i++ {
			v := r.OnAction(int64(i), i%7, sim.Action{WorkUnit: 1, Sends: []sim.Send{{To: 0}}})
			out = append(out, v.Crash)
		}
		return out
	}
	a, b := mk(), mk()
	crashes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random adversary not reproducible")
		}
		if a[i] {
			crashes++
		}
	}
	if crashes > 3 {
		t.Fatalf("crashes = %d, want <= 3", crashes)
	}
	if crashes == 0 {
		t.Fatal("p=0.5 over 50 actions should crash at least once")
	}
}

func TestCascadeCrashesAfterWorkAtNextSend(t *testing.T) {
	c := NewCascade(2, 1)
	// First work unit: survive.
	if v := c.OnAction(0, 0, sim.Action{WorkUnit: 1}); v.Crash {
		t.Fatal("crashed too early")
	}
	// Second work unit: threshold reached, but no send yet.
	if v := c.OnAction(1, 0, sim.Action{WorkUnit: 2}); v.Crash {
		t.Fatal("crashed on work action; should wait for the send")
	}
	// The checkpoint send: crash, suppressing the broadcast.
	v := c.OnAction(2, 0, sim.Action{Sends: []sim.Send{{To: 1}, {To: 2}}})
	if !v.Crash || !v.KeepWork || len(v.Deliver) != 0 {
		t.Fatalf("verdict = %+v, want crash keeping work delivering nothing", v)
	}
	// Budget exhausted: the next process survives.
	c.OnAction(3, 1, sim.Action{WorkUnit: 3})
	c.OnAction(4, 1, sim.Action{WorkUnit: 4})
	if v := c.OnAction(5, 1, sim.Action{Sends: []sim.Send{{To: 2}}}); v.Crash {
		t.Fatal("exceeded crash budget")
	}
	if c.Crashes() != 1 {
		t.Fatalf("Crashes() = %d, want 1", c.Crashes())
	}
}

func TestKindCountPrefixDelivery(t *testing.T) {
	k := &KindCount{PID: 0, Kind: "full", N: 2, Prefix: 1}
	send := sim.Action{Sends: []sim.Send{
		{To: 1, Payload: kindPayload("full")},
		{To: 2, Payload: kindPayload("full")},
		{To: 3, Payload: kindPayload("full")},
	}}
	if v := k.OnAction(0, 0, send); v.Crash {
		t.Fatal("crashed on first matching send, want second")
	}
	v := k.OnAction(1, 0, send)
	if !v.Crash {
		t.Fatal("want crash on second matching send")
	}
	if !v.Deliver[0] || v.Deliver[1] || v.Deliver[2] {
		t.Fatalf("Deliver = %v, want prefix of 1", v.Deliver)
	}
	// Non-matching kinds don't count.
	k2 := &KindCount{PID: 0, Kind: "full", N: 1}
	other := sim.Action{Sends: []sim.Send{{To: 1, Payload: kindPayload("partial")}}}
	if v := k2.OnAction(0, 0, other); v.Crash {
		t.Fatal("crashed on non-matching kind")
	}
}

func TestChainComposition(t *testing.T) {
	c := NewChain(
		NewSchedule(Crash{PID: 0, Round: 3}),
		NewSchedule(Crash{PID: 1, Round: 7}, Crash{PID: 2, AtAction: 1}),
	)
	if got := c.ScheduledCrashes(3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ScheduledCrashes(3) = %v", got)
	}
	if n := c.NextScheduledCrash(3); n != 7 {
		t.Fatalf("NextScheduledCrash(3) = %d, want 7", n)
	}
	if v := c.OnAction(0, 2, sim.Action{}); !v.Crash {
		t.Fatal("chained action crash missing")
	}
	if v := c.OnAction(0, 5, sim.Action{}); v.Crash {
		t.Fatal("unexpected crash")
	}
}

func TestNone(t *testing.T) {
	adv := None()
	if v := adv.OnAction(0, 0, sim.Action{WorkUnit: 1}); v.Crash {
		t.Fatal("None crashed")
	}
	if n := adv.NextScheduledCrash(0); n != -1 {
		t.Fatalf("NextScheduledCrash = %d", n)
	}
}
