package core

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

func runB(t *testing.T, n, tt int, adv sim.Adversary) sim.Result {
	t.Helper()
	scripts, err := ProtocolBScripts(ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatalf("scripts: %v", err)
	}
	res, err := Run(n, tt, scripts, RunOptions{
		Adversary: adv, MaxActive: 1, DetailedMetrics: true,
	})
	if err != nil {
		t.Fatalf("run n=%d t=%d: %v", n, tt, err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatalf("n=%d t=%d: %v", n, tt, err)
	}
	return res
}

func TestProtocolBFailureFree(t *testing.T) {
	res := runB(t, 64, 16, nil)
	if res.WorkTotal != 64 {
		t.Fatalf("failure-free work = %d, want 64", res.WorkTotal)
	}
	if res.Survivors != 16 {
		t.Fatalf("survivors = %d, want 16", res.Survivors)
	}
	if res.MessagesByKind["go-ahead"] != 0 {
		t.Fatalf("go-aheads sent in failure-free run: %d", res.MessagesByKind["go-ahead"])
	}
}

func TestProtocolBTheorem28Bounds(t *testing.T) {
	// Theorem 2.8: ≤ 3n work, ≤ 10t√t messages, all retired by O(n + t)
	// rounds (our time bound uses the model-adjusted constants: the chain
	// bound n + 3t of useful rounds plus TT(t-1, 0) useless rounds).
	cases := []struct{ n, t int }{
		{16, 4}, {64, 16}, {144, 9}, {256, 16}, {100, 25},
	}
	for _, c := range cases {
		advs := map[string]sim.Adversary{
			"none":    nil,
			"cascade": adversary.NewCascade(max(1, c.n/c.t), c.t-1),
			"random":  adversary.NewRandom(0.02, c.t-1, 11),
		}
		for name, adv := range advs {
			res := runB(t, c.n, c.t, adv)
			nPrime := max(c.n, c.t)
			if res.WorkTotal > int64(3*nPrime) {
				t.Errorf("n=%d t=%d %s: work %d > 3n'=%d", c.n, c.t, name, res.WorkTotal, 3*nPrime)
			}
			want := 10.0 * float64(c.t) * math.Sqrt(float64(c.t))
			if float64(res.Messages) > want {
				t.Errorf("n=%d t=%d %s: messages %d > 10t√t=%.0f", c.n, c.t, name, res.Messages, want)
			}
			tm := newABTimeouts(c.n, c.t)
			timeBound := int64(c.n) + 3*int64(c.t) + tm.tt(c.t-1, 0) + tm.activeLife()
			if res.Rounds > timeBound {
				t.Errorf("n=%d t=%d %s: rounds %d > bound %d", c.n, c.t, name, res.Rounds, timeBound)
			}
		}
	}
}

func TestProtocolBMuchFasterThanAUnderCascade(t *testing.T) {
	// The whole point of B: its running time is O(n + t) while A's is
	// O(nt + t²), because takeovers are triggered by polling rather than by
	// absolute deadlines.
	n, tt := 256, 16
	mk := func(scriptsOf func(ABConfig) (func(int) sim.Script, error)) int64 {
		scripts, err := scriptsOf(ABConfig{N: n, T: tt})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(n, tt, scripts, RunOptions{
			Adversary: adversary.NewCascade(n/tt, tt-1), MaxActive: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	roundsA := mk(ProtocolAScripts)
	roundsB := mk(ProtocolBScripts)
	if roundsB*4 > roundsA {
		t.Fatalf("B (%d rounds) not clearly faster than A (%d rounds) under cascade",
			roundsB, roundsA)
	}
}

func TestProtocolBGoAheadWakesLowestAliveProcess(t *testing.T) {
	// Kill process 0 after one subchunk (work kept, checkpoint suppressed).
	// Process 1 must be the one that takes over — woken by a go-ahead or by
	// its own PTO deadline — and no higher process should ever work.
	n, tt := 64, 16
	adv := adversary.NewCascade(n/tt, 1)
	res := runB(t, n, tt, adv)
	if res.PerProc[1].Work == 0 {
		t.Fatal("process 1 did not take over")
	}
	for pid := 2; pid < tt; pid++ {
		if res.PerProc[pid].Work != 0 {
			t.Fatalf("process %d worked; takeover order broken", pid)
		}
	}
}

func TestProtocolBCrossGroupTakeover(t *testing.T) {
	// Crash all of group 1 (processes 0..3) at round 0 except let process 0
	// do one subchunk first. A process of group 2 must take over after the
	// group timeout; the single-active invariant is checked throughout.
	n, tt := 64, 16
	crashes := []adversary.Crash{
		{PID: 1, Round: 0}, {PID: 2, Round: 0}, {PID: 3, Round: 0},
	}
	adv := adversary.NewChain(
		adversary.NewSchedule(crashes...),
		adversary.NewCascade(n/tt, 1),
	)
	res := runB(t, n, tt, adv)
	if res.PerProc[4].Work == 0 {
		t.Fatal("process 4 (first of group 2) did not take over")
	}
}

func TestProtocolBRandomCrashSweep(t *testing.T) {
	// Property-style sweep: many seeds, correctness + invariant always hold.
	for seed := int64(0); seed < 25; seed++ {
		runB(t, 48, 16, adversary.NewRandom(0.05, 15, seed))
	}
}

func TestProtocolBRaggedParameters(t *testing.T) {
	cases := []struct{ n, t int }{
		{10, 3}, {17, 5}, {33, 7}, {7, 7}, {5, 10}, {1, 2}, {12, 2},
	}
	for _, c := range cases {
		runB(t, c.n, c.t, nil)
		runB(t, c.n, c.t, adversary.NewRandom(0.08, c.t-1, 5))
	}
}

func TestProtocolBAllButOneCrash(t *testing.T) {
	n, tt := 32, 9
	var crashes []adversary.Crash
	for pid := 0; pid < tt-1; pid++ {
		crashes = append(crashes, adversary.Crash{PID: pid, Round: 0})
	}
	res := runB(t, n, tt, adversary.NewSchedule(crashes...))
	if res.PerProc[tt-1].Work != int64(n) {
		t.Fatalf("survivor work = %d, want %d", res.PerProc[tt-1].Work, n)
	}
	// B's survivor should take over in O(n + t) rounds, not O(nt).
	tm := newABTimeouts(n, tt)
	bound := tm.tt(tt-1, 0) + tm.activeLife()
	if res.Rounds > bound {
		t.Fatalf("rounds = %d > %d", res.Rounds, bound)
	}
}

func TestProtocolBGoAheadsOnlyUnderFailures(t *testing.T) {
	// go-aheads appear only when a preactive process probes; with a single
	// early crash of process 0, at most the probing of group 1 occurs.
	n, tt := 64, 16
	res := runB(t, n, tt, adversary.NewSchedule(adversary.Crash{PID: 0, Round: 0}))
	ga := res.MessagesByKind["go-ahead"]
	if ga == 0 {
		t.Skip("takeover happened via deadline without probing (valid)")
	}
	if ga > int64(tt) {
		t.Fatalf("go-aheads = %d, want ≤ t", ga)
	}
}
