package core

import "repro/internal/group"

// Worst-case round bounds exported for callers that must pick a
// "predetermined time by which the underlying work protocol is guaranteed to
// have terminated" (the §5 Byzantine agreement reduction) or a simulation
// round cap. All bounds use this reproduction's model-adjusted constants and
// saturate at sim.Forever.

// ProtocolARoundBound bounds the retirement round of every process in a
// Protocol A run started at round 0 (Theorem 2.3(c): nt + 3t² with paper
// constants).
func ProtocolARoundBound(n, t int) int64 {
	tm := newABTimeouts(n, t)
	return satMul(int64(t), tm.activeLife())
}

// ProtocolBRoundBound bounds the retirement round of every process in a
// Protocol B run started at round 0 (Theorem 2.8(c): 3n + 8t with paper
// constants): the chain performs at most n + 3t useful rounds plus the
// transition time of the last possible takeover plus one active lifetime.
func ProtocolBRoundBound(n, t int) int64 {
	tm := newABTimeouts(n, t)
	b := satAdd(int64(n)+3*int64(t), tm.tt(t-1, 0))
	return satAdd(b, tm.activeLife())
}

// ProtocolCRoundBound bounds the retirement round of every process in a
// Protocol C run started at round 0 (Theorem 3.8(c) / Corollary 3.9:
// t·K·(n+t)·2^(n+t)).
func ProtocolCRoundBound(n, t, reportEvery int) int64 {
	ct := newCTimeouts(n, t, reportEvery)
	return satMul(int64(t), satMul(ct.k, satMul(int64(n+t), pow2(n+t))))
}

// ProtocolDRoundBound bounds the retirement round of every process in a
// Protocol D run with at most f failures (Theorem 4.1: (f+1)n/t + 4f + 2,
// plus the Protocol A revert tail when more than half a phase's processes
// die).
func ProtocolDRoundBound(n, t, f int) int64 {
	w := int64(subchunkWidth(n, t))
	base := satAdd(satMul(int64(f+1), w), int64(4*f+2))
	return satAdd(base, ProtocolARoundBound(n, t))
}

// GossipFanout is the default gossip fanout: ⌈log₂ t⌉ + 1 peers per epoch,
// clamped to the t-1 that exist. 0 for a single process.
func GossipFanout(t int) int {
	if t <= 1 {
		return 0
	}
	d := group.CeilLog2(t) + 1
	if d > t-1 {
		d = t - 1
	}
	return d
}

// GossipCoverEpochs is the rotation cover time D = ⌈(t-1)/fanout⌉: any D
// consecutive gossip windows of one process reach every peer.
func GossipCoverEpochs(t int) int {
	d := GossipFanout(t)
	if d == 0 {
		return 0
	}
	return (t - 2 + d) / d
}

// gossipStale bounds the epochs a performed unit can stay unknown to any
// live peer: the cover time, one epoch for the confirm step, plus lag extra
// epochs of queueing delay when a bandwidth cap defers rumor transmissions
// (0 uncapped; 1 for caps of at least half the fanout, which drain each
// epoch's backlog within the next round).
func gossipStale(t, lag int) int64 {
	return int64(GossipCoverEpochs(t) + 2 + lag)
}

// GossipWorkBound bounds total work in a gossip run with at most f
// failures and rumor queueing lag (see gossipStale): every process performs
// only units missing from its view, so duplicated work is confined to the
// staleness window — W ≤ n + 3·(t+f)·stale — and a process never repeats a
// unit it confirmed, so W ≤ tn + f holds unconditionally (the +f covers
// restarted processes retrying their in-flight unit). The bound is the
// smaller of the two; the constant 3 is this reproduction's model-adjusted
// slack, certified over the X7 schedule spaces.
func GossipWorkBound(n, t, f, lag int) int64 {
	uncond := satAdd(satMul(int64(t), int64(n)), int64(f))
	windowed := satAdd(int64(n), satMul(3, satMul(int64(t+f), gossipStale(t, lag))))
	return min(uncond, windowed)
}

// GossipMessageBound bounds total messages: each live process sends at most
// fanout messages per epoch, and runs for at most work_i + stale + lap
// epochs, so M ≤ fanout · (W + t·(stale+D) + f).
func GossipMessageBound(n, t, f, lag int) int64 {
	d := int64(GossipFanout(t))
	epochs := satAdd(GossipWorkBound(n, t, f, lag),
		satAdd(satMul(int64(t), satAdd(gossipStale(t, lag), int64(GossipCoverEpochs(t)))), int64(f)))
	return satMul(d, epochs)
}

// GossipRoundBound bounds the retirement round of every process in a gossip
// run with at most f failures: a live process's view completes within
// n + f work epochs by its own work alone, the retirement lap adds D, and
// two rounds per epoch plus restart-delay slack gives
// 2·(f+1)·(n + D + lag + 4).
func GossipRoundBound(n, t, f, lag int) int64 {
	per := satMul(2, int64(n+GossipCoverEpochs(t)+lag+4))
	return satMul(int64(f+1), per)
}
