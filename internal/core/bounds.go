package core

// Worst-case round bounds exported for callers that must pick a
// "predetermined time by which the underlying work protocol is guaranteed to
// have terminated" (the §5 Byzantine agreement reduction) or a simulation
// round cap. All bounds use this reproduction's model-adjusted constants and
// saturate at sim.Forever.

// ProtocolARoundBound bounds the retirement round of every process in a
// Protocol A run started at round 0 (Theorem 2.3(c): nt + 3t² with paper
// constants).
func ProtocolARoundBound(n, t int) int64 {
	tm := newABTimeouts(n, t)
	return satMul(int64(t), tm.activeLife())
}

// ProtocolBRoundBound bounds the retirement round of every process in a
// Protocol B run started at round 0 (Theorem 2.8(c): 3n + 8t with paper
// constants): the chain performs at most n + 3t useful rounds plus the
// transition time of the last possible takeover plus one active lifetime.
func ProtocolBRoundBound(n, t int) int64 {
	tm := newABTimeouts(n, t)
	b := satAdd(int64(n)+3*int64(t), tm.tt(t-1, 0))
	return satAdd(b, tm.activeLife())
}

// ProtocolCRoundBound bounds the retirement round of every process in a
// Protocol C run started at round 0 (Theorem 3.8(c) / Corollary 3.9:
// t·K·(n+t)·2^(n+t)).
func ProtocolCRoundBound(n, t, reportEvery int) int64 {
	ct := newCTimeouts(n, t, reportEvery)
	return satMul(int64(t), satMul(ct.k, satMul(int64(n+t), pow2(n+t))))
}

// ProtocolDRoundBound bounds the retirement round of every process in a
// Protocol D run with at most f failures (Theorem 4.1: (f+1)n/t + 4f + 2,
// plus the Protocol A revert tail when more than half a phase's processes
// die).
func ProtocolDRoundBound(n, t, f int) int64 {
	w := int64(subchunkWidth(n, t))
	base := satAdd(satMul(int64(f+1), w), int64(4*f+2))
	return satAdd(base, ProtocolARoundBound(n, t))
}
