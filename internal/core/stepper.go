package core

// The protocols in this package exist on both simulator substrates: as
// blocking scripts (protocolX.go, one goroutine per process) and as explicit
// state machines on sim's zero-goroutine Stepper interface (protocolX_step.go).
// The machines are literal transliterations of the scripts — every yield
// point of the script is a return of the corresponding machine, in the same
// round with the same action — so the two substrates produce bit-identical
// Results (enforced by TestSubstrateEquivalence).
//
// The only configuration the machines cannot express is a custom
// WorkExecutor, which is an arbitrary blocking function; such configs (and
// layered protocols using SetTap) stay on the script substrate. The
// ProtocolXProcs builders pick automatically.

import (
	"fmt"

	"repro/internal/sim"
)

// machine is a protocol state machine: step returns the process's next yield,
// or done=true when the process terminates voluntarily.
type machine interface {
	step(p *sim.Proc) (sim.Yield, bool)
}

// machineYield adapts one machine step to the Stepper contract, converting
// done into halt. Each machine type implements sim.Stepper directly through
// it, so a process costs one machine allocation and no interface box.
func machineYield(m machine, p *sim.Proc) sim.Yield {
	y, done := m.step(p)
	if done {
		return sim.Yield{Kind: sim.YieldHalt}
	}
	return y
}

func sleepYield(until int64) sim.Yield {
	return sim.Yield{Kind: sim.YieldSleep, Until: until}
}

func sendYield(sends []sim.Send) sim.Yield {
	return sim.Yield{Kind: sim.YieldAction, Action: sim.Action{Sends: sends}}
}

// broadcastYield commits one payload to every PID in to except the caller,
// as a single broadcast record on the engine's message plane.
func broadcastYield(p *sim.Proc, to []int, payload any) sim.Yield {
	return sim.Yield{Kind: sim.YieldAction, Action: sim.Action{Broadcast: p.BroadcastTo(to, payload)}}
}

func workYield(unit int) sim.Yield {
	return sim.Yield{Kind: sim.YieldAction, Action: sim.Action{WorkUnit: unit}}
}

func idleYield() sim.Yield {
	return sim.Yield{Kind: sim.YieldAction}
}

// shouldSleep implements the decision half of Proc.WaitUntil for machines: a
// process waits (sleeps) exactly when it has no undrained mail and the
// deadline has not arrived. Machines place this guard at the top of each
// waiting state; since the engine re-steps the process only on mail or at
// the wake time, the guard is stateless.
func shouldSleep(p *sim.Proc, deadline int64) bool {
	return !p.HasMail() && p.Now() < deadline
}

// dwMachine is the DoWork procedure of Protocols A and B (Fig. 1, the body
// of abState.doWork) as a state machine: takeover chores implied by the last
// ordinary message, then the remaining subchunks with partial and full
// checkpoints. The caller runs init on takeover and then forwards step until
// done.
type dwMachine struct {
	ab *abState
	j  int
	gj int

	op int // current micro-op (dwOp* below)

	sc    int // last completed subchunk in the main loop (work resumes at sc+1)
	u, hi int // work cursor: next logical unit and end of current subchunk

	// In-flight full checkpoint: inform groups fcG..G that subchunk fcC is
	// done, echoing each notification to the own group's remainder; fcRet is
	// the op to resume afterwards.
	fcC, fcG, fcHalfDone int
	fcRet                int

	// Takeover chores decoded from the last ordinary message.
	c          int    // subchunk the last message reported
	hasEcho    bool   // re-echo echoPay before the chore full checkpoint
	echoPay    FullCP // payload of that echo
	hasPartial bool   // complete the partial checkpoint of c
	hasFull    bool   // run a chore full checkpoint from group fullFrom
	fullFrom   int

	// Precomputed recipient PID lists (message order is position order, as in
	// assignment.pids).
	remPIDs   []int   // engine PIDs of j's group remainder
	groupPIDs [][]int // engine PIDs per group, 1-indexed
}

const (
	dwChorePartial = iota
	dwChoreEcho
	dwChoreFull
	dwSubNext
	dwWork
	dwPartial
	dwFullCheck
	dwFullGroup
	dwFullEcho
	dwDone
)

// init starts a takeover: the machine's next steps replay doWork(p, j, last).
func (m *dwMachine) init(ab *abState, p *sim.Proc, j int, last *ordMsg) {
	p.SetActive(true)
	m.ab, m.j, m.gj = ab, j, ab.q.GroupOf(j)
	m.remPIDs = ab.as.pids(ab.q.Remainder(j))
	m.groupPIDs = ab.pidsByGroup()
	m.hasEcho, m.hasPartial, m.hasFull = false, false, false
	switch {
	case last == nil:
		// Never heard anything: all lower processes died silently; start
		// from the beginning with no chores.
		m.c = 0
	case !last.full:
		// Last message "(c)": complete the partial checkpoint of c; if c is
		// a chunk boundary, redo its full checkpoint from the first later
		// group.
		m.c = last.c
		m.hasPartial = true
		m.hasFull = ab.chunkBoundary(m.c)
		m.fullFrom = m.gj + 1
	case ab.q.GroupOf(last.from) != m.gj:
		// "(c, g)" from outside the group: then g = gⱼ (the sender was
		// informing j's group). Inform the rest of the group and proceed
		// with the full checkpoint from group gⱼ+1 (paper §2.1 prose).
		m.c = last.c
		m.hasPartial = true
		m.hasFull = true
		m.fullFrom = m.gj + 1
	default:
		// "(c, g)" from within the group: the sender had informed group g
		// and was checkpointing that fact. Re-echo it to the remainder of
		// the group, then continue the full checkpoint from group g+1.
		m.c = last.c
		m.hasEcho = true
		m.echoPay = FullCP{C: last.c, G: last.g}
		m.hasFull = true
		m.fullFrom = last.g + 1
	}
	m.sc = m.c
	m.op = dwChorePartial
}

// step advances to the next round-consuming action; zero-round operations
// (empty broadcasts, suppressed partial checkpoints, empty subchunks) fall
// through inside the loop.
func (m *dwMachine) step(p *sim.Proc) (sim.Yield, bool) {
	for {
		switch m.op {
		case dwChorePartial:
			m.op = dwChoreEcho
			if m.hasPartial {
				if y, ok := m.partialYield(p, m.c); ok {
					return y, false
				}
			}
		case dwChoreEcho:
			m.op = dwChoreFull
			if m.hasEcho {
				if y, ok := m.echoYield(p, m.echoPay); ok {
					return y, false
				}
			}
		case dwChoreFull:
			if m.hasFull {
				m.fcC, m.fcG, m.fcRet = m.c, m.fullFrom, dwSubNext
				m.op = dwFullGroup
			} else {
				m.op = dwSubNext
			}
		case dwSubNext:
			m.sc++
			if m.sc > m.ab.tm.p {
				return sim.Yield{}, true
			}
			m.u, m.hi = subchunkRange(m.ab.cfg.N, m.ab.tm.p, m.sc)
			m.op = dwWork
		case dwWork:
			if m.u > m.hi {
				m.op = dwPartial
				continue
			}
			u := m.u
			m.u++
			return workYield(m.ab.as.unitID(u)), false
		case dwPartial:
			m.op = dwFullCheck
			if y, ok := m.partialYield(p, m.sc); ok {
				return y, false
			}
		case dwFullCheck:
			if m.ab.chunkBoundary(m.sc) {
				m.fcC, m.fcG, m.fcRet = m.sc, m.gj+1, dwSubNext
				m.op = dwFullGroup
			} else {
				m.op = dwSubNext
			}
		case dwFullGroup:
			if m.fcG > m.ab.q.G {
				m.op = m.fcRet
				continue
			}
			m.op = dwFullEcho
			bc := p.BroadcastTo(m.groupPIDs[m.fcG], FullCP{C: m.fcC, G: m.fcG})
			if len(bc.To) > 0 {
				return sim.Yield{Kind: sim.YieldAction, Action: sim.Action{Broadcast: bc}}, false
			}
		case dwFullEcho:
			pay := FullCP{C: m.fcC, G: m.fcG}
			m.fcG++
			m.op = dwFullGroup
			if y, ok := m.echoYield(p, pay); ok {
				return y, false
			}
		case dwDone:
			return sim.Yield{}, true
		}
	}
}

// partialYield builds the partial checkpoint "(c)" to the group remainder;
// ok=false when it is suppressed (FullOnly ablation or empty remainder).
func (m *dwMachine) partialYield(p *sim.Proc, c int) (sim.Yield, bool) {
	if m.ab.cfg.FullOnly {
		return sim.Yield{}, false
	}
	return m.echoYield(p, PartialCP{C: c})
}

// echoYield builds a broadcast of payload to the group remainder; ok=false
// when the remainder is empty (the broadcast consumes no round).
func (m *dwMachine) echoYield(p *sim.Proc, payload any) (sim.Yield, bool) {
	if len(m.remPIDs) == 0 {
		return sim.Yield{}, false
	}
	return broadcastYield(p, m.remPIDs, payload), true
}

// steppable reports whether a work executor can run on the stepper
// substrate: only the default executor (one plain StepWork per unit) can.
func steppable(ex WorkExecutor) bool { return ex == nil }

// errNeedsScripts is returned by ProtocolXSteppers for configs (custom work
// executors) that only the script substrate can express.
var errNeedsScripts = fmt.Errorf("core: config requires the script substrate (custom work executor)")
