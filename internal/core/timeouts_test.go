package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDDLadderSeparation(t *testing.T) {
	// Protocol A's safety hinges on DD(j) − DD(j−1) ≥ active lifetime, so
	// a process activating at its deadline has provably outlived every
	// lower-numbered process's whole tenure.
	for _, c := range []struct{ n, tt int }{{16, 4}, {64, 16}, {100, 25}, {7, 3}, {5, 10}} {
		tm := newABTimeouts(c.n, c.tt)
		for j := 1; j < c.tt; j++ {
			if tm.dd(j)-tm.dd(j-1) < tm.activeLife() {
				t.Fatalf("n=%d t=%d: DD gap at %d below active lifetime", c.n, c.tt, j)
			}
		}
	}
}

func TestActiveLifeCoversCanonicalPaper(t *testing.T) {
	// For canonical parameters the model-adjusted lifetime is the paper's
	// n + 3t plus the documented slack of 2.
	tm := newABTimeouts(64, 16)
	if got := tm.activeLife(); got != 64+3*16+2 {
		t.Fatalf("activeLife = %d, want n+3t+2 = %d", got, 64+3*16+2)
	}
}

func TestTTComposition(t *testing.T) {
	// Lemma 2.5(a): TT(j,k) + TT(l,j) = TT(l,k) for l > j > k, the
	// telescoping identity behind Protocol B's chain argument.
	for _, c := range []struct{ n, tt int }{{64, 16}, {144, 9}, {100, 25}} {
		tm := newABTimeouts(c.n, c.tt)
		for k := 0; k < c.tt; k++ {
			for j := k + 1; j < c.tt; j++ {
				for l := j + 1; l < c.tt; l++ {
					if tm.tt(j, k)+tm.tt(l, j) != tm.tt(l, k) {
						t.Fatalf("n=%d t=%d: TT(%d,%d)+TT(%d,%d) != TT(%d,%d)",
							c.n, c.tt, j, k, l, j, l, k)
					}
				}
			}
		}
	}
}

func TestDDBComposition(t *testing.T) {
	// Lemma 2.5(b): TT(j,k) + DDB(l,j) = DDB(l,k) when g_j < g_l.
	for _, c := range []struct{ n, tt int }{{64, 16}, {144, 9}} {
		tm := newABTimeouts(c.n, c.tt)
		for k := 0; k < c.tt; k++ {
			for j := k + 1; j < c.tt; j++ {
				for l := j + 1; l < c.tt; l++ {
					if tm.q.GroupOf(j) >= tm.q.GroupOf(l) {
						continue
					}
					if tm.tt(j, k)+tm.ddb(l, j) != tm.ddb(l, k) {
						t.Fatalf("n=%d t=%d: Lemma 2.5(b) fails at k=%d j=%d l=%d",
							c.n, c.tt, k, j, l)
					}
				}
			}
		}
	}
}

func TestGTODecreasesWithOffset(t *testing.T) {
	// GTO(i) shrinks as i sits later in its group: fewer go-ahead probes
	// remain ahead of it.
	tm := newABTimeouts(64, 16)
	for i := 1; i < 4; i++ {
		if tm.gto(i) >= tm.gto(i-1) {
			t.Fatalf("GTO(%d) = %d not below GTO(%d) = %d", i, tm.gto(i), i-1, tm.gto(i-1))
		}
	}
}

func TestTimeoutPropertiesQuick(t *testing.T) {
	// Property over random instances: deadlines are positive, DD is
	// strictly increasing, DDB is positive, and TT(j,i) ≥ DDB(j,i) − PTO
	// slackness never goes negative.
	f := func(rawN, rawT uint8) bool {
		n := int(rawN%200) + 1
		tt := int(rawT%30) + 2
		tm := newABTimeouts(n, tt)
		if tm.activeLife() <= 0 || tm.pto() <= 2 {
			return false
		}
		for j := 1; j < tt; j++ {
			if tm.dd(j) <= tm.dd(j-1) {
				return false
			}
			if tm.ddb(j, 0) <= 0 || tm.tt(j, 0) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCDeadlineDominatesActiveLifetime(t *testing.T) {
	// Protocol C's smallest deadline D(i, n+t-1) = K must exceed the time
	// an active process needs to contact everyone (Lemma 3.2's K).
	for _, c := range []struct{ n, tt int }{{16, 4}, {24, 8}, {16, 16}} {
		ct := newCTimeouts(c.n, c.tt, 1)
		minD := ct.deadline(0, c.n+c.tt-1)
		if minD != ct.k {
			t.Fatalf("n=%d t=%d: D(·, max) = %d, want K = %d", c.n, c.tt, minD, ct.k)
		}
	}
}

func TestCVariantKLarger(t *testing.T) {
	// Corollary 3.9's K (report every ⌈n/t⌉ units) exceeds the per-unit K
	// whenever reports are actually batched.
	perUnit := newCTimeouts(64, 8, 1)
	batched := newCTimeouts(64, 8, 8)
	if batched.k <= perUnit.k {
		t.Fatalf("batched K = %d not above per-unit K = %d", batched.k, perUnit.k)
	}
}

func TestRoundBoundsExported(t *testing.T) {
	if ProtocolARoundBound(64, 16) <= 0 || ProtocolBRoundBound(64, 16) <= 0 {
		t.Fatal("A/B bounds must be positive")
	}
	if ProtocolBRoundBound(64, 16) >= ProtocolARoundBound(64, 16) {
		t.Fatal("B's bound should be far below A's")
	}
	if ProtocolCRoundBound(16, 4, 1) <= ProtocolBRoundBound(16, 4) {
		t.Fatal("C's bound should dwarf B's")
	}
	if ProtocolCRoundBound(100, 100, 1) != sim.Forever {
		t.Fatal("C's bound must saturate for large n+t")
	}
	if ProtocolDRoundBound(64, 16, 2) <= 0 {
		t.Fatal("D bound must be positive")
	}
}
