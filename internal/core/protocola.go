package core

import (
	"fmt"

	"repro/internal/group"
	"repro/internal/sim"
)

// ABConfig configures a run of Protocol A or Protocol B.
type ABConfig struct {
	// N is the number of work units, T the number of processes.
	N, T int
	// Assign maps the run onto engine PIDs / unit IDs (identity when zero).
	Assign Assignment
	// StartRound is the round at which the run logically begins (non-zero
	// when a protocol embeds A as a subroutine, e.g. Protocol D's revert).
	StartRound int64
	// Exec performs one unit of work (default: sim.Proc.StepWork).
	Exec WorkExecutor
	// FullOnly disables partial checkpoints (ablation X2): takers then know
	// only the last chunk boundary and must redo up to a whole chunk per
	// takeover instead of a subchunk. Valid only for Protocol A, whose
	// deadlines do not depend on hearing partial checkpoints.
	FullOnly bool
}

// abState is the per-process state shared by Protocols A and B: the group
// structure, timeouts, assignment maps and the DoWork procedure of Fig. 1.
type abState struct {
	cfg ABConfig
	as  assignment
	q   group.Sqrt
	tm  abTimeouts
	ex  WorkExecutor

	// groupPIDs lazily caches per-group engine PID lists for the stepper
	// machines (j-independent, so shared by every process of a run).
	groupPIDs [][]int
}

// pidsByGroup returns the engine PIDs of each group, 1-indexed, computed at
// most once. The ProtocolA/BSteppers builders fill it eagerly because one
// Procs value may back several engines concurrently; Protocol D's revert
// fills it lazily on its private abState inside a single engine goroutine.
func (ab *abState) pidsByGroup() [][]int {
	if ab.groupPIDs == nil {
		g := make([][]int, ab.q.G+1)
		for i := 1; i <= ab.q.G; i++ {
			g[i] = ab.as.pids(ab.q.Members(i))
		}
		ab.groupPIDs = g
	}
	return ab.groupPIDs
}

func newABState(cfg ABConfig) (*abState, error) {
	as, err := resolveAssignment(cfg.N, cfg.T, cfg.Assign)
	if err != nil {
		return nil, err
	}
	ex := cfg.Exec
	if ex == nil {
		ex = defaultExec
	}
	return &abState{
		cfg: cfg,
		as:  as,
		q:   group.NewSqrt(cfg.T),
		tm:  newABTimeouts(cfg.N, cfg.T),
		ex:  ex,
	}, nil
}

// ordMsg is a parsed checkpoint message: "(c)" when full is false, "(c, g)"
// when full is true. from is the logical sender position.
type ordMsg struct {
	from   int
	sentAt int64
	c      int
	full   bool
	g      int
}

// parse classifies an incoming message for positions of this run. It
// returns the parsed ordinary message (valid only when hasOrd), whether the
// message was a go-ahead, and ok=false for non-participants and foreign
// payloads. The ordMsg travels by value: parsing sits on the per-message hot
// path and must not allocate.
func (ab *abState) parse(m sim.Message) (om ordMsg, hasOrd, goAhead, ok bool) {
	from, k := ab.as.pos(m.From)
	if !k {
		return om, false, false, false
	}
	switch pl := m.Payload.(type) {
	case PartialCP:
		return ordMsg{from: from, sentAt: m.SentAt, c: pl.C}, true, false, true
	case FullCP:
		return ordMsg{from: from, sentAt: m.SentAt, c: pl.C, full: true, g: pl.G}, true, false, true
	case GoAhead:
		return om, false, true, true
	default:
		return om, false, false, false
	}
}

// isTermination reports whether an ordinary message tells position j that
// all work is done and j's group has been informed: "(P)" as part of a
// partial checkpoint or "(P, gⱼ)" as part of a full checkpoint.
func (ab *abState) isTermination(om *ordMsg, j int) bool {
	if om.c != ab.tm.p {
		return false
	}
	return !om.full || om.g == ab.q.GroupOf(j)
}

// newer reports whether b is a later ordinary message than a (nil a counts
// as oldest; ties broken toward the lower-numbered sender, following the
// paper's activation-chain convention).
func newer(a, b *ordMsg) bool {
	if a == nil {
		return true
	}
	if b.sentAt != a.sentAt {
		return b.sentAt > a.sentAt
	}
	return b.from < a.from
}

// RunProtocolA executes logical position j of Protocol A inside the given
// process script. It returns when the process terminates.
//
// Protocol A (paper §2.1): work is cut into P = t subchunks of ⌈n/t⌉ units;
// the single active process partial-checkpoints each completed subchunk to
// its own √t-group and full-checkpoints every chunk (√t subchunks) to all
// groups, checkpointing each group-notification back to its own group.
// Process j takes over at the absolute deadline DD(j) = j·(n + 3t), by which
// time all lower-numbered processes have provably retired.
func RunProtocolA(p *sim.Proc, cfg ABConfig, j int) error {
	ab, err := newABState(cfg)
	if err != nil {
		return err
	}
	if j < 0 || j >= cfg.T {
		return fmt.Errorf("core: position %d out of range [0,%d)", j, cfg.T)
	}
	if j == 0 {
		ab.doWork(p, j, nil)
		return nil
	}
	deadline := cfg.StartRound + ab.tm.dd(j)
	var lastVal ordMsg
	var last *ordMsg // nil until the first ordinary message arrives
	for {
		msgs := p.WaitUntil(deadline)
		for i := range msgs {
			om, hasOrd, _, ok := ab.parse(msgs[i])
			if !ok || !hasOrd {
				continue
			}
			if ab.isTermination(&om, j) {
				return nil
			}
			if newer(last, &om) {
				lastVal = om
				last = &lastVal
			}
		}
		if p.Now() >= deadline {
			ab.doWork(p, j, last)
			return nil
		}
	}
}

// doWork is the paper's DoWork procedure (Fig. 1): complete the takeover
// chores implied by the last ordinary message, then perform the remaining
// subchunks with partial and full checkpoints, then retire.
func (ab *abState) doWork(p *sim.Proc, j int, last *ordMsg) {
	p.SetActive(true)
	defer p.SetActive(false)
	gj := ab.q.GroupOf(j)
	c := 0
	switch {
	case last == nil:
		// Never heard anything: all lower processes died silently; start
		// from the beginning with no chores.
	case !last.full:
		// Last message "(c)": complete the partial checkpoint of c; if c is
		// a chunk boundary, redo its full checkpoint from the first later
		// group.
		c = last.c
		ab.partialCheckpoint(p, j, c)
		if ab.chunkBoundary(c) {
			ab.fullCheckpoint(p, j, c, gj+1)
		}
	case ab.q.GroupOf(last.from) != gj:
		// "(c, g)" from outside the group: then g = gⱼ (the sender was
		// informing j's group). Inform the rest of the group and proceed
		// with the full checkpoint from group gⱼ+1 (paper §2.1 prose).
		c = last.c
		ab.partialCheckpoint(p, j, c)
		ab.fullCheckpoint(p, j, c, gj+1)
	default:
		// "(c, g)" from within the group: the sender had informed group g
		// and was checkpointing that fact. Re-echo it to the remainder of
		// the group, then continue the full checkpoint from group g+1.
		c = last.c
		ab.echo(p, j, FullCP{C: c, G: last.g})
		ab.fullCheckpoint(p, j, c, last.g+1)
	}
	for sc := c + 1; sc <= ab.tm.p; sc++ {
		lo, hi := subchunkRange(ab.cfg.N, ab.tm.p, sc)
		for u := lo; u <= hi; u++ {
			ab.ex(p, ab.as.unitID(u))
		}
		ab.partialCheckpoint(p, j, sc)
		if ab.chunkBoundary(sc) {
			ab.fullCheckpoint(p, j, sc, gj+1)
		}
	}
}

// chunkBoundary reports whether subchunk c completes a chunk (a multiple of
// S, or the final subchunk when P is not a multiple of S).
func (ab *abState) chunkBoundary(c int) bool {
	return c > 0 && (c%ab.q.S == 0 || c == ab.tm.p)
}

// partialCheckpoint broadcasts "(c)" to the remainder of j's group
// (one round; skipped when the remainder is empty or under the FullOnly
// ablation).
func (ab *abState) partialCheckpoint(p *sim.Proc, j, c int) {
	if ab.cfg.FullOnly {
		return
	}
	ab.echo(p, j, PartialCP{C: c})
}

// echo broadcasts a payload to the remainder of j's group.
func (ab *abState) echo(p *sim.Proc, j int, payload any) {
	rem := ab.q.Remainder(j)
	if len(rem) == 0 {
		return
	}
	p.StepBroadcast(ab.as.pids(rem), payload)
}

// fullCheckpoint informs groups fromG..G that subchunk c is complete,
// checkpointing each notification back to j's own group (paper Fig. 1).
func (ab *abState) fullCheckpoint(p *sim.Proc, j, c, fromG int) {
	for g := fromG; g <= ab.q.G; g++ {
		pids := ab.as.pids(ab.q.Members(g))
		// Skip the round only when the group is just the sender itself (the
		// broadcast would be empty).
		if len(pids) > 1 || (len(pids) == 1 && pids[0] != p.ID()) {
			p.StepBroadcast(pids, FullCP{C: c, G: g})
		}
		ab.echo(p, j, FullCP{C: c, G: g})
	}
}

// ProtocolAScripts builds the per-process scripts of a standalone Protocol A
// run over engine PIDs 0..T-1.
func ProtocolAScripts(cfg ABConfig) (func(id int) sim.Script, error) {
	if _, err := newABState(cfg); err != nil {
		return nil, err
	}
	return func(id int) sim.Script {
		return func(p *sim.Proc) {
			// Errors cannot occur here: the config was validated above.
			_ = RunProtocolA(p, cfg, id)
		}
	}, nil
}
