package core

import "fmt"

// PartialCP is the paper's "(c)" message: subchunk c is complete, broadcast
// to the remainder of the sender's own group.
type PartialCP struct {
	C int
}

// Kind implements sim.Kinder.
func (PartialCP) Kind() string { return "partial-cp" }

// String implements fmt.Stringer.
func (m PartialCP) String() string { return fmt.Sprintf("(%d)", m.C) }

// FullCP is the paper's "(c, g)" message: chunk-boundary subchunk c is
// complete and group g has been (or is being) informed of that fact. It is
// sent both to group g itself and, as a checkpoint of the checkpoint, to the
// remainder of the sender's own group.
type FullCP struct {
	C int
	G int
}

// Kind implements sim.Kinder.
func (FullCP) Kind() string { return "full-cp" }

// String implements fmt.Stringer.
func (m FullCP) String() string { return fmt.Sprintf("(%d,%d)", m.C, m.G) }

// GoAhead is Protocol B's wake-up poll: "if you are alive, you (or a process
// below you) should be the active process".
type GoAhead struct{}

// Kind implements sim.Kinder.
func (GoAhead) Kind() string { return "go-ahead" }

// AreYouAlive is Protocol C's fault-detection poll.
type AreYouAlive struct{}

// Kind implements sim.Kinder.
func (AreYouAlive) Kind() string { return "are-you-alive" }

// Alive is the response to AreYouAlive.
type Alive struct{}

// Kind implements sim.Kinder.
func (Alive) Kind() string { return "alive" }
