package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// Fuzzing: interpret arbitrary bytes as a crash schedule and check that the
// completion guarantee and single-active invariant hold for every input.
// Each byte triple (pid, trigger, detail) plans one crash; at most t-1
// crashes are kept so a survivor always exists.

func scheduleFromBytes(data []byte, t int, actions int) sim.Adversary {
	var crashes []adversary.Crash
	seen := make(map[int]bool)
	for i := 0; i+2 < len(data) && len(crashes) < t-1; i += 3 {
		pid := int(data[i]) % t
		if seen[pid] {
			continue
		}
		seen[pid] = true
		c := adversary.Crash{PID: pid, KeepWork: data[i+2]&1 == 1}
		if data[i+1]&1 == 0 {
			c.Round = int64(data[i+2] % 64)
		} else {
			c.AtAction = 1 + int(data[i+2])%actions
			deliver := make([]bool, t)
			for k := range deliver {
				deliver[k] = data[i+1]>>(k%8)&1 == 1
			}
			c.Deliver = deliver
		}
		crashes = append(crashes, c)
	}
	return adversary.NewSchedule(crashes...)
}

func fuzzProtocol(f *testing.F, name string, n, t int, scripts func() (func(int) sim.Script, error), single bool) {
	f.Helper()
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 1, 5, 1, 0, 9, 2, 1, 3})
	f.Add([]byte{3, 1, 255, 2, 0, 20, 1, 1, 7, 0, 0, 1})
	f.Fuzz(func(t_ *testing.T, data []byte) {
		sc, err := scripts()
		if err != nil {
			t_.Fatal(err)
		}
		opt := RunOptions{Adversary: scheduleFromBytes(data, t, 12)}
		if single {
			opt.MaxActive = 1
		}
		res, err := Run(n, t, sc, opt)
		if err != nil {
			t_.Fatalf("%s: %v", name, err)
		}
		if err := CheckCompletion(res); err != nil {
			t_.Fatalf("%s: %v", name, err)
		}
	})
}

func FuzzProtocolA(f *testing.F) {
	fuzzProtocol(f, "A", 12, 4, func() (func(int) sim.Script, error) {
		return ProtocolAScripts(ABConfig{N: 12, T: 4})
	}, true)
}

func FuzzProtocolB(f *testing.F) {
	fuzzProtocol(f, "B", 12, 4, func() (func(int) sim.Script, error) {
		return ProtocolBScripts(ABConfig{N: 12, T: 4})
	}, true)
}

func FuzzProtocolC(f *testing.F) {
	fuzzProtocol(f, "C", 8, 4, func() (func(int) sim.Script, error) {
		return ProtocolCScripts(CConfig{N: 8, T: 4})
	}, true)
}

func FuzzProtocolD(f *testing.F) {
	fuzzProtocol(f, "D", 12, 4, func() (func(int) sim.Script, error) {
		return ProtocolDScripts(DConfig{N: 12, T: 4})
	}, false)
}
