package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/group"
	"repro/internal/sim"
)

func runC(t *testing.T, n, tt, reportEvery int, adv sim.Adversary) sim.Result {
	t.Helper()
	scripts, err := ProtocolCScripts(CConfig{N: n, T: tt, ReportEvery: reportEvery})
	if err != nil {
		t.Fatalf("scripts: %v", err)
	}
	res, err := Run(n, tt, scripts, RunOptions{
		Adversary: adv, MaxActive: 1, DetailedMetrics: true,
	})
	if err != nil {
		t.Fatalf("run n=%d t=%d: %v", n, tt, err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatalf("n=%d t=%d: %v", n, tt, err)
	}
	return res
}

func TestProtocolCFailureFree(t *testing.T) {
	n, tt := 24, 8
	res := runC(t, n, tt, 1, nil)
	// Process 0 does all n units; later activations may redo a few trailing
	// units whose reports they never saw (a terminated process looks
	// exactly like a crashed one to a poller) — this is the +2t of
	// Theorem 3.8(a) and is intrinsic to the protocol, even failure-free.
	if res.WorkTotal < int64(n) || res.WorkTotal > int64(n+2*tt) {
		t.Fatalf("work = %d, want within [n, n+2t] = [%d, %d]", res.WorkTotal, n, n+2*tt)
	}
	if res.PerProc[0].Work != int64(n) {
		t.Fatalf("proc 0 work = %d, want all %d", res.PerProc[0].Work, n)
	}
	if res.Survivors != tt {
		t.Fatalf("survivors = %d, want %d", res.Survivors, tt)
	}
}

func TestProtocolCTheorem38Bounds(t *testing.T) {
	// Theorem 3.8: ≤ n + 2t real work, ≤ n + 8t·log t messages.
	cases := []struct{ n, t int }{
		{16, 4}, {24, 8}, {32, 8}, {16, 16}, {20, 5},
	}
	for _, c := range cases {
		logT := group.CeilLog2(c.t)
		advs := map[string]sim.Adversary{
			"none":    nil,
			"cascade": adversary.NewCascade(max(1, c.n/c.t), c.t-1),
			"random":  adversary.NewRandom(0.01, c.t-1, 13),
		}
		for name, adv := range advs {
			res := runC(t, c.n, c.t, 1, adv)
			if res.WorkTotal > int64(c.n+2*c.t) {
				t.Errorf("n=%d t=%d %s: work %d > n+2t=%d",
					c.n, c.t, name, res.WorkTotal, c.n+2*c.t)
			}
			msgBound := int64(c.n + 8*c.t*max(logT, 1))
			if res.Messages > msgBound {
				t.Errorf("n=%d t=%d %s: messages %d > n+8t·logt=%d",
					c.n, c.t, name, res.Messages, msgBound)
			}
		}
	}
}

func TestProtocolCLowMessageVariant(t *testing.T) {
	// Corollary 3.9: reporting every ⌈n/t⌉ units cuts messages to O(t log t)
	// while work stays O(n + t). (n + t must stay modest: the deadlines are
	// exponential in n + t and saturate the int64 round space beyond ~60.)
	n, tt := 32, 8
	logT := group.CeilLog2(tt)
	res := runC(t, n, tt, subchunkWidth(n, tt), adversary.NewCascade(n/tt, tt-1))
	if res.WorkTotal > int64(2*(n+2*tt)) {
		t.Fatalf("work = %d, want O(n+t)", res.WorkTotal)
	}
	msgBound := int64(10 * tt * logT)
	if res.Messages > msgBound {
		t.Fatalf("messages = %d > %d (O(t log t))", res.Messages, msgBound)
	}
	// The variant must beat per-unit reporting on messages.
	perUnit := runC(t, n, tt, 1, adversary.NewCascade(n/tt, tt-1))
	if res.Messages >= perUnit.Messages {
		t.Fatalf("low-msg variant (%d msgs) not below per-unit (%d msgs)",
			res.Messages, perUnit.Messages)
	}
}

func TestProtocolCMostKnowledgeableTakesOver(t *testing.T) {
	// Process 0 performs three units, reporting units 1,2,3 to processes
	// 1,2,3 respectively (cyclic order in G1), then crashes while sending
	// its 4th report into the void. The most knowledgeable survivor is the
	// recipient of the unit-3 report; it must take over, and total work must
	// stay near n.
	n, tt := 12, 4
	adv := &adversary.KindCount{PID: 0, Kind: "ordinary", N: 4, Prefix: 0}
	res := runC(t, n, tt, 1, adv)
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	// Process 3 (recipient of the unit-3 report, the most knowledgeable
	// survivor) must take over and perform exactly units 4..12; unit 4 is
	// redone because its report was suppressed.
	if res.PerProc[3].Work != int64(n-3) {
		t.Fatalf("proc 3 work = %d, want %d (units 4..%d)", res.PerProc[3].Work, n-3, n)
	}
	if res.WorkTotal < int64(n+1) || res.WorkTotal > int64(n+2*tt) {
		t.Fatalf("work = %d, want within [n+1, n+2t]", res.WorkTotal)
	}
}

func TestProtocolCCascade(t *testing.T) {
	// Every active process crashes after performing ⌈n/t⌉ units at its next
	// report; despite t-1 failures, completion holds, work is bounded, and
	// at most one process is ever active.
	n, tt := 16, 8
	res := runC(t, n, tt, 1, adversary.NewCascade(n/tt, tt-1))
	if res.Survivors != 1 {
		t.Fatalf("survivors = %d, want 1", res.Survivors)
	}
	if res.WorkTotal > int64(n+2*tt) {
		t.Fatalf("work = %d > n+2t", res.WorkTotal)
	}
}

func TestProtocolCAllButOneCrashImmediately(t *testing.T) {
	// Only the last process survives: it must eventually become active (its
	// D(i,0) deadline is the smallest) and do everything.
	n, tt := 8, 4
	var crashes []adversary.Crash
	for pid := 0; pid < tt-1; pid++ {
		crashes = append(crashes, adversary.Crash{PID: pid, Round: 0})
	}
	res := runC(t, n, tt, 1, adversary.NewSchedule(crashes...))
	if res.PerProc[tt-1].Work != int64(n) {
		t.Fatalf("survivor work = %d, want %d", res.PerProc[tt-1].Work, n)
	}
}

func TestProtocolCRandomSweep(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		runC(t, 16, 8, 1, adversary.NewRandom(0.02, 7, seed))
	}
}

func TestProtocolCNonPowerOfTwo(t *testing.T) {
	// The generalised level tree handles any t.
	cases := []struct{ n, t int }{{10, 3}, {12, 5}, {14, 7}, {9, 6}}
	for _, c := range cases {
		runC(t, c.n, c.t, 1, nil)
		runC(t, c.n, c.t, 1, adversary.NewRandom(0.03, c.t-1, 9))
	}
}

func TestProtocolCSingleProcess(t *testing.T) {
	res := runC(t, 5, 1, 1, nil)
	if res.WorkTotal != 5 || res.Messages != 0 {
		t.Fatalf("work=%d msgs=%d, want 5/0", res.WorkTotal, res.Messages)
	}
}

func TestProtocolCExponentialTimeIsReal(t *testing.T) {
	// The paper's deadlines are exponential even in failure-free runs
	// (inactive processes must wait out D(i, m) before retiring through
	// their own activation). The simulator's fast-forward handles it: the
	// round count is astronomical, the event count tiny.
	res := runC(t, 8, 4, 1, nil)
	if res.Rounds < int64(1)<<10 {
		t.Fatalf("rounds = %d; expected exponential deadlines to dominate", res.Rounds)
	}
	if res.Events > 10_000 {
		t.Fatalf("events = %d; fast-forward failed", res.Events)
	}
	// Theorem 3.8(c): all retired by t·K·(n+t)·2^(n+t).
	ct := newCTimeouts(8, 4, 1)
	bound := satMul(int64(4), satMul(ct.k, satMul(int64(12), pow2(12))))
	if res.Rounds > bound {
		t.Fatalf("rounds = %d > theorem bound %d", res.Rounds, bound)
	}
}

func TestProtocolCDeadlineMonotonicity(t *testing.T) {
	// D(i, m) strictly decreases in m (more knowledge = earlier takeover),
	// and D(i, 0) decreases in i (higher id = earlier takeover when nothing
	// is known).
	ct := newCTimeouts(16, 8, 1)
	for m := 1; m < 23; m++ {
		if ct.deadline(3, m) <= ct.deadline(3, m+1) {
			t.Fatalf("D(3,%d)=%d not > D(3,%d)=%d",
				m, ct.deadline(3, m), m+1, ct.deadline(3, m+1))
		}
	}
	for i := 0; i < 7; i++ {
		if ct.deadline(i, 0) <= ct.deadline(i+1, 0) {
			t.Fatalf("D(%d,0) not > D(%d,0)", i, i+1)
		}
	}
	// The paper's separation property used by Lemma 3.4:
	// D(i,m) > (n+t-m)K + D(i,m+1) + ... + D(i,n+t-1).
	n, tt := 16, 8
	for m := 1; m < n+tt-1; m++ {
		sum := satMul(int64(n+tt-m), ct.k)
		for k := m + 1; k <= n+tt-1; k++ {
			sum = satAdd(sum, ct.deadline(0, k))
		}
		if ct.deadline(0, m) <= sum {
			t.Fatalf("separation fails at m=%d: D=%d, sum=%d", m, ct.deadline(0, m), sum)
		}
	}
}

func TestProtocolCPiggyback(t *testing.T) {
	// Values attached to ordinary messages propagate (used by §5).
	n, tt := 8, 4
	received := make([]any, tt)
	scripts := func(id int) sim.Script {
		return func(p *sim.Proc) {
			cfg := CConfig{
				N: n, T: tt,
				PiggybackSend: func() any { return "v" },
				PiggybackRecv: func(x any) { received[id] = x },
			}
			_ = RunProtocolC(p, cfg, id)
		}
	}
	if _, err := Run(n, tt, scripts, RunOptions{MaxActive: 1}); err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, r := range received {
		if r == "v" {
			got++
		}
	}
	if got == 0 {
		t.Fatal("no process received a piggybacked value")
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if satMul(1<<40, 1<<40) != sim.Forever {
		t.Fatal("satMul did not saturate")
	}
	if satAdd(sim.Forever, sim.Forever) != sim.Forever {
		t.Fatal("satAdd did not saturate")
	}
	if pow2(100) != sim.Forever {
		t.Fatal("pow2 did not saturate")
	}
	if pow2(3) != 8 || pow2(0) != 1 || pow2(-1) != 1 {
		t.Fatal("pow2 small values wrong")
	}
	if satMul(3, 4) != 12 || satAdd(3, 4) != 7 {
		t.Fatal("sat small values wrong")
	}
}
