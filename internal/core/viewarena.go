package core

// viewArena bump-allocates the frozen word snapshots and DView boxes a
// Protocol D machine publishes in its agreement broadcasts. Under the
// broadcast record plane one DView payload serves every recipient, but the
// payload still needs frozen copies of the sender's S and T words — the
// sender keeps mutating its live sets next round. Before the arena those
// copies came from bitset's copy-on-write Shared() snapshots, which made
// every publishing round pay a fresh words allocation on the *sender's*
// sets (the next mutation always copied); the arena inverts the cost by
// copying the words out into a slab at publish time, so the live sets are
// never marked shared and mutate in place.
//
// Discipline: slabs are append-only and never reset or reused — when one
// fills, it is abandoned to its published holders and a fresh slab starts.
// Published entries are therefore immutable for the machine's lifetime,
// which is what lets recipients AdoptShared the words without copying, and
// what makes sharing one arena across crash-recovery snapshots safe (the
// clone and the original may both keep bumping; neither can overwrite what
// the other published).
type viewArena struct {
	words []uint64
	views []DView
}

// snap copies src into the words slab and returns the frozen copy, capacity
// -clamped so append on the caller's side can never bleed into later
// entries.
func (a *viewArena) snap(src []uint64) []uint64 {
	n := len(src)
	if cap(a.words)-len(a.words) < n {
		a.words = make([]uint64, 0, max(512, n))
	}
	off := len(a.words)
	a.words = a.words[:off+n]
	dst := a.words[off : off+n : off+n]
	copy(dst, src)
	return dst
}

// view returns a fresh DView box from the views slab. The caller fills it
// before publishing; entries already handed out stay valid because a full
// slab is abandoned, never grown in place.
func (a *viewArena) view() *DView {
	if len(a.views) == cap(a.views) {
		a.views = make([]DView, 0, 64)
	}
	a.views = a.views[:len(a.views)+1]
	return &a.views[len(a.views)-1]
}
