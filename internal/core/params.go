// Package core implements the four work-performing protocols of Dwork,
// Halpern and Waarts — Protocol A (checkpointing), Protocol B (checkpointing
// with go-ahead polling), Protocol C (most-knowledgeable takeover with
// recursive fault detection) and Protocol D (parallel work with agreement
// phases) — together with the baseline strategies the paper compares against.
//
// Every protocol is written as a plain script function over the simulator in
// internal/sim, so protocols can run standalone or be embedded as
// subroutines (Protocol D reverts to Protocol A; the Byzantine agreement
// application of §5 wraps any of A, B, C).
package core

import (
	"fmt"

	"repro/internal/sim"
)

// WorkExecutor performs one logical unit of work, consuming exactly one
// round. The default executor calls p.StepWork(unit); applications may remap
// the unit or attach messages (the Byzantine agreement reduction performs a
// unit by sending the general's value to a process in the same round).
type WorkExecutor func(p *sim.Proc, unit int)

func defaultExec(p *sim.Proc, unit int) { p.StepWork(unit) }

// Assignment maps a protocol run onto engine resources. Logical worker
// positions 0..T-1 are mapped to engine PIDs and logical units 1..N to
// engine unit IDs, so a protocol can run on a subset of processes over a
// subset of the work (Protocol D's revert does exactly that).
type Assignment struct {
	// Workers lists engine PIDs in logical position order; nil means the
	// identity assignment 0..T-1.
	Workers []int
	// Units lists engine unit IDs so that logical unit i is Units[i-1]; nil
	// means the identity assignment 1..N.
	Units []int
}

// resolve validates the assignment and builds the reverse worker map. The
// identity assignment — the common case of every standalone run — is kept
// as nil slices, so resolving, translating and pids-mapping allocate
// nothing.
type assignment struct {
	n, t    int
	workers []int       // nil = identity (position == PID)
	units   []int       // nil = identity (logical == engine unit ID)
	posOf   map[int]int // engine pid -> logical position; nil for identity
}

func resolveAssignment(n, t int, a Assignment) (assignment, error) {
	if t <= 0 {
		return assignment{}, fmt.Errorf("core: t = %d, need at least one process", t)
	}
	if n < 0 {
		return assignment{}, fmt.Errorf("core: n = %d, need non-negative work", n)
	}
	r := assignment{n: n, t: t, workers: a.Workers, units: a.Units}
	if r.workers != nil {
		if len(r.workers) != t {
			return assignment{}, fmt.Errorf("core: %d workers for t = %d", len(r.workers), t)
		}
		r.posOf = make(map[int]int, t)
		for pos, pid := range r.workers {
			r.posOf[pid] = pos
		}
	}
	if r.units != nil && len(r.units) != n {
		return assignment{}, fmt.Errorf("core: %d units for n = %d", len(r.units), n)
	}
	return r, nil
}

// unitID translates a logical unit (1-based) to its engine unit ID.
func (a assignment) unitID(logical int) int {
	if a.units == nil {
		return logical
	}
	return a.units[logical-1]
}

// pid translates a logical position to its engine PID.
func (a assignment) pid(pos int) int {
	if a.workers == nil {
		return pos
	}
	return a.workers[pos]
}

// pos translates an engine PID to a logical position (ok=false for
// non-participants, whose messages the protocols ignore).
func (a assignment) pos(pid int) (int, bool) {
	if a.workers == nil {
		return pid, pid >= 0 && pid < a.t
	}
	p, ok := a.posOf[pid]
	return p, ok
}

// pids maps a slice of logical positions to engine PIDs. Under the identity
// assignment the input is returned as-is; callers must treat the result as
// read-only.
func (a assignment) pids(positions []int) []int {
	if a.workers == nil {
		return positions
	}
	out := make([]int, len(positions))
	for i, p := range positions {
		out[i] = a.pid(p)
	}
	return out
}

// subchunkWidth returns w = ⌈n/P⌉, the number of units per subchunk.
func subchunkWidth(n, subchunks int) int {
	if subchunks <= 0 {
		return 0
	}
	return (n + subchunks - 1) / subchunks
}

// subchunkRange returns the inclusive logical-unit interval [lo, hi] of
// subchunk c ∈ 1..P; empty subchunks (possible when n < P) return lo > hi.
func subchunkRange(n, subchunks, c int) (lo, hi int) {
	w := subchunkWidth(n, subchunks)
	lo = (c-1)*w + 1
	hi = c * w
	if hi > n {
		hi = n
	}
	return lo, hi
}
