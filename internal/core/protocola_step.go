package core

import (
	"repro/internal/sim"
)

// aMachine is RunProtocolA as a state machine: listen for ordinary messages
// until the absolute deadline DD(j), then take over via dwMachine. It is
// also Protocol D's revert target, which is why completion is reported to
// the caller (done=true) rather than halting directly.
type aMachine struct {
	ab       *abState
	j        int
	deadline int64
	last     ordMsg // valid only when hasLast
	hasLast  bool
	working  bool
	dwReady  bool
	dw       dwMachine
}

// lastPtr is the nil-able view of last that DoWork's takeover logic expects.
func (m *aMachine) lastPtr() *ordMsg {
	if !m.hasLast {
		return nil
	}
	return &m.last
}

// Step implements sim.Stepper.
func (m *aMachine) Step(p *sim.Proc) sim.Yield { return machineYield(m, p) }

func newAMachine(ab *abState, j int) *aMachine {
	m := &aMachine{ab: ab, j: j}
	if j == 0 {
		m.working = true
	} else {
		m.deadline = ab.cfg.StartRound + ab.tm.dd(j)
	}
	return m
}

func (m *aMachine) step(p *sim.Proc) (sim.Yield, bool) {
	for {
		if m.working {
			if !m.dwReady {
				m.dw.init(m.ab, p, m.j, m.lastPtr())
				m.dwReady = true
			}
			y, done := m.dw.step(p)
			if done {
				p.SetActive(false)
				return sim.Yield{}, true
			}
			return y, false
		}
		if shouldSleep(p, m.deadline) {
			return sleepYield(m.deadline), false
		}
		msgs := p.Drain()
		for i := range msgs {
			om, hasOrd, _, ok := m.ab.parse(msgs[i])
			if !ok || !hasOrd {
				continue
			}
			if m.ab.isTermination(&om, m.j) {
				return sim.Yield{}, true
			}
			if newer(m.lastPtr(), &om) {
				m.last = om
				m.hasLast = true
			}
		}
		if p.Now() >= m.deadline {
			m.working = true
		}
	}
}

// ProtocolASteppers builds the per-process steppers of a standalone
// Protocol A run over engine PIDs 0..T-1. Configs with a custom work
// executor need ProtocolAScripts instead.
func ProtocolASteppers(cfg ABConfig) (func(id int) sim.Stepper, error) {
	if !steppable(cfg.Exec) {
		return nil, errNeedsScripts
	}
	ab, err := newABState(cfg)
	if err != nil {
		return nil, err
	}
	// Fill the shared PID cache now: steppers of one engine run on a single
	// goroutine, but one Procs value may back several engines concurrently.
	ab.pidsByGroup()
	return func(id int) sim.Stepper {
		return newAMachine(ab, id)
	}, nil
}

// ProtocolAProcs builds a standalone Protocol A run on the fastest substrate
// the config allows: steppers for the default work executor, scripts
// otherwise.
func ProtocolAProcs(cfg ABConfig) (Procs, error) {
	if steppable(cfg.Exec) {
		steppers, err := ProtocolASteppers(cfg)
		if err != nil {
			return Procs{}, err
		}
		return Procs{Steppers: steppers}, nil
	}
	scripts, err := ProtocolAScripts(cfg)
	if err != nil {
		return Procs{}, err
	}
	return Procs{Scripts: scripts}, nil
}
