package core

import (
	"repro/internal/group"
	"repro/internal/sim"
)

// Timeout derivations.
//
// The paper's constants assume a model in which a message can be sent and
// received within one time unit. This reproduction uses the standard
// synchronous model (delivery at round r+1; see DESIGN.md §2), which adds one
// round of latency per activation-chain link, so each constant carries a
// small additive slack. Enlarging a deadline can only preserve the
// at-most-one-active safety invariant — a process that waits longer sees
// strictly more of the execution before taking over — at the cost of O(t)
// extra rounds, leaving every asymptotic bound intact. The simulator checks
// the invariant mechanically in the test suite.

// abTimeouts bundles the deadline functions of Protocols A and B for one
// (n, t) instance.
type abTimeouts struct {
	q group.Sqrt
	n int
	w int // ⌈n/t⌉, rounds of work per subchunk
	p int // number of subchunks (= t)
}

func newABTimeouts(n, t int) abTimeouts {
	return abTimeouts{q: group.NewSqrt(t), n: n, w: subchunkWidth(n, t), p: t}
}

// activeLife bounds the number of rounds from activation to retirement:
// n work rounds + P partial-checkpoint rounds + ⌈P/S⌉ full checkpoints of at
// most 2G broadcast rounds each, plus slack. For canonical parameters this is
// the paper's n + 3t (Lemma 2.1) plus 2.
func (tm abTimeouts) activeLife() int64 {
	chunks := (tm.p + tm.q.S - 1) / tm.q.S
	return int64(tm.n) + int64(tm.p) + int64(chunks)*int64(2*tm.q.G) + 2
}

// dd is Protocol A's absolute activation deadline, the paper's
// DD(j) = j(n + 3t): by round DD(j) every process below j has retired.
func (tm abTimeouts) dd(j int) int64 {
	return int64(j) * tm.activeLife()
}

// pto is Protocol B's process timeout: an upper bound (plus one) on the gap
// between successive messages that a same-group process hears from the
// active process. Paper value n/t + 2; ours adds slack for the +1 delivery
// latency (a go-ahead answered by a freshly-activated process that must first
// perform a full subchunk arrives after w + 2 rounds, so PTO-1 must be at
// least w + 3).
func (tm abTimeouts) pto() int64 {
	return int64(tm.w) + 4
}

// gto is Protocol B's group timeout, the paper's
// GTO(i) = n/√t + 3√t + (√t − ī − 1)·PTO + 1: an upper bound (plus one) on
// how long a process in a later group can go without hearing from group gᵢ
// while any process ≥ i of gᵢ is active. Generalised to ragged groups:
// chunk work (S·w) + S partial checkpoints + 2G full-checkpoint broadcasts +
// remaining go-ahead probes, plus slack.
func (tm abTimeouts) gto(i int) int64 {
	bar := int64(tm.q.Offset(i))
	s := int64(tm.q.S)
	return s*int64(tm.w) + s + 2*int64(tm.q.G) + (s-bar-1)*tm.pto() + 3
}

// ddb is Protocol B's relative deadline DDB(j, i): how long j waits after
// hearing from i before going preactive.
func (tm abTimeouts) ddb(j, i int) int64 {
	gj, gi := tm.q.GroupOf(j), tm.q.GroupOf(i)
	if gj != gi {
		return tm.gto(i) + int64(gj-gi-1)*tm.gto(0)
	}
	return tm.pto()
}

// tt is the paper's transition time TT(j, i): an upper bound on how long
// after last hearing from i process j takes to become active (preactive wait
// plus its go-ahead probes). Used in tests to bound Protocol B's running
// time.
func (tm abTimeouts) tt(j, i int) int64 {
	gj, gi := tm.q.GroupOf(j), tm.q.GroupOf(i)
	jbar, ibar := int64(tm.q.Offset(j)), int64(tm.q.Offset(i))
	if gj != gi {
		return tm.ddb(j, i) + jbar*tm.pto()
	}
	return (jbar - ibar) * tm.pto()
}

// Saturating arithmetic for Protocol C's exponential deadlines. Everything
// caps at sim.Forever, far below int64 overflow even after repeated
// addition to round numbers.

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > sim.Forever/b {
		return sim.Forever
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > sim.Forever-b {
		return sim.Forever
	}
	return a + b
}

// pow2 returns 2^e, saturating.
func pow2(e int) int64 {
	if e < 0 {
		return 1
	}
	if e >= 61 {
		return sim.Forever
	}
	return int64(1) << uint(e)
}

// cTimeouts bundles Protocol C's deadline function for one (n, t) instance.
type cTimeouts struct {
	n, t int
	k    int64 // the paper's K, adjusted for the delivery model
}

// newCTimeouts derives K. For the per-unit-reporting protocol (reportEvery
// == 1) the paper's K = 5t + 2·log t bounds the rounds an active process
// needs before every non-retired process has heard from it; for the
// Corollary 3.9 variant (reportEvery = ⌈n/t⌉) the bound becomes
// 2n + 3t + 2·log t. Both get +2 slack for delivery latency.
func newCTimeouts(n, t, reportEvery int) cTimeouts {
	logT := int64(group.CeilLog2(t))
	var k int64
	if reportEvery <= 1 {
		k = int64(5*t) + 2*logT + 2
	} else {
		k = int64(2*n) + int64(3*t) + 2*logT + 2
	}
	return cTimeouts{n: n, t: t, k: k}
}

// deadline is the paper's D(i, m): the number of rounds process i waits
// after first obtaining reduced view m before becoming active.
//
//	D(i, m) = K(n + t − m)·2^(n+t−1−m)          for m ≥ 1
//	D(i, 0) = K(t − i)(n + t)·2^(n+t−1)          otherwise
//
// Values saturate at sim.Forever.
func (ct cTimeouts) deadline(i, m int) int64 {
	nt := ct.n + ct.t
	if m >= 1 {
		return satMul(ct.k, satMul(int64(nt-m), pow2(nt-1-m)))
	}
	return satMul(ct.k, satMul(int64(ct.t-i), satMul(int64(nt), pow2(nt-1))))
}
