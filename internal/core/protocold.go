package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sim"
)

// DView is Protocol D's agreement broadcast "(j, S, T, done)": the sender's
// outstanding-work set S (indexed by unit, 1-based), its set T of processes
// it currently believes correct, and whether it has decided. The sets travel
// in bitset wire form (64-bit words). Phase tags keep messages of adjacent
// phases apart (processes may be skewed by one round).
type DView struct {
	Phase int
	S     []uint64
	T     []uint64
	Done  bool
}

// Kind implements sim.Kinder.
func (DView) Kind() string { return "d-view" }

// DConfig configures a run of Protocol D.
type DConfig struct {
	// N is the number of work units, T the number of processes.
	N, T int
	// Exec performs one unit of work (default: sim.Proc.StepWork).
	Exec WorkExecutor
	// RevertFactor is the paper's "half" in "if more than half the processes
	// thought correct at the beginning of the phase are discovered to have
	// failed, revert to Protocol A": revert when |T'| > RevertFactor·|T|.
	// 0 means the paper's 2. (The paper remarks any factor works, trading
	// the work bound n/(1−α) against revert frequency — the X3 ablation.)
	RevertFactor float64
	// DisableRevert runs the phase loop without the Protocol A fallback
	// (used by ablations; the paper shows work can then grow to
	// Ω(n·log f/log log f)).
	DisableRevert bool
}

// dState is the shared context of a Protocol D run.
type dState struct {
	cfg    DConfig
	ex     WorkExecutor
	factor float64
}

func newDState(cfg DConfig) (*dState, error) {
	if cfg.T <= 0 {
		return nil, fmt.Errorf("core: t = %d, need at least one process", cfg.T)
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("core: n = %d, need non-negative work", cfg.N)
	}
	ex := cfg.Exec
	if ex == nil {
		ex = defaultExec
	}
	f := cfg.RevertFactor
	if f == 0 {
		f = 2
	}
	if f < 1 {
		return nil, fmt.Errorf("core: revert factor %v < 1", f)
	}
	return &dState{cfg: cfg, ex: ex, factor: f}, nil
}

// RunProtocolD executes process j of Protocol D.
//
// Protocol D (paper §4) alternates work phases — the outstanding units are
// split evenly over the processes believed correct — with agreement phases
// in the style of Eventual Byzantine Agreement: every process repeatedly
// broadcasts its view (S, T, done) until the set of processes heard from is
// stable across two consecutive rounds (after a one-round grace period in
// phases after the first, since processes may be skewed by one round), or it
// receives a decided view, which it adopts. If more than half of the
// processes alive at the start of a phase die during it, the survivors
// revert to Protocol A for the remaining work. Failure-free cost: n/t + 2
// rounds and < 2t² messages.
func RunProtocolD(p *sim.Proc, cfg DConfig, j int) error {
	st, err := newDState(cfg)
	if err != nil {
		return err
	}
	if j < 0 || j >= cfg.T {
		return fmt.Errorf("core: position %d out of range [0,%d)", j, cfg.T)
	}
	// S is 1-based over units: slot 0 unused.
	s := bitset.New(cfg.N+1, true)
	s.Remove(0)
	t := bitset.New(cfg.T, true)
	buf := make(map[int][]taggedView)
	phase := 0
	for s.Count() > 0 {
		phase++
		// ---- Work phase: the members of T split S evenly by rank. ----
		chunk := (s.Count() + t.Count() - 1) / t.Count()
		rank := t.RankOf(j)
		units := s.Members()
		lo := min(rank*chunk, len(units))
		hi := min(lo+chunk, len(units))
		for k := lo; k < hi; k++ {
			st.ex(p, units[k])
		}
		// Pad so every process spends ⌈|S|/|T|⌉ rounds in the phase.
		for k := hi - lo; k < chunk; k++ {
			p.StepIdle()
		}
		for k := lo; k < hi; k++ {
			s.Remove(units[k])
		}
		tPrev := t
		// ---- Agreement phase. ----
		s, t = st.agree(p, j, phase, s, t, phase > 1, buf)
		if !t.Has(j) {
			panic(fmt.Sprintf("core: protocol D: correct process %d dropped from T", j))
		}
		// ---- Revert check (Theorem 4.1 part 2). ----
		if !st.cfg.DisableRevert && float64(tPrev.Count()) > st.factor*float64(t.Count()) {
			workers := t.Members()
			remaining := s.Members()
			pos := t.RankOf(j)
			sub := ABConfig{
				N:          len(remaining),
				T:          len(workers),
				Assign:     Assignment{Workers: workers, Units: remaining},
				StartRound: p.Now(),
				Exec:       st.ex,
			}
			if err := RunProtocolA(p, sub, pos); err != nil {
				return fmt.Errorf("core: protocol D revert: %w", err)
			}
			return nil
		}
	}
	return nil
}

// agree is the paper's Agree procedure (Fig. 4), restructured for the
// delivery-at-r+1 model: the broadcast of iteration k is processed by peers
// at iteration k+1, so each iteration occupies exactly one round and the
// failure-free phase completes in two rounds.
func (st *dState) agree(p *sim.Proc, j, phase int, s, t *bitset.Set, grace bool, buf map[int][]taggedView) (*bitset.Set, *bitset.Set) {
	u := t.Clone()                      // who we still listen to (paper's U)
	tNew := bitset.New(st.cfg.T, false) // paper's T, rebuilt from who we hear
	tNew.Add(j)
	sCur := s.Clone()
	ctr := 1
	if grace {
		ctr = 0
	}
	st.bcast(p, j, phase, u, sCur, tNew, false)
	for {
		views := st.collect(p, phase, buf)
		uPrev := u.Clone()
		heard := make(map[int]bool, len(views))
		done := false
		for _, v := range views {
			heard[v.sender] = true
			if v.Done {
				sCur = bitset.From(v.S, st.cfg.N+1)
				tNew = bitset.From(v.T, st.cfg.T)
				done = true
			} else if !done {
				sCur.Intersect(v.S)
				tNew.Union(v.T)
			}
		}
		if !done {
			for _, i := range uPrev.Members() {
				if i != j && !heard[i] && ctr >= 1 {
					u.Remove(i)
				}
			}
			if u.Equal(uPrev) && ctr >= 1 {
				done = true
			}
		}
		if done {
			st.bcast(p, j, phase, u, sCur, tNew, true)
			return sCur, tNew
		}
		ctr++
		st.bcast(p, j, phase, u, sCur, tNew, false)
	}
}

// bcast sends the current view to every other member of u as one broadcast
// record (one round; an empty recipient list still consumes the round to
// keep processes aligned). The view's word slices are copy-on-write shared
// snapshots of the sender's sets; the payload is a pointer, like the
// stepper substrate's arena-backed views, so the two substrates' messages
// interoperate in mixed runs.
func (st *dState) bcast(p *sim.Proc, j, phase int, u, s, t *bitset.Set, done bool) {
	v := &DView{Phase: phase, S: s.Shared(), T: t.Shared(), Done: done}
	p.StepBroadcast(u.Members(), v)
}

type taggedView struct {
	DView
	sender int
}

// ProtocolDScripts builds the per-process scripts of a standalone Protocol D
// run over engine PIDs 0..T-1.
func ProtocolDScripts(cfg DConfig) (func(id int) sim.Script, error) {
	if _, err := newDState(cfg); err != nil {
		return nil, err
	}
	return func(id int) sim.Script {
		return func(p *sim.Proc) {
			_ = RunProtocolD(p, cfg, id)
		}
	}, nil
}

// collect drains the messages delivered this round, returning the current
// phase's views in sender order; views for future phases are buffered,
// stale ones dropped.
func (st *dState) collect(p *sim.Proc, phase int, buf map[int][]taggedView) []taggedView {
	views := buf[phase]
	delete(buf, phase)
	msgs := p.WaitUntil(p.Now())
	for _, m := range msgs {
		v, ok := m.Payload.(*DView)
		if !ok {
			continue
		}
		switch {
		case v.Phase == phase:
			views = append(views, taggedView{DView: *v, sender: m.From})
		case v.Phase > phase:
			buf[v.Phase] = append(buf[v.Phase], taggedView{DView: *v, sender: m.From})
		}
	}
	return views
}
