package core

import (
	"repro/internal/sim"
	"repro/internal/view"
)

// cMachine is RunProtocolC as a state machine: the passive deadline loop,
// then Fig. 3's active code — fault detection from the finest level down,
// polling group pointers, then real work with reports into G1.
type cMachine struct {
	st *cState
	i  int
	v  *view.View

	state int // cInit, cListen, cAfterAlive, cFDTop, cFDPointer, cPollSent, cPollWait, cFDAfterReport, cWorkTop, cWorkAfter

	deadline int64
	lastOrd  int64
	pollers  []int

	h, slot, target int
	pollDecideAt    int64

	sinceReport int
}

const (
	cInit = iota
	cListen
	cAfterAlive
	cFDTop
	cFDPointer
	cPollSent
	cPollWait
	cFDAfterReport
	cWorkTop
	cWorkAfter
)

// Step implements sim.Stepper.
func (m *cMachine) Step(p *sim.Proc) sim.Yield { return machineYield(m, p) }

func newCMachine(st *cState, i int) *cMachine {
	return &cMachine{st: st, i: i, v: view.New(st.ix, i, st.cfg.T), state: cInit}
}

func (m *cMachine) step(p *sim.Proc) (sim.Yield, bool) {
	for {
		switch m.state {
		case cInit:
			if m.i == 0 {
				// "Initially process 0 is active."
				m.enterActive(p)
				continue
			}
			m.deadline = satAdd(m.st.cfg.StartRound, m.st.tm.deadline(m.i, 0))
			m.state = cListen

		case cListen:
			if shouldSleep(p, m.deadline) {
				return sleepYield(m.deadline), false
			}
			msgs := p.Drain()
			m.pollers = m.pollers[:0]
			m.lastOrd = -1
			for _, msg := range msgs {
				switch pl := msg.Payload.(type) {
				case AreYouAlive:
					m.pollers = append(m.pollers, msg.From)
				case COrdinary:
					m.v.Merge(pl.View)
					if m.st.cfg.PiggybackRecv != nil && pl.Value != nil {
						m.st.cfg.PiggybackRecv(pl.Value)
					}
					if msg.SentAt+1 > m.lastOrd {
						m.lastOrd = msg.SentAt + 1
					}
				default:
					// Alive acks and foreign payloads are ignored while
					// inactive.
				}
			}
			m.state = cAfterAlive
			if len(m.pollers) > 0 {
				// One Alive payload to every poller: a single broadcast record.
				return broadcastYield(p, m.pollers, Alive{}), false
			}

		case cAfterAlive:
			if m.lastOrd >= 0 {
				m.deadline = satAdd(m.lastOrd, m.st.tm.deadline(m.i, m.v.Reduced()))
				m.state = cListen
				continue
			}
			if p.Now() >= m.deadline {
				m.enterActive(p)
				continue
			}
			m.state = cListen

		case cFDTop:
			if m.h < 1 {
				m.sinceReport = 0
				m.state = cWorkTop
				continue
			}
			gid, _ := m.st.lv.GroupOf(m.i, m.h)
			m.slot = m.st.ix.Slot(gid)
			m.state = cFDPointer

		case cFDPointer:
			target, ok := m.v.NormalizedPointer(m.slot, m.i)
			if !ok {
				// Every other group member is known retired; descend a level.
				m.h--
				m.state = cFDTop
				continue
			}
			m.target = target
			m.state = cPollSent
			return sendYield([]sim.Send{{To: m.st.as.pid(target), Payload: AreYouAlive{}}}), false

		case cPollSent:
			// Poll committed at Now()-1; the ack can arrive at +2.
			m.pollDecideAt = p.Now() + 1
			m.state = cPollWait

		case cPollWait:
			if shouldSleep(p, m.pollDecideAt) {
				return sleepYield(m.pollDecideAt), false
			}
			alive := false
			for _, msg := range p.Drain() {
				if _, ok := msg.Payload.(Alive); ok && msg.From == m.st.as.pid(m.target) {
					alive = true
					break
				}
			}
			if alive {
				// Found a living process; descend a level.
				m.h--
				m.state = cFDTop
				continue
			}
			if p.Now() < m.pollDecideAt {
				continue // woken early by unrelated mail; keep waiting
			}
			m.v.MarkFaulty(m.target)
			if m.h != m.st.lv.L {
				if y, ok := m.emitReport(p, m.h+1); ok {
					m.state = cFDAfterReport
					return y, false
				}
			}
			m.advancePointer()
			m.state = cFDPointer

		case cFDAfterReport:
			m.advancePointer()
			m.state = cFDPointer

		case cWorkTop:
			if m.v.WorkPoint() > m.st.cfg.N {
				p.SetActive(false)
				return sim.Yield{}, true
			}
			u := m.v.WorkPoint()
			m.v.AdvanceWork(p.Now())
			m.sinceReport++
			m.state = cWorkAfter
			return workYield(m.st.as.unitID(u)), false

		case cWorkAfter:
			if m.sinceReport >= m.st.every || m.v.WorkPoint() > m.st.cfg.N {
				m.sinceReport = 0
				if y, ok := m.emitReport(p, 1); ok {
					m.state = cWorkTop
					return y, false
				}
			}
			m.state = cWorkTop
		}
	}
}

// enterActive begins Fig. 3's active code: fault detection from level log t
// down to level 1, then real work at level 0.
func (m *cMachine) enterActive(p *sim.Proc) {
	p.SetActive(true)
	m.h = m.st.lv.L
	m.state = cFDTop
}

// emitReport builds the ordinary message (a unit of level h−1 work plus the
// full view) to the current pointer of i's level-h group and advances that
// pointer. ok=false when the report is skipped (every other member of the
// group is known retired, or there is no level h, i.e. t = 1).
func (m *cMachine) emitReport(p *sim.Proc, h int) (sim.Yield, bool) {
	if h > m.st.lv.L {
		return sim.Yield{}, false
	}
	gid, _ := m.st.lv.GroupOf(m.i, h)
	slot := m.st.ix.Slot(gid)
	target, ok := m.v.NormalizedPointer(slot, m.i)
	if !ok {
		return sim.Yield{}, false
	}
	next, ok := m.v.Successor(slot, target, m.i)
	if !ok {
		next = target
	}
	m.v.SetPointer(slot, next, p.Now())
	msg := COrdinary{View: m.v.Snapshot()}
	if m.st.cfg.PiggybackSend != nil {
		msg.Value = m.st.cfg.PiggybackSend()
	}
	return sendYield([]sim.Send{{To: m.st.as.pid(target), Payload: msg}}), true
}

func (m *cMachine) advancePointer() {
	if next, ok := m.v.Successor(m.slot, m.target, m.i); ok {
		m.v.AdvancePointer(m.slot, next)
	}
}

// ProtocolCSteppers builds the per-process steppers of a standalone
// Protocol C run over engine PIDs 0..T-1. Configs with a custom work
// executor need ProtocolCScripts instead (piggybacking is supported on both
// substrates).
func ProtocolCSteppers(cfg CConfig) (func(id int) sim.Stepper, error) {
	if !steppable(cfg.Exec) {
		return nil, errNeedsScripts
	}
	st, err := newCState(cfg)
	if err != nil {
		return nil, err
	}
	return func(id int) sim.Stepper {
		return newCMachine(st, id)
	}, nil
}

// ProtocolCProcs builds a standalone Protocol C run on the fastest substrate
// the config allows.
func ProtocolCProcs(cfg CConfig) (Procs, error) {
	if steppable(cfg.Exec) {
		steppers, err := ProtocolCSteppers(cfg)
		if err != nil {
			return Procs{}, err
		}
		return Procs{Steppers: steppers}, nil
	}
	scripts, err := ProtocolCScripts(cfg)
	if err != nil {
		return Procs{}, err
	}
	return Procs{Scripts: scripts}, nil
}
