package core

import "encoding/gob"

// The live plane's wire transport gob-encodes sim.Message payloads as
// interface values, which requires every concrete payload type a protocol
// sends to be registered. This is the complete payload alphabet of the
// DHW92 suite: protocols A/B/C (checkpoint exchange and liveness probes),
// protocol D (*DView gossip — the view travels by pointer), and the
// baseline protocols' reports. A new protocol whose payloads should cross
// the wire registers its types the same way.
func init() {
	gob.Register(PartialCP{})
	gob.Register(FullCP{})
	gob.Register(GoAhead{})
	gob.Register(AreYouAlive{})
	gob.Register(Alive{})
	gob.Register(COrdinary{})
	gob.Register(&DView{})
	gob.Register(UniformDone{})
	gob.Register(NaiveReport{})
	gob.Register(Rumor{})
}
