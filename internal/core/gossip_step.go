package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sim"
)

// Gossip is the successor Do-All strategy in the style of the
// epidemic/gossip line of algorithms (Chlebus–Kowalski and successors)
// rather than the paper's coordinator chains: leader-free, epoch-structured,
// and communication-bounded by construction. Every process keeps a local
// view of the done units and alternates two-round epochs:
//
//   - work round: merge every rumor delivered so far into the view, then
//     perform the first unit of its private seeded permutation not yet in
//     the view (idling once the view is complete);
//   - gossip round: broadcast the view as a Rumor to the next fanout-many
//     peers of its private seeded peer rotation.
//
// The rotation advances by the fanout every epoch, so any cover-many
// consecutive epochs reach every peer; with fanout ~log t the per-epoch
// message cost is O(t log t) while information still spreads within
// O(t/log t) epochs. A process whose view completes gossips for cover-many
// more epochs (the retirement lap, so its complete view reaches everyone
// even if every other rumor was lost) and halts.
//
// Correctness needs no delivery assumptions: a live process with an
// incomplete view performs an unknown unit every epoch, so its own work
// alone completes its view in at most n epochs — rumors only shave the
// duplicated work. A unit enters a view either by local work or by a rumor
// from a process that confirmed the unit one round after emitting it, so
// poisoned bits (work discarded by a KeepWork=false crash) never propagate:
// the crash kills the process before its confirm step, and the crash-time
// checkpoint clears the in-flight unit (see Snapshot), so even a restarted
// process retries it.
//
// Unlike the paper's single-active protocols, all t processes work
// concurrently (SingleActive does not hold); the protocol is seeded per PID,
// so it is not symmetric under PID renaming either.

// Rumor is the gossip payload: the sender's view of the done units as
// bitset words (unit u = bit u; bit 0 unused). The slice is a
// copy-on-write snapshot of the sender's live view — receivers only read
// it (Union), senders never mutate published words.
type Rumor struct {
	Done []uint64
}

// Kind implements sim.Kinder.
func (Rumor) Kind() string { return "rumor" }

// GossipConfig configures the gossip Do-All protocol.
type GossipConfig struct {
	// N is the number of work units, T the number of processes.
	N, T int
	// Seed diversifies the per-process unit permutations and peer
	// rotations. Any value works; runs are deterministic in (N, T, Seed,
	// Fanout).
	Seed int64
	// Fanout is the number of peers gossiped to per epoch; 0 picks the
	// default GossipFanout(T) ≈ log t, and values above T-1 are clamped.
	Fanout int
	// Exec performs one unit of work (default: sim.Proc.StepWork). A
	// custom executor forces the script substrate.
	Exec WorkExecutor
}

// gossipPlan is the resolved shape shared by every process of a run.
type gossipPlan struct {
	n, t  int
	d     int // fanout, clamped to [0, t-1]
	cover int // epochs for the rotation to reach every peer: ceil((t-1)/d)
	seed  int64
}

func planGossip(cfg GossipConfig) (gossipPlan, error) {
	if cfg.T <= 0 || cfg.N < 0 || cfg.Fanout < 0 {
		return gossipPlan{}, fmt.Errorf("core: invalid gossip config n=%d t=%d fanout=%d", cfg.N, cfg.T, cfg.Fanout)
	}
	d := cfg.Fanout
	if d == 0 {
		d = GossipFanout(cfg.T)
	}
	if d > cfg.T-1 {
		d = cfg.T - 1
	}
	pl := gossipPlan{n: cfg.N, t: cfg.T, d: d, seed: cfg.Seed}
	if d > 0 {
		pl.cover = (cfg.T - 2 + d) / d
	}
	return pl, nil
}

// splitmix64 is the SplitMix64 generator step: tiny, seedable and stable
// across Go versions, unlike math/rand. Protocol determinism (and so
// cross-plane conformance) rides on it.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// gossipSeed derives the per-process, per-purpose shuffle seed.
func gossipSeed(seed int64, id int, salt uint64) uint64 {
	s := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(id+1)*0xd1342543de82ef95 ^ salt
	return splitmix64(&s)
}

// seededShuffle is a Fisher–Yates shuffle driven by splitmix64.
func seededShuffle(vals []int, seed uint64) {
	s := seed
	for i := len(vals) - 1; i > 0; i-- {
		j := int(splitmix64(&s) % uint64(i+1))
		vals[i], vals[j] = vals[j], vals[i]
	}
}

const (
	gossipWorkRound = iota // next step is the epoch's work round
	gossipSendRound        // next step is the epoch's gossip round
)

// gossipMachine is one process's gossip state. It is both the machine for
// the stepper substrate and the state core the script substrate drives, so
// the two transliterations cannot drift.
type gossipMachine struct {
	plan  gossipPlan
	id    int
	done  *bitset.Set // view of done units, bits 1..n
	perm  []int       // private unit order (immutable after build)
	peers []int       // private peer rotation order (immutable after build)

	permIdx int   // perm positions before this are all in done
	cursor  int   // rotation position of the next gossip window
	pending int   // unit emitted this epoch, confirmed done at the next step
	lap     int   // retirement epochs left once complete; -1 = still working
	phase   int   // gossipWorkRound or gossipSendRound
	to      []int // recipient scratch for window
}

func newGossipState(pl gossipPlan, id int) *gossipMachine {
	perm := make([]int, pl.n)
	for i := range perm {
		perm[i] = i + 1
	}
	seededShuffle(perm, gossipSeed(pl.seed, id, 0x776f726b)) // "work"
	peers := make([]int, 0, pl.t-1)
	for p := 0; p < pl.t; p++ {
		if p != id {
			peers = append(peers, p)
		}
	}
	seededShuffle(peers, gossipSeed(pl.seed, id, 0x70656572)) // "peer"
	return &gossipMachine{
		plan:  pl,
		id:    id,
		done:  bitset.New(pl.n+1, false),
		perm:  perm,
		peers: peers,
		lap:   -1,
	}
}

// observe confirms the previous epoch's emitted unit (reaching this step
// means the work action committed and the process outlived it) and merges
// every delivered rumor into the view.
func (m *gossipMachine) observe(msgs []sim.Message) {
	if m.pending > 0 {
		m.done.Add(m.pending)
		m.pending = 0
	}
	for i := range msgs {
		if r, ok := msgs[i].Payload.(Rumor); ok {
			m.done.Union(r.Done)
		}
	}
}

// nextUnit returns the first unit of the private order not in the view, or
// 0 when the view is complete. The scan cursor only ever advances over done
// units, so a unit handed out but never confirmed is retried.
func (m *gossipMachine) nextUnit() int {
	for m.permIdx < len(m.perm) {
		u := m.perm[m.permIdx]
		if !m.done.Has(u) {
			return u
		}
		m.permIdx++
	}
	return 0
}

// retired starts the retirement lap on the first complete-view work round
// and reports whether the lap is over (time to halt).
func (m *gossipMachine) retired() bool {
	if m.lap < 0 {
		m.lap = m.plan.cover
	}
	return m.lap == 0
}

// lapTick burns one retirement epoch, counted at the gossip round.
func (m *gossipMachine) lapTick() {
	if m.lap > 0 {
		m.lap--
	}
}

// window returns the next fanout-many peers of the rotation and advances
// it. Consecutive positions of a ring walk, so any cover-many consecutive
// windows visit every peer.
func (m *gossipMachine) window() []int {
	k := len(m.peers)
	if k == 0 {
		return nil
	}
	to := m.to[:0]
	for i := 0; i < m.plan.d; i++ {
		to = append(to, m.peers[(m.cursor+i)%k])
	}
	m.cursor = (m.cursor + m.plan.d) % k
	m.to = to
	return to
}

// Step implements sim.Stepper.
func (m *gossipMachine) Step(p *sim.Proc) sim.Yield { return machineYield(m, p) }

func (m *gossipMachine) step(p *sim.Proc) (sim.Yield, bool) {
	m.observe(p.Drain())
	if m.phase == gossipWorkRound {
		m.phase = gossipSendRound
		if u := m.nextUnit(); u > 0 {
			m.pending = u
			return workYield(u), false
		}
		if m.retired() {
			return sim.Yield{}, true
		}
		return idleYield(), false
	}
	m.phase = gossipWorkRound
	m.lapTick()
	return broadcastYield(p, m.window(), Rumor{Done: m.done.Shared()}), false
}

// Snapshot implements sim.Recoverable. The pending unit is deliberately
// dropped from the checkpoint: if the crash carried KeepWork=false the unit
// was never performed, and a restarted process that still believed in it
// would gossip a unit nobody did. Clearing it is sound in both cases — at
// worst the restarted process redoes one unit.
func (m *gossipMachine) Snapshot() any {
	cp := *m
	cp.done = m.done.Clone()
	cp.pending = 0
	cp.to = nil
	return &cp
}

// Restore implements sim.Recoverable.
func (m *gossipMachine) Restore(snap any) {
	s := snap.(*gossipMachine)
	*m = *s
	m.done = s.done.Clone()
}

var _ sim.Recoverable = (*gossipMachine)(nil)

// GossipSteppers builds the gossip protocol on the stepper substrate
// (crash-recoverable).
func GossipSteppers(cfg GossipConfig) (func(id int) sim.Stepper, error) {
	if !steppable(cfg.Exec) {
		return nil, errNeedsScripts
	}
	pl, err := planGossip(cfg)
	if err != nil {
		return nil, err
	}
	return func(id int) sim.Stepper { return newGossipState(pl, id) }, nil
}

// GossipScripts builds the gossip protocol on the script substrate — a
// literal transliteration of the machine (it drives the same state core),
// kept for the substrate-equivalence suite and custom work executors.
func GossipScripts(cfg GossipConfig) (func(id int) sim.Script, error) {
	pl, err := planGossip(cfg)
	if err != nil {
		return nil, err
	}
	ex := cfg.Exec
	if ex == nil {
		ex = defaultExec
	}
	return func(id int) sim.Script {
		return func(p *sim.Proc) {
			g := newGossipState(pl, id)
			for {
				// Work round.
				g.observe(p.Drain())
				if u := g.nextUnit(); u > 0 {
					g.pending = u
					ex(p, u)
				} else if g.retired() {
					return
				} else {
					p.StepIdle()
				}
				// Gossip round.
				g.observe(p.Drain())
				g.lapTick()
				p.StepBroadcast(g.window(), Rumor{Done: g.done.Shared()})
			}
		}
	}, nil
}

// GossipProcs builds a standalone gossip run on the fastest substrate the
// config allows: steppers for the default work executor, scripts otherwise.
func GossipProcs(cfg GossipConfig) (Procs, error) {
	if steppable(cfg.Exec) {
		steppers, err := GossipSteppers(cfg)
		if err != nil {
			return Procs{}, err
		}
		return Procs{Steppers: steppers}, nil
	}
	scripts, err := GossipScripts(cfg)
	if err != nil {
		return Procs{}, err
	}
	return Procs{Scripts: scripts}, nil
}
