package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// The stepper machines must be indistinguishable from the scripts they
// transliterate: same Result — work, messages (by kind), rounds, events,
// per-process stats — on every protocol, instance size and adversary.

type substrateCase struct {
	name      string
	procs     func() (Procs, error)
	scripts   func() (func(int) sim.Script, error)
	maxActive int
}

func abCase(name string, build func(ABConfig) (Procs, error), scripts func(ABConfig) (func(int) sim.Script, error), cfg ABConfig) substrateCase {
	return substrateCase{
		name:      name,
		procs:     func() (Procs, error) { return build(cfg) },
		scripts:   func() (func(int) sim.Script, error) { return scripts(cfg) },
		maxActive: 1,
	}
}

func substrateCases(n, t int) []substrateCase {
	cases := []substrateCase{
		abCase("A", ProtocolAProcs, ProtocolAScripts, ABConfig{N: n, T: t}),
		abCase("A-fullonly", ProtocolAProcs, ProtocolAScripts, ABConfig{N: n, T: t, FullOnly: true}),
		abCase("B", ProtocolBProcs, ProtocolBScripts, ABConfig{N: n, T: t}),
		{
			name:      "C",
			procs:     func() (Procs, error) { return ProtocolCProcs(CConfig{N: n, T: t}) },
			scripts:   func() (func(int) sim.Script, error) { return ProtocolCScripts(CConfig{N: n, T: t}) },
			maxActive: 1,
		},
		{
			name: "C-lowmsg",
			procs: func() (Procs, error) {
				return ProtocolCProcs(CConfig{N: n, T: t, ReportEvery: max(1, n/t)})
			},
			scripts: func() (func(int) sim.Script, error) {
				return ProtocolCScripts(CConfig{N: n, T: t, ReportEvery: max(1, n/t)})
			},
			maxActive: 1,
		},
		{
			name:    "D",
			procs:   func() (Procs, error) { return ProtocolDProcs(DConfig{N: n, T: t}) },
			scripts: func() (func(int) sim.Script, error) { return ProtocolDScripts(DConfig{N: n, T: t}) },
		},
		{
			name: "D-norevert",
			procs: func() (Procs, error) {
				return ProtocolDProcs(DConfig{N: n, T: t, DisableRevert: true})
			},
			scripts: func() (func(int) sim.Script, error) {
				return ProtocolDScripts(DConfig{N: n, T: t, DisableRevert: true})
			},
		},
		{
			name:    "gossip",
			procs:   func() (Procs, error) { return GossipProcs(GossipConfig{N: n, T: t}) },
			scripts: func() (func(int) sim.Script, error) { return GossipScripts(GossipConfig{N: n, T: t}) },
		},
		{
			name:    "gossip-seeded",
			procs:   func() (Procs, error) { return GossipProcs(GossipConfig{N: n, T: t, Seed: 42}) },
			scripts: func() (func(int) sim.Script, error) { return GossipScripts(GossipConfig{N: n, T: t, Seed: 42}) },
		},
	}
	return cases
}

// substrateAdversaries builds fresh (stateful) adversaries per run.
func substrateAdversaries(n, t int) map[string]func() sim.Adversary {
	advs := map[string]func() sim.Adversary{
		"none":    func() sim.Adversary { return nil },
		"cascade": func() sim.Adversary { return adversary.NewCascade(max(1, n/t), t-1) },
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		advs[fmt.Sprintf("random-%d", seed)] = func() sim.Adversary {
			return adversary.NewRandom(0.05, t-1, seed)
		}
	}
	if t > 1 {
		advs["sleep-crash"] = func() sim.Adversary {
			// Crash the highest process while it sleeps, early on.
			return adversary.NewSchedule(adversary.Crash{PID: t - 1, Round: 2})
		}
	}
	return advs
}

func TestSubstrateEquivalence(t *testing.T) {
	// Note n + t ≤ 61 keeps Protocol C's exponential deadlines finite; with
	// larger instances a crashed active process deadlocks the run by design
	// (equally on both substrates, which the comparison still verifies).
	grids := []struct{ n, t int }{{16, 4}, {24, 8}, {30, 7}, {144, 12}}
	for _, g := range grids {
		for _, c := range substrateCases(g.n, g.t) {
			for advName, mkAdv := range substrateAdversaries(g.n, g.t) {
				name := fmt.Sprintf("%s/n=%d,t=%d/%s", c.name, g.n, g.t, advName)
				t.Run(name, func(t *testing.T) {
					pr, err := c.procs()
					if err != nil {
						t.Fatalf("procs: %v", err)
					}
					if pr.Steppers == nil {
						t.Fatalf("default config should build on the stepper substrate")
					}
					scripts, err := c.scripts()
					if err != nil {
						t.Fatalf("scripts: %v", err)
					}
					opt := func() RunOptions {
						return RunOptions{
							Adversary:       mkAdv(),
							MaxActive:       c.maxActive,
							DetailedMetrics: true,
						}
					}
					stepped, stepErr := RunSteppers(g.n, g.t, pr.Steppers, opt())
					scripted, scriptErr := Run(g.n, g.t, scripts, opt())
					if fmt.Sprint(stepErr) != fmt.Sprint(scriptErr) {
						t.Fatalf("substrate errors diverge: stepper=%v script=%v", stepErr, scriptErr)
					}
					if !reflect.DeepEqual(stepped, scripted) {
						t.Fatalf("substrates diverge:\nstepper: %+v\nscript:  %+v", stepped, scripted)
					}
					if stepErr == nil {
						if err := CheckCompletion(stepped); err != nil {
							t.Fatalf("completion: %v", err)
						}
					}
				})
			}
		}
	}
}

// TestMixedSubstrateProtocolB runs Protocol B with even positions on native
// steppers and odd positions on goroutine-backed scripts inside one engine,
// and requires the Result to match the pure-substrate runs.
func TestMixedSubstrateProtocolB(t *testing.T) {
	n, tt := 100, 10
	cfg := ABConfig{N: n, T: tt}
	mkAdv := func() sim.Adversary { return adversary.NewCascade(2, tt-1) }
	opt := func() RunOptions {
		return RunOptions{Adversary: mkAdv(), MaxActive: 1, DetailedMetrics: true}
	}
	steppers, err := ProtocolBSteppers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scripts, err := ProtocolBScripts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pure, err := RunSteppers(n, tt, steppers, opt())
	if err != nil {
		t.Fatal(err)
	}
	// Builders keep per-run state (the shared abState); build fresh ones for
	// the mixed engine.
	steppers2, _ := ProtocolBSteppers(cfg)
	mixed, err := RunSteppers(n, tt, func(id int) sim.Stepper {
		if id%2 == 0 {
			return steppers2(id)
		}
		return sim.ScriptStepper(scripts(id))
	}, opt())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pure, mixed) {
		t.Fatalf("mixed engine diverges:\npure:  %+v\nmixed: %+v", pure, mixed)
	}
	if err := CheckCompletion(mixed); err != nil {
		t.Fatal(err)
	}
}

// TestSubstrateEquivalenceDeepFailures drives Protocol B and D through long
// crash cascades (t-1 failures) so takeover chores, preactive probing and
// the Protocol D revert all fire on both substrates.
func TestSubstrateEquivalenceDeepFailures(t *testing.T) {
	n, tt := 100, 10
	// Cascade with 1 unit per life forces maximal takeover chains.
	for _, c := range []substrateCase{
		abCase("A", ProtocolAProcs, ProtocolAScripts, ABConfig{N: n, T: tt}),
		abCase("B", ProtocolBProcs, ProtocolBScripts, ABConfig{N: n, T: tt}),
	} {
		t.Run(c.name, func(t *testing.T) {
			pr, _ := c.procs()
			scripts, _ := c.scripts()
			opt := func(adv sim.Adversary) RunOptions {
				return RunOptions{Adversary: adv, MaxActive: 1, DetailedMetrics: true}
			}
			stepped, err := RunSteppers(n, tt, pr.Steppers, opt(adversary.NewCascade(1, tt-1)))
			if err != nil {
				t.Fatal(err)
			}
			scripted, err := Run(n, tt, scripts, opt(adversary.NewCascade(1, tt-1)))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stepped, scripted) {
				t.Fatalf("substrates diverge:\nstepper: %+v\nscript:  %+v", stepped, scripted)
			}
			if stepped.Crashes != tt-1 {
				t.Fatalf("cascade injected %d crashes, want %d", stepped.Crashes, tt-1)
			}
		})
	}
	// Protocol D with a mass round-crash to trip the revert to Protocol A.
	for _, kill := range []int{5, 7} {
		kill := kill
		t.Run(fmt.Sprintf("D-revert-%d", kill), func(t *testing.T) {
			crashes := make([]adversary.Crash, 0, kill)
			for pid := tt - kill; pid < tt; pid++ {
				crashes = append(crashes, adversary.Crash{PID: pid, Round: 3})
			}
			mkAdv := func() sim.Adversary { return adversary.NewSchedule(crashes...) }
			pr, err := ProtocolDProcs(DConfig{N: n, T: tt})
			if err != nil {
				t.Fatal(err)
			}
			scripts, err := ProtocolDScripts(DConfig{N: n, T: tt})
			if err != nil {
				t.Fatal(err)
			}
			stepped, err := RunSteppers(n, tt, pr.Steppers, RunOptions{Adversary: mkAdv(), DetailedMetrics: true})
			if err != nil {
				t.Fatal(err)
			}
			scripted, err := Run(n, tt, scripts, RunOptions{Adversary: mkAdv(), DetailedMetrics: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stepped, scripted) {
				t.Fatalf("substrates diverge:\nstepper: %+v\nscript:  %+v", stepped, scripted)
			}
			if err := CheckCompletion(stepped); err != nil {
				t.Fatal(err)
			}
		})
	}
}
