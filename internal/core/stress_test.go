package core

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// Scale stress: the theorem bounds must hold far beyond the sizes the
// targeted tests use.

func TestProtocolAScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	n, tt := 4096, 256
	scripts, err := ProtocolAScripts(ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(n, tt, scripts, RunOptions{
		Adversary: adversary.NewCascade(n/tt, tt-1),
		MaxActive: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatal(err)
	}
	if res.WorkTotal > int64(3*n) {
		t.Fatalf("work = %d > 3n", res.WorkTotal)
	}
	if float64(res.Messages) > 9*float64(tt)*math.Sqrt(float64(tt)) {
		t.Fatalf("messages = %d > 9t√t", res.Messages)
	}
}

func TestProtocolBScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	n, tt := 4096, 256
	scripts, err := ProtocolBScripts(ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(n, tt, scripts, RunOptions{
		Adversary: adversary.NewCascade(n/tt, tt-1),
		MaxActive: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatal(err)
	}
	if res.WorkTotal > int64(3*n) {
		t.Fatalf("work = %d > 3n", res.WorkTotal)
	}
	if res.Rounds > ProtocolBRoundBound(n, tt) {
		t.Fatalf("rounds = %d > bound %d", res.Rounds, ProtocolBRoundBound(n, tt))
	}
}

func TestProtocolDScaleWithPhaseFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	n, tt := 4096, 64
	var crashes []adversary.Crash
	for k := 0; k < 20; k++ {
		crashes = append(crashes, adversary.Crash{PID: k + 1, Round: int64(3 * k)})
	}
	scripts, err := ProtocolDScripts(DConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(n, tt, scripts, RunOptions{Adversary: adversary.NewSchedule(crashes...)})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatal(err)
	}
	if res.WorkTotal > int64(2*n) {
		t.Fatalf("work = %d > 2n", res.WorkTotal)
	}
}

// TestProtocolBGoAheadChainTorture kills processes so that takeover has to
// walk whole groups with go-ahead probes repeatedly: crash every group's
// lower half up front, then cascade the survivors.
func TestProtocolBGoAheadChainTorture(t *testing.T) {
	n, tt := 64, 16
	var crashes []adversary.Crash
	// In each √t-group {4g..4g+3}, kill the two lowest members at round 0.
	for g := 0; g < 4; g++ {
		crashes = append(crashes,
			adversary.Crash{PID: 4 * g, Round: 0},
			adversary.Crash{PID: 4*g + 1, Round: 0},
		)
	}
	adv := adversary.NewChain(
		adversary.NewSchedule(crashes...),
		adversary.NewCascade(n/tt, 7), // then cascade the survivors
	)
	scripts, err := ProtocolBScripts(ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(n, tt, scripts, RunOptions{Adversary: adv, MaxActive: 1, DetailedMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 15 {
		t.Fatalf("crashes = %d, want 15", res.Crashes)
	}
	if res.MessagesByKind["go-ahead"] == 0 {
		t.Fatal("torture run produced no go-ahead probes")
	}
}

// TestProtocolCManySeedsSmall drives Protocol C through a broad seed sweep
// at a size where full-run time is still cheap.
func TestProtocolCManySeedsSmall(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		scripts, err := ProtocolCScripts(CConfig{N: 12, T: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(12, 4, scripts, RunOptions{
			Adversary: adversary.NewRandom(0.04, 3, seed),
			MaxActive: 1,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckCompletion(res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.WorkTotal > int64(12+2*4) {
			t.Fatalf("seed %d: work %d > n+2t", seed, res.WorkTotal)
		}
	}
}

// TestAllProtocolsManySeeds is a broad completion sweep across every
// protocol and 20 random adversaries each.
func TestAllProtocolsManySeeds(t *testing.T) {
	type mk struct {
		name    string
		n, t    int
		scripts func(n, tt int) (func(int) sim.Script, error)
		single  bool
	}
	cases := []mk{
		{"A", 48, 12, func(n, tt int) (func(int) sim.Script, error) {
			return ProtocolAScripts(ABConfig{N: n, T: tt})
		}, true},
		{"B", 48, 12, func(n, tt int) (func(int) sim.Script, error) {
			return ProtocolBScripts(ABConfig{N: n, T: tt})
		}, true},
		{"D", 48, 12, func(n, tt int) (func(int) sim.Script, error) {
			return ProtocolDScripts(DConfig{N: n, T: tt})
		}, false},
		{"uniform-8", 48, 12, func(n, tt int) (func(int) sim.Script, error) {
			return UniformCheckpointScripts(UniformConfig{N: n, T: tt, K: 8})
		}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				scripts, err := c.scripts(c.n, c.t)
				if err != nil {
					t.Fatal(err)
				}
				opt := RunOptions{Adversary: adversary.NewRandom(0.03, c.t-1, seed)}
				if c.single {
					opt.MaxActive = 1
				}
				res, err := Run(c.n, c.t, scripts, opt)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := CheckCompletion(res); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
