package core

import "repro/internal/sim"

// trivialMachine is TrivialScripts as a state machine: every process
// performs every unit in order and never communicates. Besides being the
// paper's §1 baseline, it is the one strategy in this repository that is
// anonymous by construction — no field, branch or message depends on the
// process identity — which makes it fully exchangeable under PID renaming.
// internal/explore exploits exactly that: the trivial certification target
// is declared Symmetric, so its schedule spaces enumerate canonical orbit
// representatives only (see explore/canon.go and the SymmetryWitness
// cross-check that guards the declaration).
type trivialMachine struct {
	n    int
	next int // next unit to perform, 1-based
}

// Step implements sim.Stepper.
func (m *trivialMachine) Step(p *sim.Proc) sim.Yield { return machineYield(m, p) }

func (m *trivialMachine) step(*sim.Proc) (sim.Yield, bool) {
	if m.next > m.n {
		return sim.Yield{}, true
	}
	u := m.next
	m.next++
	return workYield(u), false
}

// Snapshot implements sim.Recoverable: all state is value-typed, so a
// shallow copy is a complete post-commit checkpoint.
func (m *trivialMachine) Snapshot() any { cp := *m; return &cp }

// Restore implements sim.Recoverable.
func (m *trivialMachine) Restore(snap any) { *m = *snap.(*trivialMachine) }

var _ sim.Recoverable = (*trivialMachine)(nil)

// TrivialSteppers builds the no-communication baseline on the stepper
// substrate (crash-recoverable, unlike the script form).
func TrivialSteppers(n int) func(id int) sim.Stepper {
	return func(int) sim.Stepper { return &trivialMachine{n: n, next: 1} }
}

// TrivialProcs builds a standalone trivial-baseline run on the stepper
// substrate.
func TrivialProcs(n int) Procs {
	return Procs{Steppers: TrivialSteppers(n)}
}
