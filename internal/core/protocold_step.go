package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sim"
)

// dMachine is RunProtocolD as a state machine: work phases splitting the
// outstanding units over the processes believed correct, agreement phases in
// the style of Eventual Byzantine Agreement, and the Protocol A revert
// (running an embedded aMachine over the survivors) when more than the
// revert factor's share of a phase's processes die.
//
// The machine is allocation-frugal on the hot path: the view sets it
// broadcasts are frozen arena snapshots (see viewArena) so the live sets
// are never pushed into copy-on-write mode, member lists and received views
// land in scratch buffers preallocated to their maximum size, and every
// broadcast is one engine record via the broadcast plane.
type dMachine struct {
	st    *dState
	j     int
	state int // dPhaseTop, dWork, dPad, dAgreeBegin, dAgreeCollect, dAgreeDone, dRevert

	phase int
	s, t  *bitset.Set
	buf   map[int][]taggedView

	// Work phase cursors; units is a reused scratch of s's members.
	units         []int
	lo, hi, chunk int
	k, padK       int

	// Agreement phase (the paper's Agree, Fig. 4). u, uPrev, tNew and sCur
	// are machine-owned sets reused across phases (sCur and tNew swap roles
	// with s and t when a phase decides); tPrevCount is |T| at the start of
	// the phase, kept for the revert check. heard, views and rcpts are
	// per-round scratch.
	u, uPrev, tNew, sCur *bitset.Set
	tPrevCount           int
	ctr                  int
	heard                []bool
	views                []taggedView
	rcpts                []int

	// arena backs the published view payloads; shared by reference with
	// crash-recovery clones (append-only, so that sharing is safe).
	arena *viewArena

	rev *aMachine
}

const (
	dPhaseTop = iota
	dWork
	dPad
	dAgreeBegin
	dAgreeCollect
	dAgreeDone
	dRevert
)

// Step implements sim.Stepper.
func (m *dMachine) Step(p *sim.Proc) sim.Yield { return machineYield(m, p) }

func newDMachine(st *dState, j int) *dMachine {
	// S is 1-based over units: slot 0 unused.
	s := bitset.New(st.cfg.N+1, true)
	s.Remove(0)
	return &dMachine{
		st:    st,
		j:     j,
		s:     s,
		t:     bitset.New(st.cfg.T, true),
		u:     bitset.New(st.cfg.T, false),
		uPrev: bitset.New(st.cfg.T, false),
		tNew:  bitset.New(st.cfg.T, false),
		sCur:  bitset.New(st.cfg.N+1, false),
		heard: make([]bool, st.cfg.T),
		buf:   make(map[int][]taggedView),
		// Scratch at maximum size up front: append growth on these is pure
		// alloc churn (units holds at most every unit, rcpts and views at
		// most every peer).
		units: make([]int, 0, st.cfg.N+1),
		rcpts: make([]int, 0, st.cfg.T),
		views: make([]taggedView, 0, st.cfg.T),
		arena: &viewArena{},
		state: dPhaseTop,
	}
}

func (m *dMachine) step(p *sim.Proc) (sim.Yield, bool) {
	for {
		switch m.state {
		case dPhaseTop:
			if m.s.Count() == 0 {
				return sim.Yield{}, true
			}
			m.phase++
			// ---- Work phase: the members of T split S evenly by rank. ----
			m.chunk = (m.s.Count() + m.t.Count() - 1) / m.t.Count()
			rank := m.t.RankOf(m.j)
			m.units = m.s.AppendMembers(m.units[:0])
			m.lo = min(rank*m.chunk, len(m.units))
			m.hi = min(m.lo+m.chunk, len(m.units))
			m.k = m.lo
			m.state = dWork

		case dWork:
			if m.k < m.hi {
				u := m.units[m.k]
				m.k++
				return workYield(u), false
			}
			m.padK = m.hi - m.lo
			m.state = dPad

		case dPad:
			// Pad so every process spends ⌈|S|/|T|⌉ rounds in the phase.
			if m.padK < m.chunk {
				m.padK++
				return idleYield(), false
			}
			m.state = dAgreeBegin

		case dAgreeBegin:
			for k := m.lo; k < m.hi; k++ {
				m.s.Remove(m.units[k])
			}
			m.tPrevCount = m.t.Count()
			// ---- Agreement phase. ----
			m.u.CopyFrom(m.t) // who we still listen to (paper's U)
			m.tNew.Clear()    // paper's T, rebuilt from who we hear
			m.tNew.Add(m.j)
			m.sCur.CopyFrom(m.s)
			m.ctr = 1
			if m.phase > 1 {
				m.ctr = 0 // one-round grace: processes may be skewed by one round
			}
			m.state = dAgreeCollect
			return m.bcastYield(p, false), false

		case dAgreeCollect:
			views := m.collect(p)
			m.uPrev.CopyFrom(m.u)
			clear(m.heard)
			done := false
			for i := range views {
				v := &views[i]
				m.heard[v.sender] = true
				if v.Done {
					m.sCur.AdoptShared(v.S)
					m.tNew.AdoptShared(v.T)
					done = true
				} else if !done {
					m.sCur.Intersect(v.S)
					m.tNew.Union(v.T)
				}
			}
			if !done {
				if m.ctr >= 1 {
					m.uPrev.ForEach(func(i int) {
						if i != m.j && !m.heard[i] {
							m.u.Remove(i)
						}
					})
				}
				if m.u.Equal(m.uPrev) && m.ctr >= 1 {
					done = true
				}
			}
			if done {
				m.state = dAgreeDone
				return m.bcastYield(p, true), false
			}
			m.ctr++
			return m.bcastYield(p, false), false

		case dAgreeDone:
			// Adopt the decided view by swapping roles with the scratch sets;
			// sCur and tNew are rebuilt at the next dAgreeBegin.
			m.s, m.sCur = m.sCur, m.s
			m.t, m.tNew = m.tNew, m.t
			if !m.t.Has(m.j) {
				panic(fmt.Sprintf("core: protocol D: correct process %d dropped from T", m.j))
			}
			// ---- Revert check (Theorem 4.1 part 2). ----
			if !m.st.cfg.DisableRevert && float64(m.tPrevCount) > m.st.factor*float64(m.t.Count()) {
				workers := m.t.Members()
				remaining := m.s.Members()
				pos := m.t.RankOf(m.j)
				sub := ABConfig{
					N:          len(remaining),
					T:          len(workers),
					Assign:     Assignment{Workers: workers, Units: remaining},
					StartRound: p.Now(),
				}
				ab, err := newABState(sub)
				if err != nil {
					// Unreachable: sub is well-formed by construction.
					panic(fmt.Sprintf("core: protocol D revert: %v", err))
				}
				m.rev = newAMachine(ab, pos)
				m.state = dRevert
				continue
			}
			m.state = dPhaseTop

		case dRevert:
			return m.rev.step(p)
		}
	}
}

// bcastYield sends the current view to every other member of u as one
// broadcast record (one round; an empty recipient list still consumes the
// round to keep processes aligned). The view's word slices are frozen
// arena snapshots — every recipient reads the same immutable words, and
// the sender's live sets stay privately mutable.
func (m *dMachine) bcastYield(p *sim.Proc, done bool) sim.Yield {
	v := m.arena.view()
	*v = DView{Phase: m.phase, S: m.arena.snap(m.sCur.Words()), T: m.arena.snap(m.tNew.Words()), Done: done}
	m.rcpts = m.u.AppendMembers(m.rcpts[:0])
	return broadcastYield(p, m.rcpts, v)
}

// collect drains the messages delivered this round, returning the current
// phase's views in sender order (in a scratch buffer valid until the next
// collect); views for future phases are buffered, stale ones dropped.
func (m *dMachine) collect(p *sim.Proc) []taggedView {
	views := m.views[:0]
	if b, ok := m.buf[m.phase]; ok {
		views = append(views, b...)
		delete(m.buf, m.phase)
	}
	for _, msg := range p.Drain() {
		v, ok := msg.Payload.(*DView)
		if !ok {
			continue
		}
		switch {
		case v.Phase == m.phase:
			views = append(views, taggedView{DView: *v, sender: msg.From})
		case v.Phase > m.phase:
			m.buf[v.Phase] = append(m.buf[v.Phase], taggedView{DView: *v, sender: msg.From})
		}
	}
	m.views = views
	return views
}

// ProtocolDSteppers builds the per-process steppers of a standalone
// Protocol D run over engine PIDs 0..T-1. Configs with a custom work
// executor need ProtocolDScripts instead.
func ProtocolDSteppers(cfg DConfig) (func(id int) sim.Stepper, error) {
	if !steppable(cfg.Exec) {
		return nil, errNeedsScripts
	}
	st, err := newDState(cfg)
	if err != nil {
		return nil, err
	}
	return func(id int) sim.Stepper {
		return newDMachine(st, id)
	}, nil
}

// ProtocolDProcs builds a standalone Protocol D run on the fastest substrate
// the config allows.
func ProtocolDProcs(cfg DConfig) (Procs, error) {
	if steppable(cfg.Exec) {
		steppers, err := ProtocolDSteppers(cfg)
		if err != nil {
			return Procs{}, err
		}
		return Procs{Steppers: steppers}, nil
	}
	scripts, err := ProtocolDScripts(cfg)
	if err != nil {
		return Procs{}, err
	}
	return Procs{Scripts: scripts}, nil
}
