package core

// Crash-recovery checkpoints (sim.Recoverable) for the protocol state
// machines. A checkpoint is taken at crash time — after the crashing action
// committed, so the machine state already believes that action happened —
// and restored when the scheduled restart round arrives. The granularity of
// a machine's sharing determines the copy depth:
//
//   - aMachine and bMachine (dwMachine included) keep every mutable field
//     value-typed; abState and the precomputed PID lists are immutable after
//     construction, so a shallow struct copy is a complete checkpoint.
//   - cMachine owns a mutable *view.View and a pollers scratch slice; both
//     are deep-copied (the view's Index stays shared).
//   - dMachine owns six mutable bitsets, a future-phase view buffer and an
//     optional embedded revert aMachine; clone copies them all. The DView
//     payloads inside buffered taggedViews carry frozen word slices (arena
//     snapshots) and stay shared, as does the publish arena itself — it is
//     append-only, so clone and original bumping it concurrently can never
//     overwrite each other's published views.
//
// Scripts are never Recoverable (a goroutine stack cannot be checkpointed),
// so script-substrate runs ignore restart schedules and stay crashed —
// exactly the behaviour the pre-recovery engine had for every process.

import "repro/internal/sim"

// Static guarantees that every protocol machine supports crash recovery.
var (
	_ sim.Recoverable = (*aMachine)(nil)
	_ sim.Recoverable = (*bMachine)(nil)
	_ sim.Recoverable = (*cMachine)(nil)
	_ sim.Recoverable = (*dMachine)(nil)
)

// Snapshot implements sim.Recoverable.
func (m *aMachine) Snapshot() any { cp := *m; return &cp }

// Restore implements sim.Recoverable.
func (m *aMachine) Restore(snap any) { *m = *snap.(*aMachine) }

// Snapshot implements sim.Recoverable.
func (m *bMachine) Snapshot() any { cp := *m; return &cp }

// Restore implements sim.Recoverable.
func (m *bMachine) Restore(snap any) { *m = *snap.(*bMachine) }

// cloneC deep-copies the mutable parts of a cMachine. Both Snapshot and
// Restore clone, so the held checkpoint is insulated from the machine in
// both directions.
func (m *cMachine) cloneC() *cMachine {
	cp := *m
	cp.v = m.v.Clone()
	cp.pollers = append([]int(nil), m.pollers...)
	return &cp
}

// Snapshot implements sim.Recoverable.
func (m *cMachine) Snapshot() any { return m.cloneC() }

// Restore implements sim.Recoverable.
func (m *cMachine) Restore(snap any) { *m = *snap.(*cMachine).cloneC() }

// cloneD deep-copies the mutable parts of a dMachine. The per-round scratch
// buffers (views, rcpts) are dead between steps and reset to nil; the
// embedded revert aMachine, if any, is value-copied like a standalone one.
func (m *dMachine) cloneD() *dMachine {
	cp := *m
	cp.s = m.s.Clone()
	cp.t = m.t.Clone()
	cp.u = m.u.Clone()
	cp.uPrev = m.uPrev.Clone()
	cp.tNew = m.tNew.Clone()
	cp.sCur = m.sCur.Clone()
	cp.units = append([]int(nil), m.units...)
	cp.heard = append([]bool(nil), m.heard...)
	cp.buf = make(map[int][]taggedView, len(m.buf))
	for phase, vs := range m.buf {
		cp.buf[phase] = append([]taggedView(nil), vs...)
	}
	cp.views = nil
	cp.rcpts = nil
	if m.rev != nil {
		rev := *m.rev
		cp.rev = &rev
	}
	return &cp
}

// Snapshot implements sim.Recoverable.
func (m *dMachine) Snapshot() any { return m.cloneD() }

// Restore implements sim.Recoverable.
func (m *dMachine) Restore(snap any) { *m = *snap.(*dMachine).cloneD() }
