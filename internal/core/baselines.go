package core

import (
	"fmt"

	"repro/internal/sim"
)

// This file implements the strategies the paper compares against:
//
//   - Trivial (§1): every process performs every unit; tn work, no messages.
//   - UniformCheckpoint (§2's opening argument): one active process
//     checkpoints to everyone after every ⌈n/k⌉ units. No k simultaneously
//     achieves O(n + t) work and O(t√t) messages — the tension that
//     motivates Protocol A's partial/full checkpoint split.
//     SingleCheckpoint (§1's "checkpoint after every unit", k = n) is the
//     special case with n + t − 1 work but ~tn messages.
//   - NaiveSpread (§3's opening argument): the active process reports each
//     unit u to process u mod t and the most knowledgeable process takes
//     over, with no fault detection; Θ(n + t²) effort in the worst case,
//     which Protocol C's recursive fault detection repairs.

// TrivialScripts implements the no-communication baseline.
func TrivialScripts(n, t int) func(id int) sim.Script {
	return func(int) sim.Script {
		return func(p *sim.Proc) {
			for u := 1; u <= n; u++ {
				p.StepWork(u)
			}
		}
	}
}

// UniformDone is the uniform-checkpoint broadcast: units 1..U are done.
type UniformDone struct {
	U int
}

// Kind implements sim.Kinder.
func (UniformDone) Kind() string { return "uniform-done" }

// UniformConfig configures the uniform-checkpointing baseline.
type UniformConfig struct {
	// N is the number of work units, T the number of processes.
	N, T int
	// K is the number of checkpoints per full pass: the active process
	// broadcasts to everyone after every ⌈N/K⌉ units (and after unit N).
	K int
	// Exec performs one unit of work (default: sim.Proc.StepWork).
	Exec WorkExecutor
}

// UniformCheckpointScripts builds the uniform-checkpoint baseline.
func UniformCheckpointScripts(cfg UniformConfig) (func(id int) sim.Script, error) {
	if cfg.T <= 0 || cfg.N < 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("core: invalid uniform config n=%d t=%d k=%d", cfg.N, cfg.T, cfg.K)
	}
	ex := cfg.Exec
	if ex == nil {
		ex = defaultExec
	}
	every := subchunkWidth(cfg.N, cfg.K)
	// Active lifetime: n work rounds + ≤ k+1 broadcast rounds + slack.
	life := int64(cfg.N + cfg.K + 3)
	others := func(p *sim.Proc, j int) []int {
		out := make([]int, 0, cfg.T-1)
		for i := 0; i < cfg.T; i++ {
			if i != j {
				out = append(out, i)
			}
		}
		return out
	}
	active := func(p *sim.Proc, j, known int) {
		p.SetActive(true)
		defer p.SetActive(false)
		since := 0
		for u := known + 1; u <= cfg.N; u++ {
			ex(p, u)
			since++
			if since >= every || u == cfg.N {
				if rcpts := others(p, j); len(rcpts) > 0 {
					p.StepBroadcast(rcpts, UniformDone{U: u})
				}
				since = 0
			}
		}
	}
	return func(j int) sim.Script {
		return func(p *sim.Proc) {
			if j == 0 {
				active(p, j, 0)
				return
			}
			deadline := int64(j) * life
			known := 0
			for {
				msgs := p.WaitUntil(deadline)
				for _, m := range msgs {
					if d, ok := m.Payload.(UniformDone); ok && d.U > known {
						known = d.U
					}
				}
				if known >= cfg.N {
					return
				}
				if p.Now() >= deadline {
					active(p, j, known)
					return
				}
			}
		}
	}, nil
}

// SingleCheckpointScripts is §1's "one worker, checkpoint to everyone after
// every unit" baseline: n + t − 1 work but ~tn messages.
func SingleCheckpointScripts(n, t int) (func(id int) sim.Script, error) {
	return UniformCheckpointScripts(UniformConfig{N: n, T: t, K: max(n, 1)})
}

// NaiveReport is the naive §3 report: the sender has performed units
// 1..Units.
type NaiveReport struct {
	Units int
}

// Kind implements sim.Kinder.
func (NaiveReport) Kind() string { return "naive-report" }

// NaiveConfig configures the naive most-knowledgeable-spread baseline.
type NaiveConfig struct {
	N, T int
	// Exec performs one unit of work (default: sim.Proc.StepWork).
	Exec WorkExecutor
}

// naiveDeadline mirrors Protocol C's D(i, m) with reduced view = units known
// (the naive protocol has no failure knowledge) and K = the active lifetime
// bound 2n + 4.
func naiveDeadline(cfg NaiveConfig, i, m int) int64 {
	k := int64(2*cfg.N + 4)
	if m >= 1 {
		return satMul(k, satMul(int64(cfg.N-m+1), pow2(cfg.N-m)))
	}
	return satMul(k, satMul(int64(cfg.T-i), satMul(int64(cfg.N+1), pow2(cfg.N))))
}

// NaiveSpreadScripts builds the naive baseline: report unit u to process
// u mod t, most knowledgeable takes over, no fault detection. Reports sent
// to retired processes teach no one, which is exactly how the §3 cascade
// drives effort to Θ(n + t²).
func NaiveSpreadScripts(cfg NaiveConfig) (func(id int) sim.Script, error) {
	if cfg.T <= 0 || cfg.N < 0 {
		return nil, fmt.Errorf("core: invalid naive config n=%d t=%d", cfg.N, cfg.T)
	}
	ex := cfg.Exec
	if ex == nil {
		ex = defaultExec
	}
	active := func(p *sim.Proc, j, known int) {
		p.SetActive(true)
		defer p.SetActive(false)
		for u := known + 1; u <= cfg.N; u++ {
			ex(p, u)
			if tgt := u % cfg.T; tgt != j {
				p.StepSend(sim.Send{To: tgt, Payload: NaiveReport{Units: u}})
			}
		}
	}
	return func(j int) sim.Script {
		return func(p *sim.Proc) {
			if j == 0 {
				active(p, j, 0)
				return
			}
			known := 0
			deadline := naiveDeadline(cfg, j, 0)
			for {
				msgs := p.WaitUntil(deadline)
				upd := false
				var recv int64
				for _, m := range msgs {
					if r, ok := m.Payload.(NaiveReport); ok && r.Units > known {
						known = r.Units
						upd = true
						recv = m.SentAt + 1
					}
				}
				if upd {
					deadline = satAdd(recv, naiveDeadline(cfg, j, known))
					continue
				}
				if p.Now() >= deadline {
					active(p, j, known)
					return
				}
			}
		}
	}, nil
}

// NaiveCascadeAdversary reproduces §3's worst case for the naive protocol:
// processes t/2+1..t-1 crash at round 1 (so reports to them are wasted), and
// every active process crashes right after reporting its final unit — each
// successive taker then redoes units its predecessors already performed,
// driving Θ(t²) waste. Process 1 is spared so the run completes.
type NaiveCascadeAdversary struct {
	sim.NopAdversary
	n, t    int
	crashed int
	budget  int
}

var _ sim.Adversary = (*NaiveCascadeAdversary)(nil)

// NewNaiveCascadeAdversary builds the §3 worst-case adversary for an
// (n, t) instance.
func NewNaiveCascadeAdversary(n, t int) *NaiveCascadeAdversary {
	return &NaiveCascadeAdversary{n: n, t: t, budget: t - 1 - (t - 1 - t/2)}
}

// OnAction implements sim.Adversary: crash the sender of a final-unit report
// (keeping the work and delivering the report), except process 1. The scan
// and the Deliver mask cover the action's virtual send list, so the verdict
// is identical whether the report travels as a send or a broadcast.
func (a *NaiveCascadeAdversary) OnAction(_ int64, pid int, act sim.Action) sim.Verdict {
	if pid == 1 || a.crashed >= a.budget {
		return sim.Survive()
	}
	for i, n := 0, act.SendCount(); i < n; i++ {
		if r, ok := act.SendAt(i).Payload.(NaiveReport); ok && r.Units == a.n {
			deliver := make([]bool, n)
			deliver[i] = true
			a.crashed++
			return sim.Verdict{Crash: true, KeepWork: true, Deliver: deliver}
		}
	}
	return sim.Survive()
}

// ScheduledCrashes implements sim.Adversary: the high half crashes early.
func (a *NaiveCascadeAdversary) ScheduledCrashes(r int64) []int {
	if r != 1 {
		return nil
	}
	var pids []int
	for p := a.t/2 + 1; p < a.t; p++ {
		pids = append(pids, p)
	}
	return pids
}

// NextScheduledCrash implements sim.Adversary.
func (a *NaiveCascadeAdversary) NextScheduledCrash(after int64) int64 {
	if after < 1 {
		return 1
	}
	return -1
}
