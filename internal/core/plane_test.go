package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// The broadcast record plane must be invisible in the Results: running every
// protocol with its broadcasts expanded per send (sim.FlattenBroadcasts, the
// reference semantics) must produce reflect.DeepEqual Results under every
// adversary — including crash-mid-broadcast subset verdicts, which apply
// per recipient against the shared record on the native plane.

func flattenedSteppers(steppers func(int) sim.Stepper) func(int) sim.Stepper {
	return func(id int) sim.Stepper { return sim.FlattenBroadcasts(steppers(id)) }
}

func TestBroadcastPlaneEquivalence(t *testing.T) {
	grids := []struct{ n, t int }{{16, 4}, {24, 8}, {30, 7}, {144, 12}}
	for _, g := range grids {
		for _, c := range substrateCases(g.n, g.t) {
			for advName, mkAdv := range substrateAdversaries(g.n, g.t) {
				name := fmt.Sprintf("%s/n=%d,t=%d/%s", c.name, g.n, g.t, advName)
				t.Run(name, func(t *testing.T) {
					pr, err := c.procs()
					if err != nil {
						t.Fatalf("procs: %v", err)
					}
					pr2, err := c.procs() // fresh builder: shared per-run state
					if err != nil {
						t.Fatalf("procs: %v", err)
					}
					opt := func() RunOptions {
						return RunOptions{
							Adversary:       mkAdv(),
							MaxActive:       c.maxActive,
							DetailedMetrics: true,
						}
					}
					native, nativeErr := RunSteppers(g.n, g.t, pr.Steppers, opt())
					flat, flatErr := RunSteppers(g.n, g.t, flattenedSteppers(pr2.Steppers), opt())
					if fmt.Sprint(nativeErr) != fmt.Sprint(flatErr) {
						t.Fatalf("plane errors diverge: native=%v flat=%v", nativeErr, flatErr)
					}
					if !reflect.DeepEqual(native, flat) {
						t.Fatalf("planes diverge:\nnative: %+v\nflat:   %+v", native, flat)
					}
				})
			}
		}
	}
}

// TestBroadcastPlaneCrashMidBroadcast aims a KindCount adversary at a full
// checkpoint so the crash truncates a broadcast to a strict prefix of its
// recipients, and requires both planes to agree on the aftermath.
func TestBroadcastPlaneCrashMidBroadcast(t *testing.T) {
	n, tt := 100, 9
	for _, prefix := range []int{0, 1, 2} {
		prefix := prefix
		t.Run(fmt.Sprintf("prefix=%d", prefix), func(t *testing.T) {
			mkAdv := func() sim.Adversary {
				return &adversary.KindCount{PID: 0, Kind: "full-cp", N: 1, Prefix: prefix}
			}
			opt := func() RunOptions {
				return RunOptions{Adversary: mkAdv(), MaxActive: 1, DetailedMetrics: true}
			}
			run := func(flatten bool) (sim.Result, error) {
				steppers, err := ProtocolBSteppers(ABConfig{N: n, T: tt})
				if err != nil {
					t.Fatal(err)
				}
				if flatten {
					steppers = flattenedSteppers(steppers)
				}
				return RunSteppers(n, tt, steppers, opt())
			}
			native, err := run(false)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := run(true)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(native, flat) {
				t.Fatalf("planes diverge:\nnative: %+v\nflat:   %+v", native, flat)
			}
			if native.Crashes != 1 {
				t.Fatalf("Crashes = %d, want 1", native.Crashes)
			}
			if err := CheckCompletion(native); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPooledRunDeterminism re-runs the same configurations through the
// pooled core runner and requires identical Results: engine reuse across
// runs must be invisible.
func TestPooledRunDeterminism(t *testing.T) {
	type runCase struct {
		name  string
		run   func() (sim.Result, error)
		first sim.Result
	}
	cases := []runCase{}
	mk := func(name string, run func() (sim.Result, error)) {
		cases = append(cases, runCase{name: name, run: run})
	}
	mk("B-cascade", func() (sim.Result, error) {
		pr, err := ProtocolBProcs(ABConfig{N: 60, T: 9})
		if err != nil {
			return sim.Result{}, err
		}
		return RunProcs(60, 9, pr, RunOptions{
			Adversary: adversary.NewCascade(2, 8), MaxActive: 1, DetailedMetrics: true,
		})
	})
	mk("D-random", func() (sim.Result, error) {
		pr, err := ProtocolDProcs(DConfig{N: 64, T: 8})
		if err != nil {
			return sim.Result{}, err
		}
		return RunProcs(64, 8, pr, RunOptions{
			Adversary: adversary.NewRandom(0.05, 7, 3), DetailedMetrics: true,
		})
	})
	for i := range cases {
		res, err := cases[i].run()
		if err != nil {
			t.Fatalf("%s: %v", cases[i].name, err)
		}
		cases[i].first = res
	}
	// Interleave repeats so pooled engines are reused across differing
	// shapes and protocols.
	for round := 0; round < 3; round++ {
		for i := range cases {
			res, err := cases[i].run()
			if err != nil {
				t.Fatalf("%s round %d: %v", cases[i].name, round, err)
			}
			if !reflect.DeepEqual(res, cases[i].first) {
				t.Fatalf("%s round %d diverges from first run:\nfirst: %+v\nnow:   %+v",
					cases[i].name, round, cases[i].first, res)
			}
		}
	}
}
