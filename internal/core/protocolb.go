package core

import (
	"fmt"

	"repro/internal/sim"
)

// RunProtocolB executes logical position j of Protocol B inside the given
// process script. It returns when the process terminates.
//
// Protocol B (paper §2.3) keeps Protocol A's DoWork but replaces the
// absolute deadlines DD(j) with relative ones: after hearing its last
// ordinary message from process i at round r′, process j becomes *preactive*
// at round r′ + DDB(j, i) — by which point every process in earlier groups
// has provably retired — and then polls the not-yet-excluded lower-numbered
// processes of its own group with go-ahead messages, spaced PTO rounds
// apart. A living recipient becomes active immediately (and its first
// broadcast reaches the poller, sending it back to sleep); if nobody
// answers, j becomes active itself. This cuts the running time from
// O(nt + t²) to O(n + t).
func RunProtocolB(p *sim.Proc, cfg ABConfig, j int) error {
	ab, err := newABState(cfg)
	if err != nil {
		return err
	}
	if j < 0 || j >= cfg.T {
		return fmt.Errorf("core: position %d out of range [0,%d)", j, cfg.T)
	}
	if j == 0 {
		ab.doWork(p, j, nil)
		return nil
	}
	// The fictitious round-0 ordinary message "(0, g)" from process 0
	// (paper §2.3): it exists only to seed the deadline computation.
	last := ordMsg{from: 0, sentAt: cfg.StartRound - 1, c: 0}
	lastRecv := cfg.StartRound
	for {
		deadline := lastRecv + ab.tm.ddb(j, last.from)
		msgs := p.WaitUntil(deadline)
		ord, hasOrd, goAhead, term := ab.scanInbox(msgs, j, &last)
		if term {
			return nil
		}
		if hasOrd {
			last = ord
			lastRecv = ord.sentAt + 1
		}
		if goAhead {
			// Become active right away if work remains (paper: "if j
			// receives a go ahead message at round r and c < t"). A
			// concurrently delivered ordinary message has already updated
			// `last`, so the takeover resumes from the freshest knowledge.
			if last.c < ab.tm.p {
				ab.doWork(p, j, realOrNil(&last))
				return nil
			}
			continue
		}
		if hasOrd || p.Now() < deadline {
			continue
		}
		done, err := ab.preactive(p, j, &last, &lastRecv)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// realOrNil strips the fictitious seed message: DoWork must not run takeover
// chores for a message that was never actually sent.
func realOrNil(om *ordMsg) *ordMsg {
	if om.c == 0 && !om.full {
		return nil
	}
	return om
}

// scanInbox classifies a batch of delivered messages: the newest ordinary
// message later than last (valid only when hasNew), whether a go-ahead
// arrived, and whether a termination indication arrived. Results travel by
// value — scanning is the per-message hot path.
func (ab *abState) scanInbox(msgs []sim.Message, j int, last *ordMsg) (newest ordMsg, hasNew, goAhead, term bool) {
	for i := range msgs {
		om, hasOrd, ga, ok := ab.parse(msgs[i])
		if !ok {
			continue
		}
		if ga {
			goAhead = true
			continue
		}
		if !hasOrd {
			continue
		}
		if ab.isTermination(&om, j) {
			return ordMsg{}, false, false, true
		}
		if newer(last, &om) && (!hasNew || newer(&newest, &om)) {
			newest, hasNew = om, true
		}
	}
	return newest, hasNew, goAhead, false
}

// preactive runs the paper's PreactivePhase: probe the lower-numbered,
// not-yet-cleared processes of j's own group with go-ahead messages, PTO
// rounds apart. Returns done=true when the process retired (it became active
// and finished, or it learned of termination); otherwise the process went
// passive again after hearing an ordinary message (recorded in *last).
func (ab *abState) preactive(p *sim.Proc, j int, last *ordMsg, lastRecv *int64) (bool, error) {
	gj := ab.q.GroupOf(j)
	var iPrime int
	if ab.q.GroupOf(last.from) != gj {
		lo, _ := ab.q.Bounds(gj)
		iPrime = lo
	} else {
		iPrime = last.from + 1
	}
	for iPrime < j {
		p.StepSend(sim.Send{To: ab.as.pid(iPrime), Payload: GoAhead{}})
		probeDeadline := p.Now() - 1 + ab.tm.pto() // PTO rounds between probes
		for {
			msgs := p.WaitUntil(probeDeadline)
			ord, hasOrd, goAhead, term := ab.scanInbox(msgs, j, last)
			if term {
				return true, nil
			}
			if hasOrd {
				*last = ord
				*lastRecv = ord.sentAt + 1
			}
			if goAhead {
				if last.c < ab.tm.p {
					ab.doWork(p, j, realOrNil(last))
					return true, nil
				}
				return false, nil
			}
			if hasOrd {
				// The probed process (or another) woke up: back to passive.
				return false, nil
			}
			// Foreign payloads (e.g. application messages produced by the
			// work itself) may wake the wait early; keep waiting out the
			// full probe interval.
			if p.Now() >= probeDeadline {
				break
			}
		}
		iPrime++
	}
	ab.doWork(p, j, realOrNil(last))
	return true, nil
}

// ProtocolBScripts builds the per-process scripts of a standalone Protocol B
// run over engine PIDs 0..T-1.
func ProtocolBScripts(cfg ABConfig) (func(id int) sim.Script, error) {
	if _, err := newABState(cfg); err != nil {
		return nil, err
	}
	return func(id int) sim.Script {
		return func(p *sim.Proc) {
			_ = RunProtocolB(p, cfg, id)
		}
	}, nil
}
