package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/sim"
)

// Exhaustive crash-schedule sweeps, driven by the internal/explore
// subsystem: each test describes its schedule space as an explore.Space and
// certifies the completion guarantee and the at-most-one-active invariant
// (plus any declared bounds) in every single execution. The spaces are
// supersets of the hand-rolled sweeps this file used to run: every
// (victim, action index, keep-work, delivery prefix) combination at bounded
// depth, covering mid-broadcast cuts, crash-after-work-before-checkpoint,
// crash during takeover chores, crash while preactive, and crash while
// answering a poll.

type protoCase struct {
	name    string
	n, t    int
	actions int // action-index depth to sweep
	scripts func() (func(int) sim.Script, error)
}

func exhaustiveCases() []protoCase {
	return []protoCase{
		{
			name: "A", n: 12, t: 4, actions: 10,
			scripts: func() (func(int) sim.Script, error) {
				return core.ProtocolAScripts(core.ABConfig{N: 12, T: 4})
			},
		},
		{
			name: "B", n: 12, t: 4, actions: 10,
			scripts: func() (func(int) sim.Script, error) {
				return core.ProtocolBScripts(core.ABConfig{N: 12, T: 4})
			},
		},
		{
			name: "C", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return core.ProtocolCScripts(core.CConfig{N: 8, T: 4})
			},
		},
		{
			name: "D", n: 12, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return core.ProtocolDScripts(core.DConfig{N: 12, T: 4})
			},
		},
		{
			name: "single-checkpoint", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return core.SingleCheckpointScripts(8, 4)
			},
		},
		{
			name: "naive", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return core.NaiveSpreadScripts(core.NaiveConfig{N: 8, T: 4})
			},
		},
	}
}

// target adapts a case to an explore.Target certifying completion and (for
// the single-active protocols) the engine's invariant check; bound checks
// are off unless a test declares them.
func (pc protoCase) target() explore.Target {
	return explore.Target{
		Protocol: pc.name, N: pc.n, T: pc.t,
		MaxCrashes:   pc.t - 1,
		SingleActive: pc.name != "D",
		NewProcs: func() (core.Procs, error) {
			scripts, err := pc.scripts()
			return core.Procs{Scripts: scripts}, err
		},
	}
}

// enumerate walks the space and fails the test on any certification
// violation, checking the walk covered the space exactly.
func enumerate(t *testing.T, tg explore.Target, sp explore.Space) *explore.Report {
	t.Helper()
	rep, err := tg.Enumerate(sp, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := sp.Count(); rep.Schedules != want {
		t.Fatalf("certified %d of %d schedules", rep.Schedules, want)
	}
	for _, v := range rep.Violations {
		t.Errorf("schedule %s: %s", v.Vector, v.Reason)
	}
	if rep.ViolationCount != 0 {
		t.Fatalf("%d violations over %d schedules", rep.ViolationCount, rep.Schedules)
	}
	return rep
}

func intRange(lo, hi, step int) []int {
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}

func roundRange(lo, hi int64) []int64 {
	var out []int64
	for r := lo; r <= hi; r++ {
		out = append(out, r)
	}
	return out
}

// TestExhaustiveSingleCrashSweep crashes each process at each of its first
// K actions — every (victim, action index, keep-work) combination with the
// broadcast fully suppressed.
func TestExhaustiveSingleCrashSweep(t *testing.T) {
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			enumerate(t, pc.target(), explore.Space{
				Victims:    intRange(0, pc.t-1, 1),
				MaxCrashes: 1,
				Actions:    intRange(1, pc.actions, 1),
				KeepWork:   []bool{false, true},
				Prefixes:   []int{0},
			})
		})
	}
}

// TestExhaustiveBroadcastCutSweep crashes process 0 at each of its first K
// actions, delivering every possible prefix of the cut broadcast.
func TestExhaustiveBroadcastCutSweep(t *testing.T) {
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			enumerate(t, pc.target(), explore.Space{
				Victims:    []int{0},
				MaxCrashes: 1,
				Actions:    intRange(1, pc.actions, 1),
				KeepWork:   []bool{true},
				Prefixes:   intRange(0, pc.t-1, 1),
			})
		})
	}
}

// TestExhaustiveDoubleCrashSweep crosses crashes of processes 0 and 1 over
// action indices — the takeover-during-takeover cases. The space is the
// full keep-work cross where the old hand-rolled sweep fixed keep-work by
// parity.
func TestExhaustiveDoubleCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic sweep")
	}
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			enumerate(t, pc.target(), explore.Space{
				Victims:    []int{0, 1},
				MaxCrashes: 2,
				Actions:    intRange(1, pc.actions, 2),
				KeepWork:   []bool{false, true},
				Prefixes:   []int{0},
			})
		})
	}
}

// TestExhaustiveScheduledRoundCrashes crashes processes 1 and 2 at every
// pair of early rounds, covering simultaneous and staggered
// sleeping-process crashes.
func TestExhaustiveScheduledRoundCrashes(t *testing.T) {
	for _, pc := range exhaustiveCases() {
		pc := pc
		if pc.name == "C" || pc.name == "naive" {
			continue // exponential deadlines make round-indexed sweeps moot
		}
		t.Run(pc.name, func(t *testing.T) {
			enumerate(t, pc.target(), explore.Space{
				Victims:    []int{1, 2},
				MaxCrashes: 2,
				Rounds:     roundRange(0, 7),
			})
		})
	}
}

// TestExhaustiveWorkConservationProperty declares the Theorem 2.8 work
// bound on the single-crash space of Protocol B: work never exceeds 3n and
// (via the completion guarantee) never misses a unit.
func TestExhaustiveWorkConservationProperty(t *testing.T) {
	n, tt := 12, 4
	tg := explore.Target{
		Protocol: "B", N: n, T: tt, MaxCrashes: tt - 1, SingleActive: true,
		NewProcs: func() (core.Procs, error) {
			scripts, err := core.ProtocolBScripts(core.ABConfig{N: n, T: tt})
			return core.Procs{Scripts: scripts}, err
		},
		Bounds: explore.Bounds{Work: int64(3 * n)},
	}
	rep := enumerate(t, tg, explore.Space{
		Victims:    intRange(0, tt-1, 1),
		MaxCrashes: 1,
		Actions:    intRange(1, 12, 1),
		KeepWork:   []bool{true},
		Prefixes:   []int{0},
	})
	if rep.WorstWork.Value > int64(3*n) {
		t.Fatalf("worst work %d > 3n (schedule %s)", rep.WorstWork.Value, rep.WorstWork.Vector)
	}
}

// TestCrashAtEveryRoundProtocolB hammers the takeover window: crash the
// active process at every round of a short run, one run per round.
func TestCrashAtEveryRoundProtocolB(t *testing.T) {
	n, tt := 8, 4
	tg := explore.Target{
		Protocol: "B", N: n, T: tt, MaxCrashes: 1, SingleActive: true,
		NewProcs: func() (core.Procs, error) {
			scripts, err := core.ProtocolBScripts(core.ABConfig{N: n, T: tt})
			return core.Procs{Scripts: scripts}, err
		},
	}
	base := tg.Certify(nil)
	if len(base.Violations) != 0 {
		t.Fatalf("failure-free run: %v", base.Violations)
	}
	enumerate(t, tg, explore.Space{
		Victims:    []int{0},
		MaxCrashes: 1,
		Rounds:     roundRange(0, base.Result.Rounds),
	})
}

func ExampleCheckCompletion() {
	scripts, _ := core.ProtocolBScripts(core.ABConfig{N: 4, T: 2})
	res, _ := core.Run(4, 2, scripts, core.RunOptions{})
	fmt.Println(core.CheckCompletion(res) == nil, res.WorkDistinct)
	// Output: true 4
}
