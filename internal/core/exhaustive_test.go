package core

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// Exhaustive single-crash sweeps: for a small instance, crash each process
// at each of its first K actions — every combination of (victim, action
// index, keep-work, delivery prefix) — and verify the completion guarantee
// and the at-most-one-active invariant in every single execution. This
// systematically covers crash positions that targeted tests can miss:
// mid-broadcast cuts, crash-after-work-before-checkpoint, crash during
// takeover chores, crash while preactive, crash while answering a poll.

type protoCase struct {
	name    string
	n, t    int
	actions int // actions per victim to sweep
	scripts func() (func(int) sim.Script, error)
}

func exhaustiveCases() []protoCase {
	return []protoCase{
		{
			name: "A", n: 12, t: 4, actions: 10,
			scripts: func() (func(int) sim.Script, error) {
				return ProtocolAScripts(ABConfig{N: 12, T: 4})
			},
		},
		{
			name: "B", n: 12, t: 4, actions: 10,
			scripts: func() (func(int) sim.Script, error) {
				return ProtocolBScripts(ABConfig{N: 12, T: 4})
			},
		},
		{
			name: "C", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return ProtocolCScripts(CConfig{N: 8, T: 4})
			},
		},
		{
			name: "D", n: 12, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return ProtocolDScripts(DConfig{N: 12, T: 4})
			},
		},
		{
			name: "single-checkpoint", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return SingleCheckpointScripts(8, 4)
			},
		},
		{
			name: "naive", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return NaiveSpreadScripts(NaiveConfig{N: 8, T: 4})
			},
		},
	}
}

func TestExhaustiveSingleCrashSweep(t *testing.T) {
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			for victim := 0; victim < pc.t; victim++ {
				for at := 1; at <= pc.actions; at++ {
					for _, keep := range []bool{false, true} {
						scripts, err := pc.scripts()
						if err != nil {
							t.Fatal(err)
						}
						adv := adversary.NewSchedule(adversary.Crash{
							PID: victim, AtAction: at, KeepWork: keep,
						})
						opt := RunOptions{Adversary: adv}
						if pc.name != "D" {
							opt.MaxActive = 1
						}
						res, err := Run(pc.n, pc.t, scripts, opt)
						if err != nil {
							t.Fatalf("victim=%d at=%d keep=%v: %v", victim, at, keep, err)
						}
						if err := CheckCompletion(res); err != nil {
							t.Fatalf("victim=%d at=%d keep=%v: %v", victim, at, keep, err)
						}
					}
				}
			}
		})
	}
}

func TestExhaustiveBroadcastCutSweep(t *testing.T) {
	// Crash process 0 at each of its broadcasts, delivering every possible
	// prefix of the cut broadcast.
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			for at := 1; at <= pc.actions; at++ {
				for prefix := 0; prefix <= pc.t-1; prefix++ {
					scripts, err := pc.scripts()
					if err != nil {
						t.Fatal(err)
					}
					adv := adversary.NewSchedule(adversary.Crash{
						PID: 0, AtAction: at, KeepWork: true,
						Deliver: prefixMaskN(pc.t, prefix),
					})
					opt := RunOptions{Adversary: adv}
					if pc.name != "D" {
						opt.MaxActive = 1
					}
					res, err := Run(pc.n, pc.t, scripts, opt)
					if err != nil {
						t.Fatalf("at=%d prefix=%d: %v", at, prefix, err)
					}
					if err := CheckCompletion(res); err != nil {
						t.Fatalf("at=%d prefix=%d: %v", at, prefix, err)
					}
				}
			}
		})
	}
}

func prefixMaskN(n, k int) []bool {
	m := make([]bool, n)
	for i := 0; i < k && i < n; i++ {
		m[i] = true
	}
	return m
}

func TestExhaustiveDoubleCrashSweep(t *testing.T) {
	// Two crashes: process 0 at action i, process 1 at action j — the
	// takeover-during-takeover cases.
	if testing.Short() {
		t.Skip("quadratic sweep")
	}
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			for i := 1; i <= pc.actions; i += 2 {
				for j := 1; j <= pc.actions; j += 2 {
					scripts, err := pc.scripts()
					if err != nil {
						t.Fatal(err)
					}
					adv := adversary.NewSchedule(
						adversary.Crash{PID: 0, AtAction: i, KeepWork: i%2 == 0},
						adversary.Crash{PID: 1, AtAction: j, KeepWork: j%2 == 1},
					)
					opt := RunOptions{Adversary: adv}
					if pc.name != "D" {
						opt.MaxActive = 1
					}
					res, err := Run(pc.n, pc.t, scripts, opt)
					if err != nil {
						t.Fatalf("i=%d j=%d: %v", i, j, err)
					}
					if err := CheckCompletion(res); err != nil {
						t.Fatalf("i=%d j=%d: %v", i, j, err)
					}
				}
			}
		})
	}
}

func TestExhaustiveScheduledRoundCrashes(t *testing.T) {
	// Crash pairs of processes at every pair of early rounds, covering
	// simultaneous and staggered sleeping-process crashes.
	for _, pc := range exhaustiveCases() {
		pc := pc
		if pc.name == "C" || pc.name == "naive" {
			continue // exponential deadlines make round-indexed sweeps moot
		}
		t.Run(pc.name, func(t *testing.T) {
			for r1 := int64(0); r1 < 6; r1 += 2 {
				for r2 := r1; r2 < 8; r2 += 3 {
					scripts, err := pc.scripts()
					if err != nil {
						t.Fatal(err)
					}
					adv := adversary.NewSchedule(
						adversary.Crash{PID: 1, Round: r1},
						adversary.Crash{PID: 2, Round: r2},
					)
					opt := RunOptions{Adversary: adv}
					if pc.name != "D" {
						opt.MaxActive = 1
					}
					res, err := Run(pc.n, pc.t, scripts, opt)
					if err != nil {
						t.Fatalf("r1=%d r2=%d: %v", r1, r2, err)
					}
					if err := CheckCompletion(res); err != nil {
						t.Fatalf("r1=%d r2=%d: %v", r1, r2, err)
					}
				}
			}
		})
	}
}

func TestExhaustiveWorkConservationProperty(t *testing.T) {
	// Across the single-crash sweep of Protocol B, work never exceeds the
	// theorem bound and never misses a unit: a tighter joint property than
	// the individual tests.
	n, tt := 12, 4
	for victim := 0; victim < tt; victim++ {
		for at := 1; at <= 12; at++ {
			scripts, err := ProtocolBScripts(ABConfig{N: n, T: tt})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(n, tt, scripts, RunOptions{
				Adversary: adversary.NewSchedule(adversary.Crash{
					PID: victim, AtAction: at, KeepWork: true,
				}),
				MaxActive: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.WorkDistinct != n {
				t.Fatalf("victim=%d at=%d: %d distinct", victim, at, res.WorkDistinct)
			}
			if res.WorkTotal > int64(3*n) {
				t.Fatalf("victim=%d at=%d: work %d > 3n", victim, at, res.WorkTotal)
			}
		}
	}
}

// TestCrashAtEveryRoundProtocolB hammers the takeover window: crash the
// active process at every round of a short run, one run per round.
func TestCrashAtEveryRoundProtocolB(t *testing.T) {
	n, tt := 8, 4
	probe, err := ProtocolBScripts(ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(n, tt, probe, RunOptions{MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r <= base.Rounds; r++ {
		scripts, err := ProtocolBScripts(ABConfig{N: n, T: tt})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(n, tt, scripts, RunOptions{
			Adversary: adversary.NewSchedule(adversary.Crash{PID: 0, Round: r}),
			MaxActive: 1,
		})
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if err := CheckCompletion(res); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
}

func ExampleCheckCompletion() {
	scripts, _ := ProtocolBScripts(ABConfig{N: 4, T: 2})
	res, _ := Run(4, 2, scripts, RunOptions{})
	fmt.Println(CheckCompletion(res) == nil, res.WorkDistinct)
	// Output: true 4
}
