package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/sim"
)

// Exhaustive crash-schedule sweeps, driven by the internal/explore
// subsystem: each test describes its schedule space as an explore.Space and
// certifies the completion guarantee and the at-most-one-active invariant
// (plus any declared bounds) in every single execution. The spaces are
// supersets of the hand-rolled sweeps this file used to run: every
// (victim, action index, keep-work, delivery prefix) combination at bounded
// depth, covering mid-broadcast cuts, crash-after-work-before-checkpoint,
// crash during takeover chores, crash while preactive, and crash while
// answering a poll.

type protoCase struct {
	name    string
	n, t    int
	actions int // action-index depth to sweep
	scripts func() (func(int) sim.Script, error)
}

func exhaustiveCases() []protoCase {
	return []protoCase{
		{
			name: "A", n: 12, t: 4, actions: 10,
			scripts: func() (func(int) sim.Script, error) {
				return core.ProtocolAScripts(core.ABConfig{N: 12, T: 4})
			},
		},
		{
			name: "B", n: 12, t: 4, actions: 10,
			scripts: func() (func(int) sim.Script, error) {
				return core.ProtocolBScripts(core.ABConfig{N: 12, T: 4})
			},
		},
		{
			name: "C", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return core.ProtocolCScripts(core.CConfig{N: 8, T: 4})
			},
		},
		{
			name: "D", n: 12, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return core.ProtocolDScripts(core.DConfig{N: 12, T: 4})
			},
		},
		{
			name: "single-checkpoint", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return core.SingleCheckpointScripts(8, 4)
			},
		},
		{
			name: "naive", n: 8, t: 4, actions: 8,
			scripts: func() (func(int) sim.Script, error) {
				return core.NaiveSpreadScripts(core.NaiveConfig{N: 8, T: 4})
			},
		},
	}
}

// target adapts a case to an explore.Target certifying completion and (for
// the single-active protocols) the engine's invariant check; bound checks
// are off unless a test declares them.
func (pc protoCase) target() explore.Target {
	return explore.Target{
		Protocol: pc.name, N: pc.n, T: pc.t,
		MaxCrashes:   pc.t - 1,
		SingleActive: pc.name != "D",
		NewProcs: func() (core.Procs, error) {
			scripts, err := pc.scripts()
			return core.Procs{Scripts: scripts}, err
		},
	}
}

// enumerate walks the space and fails the test on any certification
// violation, checking the walk covered the space exactly.
func enumerate(t *testing.T, tg explore.Target, sp explore.Space) *explore.Report {
	t.Helper()
	rep, err := tg.Enumerate(sp, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := sp.Count(); rep.Schedules != want {
		t.Fatalf("certified %d of %d schedules", rep.Schedules, want)
	}
	for _, v := range rep.Violations {
		t.Errorf("schedule %s: %s", v.Vector, v.Reason)
	}
	if rep.ViolationCount != 0 {
		t.Fatalf("%d violations over %d schedules", rep.ViolationCount, rep.Schedules)
	}
	return rep
}

func intRange(lo, hi, step int) []int {
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}

func roundRange(lo, hi int64) []int64 {
	var out []int64
	for r := lo; r <= hi; r++ {
		out = append(out, r)
	}
	return out
}

// TestExhaustiveSingleCrashSweep crashes each process at each of its first
// K actions — every (victim, action index, keep-work) combination with the
// broadcast fully suppressed.
func TestExhaustiveSingleCrashSweep(t *testing.T) {
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			enumerate(t, pc.target(), explore.Space{
				Victims:    intRange(0, pc.t-1, 1),
				MaxCrashes: 1,
				Actions:    intRange(1, pc.actions, 1),
				KeepWork:   []bool{false, true},
				Prefixes:   []int{0},
			})
		})
	}
}

// TestExhaustiveBroadcastCutSweep crashes process 0 at each of its first K
// actions, delivering every possible prefix of the cut broadcast.
func TestExhaustiveBroadcastCutSweep(t *testing.T) {
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			enumerate(t, pc.target(), explore.Space{
				Victims:    []int{0},
				MaxCrashes: 1,
				Actions:    intRange(1, pc.actions, 1),
				KeepWork:   []bool{true},
				Prefixes:   intRange(0, pc.t-1, 1),
			})
		})
	}
}

// TestExhaustiveDoubleCrashSweep crosses crashes of processes 0 and 1 over
// action indices — the takeover-during-takeover cases. The space is the
// full keep-work cross where the old hand-rolled sweep fixed keep-work by
// parity.
func TestExhaustiveDoubleCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic sweep")
	}
	for _, pc := range exhaustiveCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			enumerate(t, pc.target(), explore.Space{
				Victims:    []int{0, 1},
				MaxCrashes: 2,
				Actions:    intRange(1, pc.actions, 2),
				KeepWork:   []bool{false, true},
				Prefixes:   []int{0},
			})
		})
	}
}

// TestExhaustiveScheduledRoundCrashes crashes processes 1 and 2 at every
// pair of early rounds, covering simultaneous and staggered
// sleeping-process crashes.
func TestExhaustiveScheduledRoundCrashes(t *testing.T) {
	for _, pc := range exhaustiveCases() {
		pc := pc
		if pc.name == "C" || pc.name == "naive" {
			continue // exponential deadlines make round-indexed sweeps moot
		}
		t.Run(pc.name, func(t *testing.T) {
			enumerate(t, pc.target(), explore.Space{
				Victims:    []int{1, 2},
				MaxCrashes: 2,
				Rounds:     roundRange(0, 7),
			})
		})
	}
}

// TestExhaustiveWorkConservationProperty declares the Theorem 2.8 work
// bound on the single-crash space of Protocol B: work never exceeds 3n and
// (via the completion guarantee) never misses a unit.
func TestExhaustiveWorkConservationProperty(t *testing.T) {
	n, tt := 12, 4
	tg := explore.Target{
		Protocol: "B", N: n, T: tt, MaxCrashes: tt - 1, SingleActive: true,
		NewProcs: func() (core.Procs, error) {
			scripts, err := core.ProtocolBScripts(core.ABConfig{N: n, T: tt})
			return core.Procs{Scripts: scripts}, err
		},
		Bounds: explore.Bounds{Work: int64(3 * n)},
	}
	rep := enumerate(t, tg, explore.Space{
		Victims:    intRange(0, tt-1, 1),
		MaxCrashes: 1,
		Actions:    intRange(1, 12, 1),
		KeepWork:   []bool{true},
		Prefixes:   []int{0},
	})
	if rep.WorstWork.Value > int64(3*n) {
		t.Fatalf("worst work %d > 3n (schedule %s)", rep.WorstWork.Value, rep.WorstWork.Vector)
	}
}

// TestCrashAtEveryRoundProtocolB hammers the takeover window: crash the
// active process at every round of a short run, one run per round.
func TestCrashAtEveryRoundProtocolB(t *testing.T) {
	n, tt := 8, 4
	tg := explore.Target{
		Protocol: "B", N: n, T: tt, MaxCrashes: 1, SingleActive: true,
		NewProcs: func() (core.Procs, error) {
			scripts, err := core.ProtocolBScripts(core.ABConfig{N: n, T: tt})
			return core.Procs{Scripts: scripts}, err
		},
	}
	base := tg.Certify(nil)
	if len(base.Violations) != 0 {
		t.Fatalf("failure-free run: %v", base.Violations)
	}
	enumerate(t, tg, explore.Space{
		Victims:    []int{0},
		MaxCrashes: 1,
		Rounds:     roundRange(0, base.Result.Rounds),
	})
}

// --- Crash-recovery property tests ---
//
// The scripts substrate cannot restart (a blocked goroutine's stack is not a
// checkpoint), so the recovery sweeps below build stepper-substrate targets
// via the Protocol*Procs constructors: those bodies are Recoverable and a
// crash with RestartAt revives them from the engine's checkpoint.

// recoveryTarget is a stepper-substrate certification target. MaxRound caps
// runaway executions so a sweep that loses its round bound fails loudly
// instead of spinning.
func recoveryTarget(name string, n, t int, maxRound int64) explore.Target {
	tg := explore.Target{
		Protocol: name, N: n, T: t,
		MaxCrashes:   t - 1,
		SingleActive: name != "D",
		MaxRound:     maxRound,
	}
	switch name {
	case "A":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolAProcs(core.ABConfig{N: n, T: t}) }
	case "B":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolBProcs(core.ABConfig{N: n, T: t}) }
	case "C":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolCProcs(core.CConfig{N: n, T: t}) }
	case "D":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolDProcs(core.DConfig{N: n, T: t}) }
	}
	return tg
}

// restartSweepSpace crosses round crashes of processes 1 and 2 over early
// rounds, each either permanent or revived after a delay of 1 or 3 rounds —
// simultaneous, staggered, and crash-after-revival interleavings included.
func restartSweepSpace() explore.Space {
	return explore.Space{
		Victims:       []int{1, 2},
		MaxCrashes:    2,
		Rounds:        roundRange(0, 5),
		RestartDelays: []int64{1, 3},
	}
}

// TestExhaustiveRestartSweep certifies protocols A and D over the full
// crash+restart sweep: completion, the single-active invariant (A), and the
// engine round cap all survive crash recovery. B and C are deliberately
// absent — recovery breaks an invariant of each, and the two tests that
// follow pin exactly how.
func TestExhaustiveRestartSweep(t *testing.T) {
	for _, name := range []string{"A", "D"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rep := enumerate(t, recoveryTarget(name, 12, 4, 4000), restartSweepSpace())
			if want := int64(3 * 12); name == "A" && rep.WorstWork.Value > want {
				t.Fatalf("worst work %d > 3n under recovery (schedule %s)",
					rep.WorstWork.Value, rep.WorstWork.Vector)
			}
		})
	}
}

// TestRestartBreaksSingleActiveProtocolB pins a genuine model finding:
// Protocol B's at-most-one-active guarantee assumes crashed processes stay
// crashed. A revived checkpoint re-enters the takeover ladder, decides its
// predecessors are dead, and goes active next to the living worker. The
// violation is the experiment — and completion still holds once the
// invariant check is lifted, so recovery breaks exclusivity, not progress.
func TestRestartBreaksSingleActiveProtocolB(t *testing.T) {
	vec, err := explore.ParseVector("1@r2:restart@r5")
	if err != nil {
		t.Fatal(err)
	}
	tg := recoveryTarget("B", 12, 4, 4000)
	cert := tg.Certify(vec)
	if len(cert.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly the single-active breach", cert.Violations)
	}
	if want := "2 active processes"; !strings.Contains(cert.Violations[0].Reason, want) {
		t.Fatalf("violation %q, want %q", cert.Violations[0].Reason, want)
	}
	tg.SingleActive = false
	cert = tg.Certify(vec)
	if len(cert.Violations) != 0 {
		t.Fatalf("with invariant lifted: %v", cert.Violations)
	}
	if !cert.Result.Complete() {
		t.Fatal("completion lost under recovery")
	}
}

// TestRestartDegradesRoundsProtocolC pins the other failure mode: Protocol
// C's exponential deadlines mean a process revived with a stale epoch
// re-synchronises only after its doubled deadline fires — the run still
// completes with bounded work, but the round count explodes by orders of
// magnitude. Recovery costs C its time bound, not its work bound.
func TestRestartDegradesRoundsProtocolC(t *testing.T) {
	vec, err := explore.ParseVector("1@r0:restart@r3")
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	cert := recoveryTarget("C", n, 4, 0).Certify(vec)
	if len(cert.Violations) != 0 {
		t.Fatalf("violations: %v", cert.Violations)
	}
	if !cert.Result.Complete() {
		t.Fatal("completion lost under recovery")
	}
	if cert.Result.WorkTotal > int64(3*n) {
		t.Fatalf("work %d > 3n: recovery should not cost C its work bound", cert.Result.WorkTotal)
	}
	if cert.Result.Rounds < 1_000_000 {
		t.Fatalf("rounds = %d; expected the deadline blow-up past 10^6 — if this "+
			"dropped, C's recovery behaviour changed and EXPERIMENTS.md X5 is stale",
			cert.Result.Rounds)
	}
}

// TestRestartKeepWorkNeverDoubleCounts is the restart analogue of work
// conservation: a lone Protocol B worker crashed mid-commit with its work
// kept and later revived must finish all n units with work exactly n — the
// checkpoint remembers completed units, so nothing is redone, and the crash
// losing the in-flight broadcast loses no work either.
func TestRestartKeepWorkNeverDoubleCounts(t *testing.T) {
	n := 8
	for at := 1; at <= n; at++ {
		vec := explore.Vector{{Victim: 0, AtAction: at, KeepWork: true, RestartAt: 40}}
		tg := recoveryTarget("B", n, 1, 4000)
		tg.MaxCrashes = 1
		tg.Bounds = explore.Bounds{Work: int64(n)}
		cert := tg.Certify(vec)
		if len(cert.Violations) != 0 {
			t.Fatalf("at=%d: %v", at, cert.Violations)
		}
		if cert.Collapsed {
			t.Fatalf("at=%d: crash never fired", at)
		}
		if got := cert.Result.WorkTotal; got != int64(n) {
			t.Fatalf("at=%d: work = %d, want exactly %d", at, got, n)
		}
		if got := cert.Result.WorkDistinct; got != n {
			t.Fatalf("at=%d: distinct = %d, want %d", at, got, n)
		}
		if !cert.Result.Complete() {
			t.Fatalf("at=%d: incomplete", at)
		}
	}
}

// TestRestartLostWorkStaysLost documents the deliberate checkpoint
// semantics: the checkpoint is taken at the crash believing the interrupted
// action committed, so a KeepWork=false crash plus restart permanently
// loses that unit — the revived lone worker cannot know to redo it.
func TestRestartLostWorkStaysLost(t *testing.T) {
	n := 8
	vec := explore.Vector{{Victim: 0, AtAction: 2, RestartAt: 40}}
	tg := recoveryTarget("B", n, 1, 4000)
	tg.MaxCrashes = 1
	cert := tg.Certify(vec)
	if cert.Result.Complete() {
		t.Fatal("lost-work restart completed; checkpoint semantics changed")
	}
	if got := cert.Result.WorkDistinct; got != n-1 {
		t.Fatalf("distinct = %d, want %d (exactly the crashed unit missing)", got, n-1)
	}
}

func ExampleCheckCompletion() {
	scripts, _ := core.ProtocolBScripts(core.ABConfig{N: 4, T: 2})
	res, _ := core.Run(4, 2, scripts, core.RunOptions{})
	fmt.Println(core.CheckCompletion(res) == nil, res.WorkDistinct)
	// Output: true 4
}
