package core

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// RunOptions configures a standalone protocol run.
type RunOptions struct {
	// Adversary injects crash failures (nil: failure-free).
	Adversary sim.Adversary
	// MaxActive, when > 0, enables the at-most-MaxActive-active invariant
	// check (Protocols A, B, C use 1; Protocol D is inherently parallel).
	MaxActive int
	// MaxRound aborts runaway executions (0 = engine default).
	MaxRound int64
	// Bandwidth caps per-process outbound transmissions per round
	// (sim.Config.Bandwidth; 0 = unlimited).
	Bandwidth int
	// DetailedMetrics enables per-kind message counting.
	DetailedMetrics bool
	// Tracer receives one event per committed action when non-nil.
	Tracer func(sim.Event)
}

// Procs is a per-process program set on one of the two execution substrates:
// goroutine-backed Scripts or zero-goroutine Steppers. Exactly one field is
// set; the ProtocolXProcs builders pick the stepper substrate whenever the
// config allows it.
type Procs struct {
	Scripts  func(id int) sim.Script
	Steppers func(id int) sim.Stepper
}

// enginePool recycles engines — and with them the Proc objects, inbox
// buffers, run queue, heap and message buffers a run accumulates — across
// the millions of runs a sweep performs. Engine.Reset makes a pooled engine
// indistinguishable from a fresh one, so every core entry point runs
// pooled; sync.Pool's per-P caches give each batch worker its own engine
// without coordination.
var enginePool = sync.Pool{New: func() any { return new(sim.Engine) }}

// runPooled executes one run on a recycled engine. The engine is returned
// to the pool even when the run errs (the engine stays consistent); it is
// deliberately dropped if anything panics through Run.
func runPooled(cfg sim.Config, steppers func(id int) sim.Stepper) (sim.Result, error) {
	eng := enginePool.Get().(*sim.Engine)
	eng.Reset(cfg, steppers)
	res, err := eng.Run()
	enginePool.Put(eng)
	return res, err
}

// Run executes scripts for an (n, t) instance and returns the metrics.
func Run(n, t int, scripts func(id int) sim.Script, opt RunOptions) (sim.Result, error) {
	return runPooled(engineConfig(n, t, opt), func(id int) sim.Stepper {
		return sim.ScriptStepper(scripts(id))
	})
}

// RunSteppers executes steppers for an (n, t) instance and returns the
// metrics.
func RunSteppers(n, t int, steppers func(id int) sim.Stepper, opt RunOptions) (sim.Result, error) {
	return runPooled(engineConfig(n, t, opt), steppers)
}

// RunProcs executes a protocol on whichever substrate its builder chose.
func RunProcs(n, t int, pr Procs, opt RunOptions) (sim.Result, error) {
	if pr.Steppers != nil {
		return RunSteppers(n, t, pr.Steppers, opt)
	}
	return Run(n, t, pr.Scripts, opt)
}

// SteppersFor adapts a Procs builder to the stepper substrate, shimming
// script-only configurations behind sim.ScriptStepper. External execution
// planes (internal/live) drive steppers exclusively; this is their bridge
// to every protocol builder in this package.
func SteppersFor(pr Procs, err error) (func(id int) sim.Stepper, error) {
	if err != nil {
		return nil, err
	}
	if pr.Steppers != nil {
		return pr.Steppers, nil
	}
	return func(id int) sim.Stepper { return sim.ScriptStepper(pr.Scripts(id)) }, nil
}

func engineConfig(n, t int, opt RunOptions) sim.Config {
	return sim.Config{
		NumProcs:        t,
		NumUnits:        n,
		Adversary:       opt.Adversary,
		MaxRound:        opt.MaxRound,
		MaxActive:       opt.MaxActive,
		Bandwidth:       opt.Bandwidth,
		DetailedMetrics: opt.DetailedMetrics,
		Tracer:          opt.Tracer,
	}
}

// CheckCompletion enforces the paper's core guarantee: if at least one
// process survives (terminates voluntarily), all work must have been
// performed.
func CheckCompletion(res sim.Result) error {
	if res.Survivors > 0 && !res.Complete() {
		return fmt.Errorf("core: %d survivors but only %d distinct units done",
			res.Survivors, res.WorkDistinct)
	}
	return nil
}
