package core

import (
	"fmt"

	"repro/internal/sim"
)

// RunOptions configures a standalone protocol run.
type RunOptions struct {
	// Adversary injects crash failures (nil: failure-free).
	Adversary sim.Adversary
	// MaxActive, when > 0, enables the at-most-MaxActive-active invariant
	// check (Protocols A, B, C use 1; Protocol D is inherently parallel).
	MaxActive int
	// MaxRound aborts runaway executions (0 = engine default).
	MaxRound int64
	// DetailedMetrics enables per-kind message counting.
	DetailedMetrics bool
	// Tracer receives one event per committed action when non-nil.
	Tracer func(sim.Event)
}

// Run executes scripts for an (n, t) instance and returns the metrics.
func Run(n, t int, scripts func(id int) sim.Script, opt RunOptions) (sim.Result, error) {
	eng := sim.New(sim.Config{
		NumProcs:        t,
		NumUnits:        n,
		Adversary:       opt.Adversary,
		MaxRound:        opt.MaxRound,
		MaxActive:       opt.MaxActive,
		DetailedMetrics: opt.DetailedMetrics,
		Tracer:          opt.Tracer,
	}, scripts)
	return eng.Run()
}

// CheckCompletion enforces the paper's core guarantee: if at least one
// process survives (terminates voluntarily), all work must have been
// performed.
func CheckCompletion(res sim.Result) error {
	if res.Survivors > 0 && !res.Complete() {
		return fmt.Errorf("core: %d survivors but only %d distinct units done",
			res.Survivors, res.WorkDistinct)
	}
	return nil
}
