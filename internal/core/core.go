package core
