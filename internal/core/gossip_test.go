package core

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

func gossipGrids() []struct{ n, t int } {
	return []struct{ n, t int }{{1, 1}, {8, 3}, {16, 4}, {24, 8}, {30, 7}, {144, 12}, {200, 16}}
}

// TestGossipBounds checks completion and the registered CGKS-style bounds
// (work, messages, rounds) across grids under the substrate adversary zoo.
func TestGossipBounds(t *testing.T) {
	for _, g := range gossipGrids() {
		for advName, mkAdv := range substrateAdversaries(g.n, g.t) {
			t.Run(fmt.Sprintf("n=%d,t=%d/%s", g.n, g.t, advName), func(t *testing.T) {
				pr, err := GossipProcs(GossipConfig{N: g.n, T: g.t})
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunProcs(g.n, g.t, pr, RunOptions{Adversary: mkAdv()})
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckCompletion(res); err != nil {
					t.Fatal(err)
				}
				f := g.t - 1
				checkGossipBounds(t, res, g.n, g.t, f, 0)
			})
		}
	}
}

func checkGossipBounds(t *testing.T, res sim.Result, n, tt, f, lag int) {
	t.Helper()
	if w := GossipWorkBound(n, tt, f, lag); res.WorkTotal > w {
		t.Errorf("work %d exceeds bound %d", res.WorkTotal, w)
	}
	if m := GossipMessageBound(n, tt, f, lag); res.Messages > m {
		t.Errorf("messages %d exceed bound %d", res.Messages, m)
	}
	if r := GossipRoundBound(n, tt, f, lag); res.Rounds > r {
		t.Errorf("rounds %d exceed bound %d", res.Rounds, r)
	}
}

// TestGossipBandwidthCap runs gossip under the congested-clique cap of half
// the fanout and checks that completion and the lag-1 bounds hold, and that
// the cap actually binds (rumors get deferred) once the fanout exceeds it.
func TestGossipBandwidthCap(t *testing.T) {
	for _, g := range gossipGrids() {
		d := GossipFanout(g.t)
		cap := max(1, (d+1)/2)
		for advName, mkAdv := range substrateAdversaries(g.n, g.t) {
			t.Run(fmt.Sprintf("n=%d,t=%d/%s", g.n, g.t, advName), func(t *testing.T) {
				pr, err := GossipProcs(GossipConfig{N: g.n, T: g.t})
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunProcs(g.n, g.t, pr, RunOptions{Adversary: mkAdv(), Bandwidth: cap})
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckCompletion(res); err != nil {
					t.Fatal(err)
				}
				checkGossipBounds(t, res, g.n, g.t, g.t-1, 1)
				if d > cap && res.Deferred == 0 {
					t.Errorf("fanout %d over cap %d should defer rumors", d, cap)
				}
			})
		}
	}
}

// TestGossipPoisonedRestart pins the Snapshot semantics that make restarts
// sound: a KeepWork=false crash at a work action discards the unit, and the
// crash-time checkpoint must not remember it as done — otherwise the
// restarted process gossips a unit nobody performed and survivors terminate
// incomplete. Work rounds are a process's odd-numbered actions (epochs are
// work-then-gossip pairs), so AtAction 3 lands on the second work round.
func TestGossipPoisonedRestart(t *testing.T) {
	n, tt := 24, 4
	for _, keep := range []bool{false, true} {
		t.Run(fmt.Sprintf("keepwork=%v", keep), func(t *testing.T) {
			pr, err := GossipProcs(GossipConfig{N: n, T: tt})
			if err != nil {
				t.Fatal(err)
			}
			adv := adversary.NewSchedule(adversary.Crash{
				PID: 1, AtAction: 3, KeepWork: keep, RestartAt: 9,
			})
			res, err := RunProcs(n, tt, pr, RunOptions{Adversary: adv})
			if err != nil {
				t.Fatal(err)
			}
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d, want 1", res.Restarts)
			}
			if err := CheckCompletion(res); err != nil {
				t.Fatal(err)
			}
			if res.Survivors != tt {
				t.Fatalf("survivors = %d, want %d (restarted process rejoins)", res.Survivors, tt)
			}
			// A process never repeats a unit it confirmed: per-process work
			// stays within n plus one retry per restart.
			for pid, p := range res.PerProc {
				if p.Work > int64(n)+p.Restarts {
					t.Errorf("proc %d work %d exceeds n+restarts %d", pid, p.Work, int64(n)+p.Restarts)
				}
			}
		})
	}
}

// TestGossipConfigValidation pins the builder error surface.
func TestGossipConfigValidation(t *testing.T) {
	for _, cfg := range []GossipConfig{{N: 5, T: 0}, {N: -1, T: 3}, {N: 5, T: 3, Fanout: -1}} {
		if _, err := GossipProcs(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	// A custom executor is script-only.
	if _, err := GossipSteppers(GossipConfig{N: 5, T: 3, Exec: func(p *sim.Proc, u int) { p.StepWork(u) }}); err == nil {
		t.Error("custom executor should refuse the stepper substrate")
	}
	pr, err := GossipProcs(GossipConfig{N: 5, T: 3, Exec: func(p *sim.Proc, u int) { p.StepWork(u) }})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Scripts == nil {
		t.Error("custom executor should fall back to scripts")
	}
}
