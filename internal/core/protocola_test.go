package core

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// runA runs Protocol A on an (n, t) instance with the given adversary and
// verifies the completion guarantee plus the single-active invariant.
func runA(t *testing.T, n, tt int, adv sim.Adversary) sim.Result {
	t.Helper()
	scripts, err := ProtocolAScripts(ABConfig{N: n, T: tt})
	if err != nil {
		t.Fatalf("scripts: %v", err)
	}
	res, err := Run(n, tt, scripts, RunOptions{
		Adversary: adv, MaxActive: 1, DetailedMetrics: true,
	})
	if err != nil {
		t.Fatalf("run n=%d t=%d: %v", n, tt, err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatalf("n=%d t=%d: %v", n, tt, err)
	}
	return res
}

func TestProtocolAFailureFree(t *testing.T) {
	res := runA(t, 64, 16, nil)
	if res.WorkTotal != 64 {
		t.Fatalf("failure-free work = %d, want exactly n=64", res.WorkTotal)
	}
	if res.Survivors != 16 {
		t.Fatalf("survivors = %d, want 16", res.Survivors)
	}
	// Only process 0 ever works.
	if res.PerProc[0].Work != 64 {
		t.Fatalf("proc 0 work = %d, want 64", res.PerProc[0].Work)
	}
	for pid := 1; pid < 16; pid++ {
		if res.PerProc[pid].Work != 0 {
			t.Fatalf("proc %d worked (%d) in failure-free run", pid, res.PerProc[pid].Work)
		}
	}
}

func TestProtocolATheorem23Bounds(t *testing.T) {
	// Theorem 2.3: ≤ 3n work, ≤ 9t√t messages, all retired by nt + 3t²
	// (bounds verified with model slack: time bound uses our activeLife).
	cases := []struct{ n, t int }{
		{16, 4}, {64, 16}, {144, 9}, {256, 16}, {100, 25},
	}
	for _, c := range cases {
		advs := map[string]sim.Adversary{
			"none":    nil,
			"cascade": adversary.NewCascade(max(1, c.n/c.t), c.t-1),
			"random":  adversary.NewRandom(0.02, c.t-1, 7),
		}
		for name, adv := range advs {
			res := runA(t, c.n, c.t, adv)
			nPrime := max(c.n, c.t)
			if res.WorkTotal > int64(3*nPrime) {
				t.Errorf("n=%d t=%d %s: work %d > 3n'=%d", c.n, c.t, name, res.WorkTotal, 3*nPrime)
			}
			want := 9.0 * float64(c.t) * math.Sqrt(float64(c.t))
			if float64(res.Messages) > want {
				t.Errorf("n=%d t=%d %s: messages %d > 9t√t=%.0f", c.n, c.t, name, res.Messages, want)
			}
			tm := newABTimeouts(c.n, c.t)
			timeBound := int64(c.t) * tm.activeLife()
			if res.Rounds > timeBound {
				t.Errorf("n=%d t=%d %s: rounds %d > %d", c.n, c.t, name, res.Rounds, timeBound)
			}
		}
	}
}

func TestProtocolAAllButOneCrashImmediately(t *testing.T) {
	// Processes 0..t-2 crash at round 0 (before acting); only t-1 survives
	// and must do all the work alone.
	n, tt := 32, 8
	var crashes []adversary.Crash
	for pid := 0; pid < tt-1; pid++ {
		crashes = append(crashes, adversary.Crash{PID: pid, Round: 0})
	}
	res := runA(t, n, tt, adversary.NewSchedule(crashes...))
	if res.Survivors != 1 {
		t.Fatalf("survivors = %d, want 1", res.Survivors)
	}
	if res.PerProc[tt-1].Work != int64(n) {
		t.Fatalf("last process did %d units, want all %d", res.PerProc[tt-1].Work, n)
	}
}

func TestProtocolACrashMidPartialCheckpoint(t *testing.T) {
	// Process 0 crashes during its first partial checkpoint, delivering to
	// only one group member. The work must still complete, with at most one
	// subchunk redone by the taker.
	n, tt := 64, 16
	adv := &adversary.KindCount{PID: 0, Kind: "partial-cp", N: 1, Prefix: 1}
	res := runA(t, n, tt, adv)
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	w := subchunkWidth(n, tt)
	if res.WorkTotal > int64(n+w) {
		t.Fatalf("work = %d, want ≤ n + one subchunk = %d", res.WorkTotal, n+w)
	}
}

func TestProtocolACrashMidFullCheckpoint(t *testing.T) {
	// Crash during the first full-checkpoint broadcast: the taker must
	// complete the interrupted full checkpoint without redoing the chunk's
	// work more than the analysis allows.
	n, tt := 64, 16
	for nth := 1; nth <= 4; nth++ {
		adv := &adversary.KindCount{PID: 0, Kind: "full-cp", N: nth, Prefix: 2}
		res := runA(t, n, tt, adv)
		if res.WorkTotal > int64(n+n/4) {
			t.Fatalf("nth=%d: work = %d, want ≤ n + chunk = %d", nth, res.WorkTotal, n+n/4)
		}
	}
}

func TestProtocolACascadeOfTakeovers(t *testing.T) {
	// Every process crashes at its first checkpoint after one subchunk of
	// work; t-1 takeovers happen and the last process finishes.
	n, tt := 64, 16
	res := runA(t, n, tt, adversary.NewCascade(n/tt, tt-1))
	if res.Crashes != tt-1 {
		t.Fatalf("crashes = %d, want %d", res.Crashes, tt-1)
	}
	if res.Survivors != 1 {
		t.Fatalf("survivors = %d, want 1", res.Survivors)
	}
}

func TestProtocolARaggedParameters(t *testing.T) {
	// Non-square t, n not divisible by t: correctness (not paper constants)
	// must hold.
	cases := []struct{ n, t int }{
		{10, 3}, {17, 5}, {33, 7}, {50, 12}, {7, 7}, {5, 10}, {1, 2},
	}
	for _, c := range cases {
		runA(t, c.n, c.t, nil)
		runA(t, c.n, c.t, adversary.NewRandom(0.05, c.t-1, 3))
	}
}

func TestProtocolASingleProcess(t *testing.T) {
	res := runA(t, 8, 1, nil)
	if res.WorkTotal != 8 || res.Messages != 0 {
		t.Fatalf("work=%d msgs=%d, want 8/0", res.WorkTotal, res.Messages)
	}
}

func TestProtocolAInvalidConfig(t *testing.T) {
	if _, err := ProtocolAScripts(ABConfig{N: 4, T: 0}); err == nil {
		t.Fatal("want error for t=0")
	}
	if _, err := ProtocolAScripts(ABConfig{N: -1, T: 2}); err == nil {
		t.Fatal("want error for n<0")
	}
	if _, err := ProtocolAScripts(ABConfig{N: 4, T: 2, Assign: Assignment{Workers: []int{0}}}); err == nil {
		t.Fatal("want error for worker/t mismatch")
	}
}

func TestProtocolASubsetAssignment(t *testing.T) {
	// Run A among pids {1,3,5} on units {2,4,6,8} of a 6-process engine;
	// other pids idle. Exercises the assignment machinery used by Protocol
	// D's revert.
	cfg := ABConfig{
		N: 4, T: 3,
		Assign: Assignment{Workers: []int{1, 3, 5}, Units: []int{2, 4, 6, 8}},
	}
	scripts := func(id int) sim.Script {
		return func(p *sim.Proc) {
			switch id {
			case 1, 3, 5:
				pos := map[int]int{1: 0, 3: 1, 5: 2}[id]
				_ = RunProtocolA(p, cfg, pos)
			default:
				// Non-participants just wait out the run.
			}
		}
	}
	res, err := Run(8, 6, scripts, RunOptions{MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkDistinct != 4 {
		t.Fatalf("distinct units = %d, want the 4 assigned", res.WorkDistinct)
	}
	for _, pid := range []int{0, 2, 4} {
		if res.PerProc[pid].Work != 0 {
			t.Fatalf("non-participant %d worked", pid)
		}
	}
}

func TestSubchunkRange(t *testing.T) {
	// n=10, P=4 → w=3: 1-3, 4-6, 7-9, 10-10.
	cases := []struct{ c, lo, hi int }{{1, 1, 3}, {2, 4, 6}, {3, 7, 9}, {4, 10, 10}}
	for _, c := range cases {
		lo, hi := subchunkRange(10, 4, c.c)
		if lo != c.lo || hi != c.hi {
			t.Errorf("subchunkRange(10,4,%d) = [%d,%d], want [%d,%d]", c.c, lo, hi, c.lo, c.hi)
		}
	}
	// Empty trailing subchunk: n=4, P=4, w=1 has none; n=3, P=4 has one.
	lo, hi := subchunkRange(3, 4, 4)
	if lo <= hi {
		t.Errorf("subchunkRange(3,4,4) = [%d,%d], want empty", lo, hi)
	}
}
