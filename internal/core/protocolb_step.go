package core

import (
	"repro/internal/sim"
)

// bMachine is RunProtocolB as a state machine: passive waiting on relative
// deadlines DDB(j, i), the preactive go-ahead probing phase, and DoWork via
// dwMachine. Every wait site of the script maps to one waiting state here.
type bMachine struct {
	ab *abState
	j  int
	st int // bPassive, bProbe, bProbeSent, bProbeWait, bWork

	last     ordMsg // always valid: seeded with the fictitious round-0 message
	lastRecv int64

	iPrime        int
	probeDeadline int64
	probe         [1]sim.Send // scratch backing the go-ahead poll action

	workLast    ordMsg // what DoWork resumes from (realOrNil applied)
	hasWorkLast bool
	dwReady     bool
	dw          dwMachine
}

// setWorkLast records what DoWork resumes from, stripping the fictitious
// seed message like realOrNil.
func (m *bMachine) setWorkLast() {
	m.workLast = m.last
	m.hasWorkLast = m.last.c != 0 || m.last.full
}

func (m *bMachine) workLastPtr() *ordMsg {
	if !m.hasWorkLast {
		return nil
	}
	return &m.workLast
}

const (
	bPassive = iota
	bProbe
	bProbeSent
	bProbeWait
	bWork
)

// Step implements sim.Stepper.
func (m *bMachine) Step(p *sim.Proc) sim.Yield { return machineYield(m, p) }

func newBMachine(ab *abState, j int) *bMachine {
	m := &bMachine{ab: ab, j: j}
	if j == 0 {
		m.st = bWork
		return m
	}
	// The fictitious round-0 ordinary message "(0, g)" from process 0
	// (paper §2.3): it exists only to seed the deadline computation.
	m.last = ordMsg{from: 0, sentAt: ab.cfg.StartRound - 1, c: 0}
	m.lastRecv = ab.cfg.StartRound
	m.st = bPassive
	return m
}

func (m *bMachine) step(p *sim.Proc) (sim.Yield, bool) {
	for {
		switch m.st {
		case bWork:
			if !m.dwReady {
				m.dw.init(m.ab, p, m.j, m.workLastPtr())
				m.dwReady = true
			}
			y, done := m.dw.step(p)
			if done {
				p.SetActive(false)
				return sim.Yield{}, true
			}
			return y, false

		case bPassive:
			deadline := m.lastRecv + m.ab.tm.ddb(m.j, m.last.from)
			if shouldSleep(p, deadline) {
				return sleepYield(deadline), false
			}
			ord, hasOrd, goAhead, term := m.ab.scanInbox(p.Drain(), m.j, &m.last)
			if term {
				return sim.Yield{}, true
			}
			if hasOrd {
				m.last = ord
				m.lastRecv = ord.sentAt + 1
			}
			if goAhead {
				// Become active right away if work remains (paper: "if j
				// receives a go ahead message at round r and c < t"). A
				// concurrently delivered ordinary message has already updated
				// `last`, so the takeover resumes from the freshest knowledge.
				if m.last.c < m.ab.tm.p {
					m.setWorkLast()
					m.st = bWork
				}
				continue
			}
			if hasOrd || p.Now() < deadline {
				continue
			}
			// Go preactive: probe the lower-numbered, not-yet-cleared
			// processes of j's own group.
			gj := m.ab.q.GroupOf(m.j)
			if m.ab.q.GroupOf(m.last.from) != gj {
				lo, _ := m.ab.q.Bounds(gj)
				m.iPrime = lo
			} else {
				m.iPrime = m.last.from + 1
			}
			m.st = bProbe

		case bProbe:
			if m.iPrime >= m.j {
				m.setWorkLast()
				m.st = bWork
				continue
			}
			m.st = bProbeSent
			m.probe[0] = sim.Send{To: m.ab.as.pid(m.iPrime), Payload: GoAhead{}}
			return sendYield(m.probe[:]), false

		case bProbeSent:
			// PTO rounds between probes, measured from the send round (the
			// probe committed at Now()-1).
			m.probeDeadline = p.Now() - 1 + m.ab.tm.pto()
			m.st = bProbeWait

		case bProbeWait:
			if shouldSleep(p, m.probeDeadline) {
				return sleepYield(m.probeDeadline), false
			}
			ord, hasOrd, goAhead, term := m.ab.scanInbox(p.Drain(), m.j, &m.last)
			if term {
				return sim.Yield{}, true
			}
			if hasOrd {
				m.last = ord
				m.lastRecv = ord.sentAt + 1
			}
			if goAhead {
				if m.last.c < m.ab.tm.p {
					m.setWorkLast()
					m.st = bWork
				} else {
					m.st = bPassive
				}
				continue
			}
			if hasOrd {
				// The probed process (or another) woke up: back to passive.
				m.st = bPassive
				continue
			}
			if p.Now() >= m.probeDeadline {
				m.iPrime++
				m.st = bProbe
				continue
			}
			// Foreign payloads (e.g. application messages produced by the
			// work itself) may wake the wait early; keep waiting out the
			// full probe interval.
		}
	}
}

// ProtocolBSteppers builds the per-process steppers of a standalone
// Protocol B run over engine PIDs 0..T-1. Configs with a custom work
// executor need ProtocolBScripts instead.
func ProtocolBSteppers(cfg ABConfig) (func(id int) sim.Stepper, error) {
	if !steppable(cfg.Exec) {
		return nil, errNeedsScripts
	}
	ab, err := newABState(cfg)
	if err != nil {
		return nil, err
	}
	// Fill the shared PID cache now: steppers of one engine run on a single
	// goroutine, but one Procs value may back several engines concurrently.
	ab.pidsByGroup()
	return func(id int) sim.Stepper {
		return newBMachine(ab, id)
	}, nil
}

// ProtocolBProcs builds a standalone Protocol B run on the fastest substrate
// the config allows.
func ProtocolBProcs(cfg ABConfig) (Procs, error) {
	if steppable(cfg.Exec) {
		steppers, err := ProtocolBSteppers(cfg)
		if err != nil {
			return Procs{}, err
		}
		return Procs{Steppers: steppers}, nil
	}
	scripts, err := ProtocolBScripts(cfg)
	if err != nil {
		return Procs{}, err
	}
	return Procs{Scripts: scripts}, nil
}
