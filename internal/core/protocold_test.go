package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

func runD(t *testing.T, n, tt int, adv sim.Adversary) sim.Result {
	t.Helper()
	res, err := runDRaw(n, tt, DConfig{N: n, T: tt}, adv)
	if err != nil {
		t.Fatalf("run n=%d t=%d: %v", n, tt, err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatalf("n=%d t=%d: %v", n, tt, err)
	}
	return res
}

func runDRaw(n, tt int, cfg DConfig, adv sim.Adversary) (sim.Result, error) {
	scripts, err := ProtocolDScripts(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return Run(n, tt, scripts, RunOptions{Adversary: adv, DetailedMetrics: true})
}

func TestProtocolDFailureFree(t *testing.T) {
	// §4: with no failures, n units of work, n/t + 2 rounds, ≤ 2t² messages.
	n, tt := 64, 8
	res := runD(t, n, tt, nil)
	if res.WorkTotal != int64(n) {
		t.Fatalf("work = %d, want exactly n = %d", res.WorkTotal, n)
	}
	wantRounds := int64(n/tt + 2)
	if res.Rounds != wantRounds {
		t.Fatalf("rounds = %d, want n/t + 2 = %d", res.Rounds, wantRounds)
	}
	if res.Messages > int64(2*tt*tt) {
		t.Fatalf("messages = %d, want ≤ 2t² = %d", res.Messages, 2*tt*tt)
	}
	if res.Survivors != tt {
		t.Fatalf("survivors = %d", res.Survivors)
	}
	// Work is perfectly balanced.
	for pid := 0; pid < tt; pid++ {
		if res.PerProc[pid].Work != int64(n/tt) {
			t.Fatalf("proc %d work = %d, want %d", pid, res.PerProc[pid].Work, n/tt)
		}
	}
}

func TestProtocolDOneFailure(t *testing.T) {
	// §4: with one failure, ≤ n + n/t work, ≤ n/t + ⌈n/(t(t-1))⌉ + 6 rounds,
	// ≤ 5t² messages.
	n, tt := 64, 8
	res := runD(t, n, tt, adversary.NewSchedule(adversary.Crash{PID: 3, Round: 0}))
	if res.WorkTotal > int64(n+n/tt) {
		t.Fatalf("work = %d, want ≤ n + n/t = %d", res.WorkTotal, n+n/tt)
	}
	bound := int64(n/tt + (n+tt*(tt-1)-1)/(tt*(tt-1)) + 6)
	if res.Rounds > bound {
		t.Fatalf("rounds = %d, want ≤ %d", res.Rounds, bound)
	}
	if res.Messages > int64(5*tt*tt) {
		t.Fatalf("messages = %d, want ≤ 5t² = %d", res.Messages, 5*tt*tt)
	}
}

func TestProtocolDTheorem41Part1(t *testing.T) {
	// Theorem 4.1(1): with at most half the live processes failing per
	// phase, ≤ 2n work, ≤ (4f+2)t² messages, retired by (f+1)n/t + 4f + 2.
	n, tt := 64, 8
	for f := 0; f <= 3; f++ {
		var crashes []adversary.Crash
		for k := 0; k < f; k++ {
			// One crash per phase, spread out (phase length ≥ n/t).
			crashes = append(crashes, adversary.Crash{
				PID: k + 1, Round: int64(k * (n/tt + 8)),
			})
		}
		res := runD(t, n, tt, adversary.NewSchedule(crashes...))
		if res.WorkTotal > int64(2*n) {
			t.Errorf("f=%d: work = %d > 2n", f, res.WorkTotal)
		}
		if res.Messages > int64((4*f+2)*tt*tt) {
			t.Errorf("f=%d: messages = %d > (4f+2)t² = %d",
				f, res.Messages, (4*f+2)*tt*tt)
		}
		bound := int64((f+1)*n/tt + 4*f + 2)
		if res.Rounds > bound {
			t.Errorf("f=%d: rounds = %d > %d", f, res.Rounds, bound)
		}
	}
}

func TestProtocolDRevertsToProtocolA(t *testing.T) {
	// Crash more than half the processes during the first work phase: the
	// survivors must detect it and finish under Protocol A (Theorem 4.1(2)).
	n, tt := 64, 8
	var crashes []adversary.Crash
	for pid := 0; pid < tt/2+1; pid++ {
		crashes = append(crashes, adversary.Crash{PID: pid, Round: 1})
	}
	res := runD(t, n, tt, adversary.NewSchedule(crashes...))
	if res.Survivors != tt/2-1 {
		t.Fatalf("survivors = %d, want %d", res.Survivors, tt/2-1)
	}
	if res.WorkTotal > int64(4*n) {
		t.Fatalf("work = %d > 4n", res.WorkTotal)
	}
	// The revert shows up as checkpoint traffic (Protocol A messages).
	if res.MessagesByKind["partial-cp"] == 0 {
		t.Fatal("no Protocol A checkpoints seen; revert did not happen")
	}
}

func TestProtocolDRevertDisabledStillCompletes(t *testing.T) {
	n, tt := 64, 8
	var crashes []adversary.Crash
	for pid := 0; pid < tt/2+1; pid++ {
		crashes = append(crashes, adversary.Crash{PID: pid, Round: 1})
	}
	cfg := DConfig{N: n, T: tt, DisableRevert: true}
	res, err := runDRaw(n, tt, cfg, adversary.NewSchedule(crashes...))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatal(err)
	}
	if res.MessagesByKind["partial-cp"] != 0 {
		t.Fatal("revert happened despite DisableRevert")
	}
}

func TestProtocolDAgreementProperty(t *testing.T) {
	// All correct processes must finish with all work done, across many
	// adversarial schedules including crashes mid-broadcast during
	// agreement phases.
	n, tt := 32, 8
	for seed := int64(0); seed < 30; seed++ {
		res := runD(t, n, tt, adversary.NewRandom(0.03, tt-1, seed))
		if res.Survivors == 0 {
			continue
		}
		if !res.Complete() {
			t.Fatalf("seed %d: survivors finished without completing", seed)
		}
	}
}

func TestProtocolDCrashMidAgreementBroadcast(t *testing.T) {
	// A process crashes midway through an agreement broadcast, delivering
	// its view to a strict subset: the classic EBA hazard. Correctness must
	// hold for every crash position.
	// A single-phase run has exactly two d-view broadcasts per process (the
	// first view and the done view), so nth ranges over both.
	n, tt := 16, 4
	for nth := 1; nth <= 2; nth++ {
		for prefix := 0; prefix <= 2; prefix++ {
			adv := &adversary.KindCount{PID: 1, Kind: "d-view", N: nth, Prefix: prefix}
			res := runD(t, n, tt, adv)
			if res.Crashes != 1 {
				t.Fatalf("nth=%d prefix=%d: crashes = %d", nth, prefix, res.Crashes)
			}
		}
	}
}

func TestProtocolDHalfFailuresPerPhaseSequence(t *testing.T) {
	// Exactly half fail in phase one (no revert at factor 2 requires
	// |T'| > 2|T|, and 8 > 2·4 is false), then half of the rest, etc.
	n, tt := 64, 8
	crashes := []adversary.Crash{
		{PID: 0, Round: 1}, {PID: 1, Round: 1}, {PID: 2, Round: 2}, {PID: 3, Round: 2},
	}
	res := runD(t, n, tt, adversary.NewSchedule(crashes...))
	if res.MessagesByKind["partial-cp"] != 0 {
		t.Fatal("revert happened at exactly-half failures; threshold is 'more than half'")
	}
	if res.WorkTotal > int64(2*n) {
		t.Fatalf("work = %d > 2n", res.WorkTotal)
	}
}

func TestProtocolDSingleProcess(t *testing.T) {
	res := runD(t, 8, 1, nil)
	if res.WorkTotal != 8 {
		t.Fatalf("work = %d", res.WorkTotal)
	}
	if res.Messages != 0 {
		t.Fatalf("messages = %d, want 0", res.Messages)
	}
}

func TestProtocolDZeroWork(t *testing.T) {
	res := runD(t, 0, 4, nil)
	if res.WorkTotal != 0 || res.Rounds != 0 {
		t.Fatalf("work=%d rounds=%d, want zeros", res.WorkTotal, res.Rounds)
	}
}

func TestProtocolDUnevenDivision(t *testing.T) {
	// n not divisible by t: ceiling chunks with idle padding.
	cases := []struct{ n, t int }{{10, 3}, {17, 5}, {7, 8}, {1, 4}, {65, 8}}
	for _, c := range cases {
		runD(t, c.n, c.t, nil)
		runD(t, c.n, c.t, adversary.NewRandom(0.05, c.t-1, 21))
	}
}

func TestProtocolDRevertFactorValidation(t *testing.T) {
	if _, err := ProtocolDScripts(DConfig{N: 4, T: 2, RevertFactor: 0.3}); err == nil {
		t.Fatal("want error for factor < 1")
	}
}
