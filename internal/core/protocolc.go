package core

import (
	"fmt"

	"repro/internal/group"
	"repro/internal/sim"
	"repro/internal/view"
)

// COrdinary is Protocol C's ordinary message: it reports one unit of (real
// or fault-detection) work and carries the sender's entire view. Value
// optionally piggybacks the general's value for the §5 Byzantine agreement
// reduction.
type COrdinary struct {
	View  view.Snapshot
	Value any
}

// Kind implements sim.Kinder.
func (COrdinary) Kind() string { return "ordinary" }

// CConfig configures a run of Protocol C.
type CConfig struct {
	// N is the number of work units, T the number of processes.
	N, T int
	// Assign maps the run onto engine PIDs / unit IDs (identity when zero).
	Assign Assignment
	// StartRound is the round at which the run logically begins.
	StartRound int64
	// Exec performs one unit of work (default: sim.Proc.StepWork).
	Exec WorkExecutor
	// ReportEvery controls how many units of level-0 work are performed
	// between reports to G1. 1 (the default) is the paper's Protocol C with
	// n + O(t log t) messages; ⌈n/t⌉ is the Corollary 3.9 variant with
	// O(t log t) messages at the cost of a larger K.
	ReportEvery int
	// PiggybackSend, when non-nil, supplies a value attached to every
	// ordinary message; PiggybackRecv is invoked with the value of every
	// ordinary message received (§5 agreement reduction).
	PiggybackSend func() any
	PiggybackRecv func(any)
}

// cState is the shared immutable context of a Protocol C run.
type cState struct {
	cfg   CConfig
	as    assignment
	lv    group.Levels
	ix    *view.Index
	tm    cTimeouts
	ex    WorkExecutor
	every int
}

func newCState(cfg CConfig) (*cState, error) {
	as, err := resolveAssignment(cfg.N, cfg.T, cfg.Assign)
	if err != nil {
		return nil, err
	}
	every := cfg.ReportEvery
	if every <= 0 {
		every = 1
	}
	ex := cfg.Exec
	if ex == nil {
		ex = defaultExec
	}
	lv := group.NewLevels(cfg.T)
	return &cState{
		cfg:   cfg,
		as:    as,
		lv:    lv,
		ix:    view.NewIndex(lv),
		tm:    newCTimeouts(cfg.N, cfg.T, every),
		ex:    ex,
		every: every,
	}, nil
}

// RunProtocolC executes logical position i of Protocol C inside the given
// process script. It returns when the process terminates.
//
// Protocol C (paper §3): at most one process is active; when the active
// process fails, the most knowledgeable process — the one with the highest
// reduced view — takes over, enforced by deadlines D(i, m) that shrink
// exponentially in the reduced view m. The active process performs fault
// detection as recursive work over a binary hierarchy of groups (polling
// "are you alive?" level by level) before doing real work, reporting every
// unit of work at level h−1 to its pointer at level h. The message total is
// n + O(t log t); the price is exponential worst-case (and typical) time.
func RunProtocolC(p *sim.Proc, cfg CConfig, i int) error {
	st, err := newCState(cfg)
	if err != nil {
		return err
	}
	if i < 0 || i >= cfg.T {
		return fmt.Errorf("core: position %d out of range [0,%d)", i, cfg.T)
	}
	v := view.New(st.ix, i, cfg.T)
	if i == 0 {
		// "Initially process 0 is active."
		st.active(p, i, v)
		return nil
	}
	deadline := satAdd(cfg.StartRound, st.tm.deadline(i, 0))
	for {
		msgs := p.WaitUntil(deadline)
		var pollers []int
		var lastOrd int64 = -1
		for _, m := range msgs {
			switch pl := m.Payload.(type) {
			case AreYouAlive:
				pollers = append(pollers, m.From)
			case COrdinary:
				v.Merge(pl.View)
				if st.cfg.PiggybackRecv != nil && pl.Value != nil {
					st.cfg.PiggybackRecv(pl.Value)
				}
				if m.SentAt+1 > lastOrd {
					lastOrd = m.SentAt + 1
				}
			default:
				// Alive acks and foreign payloads are ignored while
				// inactive.
			}
		}
		if len(pollers) > 0 {
			// One Alive payload to every poller: a single broadcast record.
			p.StepBroadcast(pollers, Alive{})
		}
		if lastOrd >= 0 {
			deadline = satAdd(lastOrd, st.tm.deadline(i, v.Reduced()))
			continue
		}
		if p.Now() >= deadline {
			st.active(p, i, v)
			return nil
		}
	}
}

// active is Fig. 3's code for the active process: fault detection from the
// finest level (log t) down to level 1, then real work at level 0, then
// retirement.
func (st *cState) active(p *sim.Proc, i int, v *view.View) {
	p.SetActive(true)
	defer p.SetActive(false)
	for h := st.lv.L; h >= 1; h-- {
		gid, _ := st.lv.GroupOf(i, h)
		slot := st.ix.Slot(gid)
		for {
			target, ok := v.NormalizedPointer(slot, i)
			if !ok {
				break // every other group member is known retired
			}
			if st.poll(p, target) {
				break // found a living process; descend a level
			}
			v.MarkFaulty(target)
			if h != st.lv.L {
				st.report(p, i, v, h+1)
			}
			if next, ok := v.Successor(slot, target, i); ok {
				v.AdvancePointer(slot, next)
			}
		}
	}
	unitsSinceReport := 0
	for v.WorkPoint() <= st.cfg.N {
		u := v.WorkPoint()
		round := p.Now()
		st.ex(p, st.as.unitID(u))
		v.AdvanceWork(round)
		unitsSinceReport++
		if unitsSinceReport >= st.every || v.WorkPoint() > st.cfg.N {
			st.report(p, i, v, 1)
			unitsSinceReport = 0
		}
	}
}

// poll sends "are you alive?" to target and waits the following round for a
// response, consuming two rounds in total.
func (st *cState) poll(p *sim.Proc, target int) bool {
	p.StepSend(sim.Send{To: st.as.pid(target), Payload: AreYouAlive{}})
	decideAt := p.Now() + 1 // poll committed at Now()-1; ack can arrive at +2
	for {
		msgs := p.WaitUntil(decideAt)
		for _, m := range msgs {
			if _, ok := m.Payload.(Alive); ok && m.From == st.as.pid(target) {
				return true
			}
		}
		if p.Now() >= decideAt {
			return false
		}
	}
}

// report sends an ordinary message (a unit of level h−1 work plus the full
// view) to the current pointer of i's level-h group, then advances that
// pointer. Skipped when every other member of the group is known retired
// (or when there is no level h, i.e. t = 1).
func (st *cState) report(p *sim.Proc, i int, v *view.View, h int) {
	if h > st.lv.L {
		return
	}
	gid, _ := st.lv.GroupOf(i, h)
	slot := st.ix.Slot(gid)
	target, ok := v.NormalizedPointer(slot, i)
	if !ok {
		return
	}
	next, ok := v.Successor(slot, target, i)
	if !ok {
		next = target
	}
	v.SetPointer(slot, next, p.Now())
	msg := COrdinary{View: v.Snapshot()}
	if st.cfg.PiggybackSend != nil {
		msg.Value = st.cfg.PiggybackSend()
	}
	p.StepSend(sim.Send{To: st.as.pid(target), Payload: msg})
}

// ProtocolCScripts builds the per-process scripts of a standalone Protocol C
// run over engine PIDs 0..T-1.
func ProtocolCScripts(cfg CConfig) (func(id int) sim.Script, error) {
	if _, err := newCState(cfg); err != nil {
		return nil, err
	}
	return func(id int) sim.Script {
		return func(p *sim.Proc) {
			_ = RunProtocolC(p, cfg, id)
		}
	}, nil
}
