package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

func TestTrivialBaseline(t *testing.T) {
	n, tt := 16, 4
	res, err := Run(n, tt, TrivialScripts(n, tt), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkTotal != int64(n*tt) {
		t.Fatalf("work = %d, want tn = %d", res.WorkTotal, n*tt)
	}
	if res.Messages != 0 {
		t.Fatalf("messages = %d, want 0", res.Messages)
	}
	// Units occupy rounds 0..n-1; the voluntary halt lands in round n.
	if res.Rounds != int64(n) {
		t.Fatalf("rounds = %d, want n", res.Rounds)
	}
}

func TestTrivialSurvivesAnyCrashPattern(t *testing.T) {
	n, tt := 16, 4
	res, err := Run(n, tt, TrivialScripts(n, tt), RunOptions{
		Adversary: adversary.NewRandom(0.1, tt-1, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatal(err)
	}
}

func TestSingleCheckpointBaseline(t *testing.T) {
	// §1: at most n + t - 1 work ever, but ~tn messages.
	n, tt := 32, 8
	scripts, err := SingleCheckpointScripts(n, tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, adv := range []sim.Adversary{
		nil,
		adversary.NewCascade(4, tt-1),
		adversary.NewRandom(0.02, tt-1, 5),
	} {
		res, err := Run(n, tt, scripts, RunOptions{Adversary: adv, MaxActive: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCompletion(res); err != nil {
			t.Fatal(err)
		}
		if res.WorkTotal > int64(n+tt-1) {
			t.Fatalf("work = %d > n+t-1 = %d", res.WorkTotal, n+tt-1)
		}
	}
	// Failure-free message cost is n broadcasts to t-1 recipients.
	res, err := Run(n, tt, scripts, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != int64(n*(tt-1)) {
		t.Fatalf("messages = %d, want n(t-1) = %d", res.Messages, n*(tt-1))
	}
}

func TestUniformCheckpointTradeoff(t *testing.T) {
	// §2's opening argument: under a full cascade, fewer checkpoints mean
	// more redone work, more checkpoints mean more messages.
	n, tt := 64, 16
	var prevWork, prevMsgs int64 = -1, -1
	for _, k := range []int{1, 4, 16, 64} {
		scripts, err := UniformCheckpointScripts(UniformConfig{N: n, T: tt, K: k})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(n, tt, scripts, RunOptions{
			Adversary: adversary.NewCascade(max(1, n/tt), tt-1),
			MaxActive: 1,
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := CheckCompletion(res); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if prevWork >= 0 && res.WorkTotal > prevWork {
			t.Errorf("k=%d: work %d should not exceed coarser k's %d", k, res.WorkTotal, prevWork)
		}
		if prevMsgs >= 0 && res.Messages < prevMsgs {
			t.Errorf("k=%d: messages %d should not fall below coarser k's %d", k, res.Messages, prevMsgs)
		}
		prevWork, prevMsgs = res.WorkTotal, res.Messages
	}
}

func TestNaiveSpreadCompletes(t *testing.T) {
	n, tt := 16, 4
	scripts, err := NaiveSpreadScripts(NaiveConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(n, tt, scripts, RunOptions{
			Adversary: adversary.NewRandom(0.03, tt-1, seed),
			MaxActive: 1,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckCompletion(res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNaiveCascadeQuadraticBlowup(t *testing.T) {
	// §3's worst case: effort grows ~t²/4 for the naive protocol. With
	// n = t-1 (the example's shape), the cascade forces each taker in
	// 1..t/2 to redo ~t/2 units.
	tt := 16
	n := tt - 1
	scripts, err := NaiveSpreadScripts(NaiveConfig{N: n, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(n, tt, scripts, RunOptions{
		Adversary: NewNaiveCascadeAdversary(n, tt),
		MaxActive: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCompletion(res); err != nil {
		t.Fatal(err)
	}
	// Ω(t²/4) redone work.
	if res.WorkTotal < int64(n+tt*tt/8) {
		t.Fatalf("work = %d; expected quadratic blowup ≥ %d", res.WorkTotal, n+tt*tt/8)
	}
}

func TestUniformConfigValidation(t *testing.T) {
	if _, err := UniformCheckpointScripts(UniformConfig{N: 4, T: 0, K: 1}); err == nil {
		t.Fatal("want error for t=0")
	}
	if _, err := UniformCheckpointScripts(UniformConfig{N: 4, T: 2, K: 0}); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := NaiveSpreadScripts(NaiveConfig{N: 4, T: 0}); err == nil {
		t.Fatal("want error for t=0")
	}
}
