package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/explore"
)

// X4ScheduleSpace certifies the paper's bounds over the *entire* crash
// schedule space of small instances — the model-checking complement to the
// handcrafted adversaries of T1-T9: every decision vector with up to f
// crashes at probe-derived action depth, enumerated and replayed through
// internal/explore's universal adversary.
func X4ScheduleSpace() Table {
	t := Table{
		ID:    "X4",
		Title: "Exhaustive schedule-space certification (model-checking sweep)",
		Claim: "Theorems 2.3/2.8/3.8/4.1 are worst-case over all crash schedules: every decision vector " +
			"(victim × action index × keep-work × delivery prefix, up to f crashes) respects the work, " +
			"message, round and effort bounds, the completion guarantee and the at-most-one-active invariant",
		Columns: []string{"protocol", "n", "t", "f", "depth", "schedules",
			"worst work ≤ bound", "worst effort ≤ bound", "worst rounds ≤ bound", "violations"},
	}
	cases := []struct {
		proto string
		n, tt int
		f     int
	}{
		{"a", 8, 3, 2},
		{"b", 8, 3, 2},
		{"c", 6, 3, 2},
		{"d", 8, 3, 2},
	}
	for _, c := range cases {
		target, err := explore.NewTarget(c.proto, c.n, c.tt, c.f)
		if err != nil {
			t.Err = err
			return t
		}
		depth, err := target.DefaultDepth()
		if err != nil {
			t.Err = fmt.Errorf("%s: %w", c.proto, err)
			return t
		}
		space := explore.NewSpace(c.tt, c.f, depth, c.tt)
		rep, err := target.Enumerate(space, explore.Options{})
		if err != nil {
			t.Err = fmt.Errorf("%s: %w", c.proto, err)
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(c.proto), V(c.n), V(c.tt), V(c.f), V(depth), V(rep.Schedules),
			B(rep.WorstWork.Value, rep.Bounds.Work),
			B(rep.WorstEffort.Value, rep.Bounds.Effort),
			B(rep.WorstRounds.Value, rep.Bounds.Rounds),
			Eq(rep.ViolationCount, 0),
		})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s worst-effort schedule (replayable via `doall explore -replay`): `%s`",
			c.proto, rep.WorstEffort.Vector))
	}
	t.Notes = append(t.Notes,
		"Every execution is additionally checked for the completion guarantee and (A/B/C) the "+
			"at-most-one-active invariant; `violations` counts all failures of any check.",
		"Delivery choices enumerate prefixes of the crashed action's virtual send list; victim sets "+
			"are combinations (see DESIGN.md §5 for the canonicalizations).")
	return t
}

// X6CertificationAtScale certifies spaces two orders of magnitude beyond
// X4's model-checking sweep, using the scale machinery of internal/explore:
// symmetry reduction (the PID-exchangeable trivial baseline is certified
// via canonical orbit representatives, each weighted by its orbit size) and
// prefix-equivalence pruning (sibling delivery prefixes share one replayed
// run, so engine runs fall well below walked indices). The pinned raw and
// walked counts double as regression checks on the canonical indexing
// itself: any change to the space grammar or the orbit decoder moves them.
func X6CertificationAtScale() Table {
	t := Table{
		ID:    "X6",
		Title: "Certification at scale (symmetry reduction + prefix-equivalence pruning)",
		Claim: "exhaustive certification extends to fault-alphabet spaces ~150x larger than X4's sweeps " +
			"(8.25M raw schedules vs X4's largest 55,897) at the same order of wall-clock: symmetric " +
			"targets are walked via canonical orbit representatives with orbit-weighted counters, and " +
			"prefix-equivalence pruning shares replayed runs across sibling delivery prefixes",
		Columns: []string{"protocol", "mode", "n", "t", "f",
			"raw schedules", "walked", "engine runs ≤ walked", "worst work ≤ bound", "violations"},
	}
	cases := []struct {
		proto           string
		n, tt, f        int
		depth, prefix   int
		rawPin, walkPin int64
	}{
		// The symmetric baseline at acceptance scale: 8,252,815 raw
		// schedules collapse onto 18,424 canonical representatives.
		{"trivial", 4, 9, 3, 6, 1, 8252815, 18424},
		// An asymmetric protocol (D holds under every fault kind, X5) walks
		// its space raw, but pruning still collapses the replay work.
		{"d", 8, 3, 2, 6, 2, 12871, 12871},
	}
	for _, c := range cases {
		target, err := explore.NewTarget(c.proto, c.n, c.tt, c.f)
		if err != nil {
			t.Err = err
			return t
		}
		space := explore.NewSpace(c.tt, c.f, c.depth, c.prefix)
		space.Omissions = true
		space.Rounds = []int64{0, 1, 2}
		space.RestartDelays = []int64{2}
		space.SlowFactors = []int{2}
		if c.proto == "trivial" {
			space.Drops = []int{1}
		} else {
			space.Drops = []int{1, 2}
		}
		rep, err := target.Enumerate(space, explore.Options{})
		if err != nil {
			t.Err = fmt.Errorf("%s: %w", c.proto, err)
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(c.proto), V(rep.Mode), V(c.n), V(c.tt), V(c.f),
			Eq(rep.Schedules, c.rawPin),
			Eq(rep.Walked, c.walkPin),
			B(rep.EngineRuns, rep.Walked),
			B(rep.WorstWork.Value, rep.Bounds.Work),
			Eq(rep.ViolationCount, 0),
		})
	}
	t.Notes = append(t.Notes,
		"Both rows enumerate the full fault alphabet: crash (action- and round-triggered), send "+
			"omission, message drop, restart and slowdown choices per victim (see DESIGN.md §5).",
		"`raw schedules` counts every concrete schedule certified; in canonical mode the counters are "+
			"orbit-weighted, so the 8.25M raw schedules of the trivial row cost only 18,424 replayed "+
			"representatives — a 448x reduction, which is how a space 147x beyond X4's largest row "+
			"(55,897 schedules) certifies in comparable wall-clock.",
		"`engine runs ≤ walked` is the prefix-equivalence pruning win: sibling delivery prefixes that "+
			"provably coincide replay one profiled run instead of one run per index.",
		"Protocols A–C are excluded: A and B break the single-active guarantee under slowdown/loss "+
			"(pinned in X5), and C's exponential deadlines make its extended-alphabet spaces "+
			"wall-clock-prohibitive at this depth.")
	return t
}

// X7SuccessorCertification certifies the successor protocols that followed
// the paper — the leader-free epoch-gossip Do-All (CGKS style) and its
// congested-clique variant under an engine-enforced per-round bandwidth cap
// — over full-fault-alphabet schedule spaces, against the work, message and
// round bounds registered in core/bounds.go. This is the substrate
// generality experiment: the same enumeration, pruning and replay machinery
// that certifies DHW92's A–D certifies a point-to-point-heavy gossip
// protocol and the engine's first message-plane constraint unchanged.
func X7SuccessorCertification() Table {
	t := Table{
		ID:    "X7",
		Title: "Successor-protocol certification (gossip + congested-clique bandwidth cap)",
		Claim: "the CGKS-style gossip Do-All respects its registered work, message and round bounds over " +
			"every full-alphabet schedule (crash, omission, loss, restart, slowdown) with up to f faults, " +
			"and stays correct and within the lag-adjusted bounds when the engine defers every " +
			"over-budget send under a congested-clique bandwidth cap of half its fanout",
		Columns: []string{"protocol", "n", "t", "f", "depth", "raw schedules", "engine runs",
			"worst work ≤ bound", "worst msgs ≤ bound", "worst rounds ≤ bound", "violations"},
	}
	cases := []struct {
		proto  string
		n, tt  int
		f      int
		rawPin int64
	}{
		// The acceptance-scale space: 154,241 raw full-alphabet schedules,
		// every one replayed against the CGKS-style bounds.
		{"gossip", 6, 4, 2, 154241},
		// The same space under the bandwidth cap (lag-1 bounds): the cap
		// defers rumors every epoch, so every schedule also exercises the
		// deferred-send queue and the pump phase.
		{"gossip-cap", 6, 4, 2, 154241},
	}
	for _, c := range cases {
		target, err := explore.NewTarget(c.proto, c.n, c.tt, c.f)
		if err != nil {
			t.Err = err
			return t
		}
		depth, err := target.DefaultDepth()
		if err != nil {
			t.Err = fmt.Errorf("%s: %w", c.proto, err)
			return t
		}
		space := explore.NewSpace(c.tt, c.f, depth, c.tt)
		space.Omissions = true
		space.Rounds = []int64{0, 1, 2}
		space.RestartDelays = []int64{2}
		space.SlowFactors = []int{2}
		space.Drops = []int{1}
		rep, err := target.Enumerate(space, explore.Options{})
		if err != nil {
			t.Err = fmt.Errorf("%s: %w", c.proto, err)
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(c.proto), V(c.n), V(c.tt), V(c.f), V(depth),
			Eq(rep.Schedules, c.rawPin),
			B(rep.EngineRuns, rep.Walked),
			B(rep.WorstWork.Value, rep.Bounds.Work),
			B(rep.WorstMessages.Value, rep.Bounds.Messages),
			B(rep.WorstRounds.Value, rep.Bounds.Rounds),
			Eq(rep.ViolationCount, 0),
		})
		if c.proto == "gossip-cap" {
			cert := target.Certify(explore.Vector{})
			t.Notes = append(t.Notes, fmt.Sprintf(
				"gossip-cap runs under `-bandwidth %d` (half the fanout %d for t=%d): the failure-free run "+
					"defers %d rumor sends to later rounds and still matches the uncapped run's completion.",
				target.Bandwidth, core.GossipFanout(c.tt), c.tt, cert.Result.Deferred))
		}
	}
	t.Notes = append(t.Notes,
		"Both rows enumerate the full fault alphabet (crash with keep-work × delivery prefix, send "+
			"omission, message drop, restart, slowdown) at the probe-derived depth; gossip is "+
			"PID-seeded and so walks its space raw (no symmetry orbit applies).",
		"The gossip bounds are the CGKS-style registrations in core/bounds.go: work ≤ min(tn+f, "+
			"n + 3(t+f)·stale), messages ≤ fanout·epochs, rounds ≤ 2(f+1)(n+D+lag+4); the capped row "+
			"certifies the lag-1 variants (one extra epoch of rumor queueing delay).",
		"`engine runs` below walked indices is prefix-equivalence pruning sharing replays across "+
			"sibling fault digits, exactly as in X6.")
	return t
}

// faultVerdict classifies one (protocol, fault-kind) cell of X5 from the
// certification failures its schedules produced: a broken guarantee
// (completion, the single-active invariant, or an engine abort) outranks a
// broken bound, which outranks a clean pass.
func faultVerdict(violations []explore.Violation) string {
	degraded := map[string]bool{}
	breaks := ""
	for _, v := range violations {
		switch {
		case strings.Contains(v.Reason, "invariant violated"):
			breaks = "breaks: single-active"
		case strings.Contains(v.Reason, "survivors but only"):
			if breaks == "" {
				breaks = "breaks: completion"
			}
		case strings.Contains(v.Reason, "exceeds bound"):
			degraded[strings.Fields(v.Reason)[0]] = true
		default:
			breaks = "breaks: " + v.Reason
		}
	}
	if breaks != "" {
		return breaks
	}
	if len(degraded) > 0 {
		names := make([]string, 0, len(degraded))
		for n := range degraded {
			names = append(names, n)
		}
		sort.Strings(names)
		return "degrades: " + strings.Join(names, "+")
	}
	return "holds"
}

// verdictCell records the measured verdict against the pinned expectation,
// so a behavioural change under any fault kind fails the experiment suite.
func verdictCell(measured, expected string) Cell {
	ok := measured == expected
	return Cell{Value: measured, OK: &ok}
}

// X5FaultSurvival measures which crash-only guarantees survive the extended
// fault alphabet — send omission, transient message loss, rate slowdown and
// crash recovery — on every protocol. The paper's theorems assume crashed
// processes stay crashed and messages arrive; this table is the experiment
// in what its bounds do under adversaries outside that model. Breakage is
// the result: each cell's verdict is pinned, so the table doubles as a
// regression check on the failure modes themselves.
func X5FaultSurvival() Table {
	t := Table{
		ID:    "X5",
		Title: "Bound survival under the extended fault alphabet",
		Claim: "the theorems are proved for crash failures without recovery; under send omission, message " +
			"loss, slowdown and crash-recovery each protocol either holds (all bounds and guarantees), " +
			"degrades (a cost bound fails, guarantees intact) or breaks (completion or single-active fails)",
		Columns: []string{"protocol", "fault", "schedules", "worst work", "worst rounds", "verdict"},
	}
	protos := []struct {
		proto string
		n, tt int
		f     int
	}{
		{"a", 8, 3, 2},
		{"b", 8, 3, 2},
		{"c", 6, 3, 2},
		{"d", 8, 3, 2},
	}
	kinds := []struct {
		name    string
		vectors []string
	}{
		{"omission", []string{"0@a1:omit:p0", "0@a2:omit:p0", "1@a2:omit:p0", "0@a3:omit:m1"}},
		{"loss", []string{"0@d1", "1@d1", "1@d2", "2@d1"}},
		{"slowdown", []string{"0@r0:slow:2", "0@r0:slow:4", "1@r2:slow:3"}},
		{"restart", []string{
			"1@r1:restart@r3", "1@r2:restart@r5",
			"0@a2:keep:p0:restart@r6", "1@r1:restart@r4,2@r2:restart@r6",
		}},
	}
	// The pinned findings. A stalled or revived process looks dead to its
	// successor, so the takeover ladder of A/B elects a second active worker:
	// slowdown breaks single-active on both, and B — whose takeovers also
	// hinge on hearing every checkpoint — additionally breaks it under
	// message loss and crash recovery. C's exponential deadlines absorb every
	// fault kind at this size (its round *bound* is exponential too), and D,
	// with no active/passive distinction, holds everywhere. Completion and
	// the work bounds survive every cell.
	expected := map[string]string{
		"a/omission": "holds", "a/loss": "holds",
		"a/slowdown": "breaks: single-active", "a/restart": "holds",
		"b/omission": "holds", "b/loss": "breaks: single-active",
		"b/slowdown": "breaks: single-active", "b/restart": "breaks: single-active",
		"c/omission": "holds", "c/loss": "holds",
		"c/slowdown": "holds", "c/restart": "holds",
		"d/omission": "holds", "d/loss": "holds",
		"d/slowdown": "holds", "d/restart": "holds",
	}
	for _, p := range protos {
		target, err := explore.NewTarget(p.proto, p.n, p.tt, p.f)
		if err != nil {
			t.Err = err
			return t
		}
		for _, k := range kinds {
			var violations []explore.Violation
			var worstWork, worstRounds int64
			for _, s := range k.vectors {
				vec, err := explore.ParseVector(s)
				if err != nil {
					t.Err = fmt.Errorf("%s/%s: %w", p.proto, k.name, err)
					return t
				}
				cert := target.Certify(vec)
				violations = append(violations, cert.Violations...)
				worstWork = max(worstWork, cert.Result.WorkTotal)
				worstRounds = max(worstRounds, cert.Result.Rounds)
			}
			verdict := faultVerdict(violations)
			t.Rows = append(t.Rows, []Cell{
				V(p.proto), V(k.name), V(len(k.vectors)),
				V(worstWork), V(worstRounds),
				verdictCell(verdict, expected[p.proto+"/"+k.name]),
			})
		}
	}
	t.Notes = append(t.Notes,
		"Schedules are replayable decision vectors over the extended grammar (see `doall explore -replay`); "+
			"worst work/rounds are maxima over the cell's schedules.",
		"`degrades: X` means cost bound X fails while completion and the invariant hold; `breaks` names "+
			"the guarantee that fails. Only the stepper substrate supports recovery, so restart schedules "+
			"exercise the Recoverable protocol bodies.")
	return t
}
