package experiments

import (
	"fmt"

	"repro/internal/explore"
)

// X4ScheduleSpace certifies the paper's bounds over the *entire* crash
// schedule space of small instances — the model-checking complement to the
// handcrafted adversaries of T1-T9: every decision vector with up to f
// crashes at probe-derived action depth, enumerated and replayed through
// internal/explore's universal adversary.
func X4ScheduleSpace() Table {
	t := Table{
		ID:    "X4",
		Title: "Exhaustive schedule-space certification (model-checking sweep)",
		Claim: "Theorems 2.3/2.8/3.8/4.1 are worst-case over all crash schedules: every decision vector " +
			"(victim × action index × keep-work × delivery prefix, up to f crashes) respects the work, " +
			"message, round and effort bounds, the completion guarantee and the at-most-one-active invariant",
		Columns: []string{"protocol", "n", "t", "f", "depth", "schedules",
			"worst work ≤ bound", "worst effort ≤ bound", "worst rounds ≤ bound", "violations"},
	}
	cases := []struct {
		proto string
		n, tt int
		f     int
	}{
		{"a", 8, 3, 2},
		{"b", 8, 3, 2},
		{"c", 6, 3, 2},
		{"d", 8, 3, 2},
	}
	for _, c := range cases {
		target, err := explore.NewTarget(c.proto, c.n, c.tt, c.f)
		if err != nil {
			t.Err = err
			return t
		}
		depth, err := target.DefaultDepth()
		if err != nil {
			t.Err = fmt.Errorf("%s: %w", c.proto, err)
			return t
		}
		space := explore.NewSpace(c.tt, c.f, depth, c.tt)
		rep, err := target.Enumerate(space, explore.Options{})
		if err != nil {
			t.Err = fmt.Errorf("%s: %w", c.proto, err)
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(c.proto), V(c.n), V(c.tt), V(c.f), V(depth), V(rep.Schedules),
			B(rep.WorstWork.Value, rep.Bounds.Work),
			B(rep.WorstEffort.Value, rep.Bounds.Effort),
			B(rep.WorstRounds.Value, rep.Bounds.Rounds),
			Eq(rep.ViolationCount, 0),
		})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s worst-effort schedule (replayable via `doall explore -replay`): `%s`",
			c.proto, rep.WorstEffort.Vector))
	}
	t.Notes = append(t.Notes,
		"Every execution is additionally checked for the completion guarantee and (A/B/C) the "+
			"at-most-one-active invariant; `violations` counts all failures of any check.",
		"Delivery choices enumerate prefixes of the crashed action's virtual send list; victim sets "+
			"are combinations (see DESIGN.md §5 for the canonicalizations).")
	return t
}
