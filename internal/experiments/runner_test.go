package experiments

import (
	"strings"
	"testing"
)

// TestReportByteIdenticalAcrossWorkerCounts pins the orchestration
// guarantee end-to-end: regenerating the deterministic experiment suite on
// one worker and on many must render byte-identical EXPERIMENTS.md content.
func TestReportByteIdenticalAcrossWorkerCounts(t *testing.T) {
	exps := Deterministic()
	sequential := Report(Run(exps, 1))
	parallel := Report(Run(exps, 8))
	if sequential != parallel {
		t.Fatalf("report bytes differ between 1 and 8 workers:\n--- seq ---\n%s\n--- par ---\n%s",
			sequential, parallel)
	}
	if !strings.Contains(sequential, "Total bound failures: 0.") {
		t.Fatalf("deterministic suite has bound failures:\n%s", sequential)
	}
}

func TestRunPreservesIndexOrder(t *testing.T) {
	exps := All()
	tables := Run(exps, 0)
	if len(tables) != len(exps) {
		t.Fatalf("%d tables for %d experiments", len(tables), len(exps))
	}
	for i, table := range tables {
		if table.ID != exps[i].ID {
			t.Fatalf("table %d is %s, want %s (ordering broke)", i, table.ID, exps[i].ID)
		}
	}
}

func TestDeterministicExcludesAsync(t *testing.T) {
	for _, e := range Deterministic() {
		if e.ID == "F6" {
			t.Fatal("F6 (real-goroutine async) must not be in the deterministic set")
		}
	}
	if len(Deterministic()) != len(All())-1 {
		t.Fatalf("deterministic set has %d experiments, want %d", len(Deterministic()), len(All())-1)
	}
}

func TestSelect(t *testing.T) {
	got := Select(All(), map[string]bool{"T3": true, "X1": true})
	if len(got) != 2 || got[0].ID != "T3" || got[1].ID != "X1" {
		t.Fatalf("Select = %v", got)
	}
	if len(Select(All(), nil)) != len(All()) {
		t.Fatal("empty filter should keep everything")
	}
}
