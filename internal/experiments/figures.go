package experiments

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sharedmem"
	"repro/internal/sim"
)

// F1CheckpointFrequency reproduces §2's opening argument: under a full
// cascade, a uniform checkpoint frequency k trades redone work against
// message overhead, and no k achieves both O(n) work and O(t√t) messages —
// which is why Protocol A splits checkpoints into partial and full tiers.
func F1CheckpointFrequency() Table {
	t := Table{
		ID:    "F1",
		Title: "Uniform checkpoint frequency sweep vs Protocol A/B",
		Claim: "§2: checkpoints every n/k units lose up to nt/k work (so k ≥ t needed for O(n) work) " +
			"but cost tk messages (so k ≤ √t needed for ≤ t√t messages) — incompatible; " +
			"A's partial/full split beats the whole k-sweep on effort",
		Columns: []string{"strategy", "k", "work", "messages", "effort", "rounds"},
	}
	n, tt := 256, 16
	adv := func() sim.Adversary { return adversary.NewCascade(maxInt(1, n/tt), tt-1) }
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		scripts, err := core.UniformCheckpointScripts(core.UniformConfig{N: n, T: tt, K: k})
		if err != nil {
			t.Err = err
			return t
		}
		res, err := run(n, tt, core.Procs{Scripts: scripts}, adv())
		if err != nil {
			t.Err = fmt.Errorf("k=%d: %w", k, err)
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V("uniform"), V(k), V(res.WorkTotal), V(res.Messages),
			V(res.WorkTotal + res.Messages), V(res.Rounds),
		})
	}
	for _, p := range []struct {
		name  string
		procs func(core.ABConfig) (core.Procs, error)
	}{
		{"protocol A", core.ProtocolAProcs},
		{"protocol B", core.ProtocolBProcs},
	} {
		procs, err := p.procs(core.ABConfig{N: n, T: tt})
		if err != nil {
			t.Err = err
			return t
		}
		res, err := run(n, tt, procs, adv())
		if err != nil {
			t.Err = err
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(p.name), V("—"), V(res.WorkTotal), V(res.Messages),
			V(res.WorkTotal + res.Messages), V(res.Rounds),
		})
	}
	return t
}

// F2NaiveVsC reproduces §3's opening argument: the naive most-knowledgeable
// spread suffers Θ(n + t²) effort under the cascade, while Protocol C stays
// n + O(t log t).
func F2NaiveVsC() Table {
	t := Table{
		ID:    "F2",
		Title: "Naive spread vs Protocol C under the §3 cascade",
		Claim: "§3: the naive algorithm does Θ(t²) redundant work informing retired processes; " +
			"treating failure detection as work (Protocol C) repairs it to n + O(t log t) effort",
		Columns: []string{"t", "n", "naive work", "naive effort", "C work", "C effort"},
	}
	for _, tt := range []int{4, 8, 12, 16} {
		n := tt - 1
		naiveScripts, err := core.NaiveSpreadScripts(core.NaiveConfig{N: n, T: tt})
		if err != nil {
			t.Err = err
			return t
		}
		naive, err := run(n, tt, core.Procs{Scripts: naiveScripts}, core.NewNaiveCascadeAdversary(n, tt))
		if err != nil {
			t.Err = fmt.Errorf("naive t=%d: %w", tt, err)
			return t
		}
		cProcs, err := core.ProtocolCProcs(core.CConfig{N: n, T: tt})
		if err != nil {
			t.Err = err
			return t
		}
		cRes, err := run(n, tt, cProcs, adversary.NewCascade(1, tt/2))
		if err != nil {
			t.Err = fmt.Errorf("C t=%d: %w", tt, err)
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(tt), V(n),
			V(naive.WorkTotal), V(naive.WorkTotal + naive.Messages),
			V(cRes.WorkTotal), V(cRes.WorkTotal + cRes.Messages),
		})
	}
	t.Notes = append(t.Notes,
		"naive effort grows quadratically in t (the §3 cascade); Protocol C's stays near n + t log t")
	return t
}

// F3EffortComparison reproduces §1's comparison of the trivial strategies
// against the work-optimal protocols.
func F3EffortComparison() Table {
	t := Table{
		ID:    "F3",
		Title: "Effort comparison across strategies (cascade adversary)",
		Claim: "§1: Trivial does tn work with no messages; SingleCheckpoint does n+t−1 work but ~tn messages — " +
			"both Θ(tn) effort; A and B achieve O(n + t√t) effort",
		Columns: []string{"strategy", "n", "t", "work", "messages", "effort"},
	}
	for _, c := range []struct{ n, t int }{{64, 16}, {256, 16}, {256, 64}} {
		adv := func() sim.Adversary { return adversary.NewCascade(maxInt(1, c.n/c.t), c.t-1) }
		type strat struct {
			name  string
			procs core.Procs
			err   error
		}
		var strategies []strat
		strategies = append(strategies, strat{"trivial", core.Procs{Scripts: core.TrivialScripts(c.n, c.t)}, nil})
		sc, err := core.SingleCheckpointScripts(c.n, c.t)
		strategies = append(strategies, strat{"single-checkpoint", core.Procs{Scripts: sc}, err})
		a, err := core.ProtocolAProcs(core.ABConfig{N: c.n, T: c.t})
		strategies = append(strategies, strat{"protocol A", a, err})
		b, err := core.ProtocolBProcs(core.ABConfig{N: c.n, T: c.t})
		strategies = append(strategies, strat{"protocol B", b, err})
		for _, s := range strategies {
			if s.err != nil {
				t.Err = s.err
				return t
			}
			// Trivial has no active process; skip the invariant for it.
			opt := core.RunOptions{Adversary: adv(), DetailedMetrics: true}
			if s.name != "trivial" {
				opt.MaxActive = 1
			}
			res, err := core.RunProcs(c.n, c.t, s.procs, opt)
			if err == nil {
				err = core.CheckCompletion(res)
			}
			if err != nil {
				t.Err = fmt.Errorf("%s n=%d t=%d: %w", s.name, c.n, c.t, err)
				return t
			}
			t.Rows = append(t.Rows, []Cell{
				V(s.name), V(c.n), V(c.t),
				V(res.WorkTotal), V(res.Messages), V(res.WorkTotal + res.Messages),
			})
		}
	}
	return t
}

// F4TimeDegradation reproduces §4's graceful-degradation claim: D's running
// time grows as ≈ (f+1)n/t + 4f + 2 while B stays ~n-sequential.
func F4TimeDegradation() Table {
	t := Table{
		ID:    "F4",
		Title: "Running time vs number of failures",
		Claim: "§4: Protocol D is time-optimal failure-free (n/t + 2) and degrades by ≈ n/t + 4 rounds " +
			"per failure; the sequential protocols need ≥ n rounds regardless",
		Columns: []string{"f", "D rounds", "D bound", "B rounds", "A rounds"},
	}
	n, tt := 256, 16
	for _, f := range []int{0, 1, 2, 4, 7} {
		var crashes []adversary.Crash
		for k := 0; k < f; k++ {
			crashes = append(crashes, adversary.Crash{PID: k + 1, Round: int64(k * (n/tt + 8))})
		}
		dProcs, err := core.ProtocolDProcs(core.DConfig{N: n, T: tt})
		if err != nil {
			t.Err = err
			return t
		}
		dRes, err := core.RunProcs(n, tt, dProcs, core.RunOptions{Adversary: adversary.NewSchedule(crashes...)})
		if err == nil {
			err = core.CheckCompletion(dRes)
		}
		if err != nil {
			t.Err = fmt.Errorf("D f=%d: %w", f, err)
			return t
		}
		bProcs, _ := core.ProtocolBProcs(core.ABConfig{N: n, T: tt})
		bRes, err := run(n, tt, bProcs, adversary.NewCascade(maxInt(1, n/tt), f))
		if err != nil {
			t.Err = err
			return t
		}
		aProcs, _ := core.ProtocolAProcs(core.ABConfig{N: n, T: tt})
		aRes, err := run(n, tt, aProcs, adversary.NewCascade(maxInt(1, n/tt), f))
		if err != nil {
			t.Err = err
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(f),
			B(dRes.Rounds, int64((f+1)*n/tt+4*f+2)),
			V(int64((f+1)*n/tt + 4*f + 2)),
			V(bRes.Rounds), V(aRes.Rounds),
		})
	}
	return t
}

// F5SharedMemory reproduces §1.1's shared-memory comparison.
func F5SharedMemory() Table {
	t := Table{
		ID:    "F5",
		Title: "Shared-memory Write-All vs message passing",
		Claim: "§1.1: with shared memory the straightforward algorithm achieves O(n + t) effort " +
			"(reads + writes + work) in O(nt) time; message passing pays the checkpoint message terms",
		Columns: []string{"n", "t", "shm effort ≤ 2n+4t", "shm rounds", "A effort (msgs+work)", "B effort"},
	}
	for _, c := range []struct{ n, t int }{{64, 16}, {256, 16}, {256, 64}} {
		shm, err := sharedmem.Run(sharedmem.Config{N: c.n, T: c.t},
			adversary.NewCascade(1, c.t-1))
		if err != nil {
			t.Err = err
			return t
		}
		aProcs, _ := core.ProtocolAProcs(core.ABConfig{N: c.n, T: c.t})
		aRes, err := run(c.n, c.t, aProcs, adversary.NewCascade(maxInt(1, c.n/c.t), c.t-1))
		if err != nil {
			t.Err = err
			return t
		}
		bProcs, _ := core.ProtocolBProcs(core.ABConfig{N: c.n, T: c.t})
		bRes, err := run(c.n, c.t, bProcs, adversary.NewCascade(maxInt(1, c.n/c.t), c.t-1))
		if err != nil {
			t.Err = err
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(c.n), V(c.t),
			B(shm.Effort(), int64(2*c.n+4*c.t)),
			V(shm.Sim.Rounds),
			V(aRes.WorkTotal + aRes.Messages),
			V(bRes.WorkTotal + bRes.Messages),
		})
	}
	return t
}

// F6AsyncProtocolA exercises the §2.1 asynchronous variant over real
// goroutines with a failure detector.
func F6AsyncProtocolA() Table {
	t := Table{
		ID:    "F6",
		Title: "Asynchronous Protocol A with failure detection (real goroutines)",
		Claim: "§2.1: replacing the deadline DD(j) by 'the failure detector reports 0..j−1 retired' " +
			"preserves completion and work-optimality in a fully asynchronous system",
		Columns: []string{"n", "t", "killed", "work ≤ 3n", "messages ≤ 9t√t", "complete"},
	}
	for _, c := range []struct{ n, t, kills int }{{64, 16, 0}, {64, 16, 8}, {64, 16, 15}, {128, 16, 10}} {
		net := live.NewNetwork(c.t, 100*time.Microsecond, int64(c.n+c.kills))
		perf := make(chan int, 8*c.n)
		cl := live.NewCluster(live.ClusterConfig{
			N: c.n, T: c.t,
			Perform: func(w, _ int) { perf <- w },
		}, net)
		cl.Start()
		go func() {
			killed := 0
			seen := make(map[int]bool)
			for w := range perf {
				if killed < c.kills && !seen[w] && w != c.t-1 {
					seen[w] = true
					cl.Crash(w)
					killed++
				}
			}
		}()
		complete := cl.Wait()
		close(perf)
		total, _ := cl.Log().Totals()
		ok := complete
		t.Rows = append(t.Rows, []Cell{
			V(c.n), V(c.t), V(c.kills),
			B(total, int64(3*c.n+c.t)),
			B(net.Sent(), int64(9*c.t*4)),
			{Value: fmt.Sprint(complete), OK: &ok},
		})
		net.Recycle()
	}
	t.Notes = append(t.Notes,
		"asynchronous runs are schedule-dependent; bounds hold for every schedule, exact values vary",
		"the detector reports a retirement only after the retiree's messages have flushed; "+
			"without that ordering (paper's literal FD spec) work degrades to Θ(n√t) — see DESIGN.md §7.6")
	return t
}
