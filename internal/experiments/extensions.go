package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/dynamic"
)

// T9Bootstrap reproduces §1's common-knowledge removal: agree on the pool
// first, then do the work; total cost at most doubles when n = Ω(t).
func T9Bootstrap() Table {
	t := Table{
		ID:    "T9",
		Title: "Bootstrapped runs: work not initially common knowledge",
		Claim: "§1: one process runs agreement on the pool of work, then the same protocol performs it; " +
			"for n = Ω(t) the overall cost at most doubles (checked at 2.5× for stage-boundary slack)",
		Columns: []string{"proto", "n", "t", "f", "adversary", "boot effort ≤ 2.5×direct", "boot rounds", "complete"},
	}
	for _, c := range []struct {
		proto string
		n, tt int
	}{{"B", 64, 8}, {"B", 128, 16}, {"A", 64, 8}} {
		for _, advName := range []string{"none", "cascade"} {
			f := c.tt - 1
			pool := make([]int, c.n)
			for i := range pool {
				pool[i] = i + 1
			}
			mkAdv := func() core.RunOptions {
				opt := core.RunOptions{MaxActive: 1, DetailedMetrics: true}
				if advName == "cascade" {
					opt.Adversary = adversary.NewCascade(maxInt(1, c.n/c.tt), f)
				}
				return opt
			}
			boot, err := bootstrap.Run(bootstrap.Config{
				Pool: pool, T: c.tt, F: f, Protocol: c.proto,
			}, mkAdv())
			if err != nil {
				t.Err = fmt.Errorf("%s n=%d %s: %w", c.proto, c.n, advName, err)
				return t
			}
			procsOf := core.ProtocolBProcs
			if c.proto == "A" {
				procsOf = core.ProtocolAProcs
			}
			procs, err := procsOf(core.ABConfig{N: c.n, T: c.tt})
			if err != nil {
				t.Err = err
				return t
			}
			direct, err := core.RunProcs(c.n, c.tt, procs, mkAdv())
			if err != nil {
				t.Err = err
				return t
			}
			bootEffort := boot.Sim.WorkTotal + boot.Sim.Messages
			directEffort := direct.WorkTotal + direct.Messages
			ok := boot.Sim.Complete()
			t.Rows = append(t.Rows, []Cell{
				V(c.proto), V(c.n), V(c.tt), V(f), V(advName),
				B(bootEffort, directEffort*5/2),
				V(boot.Sim.Rounds),
				{Value: fmt.Sprint(ok), OK: &ok},
			})
		}
	}
	return t
}

// F7DynamicWork exercises the §4 remark: work arriving continually at
// individual sites, agreed and redistributed every period.
func F7DynamicWork() Table {
	t := Table{
		ID:    "F7",
		Title: "Dynamic work: periodic agreement over continually arriving units (§4 remark)",
		Claim: "§4: 'it is not too hard to modify our last algorithm to deal with a more realistic scenario, " +
			"where work is continually coming in to different sites' — every unit known to a surviving site " +
			"is performed; failure-free work is exactly n",
		Columns: []string{"n", "t", "phases", "crashes", "work", "messages", "rounds", "complete"},
	}
	for _, c := range []struct {
		n, tt, phases, crashes int
	}{{64, 8, 5, 0}, {64, 8, 5, 3}, {128, 16, 7, 6}} {
		inj := make([]dynamic.Injection, c.n)
		for u := 1; u <= c.n; u++ {
			inj[u-1] = dynamic.Injection{
				Phase:   1 + (u-1)%(c.phases-1),
				Process: (u - 1) % c.tt,
				Unit:    u,
			}
		}
		scripts, err := dynamic.Scripts(dynamic.Config{
			T: c.tt, Units: c.n, Phases: c.phases, Injections: inj,
		})
		if err != nil {
			t.Err = err
			return t
		}
		// Crash high-numbered sites late, after their arrivals have been
		// through an agreement phase.
		var crashes []adversary.Crash
		for k := 0; k < c.crashes; k++ {
			crashes = append(crashes, adversary.Crash{
				PID: c.tt - 1 - k, Round: int64(30 + 4*k),
			})
		}
		res, err := core.Run(c.n, c.tt, scripts, core.RunOptions{
			Adversary: adversary.NewSchedule(crashes...), DetailedMetrics: true,
		})
		if err != nil {
			t.Err = err
			return t
		}
		ok := res.Complete()
		t.Rows = append(t.Rows, []Cell{
			V(c.n), V(c.tt), V(c.phases), V(res.Crashes),
			V(res.WorkTotal), V(res.Messages), V(res.Rounds),
			{Value: fmt.Sprint(ok), OK: &ok},
		})
	}
	return t
}
