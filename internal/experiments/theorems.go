package experiments

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/sim"
)

// advCase names one adversary construction; fresh adversaries are built per
// run because they are stateful.
type advCase struct {
	name  string
	build func(n, t int) sim.Adversary
}

func stdAdversaries() []advCase {
	return []advCase{
		{"none", func(int, int) sim.Adversary { return nil }},
		{"cascade", func(n, t int) sim.Adversary {
			return adversary.NewCascade(maxInt(1, n/t), t-1)
		}},
		{"random", func(n, t int) sim.Adversary {
			return adversary.NewRandom(0.02, t-1, 17)
		}},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func run(n, t int, pr core.Procs, adv sim.Adversary) (sim.Result, error) {
	res, err := core.RunProcs(n, t, pr, core.RunOptions{
		Adversary: adv, MaxActive: 1, DetailedMetrics: true,
	})
	if err != nil {
		return res, err
	}
	return res, core.CheckCompletion(res)
}

// T1ProtocolA reproduces Theorem 2.3.
func T1ProtocolA() Table {
	t := Table{
		ID:    "T1",
		Title: "Protocol A worst-case bounds",
		Claim: "Theorem 2.3: ≤ 3n′ work, ≤ 9t√t messages, all retired by nt + 3t² " +
			"(time bound below uses this reproduction's model-adjusted active lifetime, see DESIGN.md §2)",
		Columns: []string{"n", "t", "adversary", "crashes", "work ≤ 3n′", "messages ≤ 9t√t", "rounds ≤ t·life"},
	}
	for _, c := range []struct{ n, t int }{{64, 16}, {144, 9}, {256, 16}, {100, 25}, {256, 64}} {
		for _, ac := range stdAdversaries() {
			procs, err := core.ProtocolAProcs(core.ABConfig{N: c.n, T: c.t})
			if err != nil {
				t.Err = err
				return t
			}
			res, err := run(c.n, c.t, procs, ac.build(c.n, c.t))
			if err != nil {
				t.Err = fmt.Errorf("n=%d t=%d %s: %w", c.n, c.t, ac.name, err)
				return t
			}
			nPrime := maxInt(c.n, c.t)
			msgBound := int64(9 * float64(c.t) * math.Sqrt(float64(c.t)))
			t.Rows = append(t.Rows, []Cell{
				V(c.n), V(c.t), V(ac.name), V(res.Crashes),
				B(res.WorkTotal, int64(3*nPrime)),
				B(res.Messages, msgBound),
				B(res.Rounds, core.ProtocolARoundBound(c.n, c.t)),
			})
		}
	}
	return t
}

// T2ProtocolB reproduces Theorem 2.8.
func T2ProtocolB() Table {
	t := Table{
		ID:    "T2",
		Title: "Protocol B worst-case bounds",
		Claim: "Theorem 2.8: ≤ 3n work, ≤ 10t√t messages, all retired by 3n + 8t " +
			"(time bound below: n + 3t useful rounds + TT(t−1,0) + one active lifetime)",
		Columns: []string{"n", "t", "adversary", "crashes", "work ≤ 3n′", "messages ≤ 10t√t", "rounds ≤ O(n+t)"},
	}
	for _, c := range []struct{ n, t int }{{64, 16}, {144, 9}, {256, 16}, {100, 25}, {256, 64}} {
		for _, ac := range stdAdversaries() {
			procs, err := core.ProtocolBProcs(core.ABConfig{N: c.n, T: c.t})
			if err != nil {
				t.Err = err
				return t
			}
			res, err := run(c.n, c.t, procs, ac.build(c.n, c.t))
			if err != nil {
				t.Err = fmt.Errorf("n=%d t=%d %s: %w", c.n, c.t, ac.name, err)
				return t
			}
			nPrime := maxInt(c.n, c.t)
			msgBound := int64(10 * float64(c.t) * math.Sqrt(float64(c.t)))
			t.Rows = append(t.Rows, []Cell{
				V(c.n), V(c.t), V(ac.name), V(res.Crashes),
				B(res.WorkTotal, int64(3*nPrime)),
				B(res.Messages, msgBound),
				B(res.Rounds, core.ProtocolBRoundBound(c.n, c.t)),
			})
		}
	}
	return t
}

// T3ProtocolC reproduces Theorem 3.8.
func T3ProtocolC() Table {
	t := Table{
		ID:    "T3",
		Title: "Protocol C worst-case bounds",
		Claim: "Theorem 3.8: ≤ n + 2t real work, ≤ n + 8t·log t messages, all retired by " +
			"t(5t + 2·log t)(n + t)·2^(n+t); n + t kept small because the deadlines are exponential",
		Columns: []string{"n", "t", "adversary", "crashes", "work ≤ n+2t", "messages ≤ n+8t·logt", "rounds ≤ tK(n+t)2^(n+t)"},
	}
	for _, c := range []struct{ n, t int }{{16, 4}, {24, 8}, {32, 8}, {16, 16}} {
		for _, ac := range stdAdversaries() {
			procs, err := core.ProtocolCProcs(core.CConfig{N: c.n, T: c.t})
			if err != nil {
				t.Err = err
				return t
			}
			res, err := run(c.n, c.t, procs, ac.build(c.n, c.t))
			if err != nil {
				t.Err = fmt.Errorf("n=%d t=%d %s: %w", c.n, c.t, ac.name, err)
				return t
			}
			logT := maxInt(group.CeilLog2(c.t), 1)
			t.Rows = append(t.Rows, []Cell{
				V(c.n), V(c.t), V(ac.name), V(res.Crashes),
				B(res.WorkTotal, int64(c.n+2*c.t)),
				B(res.Messages, int64(c.n+8*c.t*logT)),
				B(res.Rounds, core.ProtocolCRoundBound(c.n, c.t, 1)),
			})
		}
	}
	return t
}

// T4ProtocolCLowMsg reproduces Corollary 3.9.
func T4ProtocolCLowMsg() Table {
	t := Table{
		ID:    "T4",
		Title: "Protocol C low-message variant",
		Claim: "Corollary 3.9: reporting every ⌈n/t⌉ units yields O(t log t) messages and O(n + t) work " +
			"(bounds below: 10t·log t messages, 2(n + 2t) work)",
		Columns: []string{"n", "t", "adversary", "messages ≤ 10t·logt", "work ≤ 2(n+2t)", "msgs vs per-unit C"},
	}
	for _, c := range []struct{ n, t int }{{24, 4}, {32, 8}, {24, 8}} {
		for _, ac := range stdAdversaries() {
			every := maxInt((c.n+c.t-1)/c.t, 1)
			mk := func(reportEvery int) (sim.Result, error) {
				procs, err := core.ProtocolCProcs(core.CConfig{N: c.n, T: c.t, ReportEvery: reportEvery})
				if err != nil {
					return sim.Result{}, err
				}
				return run(c.n, c.t, procs, ac.build(c.n, c.t))
			}
			low, err := mk(every)
			if err != nil {
				t.Err = err
				return t
			}
			perUnit, err := mk(1)
			if err != nil {
				t.Err = err
				return t
			}
			logT := maxInt(group.CeilLog2(c.t), 1)
			t.Rows = append(t.Rows, []Cell{
				V(c.n), V(c.t), V(ac.name),
				B(low.Messages, int64(10*c.t*logT)),
				B(low.WorkTotal, int64(2*(c.n+2*c.t))),
				B(low.Messages, perUnit.Messages),
			})
		}
	}
	return t
}

// T5ProtocolD reproduces Theorem 4.1 part 1.
func T5ProtocolD() Table {
	t := Table{
		ID:      "T5",
		Title:   "Protocol D with at most half the live processes failing per phase",
		Claim:   "Theorem 4.1(1): ≤ 2n work, ≤ (4f+2)t² messages, all retired by (f+1)n/t + 4f + 2",
		Columns: []string{"n", "t", "f", "work ≤ 2n", "messages ≤ (4f+2)t²", "rounds ≤ (f+1)n/t+4f+2"},
	}
	n, tt := 128, 8
	for f := 0; f <= 3; f++ {
		var crashes []adversary.Crash
		for k := 0; k < f; k++ {
			crashes = append(crashes, adversary.Crash{PID: k + 1, Round: int64(k * (n/tt + 8))})
		}
		procs, err := core.ProtocolDProcs(core.DConfig{N: n, T: tt})
		if err != nil {
			t.Err = err
			return t
		}
		res, err := core.RunProcs(n, tt, procs, core.RunOptions{
			Adversary: adversary.NewSchedule(crashes...), DetailedMetrics: true,
		})
		if err == nil {
			err = core.CheckCompletion(res)
		}
		if err != nil {
			t.Err = fmt.Errorf("f=%d: %w", f, err)
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(n), V(tt), V(f),
			B(res.WorkTotal, int64(2*n)),
			B(res.Messages, int64((4*f+2)*tt*tt)),
			B(res.Rounds, int64((f+1)*n/tt+4*f+2)),
		})
	}
	return t
}

// T6ProtocolDRevert reproduces Theorem 4.1 part 2.
func T6ProtocolDRevert() Table {
	t := Table{
		ID:    "T6",
		Title: "Protocol D reverting to Protocol A after losing more than half a phase's processes",
		Claim: "Theorem 4.1(2): ≤ 4n work, ≤ (4f+2)t² + 9t√t/(2√2) messages, " +
			"all retired by (f+1)n/t + 4f + 2 + nt/2 + 3t²/4 (time below uses the model-adjusted A bound)",
		Columns: []string{"n", "t", "crashed", "reverted", "work ≤ 4n", "messages ≤ bound", "rounds ≤ bound"},
	}
	for _, c := range []struct{ n, t int }{{64, 8}, {128, 16}} {
		var crashes []adversary.Crash
		f := c.t/2 + 1
		for pid := 0; pid < f; pid++ {
			crashes = append(crashes, adversary.Crash{PID: pid, Round: 1})
		}
		procs, err := core.ProtocolDProcs(core.DConfig{N: c.n, T: c.t})
		if err != nil {
			t.Err = err
			return t
		}
		res, err := core.RunProcs(c.n, c.t, procs, core.RunOptions{
			Adversary: adversary.NewSchedule(crashes...), DetailedMetrics: true,
		})
		if err == nil {
			err = core.CheckCompletion(res)
		}
		if err != nil {
			t.Err = err
			return t
		}
		reverted := res.MessagesByKind["partial-cp"] > 0 || res.MessagesByKind["full-cp"] > 0
		msgBound := int64((4*f+2)*c.t*c.t) + int64(9*float64(c.t)*math.Sqrt(float64(c.t))/(2*math.Sqrt2))
		t.Rows = append(t.Rows, []Cell{
			V(c.n), V(c.t), V(res.Crashes), V(reverted),
			B(res.WorkTotal, int64(4*c.n)),
			B(res.Messages, msgBound),
			B(res.Rounds, core.ProtocolDRoundBound(c.n, c.t, f)),
		})
	}
	return t
}

// T7ProtocolDFailureFree reproduces §4's exact failure-free and one-failure
// costs.
func T7ProtocolDFailureFree() Table {
	t := Table{
		ID:    "T7",
		Title: "Protocol D with zero and one failures",
		Claim: "§4: no failures ⇒ n work, exactly n/t + 2 rounds, ≤ 2t² messages; " +
			"one failure ⇒ ≤ n + n/t work, ≤ n/t + ⌈n/(t(t−1))⌉ + 6 rounds, ≤ 5t² messages",
		Columns: []string{"n", "t", "f", "work", "rounds", "messages"},
	}
	for _, c := range []struct{ n, t int }{{64, 8}, {128, 16}, {256, 16}} {
		procs, err := core.ProtocolDProcs(core.DConfig{N: c.n, T: c.t})
		if err != nil {
			t.Err = err
			return t
		}
		res, err := core.RunProcs(c.n, c.t, procs, core.RunOptions{DetailedMetrics: true})
		if err != nil {
			t.Err = err
			return t
		}
		t.Rows = append(t.Rows, []Cell{
			V(c.n), V(c.t), V(0),
			Eq(res.WorkTotal, int64(c.n)),
			Eq(res.Rounds, int64(c.n/c.t+2)),
			B(res.Messages, int64(2*c.t*c.t)),
		})
		procs, _ = core.ProtocolDProcs(core.DConfig{N: c.n, T: c.t})
		res, err = core.RunProcs(c.n, c.t, procs, core.RunOptions{
			Adversary:       adversary.NewSchedule(adversary.Crash{PID: 2, Round: 0}),
			DetailedMetrics: true,
		})
		if err == nil {
			err = core.CheckCompletion(res)
		}
		if err != nil {
			t.Err = err
			return t
		}
		roundBound := int64(c.n/c.t + (c.n+c.t*(c.t-1)-1)/(c.t*(c.t-1)) + 6)
		t.Rows = append(t.Rows, []Cell{
			V(c.n), V(c.t), V(1),
			B(res.WorkTotal, int64(c.n+c.n/c.t)),
			B(res.Rounds, roundBound),
			B(res.Messages, int64(5*c.t*c.t)),
		})
	}
	return t
}

// T8Agreement reproduces §5's Byzantine agreement costs.
func T8Agreement() Table {
	t := Table{
		ID:    "T8",
		Title: "Byzantine agreement for crash faults via the work protocols",
		Claim: "§5: via Protocol B, O(n + t√t) messages and O(n) rounds (Bracha's bound, constructively); " +
			"via Protocol C, O(n + t log t) messages at exponential time; agreement and validity always hold",
		Columns: []string{"protocol", "n", "f", "adversary", "messages", "msg bound", "rounds", "agreement"},
	}
	type cse struct {
		proto agreement.WorkProtocol
		n, f  int
	}
	cases := []cse{
		{agreement.UseB, 32, 3}, {agreement.UseB, 64, 8}, {agreement.UseB, 128, 15},
		{agreement.UseA, 32, 3},
		{agreement.UseC, 16, 3}, {agreement.UseC, 24, 7},
	}
	for _, c := range cases {
		for _, advName := range []string{"none", "cascade"} {
			var adv sim.Adversary
			if advName == "cascade" {
				adv = adversary.NewCascade(3, c.f)
			}
			out, err := agreement.Run(agreement.Config{
				N: c.n, F: c.f, Value: 1, Protocol: c.proto,
			}, core.RunOptions{Adversary: adv, MaxActive: 1, DetailedMetrics: true})
			if err != nil {
				t.Err = fmt.Errorf("%v n=%d f=%d %s: %w", c.proto, c.n, c.f, advName, err)
				return t
			}
			_, agErr := out.Agreement()
			senders := float64(c.f + 1)
			var bound int64
			switch c.proto {
			case agreement.UseC:
				logT := maxInt(group.CeilLog2(c.f+1), 1)
				bound = int64(c.n + c.f + 1 + 10*(c.f+1)*logT)
			default:
				bound = int64(float64(c.n) + senders + 1 + 10*senders*math.Sqrt(senders))
			}
			ok := agErr == nil
			t.Rows = append(t.Rows, []Cell{
				V(c.proto), V(c.n), V(c.f), V(advName),
				V(out.Result.Messages),
				B(out.Result.Messages, bound),
				V(out.Result.Rounds),
				{Value: fmt.Sprint(ok), OK: &ok},
			})
		}
	}
	return t
}
