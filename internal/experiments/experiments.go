// Package experiments regenerates every table and figure of the paper's
// evaluation: the worst-case bound theorems (T1–T8), the motivating
// complexity comparisons (F1–F6) and reproduction-specific ablations
// (X1–X3). DESIGN.md carries the experiment index; cmd/experiments renders
// the output of All into EXPERIMENTS.md; bench_test.go exposes each
// experiment as a benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Cell is one measured (or bound) value in a table.
type Cell struct {
	Value string
	// OK records bound checks: nil for plain values, otherwise whether the
	// measured value respects the paper's bound.
	OK *bool
}

// V formats a plain value cell.
func V(v any) Cell { return Cell{Value: fmt.Sprint(v)} }

// B formats a "measured vs bound" cell and records the check.
func B(measured, bound int64) Cell {
	ok := measured <= bound
	return Cell{Value: fmt.Sprintf("%d ≤ %d", measured, bound), OK: &ok}
}

// Eq formats a "measured = expected" cell and records the check.
func Eq(measured, expected int64) Cell {
	ok := measured == expected
	return Cell{Value: fmt.Sprintf("%d = %d", measured, expected), OK: &ok}
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being reproduced
	Columns []string
	Rows    [][]Cell
	Notes   []string
	Err     error
}

// Failures counts bound cells that did not hold.
func (t Table) Failures() int {
	n := 0
	for _, row := range t.Rows {
		for _, c := range row {
			if c.OK != nil && !*c.OK {
				n++
			}
		}
	}
	return n
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Paper claim: %s\n\n", t.Claim)
	if t.Err != nil {
		fmt.Fprintf(&b, "**ERROR:** %v\n\n", t.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	fmt.Fprintf(&b, "|%s\n", strings.Repeat("---|", len(t.Columns)))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = c.Value
			if c.OK != nil {
				if *c.OK {
					cells[i] += " ✓"
				} else {
					cells[i] += " ✗"
				}
			}
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	b.WriteString("\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID  string
	Run func() Table
}

// All lists every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"T1", T1ProtocolA},
		{"T2", T2ProtocolB},
		{"T3", T3ProtocolC},
		{"T4", T4ProtocolCLowMsg},
		{"T5", T5ProtocolD},
		{"T6", T6ProtocolDRevert},
		{"T7", T7ProtocolDFailureFree},
		{"T8", T8Agreement},
		{"T9", T9Bootstrap},
		{"F1", F1CheckpointFrequency},
		{"F2", F2NaiveVsC},
		{"F3", F3EffortComparison},
		{"F4", F4TimeDegradation},
		{"F5", F5SharedMemory},
		{"F6", F6AsyncProtocolA},
		{"F7", F7DynamicWork},
		{"X1", X1FastForward},
		{"X2", X2PartialCheckpointAblation},
		{"X3", X3RevertThreshold},
	}
}
