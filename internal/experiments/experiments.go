// Package experiments regenerates every table and figure of the paper's
// evaluation: the worst-case bound theorems (T1–T9), the motivating
// complexity comparisons (F1–F7) and reproduction-specific ablations and
// model-checking sweeps (X1–X7). DESIGN.md carries the experiment index;
// cmd/experiments renders
// the output of Run into EXPERIMENTS.md via the internal/batch fan-out
// runner; bench_test.go exposes each experiment as a benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Cell is one measured (or bound) value in a table.
type Cell struct {
	Value string
	// OK records bound checks: nil for plain values, otherwise whether the
	// measured value respects the paper's bound.
	OK *bool
}

// V formats a plain value cell.
func V(v any) Cell { return Cell{Value: fmt.Sprint(v)} }

// B formats a "measured vs bound" cell and records the check.
func B(measured, bound int64) Cell {
	ok := measured <= bound
	return Cell{Value: fmt.Sprintf("%d ≤ %d", measured, bound), OK: &ok}
}

// Eq formats a "measured = expected" cell and records the check.
func Eq(measured, expected int64) Cell {
	ok := measured == expected
	return Cell{Value: fmt.Sprintf("%d = %d", measured, expected), OK: &ok}
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being reproduced
	Columns []string
	Rows    [][]Cell
	Notes   []string
	Err     error
}

// Failures counts bound cells that did not hold.
func (t Table) Failures() int {
	n := 0
	for _, row := range t.Rows {
		for _, c := range row {
			if c.OK != nil && !*c.OK {
				n++
			}
		}
	}
	return n
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Paper claim: %s\n\n", t.Claim)
	if t.Err != nil {
		fmt.Fprintf(&b, "**ERROR:** %v\n\n", t.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	fmt.Fprintf(&b, "|%s\n", strings.Repeat("---|", len(t.Columns)))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = c.Value
			if c.OK != nil {
				if *c.OK {
					cells[i] += " ✓"
				} else {
					cells[i] += " ✗"
				}
			}
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	b.WriteString("\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}

// Experiment pairs an ID with its runner. Nondet marks experiments whose
// exact table values vary run-to-run (real-goroutine schedules); their
// bounds still hold on every run, but they are excluded from byte-identity
// checks.
type Experiment struct {
	ID     string
	Run    func() Table
	Nondet bool
}

// All lists every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "T1", Run: T1ProtocolA},
		{ID: "T2", Run: T2ProtocolB},
		{ID: "T3", Run: T3ProtocolC},
		{ID: "T4", Run: T4ProtocolCLowMsg},
		{ID: "T5", Run: T5ProtocolD},
		{ID: "T6", Run: T6ProtocolDRevert},
		{ID: "T7", Run: T7ProtocolDFailureFree},
		{ID: "T8", Run: T8Agreement},
		{ID: "T9", Run: T9Bootstrap},
		{ID: "F1", Run: F1CheckpointFrequency},
		{ID: "F2", Run: F2NaiveVsC},
		{ID: "F3", Run: F3EffortComparison},
		{ID: "F4", Run: F4TimeDegradation},
		{ID: "F5", Run: F5SharedMemory},
		{ID: "F6", Run: F6AsyncProtocolA, Nondet: true},
		{ID: "F7", Run: F7DynamicWork},
		{ID: "X1", Run: X1FastForward},
		{ID: "X2", Run: X2PartialCheckpointAblation},
		{ID: "X3", Run: X3RevertThreshold},
		{ID: "X4", Run: X4ScheduleSpace},
		{ID: "X5", Run: X5FaultSurvival},
		{ID: "X6", Run: X6CertificationAtScale},
		{ID: "X7", Run: X7SuccessorCertification},
	}
}

// Deterministic lists the experiments whose tables are byte-reproducible
// across runs — All minus the real-goroutine asynchronous ones.
func Deterministic() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if !e.Nondet {
			out = append(out, e)
		}
	}
	return out
}

// Select filters experiments by ID; an empty want set keeps everything.
func Select(exps []Experiment, want map[string]bool) []Experiment {
	if len(want) == 0 {
		return exps
	}
	var out []Experiment
	for _, e := range exps {
		if want[e.ID] {
			out = append(out, e)
		}
	}
	return out
}
