package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsHoldBounds is the reproduction's master check: every
// table regenerates without error and every paper bound holds.
func TestAllExperimentsHoldBounds(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run()
			if table.Err != nil {
				t.Fatalf("%s: %v", e.ID, table.Err)
			}
			if f := table.Failures(); f > 0 {
				t.Fatalf("%s: %d bound failures\n%s", e.ID, f, table.Markdown())
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Fatalf("%s: row width %d != %d columns", e.ID, len(row), len(table.Columns))
				}
			}
		})
	}
}

func TestCellFormatting(t *testing.T) {
	c := B(3, 5)
	if c.Value != "3 ≤ 5" || c.OK == nil || !*c.OK {
		t.Fatalf("B(3,5) = %+v", c)
	}
	c = B(7, 5)
	if c.OK == nil || *c.OK {
		t.Fatalf("B(7,5) should fail: %+v", c)
	}
	c = Eq(4, 4)
	if c.Value != "4 = 4" || !*c.OK {
		t.Fatalf("Eq(4,4) = %+v", c)
	}
	if v := V("x"); v.Value != "x" || v.OK != nil {
		t.Fatalf("V = %+v", v)
	}
}

func TestTableMarkdown(t *testing.T) {
	table := Table{
		ID: "T0", Title: "demo", Claim: "c",
		Columns: []string{"a", "b"},
		Rows:    [][]Cell{{V(1), B(2, 3)}},
		Notes:   []string{"note"},
	}
	md := table.Markdown()
	for _, want := range []string{"### T0 — demo", "| a | b |", "| 1 | 2 ≤ 3 ✓ |", "- note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	if table.Failures() != 0 {
		t.Fatal("unexpected failures")
	}
	bad := Table{Columns: []string{"x"}, Rows: [][]Cell{{B(9, 1)}}}
	if bad.Failures() != 1 {
		t.Fatal("failure not counted")
	}
	if !strings.Contains(bad.Markdown(), "✗") {
		t.Fatal("failing cell not marked")
	}
	errTable := Table{ID: "E", Err: errFake}
	if !strings.Contains(errTable.Markdown(), "ERROR") {
		t.Fatal("error not rendered")
	}
}

var errFake = errString("fake")

type errString string

func (e errString) Error() string { return string(e) }
