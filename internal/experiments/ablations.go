package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
)

// X1FastForward measures the engine's quiet-round skipping, without which
// Protocol C (exponential deadlines) would be unrunnable.
func X1FastForward() Table {
	t := Table{
		ID:    "X1",
		Title: "Ablation: engine fast-forward on Protocol C",
		Claim: "reproduction-specific: nominal rounds are exponential in n + t while simulated events stay " +
			"polynomial, so wall-clock cost tracks events, not rounds",
		Columns: []string{"n", "t", "nominal rounds", "events simulated", "rounds/event"},
	}
	for _, c := range []struct{ n, t int }{{8, 4}, {16, 8}, {24, 8}, {32, 8}} {
		procs, err := core.ProtocolCProcs(core.CConfig{N: c.n, T: c.t})
		if err != nil {
			t.Err = err
			return t
		}
		res, err := run(c.n, c.t, procs, nil)
		if err != nil {
			t.Err = err
			return t
		}
		ratio := float64(res.Rounds) / float64(maxInt64(res.Events, 1))
		t.Rows = append(t.Rows, []Cell{
			V(c.n), V(c.t), V(res.Rounds), V(res.Events), V(fmt.Sprintf("%.3g", ratio)),
		})
	}
	return t
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// X2PartialCheckpointAblation removes Protocol A's partial checkpoints,
// demonstrating why the two-tier scheme exists: with full checkpoints only,
// every takeover loses up to a chunk (n/√t) instead of a subchunk (n/t).
func X2PartialCheckpointAblation() Table {
	t := Table{
		ID:    "X2",
		Title: "Ablation: Protocol A without partial checkpoints",
		Claim: "reproduction-specific: dropping the partial (√t-group) checkpoints saves messages but " +
			"multiplies redone work by ~√t under the cascade — the two-tier compromise of §2 is load-bearing",
		Columns: []string{"n", "t", "variant", "work", "messages", "effort"},
	}
	for _, c := range []struct{ n, t int }{{256, 16}, {256, 64}} {
		for _, fullOnly := range []bool{false, true} {
			procs, err := core.ProtocolAProcs(core.ABConfig{N: c.n, T: c.t, FullOnly: fullOnly})
			if err != nil {
				t.Err = err
				return t
			}
			res, err := run(c.n, c.t, procs, adversary.NewCascade(maxInt(1, c.n/c.t), c.t-1))
			if err != nil {
				t.Err = err
				return t
			}
			name := "partial+full (paper)"
			if fullOnly {
				name = "full only"
			}
			t.Rows = append(t.Rows, []Cell{
				V(c.n), V(c.t), V(name),
				V(res.WorkTotal), V(res.Messages), V(res.WorkTotal + res.Messages),
			})
		}
	}
	return t
}

// X3RevertThreshold sweeps Protocol D's revert factor α (the paper uses 2 =
// "more than half"), reproducing the remark that any factor works with the
// work bound scaling as n/(1−1/α).
func X3RevertThreshold() Table {
	t := Table{
		ID:    "X3",
		Title: "Ablation: Protocol D revert threshold",
		Claim: "§4 remark: any revert fraction α works; by the end of phase k at most αᵏn units remain, " +
			"so total work ≤ n/(1−α); without the revert, work can reach Ω(n·log f/log log f) [DPMY]",
		Columns: []string{"factor", "work", "messages", "rounds", "reverted"},
	}
	n, tt := 128, 16
	mkAdv := func() *adversary.Schedule {
		// Lose just over half of the live processes in the first phase.
		var crashes []adversary.Crash
		for pid := 0; pid < tt/2+1; pid++ {
			crashes = append(crashes, adversary.Crash{PID: pid, Round: 1})
		}
		return adversary.NewSchedule(crashes...)
	}
	type variant struct {
		name    string
		factor  float64
		disable bool
	}
	for _, v := range []variant{
		{"1.2", 1.2, false},
		{"2 (paper)", 0, false},
		{"4", 4, false},
		{"disabled", 0, true},
	} {
		procs, err := core.ProtocolDProcs(core.DConfig{
			N: n, T: tt, RevertFactor: v.factor, DisableRevert: v.disable,
		})
		if err != nil {
			t.Err = err
			return t
		}
		res, err := core.RunProcs(n, tt, procs, core.RunOptions{
			Adversary: mkAdv(), DetailedMetrics: true,
		})
		if err == nil {
			err = core.CheckCompletion(res)
		}
		if err != nil {
			t.Err = fmt.Errorf("factor %s: %w", v.name, err)
			return t
		}
		reverted := res.MessagesByKind["partial-cp"] > 0 || res.MessagesByKind["full-cp"] > 0
		t.Rows = append(t.Rows, []Cell{
			V(v.name), V(res.WorkTotal), V(res.Messages), V(res.Rounds), V(reverted),
		})
	}
	return t
}
