package group

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSqrtCanonical(t *testing.T) {
	q := NewSqrt(16)
	if q.S != 4 || q.G != 4 || !q.IsPerfect() {
		t.Fatalf("NewSqrt(16) = %+v", q)
	}
	if g := q.GroupOf(0); g != 1 {
		t.Fatalf("GroupOf(0) = %d, want 1", g)
	}
	if g := q.GroupOf(15); g != 4 {
		t.Fatalf("GroupOf(15) = %d, want 4", g)
	}
	if m := q.Members(2); !reflect.DeepEqual(m, []int{4, 5, 6, 7}) {
		t.Fatalf("Members(2) = %v", m)
	}
	if r := q.Remainder(5); !reflect.DeepEqual(r, []int{6, 7}) {
		t.Fatalf("Remainder(5) = %v", r)
	}
	if r := q.Remainder(7); len(r) != 0 {
		t.Fatalf("Remainder(7) = %v, want empty", r)
	}
	if o := q.Offset(6); o != 2 {
		t.Fatalf("Offset(6) = %d, want 2", o)
	}
}

func TestSqrtRagged(t *testing.T) {
	q := NewSqrt(10) // S=4, G=3, last group {8,9}
	if q.S != 4 || q.G != 3 || q.IsPerfect() {
		t.Fatalf("NewSqrt(10) = %+v", q)
	}
	if m := q.Members(3); !reflect.DeepEqual(m, []int{8, 9}) {
		t.Fatalf("Members(3) = %v", m)
	}
	lo, hi := q.Bounds(3)
	if lo != 8 || hi != 10 {
		t.Fatalf("Bounds(3) = [%d,%d)", lo, hi)
	}
}

func TestSqrtPartitionProperty(t *testing.T) {
	// Every process belongs to exactly one group, and groups tile 0..T-1.
	f := func(raw uint8) bool {
		tt := int(raw%200) + 1
		q := NewSqrt(tt)
		seen := make([]int, tt)
		for g := 1; g <= q.G; g++ {
			for _, i := range q.Members(g) {
				seen[i]++
				if q.GroupOf(i) != g {
					return false
				}
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCeilSqrt(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 2, 5: 3, 9: 3, 10: 4, 16: 4, 17: 5}
	for x, want := range cases {
		if got := ceilSqrt(x); got != want {
			t.Errorf("ceilSqrt(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 1024: 10}
	for x, want := range cases {
		if got := CeilLog2(x); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestLevelsPowerOfTwo(t *testing.T) {
	lv := NewLevels(8)
	if lv.L != 3 {
		t.Fatalf("L = %d, want 3", lv.L)
	}
	// Level 1: one group of 8; level 2: two of 4; level 3: four pairs.
	if g := lv.Groups(1); len(g) != 1 || g[0].Size() != 8 {
		t.Fatalf("level 1 = %v", g)
	}
	if g := lv.Groups(2); len(g) != 2 || g[0].Size() != 4 || g[1].Size() != 4 {
		t.Fatalf("level 2 = %v", g)
	}
	if g := lv.Groups(3); len(g) != 4 || g[0].Size() != 2 {
		t.Fatalf("level 3 = %v", g)
	}
	id, span := lv.GroupOf(5, 3)
	if id != (GroupID{Level: 3, Index: 2}) || span != (Span{Lo: 4, Hi: 6}) {
		t.Fatalf("GroupOf(5,3) = %v %v", id, span)
	}
	// Paper: group sizes at level h are 2^(log t - h + 1).
	for h := 1; h <= 3; h++ {
		want := 1 << (3 - h + 1)
		for _, s := range lv.Groups(h) {
			if s.Size() != want {
				t.Fatalf("level %d group size %d, want %d", h, s.Size(), want)
			}
		}
	}
}

func TestLevelsPartitionProperty(t *testing.T) {
	f := func(raw uint8) bool {
		tt := int(raw%100) + 1
		lv := NewLevels(tt)
		for h := 1; h <= lv.L; h++ {
			seen := make([]int, tt)
			for _, s := range lv.Groups(h) {
				for i := s.Lo; i < s.Hi; i++ {
					seen[i]++
				}
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevelsNesting(t *testing.T) {
	// Each level-h group of size > 1 splits into exactly two level-(h+1)
	// groups.
	lv := NewLevels(13)
	for h := 1; h < lv.L; h++ {
		for _, s := range lv.Groups(h) {
			children := 0
			for _, c := range lv.Groups(h + 1) {
				if c.Lo >= s.Lo && c.Hi <= s.Hi {
					children++
				}
			}
			want := 2
			if s.Size() <= 1 {
				want = 1
			}
			if children != want {
				t.Fatalf("level %d span %v has %d children, want %d", h, s, children, want)
			}
		}
	}
}

func TestCyclicSuccessor(t *testing.T) {
	none := func(int) bool { return false }
	if s, ok := CyclicSuccessor(0, 4, 1, none); !ok || s != 2 {
		t.Fatalf("succ(1) = %d,%v", s, ok)
	}
	if s, ok := CyclicSuccessor(0, 4, 3, none); !ok || s != 0 {
		t.Fatalf("succ(3) wraps = %d,%v", s, ok)
	}
	excl := func(x int) bool { return x == 2 || x == 3 }
	if s, ok := CyclicSuccessor(0, 4, 1, excl); !ok || s != 0 {
		t.Fatalf("succ skipping = %d,%v", s, ok)
	}
	all := func(int) bool { return true }
	if _, ok := CyclicSuccessor(0, 4, 1, all); ok {
		t.Fatal("all-excluded should report not ok")
	}
	// j itself is a candidate after a full cycle when not excluded.
	exceptSelf := func(x int) bool { return x != 1 }
	if s, ok := CyclicSuccessor(0, 4, 1, exceptSelf); !ok || s != 1 {
		t.Fatalf("succ full-cycle = %d,%v", s, ok)
	}
	// Offset interval.
	if s, ok := CyclicSuccessor(4, 6, 5, none); !ok || s != 4 {
		t.Fatalf("succ offset interval = %d,%v", s, ok)
	}
}

func TestGroupIDString(t *testing.T) {
	if s := (GroupID{Level: 2, Index: 1}).String(); s != "G(2,1)" {
		t.Fatalf("String = %q", s)
	}
}

func TestLevelsSingleProcess(t *testing.T) {
	lv := NewLevels(1)
	if lv.L != 0 {
		t.Fatalf("L = %d, want 0", lv.L)
	}
	if ids := lv.AllGroups(); len(ids) != 0 {
		t.Fatalf("AllGroups = %v, want empty", ids)
	}
}

func TestAllGroupsCount(t *testing.T) {
	// For t a power of two there are t-1 groups in total (binary tree).
	lv := NewLevels(16)
	if got := len(lv.AllGroups()); got != 15 {
		t.Fatalf("AllGroups count = %d, want 15", got)
	}
}
