// Package group implements the process-grouping mathematics used by the
// Dwork–Halpern–Waarts protocols: the √t partition of Protocols A and B, the
// recursive binary level tree of Protocol C, and cyclic successor orders with
// exclusion sets.
//
// Groups are 1-indexed to match the paper's notation (g ∈ 1..G).
package group

import "fmt"

// Sqrt is the √t partition of processes 0..T-1 used by Protocols A and B:
// G groups of size S (the last group may be smaller when T is not a perfect
// square).
type Sqrt struct {
	T int // number of processes
	S int // group size, ceil(sqrt(T))
	G int // number of groups, ceil(T/S)
}

// NewSqrt builds the √t partition for t processes.
func NewSqrt(t int) Sqrt {
	if t <= 0 {
		panic(fmt.Sprintf("group: NewSqrt(%d): t must be positive", t))
	}
	s := ceilSqrt(t)
	return Sqrt{T: t, S: s, G: (t + s - 1) / s}
}

// ceilSqrt returns ⌈√x⌉.
func ceilSqrt(x int) int {
	if x <= 1 {
		return x
	}
	r := 1
	for r*r < x {
		r++
	}
	return r
}

// GroupOf returns the 1-indexed group of process i (the paper's gᵢ).
func (q Sqrt) GroupOf(i int) int {
	q.checkPID(i)
	return i/q.S + 1
}

// Members returns the process IDs of group g in increasing order.
func (q Sqrt) Members(g int) []int {
	q.checkGroup(g)
	lo, hi := q.Bounds(g)
	m := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		m = append(m, i)
	}
	return m
}

// Bounds returns the half-open process-ID interval [lo, hi) of group g.
func (q Sqrt) Bounds(g int) (lo, hi int) {
	q.checkGroup(g)
	lo = (g - 1) * q.S
	hi = lo + q.S
	if hi > q.T {
		hi = q.T
	}
	return lo, hi
}

// Remainder returns the members of j's group with IDs strictly greater than
// j, i.e. the recipients of the paper's "broadcast to processes j+1..gⱼ√t−1".
func (q Sqrt) Remainder(j int) []int {
	q.checkPID(j)
	_, hi := q.Bounds(q.GroupOf(j))
	m := make([]int, 0, hi-j-1)
	for i := j + 1; i < hi; i++ {
		m = append(m, i)
	}
	return m
}

// Offset returns j mod S, the paper's ȷ̄ (position of j within its group).
func (q Sqrt) Offset(j int) int {
	q.checkPID(j)
	return j % q.S
}

// IsPerfect reports whether T is a perfect square with equal-size groups,
// i.e. whether the paper's canonical assumptions hold exactly.
func (q Sqrt) IsPerfect() bool { return q.S*q.S == q.T }

func (q Sqrt) checkPID(i int) {
	if i < 0 || i >= q.T {
		panic(fmt.Sprintf("group: pid %d out of range [0,%d)", i, q.T))
	}
}

func (q Sqrt) checkGroup(g int) {
	if g < 1 || g > q.G {
		panic(fmt.Sprintf("group: group %d out of range [1,%d]", g, q.G))
	}
}
