package group

import "fmt"

// Span is a half-open interval [Lo, Hi) of process IDs forming one group of
// the Protocol C level tree.
type Span struct {
	Lo, Hi int
}

// Size returns the number of processes in the span.
func (s Span) Size() int { return s.Hi - s.Lo }

// Contains reports whether process i belongs to the span.
func (s Span) Contains(i int) bool { return i >= s.Lo && i < s.Hi }

// GroupID identifies a group in the Protocol C level structure: level 0 is
// the work (G0); levels 1..L are process groups, coarsest (the whole set)
// at level 1, pairs at level L.
type GroupID struct {
	Level int
	Index int
}

// String implements fmt.Stringer.
func (g GroupID) String() string { return fmt.Sprintf("G(%d,%d)", g.Level, g.Index) }

// G0 is the identifier of the work "group" (level 0).
var G0 = GroupID{Level: 0, Index: 0}

// Levels is the recursive halving structure of Protocol C. For t a power of
// two, level h has t/2^(L-h+1) groups of size 2^(L-h+1), exactly as in the
// paper; for general t the left half of each split takes the ceiling, so
// groups may be ragged but every process belongs to exactly one group per
// level.
type Levels struct {
	T int
	L int // number of levels, ceil(log2 T); 0 when T == 1
	// spans[h] lists the groups of level h+1 in index order.
	spans [][]Span
}

// NewLevels builds the Protocol C level tree for t processes.
func NewLevels(t int) Levels {
	if t <= 0 {
		panic(fmt.Sprintf("group: NewLevels(%d): t must be positive", t))
	}
	l := CeilLog2(t)
	lv := Levels{T: t, L: l, spans: make([][]Span, l)}
	cur := []Span{{Lo: 0, Hi: t}}
	for h := 1; h <= l; h++ {
		lv.spans[h-1] = cur
		next := make([]Span, 0, 2*len(cur))
		for _, s := range cur {
			if s.Size() <= 1 {
				next = append(next, s)
				continue
			}
			mid := s.Lo + (s.Size()+1)/2
			next = append(next, Span{Lo: s.Lo, Hi: mid}, Span{Lo: mid, Hi: s.Hi})
		}
		cur = next
	}
	return lv
}

// CeilLog2 returns ⌈log₂ x⌉ for x ≥ 1.
func CeilLog2(x int) int {
	if x < 1 {
		panic(fmt.Sprintf("group: CeilLog2(%d)", x))
	}
	l := 0
	for v := 1; v < x; v <<= 1 {
		l++
	}
	return l
}

// Groups returns the spans of level h (1 ≤ h ≤ L) in index order.
func (lv Levels) Groups(h int) []Span {
	lv.checkLevel(h)
	return lv.spans[h-1]
}

// GroupOf returns the GroupID and Span of process i's level-h group, the
// paper's Gⁱ_h.
func (lv Levels) GroupOf(i, h int) (GroupID, Span) {
	lv.checkLevel(h)
	if i < 0 || i >= lv.T {
		panic(fmt.Sprintf("group: pid %d out of range [0,%d)", i, lv.T))
	}
	for idx, s := range lv.spans[h-1] {
		if s.Contains(i) {
			return GroupID{Level: h, Index: idx}, s
		}
	}
	panic("group: unreachable: process in no group")
}

// Span returns the span of a GroupID (level ≥ 1).
func (lv Levels) Span(g GroupID) Span {
	lv.checkLevel(g.Level)
	spans := lv.spans[g.Level-1]
	if g.Index < 0 || g.Index >= len(spans) {
		panic(fmt.Sprintf("group: %v index out of range", g))
	}
	return spans[g.Index]
}

// AllGroups enumerates every GroupID of every level, coarsest level first.
func (lv Levels) AllGroups() []GroupID {
	var ids []GroupID
	for h := 1; h <= lv.L; h++ {
		for idx := range lv.spans[h-1] {
			ids = append(ids, GroupID{Level: h, Index: idx})
		}
	}
	return ids
}

func (lv Levels) checkLevel(h int) {
	if h < 1 || h > lv.L {
		panic(fmt.Sprintf("group: level %d out of range [1,%d]", h, lv.L))
	}
}

// CyclicSuccessor returns the first process after j in the cyclic order on
// [lo, hi) that is not excluded, the paper's "i-successor". It returns
// (-1, false) when every candidate is excluded. j itself is a valid result
// if it is not excluded and every other member is.
func CyclicSuccessor(lo, hi, j int, excluded func(int) bool) (int, bool) {
	n := hi - lo
	if n <= 0 || j < lo || j >= hi {
		panic(fmt.Sprintf("group: CyclicSuccessor(%d,%d,%d)", lo, hi, j))
	}
	for step := 1; step <= n; step++ {
		c := lo + (j-lo+step)%n
		if !excluded(c) {
			return c, true
		}
	}
	return -1, false
}
