package benchmarks

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"encoding/json"
)

// HistoryEntry is one PR's worth of measurements in BENCH_history.json: the
// per-PR perf trajectory, append-only where BENCH_engine.json keeps only the
// latest baseline. Early entries carry only the benchmarks that existed at
// the time.
type HistoryEntry struct {
	Label   string   `json:"label"`
	Records []Record `json:"records"`
}

// ReadHistory loads a trajectory written by WriteHistory. A missing file is
// an empty trajectory, not an error: the first -history run creates it.
func ReadHistory(path string) ([]HistoryEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []HistoryEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// WriteHistory persists the trajectory deterministically (indented, trailing
// newline), like WriteJSON does for the baseline.
func WriteHistory(path string, entries []HistoryEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// AppendHistory adds one PR's records under label, replacing an existing
// entry with the same label (re-running a PR's measurement refreshes its
// point on the trajectory instead of duplicating it).
func AppendHistory(entries []HistoryEntry, label string, recs []Record) []HistoryEntry {
	for i := range entries {
		if entries[i].Label == label {
			entries[i].Records = recs
			return entries
		}
	}
	return append(entries, HistoryEntry{Label: label, Records: recs})
}

// fmtCell renders one measurement as "time / allocs" with time auto-scaled;
// records without an alloc count (early history) render the time alone.
func fmtCell(r Record) string {
	var t string
	switch ns := r.NsPerOp; {
	case ns >= 1e6:
		t = fmt.Sprintf("%.2g ms", ns/1e6)
	case ns >= 1e3:
		t = fmt.Sprintf("%.0f µs", ns/1e3)
	default:
		t = fmt.Sprintf("%.0f ns", ns)
	}
	if r.AllocsPerOp <= 0 {
		return t
	}
	return fmt.Sprintf("%s / %d allocs", t, r.AllocsPerOp)
}

// RenderTrajectory renders the history as the README's markdown perf table:
// one row per benchmark, one column per PR label, "—" where a benchmark did
// not exist yet. Row order is alphabetical (stable across regenerations).
func RenderTrajectory(entries []HistoryEntry) string {
	names := map[string]bool{}
	for _, e := range entries {
		for _, r := range e.Records {
			names[r.Name] = true
		}
	}
	rows := make([]string, 0, len(names))
	for n := range names {
		rows = append(rows, n)
	}
	sort.Strings(rows)

	var b strings.Builder
	b.WriteString("| benchmark |")
	for _, e := range entries {
		fmt.Fprintf(&b, " %s |", e.Label)
	}
	b.WriteString("\n|---|")
	for range entries {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, name := range rows {
		fmt.Fprintf(&b, "| %s |", name)
		for _, e := range entries {
			cell := "—"
			for _, r := range e.Records {
				if r.Name == name {
					cell = fmtCell(r)
					break
				}
			}
			fmt.Fprintf(&b, " %s |", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Trajectory markers delimit the regenerated README table; everything
// between them is owned by `go run ./cmd/bench -readme`.
const (
	trajectoryBegin = "<!-- bench-trajectory:begin -->"
	trajectoryEnd   = "<!-- bench-trajectory:end -->"
)

// UpdateReadme regenerates the perf table between the trajectory markers in
// the file at path from the given history.
func UpdateReadme(path string, entries []HistoryEntry) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s := string(data)
	lo := strings.Index(s, trajectoryBegin)
	hi := strings.Index(s, trajectoryEnd)
	if lo < 0 || hi < 0 || hi < lo {
		return fmt.Errorf("%s: missing %s/%s markers", path, trajectoryBegin, trajectoryEnd)
	}
	out := s[:lo+len(trajectoryBegin)] + "\n" + RenderTrajectory(entries) + s[hi:]
	return os.WriteFile(path, []byte(out), 0o644)
}

// gapPairs ties each live benchmark to its engine twin: the ns/op ratio
// between the two is the concurrency plane's overhead factor, the number the
// live-plane perf work drives down.
var gapPairs = [][2]string{
	{"LiveProtocolB", "EngineProtocolB"},
	{"LiveProtocolD", "EngineProtocolD"},
	{"LiveFaultStorm", "EngineFaultStorm"},
	{"LiveGossip", "EngineGossip"},
}

// Gap is one live/engine ns-per-op ratio.
type Gap struct {
	Live, Engine string
	Ratio        float64 // live ns/op ÷ engine ns/op
}

// Gaps computes the live/engine ratios present in recs.
func Gaps(recs []Record) []Gap {
	byName := make(map[string]Record, len(recs))
	for _, r := range recs {
		byName[r.Name] = r
	}
	var out []Gap
	for _, p := range gapPairs {
		l, okL := byName[p[0]]
		e, okE := byName[p[1]]
		if !okL || !okE || e.NsPerOp <= 0 {
			continue
		}
		out = append(out, Gap{Live: p[0], Engine: p[1], Ratio: l.NsPerOp / e.NsPerOp})
	}
	return out
}

// CompareGaps reports live/engine ratio regressions beyond slack (e.g. 1.15
// fails a gap >15% above the recorded one). Comparing ratios instead of raw
// ns/op cancels machine speed out of the check: a uniformly slower CI
// machine moves both sides of each ratio, not the gap.
func CompareGaps(baseline, current []Record, slack float64) []Regression {
	base := map[string]float64{}
	for _, g := range Gaps(baseline) {
		base[g.Live] = g.Ratio
	}
	var regs []Regression
	for _, g := range Gaps(current) {
		b, ok := base[g.Live]
		if !ok || b <= 0 {
			continue
		}
		if g.Ratio > b*slack {
			regs = append(regs, Regression{
				Name: g.Live + "/" + g.Engine, Metric: "live_gap",
				Base: b, Current: g.Ratio, Ratio: g.Ratio / b,
			})
		}
	}
	return regs
}

// Improvements is Compare's mirror image: metrics that got better beyond the
// threshold margin (current < baseline ÷ threshold). cmd/bench reports them
// distinctly from regressions — an improvement is a cue to refresh the
// committed baseline, not a warning.
func Improvements(baseline, current []Record, threshold float64) []Regression {
	base := make(map[string]Record, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var imps []Regression
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		for _, m := range []struct {
			name      string
			base, cur float64
		}{
			{"ns_per_op", b.NsPerOp, cur.NsPerOp},
			{"allocs_per_op", float64(b.AllocsPerOp), float64(cur.AllocsPerOp)},
			{"bytes_per_op", float64(b.BytesPerOp), float64(cur.BytesPerOp)},
		} {
			if m.base <= 0 || m.cur <= 0 {
				continue
			}
			ratio := m.cur / m.base
			if ratio < 1/threshold {
				imps = append(imps, Regression{
					Name: cur.Name, Metric: m.name,
					Base: m.base, Current: m.cur, Ratio: ratio,
				})
			}
		}
	}
	return imps
}
