package benchmarks

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(name string, ns float64, allocs, bytes int64) Record {
	return Record{Name: name, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	entries, err := ReadHistory(path)
	if err != nil || entries != nil {
		t.Fatalf("missing file: got %v, %v; want empty, nil", entries, err)
	}
	entries = AppendHistory(entries, "seed", []Record{rec("EngineProtocolB", 486000, 334, 0)})
	entries = AppendHistory(entries, "PR7", []Record{rec("EngineProtocolB", 77000, 49, 8200)})
	if err := WriteHistory(path, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Label != "seed" || back[1].Label != "PR7" {
		t.Fatalf("round trip lost entries: %+v", back)
	}
	// Re-recording a label replaces its entry instead of duplicating it.
	back = AppendHistory(back, "PR7", []Record{rec("EngineProtocolB", 70000, 49, 8000)})
	if len(back) != 2 || back[1].Records[0].NsPerOp != 70000 {
		t.Fatalf("relabel did not replace: %+v", back)
	}
}

func TestRenderTrajectory(t *testing.T) {
	entries := []HistoryEntry{
		{Label: "seed", Records: []Record{rec("EngineProtocolB", 486000, 334, 0)}},
		{Label: "PR7", Records: []Record{
			rec("EngineProtocolB", 77000, 49, 8200),
			rec("LiveProtocolB", 238000, 62, 7996),
		}},
	}
	table := RenderTrajectory(entries)
	for _, want := range []string{
		"| benchmark | seed | PR7 |",
		"| EngineProtocolB | 486 µs / 334 allocs | 77 µs / 49 allocs |",
		"| LiveProtocolB | — | 238 µs / 62 allocs |", // absent from seed
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestUpdateReadme(t *testing.T) {
	path := filepath.Join(t.TempDir(), "README.md")
	body := "intro\n" + trajectoryBegin + "\nstale table\n" + trajectoryEnd + "\noutro\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	entries := []HistoryEntry{{Label: "PR7", Records: []Record{rec("EngineProtocolB", 77000, 49, 0)}}}
	if err := UpdateReadme(path, entries); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(got)
	if strings.Contains(s, "stale table") {
		t.Fatal("stale table survived regeneration")
	}
	for _, want := range []string{"intro\n", "outro\n", "77 µs / 49 allocs"} {
		if !strings.Contains(s, want) {
			t.Errorf("regenerated README missing %q:\n%s", want, s)
		}
	}
	// Second regeneration is idempotent.
	if err := UpdateReadme(path, entries); err != nil {
		t.Fatal(err)
	}
	again, _ := os.ReadFile(path)
	if string(again) != s {
		t.Fatal("regeneration not idempotent")
	}
	if err := UpdateReadme(filepath.Join(t.TempDir(), "nomarkers.md"), entries); err == nil {
		t.Fatal("want error on missing file")
	}
}

func TestGaps(t *testing.T) {
	recs := []Record{
		rec("EngineProtocolB", 100, 0, 0),
		rec("LiveProtocolB", 300, 0, 0),
		rec("EngineProtocolD", 200, 0, 0),
		// LiveProtocolD absent: pair skipped, not zero.
	}
	gaps := Gaps(recs)
	if len(gaps) != 1 || gaps[0].Live != "LiveProtocolB" || gaps[0].Ratio != 3 {
		t.Fatalf("gaps = %+v", gaps)
	}

	base := []Record{rec("EngineProtocolB", 100, 0, 0), rec("LiveProtocolB", 300, 0, 0)}
	// Machine twice as slow but same ratio: no regression.
	scaled := []Record{rec("EngineProtocolB", 200, 0, 0), rec("LiveProtocolB", 600, 0, 0)}
	if regs := CompareGaps(base, scaled, 1.15); len(regs) != 0 {
		t.Fatalf("uniform slowdown flagged: %+v", regs)
	}
	// Gap widened 3x -> 4x: regression beyond 15%.
	wide := []Record{rec("EngineProtocolB", 100, 0, 0), rec("LiveProtocolB", 400, 0, 0)}
	regs := CompareGaps(base, wide, 1.15)
	if len(regs) != 1 || regs[0].Metric != "live_gap" || regs[0].Base != 3 || regs[0].Current != 4 {
		t.Fatalf("widened gap: %+v", regs)
	}
}

func TestImprovementsDistinctFromRegressions(t *testing.T) {
	base := []Record{rec("EngineProtocolB", 100, 100, 1000)}
	cur := []Record{rec("EngineProtocolB", 50, 100, 2000)} // ns halved, bytes doubled
	imps := Improvements(base, cur, 1.25)
	if len(imps) != 1 || imps[0].Metric != "ns_per_op" || imps[0].Ratio != 0.5 {
		t.Fatalf("improvements = %+v", imps)
	}
	regs := Compare(base, cur, 1.25)
	if len(regs) != 1 || regs[0].Metric != "bytes_per_op" {
		t.Fatalf("regressions = %+v", regs)
	}
}
