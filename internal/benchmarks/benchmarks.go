// Package benchmarks defines the Engine* benchmark cases shared by the
// go-test benchmarks (bench_test.go) and the cmd/bench baseline recorder, so
// the perf trajectory in BENCH_engine.json is measured on exactly the code
// paths the test benchmarks exercise.
package benchmarks

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	doall "repro"
)

// EngineCase is one simulator micro-benchmark: the cost of one protocol run.
type EngineCase struct {
	Name     string
	Cfg      doall.Config
	Failures func() doall.Failures // fresh per run (adversaries are stateful)
}

// EngineCases returns the Engine* benchmark definitions.
func EngineCases() []EngineCase {
	return []EngineCase{
		{
			Name: "EngineProtocolB",
			Cfg:  doall.Config{Units: 256, Workers: 16, Protocol: doall.ProtocolB},
			Failures: func() doall.Failures {
				return doall.CascadeFailures(16, 15)
			},
		},
		{
			Name: "EngineProtocolD",
			Cfg:  doall.Config{Units: 256, Workers: 16, Protocol: doall.ProtocolD},
			Failures: func() doall.Failures {
				return doall.RandomFailures(0.01, 15, 9)
			},
		},
		{
			// Exponential nominal rounds, tiny event count: the fast-forward
			// path.
			Name: "EngineProtocolCFastForward",
			Cfg:  doall.Config{Units: 24, Workers: 8, Protocol: doall.ProtocolC},
		},
		{
			Name: "EngineLargeT",
			Cfg:  doall.Config{Units: 1024, Workers: 256, Protocol: doall.ProtocolB},
			Failures: func() doall.Failures {
				return doall.CascadeFailures(4, 255)
			},
		},
	}
}

// Run executes one case b.N times, reporting allocations and events/run.
func Run(b *testing.B, c EngineCase) {
	b.Helper()
	b.ReportAllocs()
	cfg := c.Cfg
	var events int64
	for i := 0; i < b.N; i++ {
		if c.Failures != nil {
			cfg.Failures = c.Failures()
		}
		res, err := doall.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Survivors > 0 && !res.Complete {
			b.Fatal("incomplete")
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// Record is one benchmark measurement as persisted in BENCH_engine.json.
type Record struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerRun float64 `json:"events_per_run"`
}

// Measure runs every engine case through testing.Benchmark and returns the
// records sorted by name.
func Measure() []Record {
	cases := EngineCases()
	out := make([]Record, 0, len(cases))
	for _, c := range cases {
		c := c
		r := testing.Benchmark(func(b *testing.B) { Run(b, c) })
		out = append(out, Record{
			Name:         c.Name,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			EventsPerRun: r.Extra["events/run"],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON persists records deterministically (sorted, indented, trailing
// newline) so baseline diffs are stable.
func WriteJSON(path string, recs []Record) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a baseline written by WriteJSON.
func ReadJSON(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// Regression describes one benchmark that slowed down beyond the threshold.
type Regression struct {
	Name     string
	Baseline Record
	Current  Record
	Ratio    float64 // current ns/op ÷ baseline ns/op
}

// Compare reports ns/op regressions beyond ratio threshold (e.g. 1.25 warns
// on >25% slowdowns) between a committed baseline and fresh measurements.
// New benchmarks (absent from the baseline) are not regressions.
func Compare(baseline, current []Record, threshold float64) []Regression {
	base := make(map[string]Record, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var regs []Regression
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		if ratio > threshold {
			regs = append(regs, Regression{Name: cur.Name, Baseline: b, Current: cur, Ratio: ratio})
		}
	}
	return regs
}
