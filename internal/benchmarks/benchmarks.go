// Package benchmarks defines the Engine* and Sweep* benchmark cases shared
// by the go-test benchmarks (bench_test.go) and the cmd/bench baseline
// recorder, so the perf trajectory in BENCH_engine.json is measured on
// exactly the code paths the test benchmarks exercise.
package benchmarks

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	doall "repro"
	"repro/internal/adversary"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/live"
	"repro/internal/sim"
)

// EngineCase is one simulator micro-benchmark: the cost of one protocol run.
type EngineCase struct {
	Name     string
	Cfg      doall.Config
	Failures func() doall.Failures // fresh per run (adversaries are stateful)
}

// EngineCases returns the Engine* benchmark definitions.
func EngineCases() []EngineCase {
	return []EngineCase{
		{
			Name: "EngineProtocolB",
			Cfg:  doall.Config{Units: 256, Workers: 16, Protocol: doall.ProtocolB},
			Failures: func() doall.Failures {
				return doall.CascadeFailures(16, 15)
			},
		},
		{
			Name: "EngineProtocolD",
			Cfg:  doall.Config{Units: 256, Workers: 16, Protocol: doall.ProtocolD},
			Failures: func() doall.Failures {
				return doall.RandomFailures(0.01, 15, 9)
			},
		},
		{
			// Exponential nominal rounds, tiny event count: the fast-forward
			// path.
			Name: "EngineProtocolCFastForward",
			Cfg:  doall.Config{Units: 24, Workers: 8, Protocol: doall.ProtocolC},
		},
		{
			Name: "EngineLargeT",
			Cfg:  doall.Config{Units: 1024, Workers: 256, Protocol: doall.ProtocolB},
			Failures: func() doall.Failures {
				return doall.CascadeFailures(4, 255)
			},
		},
		{
			// Failure-free Protocol D at t=64: every agreement round is a
			// 63-recipient broadcast per process, i.e. the broadcast record
			// plane under maximal fanout pressure.
			Name: "EngineBroadcastFanout",
			Cfg:  doall.Config{Units: 512, Workers: 64, Protocol: doall.ProtocolD},
		},
		{
			// The full extended fault alphabet at once: a kept-work action
			// crash, a round crash that later restarts (stepper-substrate
			// recovery), seeded message loss and a slow worker — the cost of
			// every fault-injection hook firing in a single Protocol B run.
			Name: "EngineFaultStorm",
			Cfg:  doall.Config{Units: 256, Workers: 16, Protocol: doall.ProtocolB},
			Failures: func() doall.Failures {
				return doall.CombinedFailures(
					doall.ScheduledFailures(
						doall.Crash{Process: 3, AtAction: 9, KeepWork: true},
						doall.Crash{Process: 0, Round: 40, RestartAt: 80},
						doall.Crash{Process: 5, Round: 120},
					),
					doall.LossyFailures(0.05, 16, 11),
					doall.SlowdownFailures(1, 30, 3),
				)
			},
		},
		{
			// The successor protocol: leader-free epoch gossip at t=16, all
			// processes working concurrently — the point-to-point-heavy
			// counterweight to the broadcast-heavy A–D cases.
			Name: "EngineGossip",
			Cfg:  doall.Config{Units: 256, Workers: 16, Protocol: doall.Gossip},
			Failures: func() doall.Failures {
				return doall.CascadeFailures(16, 15)
			},
		},
		{
			// The same run under the congested-clique bandwidth cap of half
			// the fanout: every epoch's rumor overflow exercises the
			// deferred-send queue and the pump phase.
			Name: "EngineGossipCapped",
			Cfg: doall.Config{
				Units: 256, Workers: 16, Protocol: doall.Gossip,
				Bandwidth: (core.GossipFanout(16) + 1) / 2,
			},
			Failures: func() doall.Failures {
				return doall.CascadeFailures(16, 15)
			},
		},
	}
}

// SweepCase measures engine reuse across a whole sweep: one op executes the
// expanded job list sequentially through the pooled batch runner, so
// allocs/op tracks the per-run setup cost Reset is meant to eliminate.
type SweepCase struct {
	Name string
	Jobs func() []batch.Job
}

// SweepCases returns the Sweep* benchmark definitions.
func SweepCases() []SweepCase {
	return []SweepCase{
		{
			Name: "SweepReuseSmall",
			Jobs: func() []batch.Job {
				return batch.Sweep{
					Protocols: []doall.Protocol{doall.ProtocolA, doall.ProtocolB, doall.ProtocolD},
					Failures: []batch.FailureSpec{
						batch.NoFailureSpec(), batch.CascadeFailureSpec(), batch.RandomFailureSpec(0.02),
					},
					Grid:  []batch.GridPoint{{Units: 96, Workers: 8}, {Units: 192, Workers: 16}},
					Seeds: []int64{1, 2},
				}.Jobs()
			},
		},
	}
}

// RunSweep executes one sweep case b.N times on a single worker (reuse is
// what is being measured; parallel fan-out is BenchmarkSweepParallel's job).
func RunSweep(b *testing.B, c SweepCase) {
	b.Helper()
	b.ReportAllocs()
	jobs := c.Jobs()
	for i := 0; i < b.N; i++ {
		for _, r := range batch.Run(jobs, batch.Options{Workers: 1}) {
			if r.Err != nil {
				b.Fatal(r.Name, r.Err)
			}
			if r.GuaranteeViolated() {
				b.Fatal(r.Name, "guarantee violated")
			}
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

// Run executes one case b.N times, reporting allocations and events/run.
func Run(b *testing.B, c EngineCase) {
	b.Helper()
	b.ReportAllocs()
	cfg := c.Cfg
	var events int64
	for i := 0; i < b.N; i++ {
		if c.Failures != nil {
			cfg.Failures = c.Failures()
		}
		res, err := doall.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Survivors > 0 && !res.Complete {
			b.Fatal("incomplete")
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// ExploreCase measures schedule-space exploration throughput: one op is a
// full exhaustive certification walk, and schedules/sec is the tracked
// headline metric.
type ExploreCase struct {
	Name     string
	Protocol string
	N, T     int
	Crashes  int
	Depth    int
	Prefix   int
	// Full forces the raw walk even on a symmetric protocol, so the Large
	// pair measures canonical and full throughput over the same space.
	Full bool
}

// ExploreCases returns the Explore* benchmark definitions.
func ExploreCases() []ExploreCase {
	large := ExploreCase{
		// The symmetric trivial baseline at certification scale: 459,361 raw
		// schedules (~65x ExploreSmall), walked as 1,771 canonical orbit
		// representatives. schedules/sec here is the headline symmetry +
		// pruning number.
		Name:     "ExploreLarge",
		Protocol: "trivial", N: 4, T: 8, Crashes: 3, Depth: 10, Prefix: 0,
	}
	largeFull := large
	// The same space walked raw: only prefix-equivalence pruning helps, so
	// ExploreLarge ÷ ExploreLargeFull is the symmetry win in isolation.
	largeFull.Name, largeFull.Full = "ExploreLargeFull", true
	return []ExploreCase{
		{
			// Protocol B at the acceptance-criterion instance: ~10k schedules
			// per op through the universal adversary and pooled engines.
			Name:     "ExploreSmall",
			Protocol: "b", N: 8, T: 3, Crashes: 2, Depth: 8, Prefix: 2,
		},
		large,
		largeFull,
	}
}

// RunExplore executes one explore case b.N times on a single worker and
// reports schedules/sec (the metric cmd/bench tracks) alongside the usual
// allocation counters.
func RunExplore(b *testing.B, c ExploreCase) {
	b.Helper()
	b.ReportAllocs()
	target, err := explore.NewTarget(c.Protocol, c.N, c.T, c.Crashes)
	if err != nil {
		b.Fatal(err)
	}
	space := explore.NewSpace(c.T, c.Crashes, c.Depth, c.Prefix)
	var schedules int64
	for i := 0; i < b.N; i++ {
		rep, err := target.Enumerate(space, explore.Options{Jobs: 1, Full: c.Full})
		if err != nil {
			b.Fatal(err)
		}
		if rep.ViolationCount > 0 {
			b.Fatalf("%d violations", rep.ViolationCount)
		}
		schedules += rep.Schedules
	}
	b.ReportMetric(float64(schedules)/b.Elapsed().Seconds(), "schedules/sec")
}

// LiveCase measures the live concurrent execution plane: the same protocol
// run as the Engine* cases, but over real goroutines and the channel
// transport. ns/op against the matching Engine* case is the barrier
// overhead — the price of true concurrency per run.
type LiveCase struct {
	Name        string
	N, T        int
	MaxActive   int
	Bandwidth   int // > 0: congested-clique per-round outbound cap
	NewSteppers func() (func(int) sim.Stepper, error)
	Adversary   func() sim.Adversary // fresh per run (adversaries are stateful)
}

// LiveCases returns the Live* benchmark definitions.
func LiveCases() []LiveCase {
	return []LiveCase{
		{
			// The live twin of EngineProtocolB: 16 goroutines through a full
			// crash cascade.
			Name: "LiveProtocolB", N: 256, T: 16, MaxActive: 1,
			NewSteppers: func() (func(int) sim.Stepper, error) {
				return core.SteppersFor(core.ProtocolBProcs(core.ABConfig{N: 256, T: 16}))
			},
			Adversary: func() sim.Adversary { return adversary.NewCascade(16, 15) },
		},
		{
			// The live twin of EngineProtocolD: agreement broadcasts under
			// random crashes, all 16 goroutines working concurrently.
			Name: "LiveProtocolD", N: 256, T: 16,
			NewSteppers: func() (func(int) sim.Stepper, error) {
				return core.ProtocolDSteppers(core.DConfig{N: 256, T: 16})
			},
			Adversary: func() sim.Adversary { return adversary.NewRandom(0.01, 15, 9) },
		},
		{
			// The live twin of EngineFaultStorm: the full fault alphabet —
			// kept-work action crash, crash-then-restart (recovery on real
			// goroutines), seeded loss and a slowdown — in one Protocol B run.
			// No MaxActive invariant: the slowed worker legitimately overlaps
			// its successor.
			Name: "LiveFaultStorm", N: 256, T: 16,
			NewSteppers: func() (func(int) sim.Stepper, error) {
				return core.SteppersFor(core.ProtocolBProcs(core.ABConfig{N: 256, T: 16}))
			},
			Adversary: func() sim.Adversary {
				return adversary.NewChain(
					adversary.NewSchedule(
						adversary.Crash{PID: 3, AtAction: 9, KeepWork: true},
						adversary.Crash{PID: 0, Round: 40, RestartAt: 80},
						adversary.Crash{PID: 5, Round: 120},
					),
					adversary.NewLoss(0.05, 16, 11),
					&adversary.Slowdown{PID: 1, Round: 30, Factor: 3},
				)
			},
		},
		{
			// The live twin of EngineGossip: 16 gossiping goroutines through
			// the same crash cascade — the live plane under point-to-point
			// (rather than broadcast-record) message pressure.
			Name: "LiveGossip", N: 256, T: 16,
			NewSteppers: func() (func(int) sim.Stepper, error) {
				return core.SteppersFor(core.GossipProcs(core.GossipConfig{N: 256, T: 16}))
			},
			Adversary: func() sim.Adversary { return adversary.NewCascade(16, 15) },
		},
	}
}

// RunLive executes one live case b.N times, reporting allocations and
// events/run like the Engine* cases.
func RunLive(b *testing.B, c LiveCase) {
	b.Helper()
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		steppers, err := c.NewSteppers()
		if err != nil {
			b.Fatal(err)
		}
		var adv sim.Adversary
		if c.Adversary != nil {
			adv = c.Adversary()
		}
		res, err := live.Run(live.Config{
			NumProcs: c.T, NumUnits: c.N, Adversary: adv, MaxActive: c.MaxActive,
			Bandwidth: c.Bandwidth,
		}, steppers)
		if err != nil {
			b.Fatal(err)
		}
		if res.Survivors > 0 && !res.Complete() {
			b.Fatal("incomplete")
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// Record is one benchmark measurement as persisted in BENCH_engine.json.
type Record struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerRun float64 `json:"events_per_run"`
	// SchedulesPerSec is the Explore* cases' throughput (0 elsewhere):
	// schedule-space certification speed, tracked so exploration
	// regressions leave a trail like engine ones.
	SchedulesPerSec float64 `json:"schedules_per_sec,omitempty"`
}

// Measure runs every engine, sweep, explore and live case through
// testing.Benchmark and returns the records sorted by name.
func Measure() []Record {
	engines := EngineCases()
	sweeps := SweepCases()
	explores := ExploreCases()
	lives := LiveCases()
	out := make([]Record, 0, len(engines)+len(sweeps)+len(explores)+len(lives))
	toRecord := func(name string, r testing.BenchmarkResult) Record {
		return Record{
			Name:            name,
			NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			EventsPerRun:    r.Extra["events/run"],
			SchedulesPerSec: r.Extra["schedules/sec"],
		}
	}
	for _, c := range engines {
		c := c
		out = append(out, toRecord(c.Name, testing.Benchmark(func(b *testing.B) { Run(b, c) })))
	}
	for _, c := range sweeps {
		c := c
		out = append(out, toRecord(c.Name, testing.Benchmark(func(b *testing.B) { RunSweep(b, c) })))
	}
	for _, c := range explores {
		c := c
		out = append(out, toRecord(c.Name, testing.Benchmark(func(b *testing.B) { RunExplore(b, c) })))
	}
	for _, c := range lives {
		c := c
		out = append(out, toRecord(c.Name, testing.Benchmark(func(b *testing.B) { RunLive(b, c) })))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON persists records deterministically (sorted, indented, trailing
// newline) so baseline diffs are stable.
func WriteJSON(path string, recs []Record) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a baseline written by WriteJSON.
func ReadJSON(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// Regression describes one benchmark metric that regressed beyond the
// threshold.
type Regression struct {
	Name    string
	Metric  string // "ns_per_op", "allocs_per_op" or "bytes_per_op"
	Base    float64
	Current float64
	Ratio   float64 // current ÷ baseline for the metric
}

// Compare reports regressions beyond ratio threshold (e.g. 1.25 warns on
// >25% increases) between a committed baseline and fresh measurements — on
// ns/op, allocs/op and bytes/op alike, so an allocation regression leaves a
// trail even when wall-clock noise hides it. schedules/sec is a
// higher-is-better metric, so its floor is the inverse: certification
// throughput dropping below baseline/threshold is a regression too — the
// strict schedules/sec floor in the bench gate. New benchmarks (absent
// from the baseline) are not regressions.
func Compare(baseline, current []Record, threshold float64) []Regression {
	base := make(map[string]Record, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var regs []Regression
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		for _, m := range []struct {
			name      string
			base, cur float64
			inverse   bool // higher is better; regression when it drops
		}{
			{"ns_per_op", b.NsPerOp, cur.NsPerOp, false},
			{"allocs_per_op", float64(b.AllocsPerOp), float64(cur.AllocsPerOp), false},
			{"bytes_per_op", float64(b.BytesPerOp), float64(cur.BytesPerOp), false},
			{"schedules_per_sec", b.SchedulesPerSec, cur.SchedulesPerSec, true},
		} {
			if m.base <= 0 {
				continue
			}
			ratio := m.cur / m.base
			if m.inverse {
				if m.cur <= 0 {
					continue
				}
				ratio = m.base / m.cur
			}
			if ratio > threshold {
				regs = append(regs, Regression{
					Name: cur.Name, Metric: m.name,
					Base: m.base, Current: m.cur, Ratio: ratio,
				})
			}
		}
	}
	return regs
}
