package explore

// Prefix-equivalence pruning. The enumeration orders (vectorAt, canonDecode)
// vary the last victim's choice fastest, so the walk visits sibling blocks:
// m consecutive indices that share a parent vector P (the leading k-1
// choices) and differ only in the last victim v's choice c. The adversaries
// of P and P+{c} make identical decisions until c first fires — v carries no
// choice in P, so every other verdict coincides — which yields two sound,
// exact replay-sharing rules, both decidable from one profiled replay of P:
//
//   - Never fires: if c's trigger provably never occurs in P's run (an
//     action ordinal past v's committed actions, a round past the run's
//     last, a slowdown round past v's last commit, a drop index past v's
//     deliveries), then P+{c}'s execution IS P's execution. The child is
//     certified from P's result without replaying — and it is collapsed by
//     definition (a crash choice leaves Result.Crashes short; omission,
//     slowdown and drop choices count as unfired faults).
//   - Sibling equivalence: two firing choices with the same effective
//     behaviour produce identical executions. Keep-work equals lose-work
//     when v's trigger action carries no work unit; delivery prefixes clamp
//     at the trigger action's real send count (the excess only sets the
//     over-delivery collapse marker); slowdown rounds collapse onto the
//     first commit of v at or after them. The first such sibling's replay is
//     cached per block and reused, with the collapse marker recomputed per
//     vector.
//
// Pruning never changes a report: certifications are synthesized to be
// byte-identical to a direct replay's (the property tests enumerate with
// and without pruning and require reflect.DeepEqual modulo the EngineRuns
// counter). Profiles come from a profiling wrapper around the universal
// adversary, so the engine is untouched.

import "repro/internal/sim"

// runProfile is what one profiled replay of a parent vector records about
// the block's varying victim.
type runProfile struct {
	pid int
	// Per committed action of pid, in commit order: the virtual send count,
	// whether the action carried a work unit, and the commit round
	// (non-decreasing).
	sendCount []int
	hasWork   []bool
	rounds    []int64
	// delivered counts messages bound for pid over the whole run (pid has
	// no drop choice in the parent, so none of them were lost).
	delivered int
}

// profilingAdversary delegates every verdict to the wrapped universal
// adversary unchanged, recording the profile on the way through. Embedding
// promotes the Restarter and scheduled-crash methods.
type profilingAdversary struct {
	*Adversary
	prof *runProfile
}

var (
	_ sim.Adversary         = (*profilingAdversary)(nil)
	_ sim.DeliveryAdversary = (*profilingAdversary)(nil)
	_ sim.Restarter         = (*profilingAdversary)(nil)
)

// OnAction implements sim.Adversary.
func (p *profilingAdversary) OnAction(round int64, pid int, act sim.Action) sim.Verdict {
	if pid == p.prof.pid {
		p.prof.sendCount = append(p.prof.sendCount, act.SendCount())
		p.prof.hasWork = append(p.prof.hasWork, act.WorkUnit != 0)
		p.prof.rounds = append(p.prof.rounds, round)
	}
	return p.Adversary.OnAction(round, pid, act)
}

// OnDeliver implements sim.DeliveryAdversary.
func (p *profilingAdversary) OnDeliver(round int64, m sim.Message) bool {
	if m.To == p.prof.pid {
		p.prof.delivered++
	}
	return p.Adversary.OnDeliver(round, m)
}

// effKey identifies a firing choice's effective behaviour within one
// sibling block: choices with equal keys replay identically. Space-decoded
// choices never carry Bits masks or action-crash restarts, so those fields
// do not appear.
type effKey struct {
	kind byte // 'c' action crash, 'o' omission, 's' slowdown
	// at is the trigger action ordinal (crash/omission) or the ordinal of
	// the victim's first commit at or after the slowdown round.
	at     int
	keep   bool // effective keep-work: KeepWork and the action has a unit
	prefix int  // effective delivery prefix: min(Prefix, send count)
	factor int  // slowdown factor
}

// classify decides the varying choice's fate against the profiled parent
// run: fires reports whether the trigger occurs at all; for firing choices
// that admit sibling dedup, dedup is true and key/overDel carry the
// effective key and whether this vector's delivery prefix over-ran the send
// list. parentRounds is the parent result's last round.
func (pr *runProfile) classify(c Choice, parentRounds int64) (fires bool, key effKey, overDel, dedup bool) {
	switch {
	case c.DropNth > 0:
		return pr.delivered >= c.DropNth, effKey{}, false, false
	case c.Slow > 0:
		// Fires at the victim's first commit at or after round c.Round.
		for i, r := range pr.rounds {
			if r >= c.Round {
				return true, effKey{kind: 's', at: i, factor: c.Slow}, false, true
			}
		}
		return false, effKey{}, false, false
	case c.AtAction <= 0:
		// Round crash (with or without restart): fires only while the run
		// is still live. Conservative — r <= parentRounds replays directly.
		return c.Round <= parentRounds, effKey{}, false, false
	case c.Bits:
		// Bitmask deliveries are a fuzzer surface, not a space product;
		// replay directly if one ever shows up here.
		if c.AtAction > len(pr.sendCount) {
			return false, effKey{}, false, false
		}
		return true, effKey{}, false, false
	default:
		a := c.AtAction
		if a > len(pr.sendCount) {
			return false, effKey{}, false, false
		}
		sc := pr.sendCount[a-1]
		eff := min(c.Prefix, sc)
		overDel = c.Prefix > sc
		if c.Omit {
			return true, effKey{kind: 'o', at: a, prefix: eff}, overDel, true
		}
		keep := c.KeepWork && pr.hasWork[a-1]
		return true, effKey{kind: 'c', at: a, keep: keep, prefix: eff}, overDel, true
	}
}

// cachedRun is one sibling's replay retained for effKey-equal reuse.
// overDel is the run adversary's full over-delivery flag (other choices OR
// the filler's own); ownOverDel isolates the filler's own contribution so a
// reuse can recompute the flag for its own prefix: when the filler's own
// contribution is false, others = overDel exactly; when it is true, the
// entry only serves siblings whose own contribution is also true.
type cachedRun struct {
	res        sim.Result
	err        error
	overDel    bool
	unfired    bool
	ownOverDel bool
}

// usableFor reports whether the cached replay can label a sibling whose own
// over-delivery flag is ownOverDel.
func (cr *cachedRun) usableFor(ownOverDel bool) bool {
	return !cr.ownOverDel || ownOverDel
}

// collapsedFor recomputes the sibling's collapse marker from the cached
// replay: crash shortfall and unfired faults are execution facts shared by
// the whole equivalence class; over-delivery is the one per-vector bit.
func (cr *cachedRun) collapsedFor(vec Vector, ownOverDel bool) bool {
	return cr.res.Crashes < vec.Crashes() || cr.overDel || ownOverDel || cr.unfired
}
