package explore

import (
	"fmt"
	"strings"
)

// Text renders the report as the deterministic plain-text block `doall
// explore` prints: a pure function of the report, so output is
// byte-identical for every worker count.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule space: protocol %s, n=%d, t=%d, <=%d crashes\n",
		r.Protocol, r.N, r.T, r.MaxCrashes)
	fmt.Fprintf(&b, "schedules:      %d certified, %d collapsed onto smaller vectors\n",
		r.Schedules, r.Collapsed)
	// Coverage: raw space vs indices actually walked. EngineRuns is
	// deliberately absent — it depends on chunk boundaries (see Report),
	// and this block is the byte-identity surface for shard merges and
	// checkpoint resumes.
	switch r.Mode {
	case "canonical":
		fmt.Fprintf(&b, "coverage:       %d raw schedules via %d canonical representatives (canonical mode)\n",
			r.RawSpace, r.Walked)
	case "full":
		fmt.Fprintf(&b, "coverage:       %d raw schedules, %d walked (full mode)\n",
			r.RawSpace, r.Walked)
	}
	if r.WalkTotal > 0 && r.Walked < r.WalkTotal {
		fmt.Fprintf(&b, "paused:         %d of %d indices walked; resume from the checkpoint\n",
			r.Walked, r.WalkTotal)
	}
	b.WriteString("crashes fired: ")
	for i, c := range r.ByCrashes {
		fmt.Fprintf(&b, " %d:%d", i, c)
	}
	b.WriteString("\n")
	if r.Bounds.Work > 0 {
		fmt.Fprintf(&b, "bounds:         work <= %d, messages <= %d, rounds <= %d, effort <= %d\n",
			r.Bounds.Work, r.Bounds.Messages, r.Bounds.Rounds, r.Bounds.Effort)
	} else {
		b.WriteString("bounds:         completion guarantee and invariants only\n")
	}
	worst := func(name string, e Extreme) {
		if e.Value < 0 {
			return
		}
		fmt.Fprintf(&b, "worst %-9s %d (%d crashes) via %s\n", name+":", e.Value, e.Crashes, e.Vector)
	}
	worst("work", r.WorstWork)
	worst("messages", r.WorstMessages)
	worst("rounds", r.WorstRounds)
	worst("effort", r.WorstEffort)
	fmt.Fprintf(&b, "violations:     %d\n", r.ViolationCount)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION %s: %s\n", v.Vector, v.Reason)
	}
	if r.ViolationCount > int64(len(r.Violations)) {
		fmt.Fprintf(&b, "  ... and %d more\n", r.ViolationCount-int64(len(r.Violations)))
	}
	return b.String()
}

// Text renders the search outcome as the deterministic plain-text block
// `doall explore -mode search` prints.
func (s SearchResult) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "search:         %d schedules evaluated, %d hill-climb steps, depth %d\n",
		s.Evaluated, s.Steps, s.Depth)
	fmt.Fprintf(&b, "worst found:    %d (%d crashes) via %s\n",
		s.Best.Value, s.Best.Crashes, s.Best.Vector)
	if s.LiveResult != nil {
		verdict := "MATCHES"
		if !s.LiveMatch {
			verdict = "DIVERGES from"
		}
		fmt.Fprintf(&b, "live plane:     %s the simulator on the worst schedule\n", verdict)
	}
	fmt.Fprintf(&b, "violations:     %d\n", s.ViolationCount)
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "  VIOLATION %s: %s\n", v.Vector, v.Reason)
	}
	if s.ViolationCount > int64(len(s.Violations)) {
		fmt.Fprintf(&b, "  ... and %d more\n", s.ViolationCount-int64(len(s.Violations)))
	}
	return b.String()
}
