package explore

import (
	"reflect"
	"testing"
)

// TestPrunedEnumerationMatchesDirect is the pruning soundness oracle: the
// prefix-equivalence walk must produce a report byte-identical to the
// direct walk's — every protocol, crash-only and full-alphabet spaces —
// modulo the EngineRuns diagnostic, which is exactly what pruning reduces.
func TestPrunedEnumerationMatchesDirect(t *testing.T) {
	targets := []struct {
		proto string
		grid  [3]int // n, t, f
	}{
		{"a", [3]int{8, 3, 2}},
		{"b", [3]int{8, 3, 2}},
		{"c", [3]int{6, 3, 2}},
		{"d", [3]int{6, 3, 2}},
		{"trivial", [3]int{4, 3, 2}},
	}
	for _, tc := range targets {
		tc := tc
		t.Run(tc.proto, func(t *testing.T) {
			t.Parallel()
			n, tt, f := tc.grid[0], tc.grid[1], tc.grid[2]
			tg, err := NewTarget(tc.proto, n, tt, f)
			if err != nil {
				t.Fatal(err)
			}
			for name, sp := range testSpaces(tt, f) {
				// Exercise both walk modes on the Symmetric target.
				for _, full := range []bool{false, true} {
					if full && !tg.Symmetric {
						continue
					}
					pruned, err := tg.Enumerate(sp, Options{Full: full})
					if err != nil {
						t.Fatal(err)
					}
					direct, err := tg.Enumerate(sp, Options{Full: full, NoPrune: true})
					if err != nil {
						t.Fatal(err)
					}
					if pruned.EngineRuns >= direct.EngineRuns {
						t.Errorf("%s full=%v: pruning did not reduce engine runs: %d vs %d",
							name, full, pruned.EngineRuns, direct.EngineRuns)
					}
					p, d := *pruned, *direct
					p.EngineRuns, d.EngineRuns = 0, 0
					if !reflect.DeepEqual(&p, &d) {
						t.Fatalf("%s full=%v: pruned report differs from direct:\n%+v\nvs\n%+v",
							name, full, p, d)
					}
					if pruned.Text() != direct.Text() {
						t.Fatalf("%s full=%v: rendered text differs", name, full)
					}
				}
			}
		})
	}
}

// TestPrunedJobsInvariance re-pins worker-count invariance now that walks
// share replays: chunk boundaries are fixed relative to the walk range, so
// even EngineRuns must agree across -jobs.
func TestPrunedJobsInvariance(t *testing.T) {
	tg, err := NewTarget("b", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpaces(3, 2)["full-alphabet"]
	one, err := tg.Enumerate(sp, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 5} {
		many, err := tg.Enumerate(sp, Options{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(one, many) {
			t.Fatalf("jobs=%d report differs:\n%+v\nvs\n%+v", jobs, one, many)
		}
	}
}
