package explore

import (
	"reflect"
	"testing"
)

// vectorFromBytes decodes arbitrary bytes into a valid decision vector for
// a t-process instance: 5-byte groups (victim, flags, trigger, d0, d1),
// duplicate victims skipped, at most maxCrashes choices kept. Delivery
// prefixes may deliberately exceed the send list and bitmasks may set high
// bits: the over-delivery paths are part of the fuzzed surface.
func vectorFromBytes(data []byte, t, maxCrashes int) Vector {
	var vec Vector
	seen := make(map[int]bool)
	for i := 0; i+4 < len(data) && len(vec) < maxCrashes; i += 5 {
		victim := int(data[i]) % t
		if seen[victim] {
			continue
		}
		seen[victim] = true
		flags := data[i+1]
		c := Choice{Victim: victim}
		if flags&1 == 1 {
			c.AtAction = 1 + int(data[i+2])%64
			c.KeepWork = flags&2 != 0
			if flags&4 != 0 {
				c.Bits = true
				c.Mask = uint64(data[i+3]) | uint64(data[i+4])<<8
			} else {
				c.Prefix = int(data[i+3]) % (t + 2)
			}
		} else {
			c.Round = int64(data[i+2]) % 64
		}
		vec = append(vec, c)
	}
	return vec.Canonical()
}

// encodeVector is vectorFromBytes's inverse for in-range vectors, used to
// seed the fuzz corpus with schedules the worst-case searcher found.
// Triggers past the decodable range (AtAction > 64, Round > 63) are
// clamped to its edge rather than wrapped, so an out-of-range worst
// schedule seeds a near neighbor instead of silently becoming an
// unrelated early crash.
func encodeVector(vec Vector) []byte {
	var out []byte
	for _, c := range vec {
		b := [5]byte{byte(c.Victim)}
		if c.AtAction > 0 {
			b[1] = 1
			if c.KeepWork {
				b[1] |= 2
			}
			if c.Bits {
				b[1] |= 4
				b[3] = byte(c.Mask)
				b[4] = byte(c.Mask >> 8)
			} else {
				b[3] = byte(c.Prefix)
			}
			b[2] = byte(min(c.AtAction, 64) - 1)
		} else {
			b[2] = byte(min(c.Round, 63))
		}
		out = append(out, b[:]...)
	}
	return out
}

// FuzzScheduleReplay drives arbitrary decision vectors through the
// universal adversary and asserts that replaying the same vector yields
// reflect.DeepEqual results — determinism under arbitrary schedules, on
// fresh protocol state and pooled engines both times — and that every such
// schedule certifies (completion guarantee, invariants, bounds).
func FuzzScheduleReplay(f *testing.F) {
	mkTargets := func() []Target {
		b, err := NewTarget("b", 10, 4, 3)
		if err != nil {
			f.Fatal(err)
		}
		d, err := NewTarget("d", 8, 4, 3)
		if err != nil {
			f.Fatal(err)
		}
		return []Target{b, d}
	}
	targets := mkTargets()

	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 0})
	f.Add([]byte{0, 3, 4, 1, 0, 1, 0, 5, 0, 0})
	f.Add([]byte{2, 7, 9, 0xff, 0x3, 0, 1, 63, 9, 0, 1, 0, 0, 0, 0})
	// Seed the corpus with the worst schedules the searcher finds: the
	// highest-effort executions are where replay divergence would hide.
	for _, tg := range targets {
		sr, err := tg.Search(SearchOptions{Seed: 11, Budget: 300, MaxPrefix: -1})
		if err != nil {
			f.Fatal(err)
		}
		if len(sr.BestVector) > 0 {
			f.Add(encodeVector(sr.BestVector))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tg := range targets {
			vec := vectorFromBytes(data, tg.T, tg.MaxCrashes)
			first := tg.Certify(vec)
			if len(first.Violations) != 0 {
				t.Fatalf("%s schedule %s: %v", tg.Protocol, vec, first.Violations)
			}
			again := tg.Certify(vec)
			if !reflect.DeepEqual(first.Result, again.Result) {
				t.Fatalf("%s schedule %s: replay diverged:\n%+v\nvs\n%+v",
					tg.Protocol, vec, first.Result, again.Result)
			}
		}
	})
}

// TestEncodeVectorRoundTrip pins that searcher-found vectors survive the
// corpus encoding (so the fuzz seeds actually replay them), and that
// out-of-range triggers clamp to the decodable edge instead of wrapping
// into unrelated schedules.
func TestEncodeVectorRoundTrip(t *testing.T) {
	vec := Vector{
		{Victim: 1, AtAction: 7, KeepWork: true, Prefix: 2},
		{Victim: 2, Round: 9},
		{Victim: 3, AtAction: 3, Bits: true, Mask: 0x1ff},
	}.Canonical()
	got := vectorFromBytes(encodeVector(vec), 4, 3)
	if !reflect.DeepEqual(got, vec) {
		t.Fatalf("round trip:\n%v\nvs\n%v", got, vec)
	}

	wide := Vector{{Victim: 0, AtAction: 200, KeepWork: true}, {Victim: 1, Round: 99}}
	want := Vector{{Victim: 0, AtAction: 64, KeepWork: true}, {Victim: 1, Round: 63}}
	if got := vectorFromBytes(encodeVector(wide), 4, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("clamping:\n%v\nvs\n%v", got, want)
	}
}
