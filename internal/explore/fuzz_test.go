package explore

import (
	"reflect"
	"testing"
)

// vectorFromBytes decodes arbitrary bytes into a valid decision vector for
// a t-process instance: 5-byte groups (victim, flags, trigger, d0, d1),
// duplicate victims skipped, at most maxCrashes choices kept. Delivery
// prefixes may deliberately exceed the send list and bitmasks may set high
// bits: the over-delivery paths are part of the fuzzed surface.
func vectorFromBytes(data []byte, t, maxCrashes int) Vector {
	var vec Vector
	seen := make(map[int]bool)
	for i := 0; i+4 < len(data) && len(vec) < maxCrashes; i += 5 {
		victim := int(data[i]) % t
		if seen[victim] {
			continue
		}
		seen[victim] = true
		flags := data[i+1]
		c := Choice{Victim: victim}
		if flags&1 == 1 {
			c.AtAction = 1 + int(data[i+2])%64
			c.KeepWork = flags&2 != 0
			if flags&4 != 0 {
				c.Bits = true
				c.Mask = uint64(data[i+3]) | uint64(data[i+4])<<8
			} else {
				c.Prefix = int(data[i+3]) % (t + 2)
			}
		} else {
			c.Round = int64(data[i+2]) % 64
		}
		vec = append(vec, c)
	}
	return vec.Canonical()
}

// encodeVector is vectorFromBytes's inverse for in-range vectors, used to
// seed the fuzz corpus with schedules the worst-case searcher found.
// Triggers past the decodable range (AtAction > 64, Round > 63) are
// clamped to its edge rather than wrapped, so an out-of-range worst
// schedule seeds a near neighbor instead of silently becoming an
// unrelated early crash.
func encodeVector(vec Vector) []byte {
	var out []byte
	for _, c := range vec {
		b := [5]byte{byte(c.Victim)}
		if c.AtAction > 0 {
			b[1] = 1
			if c.KeepWork {
				b[1] |= 2
			}
			if c.Bits {
				b[1] |= 4
				b[3] = byte(c.Mask)
				b[4] = byte(c.Mask >> 8)
			} else {
				b[3] = byte(c.Prefix)
			}
			b[2] = byte(min(c.AtAction, 64) - 1)
		} else {
			b[2] = byte(min(c.Round, 63))
		}
		out = append(out, b[:]...)
	}
	return out
}

// FuzzScheduleReplay drives arbitrary decision vectors through the
// universal adversary and asserts that replaying the same vector yields
// reflect.DeepEqual results — determinism under arbitrary schedules, on
// fresh protocol state and pooled engines both times — and that every such
// schedule certifies (completion guarantee, invariants, bounds).
func FuzzScheduleReplay(f *testing.F) {
	mkTargets := func() []Target {
		b, err := NewTarget("b", 10, 4, 3)
		if err != nil {
			f.Fatal(err)
		}
		d, err := NewTarget("d", 8, 4, 3)
		if err != nil {
			f.Fatal(err)
		}
		return []Target{b, d}
	}
	targets := mkTargets()

	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 0})
	f.Add([]byte{0, 3, 4, 1, 0, 1, 0, 5, 0, 0})
	f.Add([]byte{2, 7, 9, 0xff, 0x3, 0, 1, 63, 9, 0, 1, 0, 0, 0, 0})
	// Seed the corpus with the worst schedules the searcher finds: the
	// highest-effort executions are where replay divergence would hide.
	for _, tg := range targets {
		sr, err := tg.Search(SearchOptions{Seed: 11, Budget: 300, MaxPrefix: -1})
		if err != nil {
			f.Fatal(err)
		}
		if len(sr.BestVector) > 0 {
			f.Add(encodeVector(sr.BestVector))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tg := range targets {
			vec := vectorFromBytes(data, tg.T, tg.MaxCrashes)
			first := tg.Certify(vec)
			if len(first.Violations) != 0 {
				t.Fatalf("%s schedule %s: %v", tg.Protocol, vec, first.Violations)
			}
			again := tg.Certify(vec)
			if !reflect.DeepEqual(first.Result, again.Result) {
				t.Fatalf("%s schedule %s: replay diverged:\n%+v\nvs\n%+v",
					tg.Protocol, vec, first.Result, again.Result)
			}
		}
	})
}

// faultVectorFromBytes decodes arbitrary bytes into a valid decision vector
// over the FULL fault alphabet for a t-process instance: 6-byte groups
// (victim, kind, trigger, d0, d1, d2), kind selecting round crash (with
// optional restart), action crash (keep/lose, prefix or mask delivery,
// optional restart), send omission, slowdown or message drop. Duplicate
// victims are skipped and at most maxChoices choices are kept. Delivery
// selections may exceed the send list: over-delivery is fuzzed surface.
func faultVectorFromBytes(data []byte, t, maxChoices int) Vector {
	var vec Vector
	seen := make(map[int]bool)
	for i := 0; i+5 < len(data) && len(vec) < maxChoices; i += 6 {
		victim := int(data[i]) % t
		if seen[victim] {
			continue
		}
		seen[victim] = true
		trigger, d0, d1, d2 := data[i+2], data[i+3], data[i+4], data[i+5]
		c := Choice{Victim: victim}
		switch data[i+1] % 5 {
		case 0: // round crash, optionally revived
			c.Round = int64(trigger) % 64
			if d0&1 == 1 {
				c.RestartAt = c.Round + 1 + int64(d1%8)
			}
		case 1: // action crash
			c.AtAction = 1 + int(trigger)%64
			c.KeepWork = d0&1 != 0
			if d0&2 != 0 {
				c.Bits, c.Mask = true, uint64(d1)
			} else {
				c.Prefix = int(d1) % (t + 2)
			}
			if d0&4 != 0 {
				c.RestartAt = 1 + int64(d2)%64
			}
		case 2: // send omission
			c.AtAction = 1 + int(trigger)%64
			c.Omit = true
			if d0&2 != 0 {
				c.Bits, c.Mask = true, uint64(d1)
			} else {
				c.Prefix = int(d1) % (t + 2)
			}
		case 3: // slowdown
			c.Round = int64(trigger) % 64
			c.Slow = 1 + int(d0)%6
		case 4: // message drop
			c.DropNth = 1 + int(trigger)%64
		}
		vec = append(vec, c)
	}
	if len(vec) == 0 {
		return nil
	}
	return vec.Canonical()
}

// encodeFaultVector is faultVectorFromBytes's inverse for in-range vectors,
// used to seed the fuzz corpus with searcher-found schedules. Out-of-range
// triggers and masks clamp to the decodable edge.
func encodeFaultVector(vec Vector) []byte {
	var out []byte
	for _, c := range vec {
		b := [6]byte{byte(c.Victim)}
		switch {
		case c.DropNth > 0:
			b[1], b[2] = 4, byte(min(c.DropNth, 64)-1)
		case c.Slow > 0:
			b[1], b[2], b[3] = 3, byte(min(c.Round, 63)), byte(min(c.Slow, 6)-1)
		case c.Omit:
			b[1], b[2] = 2, byte(min(c.AtAction, 64)-1)
			if c.Bits {
				b[3], b[4] = 2, byte(min(c.Mask, 0xff))
			} else {
				b[4] = byte(c.Prefix)
			}
		case c.AtAction > 0:
			b[1], b[2] = 1, byte(min(c.AtAction, 64)-1)
			if c.KeepWork {
				b[3] |= 1
			}
			if c.Bits {
				b[3] |= 2
				b[4] = byte(min(c.Mask, 0xff))
			} else {
				b[4] = byte(c.Prefix)
			}
			if c.RestartAt > 0 {
				b[3] |= 4
				b[5] = byte(min(c.RestartAt, 64) - 1)
			}
		default:
			b[2] = byte(min(c.Round, 63))
			if c.RestartAt > 0 {
				b[3], b[4] = 1, byte(min(c.RestartAt-c.Round-1, 7))
			}
		}
		out = append(out, b[:]...)
	}
	return out
}

// FuzzFaultGrammar drives arbitrary full-alphabet decision vectors through
// the grammar and the certifier: every decoded vector must validate, must
// survive a String → ParseVector round trip exactly, and must replay
// deterministically — two certifications of the same schedule, on fresh
// protocol state and pooled engines, must be reflect.DeepEqual. Violations
// are allowed (slowdowns legitimately break round bounds, revived processes
// legitimately break Protocol B's single-active invariant — that breakage
// is measured elsewhere); non-determinism is not.
func FuzzFaultGrammar(f *testing.F) {
	mkTarget := func(proto string, n, t, f_ int) Target {
		tg, err := NewTarget(proto, n, t, f_)
		if err != nil {
			f.Fatal(err)
		}
		return tg
	}
	targets := []Target{mkTarget("a", 8, 3, 2), mkTarget("b", 10, 4, 3)}

	f.Add([]byte{})
	f.Add([]byte{0, 0, 2, 1, 3, 0})                   // round crash + restart
	f.Add([]byte{0, 1, 4, 5, 1, 9, 1, 2, 6, 0, 1, 0}) // crash+restart, omission
	f.Add([]byte{1, 3, 0, 2, 0, 0, 2, 4, 2, 0, 0, 0}) // slowdown, drop
	f.Add([]byte{0, 2, 3, 2, 0xff, 0, 1, 0, 9, 1, 7, 0, 2, 4, 63, 0, 0, 0})
	// Seed with the searcher's worst crash schedules: the highest-effort
	// executions are where replay divergence would hide.
	for _, tg := range targets {
		sr, err := tg.Search(SearchOptions{Seed: 11, Budget: 300, MaxPrefix: -1})
		if err != nil {
			f.Fatal(err)
		}
		if len(sr.BestVector) > 0 {
			f.Add(encodeFaultVector(sr.BestVector))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tg := range targets {
			vec := faultVectorFromBytes(data, tg.T, tg.T-1)
			if err := vec.Validate(); err != nil {
				t.Fatalf("decoded invalid vector %+v: %v", vec, err)
			}
			parsed, err := ParseVector(vec.String())
			if err != nil {
				t.Fatalf("ParseVector(%q): %v", vec.String(), err)
			}
			if !reflect.DeepEqual(parsed, vec) {
				t.Fatalf("grammar round trip of %q:\n%+v\nvs\n%+v", vec.String(), parsed, vec)
			}
			first := tg.Certify(vec)
			again := tg.Certify(vec)
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%s schedule %s: replay diverged:\n%+v\nvs\n%+v",
					tg.Protocol, vec, first, again)
			}
		}
	})
}

// TestEncodeFaultVectorRoundTrip pins that full-alphabet vectors survive the
// corpus encoding, so fuzz seeds replay the schedules they were built from.
func TestEncodeFaultVectorRoundTrip(t *testing.T) {
	vec := Vector{
		{Victim: 0, Round: 2, RestartAt: 5},
		{Victim: 1, AtAction: 3, KeepWork: true, Prefix: 2, RestartAt: 9},
		{Victim: 2, AtAction: 1, Omit: true, Bits: true, Mask: 0x6},
	}.Canonical()
	if got := faultVectorFromBytes(encodeFaultVector(vec), 4, 3); !reflect.DeepEqual(got, vec) {
		t.Fatalf("round trip:\n%v\nvs\n%v", got, vec)
	}
	vec2 := Vector{
		{Victim: 0, Round: 4, Slow: 3},
		{Victim: 3, DropNth: 7},
	}.Canonical()
	if got := faultVectorFromBytes(encodeFaultVector(vec2), 4, 3); !reflect.DeepEqual(got, vec2) {
		t.Fatalf("round trip:\n%v\nvs\n%v", got, vec2)
	}
}

// TestEncodeVectorRoundTrip pins that searcher-found vectors survive the
// corpus encoding (so the fuzz seeds actually replay them), and that
// out-of-range triggers clamp to the decodable edge instead of wrapping
// into unrelated schedules.
func TestEncodeVectorRoundTrip(t *testing.T) {
	vec := Vector{
		{Victim: 1, AtAction: 7, KeepWork: true, Prefix: 2},
		{Victim: 2, Round: 9},
		{Victim: 3, AtAction: 3, Bits: true, Mask: 0x1ff},
	}.Canonical()
	got := vectorFromBytes(encodeVector(vec), 4, 3)
	if !reflect.DeepEqual(got, vec) {
		t.Fatalf("round trip:\n%v\nvs\n%v", got, vec)
	}

	wide := Vector{{Victim: 0, AtAction: 200, KeepWork: true}, {Victim: 1, Round: 99}}
	want := Vector{{Victim: 0, AtAction: 64, KeepWork: true}, {Victim: 1, Round: 63}}
	if got := vectorFromBytes(encodeVector(wide), 4, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("clamping:\n%v\nvs\n%v", got, want)
	}
}
