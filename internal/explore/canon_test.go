package explore

import (
	"strings"
	"testing"
)

// testSpaces are the grids the symmetry/pruning property tests cross with
// protocols: a crash-only space and a full-alphabet space, both small
// enough to enumerate directly.
func testSpaces(t, f int) map[string]Space {
	crashOnly := NewSpace(t, f, 4, 2)
	full := NewSpace(t, f, 3, 1)
	full.Omissions = true
	full.Rounds = []int64{1, 3}
	full.RestartDelays = []int64{2}
	full.SlowFactors = []int{2}
	full.Drops = []int{1, 2}
	return map[string]Space{"crash-only": crashOnly, "full-alphabet": full}
}

// TestCanonicalIndexingBijection pins the canonical unranking: every index
// decodes to a distinct non-decreasing digit sequence, the count formula
// matches the walk, and the orbit sizes sum back to the raw space — the
// identity Σ orbits = Σ_k C(t,k)·m^k that makes orbit weighting exact.
func TestCanonicalIndexingBijection(t *testing.T) {
	for name, sp := range testSpaces(4, 3) {
		t.Run(name, func(t *testing.T) {
			norm, err := sp.normalize()
			if err != nil {
				t.Fatal(err)
			}
			n := norm.canonCount()
			if n <= 0 || n >= norm.count() {
				t.Fatalf("canonical count %d vs raw %d", n, norm.count())
			}
			seen := make(map[string]bool, n)
			var orbitSum int64
			var digits []int
			for i := int64(0); i < n; i++ {
				digits = norm.canonDecode(i, digits)
				for j := 1; j < len(digits); j++ {
					if digits[j] < digits[j-1] {
						t.Fatalf("index %d decodes to non-canonical digits %v", i, digits)
					}
				}
				key := norm.canonVector(digits).String()
				if seen[key] {
					t.Fatalf("index %d re-decodes representative %q", i, key)
				}
				seen[key] = true
				orbitSum = satAdd(orbitSum, norm.orbitSize(digits))
			}
			if orbitSum != norm.count() {
				t.Fatalf("orbits sum to %d, raw space has %d", orbitSum, norm.count())
			}
		})
	}
}

// TestSymmetryWitness pins which protocols are exchangeable under PID
// renaming: the DHW protocols all have counterexample transpositions
// (process 0's special role, PID-ordered takeover and chunking), the
// anonymous trivial baseline has none — and the Symmetric declarations
// match exactly.
func TestSymmetryWitness(t *testing.T) {
	sp := NewSpace(3, 2, 4, 2)
	for _, proto := range []string{"a", "b", "c", "d", "naive", "trivial"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			tg, err := NewTarget(proto, 6, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			witness, err := tg.SymmetryWitness(sp, 4000)
			if err != nil {
				t.Fatal(err)
			}
			if tg.Symmetric && witness != "" {
				t.Fatalf("target declared Symmetric but has witness %s", witness)
			}
			if !tg.Symmetric && witness == "" {
				t.Fatalf("no symmetry counterexample found; is %s exchangeable after all?", proto)
			}
			if tg.Symmetric != (proto == "trivial") {
				t.Fatalf("Symmetric = %v for %s", tg.Symmetric, proto)
			}
		})
	}
}

// TestCanonicalMatchesFullOnSymmetricTarget is the symmetry-reduction
// soundness oracle: on the one Symmetric target, the canonical walk's
// orbit-weighted report must agree with the full walk on every aggregate,
// and its extreme witnesses must replay to the claimed values.
func TestCanonicalMatchesFullOnSymmetricTarget(t *testing.T) {
	grids := []struct{ n, tt, f int }{{4, 3, 2}, {2, 4, 3}, {5, 2, 1}}
	for _, g := range grids {
		for name, sp := range testSpaces(g.tt, g.f) {
			tg, err := NewTarget("trivial", g.n, g.tt, g.f)
			if err != nil {
				t.Fatal(err)
			}
			canon, err := tg.Enumerate(sp, Options{})
			if err != nil {
				t.Fatal(err)
			}
			full, err := tg.Enumerate(sp, Options{Full: true})
			if err != nil {
				t.Fatal(err)
			}
			label := func() string { return name + " " + canon.Mode + " vs " + full.Mode }
			if canon.Mode != "canonical" || full.Mode != "full" {
				t.Fatalf("%s: wrong modes", label())
			}
			if canon.Schedules != full.Schedules || canon.Collapsed != full.Collapsed {
				t.Fatalf("%s: schedules %d/%d collapsed %d/%d", label(),
					canon.Schedules, full.Schedules, canon.Collapsed, full.Collapsed)
			}
			if canon.ViolationCount != full.ViolationCount {
				t.Fatalf("%s: violations %d vs %d:\n%v\n%v", label(),
					canon.ViolationCount, full.ViolationCount, canon.Violations, full.Violations)
			}
			if len(canon.ByCrashes) != len(full.ByCrashes) {
				t.Fatalf("%s: ByCrashes %v vs %v", label(), canon.ByCrashes, full.ByCrashes)
			}
			for i := range canon.ByCrashes {
				if canon.ByCrashes[i] != full.ByCrashes[i] {
					t.Fatalf("%s: ByCrashes %v vs %v", label(), canon.ByCrashes, full.ByCrashes)
				}
			}
			if canon.Walked >= full.Walked {
				t.Fatalf("%s: canonical walked %d, full walked %d — no reduction", label(),
					canon.Walked, full.Walked)
			}
			// Extremes agree in value (the witness vectors may differ by a
			// PID renaming) and each canonical witness replays to its claim.
			for _, pair := range []struct {
				name string
				c, f Extreme
			}{
				{"work", canon.WorstWork, full.WorstWork},
				{"messages", canon.WorstMessages, full.WorstMessages},
				{"rounds", canon.WorstRounds, full.WorstRounds},
				{"effort", canon.WorstEffort, full.WorstEffort},
			} {
				if pair.c.Value != pair.f.Value {
					t.Fatalf("%s: worst %s %d (%s) vs %d (%s)", label(), pair.name,
						pair.c.Value, pair.c.Vector, pair.f.Value, pair.f.Vector)
				}
				if pair.c.Vector == "" {
					continue
				}
				vec, err := ParseVector(pair.c.Vector)
				if err != nil {
					t.Fatalf("%s: worst %s vector %q: %v", label(), pair.name, pair.c.Vector, err)
				}
				cert := tg.Certify(vec)
				var got int64
				switch pair.name {
				case "work":
					got = cert.Result.WorkTotal
				case "messages":
					got = cert.Result.Messages
				case "rounds":
					got = cert.Result.Rounds
				case "effort":
					got = cert.Result.Effort()
				}
				if got != pair.c.Value {
					t.Fatalf("%s: replaying worst-%s witness %s gives %d, claimed %d",
						label(), pair.name, pair.c.Vector, got, pair.c.Value)
				}
			}
		}
	}
}

// TestTrivialTargetCertifies pins the trivial baseline's exact bound: tn
// work under every schedule in a full-alphabet space, zero violations.
func TestTrivialTargetCertifies(t *testing.T) {
	tg, err := NewTarget("trivial", 5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tg.Symmetric {
		t.Fatal("trivial target not Symmetric")
	}
	if tg.Bounds.Work != 15 {
		t.Fatalf("trivial work bound = %d, want t*n = 15", tg.Bounds.Work)
	}
	sp := testSpaces(3, 2)["full-alphabet"]
	rep, err := tg.Enumerate(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationCount != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.WorstWork.Value != 15 {
		t.Fatalf("worst work %d, want the exact bound 15", rep.WorstWork.Value)
	}
	if rep.Schedules != sp.Count() {
		t.Fatalf("weighted schedules %d, raw space %d", rep.Schedules, sp.Count())
	}
	if !strings.Contains(rep.Text(), "canonical") {
		t.Fatalf("report text does not mention the canonical mode:\n%s", rep.Text())
	}
}
