package explore

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"sort"
)

// Checkpoint is the persisted progress of one Enumerate walk (or one shard
// of it): the full walk coordinates plus the running report, self-validated
// by an FNV-1a content checksum. The file is JSON so a human can inspect a
// paused run; Load refuses anything that does not round-trip exactly —
// truncated files, stray edits and version skew all fail loudly rather
// than silently restarting or, worse, resuming into a different space.
type Checkpoint struct {
	// Format and Version gate compatibility; see checkpointFormat and
	// checkpointVersion.
	Format  string
	Version int
	// Target identity: the walk may only resume against the same instance.
	Protocol         string
	N, T, MaxCrashes int
	// Mode is the walk mode the cursor indexes ("full" or "canonical") and
	// Space the normalized schedule space it walks.
	Mode  string
	Space Space
	// Shard is the slice of the walk this file tracks; Lo/Hi its index
	// range, Cursor the next unwalked index, Total the whole walk's length.
	Shard          Shard
	Lo, Hi, Cursor int64
	Total          int64
	// Report is the fold over [Lo, Cursor).
	Report *Report
	// Sum is the FNV-1a hex digest of this value serialized with Sum empty.
	Sum string
}

const (
	checkpointFormat  = "explore-checkpoint"
	checkpointVersion = 1
)

// digest computes the content checksum: FNV-1a over the compact JSON
// serialization with the Sum field blanked.
func (ck Checkpoint) digest() (string, error) {
	ck.Sum = ""
	raw, err := json.Marshal(ck)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// saveCheckpoint persists the walk state atomically (temp file + rename in
// the destination directory), so a crash mid-write leaves the previous
// checkpoint intact.
func (tg Target) saveCheckpoint(path string, s Space, mode string, sh Shard, lo, hi, cursor, total int64, rep *Report) error {
	ck := Checkpoint{
		Format: checkpointFormat, Version: checkpointVersion,
		Protocol: tg.Protocol, N: tg.N, T: tg.T, MaxCrashes: tg.MaxCrashes,
		Mode: mode, Space: s, Shard: sh,
		Lo: lo, Hi: hi, Cursor: cursor, Total: total,
		Report: rep,
	}
	sum, err := ck.digest()
	if err != nil {
		return fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	ck.Sum = sum
	raw, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	raw = append(raw, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file. Every failure mode
// is loud and specific: unreadable, unparseable, wrong format, unsupported
// version, checksum mismatch (truncation or stray edits) and inconsistent
// walk coordinates each get their own error.
func LoadCheckpoint(path string) (Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	return parseCheckpoint(raw, path)
}

// parseCheckpoint is LoadCheckpoint on bytes already in hand (and the
// surface FuzzCheckpoint hammers without filesystem round-trips).
func parseCheckpoint(raw []byte, path string) (Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return ck, fmt.Errorf("explore: checkpoint %s: unparseable: %w", path, err)
	}
	if ck.Format != checkpointFormat {
		return ck, fmt.Errorf("explore: checkpoint %s: format %q, want %q", path, ck.Format, checkpointFormat)
	}
	if ck.Version != checkpointVersion {
		return ck, fmt.Errorf("explore: checkpoint %s: version %d, this build reads version %d", path, ck.Version, checkpointVersion)
	}
	sum, err := ck.digest()
	if err != nil {
		return ck, fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	if sum != ck.Sum {
		return ck, fmt.Errorf("explore: checkpoint %s: checksum mismatch (have %s, stored %s) — file truncated or edited", path, sum, ck.Sum)
	}
	if ck.Report == nil {
		return ck, fmt.Errorf("explore: checkpoint %s: missing report", path)
	}
	if ck.Lo < 0 || ck.Hi < ck.Lo || ck.Cursor < ck.Lo || ck.Cursor > ck.Hi || ck.Hi > ck.Total {
		return ck, fmt.Errorf("explore: checkpoint %s: inconsistent walk range lo=%d cursor=%d hi=%d total=%d",
			path, ck.Lo, ck.Cursor, ck.Hi, ck.Total)
	}
	if ck.Report.Walked != ck.Cursor-ck.Lo {
		return ck, fmt.Errorf("explore: checkpoint %s: report covers %d indices, cursor implies %d",
			path, ck.Report.Walked, ck.Cursor-ck.Lo)
	}
	return ck, nil
}

// matches verifies the checkpoint belongs to exactly this walk — same
// target instance, same normalized space, same mode, same shard, same walk
// length — so a resume can never silently mix spaces.
func (ck Checkpoint) matches(tg Target, s Space, mode string, sh Shard, total int64) error {
	if ck.Protocol != tg.Protocol || ck.N != tg.N || ck.T != tg.T || ck.MaxCrashes != tg.MaxCrashes {
		return fmt.Errorf("explore: checkpoint is for %s n=%d t=%d f=%d, resuming %s n=%d t=%d f=%d",
			ck.Protocol, ck.N, ck.T, ck.MaxCrashes, tg.Protocol, tg.N, tg.T, tg.MaxCrashes)
	}
	if ck.Mode != mode {
		return fmt.Errorf("explore: checkpoint walked in %s mode, this run wants %s", ck.Mode, mode)
	}
	if !reflect.DeepEqual(ck.Space, s) {
		return fmt.Errorf("explore: checkpoint space differs from this run's space")
	}
	if ck.Shard != sh {
		return fmt.Errorf("explore: checkpoint is shard %d/%d, this run is shard %d/%d",
			ck.Shard.Index, ck.Shard.Count, sh.Index, sh.Count)
	}
	if ck.Total != total {
		return fmt.Errorf("explore: checkpoint walk length %d, this run computes %d", ck.Total, total)
	}
	return nil
}

// MergeCheckpoints folds finished shard checkpoints into the whole walk's
// report. The files must cover the same target, space, mode and walk
// length, each must be finished (cursor at its range end), and together
// they must tile [0, Total) exactly; shard order is recovered from the
// ranges, so the merged report is byte-identical to an unsharded run's.
func MergeCheckpoints(paths []string) (*Report, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("explore: no checkpoints to merge")
	}
	cks := make([]Checkpoint, len(paths))
	for i, p := range paths {
		ck, err := LoadCheckpoint(p)
		if err != nil {
			return nil, err
		}
		if ck.Cursor != ck.Hi {
			return nil, fmt.Errorf("explore: checkpoint %s: unfinished (cursor %d of [%d,%d)) — resume it before merging",
				p, ck.Cursor, ck.Lo, ck.Hi)
		}
		cks[i] = ck
	}
	first := cks[0]
	for i, ck := range cks[1:] {
		if ck.Protocol != first.Protocol || ck.N != first.N || ck.T != first.T ||
			ck.MaxCrashes != first.MaxCrashes || ck.Mode != first.Mode ||
			ck.Total != first.Total || !reflect.DeepEqual(ck.Space, first.Space) {
			return nil, fmt.Errorf("explore: checkpoint %s does not match %s (different target, space, mode or walk length)",
				paths[i+1], paths[0])
		}
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].Lo < cks[j].Lo })
	at := int64(0)
	for i, ck := range cks {
		if ck.Lo != at {
			return nil, fmt.Errorf("explore: shards do not tile the walk: index %d uncovered (shard %d starts at %d)",
				at, i, ck.Lo)
		}
		at = ck.Hi
	}
	if at != first.Total {
		return nil, fmt.Errorf("explore: shards do not tile the walk: indices [%d,%d) uncovered", at, first.Total)
	}
	out := cks[0].Report
	for _, ck := range cks[1:] {
		out.merge(ck.Report)
	}
	out.WalkTotal = first.Total
	return out, nil
}
