package explore

import (
	"fmt"
	"math"
	"sort"
)

// Space describes an enumerable schedule space: every decision vector with
// up to MaxCrashes faults, victims drawn from Victims, and per-victim
// choices drawn from the cross product Actions × KeepWork × Prefixes (action
// crashes), the omission product Actions × Prefixes (when Omissions is set),
// the round triggers in Rounds (round crashes, plus one crash-with-restart
// per Rounds × RestartDelays pair and one slowdown per Rounds × SlowFactors
// pair) and one message drop per entry of Drops.
//
// The space is indexable: vectors are totally ordered and VectorAt unranks
// any index in [0, Count()) without materializing the rest, which is what
// lets Enumerate shard the walk deterministically. Two canonicalizations
// keep the space free of duplicates by construction:
//
//   - victim sets are k-combinations of Victims in lexicographic order, not
//     permutations — a vector is an unordered set of per-victim choices;
//   - delivery choices are prefixes of the crashed action's virtual send
//     list. An arbitrary-subset mask is available to the fuzzers (Bits), but
//     enumerating all 2^fanout subsets is dominated for certification
//     purposes by the prefix cuts plus the KeepWork split, which already
//     realize every "checkpoint reached j of its recipients" knowledge
//     state the DHW protocols can distinguish per group order.
//
// Choices that turn out unreachable at replay (a victim that retires before
// its AtAction-th action, a prefix past the action's real send count)
// produce executions identical to a canonically smaller vector's; Enumerate
// counts them as collapsed rather than trying to predict reachability.
type Space struct {
	// Victims are the candidate crash victims (distinct; sorted by
	// normalize).
	Victims []int
	// MaxCrashes caps the faults per schedule (use t-1 to preserve the
	// one-survivor guarantee; historically named for the crash-only space).
	MaxCrashes int
	// Actions lists candidate per-victim action indices (1-based).
	Actions []int
	// KeepWork lists the keep-work choices for action crashes.
	KeepWork []bool
	// Prefixes lists candidate delivery-prefix lengths for action crashes
	// and omissions.
	Prefixes []int
	// Rounds lists candidate round triggers (crash or slowdown at round
	// start).
	Rounds []int64
	// Omissions adds a send-omission choice per Actions × Prefixes pair.
	Omissions bool
	// RestartDelays adds, per round trigger r and delay d, a crash at r with
	// a restart scheduled at r+d (entries must be > 0).
	RestartDelays []int64
	// SlowFactors adds, per round trigger and factor, a rate slowdown
	// (entries must be >= 2).
	SlowFactors []int
	// Drops adds one lost-delivery choice per entry: the entry-th message
	// bound for the victim is dropped (entries must be > 0).
	Drops []int
}

// NewSpace is the standard action-indexed space for a t-process instance:
// victims 0..t-1, up to maxCrashes crashes, action indices 1..depth, both
// keep-work choices, delivery prefixes 0..maxPrefix.
func NewSpace(t, maxCrashes, depth, maxPrefix int) Space {
	s := Space{MaxCrashes: maxCrashes, KeepWork: []bool{false, true}}
	for v := 0; v < t; v++ {
		s.Victims = append(s.Victims, v)
	}
	for a := 1; a <= depth; a++ {
		s.Actions = append(s.Actions, a)
	}
	for p := 0; p <= maxPrefix; p++ {
		s.Prefixes = append(s.Prefixes, p)
	}
	return s
}

// normalize validates the space and returns a canonical copy (victims
// sorted and deduplicated, defaults filled in).
func (s Space) normalize() (Space, error) {
	out := s
	out.Victims = append([]int(nil), s.Victims...)
	sort.Ints(out.Victims)
	for i := 1; i < len(out.Victims); i++ {
		if out.Victims[i] == out.Victims[i-1] {
			return out, fmt.Errorf("explore: duplicate victim %d", out.Victims[i])
		}
	}
	if len(out.Victims) > 0 && out.Victims[0] < 0 {
		return out, fmt.Errorf("explore: negative victim %d", out.Victims[0])
	}
	if out.MaxCrashes < 0 {
		return out, fmt.Errorf("explore: MaxCrashes = %d", out.MaxCrashes)
	}
	if out.MaxCrashes > len(out.Victims) {
		out.MaxCrashes = len(out.Victims)
	}
	if len(out.Actions) > 0 {
		if len(out.KeepWork) == 0 {
			out.KeepWork = []bool{false, true}
		}
		if len(out.Prefixes) == 0 {
			out.Prefixes = []int{0}
		}
	}
	for _, a := range out.Actions {
		if a <= 0 {
			return out, fmt.Errorf("explore: action index %d, want > 0", a)
		}
	}
	for _, p := range out.Prefixes {
		if p < 0 {
			return out, fmt.Errorf("explore: delivery prefix %d, want >= 0", p)
		}
	}
	for _, r := range out.Rounds {
		if r < 0 {
			return out, fmt.Errorf("explore: round trigger %d, want >= 0", r)
		}
	}
	if out.Omissions && len(out.Actions) == 0 {
		return out, fmt.Errorf("explore: Omissions set without Actions")
	}
	for _, d := range out.RestartDelays {
		if d <= 0 {
			return out, fmt.Errorf("explore: restart delay %d, want > 0", d)
		}
	}
	if len(out.RestartDelays) > 0 && len(out.Rounds) == 0 {
		return out, fmt.Errorf("explore: RestartDelays set without Rounds")
	}
	for _, k := range out.SlowFactors {
		if k < 2 {
			return out, fmt.Errorf("explore: slowdown factor %d, want >= 2", k)
		}
	}
	if len(out.SlowFactors) > 0 && len(out.Rounds) == 0 {
		return out, fmt.Errorf("explore: SlowFactors set without Rounds")
	}
	for _, d := range out.Drops {
		if d <= 0 {
			return out, fmt.Errorf("explore: drop index %d, want > 0", d)
		}
	}
	if out.perCrash() == 0 && out.MaxCrashes > 0 {
		return out, fmt.Errorf("explore: empty per-fault choice set (no Actions, Rounds or Drops)")
	}
	return out, nil
}

// perCrash is the number of distinct choices for one fault, in decode order:
// the action-crash cross product, the omission product, the plain round
// crashes, the round crashes with restart, the round slowdowns, and the
// drops.
func (s Space) perCrash() int64 {
	total := int64(len(s.Actions)) * int64(len(s.KeepWork)) * int64(len(s.Prefixes))
	if s.Omissions {
		total += int64(len(s.Actions)) * int64(len(s.Prefixes))
	}
	total += int64(len(s.Rounds))
	total += int64(len(s.Rounds)) * int64(len(s.RestartDelays))
	total += int64(len(s.Rounds)) * int64(len(s.SlowFactors))
	total += int64(len(s.Drops))
	return total
}

// countSat is the saturation value for Count: a space this large is not
// enumerable anyway, and saturating keeps the arithmetic overflow-free.
const countSat = math.MaxInt64 / 4

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > countSat/b {
		return countSat
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > countSat-b {
		return countSat
	}
	return a + b
}

// binom returns C(n, k), saturating at countSat.
func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		r = satMul(r, int64(n-k+i))
		if r >= countSat {
			return countSat
		}
		r /= int64(i)
	}
	return r
}

// Count returns the number of schedules in the space (saturating; Enumerate
// refuses saturated spaces).
func (s Space) Count() int64 {
	norm, err := s.normalize()
	if err != nil {
		return 0
	}
	return norm.count()
}

func (s Space) count() int64 {
	m := s.perCrash()
	total := int64(0)
	for k := 0; k <= s.MaxCrashes; k++ {
		block := binom(len(s.Victims), k)
		for j := 0; j < k; j++ {
			block = satMul(block, m)
		}
		total = satAdd(total, block)
	}
	return total
}

// combUnrank writes the rank-th k-combination of vals (lexicographic order)
// into out.
func combUnrank(vals []int, k int, rank int64, out []int) {
	pos := 0
	for j := 0; j < k; j++ {
		for {
			// Combinations starting with vals[pos] continue with a
			// (k-j-1)-combination of the remaining values.
			c := binom(len(vals)-pos-1, k-j-1)
			if rank < c {
				break
			}
			rank -= c
			pos++
		}
		out[j] = vals[pos]
		pos++
	}
}

// vectorAt unranks index i (the space must be normalized and i < count()).
func (s Space) vectorAt(i int64) Vector {
	m := s.perCrash()
	k := 0
	for {
		block := binom(len(s.Victims), k)
		for j := 0; j < k; j++ {
			block = satMul(block, m)
		}
		if i < block {
			break
		}
		i -= block
		k++
	}
	if k == 0 {
		return nil
	}
	choiceSpace := int64(1)
	for j := 0; j < k; j++ {
		choiceSpace = satMul(choiceSpace, m)
	}
	victimRank, choiceRank := i/choiceSpace, i%choiceSpace
	victims := make([]int, k)
	combUnrank(s.Victims, k, victimRank, victims)
	vec := make(Vector, k)
	// Most-significant digit first: the first victim's choice varies
	// slowest, so vectors sharing a prefix of choices are index-adjacent.
	for j := k - 1; j >= 0; j-- {
		vec[j] = s.decodeChoice(victims[j], int(choiceRank%m))
		choiceRank /= m
	}
	return vec
}

// fullDecode unranks index i (the space must be normalized and i < count())
// into its victim set and per-victim choice digits, reusing the scratch
// slices. It is vectorAt without the Choice materialization: the walker
// needs the (victims, digits) coordinates to detect sibling blocks.
func (s Space) fullDecode(i int64, victims, digits []int) ([]int, []int) {
	m := s.perCrash()
	k := 0
	for {
		block := binom(len(s.Victims), k)
		for j := 0; j < k; j++ {
			block = satMul(block, m)
		}
		if i < block {
			break
		}
		i -= block
		k++
	}
	victims, digits = victims[:0], digits[:0]
	if k == 0 {
		return victims, digits
	}
	choiceSpace := int64(1)
	for j := 0; j < k; j++ {
		choiceSpace = satMul(choiceSpace, m)
	}
	victimRank, choiceRank := i/choiceSpace, i%choiceSpace
	victims = append(victims, make([]int, k)...)
	combUnrank(s.Victims, k, victimRank, victims)
	digits = append(digits, make([]int, k)...)
	for j := k - 1; j >= 0; j-- {
		digits[j] = int(choiceRank % m)
		choiceRank /= m
	}
	return victims, digits
}

// decodeChoice maps a digit in [0, perCrash()) to the victim's choice, in
// the perCrash order: the action-crash cross product first (action index
// outermost, then keep-work, then prefix), then omissions (action outermost,
// then prefix), plain round crashes, round crashes with restart (round
// outermost, then delay), round slowdowns (round outermost, then factor),
// and drops last.
func (s Space) decodeChoice(victim, digit int) Choice {
	actionPart := len(s.Actions) * len(s.KeepWork) * len(s.Prefixes)
	if digit < actionPart {
		perAction := len(s.KeepWork) * len(s.Prefixes)
		return Choice{
			Victim:   victim,
			AtAction: s.Actions[digit/perAction],
			KeepWork: s.KeepWork[digit/len(s.Prefixes)%len(s.KeepWork)],
			Prefix:   s.Prefixes[digit%len(s.Prefixes)],
		}
	}
	digit -= actionPart
	if s.Omissions {
		omitPart := len(s.Actions) * len(s.Prefixes)
		if digit < omitPart {
			return Choice{
				Victim:   victim,
				AtAction: s.Actions[digit/len(s.Prefixes)],
				Omit:     true,
				Prefix:   s.Prefixes[digit%len(s.Prefixes)],
			}
		}
		digit -= omitPart
	}
	if digit < len(s.Rounds) {
		return Choice{Victim: victim, Round: s.Rounds[digit]}
	}
	digit -= len(s.Rounds)
	restartPart := len(s.Rounds) * len(s.RestartDelays)
	if digit < restartPart {
		r := s.Rounds[digit/len(s.RestartDelays)]
		return Choice{Victim: victim, Round: r, RestartAt: r + s.RestartDelays[digit%len(s.RestartDelays)]}
	}
	digit -= restartPart
	slowPart := len(s.Rounds) * len(s.SlowFactors)
	if digit < slowPart {
		return Choice{
			Victim: victim,
			Round:  s.Rounds[digit/len(s.SlowFactors)],
			Slow:   s.SlowFactors[digit%len(s.SlowFactors)],
		}
	}
	digit -= slowPart
	return Choice{Victim: victim, DropNth: s.Drops[digit]}
}
