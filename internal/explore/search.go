package explore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sim"
)

// Objective selects the metric a search maximizes.
type Objective int

const (
	// MaxEffort maximizes work + messages, the paper's combined measure.
	MaxEffort Objective = iota
	// MaxWork maximizes work performed (with multiplicity).
	MaxWork
	// MaxMessages maximizes messages transmitted.
	MaxMessages
	// MaxRounds maximizes the retirement round.
	MaxRounds
)

// ParseObjective maps a flag value to an Objective.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "effort", "":
		return MaxEffort, nil
	case "work":
		return MaxWork, nil
	case "messages":
		return MaxMessages, nil
	case "rounds":
		return MaxRounds, nil
	}
	return 0, fmt.Errorf("explore: unknown objective %q (want effort|work|messages|rounds)", s)
}

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MaxWork:
		return "work"
	case MaxMessages:
		return "messages"
	case MaxRounds:
		return "rounds"
	default:
		return "effort"
	}
}

func (o Objective) value(c Certification) int64 {
	switch o {
	case MaxWork:
		return c.Result.WorkTotal
	case MaxMessages:
		return c.Result.Messages
	case MaxRounds:
		return c.Result.Rounds
	default:
		return c.Result.Effort()
	}
}

// SearchOptions configures a worst-case search.
type SearchOptions struct {
	// Objective is the metric to maximize (default MaxEffort).
	Objective Objective
	// Budget caps the total executions spent (default 2048). Half goes to
	// seeded random sampling, the rest to greedy hill-climbing from the
	// best sample.
	Budget int
	// Seed drives the random phase; a fixed seed makes the whole search
	// deterministic for every Jobs value.
	Seed int64
	// Depth is the action-index horizon for mutations (0 = probe-derived
	// via Target.DefaultDepth, doubled for crash-induced extra actions).
	Depth int
	// MaxPrefix caps delivery prefixes; negative means t (the maximal
	// fanout). 0 is honored: it restricts the search to fully suppressed
	// deliveries, matching Enumerate's treatment of a {0} prefix set.
	MaxPrefix int
	// Jobs caps parallel evaluations per batch (0 = GOMAXPROCS).
	Jobs int
	// Plane selects a cross-plane validation of the search's verdict: ""
	// (or "sim") searches on the lock-step simulator only; "live" replays
	// the worst schedule found on the live concurrent execution plane
	// (internal/live) and requires the two planes' results to coincide. A
	// mismatch is reported as a violation — the search doubles as a
	// conformance probe on exactly the adversarial schedules it surfaced.
	Plane string
}

// SearchResult is the outcome of a worst-case search.
type SearchResult struct {
	// Best is the worst schedule found, as a replayable vector.
	Best Extreme
	// BestVector is Best's parsed form (for replay without round-tripping
	// through the string encoding).
	BestVector Vector
	// Evaluated counts executions spent; Steps counts accepted hill-climb
	// improvements.
	Evaluated int64
	Steps     int
	// Depth is the action horizon used.
	Depth int
	// Violations retains the first maxViolations certification failures
	// hit during the search; ViolationCount is the full total (a sound
	// target reports none; any entry is a finding).
	Violations     []Violation
	ViolationCount int64
	// LiveResult and LiveMatch are set by SearchOptions.Plane = "live": the
	// worst schedule replayed on the live concurrent plane, and whether
	// that replay reproduced the simulator's result exactly.
	LiveResult *sim.Result
	LiveMatch  bool
}

// Search looks for the schedule maximizing the objective: seeded random
// sampling over decision vectors, then greedy hill-climbing over
// single-choice mutations from the best samples (multi-start, because
// adversarial schedules often need several coordinated crashes and a single
// greedy trajectory stalls on the failure-free plateau). Candidate batches
// are evaluated through the deterministic batch runner, so results are
// identical for every Jobs value and a fixed seed.
func (tg Target) Search(opt SearchOptions) (SearchResult, error) {
	budget := opt.Budget
	if budget <= 0 {
		budget = 2048
	}
	depth := opt.Depth
	if depth <= 0 {
		probed, err := tg.DefaultDepth()
		if err != nil {
			return SearchResult{}, err
		}
		// Crash schedules lengthen other processes' action sequences
		// (takeover chores), so give mutations room beyond the probe.
		depth = 2 * probed
	}
	maxPrefix := opt.MaxPrefix
	if maxPrefix < 0 {
		maxPrefix = tg.T
	}
	out := SearchResult{Depth: depth}
	out.Best.Value = -1
	if tg.MaxCrashes == 0 {
		tg.evaluate([]Vector{nil}, opt, &out)
		if err := tg.validatePlane(opt.Plane, &out); err != nil {
			return out, err
		}
		return out, nil
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	// Random phase: candidates are drawn sequentially from the seeded rng
	// (so the set never depends on evaluation order), then evaluated in
	// parallel.
	sample := max(budget/2, 1)
	candidates := make([]Vector, 0, sample+1)
	candidates = append(candidates, nil) // the failure-free baseline
	for len(candidates) < sample {
		candidates = append(candidates, tg.randomVector(rng, depth, maxPrefix))
	}
	values := tg.evaluate(candidates, opt, &out)

	// Start points: the best samples first (value desc, index asc — fully
	// deterministic).
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return values[order[a]] > values[order[b]] })

	const maxStarts = 4
	for s := 0; s < maxStarts && s < len(order) && out.Evaluated < int64(budget); s++ {
		incumbent := candidates[order[s]]
		incumbentVal := values[order[s]]
		for out.Evaluated < int64(budget) {
			neighbors := tg.neighbors(incumbent, depth, maxPrefix)
			if remaining := int64(budget) - out.Evaluated; int64(len(neighbors)) > remaining {
				neighbors = neighbors[:remaining]
			}
			if len(neighbors) == 0 {
				break
			}
			nvals := tg.evaluate(neighbors, opt, &out)
			bestIdx, bestVal := -1, incumbentVal
			for i, v := range nvals {
				if v > bestVal {
					bestIdx, bestVal = i, v
				}
			}
			if bestIdx < 0 {
				break // local maximum
			}
			incumbent, incumbentVal = neighbors[bestIdx], bestVal
			out.Steps++
		}
	}
	if err := tg.validatePlane(opt.Plane, &out); err != nil {
		return out, err
	}
	return out, nil
}

// validatePlane cross-checks the search verdict on another execution plane.
// The searcher surfaces exactly the schedules worth distrusting, so "live"
// replays the worst vector on the concurrent plane and requires the result
// to match the simulator's byte for byte; divergence is a violation.
func (tg Target) validatePlane(plane string, out *SearchResult) error {
	switch plane {
	case "", "sim":
		return nil
	case "live":
	default:
		return fmt.Errorf("explore: unknown plane %q (want sim|live)", plane)
	}
	simCert := tg.Certify(out.BestVector)
	steppers, err := core.SteppersFor(tg.NewProcs())
	if err != nil {
		return fmt.Errorf("explore: live validation: %w", err)
	}
	cfg := live.Config{
		NumProcs:  tg.T,
		NumUnits:  tg.N,
		Adversary: out.BestVector.Adversary(),
		MaxRound:  tg.MaxRound,
	}
	if tg.SingleActive {
		cfg.MaxActive = 1
	}
	liveRes, liveErr := live.Run(cfg, steppers)
	out.LiveResult = &liveRes
	out.LiveMatch = liveErr == nil && reflect.DeepEqual(simCert.Result, liveRes)
	if !out.LiveMatch {
		reason := fmt.Sprintf("live plane diverges from simulator: sim %+v, live %+v", simCert.Result, liveRes)
		if liveErr != nil {
			reason = fmt.Sprintf("live plane error: %v", liveErr)
		}
		out.Violations = append(out.Violations, Violation{Vector: out.Best.Vector, Reason: reason})
		out.ViolationCount++
	}
	return nil
}

// evaluate certifies candidates in parallel (deterministically), folds them
// into the running best, and returns their objective values.
func (tg Target) evaluate(candidates []Vector, opt SearchOptions, out *SearchResult) []int64 {
	certs := batch.Map(opt.Jobs, len(candidates), func(i int) Certification {
		return tg.Certify(candidates[i])
	})
	values := make([]int64, len(certs))
	for i, c := range certs {
		values[i] = opt.Objective.value(c)
		out.observe(opt.Objective, c)
	}
	out.Evaluated += int64(len(certs))
	return values
}

func (out *SearchResult) observe(obj Objective, c Certification) {
	if v := obj.value(c); v > out.Best.Value {
		out.Best = Extreme{Value: v, Vector: c.Vector.String(), Crashes: c.Result.Crashes}
		out.BestVector = c.Vector
	}
	out.ViolationCount += int64(len(c.Violations))
	for _, v := range c.Violations {
		if len(out.Violations) < maxViolations {
			out.Violations = append(out.Violations, v)
		}
	}
}

// randomVector draws a schedule with 1..MaxCrashes distinct victims.
func (tg Target) randomVector(rng *rand.Rand, depth, maxPrefix int) Vector {
	k := 1 + rng.Intn(tg.MaxCrashes)
	victims := rng.Perm(tg.T)[:k]
	sort.Ints(victims)
	vec := make(Vector, k)
	for i, v := range victims {
		vec[i] = tg.randomChoice(rng, v, depth, maxPrefix)
	}
	return vec
}

func (tg Target) randomChoice(rng *rand.Rand, victim, depth, maxPrefix int) Choice {
	if rng.Intn(8) == 0 {
		// Occasional round trigger: crashes a process even while it sleeps.
		return Choice{Victim: victim, Round: int64(rng.Intn(4 * depth))}
	}
	// Bias toward early crashes (min of two uniforms) and suppressed
	// deliveries: the adversarial extremes of the DHW protocols cut
	// checkpoints before they spread.
	prefix := 0
	if rng.Intn(2) == 0 {
		prefix = rng.Intn(maxPrefix + 1)
	}
	return Choice{
		Victim:   victim,
		AtAction: 1 + min(rng.Intn(depth), rng.Intn(depth)),
		KeepWork: rng.Intn(2) == 0,
		Prefix:   prefix,
	}
}

// neighbors enumerates the incumbent's single-choice mutations: nudge or
// reassign each trigger, toggle keep-work, cut the delivery elsewhere, drop
// a choice, or crash one additional victim. Order is deterministic.
func (tg Target) neighbors(vec Vector, depth, maxPrefix int) []Vector {
	var out []Vector
	used := make(map[int]bool, len(vec))
	for _, c := range vec {
		used[c.Victim] = true
	}
	replace := func(i int, c Choice) {
		n := make(Vector, len(vec))
		copy(n, vec)
		n[i] = c
		out = append(out, n)
	}
	for i, c := range vec {
		if c.AtAction > 0 {
			if c.AtAction > 1 {
				replace(i, Choice{Victim: c.Victim, AtAction: c.AtAction - 1, KeepWork: c.KeepWork, Prefix: c.Prefix})
			}
			if c.AtAction < depth {
				replace(i, Choice{Victim: c.Victim, AtAction: c.AtAction + 1, KeepWork: c.KeepWork, Prefix: c.Prefix})
			}
			replace(i, Choice{Victim: c.Victim, AtAction: c.AtAction, KeepWork: !c.KeepWork, Prefix: c.Prefix})
			if c.Prefix > 0 {
				replace(i, Choice{Victim: c.Victim, AtAction: c.AtAction, KeepWork: c.KeepWork, Prefix: c.Prefix - 1})
			}
			if c.Prefix < maxPrefix {
				replace(i, Choice{Victim: c.Victim, AtAction: c.AtAction, KeepWork: c.KeepWork, Prefix: c.Prefix + 1})
			}
			replace(i, Choice{Victim: c.Victim, Round: int64(c.AtAction)})
		} else {
			if c.Round > 0 {
				replace(i, Choice{Victim: c.Victim, Round: c.Round - 1})
			}
			replace(i, Choice{Victim: c.Victim, Round: c.Round + 1})
			replace(i, Choice{Victim: c.Victim, AtAction: int(min(c.Round, int64(depth-1))) + 1, KeepWork: true})
		}
		// Hand the choice to a victim not yet crashed.
		for v := 0; v < tg.T; v++ {
			if !used[v] {
				moved := c
				moved.Victim = v
				replace(i, moved)
				break
			}
		}
		if len(vec) > 1 {
			n := make(Vector, 0, len(vec)-1)
			n = append(n, vec[:i]...)
			n = append(n, vec[i+1:]...)
			out = append(out, n)
		}
	}
	// Crash one additional victim — every unused victim, every action
	// index. This is the move that escapes the failure-free plateau, where
	// adding any single crash is neutral but a coordinated pair is not.
	if len(vec) < tg.MaxCrashes {
		for v := 0; v < tg.T; v++ {
			if used[v] {
				continue
			}
			for at := 1; at <= depth; at++ {
				n := make(Vector, len(vec), len(vec)+1)
				copy(n, vec)
				n = append(n, Choice{Victim: v, AtAction: at, KeepWork: true})
				out = append(out, n.Canonical())
			}
		}
	}
	return out
}
