package explore

// Symmetry reduction: canonical orbit representatives under PID renaming.
//
// A Space's per-victim choice set is victim-independent by construction, so
// the symmetric group on Victims acts on schedules by renaming: a vector
// with k victims maps to the multiset of its choice digits (the decodeChoice
// index each choice came from), and two vectors in the same orbit replay
// identically on any protocol whose behaviour is invariant under process
// renaming. For such targets (Target.Symmetric — see SymmetryWitness for
// the guard) it suffices to certify one representative per orbit and weight
// its certificate by the orbit size.
//
// The canonical representative fixes the victim set to the first k entries
// of Victims and sorts the digit sequence non-decreasing. Representatives
// are totally ordered (k ascending, then digit sequence lexicographic) and
// unranked in O(k·m) without materializing the rest, mirroring vectorAt:
// the last digit varies fastest, so representatives sharing a digit prefix
// are index-adjacent — the property the prefix-equivalence pruning walk
// relies on. Counts:
//
//	reps(k)  = C(m+k-1, k)            (multisets of size k over m digits)
//	orbit(d) = C(|Victims|, k) · k!/∏ mult_j!
//	Σ orbits = C(|Victims|, k) · m^k  (the full space's k-block, exactly)

// binom64 is binom for an int64 n (k stays small), saturating at countSat.
func binom64(n int64, k int) int64 {
	if k < 0 || n < int64(k) {
		return 0
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		r = satMul(r, n-int64(k)+int64(i))
		if r >= countSat {
			return countSat
		}
		r /= int64(i)
	}
	return r
}

// multisetCount returns the number of non-decreasing digit sequences of
// length r with values in [lo, m): C(m-lo+r-1, r), saturating.
func multisetCount(m int64, lo int, r int) int64 {
	if r == 0 {
		return 1
	}
	vals := m - int64(lo)
	if vals <= 0 {
		return 0
	}
	return binom64(vals+int64(r)-1, r)
}

// canonCount returns the number of canonical representatives (the walk
// length in canonical mode), saturating.
func (s Space) canonCount() int64 {
	m := s.perCrash()
	total := int64(0)
	for k := 0; k <= s.MaxCrashes; k++ {
		total = satAdd(total, multisetCount(m, 0, k))
	}
	return total
}

// CanonicalCount returns the number of orbit representatives a canonical
// walk of the space certifies (0 on an invalid space). Compare Count, the
// raw schedule total the orbits weight back up to.
func (s Space) CanonicalCount() int64 {
	norm, err := s.normalize()
	if err != nil {
		return 0
	}
	return norm.canonCount()
}

// canonDecode unranks canonical representative i (the space must be
// normalized and i < canonCount()) into its victim count and non-decreasing
// digit sequence, reusing digits if it has capacity.
func (s Space) canonDecode(i int64, digits []int) []int {
	m := s.perCrash()
	k := 0
	for {
		block := multisetCount(m, 0, k)
		if i < block {
			break
		}
		i -= block
		k++
	}
	digits = digits[:0]
	lo := 0
	for j := 0; j < k; j++ {
		d := lo
		for {
			// Representatives whose j-th digit is d continue with a
			// non-decreasing (k-j-1)-sequence over [d, m).
			c := multisetCount(m, d, k-j-1)
			if i < c {
				break
			}
			i -= c
			d++
		}
		digits = append(digits, d)
		lo = d
	}
	return digits
}

// orbitSize returns the number of raw schedules the representative with
// this digit multiset stands for: the victim-set choices times the distinct
// assignments of the multiset to k labelled victims.
func (s Space) orbitSize(digits []int) int64 {
	k := len(digits)
	arrangements := int64(1)
	remaining := k
	for i := 0; i < k; {
		j := i
		for j < k && digits[j] == digits[i] {
			j++
		}
		arrangements = satMul(arrangements, binom(remaining, j-i))
		remaining -= j - i
		i = j
	}
	return satMul(binom(len(s.Victims), k), arrangements)
}

// canonVector materializes the representative for a digit sequence: the
// first k victims, in order, carrying the digits.
func (s Space) canonVector(digits []int) Vector {
	if len(digits) == 0 {
		return nil
	}
	vec := make(Vector, len(digits))
	for j, d := range digits {
		vec[j] = s.decodeChoice(s.Victims[j], d)
	}
	return vec
}

// renameVector applies a PID renaming to the schedule's victims (the
// choices are victim-independent, so this is the orbit action).
func renameVector(vec Vector, perm map[int]int) Vector {
	out := make(Vector, len(vec))
	for i, c := range vec {
		if to, ok := perm[c.Victim]; ok {
			c.Victim = to
		}
		out[i] = c
	}
	return out.Canonical()
}

// SymmetryWitness searches the space for a counterexample to PID
// exchangeability: a vector and a transposition of its victims under which
// the replayed executions differ (beyond the renaming itself). It returns
// the witness as "vector <-> renamed-vector" or "" when no counterexample
// exists among the first limit schedules — the small-space cross-check that
// guards every Target.Symmetric declaration. DHW protocols A-D all produce
// witnesses: special process 0, PID-ordered takeover chains and PID-keyed
// chunking break exchangeability; only the anonymous trivial baseline has
// none.
func (tg Target) SymmetryWitness(space Space, limit int64) (string, error) {
	norm, err := space.normalize()
	if err != nil {
		return "", err
	}
	count := norm.count()
	if limit > 0 && count > limit {
		count = limit
	}
	for i := int64(0); i < count; i++ {
		vec := norm.vectorAt(i)
		if len(vec) == 0 {
			continue
		}
		base := tg.Certify(vec)
		for _, other := range norm.Victims {
			v := vec[0].Victim
			if other == v {
				continue
			}
			perm := map[int]int{v: other, other: v}
			renamed := renameVector(vec, perm)
			if renamed.Validate() != nil {
				continue // transposition collided with another choice's victim
			}
			img := tg.Certify(renamed)
			if !certEquivModRenaming(base, img, tg.T, perm) {
				return vec.String() + " <-> " + renamed.String(), nil
			}
		}
	}
	return "", nil
}

// certEquivModRenaming checks that two certifications are images of each
// other under the PID permutation perm: equal aggregates, perm-matched
// per-process stats and equal verdicts.
func certEquivModRenaming(a, b Certification, t int, perm map[int]int) bool {
	ra, rb := a.Result, b.Result
	if ra.WorkTotal != rb.WorkTotal || ra.WorkDistinct != rb.WorkDistinct ||
		ra.Messages != rb.Messages || ra.Rounds != rb.Rounds ||
		ra.CompletedRound != rb.CompletedRound || ra.Survivors != rb.Survivors ||
		ra.Crashes != rb.Crashes || ra.Restarts != rb.Restarts ||
		ra.Dropped != rb.Dropped || ra.Omitted != rb.Omitted {
		return false
	}
	if len(ra.PerProc) != len(rb.PerProc) {
		return false
	}
	for p := range ra.PerProc {
		q := p
		if to, ok := perm[p]; ok {
			q = to
		}
		if q >= len(rb.PerProc) || ra.PerProc[p] != rb.PerProc[q] {
			return false
		}
	}
	if len(a.Violations) != len(b.Violations) || a.Collapsed != b.Collapsed {
		return false
	}
	return true
}
