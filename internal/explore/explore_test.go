package explore

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestChoiceStringRoundTrip(t *testing.T) {
	cases := []Choice{
		{Victim: 1, Round: 7},
		{Victim: 0, Round: 0},
		{Victim: 2, AtAction: 5, KeepWork: true, Prefix: 3},
		{Victim: 3, AtAction: 1, KeepWork: false, Prefix: 0},
		{Victim: 4, AtAction: 9, KeepWork: false, Bits: true, Mask: 0xb},
	}
	for _, c := range cases {
		got, err := ParseChoice(c.String())
		if err != nil {
			t.Fatalf("ParseChoice(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("round trip %q: got %+v, want %+v", c.String(), got, c)
		}
	}
	for _, bad := range []string{"", "x", "1@", "1@z3", "1@a0:keep:p0", "1@a2:maybe:p0", "1@a2:keep:q1", "1@a2:keep", "-1@r3", "1@r-2"} {
		if _, err := ParseChoice(bad); err == nil {
			t.Fatalf("ParseChoice(%q) accepted", bad)
		}
	}
}

func TestVectorStringRoundTrip(t *testing.T) {
	vec := Vector{
		{Victim: 0, AtAction: 3, KeepWork: true, Prefix: 1},
		{Victim: 2, Round: 9},
	}
	got, err := ParseVector(vec.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vec) {
		t.Fatalf("got %v, want %v", got, vec)
	}
	if empty, err := ParseVector("-"); err != nil || empty != nil {
		t.Fatalf("ParseVector(-) = %v, %v", empty, err)
	}
	if Vector(nil).String() != "-" {
		t.Fatalf("empty vector renders %q", Vector(nil).String())
	}
	if _, err := ParseVector("0@a1:keep:p0,0@a2:keep:p0"); err == nil {
		t.Fatal("duplicate victim accepted")
	}
}

// TestExtendedChoiceStringRoundTrip covers the fault-alphabet extensions of
// the grammar: omission, restart suffixes, slowdowns and drops.
func TestExtendedChoiceStringRoundTrip(t *testing.T) {
	cases := []struct {
		c Choice
		s string
	}{
		{Choice{Victim: 0, AtAction: 7, Omit: true, Prefix: 1}, "0@a7:omit:p1"},
		{Choice{Victim: 1, AtAction: 2, Omit: true, Bits: true, Mask: 0x5}, "1@a2:omit:m5"},
		{Choice{Victim: 0, Round: 3, RestartAt: 6}, "0@r3:restart@r6"},
		{Choice{Victim: 2, AtAction: 4, KeepWork: true, RestartAt: 9}, "2@a4:keep:p0:restart@r9"},
		{Choice{Victim: 2, AtAction: 4, Bits: true, Mask: 0xb, RestartAt: 9}, "2@a4:lose:mb:restart@r9"},
		{Choice{Victim: 0, Round: 0, Slow: 4}, "0@r0:slow:4"},
		{Choice{Victim: 1, Round: 5, Slow: 1}, "1@r5:slow:1"},
		{Choice{Victim: 3, DropNth: 2}, "3@d2"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.s {
			t.Fatalf("String(%+v) = %q, want %q", tc.c, got, tc.s)
		}
		got, err := ParseChoice(tc.s)
		if err != nil {
			t.Fatalf("ParseChoice(%q): %v", tc.s, err)
		}
		if got != tc.c {
			t.Fatalf("round trip %q: got %+v, want %+v", tc.s, got, tc.c)
		}
	}
	bad := []string{
		"1@d0", "1@d-2", "1@dx",
		"1@r3:restart@r3", "1@r3:restart@r2", "1@r3:restart@x", "1@r3:restart@r-4",
		"1@r3:slow:0", "1@r3:slow:x", "1@r3:fast:2", "1@r1:slow:2:more",
		"1@a2:omit:p1:restart@r5", // omission never crashes, nothing to restart
		"1@a2:keep:p1:restart@r0", "1@a2:keep:p1:restart@5", "1@a0:omit:p1",
	}
	for _, s := range bad {
		if c, err := ParseChoice(s); err == nil {
			t.Fatalf("ParseChoice(%q) accepted as %+v", s, c)
		}
	}
}

// TestExtendedVectorValidate pins the kind-coherence rules: a choice must
// carry exactly the fields of one fault kind.
func TestExtendedVectorValidate(t *testing.T) {
	bad := []Vector{
		{{Victim: 0, DropNth: 1, Slow: 2}},
		{{Victim: 0, DropNth: 1, AtAction: 3}},
		{{Victim: 0, DropNth: 1, KeepWork: true}},
		{{Victim: 0, Slow: 2, RestartAt: 5}},
		{{Victim: 0, Slow: 2, Prefix: 1}},
		{{Victim: 0, Omit: true}}, // omission without action trigger
		{{Victim: 0, AtAction: 2, Omit: true, KeepWork: true}},
		{{Victim: 0, AtAction: 2, Omit: true, RestartAt: 5}},
		{{Victim: 0, Round: 4, RestartAt: 4}},
		{{Victim: 0, DropNth: -1}},
	}
	for _, v := range bad {
		if err := v.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", v)
		}
	}
	good := []Vector{
		{{Victim: 0, AtAction: 2, Omit: true, Prefix: 1}, {Victim: 1, DropNth: 3}},
		{{Victim: 0, Round: 2, RestartAt: 5}, {Victim: 1, Round: 0, Slow: 3}},
	}
	for _, v := range good {
		if err := v.Validate(); err != nil {
			t.Fatalf("Validate(%v): %v", v, err)
		}
	}
}

func TestVectorValidate(t *testing.T) {
	if err := (Vector{{Victim: 0, AtAction: 1}, {Victim: 0, Round: 3}}).Validate(); err == nil {
		t.Fatal("duplicate victim accepted")
	}
	if err := (Vector{{Victim: -1, Round: 0}}).Validate(); err == nil {
		t.Fatal("negative victim accepted")
	}
	if err := (Vector{{Victim: 1, AtAction: 2, Prefix: 1}, {Victim: 0, Round: 4}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAdversaryActionCrash pins the universal adversary's action-trigger
// semantics: the Nth committed action of the victim crashes, with the
// chosen delivery prefix over the virtual send list.
func TestAdversaryActionCrash(t *testing.T) {
	vec := Vector{{Victim: 1, AtAction: 2, KeepWork: true, Prefix: 2}}
	adv := vec.Adversary()
	act := sim.Action{Sends: []sim.Send{{To: 0}, {To: 2}, {To: 3}}}
	if v := adv.OnAction(0, 0, act); v.Crash {
		t.Fatal("crashed wrong victim")
	}
	if v := adv.OnAction(0, 1, act); v.Crash {
		t.Fatal("crashed on first action, want second")
	}
	v := adv.OnAction(1, 1, act)
	if !v.Crash || !v.KeepWork {
		t.Fatalf("verdict %+v, want crash keeping work", v)
	}
	if len(v.Deliver) != 2 || !v.Deliver[0] || !v.Deliver[1] {
		t.Fatalf("Deliver = %v, want 2-true prefix", v.Deliver)
	}
	if adv.OverDelivered() {
		t.Fatal("prefix 2 of 3 sends flagged as over-delivery")
	}
}

func TestAdversaryOverDelivery(t *testing.T) {
	adv := Vector{{Victim: 0, AtAction: 1, Prefix: 5}}.Adversary()
	v := adv.OnAction(0, 0, sim.Action{Sends: []sim.Send{{To: 1}}})
	if !v.Crash || len(v.Deliver) != 1 {
		t.Fatalf("verdict %+v", v)
	}
	if !adv.OverDelivered() {
		t.Fatal("prefix past the send list not flagged")
	}

	bits := Vector{{Victim: 0, AtAction: 1, Bits: true, Mask: 0b101}}.Adversary()
	v = bits.OnAction(0, 0, sim.Action{Sends: []sim.Send{{To: 1}, {To: 2}, {To: 3}}})
	if len(v.Deliver) != 3 || !v.Deliver[0] || v.Deliver[1] || !v.Deliver[2] {
		t.Fatalf("bitmask Deliver = %v", v.Deliver)
	}
	if bits.OverDelivered() {
		t.Fatal("in-range mask flagged")
	}
	wide := Vector{{Victim: 0, AtAction: 1, Bits: true, Mask: 0b100}}.Adversary()
	wide.OnAction(0, 0, sim.Action{Sends: []sim.Send{{To: 1}}})
	if !wide.OverDelivered() {
		t.Fatal("mask bits past the send list not flagged")
	}
}

func TestAdversaryRoundCrash(t *testing.T) {
	adv := Vector{{Victim: 2, Round: 4}, {Victim: 0, Round: 4}, {Victim: 1, Round: 9}}.Adversary()
	if got := adv.ScheduledCrashes(4); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("ScheduledCrashes(4) = %v", got)
	}
	if got := adv.ScheduledCrashes(5); got != nil {
		t.Fatalf("ScheduledCrashes(5) = %v", got)
	}
	if n := adv.NextScheduledCrash(-1); n != 4 {
		t.Fatalf("NextScheduledCrash(-1) = %d", n)
	}
	if n := adv.NextScheduledCrash(4); n != 9 {
		t.Fatalf("NextScheduledCrash(4) = %d", n)
	}
	if n := adv.NextScheduledCrash(9); n != -1 {
		t.Fatalf("NextScheduledCrash(9) = %d", n)
	}
}

// TestSpaceUnrankBijection checks that VectorAt is a bijection onto
// well-formed canonical vectors: Count() distinct vectors, victims strictly
// increasing, every field inside its domain.
func TestSpaceUnrankBijection(t *testing.T) {
	sp := Space{
		Victims:    []int{0, 1, 3},
		MaxCrashes: 2,
		Actions:    []int{1, 2, 4},
		KeepWork:   []bool{false, true},
		Prefixes:   []int{0, 2},
		Rounds:     []int64{0, 5},
	}
	norm, err := sp.normalize()
	if err != nil {
		t.Fatal(err)
	}
	// perCrash = 3*2*2 + 2 = 14; count = 1 + 3*14 + 3*14² = 631.
	if got := norm.count(); got != 631 {
		t.Fatalf("count = %d, want 631", got)
	}
	seen := make(map[string]bool)
	for i := int64(0); i < norm.count(); i++ {
		vec := norm.vectorAt(i)
		if err := vec.Validate(); err != nil {
			t.Fatalf("index %d: %v", i, err)
		}
		for j := 1; j < len(vec); j++ {
			if vec[j].Victim <= vec[j-1].Victim {
				t.Fatalf("index %d: victims not increasing: %s", i, vec)
			}
		}
		key := vec.String()
		if seen[key] {
			t.Fatalf("index %d: duplicate vector %s", i, key)
		}
		seen[key] = true
	}
	if len(seen) != 631 {
		t.Fatalf("distinct vectors = %d, want 631", len(seen))
	}
}

// TestExtendedSpaceUnrankBijection extends the bijection check to the full
// fault alphabet: every block of the per-victim digit — action crash,
// omission, round crash, crash+restart, slowdown, drop — decodes to a valid
// canonical vector, all distinct, with every kind represented the expected
// number of times.
func TestExtendedSpaceUnrankBijection(t *testing.T) {
	sp := Space{
		Victims:       []int{0, 1},
		MaxCrashes:    2,
		Actions:       []int{1, 2},
		KeepWork:      []bool{false, true},
		Prefixes:      []int{0, 1},
		Omissions:     true,
		Rounds:        []int64{0, 3},
		RestartDelays: []int64{2},
		SlowFactors:   []int{2, 4},
		Drops:         []int{1, 3},
	}
	norm, err := sp.normalize()
	if err != nil {
		t.Fatal(err)
	}
	// perCrash = 2*2*2 + 2*2 + 2 + 2*1 + 2*2 + 2 = 22;
	// count = 1 + C(2,1)*22 + C(2,2)*22² = 529.
	if got := norm.count(); got != 529 {
		t.Fatalf("count = %d, want 529", got)
	}
	seen := make(map[string]bool)
	kinds := make(map[string]int)
	for i := int64(0); i < norm.count(); i++ {
		vec := norm.vectorAt(i)
		if err := vec.Validate(); err != nil {
			t.Fatalf("index %d: %v", i, err)
		}
		for j := 1; j < len(vec); j++ {
			if vec[j].Victim <= vec[j-1].Victim {
				t.Fatalf("index %d: victims not increasing: %s", i, vec)
			}
		}
		key := vec.String()
		if seen[key] {
			t.Fatalf("index %d: duplicate vector %s", i, key)
		}
		seen[key] = true
		for _, c := range vec {
			switch {
			case c.DropNth > 0:
				kinds["drop"]++
			case c.Slow > 0:
				kinds["slow"]++
			case c.Omit:
				kinds["omit"]++
			case c.RestartAt > 0:
				kinds["restart"]++
			case c.AtAction > 0:
				kinds["action-crash"]++
			default:
				kinds["round-crash"]++
			}
		}
	}
	// Per-victim, each kind block appears once alone and 22 times crossed
	// with the other victim's 22 choices: weight = 1 + 22 = 23 per entry.
	want := map[string]int{
		"action-crash": 2 * 8 * 23,
		"omit":         2 * 4 * 23,
		"round-crash":  2 * 2 * 23,
		"restart":      2 * 2 * 23,
		"slow":         2 * 4 * 23,
		"drop":         2 * 2 * 23,
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("kind histogram %v, want %v", kinds, want)
	}
}

// TestAdversaryExtendedFaults pins the universal adversary's non-crash
// verdicts: omission (suppress sends, live on), slowdown (fire-once Slow
// verdict from the trigger round), drop (Nth delivery to the victim) and the
// restart schedule announced to the engine.
func TestAdversaryExtendedFaults(t *testing.T) {
	act := sim.Action{Sends: []sim.Send{{To: 1}, {To: 2}}}

	omit := Vector{{Victim: 0, AtAction: 1, Omit: true, Prefix: 1}}.Adversary()
	v := omit.OnAction(0, 0, act)
	if v.Crash || !v.Omit || len(v.Deliver) != 1 || !v.Deliver[0] {
		t.Fatalf("omit verdict %+v", v)
	}

	slow := Vector{{Victim: 1, Round: 3, Slow: 4}}.Adversary()
	if v := slow.OnAction(2, 1, act); v.Slow != 0 {
		t.Fatalf("slowdown fired before its round: %+v", v)
	}
	if v := slow.OnAction(3, 1, act); v.Slow != 4 {
		t.Fatalf("slowdown verdict %+v, want Slow=4", v)
	}
	if v := slow.OnAction(9, 1, act); v.Slow != 0 {
		t.Fatalf("slowdown fired twice: %+v", v)
	}

	drop := Vector{{Victim: 2, DropNth: 2}}.Adversary()
	m := sim.Message{To: 2}
	if !drop.OnDeliver(0, m) {
		t.Fatal("first delivery dropped, want second")
	}
	if drop.OnDeliver(0, m) {
		t.Fatal("second delivery to victim not dropped")
	}
	if !drop.OnDeliver(0, m) {
		t.Fatal("third delivery dropped")
	}
	if drop.UnfiredFaults() {
		t.Fatal("fired drop flagged as unfired")
	}

	unfired := Vector{{Victim: 2, DropNth: 9}}.Adversary()
	unfired.OnDeliver(0, m)
	if !unfired.UnfiredFaults() {
		t.Fatal("planned drop never fired, not flagged")
	}

	rs := Vector{{Victim: 0, Round: 2, RestartAt: 6}, {Victim: 1, Round: 3, RestartAt: 6}}.Adversary()
	if got := rs.ScheduledRestarts(6); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("ScheduledRestarts(6) = %v", got)
	}
	if n := rs.NextScheduledRestart(-1); n != 6 {
		t.Fatalf("NextScheduledRestart(-1) = %d", n)
	}
	if n := rs.NextScheduledRestart(6); n != -1 {
		t.Fatalf("NextScheduledRestart(6) = %d", n)
	}
}

func TestSpaceNormalizeErrors(t *testing.T) {
	if _, err := (Space{Victims: []int{1, 1}, MaxCrashes: 1, Actions: []int{1}}).normalize(); err == nil {
		t.Fatal("duplicate victims accepted")
	}
	if _, err := (Space{Victims: []int{0}, MaxCrashes: 1}).normalize(); err == nil {
		t.Fatal("empty choice set accepted")
	}
	if _, err := (Space{Victims: []int{0}, MaxCrashes: 1, Actions: []int{0}}).normalize(); err == nil {
		t.Fatal("zero action index accepted")
	}
	if _, err := (Space{Victims: []int{0}, MaxCrashes: 1, Omissions: true}).normalize(); err == nil {
		t.Fatal("omissions without actions accepted")
	}
	if _, err := (Space{Victims: []int{0}, MaxCrashes: 1, RestartDelays: []int64{1}, Drops: []int{1}}).normalize(); err == nil {
		t.Fatal("restart delays without rounds accepted")
	}
	if _, err := (Space{Victims: []int{0}, MaxCrashes: 1, Rounds: []int64{0}, RestartDelays: []int64{0}}).normalize(); err == nil {
		t.Fatal("zero restart delay accepted")
	}
	if _, err := (Space{Victims: []int{0}, MaxCrashes: 1, Rounds: []int64{0}, SlowFactors: []int{1}}).normalize(); err == nil {
		t.Fatal("slow factor 1 accepted (identity slowdown)")
	}
	if _, err := (Space{Victims: []int{0}, MaxCrashes: 1, Drops: []int{0}}).normalize(); err == nil {
		t.Fatal("zero drop index accepted")
	}
}

func TestEnumerateCertifiesProtocolA(t *testing.T) {
	tg, err := NewTarget("a", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	depth, err := tg.DefaultDepth()
	if err != nil {
		t.Fatal(err)
	}
	if depth < 3 {
		t.Fatalf("probe depth = %d, implausibly small", depth)
	}
	sp := NewSpace(3, 2, depth, 3)
	rep, err := tg.Enumerate(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != sp.Count() {
		t.Fatalf("certified %d of %d schedules", rep.Schedules, sp.Count())
	}
	if rep.ViolationCount != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.WorstEffort.Value <= 0 || rep.WorstEffort.Vector == "" {
		t.Fatalf("no worst effort recorded: %+v", rep.WorstEffort)
	}
	// The worst schedule must be a replayable artifact: parsing and
	// replaying it reproduces the extreme value.
	worst, err := ParseVector(rep.WorstEffort.Vector)
	if err != nil {
		t.Fatal(err)
	}
	if again := tg.Certify(worst); again.Result.Effort() != rep.WorstEffort.Value {
		t.Fatalf("replay of %s gives effort %d, recorded %d",
			rep.WorstEffort.Vector, again.Result.Effort(), rep.WorstEffort.Value)
	}
	// Crash histogram covers the full f range and sums to the space.
	var sum int64
	for _, c := range rep.ByCrashes {
		sum += c
	}
	if sum != rep.Schedules || len(rep.ByCrashes) != 3 {
		t.Fatalf("ByCrashes = %v (schedules %d)", rep.ByCrashes, rep.Schedules)
	}
}

// TestEnumerateJobsInvariance pins the acceptance criterion: reports (and
// their rendered text) are byte-identical for every worker count.
func TestEnumerateJobsInvariance(t *testing.T) {
	tg, err := NewTarget("b", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSpace(3, 2, 6, 2)
	one, err := tg.Enumerate(sp, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4, 7} {
		many, err := tg.Enumerate(sp, Options{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(one, many) {
			t.Fatalf("jobs=%d report differs:\n%+v\nvs\n%+v", jobs, one, many)
		}
		if one.Text() != many.Text() {
			t.Fatalf("jobs=%d text differs", jobs)
		}
	}
}

// TestEnumerateDetectsViolations plants an absurd bound and checks that the
// walk reports it with a replayable vector.
func TestEnumerateDetectsViolations(t *testing.T) {
	tg, err := NewTarget("b", 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tg.Bounds = Bounds{Work: 1} // every run violates this
	rep, err := tg.Enumerate(NewSpace(3, 1, 4, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationCount != rep.Schedules {
		t.Fatalf("%d violations over %d schedules", rep.ViolationCount, rep.Schedules)
	}
	if len(rep.Violations) != maxViolations {
		t.Fatalf("retained %d violations, want cap %d", len(rep.Violations), maxViolations)
	}
	vec, err := ParseVector(rep.Violations[0].Vector)
	if err != nil {
		t.Fatal(err)
	}
	if again := tg.Certify(vec); len(again.Violations) == 0 {
		t.Fatalf("replaying %s does not reproduce the violation", rep.Violations[0].Vector)
	}
}

// TestEnumerateRefusesHugeSpaces pins the two size guards. The walk limit
// applies to the walked count — canonical representatives for Symmetric
// targets — so a space whose raw count is far beyond MaxSchedules still
// certifies when its canonical count fits; the raw ceiling is a hard stop
// (counters would saturate) that only Force overrides.
func TestEnumerateRefusesHugeSpaces(t *testing.T) {
	tg, err := NewTarget("b", 64, 16, 15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Enumerate(NewSpace(16, 15, 40, 16), Options{}); err == nil {
		t.Fatal("astronomic space accepted")
	}

	// Symmetry makes a raw-intractable space tractable: t=20, f=3, depth 8,
	// prefix-0 has ~4.7M raw schedules (over the 1<<22 walk limit) but only
	// 969 canonical representatives.
	triv, err := NewTarget("trivial", 4, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	big := NewSpace(20, 3, 8, 0)
	if raw, canon := big.Count(), big.CanonicalCount(); raw <= 1<<22 || canon > 1<<22 {
		t.Fatalf("test space mis-sized: raw %d, canonical %d", raw, canon)
	}
	rep, err := triv.Enumerate(big, Options{})
	if err != nil {
		t.Fatalf("canonical-tractable space refused: %v", err)
	}
	if rep.Mode != "canonical" || rep.Schedules != big.Count() {
		t.Fatalf("mode %s, weighted %d of %d raw", rep.Mode, rep.Schedules, big.Count())
	}
	// The same space walked in full mode trips the walk limit.
	if _, err := triv.Enumerate(big, Options{Full: true}); err == nil {
		t.Fatal("raw walk over MaxSchedules accepted in full mode")
	}

	// The raw ceiling is a hard stop even when the canonical walk is tiny;
	// Force overrides it. Lower the ceiling rather than building a real
	// 2^40 space.
	old := rawCeiling
	rawCeiling = big.Count()
	defer func() { rawCeiling = old }()
	_, err = triv.Enumerate(big, Options{})
	if err == nil || !strings.Contains(err.Error(), "Force") {
		t.Fatalf("over-ceiling space accepted or error unhelpful: %v", err)
	}
	forced, err := triv.Enumerate(big, Options{Force: true})
	if err != nil {
		t.Fatalf("Force did not override the ceiling: %v", err)
	}
	if forced.Schedules != big.Count() {
		t.Fatalf("forced walk weighted %d of %d", forced.Schedules, big.Count())
	}
}

// TestSearchLivePlane pins the cross-plane search validation: the worst
// schedule found on the simulator replays identically on the live
// concurrent plane, for a protocol with real message traffic.
func TestSearchLivePlane(t *testing.T) {
	tg, err := NewTarget("b", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := tg.Search(SearchOptions{Seed: 7, Budget: 400, MaxPrefix: -1, Plane: "live"})
	if err != nil {
		t.Fatal(err)
	}
	if sr.LiveResult == nil || !sr.LiveMatch {
		t.Fatalf("live validation failed: match=%v result=%+v violations=%v",
			sr.LiveMatch, sr.LiveResult, sr.Violations)
	}
	if len(sr.Violations) != 0 {
		t.Fatalf("violations: %v", sr.Violations)
	}
	if !strings.Contains(sr.Text(), "live plane:     MATCHES") {
		t.Fatalf("text missing live verdict:\n%s", sr.Text())
	}
	if _, err := tg.Search(SearchOptions{Seed: 7, Budget: 50, Plane: "nope"}); err == nil {
		t.Fatal("unknown plane accepted")
	}
}

// TestSearchDeterministic pins search determinism across repeats and worker
// counts for a fixed seed.
func TestSearchDeterministic(t *testing.T) {
	tg, err := NewTarget("a", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := SearchOptions{Seed: 7, Budget: 600, MaxPrefix: -1}
	first, err := tg.Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 3} {
		o := opt
		o.Jobs = jobs
		again, err := tg.Search(o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("jobs=%d search differs:\n%+v\nvs\n%+v", jobs, first, again)
		}
	}
}

// TestSearchFindsExhaustiveWorst checks the searcher against ground truth:
// on an instance small enough to enumerate, hill-climbing from random
// samples reaches the true worst effort.
func TestSearchFindsExhaustiveWorst(t *testing.T) {
	tg, err := NewTarget("a", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	depth, err := tg.DefaultDepth()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tg.Enumerate(NewSpace(3, 2, depth, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := tg.Search(SearchOptions{Seed: 7, Budget: 2000, MaxPrefix: -1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Best.Value != rep.WorstEffort.Value {
		t.Fatalf("search found %d (%s), exhaustive worst is %d (%s)",
			sr.Best.Value, sr.Best.Vector, rep.WorstEffort.Value, rep.WorstEffort.Vector)
	}
	if len(sr.Violations) != 0 {
		t.Fatalf("search violations: %v", sr.Violations)
	}
}

func TestNewTargetErrors(t *testing.T) {
	if _, err := NewTarget("nope", 8, 3, 1); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := NewTarget("a", 8, 3, 3); err == nil {
		t.Fatal("maxCrashes = t accepted")
	}
	if _, err := NewTarget("a", 8, 0, 0); err == nil {
		t.Fatal("t = 0 accepted")
	}
}

// TestTargetsCertifySmallSpaces sweeps every bounded protocol through a
// small exhaustive space: zero violations anywhere.
func TestTargetsCertifySmallSpaces(t *testing.T) {
	for _, proto := range []string{"a", "b", "c", "c-lowmsg", "d", "single-checkpoint", "naive"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			n, tt := 6, 3
			tg, err := NewTarget(proto, n, tt, 2)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := tg.Enumerate(NewSpace(tt, 2, 5, 2), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.ViolationCount != 0 {
				t.Fatalf("violations: %v", rep.Violations)
			}
		})
	}
}
