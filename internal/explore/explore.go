// Package explore is the schedule-space exploration subsystem: it treats a
// crash schedule as an explicit, replayable value — a decision vector of
// (victim, trigger, keep-work, delivery-mask) choices — and spends simulator
// speed on walking the space of such vectors.
//
// Three entry points sit on the same universal adversary:
//
//   - Enumerate DFS-walks every schedule of a Space (up to f crashes, bounded
//     action depth) for small (n, t), certifying the paper's effort bound,
//     the completion guarantee and the at-most-one-active invariant in every
//     single execution. Victim sets are enumerated as combinations (never
//     permutations — the vector is unordered by construction) and delivery
//     choices as prefixes of the crashed action's virtual send list, the two
//     canonicalizations that keep the space polynomial; executions that
//     coincide with a canonically smaller vector's (a planned crash that
//     never fires, a prefix past the real send count) are counted as
//     collapsed but still certified.
//   - Search runs seeded random sampling plus greedy hill-climbing over
//     decision vectors for instances too large to enumerate, maximizing
//     effort, rounds, messages or work, and reports the worst schedule found
//     as a replayable vector.
//   - Certify replays one vector and checks it against the target's bounds.
//
// Shards and candidate batches fan out deterministically via batch.Map over
// the pooled engines behind internal/core's run entry points, so reports are
// byte-identical for every worker count.
package explore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Choice is one planned crash in a decision vector. Exactly one trigger
// applies: AtAction > 0 crashes the victim as it commits its AtAction-th
// action; otherwise the victim crashes at the start of round Round (even
// while asleep). For action crashes, KeepWork decides whether a work unit in
// the crashed action survives, and the delivery choice selects which entries
// of the action's virtual send list (sim.Action.SendAt order: explicit
// sends, then the broadcast per recipient) are transmitted: the first Prefix
// entries when Bits is false, the set bits of Mask when Bits is true.
type Choice struct {
	Victim   int
	AtAction int
	Round    int64
	KeepWork bool
	Prefix   int
	Bits     bool
	Mask     uint64
}

// String renders the choice in the grammar accepted by ParseChoice:
// "1@r7" (round trigger), "2@a5:keep:p3" (action trigger, prefix delivery),
// "2@a5:lose:mb" (action trigger, hex bitmask delivery).
func (c Choice) String() string {
	if c.AtAction <= 0 {
		return fmt.Sprintf("%d@r%d", c.Victim, c.Round)
	}
	keep := "lose"
	if c.KeepWork {
		keep = "keep"
	}
	if c.Bits {
		return fmt.Sprintf("%d@a%d:%s:m%x", c.Victim, c.AtAction, keep, c.Mask)
	}
	return fmt.Sprintf("%d@a%d:%s:p%d", c.Victim, c.AtAction, keep, c.Prefix)
}

// ParseChoice parses the String form.
func ParseChoice(s string) (Choice, error) {
	bad := func() (Choice, error) {
		return Choice{}, fmt.Errorf("explore: bad choice %q: want V@rROUND or V@aN:keep|lose:pK|mHEX", s)
	}
	head, rest, ok := strings.Cut(s, "@")
	if !ok || len(rest) < 2 {
		return bad()
	}
	victim, err := strconv.Atoi(head)
	if err != nil || victim < 0 {
		return bad()
	}
	c := Choice{Victim: victim}
	switch rest[0] {
	case 'r':
		round, err := strconv.ParseInt(rest[1:], 10, 64)
		if err != nil || round < 0 {
			return bad()
		}
		c.Round = round
		return c, nil
	case 'a':
		parts := strings.Split(rest[1:], ":")
		if len(parts) != 3 {
			return bad()
		}
		at, err := strconv.Atoi(parts[0])
		if err != nil || at <= 0 {
			return bad()
		}
		c.AtAction = at
		switch parts[1] {
		case "keep":
			c.KeepWork = true
		case "lose":
		default:
			return bad()
		}
		if len(parts[2]) < 1 {
			return bad()
		}
		switch parts[2][0] {
		case 'p':
			p, err := strconv.Atoi(parts[2][1:])
			if err != nil || p < 0 {
				return bad()
			}
			c.Prefix = p
		case 'm':
			m, err := strconv.ParseUint(parts[2][1:], 16, 64)
			if err != nil {
				return bad()
			}
			c.Bits, c.Mask = true, m
		default:
			return bad()
		}
		return c, nil
	}
	return bad()
}

// Vector is a decision vector: one complete, replayable crash schedule. A
// victim appears at most once (a crash kills for good), so vectors are
// unordered sets of choices; Validate and the enumerator keep them sorted by
// victim, which is the canonical form.
type Vector []Choice

// String renders the vector as comma-joined choices; the empty vector is
// "-" (the failure-free schedule).
func (v Vector) String() string {
	if len(v) == 0 {
		return "-"
	}
	parts := make([]string, len(v))
	for i, c := range v {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// ParseVector parses the String form ("-" or comma-joined choices).
func ParseVector(s string) (Vector, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "-" {
		return nil, nil
	}
	var v Vector
	for _, part := range strings.Split(s, ",") {
		c, err := ParseChoice(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		v = append(v, c)
	}
	return v, v.Validate()
}

// Validate checks the vector's well-formedness: non-negative fields and at
// most one choice per victim.
func (v Vector) Validate() error {
	seen := make(map[int]bool, len(v))
	for _, c := range v {
		if c.Victim < 0 {
			return fmt.Errorf("explore: negative victim %d", c.Victim)
		}
		if c.AtAction < 0 || (c.AtAction == 0 && c.Round < 0) || c.Prefix < 0 {
			return fmt.Errorf("explore: malformed choice %v", c)
		}
		if seen[c.Victim] {
			return fmt.Errorf("explore: victim %d crashed twice", c.Victim)
		}
		seen[c.Victim] = true
	}
	return nil
}

// Canonical returns the vector sorted by victim (choices are unordered, one
// per victim, so this is the canonical representative).
func (v Vector) Canonical() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i].Victim < out[j].Victim })
	return out
}

// Adversary is the universal choice-sequence adversary: a sim.Adversary
// driven entirely by a decision vector, so that any crash schedule is a
// replayable value. It is stateful and single-use — build a fresh one per
// run.
type Adversary struct {
	choices []Choice
	counts  map[int]int64 // committed actions observed per victim
	// overDelivered records that some fired choice's delivery selection
	// extended past the crashed action's real send list — the execution
	// coincides with the canonically smaller choice truncated to the send
	// count.
	overDelivered bool
}

var _ sim.Adversary = (*Adversary)(nil)

// Adversary builds a fresh universal adversary replaying the vector.
func (v Vector) Adversary() *Adversary {
	a := &Adversary{choices: v, counts: make(map[int]int64, len(v))}
	return a
}

// OnAction implements sim.Adversary.
func (a *Adversary) OnAction(_ int64, pid int, act sim.Action) sim.Verdict {
	for _, c := range a.choices {
		if c.Victim != pid || c.AtAction <= 0 {
			continue
		}
		a.counts[pid]++
		if a.counts[pid] != int64(c.AtAction) {
			return sim.Survive()
		}
		v := sim.Verdict{Crash: true, KeepWork: c.KeepWork}
		n := act.SendCount()
		if c.Bits {
			if c.Mask>>uint(min(n, 64)) != 0 {
				a.overDelivered = true
			}
			if c.Mask != 0 {
				v.Deliver = make([]bool, min(n, 64))
				for i := range v.Deliver {
					v.Deliver[i] = c.Mask>>uint(i)&1 == 1
				}
			}
			return v
		}
		if c.Prefix > n {
			a.overDelivered = true
		}
		if p := min(c.Prefix, n); p > 0 {
			v.Deliver = make([]bool, p)
			for i := range v.Deliver {
				v.Deliver[i] = true
			}
		}
		return v
	}
	return sim.Survive()
}

// ScheduledCrashes implements sim.Adversary.
func (a *Adversary) ScheduledCrashes(r int64) []int {
	var pids []int
	for _, c := range a.choices {
		if c.AtAction <= 0 && c.Round == r {
			pids = append(pids, c.Victim)
		}
	}
	sort.Ints(pids)
	return pids
}

// NextScheduledCrash implements sim.Adversary.
func (a *Adversary) NextScheduledCrash(after int64) int64 {
	next := int64(-1)
	for _, c := range a.choices {
		if c.AtAction <= 0 && c.Round > after && (next < 0 || c.Round < next) {
			next = c.Round
		}
	}
	return next
}

// OverDelivered reports whether a fired choice selected delivery entries
// past the crashed action's send list, i.e. the run coincides with a
// canonically smaller delivery choice.
func (a *Adversary) OverDelivered() bool { return a.overDelivered }
