// Package explore is the schedule-space exploration subsystem: it treats a
// fault schedule as an explicit, replayable value — a decision vector of
// (victim, trigger, fault-kind, delivery-mask) choices over the full fault
// alphabet (crash, crash-with-restart, send-omission, message drop, rate
// slowdown) — and spends simulator speed on walking the space of such
// vectors.
//
// Three entry points sit on the same universal adversary:
//
//   - Enumerate DFS-walks every schedule of a Space (up to f crashes, bounded
//     action depth) for small (n, t), certifying the paper's effort bound,
//     the completion guarantee and the at-most-one-active invariant in every
//     single execution. Victim sets are enumerated as combinations (never
//     permutations — the vector is unordered by construction) and delivery
//     choices as prefixes of the crashed action's virtual send list, the two
//     canonicalizations that keep the space polynomial; executions that
//     coincide with a canonically smaller vector's (a planned crash that
//     never fires, a prefix past the real send count) are counted as
//     collapsed but still certified.
//   - Search runs seeded random sampling plus greedy hill-climbing over
//     decision vectors for instances too large to enumerate, maximizing
//     effort, rounds, messages or work, and reports the worst schedule found
//     as a replayable vector.
//   - Certify replays one vector and checks it against the target's bounds.
//
// Shards and candidate batches fan out deterministically via batch.Map over
// the pooled engines behind internal/core's run entry points, so reports are
// byte-identical for every worker count.
package explore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Choice is one planned fault in a decision vector. The fault kind and its
// trigger are determined by the fields set:
//
//   - Crash at action: AtAction > 0, Omit false. The victim crashes as it
//     commits its AtAction-th action. KeepWork decides whether a work unit in
//     the crashed action survives, and the delivery choice selects which
//     entries of the action's virtual send list (sim.Action.SendAt order:
//     explicit sends, then the broadcast per recipient) are transmitted: the
//     first Prefix entries when Bits is false, the set bits of Mask when Bits
//     is true. RestartAt > 0 additionally schedules a crash-recovery restart
//     at that round (ignored by the engine if the crash lands at or after it,
//     or if the process body is not sim.Recoverable).
//   - Crash at round: AtAction == 0, Slow == 0, DropNth == 0. The victim
//     crashes at the start of round Round (even while asleep). RestartAt > 0
//     schedules the restart; it must be a strictly later round.
//   - Send omission: Omit true (requires AtAction > 0). The delivery choice
//     suppresses the unselected sends of the AtAction-th action, but the
//     victim lives on with its work intact.
//   - Slowdown: Slow > 0. From its first committed action at or after round
//     Round, the victim runs at rate 1/Slow (each action is followed by
//     Slow-1 stalled rounds).
//   - Message drop: DropNth > 0. The DropNth-th message delivered to the
//     victim (counting across the whole run) is lost in transit.
type Choice struct {
	Victim   int
	AtAction int
	Round    int64
	KeepWork bool
	Prefix   int
	Bits     bool
	Mask     uint64
	// Omit turns an action-triggered choice into a send-omission fault.
	Omit bool
	// Slow is the rate-degradation factor for a round-triggered slowdown.
	Slow int
	// RestartAt schedules a crash-recovery restart for a crash choice.
	RestartAt int64
	// DropNth selects the victim-bound delivery lost in transit.
	DropNth int
}

// String renders the choice in the grammar accepted by ParseChoice:
// "1@r7" (round crash), "1@r3:restart@r6" (round crash with restart),
// "2@a5:keep:p3" (action crash, prefix delivery), "2@a5:lose:mb" (action
// crash, hex bitmask delivery), "2@a5:lose:p0:restart@r9" (action crash
// with restart), "0@a7:omit:p1" (send omission), "0@r0:slow:4" (slowdown),
// "3@d2" (drop the second delivery to the victim).
func (c Choice) String() string {
	if c.DropNth > 0 {
		return fmt.Sprintf("%d@d%d", c.Victim, c.DropNth)
	}
	if c.Slow > 0 {
		return fmt.Sprintf("%d@r%d:slow:%d", c.Victim, c.Round, c.Slow)
	}
	if c.AtAction <= 0 {
		if c.RestartAt > 0 {
			return fmt.Sprintf("%d@r%d:restart@r%d", c.Victim, c.Round, c.RestartAt)
		}
		return fmt.Sprintf("%d@r%d", c.Victim, c.Round)
	}
	deliv := fmt.Sprintf("p%d", c.Prefix)
	if c.Bits {
		deliv = fmt.Sprintf("m%x", c.Mask)
	}
	if c.Omit {
		return fmt.Sprintf("%d@a%d:omit:%s", c.Victim, c.AtAction, deliv)
	}
	keep := "lose"
	if c.KeepWork {
		keep = "keep"
	}
	if c.RestartAt > 0 {
		return fmt.Sprintf("%d@a%d:%s:%s:restart@r%d", c.Victim, c.AtAction, keep, deliv, c.RestartAt)
	}
	return fmt.Sprintf("%d@a%d:%s:%s", c.Victim, c.AtAction, keep, deliv)
}

// parseRestart parses a "restart@rROUND" suffix part.
func parseRestart(s string) (int64, bool) {
	rest, ok := strings.CutPrefix(s, "restart@r")
	if !ok {
		return 0, false
	}
	r, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || r <= 0 {
		return 0, false
	}
	return r, true
}

// ParseChoice parses the String form.
func ParseChoice(s string) (Choice, error) {
	bad := func() (Choice, error) {
		return Choice{}, fmt.Errorf("explore: bad choice %q: want V@rROUND[:restart@rR|:slow:K], V@aN:keep|lose|omit:pK|mHEX[:restart@rR] or V@dN", s)
	}
	head, rest, ok := strings.Cut(s, "@")
	if !ok || len(rest) < 2 {
		return bad()
	}
	victim, err := strconv.Atoi(head)
	if err != nil || victim < 0 {
		return bad()
	}
	c := Choice{Victim: victim}
	switch rest[0] {
	case 'd':
		n, err := strconv.Atoi(rest[1:])
		if err != nil || n <= 0 {
			return bad()
		}
		c.DropNth = n
		return c, nil
	case 'r':
		parts := strings.Split(rest[1:], ":")
		round, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil || round < 0 {
			return bad()
		}
		c.Round = round
		switch {
		case len(parts) == 1:
			return c, nil
		case len(parts) == 2:
			at, ok := parseRestart(parts[1])
			if !ok || at <= round {
				return bad()
			}
			c.RestartAt = at
			return c, nil
		case len(parts) == 3 && parts[1] == "slow":
			k, err := strconv.Atoi(parts[2])
			if err != nil || k < 1 {
				return bad()
			}
			c.Slow = k
			return c, nil
		}
		return bad()
	case 'a':
		parts := strings.Split(rest[1:], ":")
		if len(parts) != 3 && len(parts) != 4 {
			return bad()
		}
		at, err := strconv.Atoi(parts[0])
		if err != nil || at <= 0 {
			return bad()
		}
		c.AtAction = at
		switch parts[1] {
		case "keep":
			c.KeepWork = true
		case "lose":
		case "omit":
			c.Omit = true
		default:
			return bad()
		}
		if len(parts[2]) < 1 {
			return bad()
		}
		switch parts[2][0] {
		case 'p':
			p, err := strconv.Atoi(parts[2][1:])
			if err != nil || p < 0 {
				return bad()
			}
			c.Prefix = p
		case 'm':
			m, err := strconv.ParseUint(parts[2][1:], 16, 64)
			if err != nil {
				return bad()
			}
			c.Bits, c.Mask = true, m
		default:
			return bad()
		}
		if len(parts) == 4 {
			if c.Omit {
				return bad() // omission never crashes, nothing to restart
			}
			r, ok := parseRestart(parts[3])
			if !ok {
				return bad()
			}
			c.RestartAt = r
		}
		return c, nil
	}
	return bad()
}

// Vector is a decision vector: one complete, replayable fault schedule. A
// victim appears at most once (one planned fault per process), so vectors
// are unordered sets of choices; Validate and the enumerator keep them
// sorted by victim, which is the canonical form.
type Vector []Choice

// String renders the vector as comma-joined choices; the empty vector is
// "-" (the failure-free schedule).
func (v Vector) String() string {
	if len(v) == 0 {
		return "-"
	}
	parts := make([]string, len(v))
	for i, c := range v {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// ParseVector parses the String form ("-" or comma-joined choices).
func ParseVector(s string) (Vector, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "-" {
		return nil, nil
	}
	var v Vector
	for _, part := range strings.Split(s, ",") {
		c, err := ParseChoice(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		v = append(v, c)
	}
	return v, v.Validate()
}

// Validate checks the vector's well-formedness: non-negative fields, a
// coherent fault kind per choice (the trigger its kind needs and no fields
// from another kind) and at most one choice per victim.
func (v Vector) Validate() error {
	seen := make(map[int]bool, len(v))
	for _, c := range v {
		if c.Victim < 0 {
			return fmt.Errorf("explore: negative victim %d", c.Victim)
		}
		if c.AtAction < 0 || (c.AtAction == 0 && c.Round < 0) || c.Prefix < 0 ||
			c.Slow < 0 || c.RestartAt < 0 || c.DropNth < 0 {
			return fmt.Errorf("explore: malformed choice %v", c)
		}
		switch {
		case c.DropNth > 0:
			if c.AtAction != 0 || c.Round != 0 || c.Slow != 0 || c.RestartAt != 0 ||
				c.Omit || c.KeepWork || c.Bits || c.Prefix != 0 {
				return fmt.Errorf("explore: drop choice %v mixes fault kinds", c)
			}
		case c.Slow > 0:
			if c.AtAction != 0 || c.RestartAt != 0 || c.Omit || c.KeepWork || c.Bits || c.Prefix != 0 {
				return fmt.Errorf("explore: slowdown choice %v mixes fault kinds", c)
			}
		case c.Omit:
			if c.AtAction <= 0 {
				return fmt.Errorf("explore: omission choice %v needs an action trigger", c)
			}
			if c.RestartAt != 0 || c.KeepWork {
				return fmt.Errorf("explore: omission choice %v mixes fault kinds", c)
			}
		case c.AtAction == 0 && c.RestartAt > 0 && c.RestartAt <= c.Round:
			return fmt.Errorf("explore: choice %v restarts at or before its crash round", c)
		}
		if seen[c.Victim] {
			return fmt.Errorf("explore: victim %d faulted twice", c.Victim)
		}
		seen[c.Victim] = true
	}
	return nil
}

// Crashes returns the number of crash-kind choices (action- or
// round-triggered, with or without restart) in the vector: the value
// sim.Result.Crashes reaches when every planned crash fires.
func (v Vector) Crashes() int {
	n := 0
	for _, c := range v {
		if c.DropNth == 0 && c.Slow == 0 && !c.Omit {
			n++
		}
	}
	return n
}

// Canonical returns the vector sorted by victim (choices are unordered, one
// per victim, so this is the canonical representative).
func (v Vector) Canonical() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i].Victim < out[j].Victim })
	return out
}

// isRoundCrash reports whether the choice is a round-triggered crash (the
// only kind the ScheduledCrashes path may announce: slowdowns and drops also
// carry round/zero fields but are not crashes).
func (c Choice) isRoundCrash() bool {
	return c.AtAction <= 0 && c.Slow == 0 && c.DropNth == 0
}

// Adversary is the universal choice-sequence adversary: a sim.Adversary
// (plus sim.DeliveryAdversary and sim.Restarter) driven entirely by a
// decision vector, so that any fault schedule is a replayable value. It is
// stateful and single-use — build a fresh one per run.
type Adversary struct {
	choices   []Choice
	counts    map[int]int64 // committed actions observed per victim
	delivered map[int]int   // deliveries observed per drop victim
	slowed    map[int]bool  // slowdown choices already applied
	// observableFired counts fired omission, slowdown and drop choices —
	// the kinds whose firing the adversary itself witnesses (crash firing is
	// visible to callers through sim.Result.Crashes instead).
	observableFired int
	// overDelivered records that some fired choice's delivery selection
	// extended past the action's real send list — the execution coincides
	// with the canonically smaller choice truncated to the send count.
	overDelivered bool
}

var (
	_ sim.Adversary         = (*Adversary)(nil)
	_ sim.DeliveryAdversary = (*Adversary)(nil)
	_ sim.Restarter         = (*Adversary)(nil)
)

// Adversary builds a fresh universal adversary replaying the vector.
func (v Vector) Adversary() *Adversary {
	a := &Adversary{
		choices:   v,
		counts:    make(map[int]int64, len(v)),
		delivered: make(map[int]int, len(v)),
		slowed:    make(map[int]bool, len(v)),
	}
	return a
}

// deliverMask builds the Deliver mask for a choice against an action with n
// virtual sends, recording over-delivery against the adversary.
func (a *Adversary) deliverMask(c Choice, n int) []bool {
	if c.Bits {
		if c.Mask>>uint(min(n, 64)) != 0 {
			a.overDelivered = true
		}
		if c.Mask == 0 {
			return nil
		}
		mask := make([]bool, min(n, 64))
		for i := range mask {
			mask[i] = c.Mask>>uint(i)&1 == 1
		}
		return mask
	}
	if c.Prefix > n {
		a.overDelivered = true
	}
	p := min(c.Prefix, n)
	if p == 0 {
		return nil
	}
	mask := make([]bool, p)
	for i := range mask {
		mask[i] = true
	}
	return mask
}

// OnAction implements sim.Adversary.
func (a *Adversary) OnAction(round int64, pid int, act sim.Action) sim.Verdict {
	for _, c := range a.choices {
		if c.Victim != pid {
			continue
		}
		if c.Slow > 0 {
			if round >= c.Round && !a.slowed[pid] {
				a.slowed[pid] = true
				a.observableFired++
				return sim.Verdict{Slow: c.Slow}
			}
			continue
		}
		if c.AtAction <= 0 {
			continue // round crash or drop: not an action trigger
		}
		a.counts[pid]++
		if a.counts[pid] != int64(c.AtAction) {
			return sim.Survive()
		}
		deliver := a.deliverMask(c, act.SendCount())
		if c.Omit {
			a.observableFired++
			return sim.Verdict{Omit: true, Deliver: deliver}
		}
		return sim.Verdict{Crash: true, KeepWork: c.KeepWork, Deliver: deliver, RestartAt: c.RestartAt}
	}
	return sim.Survive()
}

// OnDeliver implements sim.DeliveryAdversary: the DropNth-th delivery bound
// for a drop choice's victim is lost in transit.
func (a *Adversary) OnDeliver(_ int64, m sim.Message) bool {
	for _, c := range a.choices {
		if c.DropNth <= 0 || c.Victim != m.To {
			continue
		}
		a.delivered[m.To]++
		if a.delivered[m.To] == c.DropNth {
			a.observableFired++
			return false
		}
	}
	return true
}

// ScheduledCrashes implements sim.Adversary.
func (a *Adversary) ScheduledCrashes(r int64) []int {
	var pids []int
	for _, c := range a.choices {
		if c.isRoundCrash() && c.Round == r {
			pids = append(pids, c.Victim)
		}
	}
	sort.Ints(pids)
	return pids
}

// NextScheduledCrash implements sim.Adversary.
func (a *Adversary) NextScheduledCrash(after int64) int64 {
	next := int64(-1)
	for _, c := range a.choices {
		if c.isRoundCrash() && c.Round > after && (next < 0 || c.Round < next) {
			next = c.Round
		}
	}
	return next
}

// ScheduledRestarts implements sim.Restarter: round-crash choices carrying a
// restart round. (Action-crash restarts travel in the crash verdict itself.)
func (a *Adversary) ScheduledRestarts(r int64) []int {
	var pids []int
	for _, c := range a.choices {
		if c.isRoundCrash() && c.RestartAt == r {
			pids = append(pids, c.Victim)
		}
	}
	sort.Ints(pids)
	return pids
}

// NextScheduledRestart implements sim.Restarter.
func (a *Adversary) NextScheduledRestart(after int64) int64 {
	next := int64(-1)
	for _, c := range a.choices {
		if c.isRoundCrash() && c.RestartAt > after && (next < 0 || c.RestartAt < next) {
			next = c.RestartAt
		}
	}
	return next
}

// OverDelivered reports whether a fired choice selected delivery entries
// past the action's send list, i.e. the run coincides with a canonically
// smaller delivery choice.
func (a *Adversary) OverDelivered() bool { return a.overDelivered }

// UnfiredFaults reports whether some omission, slowdown or drop choice never
// fired (the victim retired first, or the drop index outran the victim's
// deliveries) — the execution coincides with a smaller vector's. Crash
// choices are excluded; compare sim.Result.Crashes with Vector.Crashes for
// those.
func (a *Adversary) UnfiredFaults() bool {
	observable := 0
	for _, c := range a.choices {
		if c.Omit || c.Slow > 0 || c.DropNth > 0 {
			observable++
		}
	}
	return a.observableFired < observable
}
