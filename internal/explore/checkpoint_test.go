package explore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// ckTestTarget is the instance the checkpoint tests walk: small enough to
// enumerate in milliseconds, large enough to span several chunks.
func ckTestTarget(t *testing.T) (Target, Space) {
	t.Helper()
	tg, err := NewTarget("b", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tg, testSpaces(3, 2)["full-alphabet"]
}

func textModuloEngineRuns(r *Report) (*Report, string) {
	cp := *r
	cp.EngineRuns = 0
	return &cp, cp.Text()
}

// TestEnumerateShardsMergeByteIdentical pins the cross-process fan-out:
// walking the space as independent shards and merging their checkpoints
// reproduces the unsharded report byte for byte.
func TestEnumerateShardsMergeByteIdentical(t *testing.T) {
	tg, sp := ckTestTarget(t)
	whole, err := tg.Enumerate(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const shards = 3
	var paths []string
	for i := 0; i < shards; i++ {
		path := filepath.Join(dir, "shard.ck")
		path = path + string(rune('0'+i))
		rep, err := tg.Enumerate(sp, Options{
			Shard:      Shard{Index: i, Count: shards},
			Checkpoint: path,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Walked != rep.WalkTotal {
			t.Fatalf("shard %d paused unexpectedly: %d of %d", i, rep.Walked, rep.WalkTotal)
		}
		paths = append(paths, path)
	}
	// Merge in scrambled order: MergeCheckpoints recovers shard order from
	// the ranges.
	merged, err := MergeCheckpoints([]string{paths[2], paths[0], paths[1]})
	if err != nil {
		t.Fatal(err)
	}
	w, wholeText := textModuloEngineRuns(whole)
	m, mergedText := textModuloEngineRuns(merged)
	if mergedText != wholeText {
		t.Fatalf("merged text differs from unsharded:\n%s\nvs\n%s", mergedText, wholeText)
	}
	if !reflect.DeepEqual(m, w) {
		t.Fatalf("merged report differs from unsharded:\n%+v\nvs\n%+v", m, w)
	}
	// Incomplete tilings must be refused.
	if _, err := MergeCheckpoints(paths[:2]); err == nil {
		t.Fatal("merge of 2 of 3 shards accepted")
	}
}

// TestCheckpointResumeMatches pins resumability: a walk paused at a chunk
// boundary and resumed from its checkpoint file ends byte-identical to the
// uninterrupted walk.
func TestCheckpointResumeMatches(t *testing.T) {
	tg, sp := ckTestTarget(t)
	whole, err := tg.Enumerate(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "walk.ck")
	opt := Options{Checkpoint: path, CheckpointEvery: 256, StopAfter: 300}
	paused, err := tg.Enumerate(sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if paused.Walked >= paused.WalkTotal {
		t.Fatalf("walk did not pause: %d of %d", paused.Walked, paused.WalkTotal)
	}
	if !strings.Contains(paused.Text(), "paused:") {
		t.Fatalf("paused report does not say so:\n%s", paused.Text())
	}
	// Resume twice: once with another pause in the middle, then to the end.
	opt.Resume = true
	paused2, err := tg.Enumerate(sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if paused2.Walked <= paused.Walked || paused2.Walked >= paused2.WalkTotal {
		t.Fatalf("second leg walked %d (first %d, total %d)",
			paused2.Walked, paused.Walked, paused2.WalkTotal)
	}
	opt.StopAfter = 0
	resumed, err := tg.Enumerate(sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	w, wholeText := textModuloEngineRuns(whole)
	r, resumedText := textModuloEngineRuns(resumed)
	if resumedText != wholeText {
		t.Fatalf("resumed text differs from uninterrupted:\n%s\nvs\n%s", resumedText, wholeText)
	}
	if !reflect.DeepEqual(r, w) {
		t.Fatalf("resumed report differs:\n%+v\nvs\n%+v", r, w)
	}
	// Resuming against a different space or target must be refused.
	other := NewSpace(3, 2, 3, 1)
	if _, err := tg.Enumerate(other, opt); err == nil {
		t.Fatal("resume against a different space accepted")
	}
	tg2, err := NewTarget("a", 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg2.Enumerate(sp, opt); err == nil {
		t.Fatal("resume against a different target accepted")
	}
}

// TestCheckpointLoadRejectsCorruption pins the loud-failure modes one by
// one: wrong format, wrong version, flipped content, truncation.
func TestCheckpointLoadRejectsCorruption(t *testing.T) {
	tg, sp := ckTestTarget(t)
	path := filepath.Join(t.TempDir(), "walk.ck")
	if _, err := tg.Enumerate(sp, Options{Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("pristine checkpoint refused: %v", err)
	}
	corrupt := func(name string, mutate func([]byte) []byte, wantSub string) {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "bad.ck")
			if err := os.WriteFile(p, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadCheckpoint(p)
			if err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			if !strings.Contains(err.Error(), wantSub) {
				t.Fatalf("error %q does not mention %q", err, wantSub)
			}
		})
	}
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] }, "unparseable")
	corrupt("flipped-content", func(b []byte) []byte {
		// Still valid JSON, different content: only the checksum catches it.
		return []byte(strings.Replace(string(b), `"Mode": "full"`, `"Mode": "falu"`, 1))
	}, "checksum mismatch")
	corrupt("wrong-format", func(b []byte) []byte {
		return []byte(strings.Replace(string(b), checkpointFormat, "other-format", 1))
	}, "format")
	corrupt("wrong-version", func(b []byte) []byte {
		var ck Checkpoint
		if err := json.Unmarshal(b, &ck); err != nil {
			t.Fatal(err)
		}
		ck.Version = 99
		out, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}, "version")
}

// FuzzCheckpoint throws arbitrary bytes at the checkpoint loader: it must
// never panic, must reject anything that does not round-trip its checksum,
// and whenever it does accept a file, resuming from it must reproduce the
// uninterrupted walk exactly.
func FuzzCheckpoint(f *testing.F) {
	tg, err := NewTarget("trivial", 3, 3, 2)
	if err != nil {
		f.Fatal(err)
	}
	sp := NewSpace(3, 2, 2, 1)
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.ck")
	whole, err := tg.Enumerate(sp, Options{Checkpoint: seedPath})
	if err != nil {
		f.Fatal(err)
	}
	_, wholeText := textModuloEngineRuns(whole)
	finished, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	pausedPath := filepath.Join(dir, "paused.ck")
	if _, err := tg.Enumerate(sp, Options{
		Checkpoint: pausedPath, CheckpointEvery: 8, StopAfter: 8,
	}); err != nil {
		f.Fatal(err)
	}
	paused, err := os.ReadFile(pausedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(finished)
	f.Add(paused)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"Format":"explore-checkpoint","Version":1}`))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := parseCheckpoint(data, "fuzz.ck")
		if err != nil {
			return // rejected loudly, as it should be
		}
		// Accepted: the checksum must actually validate the content...
		sum, digestErr := ck.digest()
		if digestErr != nil || sum != ck.Sum {
			t.Fatalf("accepted checkpoint fails its own digest: %v / %s vs %s", digestErr, sum, ck.Sum)
		}
		// ...and if it belongs to our walk, resuming from it must land on
		// the uninterrupted result.
		norm, normErr := sp.normalize()
		if normErr != nil {
			t.Fatal(normErr)
		}
		if ck.matches(tg, norm, "canonical", Shard{}, norm.canonCount()) != nil {
			return
		}
		path := filepath.Join(t.TempDir(), "fuzz.ck")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := tg.Enumerate(sp, Options{Checkpoint: path, Resume: true})
		if err != nil {
			t.Fatalf("resume from accepted checkpoint failed: %v", err)
		}
		if _, text := textModuloEngineRuns(rep); text != wholeText {
			t.Fatalf("resume from accepted checkpoint diverges:\n%s\nvs\n%s", text, wholeText)
		}
	})
}
