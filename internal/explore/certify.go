package explore

import (
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/sim"
)

// Bounds are the per-run certification limits for a target; zero fields are
// unchecked (baseline protocols certify completion and invariants only).
// Effort is the paper's combined measure, work + messages.
type Bounds struct {
	Work     int64
	Messages int64
	Rounds   int64
	Effort   int64
}

// Target is one (protocol, n, t, f) instance under certification. NewProcs
// must build fresh process bodies per run (protocol state is single-use);
// runs execute through internal/core's pooled engines.
type Target struct {
	Protocol     string
	N, T         int
	MaxCrashes   int
	SingleActive bool
	// Symmetric declares the protocol exchangeable under PID renaming:
	// no branch, role or message depends on the process identity, so
	// renaming a schedule's victims renames the execution and nothing
	// else. Enumerate then walks canonical orbit representatives only and
	// weights each certificate by its orbit size. Declarations are guarded
	// by SymmetryWitness (see canon.go): of this repository's protocols
	// only the trivial baseline qualifies — A, B and single-checkpoint
	// give process 0 the initial active role and order takeover chains by
	// PID, C and naive chunk work by PID, and D's agreement phase is
	// PID-ordered — and the witness test pins exactly that.
	Symmetric bool
	// MaxRound aborts runaway executions; an abort is reported as a
	// violation. 0 means the engine default.
	MaxRound int64
	// Bandwidth caps per-process outbound transmissions per round (the
	// congested-clique model; 0 = unlimited). The gossip-cap target
	// certifies its bounds under this cap.
	Bandwidth int
	NewProcs  func() (core.Procs, error)
	Bounds    Bounds
}

// NewTarget builds a certification target for a named protocol (the
// cmd/doall names: a, b, c, c-lowmsg, d, gossip, gossip-cap, trivial,
// single-checkpoint, naive). maxCrashes is the f the bounds assume; use t-1
// or less to preserve the one-survivor guarantee. Protocols A-D get the
// paper's bounds with this reproduction's model-adjusted round constants;
// gossip (and its bandwidth-capped variant) gets the CGKS-style work and
// message bounds from core; trivial gets its exact tn work bound; the other
// baselines certify the completion guarantee and the single-active
// invariant only.
func NewTarget(protocol string, n, t, maxCrashes int) (Target, error) {
	if t <= 0 || n < 0 {
		return Target{}, fmt.Errorf("explore: bad instance n=%d t=%d", n, t)
	}
	if maxCrashes < 0 || maxCrashes >= t {
		return Target{}, fmt.Errorf("explore: maxCrashes = %d, want 0..t-1", maxCrashes)
	}
	tg := Target{Protocol: protocol, N: n, T: t, MaxCrashes: maxCrashes, SingleActive: true}
	nPrime := int64(max(n, t))
	rootT := float64(t) * math.Sqrt(float64(t))
	logT := max(group.CeilLog2(t), 1)
	f := maxCrashes
	switch protocol {
	case "a":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolAProcs(core.ABConfig{N: n, T: t}) }
		tg.Bounds = Bounds{
			Work:     3 * nPrime,
			Messages: int64(9 * rootT),
			Rounds:   core.ProtocolARoundBound(n, t),
		}
	case "b":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolBProcs(core.ABConfig{N: n, T: t}) }
		tg.Bounds = Bounds{
			Work:     3 * nPrime,
			Messages: int64(10 * rootT),
			Rounds:   core.ProtocolBRoundBound(n, t),
		}
	case "c":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolCProcs(core.CConfig{N: n, T: t}) }
		tg.Bounds = Bounds{
			Work:     int64(n + 2*t),
			Messages: int64(n + 8*t*logT),
			Rounds:   core.ProtocolCRoundBound(n, t, 1),
		}
	case "c-lowmsg":
		every := max((n+t-1)/t, 1)
		tg.NewProcs = func() (core.Procs, error) {
			return core.ProtocolCProcs(core.CConfig{N: n, T: t, ReportEvery: every})
		}
		tg.Bounds = Bounds{
			Work:     int64(2 * (n + 2*t)),
			Messages: int64(10 * t * logT),
			Rounds:   core.ProtocolCRoundBound(n, t, every),
		}
	case "d":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolDProcs(core.DConfig{N: n, T: t}) }
		tg.SingleActive = false
		// Theorem 4.1(2): arbitrary schedules may force the revert to
		// Protocol A, so certify against the reverted bounds.
		tg.Bounds = Bounds{
			Work:     int64(4 * max(n, t)),
			Messages: int64((4*f+2)*t*t) + int64(9*rootT/(2*math.Sqrt2)),
			Rounds:   core.ProtocolDRoundBound(n, t, f),
		}
	case "gossip", "gossip-cap":
		// The successor protocol: leader-free epoch gossip (see
		// core/gossip_step.go). gossip-cap runs the same protocol under a
		// congested-clique bandwidth cap of half the fanout, which defers
		// each epoch's rumor overflow by one round (lag 1 in the bounds).
		tg.NewProcs = func() (core.Procs, error) { return core.GossipProcs(core.GossipConfig{N: n, T: t}) }
		tg.SingleActive = false
		lag := 0
		if protocol == "gossip-cap" {
			lag = 1
			tg.Bandwidth = max(1, (core.GossipFanout(t)+1)/2)
		}
		tg.Bounds = Bounds{
			Work:     core.GossipWorkBound(n, t, f, lag),
			Messages: core.GossipMessageBound(n, t, f, lag),
			Rounds:   core.GossipRoundBound(n, t, f, lag),
		}
	case "trivial":
		// The paper's §1 baseline: every process performs every unit and
		// never communicates. It is anonymous by construction — the one
		// protocol here that survives the SymmetryWitness cross-check —
		// and its work bound tn is exact even under restarts (a process
		// crashes at most once and never redoes a counted unit).
		tg.NewProcs = func() (core.Procs, error) { return core.TrivialProcs(n), nil }
		tg.SingleActive = false
		tg.Symmetric = true
		tg.Bounds = Bounds{Work: satMul(int64(t), int64(n))}
	case "single-checkpoint":
		tg.NewProcs = func() (core.Procs, error) {
			scripts, err := core.SingleCheckpointScripts(n, t)
			return core.Procs{Scripts: scripts}, err
		}
	case "naive":
		tg.NewProcs = func() (core.Procs, error) {
			scripts, err := core.NaiveSpreadScripts(core.NaiveConfig{N: n, T: t})
			return core.Procs{Scripts: scripts}, err
		}
	default:
		return Target{}, fmt.Errorf("explore: unknown protocol %q", protocol)
	}
	if b := tg.Bounds; b.Work > 0 {
		tg.Bounds.Effort = satAdd(b.Work, b.Messages)
		// A runaway execution must terminate the walk: abort well past the
		// certified round bound and report the abort as a violation. A
		// saturated round bound (Protocol C at larger n + t) keeps the
		// engine default instead, as does an unchecked one (trivial, whose
		// rounds depend on the slowdown factors in play).
		if b.Rounds > 0 && b.Rounds < countSat/4 {
			tg.MaxRound = 4 * b.Rounds
		}
	}
	return tg, nil
}

// DefaultDepth probes the target failure-free and returns an action-depth
// horizon covering every process's committed actions plus slack for the
// extra takeover chores a crash schedule can induce.
func (tg Target) DefaultDepth() (int, error) {
	res, _, err := tg.runVector(nil)
	if err != nil {
		return 0, err
	}
	depth := int64(0)
	for _, p := range res.PerProc {
		if p.Actions > depth {
			depth = p.Actions
		}
	}
	return int(depth) + 2, nil
}

// runVector replays one decision vector on a pooled engine.
func (tg Target) runVector(vec Vector) (sim.Result, *Adversary, error) {
	procs, err := tg.NewProcs()
	if err != nil {
		return sim.Result{}, nil, err
	}
	adv := vec.Adversary()
	opt := core.RunOptions{Adversary: adv, MaxRound: tg.MaxRound, Bandwidth: tg.Bandwidth}
	if tg.SingleActive {
		opt.MaxActive = 1
	}
	res, err := core.RunProcs(tg.N, tg.T, procs, opt)
	return res, adv, err
}

// runProfiled replays a parent vector while profiling pid (the sibling
// block's varying victim) for the prefix-equivalence predicates.
func (tg Target) runProfiled(vec Vector, pid int) (sim.Result, *runProfile, error) {
	procs, err := tg.NewProcs()
	if err != nil {
		return sim.Result{}, nil, err
	}
	prof := &runProfile{pid: pid}
	adv := &profilingAdversary{Adversary: vec.Adversary(), prof: prof}
	opt := core.RunOptions{Adversary: adv, MaxRound: tg.MaxRound, Bandwidth: tg.Bandwidth}
	if tg.SingleActive {
		opt.MaxActive = 1
	}
	res, err := core.RunProcs(tg.N, tg.T, procs, opt)
	return res, prof, err
}

// Violation is one certification failure, with the schedule that caused it
// as a replayable vector.
type Violation struct {
	Vector string
	Reason string
}

// Certification is the verdict on one replayed schedule.
type Certification struct {
	Vector     Vector
	Result     sim.Result
	Violations []Violation
	// Collapsed reports that the execution coincides with a canonically
	// smaller vector's: a planned fault never fired or a delivery choice
	// extended past the action's send list.
	Collapsed bool
}

// Certify replays one schedule and checks the completion guarantee, the
// invariants (via the engine) and the target's bounds.
func (tg Target) Certify(vec Vector) Certification {
	res, adv, err := tg.runVector(vec)
	if err != nil {
		return tg.certifyResult(vec, res, false, err)
	}
	collapsed := res.Crashes < vec.Crashes() || adv.OverDelivered() || adv.UnfiredFaults()
	return tg.certifyResult(vec, res, collapsed, nil)
}

// certifyResult builds the certification verdict for a replay outcome —
// fresh or shared through the prefix-equivalence walk; the checks are a
// pure function of the result, which is what makes replay sharing sound.
func (tg Target) certifyResult(vec Vector, res sim.Result, collapsed bool, runErr error) Certification {
	cert := Certification{Vector: vec, Result: res}
	fail := func(format string, args ...any) {
		cert.Violations = append(cert.Violations, Violation{
			Vector: vec.String(), Reason: fmt.Sprintf(format, args...),
		})
	}
	if runErr != nil {
		fail("run error: %v", runErr)
		return cert
	}
	cert.Collapsed = collapsed
	if err := core.CheckCompletion(res); err != nil {
		fail("%v", err)
	}
	check := func(name string, measured, bound int64) {
		if bound > 0 && measured > bound {
			fail("%s %d exceeds bound %d", name, measured, bound)
		}
	}
	check("work", res.WorkTotal, tg.Bounds.Work)
	check("messages", res.Messages, tg.Bounds.Messages)
	check("rounds", res.Rounds, tg.Bounds.Rounds)
	check("effort", res.Effort(), tg.Bounds.Effort)
	return cert
}

// Extreme is the worst value of one metric over a walk, with the schedule
// that realized it. Value is -1 until something is observed.
type Extreme struct {
	Value   int64
	Vector  string
	Crashes int
}

func (e *Extreme) observe(value int64, vec Vector, crashes int) {
	// Strict improvement only: on ties the first vector in index order wins,
	// which keeps reports independent of sharding.
	if value > e.Value {
		e.Value, e.Vector, e.Crashes = value, vec.String(), crashes
	}
}

// maxViolations caps the violations retained verbatim in a report; the
// count keeps the full total.
const maxViolations = 16

// Report aggregates a schedule-space walk.
type Report struct {
	Protocol   string
	N, T       int
	MaxCrashes int
	Bounds     Bounds
	// Mode is the walk mode: "full" visits every schedule, "canonical"
	// (Symmetric targets) visits one orbit representative per PID-renaming
	// class and weights its certificate by the orbit size.
	Mode string
	// RawSpace is the space's raw schedule count (saturating at countSat).
	RawSpace int64
	// Schedules counts certified schedules — raw executions in full mode,
	// orbit-weighted certificates in canonical mode; Collapsed counts those
	// coinciding with a canonically smaller vector's execution (still
	// certified), on the same scale.
	Schedules int64
	Collapsed int64
	// Walked counts walk indices certified so far and WalkTotal the range
	// this report is responsible for (the whole walk, or its shard);
	// Walked < WalkTotal marks a paused, resumable report.
	Walked    int64
	WalkTotal int64
	// EngineRuns counts fresh engine replays spent, parent-profiling runs
	// included: Schedules/EngineRuns is the combined symmetry + pruning
	// win. It depends on where the walk's chunk boundaries fall (a sibling
	// block split across a shard or resume boundary re-profiles its
	// parent), so it is diagnostics, not part of the byte-identical report
	// surface: Text omits it and resumed/sharded runs may differ here.
	EngineRuns int64
	// ByCrashes histograms executions by crashes actually fired.
	ByCrashes []int64
	// WorstX are the worst observed metrics with their replayable vectors.
	WorstWork     Extreme
	WorstMessages Extreme
	WorstRounds   Extreme
	WorstEffort   Extreme
	// Violations retains the first maxViolations failures in index order;
	// ViolationCount is the full total (orbit-weighted in canonical mode).
	// A clean certification has 0.
	Violations     []Violation
	ViolationCount int64
}

// observe folds one certification in, weighted by its orbit size (1 in
// full mode).
func (r *Report) observe(cert Certification, orbit int64) {
	r.Walked++
	r.Schedules = satAdd(r.Schedules, orbit)
	if cert.Collapsed {
		r.Collapsed = satAdd(r.Collapsed, orbit)
	}
	crashes := cert.Result.Crashes
	for len(r.ByCrashes) <= crashes {
		r.ByCrashes = append(r.ByCrashes, 0)
	}
	r.ByCrashes[crashes] = satAdd(r.ByCrashes[crashes], orbit)
	res := cert.Result
	r.WorstWork.observe(res.WorkTotal, cert.Vector, crashes)
	r.WorstMessages.observe(res.Messages, cert.Vector, crashes)
	r.WorstRounds.observe(res.Rounds, cert.Vector, crashes)
	r.WorstEffort.observe(res.Effort(), cert.Vector, crashes)
	if len(cert.Violations) > 0 {
		r.ViolationCount = satAdd(r.ViolationCount, satMul(orbit, int64(len(cert.Violations))))
		for _, v := range cert.Violations {
			if len(r.Violations) < maxViolations {
				r.Violations = append(r.Violations, v)
			}
		}
	}
}

// merge folds b (a later shard) into r; shards are merged in index order so
// the fold is deterministic for every worker count.
func (r *Report) merge(b *Report) {
	r.Schedules = satAdd(r.Schedules, b.Schedules)
	r.Collapsed = satAdd(r.Collapsed, b.Collapsed)
	r.Walked += b.Walked
	r.EngineRuns += b.EngineRuns
	for len(r.ByCrashes) < len(b.ByCrashes) {
		r.ByCrashes = append(r.ByCrashes, 0)
	}
	for i, c := range b.ByCrashes {
		r.ByCrashes[i] = satAdd(r.ByCrashes[i], c)
	}
	mergeExtreme := func(a *Extreme, b Extreme) {
		if b.Value > a.Value { // ties keep the earlier shard's vector
			*a = b
		}
	}
	mergeExtreme(&r.WorstWork, b.WorstWork)
	mergeExtreme(&r.WorstMessages, b.WorstMessages)
	mergeExtreme(&r.WorstRounds, b.WorstRounds)
	mergeExtreme(&r.WorstEffort, b.WorstEffort)
	for _, v := range b.Violations {
		if len(r.Violations) < maxViolations {
			r.Violations = append(r.Violations, v)
		}
	}
	r.ViolationCount = satAdd(r.ViolationCount, b.ViolationCount)
}

// Shard names one of Count deterministic contiguous slices of a walk, for
// fanning an enumeration out across OS processes: shard i covers walk
// indices [i·total/Count, (i+1)·total/Count). The zero Shard is the whole
// walk. Finished shard checkpoints merge back via MergeCheckpoints.
type Shard struct {
	Index, Count int
}

func (sh Shard) rangeOf(total int64) (lo, hi int64, err error) {
	if sh.Count == 0 && sh.Index == 0 {
		return 0, total, nil
	}
	if sh.Count <= 0 || sh.Index < 0 || sh.Index >= sh.Count {
		return 0, 0, fmt.Errorf("explore: bad shard %d/%d", sh.Index, sh.Count)
	}
	lo = int64(sh.Index) * (total / int64(sh.Count))
	hi = int64(sh.Index+1) * (total / int64(sh.Count))
	if sh.Index == sh.Count-1 {
		hi = total
	}
	return lo, hi, nil
}

// Options configures a schedule-space walk.
type Options struct {
	// Jobs caps the parallel shards (0 = GOMAXPROCS, 1 = sequential); the
	// report is identical for every value.
	Jobs int
	// MaxSchedules refuses walks longer than this (default 1<<22). The
	// guard applies to the walked count — canonical representatives for
	// Symmetric targets — so symmetry reduction makes previously refused
	// spaces tractable instead of erroring.
	MaxSchedules int64
	// Full forces full (non-canonical) enumeration even for Symmetric
	// targets, e.g. for symmetry cross-checks.
	Full bool
	// NoPrune disables prefix-equivalence pruning: every schedule replays
	// from round 0. Reports are byte-identical either way (modulo
	// EngineRuns); this exists for the equivalence property tests and as
	// an escape hatch.
	NoPrune bool
	// Force overrides the hard raw-schedule ceiling (rawCeiling); beyond
	// it the weighted counters saturate at countSat.
	Force bool
	// Checkpoint, when set, persists enumeration progress to this file
	// after every chunk of CheckpointEvery indices, so a killed run
	// resumes instead of restarting.
	Checkpoint string
	// Resume continues from the Checkpoint file (which must match the
	// target, space, mode and shard) instead of starting fresh.
	Resume bool
	// CheckpointEvery is the chunk length between checkpoint writes
	// (default 1<<14 walk indices).
	CheckpointEvery int64
	// StopAfter, when > 0, pauses the walk at the first chunk boundary at
	// or past this many indices processed in this invocation (requires
	// Checkpoint). The report comes back with Walked < WalkTotal; a
	// Resume run completes it. This is how the CI resume smoke kills a
	// run deterministically.
	StopAfter int64
	// Shard restricts the walk to one deterministic contiguous slice.
	Shard Shard
}

func (o Options) maxSchedules() int64 {
	if o.MaxSchedules > 0 {
		return o.MaxSchedules
	}
	return 1 << 22
}

// rawCeiling is the hard raw-schedule ceiling: above it even orbit-weighted
// certificate counting saturates, so Enumerate refuses unless Options.Force
// acknowledges the saturation. A var so the guard tests can lower it.
var rawCeiling = int64(1) << 40

// shardSize is the fixed per-shard schedule count for the parallel fan-out.
// It must not depend on the worker count: shard boundaries define which
// vector a tie-broken extreme reports, and those are pinned byte-identical
// across -jobs.
const shardSize = 1024

// Enumerate exhaustively certifies the space: every schedule in full mode,
// every canonical orbit representative (weighted by orbit size) for
// Symmetric targets. Chunks fan out via the deterministic batch runner over
// pooled engines; within each walk range, sibling blocks share replays via
// prefix-equivalence pruning. See Options for checkpointing, sharding and
// the size guards.
func (tg Target) Enumerate(space Space, opt Options) (*Report, error) {
	norm, err := space.normalize()
	if err != nil {
		return nil, err
	}
	canonical := tg.Symmetric && !opt.Full
	mode := "full"
	raw := norm.count()
	total := raw
	if canonical {
		mode = "canonical"
		total = norm.canonCount()
	}
	if raw >= rawCeiling && !opt.Force {
		return nil, fmt.Errorf("explore: space has %d raw schedules, at or above the %d hard ceiling; counters would saturate — pass Force (doall explore -force) to certify anyway",
			raw, rawCeiling)
	}
	if total > opt.maxSchedules() {
		if canonical {
			return nil, fmt.Errorf("explore: space has %d canonical representatives (%d raw), above the %d walk limit (shrink depth/crashes or raise MaxSchedules)",
				total, raw, opt.maxSchedules())
		}
		return nil, fmt.Errorf("explore: space has %d schedules, above the %d limit (shrink depth/crashes or raise MaxSchedules)",
			total, opt.maxSchedules())
	}
	lo, hi, err := opt.Shard.rangeOf(total)
	if err != nil {
		return nil, err
	}
	if opt.StopAfter > 0 && opt.Checkpoint == "" {
		return nil, fmt.Errorf("explore: StopAfter needs a Checkpoint path to pause into")
	}
	cursor := lo
	out := tg.newReport(mode, raw)
	if opt.Resume {
		if opt.Checkpoint == "" {
			return nil, fmt.Errorf("explore: Resume needs a Checkpoint path")
		}
		ck, err := LoadCheckpoint(opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		if err := ck.matches(tg, norm, mode, opt.Shard, total); err != nil {
			return nil, err
		}
		cursor = ck.Cursor
		out = ck.Report
	}
	chunk := opt.CheckpointEvery
	if chunk <= 0 {
		chunk = 1 << 14
	}
	processed := int64(0)
	for cursor < hi {
		end := min(cursor+chunk, hi)
		parts := batch.MapChunks(opt.Jobs, cursor, end, shardSize, func(a, b int64) *Report {
			return tg.walkRange(norm, canonical, a, b, opt.NoPrune)
		})
		for _, p := range parts {
			out.merge(p)
		}
		processed += end - cursor
		cursor = end
		if opt.Checkpoint != "" {
			if err := tg.saveCheckpoint(opt.Checkpoint, norm, mode, opt.Shard, lo, hi, cursor, total, out); err != nil {
				return nil, err
			}
		}
		if opt.StopAfter > 0 && processed >= opt.StopAfter && cursor < hi {
			break
		}
	}
	out.WalkTotal = hi - lo
	return out, nil
}

// walkRange certifies walk indices [lo, hi) sequentially, sharing replays
// across sibling blocks unless noPrune. It is the unit batch.MapChunks fans
// out; reports fold deterministically because observation order is index
// order regardless of worker count.
func (tg Target) walkRange(s Space, canonical bool, lo, hi int64, noPrune bool) *Report {
	raw := int64(0) // per-part reports carry no RawSpace; the outer report does
	rep := tg.newReport("", raw)
	rep.RawSpace = 0
	w := walker{tg: tg, s: s, canonical: canonical, noPrune: noPrune, rep: rep}
	for i := lo; i < hi; i++ {
		w.step(i)
	}
	return rep
}

// walker holds the per-range walk state: the current sibling block's parent
// replay/profile and the effKey cache of firing siblings.
type walker struct {
	tg        Target
	s         Space
	canonical bool
	noPrune   bool
	rep       *Report

	// Current block identity: victim count, leading victims and digits.
	blockValid   bool
	blockK       int
	blockVictims []int
	blockDigits  []int
	blockLead    Vector // the parent's choices (leading k-1)

	parentRes sim.Result
	parentErr error
	prof      *runProfile
	cache     map[effKey]*cachedRun

	victims []int // scratch
	digits  []int // scratch
	vec     Vector
}

func (w *walker) step(i int64) {
	var orbit int64 = 1
	if w.canonical {
		w.digits = w.s.canonDecode(i, w.digits)
		k := len(w.digits)
		w.victims = append(w.victims[:0], w.s.Victims[:k]...)
		orbit = w.s.orbitSize(w.digits)
	} else {
		w.victims, w.digits = w.s.fullDecode(i, w.victims, w.digits)
	}
	k := len(w.digits)
	if k == 0 {
		res, adv, err := w.tg.runVector(nil)
		w.rep.EngineRuns++
		collapsed := err == nil && (adv.OverDelivered() || adv.UnfiredFaults())
		w.rep.observe(w.tg.certifyResult(nil, res, collapsed, err), orbit)
		return
	}
	if w.noPrune {
		w.buildVec(k)
		w.rep.EngineRuns++
		w.rep.observe(w.tg.Certify(w.vec), orbit)
		return
	}
	if !w.sameBlock(k) {
		w.startBlock(k)
	}
	w.buildVec(k)
	vec := w.vec
	last := vec[k-1]
	if w.parentErr != nil {
		// No usable profile: replay directly.
		w.rep.EngineRuns++
		w.rep.observe(w.tg.Certify(vec), orbit)
		return
	}
	fires, key, overDel, dedup := w.prof.classify(last, w.parentRes.Rounds)
	if !fires {
		// The child's execution is the parent's; the planned fault never
		// firing makes the schedule collapsed by definition.
		w.rep.observe(w.tg.certifyResult(vec, w.parentRes, true, nil), orbit)
		return
	}
	if dedup {
		if cr, ok := w.cache[key]; ok && cr.usableFor(overDel) {
			cert := w.tg.certifyResult(vec, cr.res, cr.collapsedFor(vec, overDel), cr.err)
			w.rep.observe(cert, orbit)
			return
		}
		res, adv, err := w.tg.runVector(vec)
		w.rep.EngineRuns++
		cr := &cachedRun{res: res, err: err, ownOverDel: overDel}
		var collapsed bool
		if err == nil {
			cr.overDel = adv.OverDelivered()
			cr.unfired = adv.UnfiredFaults()
			collapsed = res.Crashes < vec.Crashes() || cr.overDel || cr.unfired
		}
		if old, ok := w.cache[key]; !ok || (old.ownOverDel && !overDel) {
			w.cache[key] = cr
		}
		w.rep.observe(w.tg.certifyResult(vec, res, collapsed, err), orbit)
		return
	}
	w.rep.EngineRuns++
	w.rep.observe(w.tg.Certify(vec), orbit)
}

// sameBlock reports whether index state (k, leading victims, leading
// digits) still matches the current sibling block.
func (w *walker) sameBlock(k int) bool {
	if !w.blockValid || k != w.blockK {
		return false
	}
	for j := 0; j < k-1; j++ {
		if w.victims[j] != w.blockVictims[j] || w.digits[j] != w.blockDigits[j] {
			return false
		}
	}
	// The varying victim must match too (in full mode the victim set
	// changes while leading digits may not).
	return w.victims[k-1] == w.blockVictims[k-1]
}

// startBlock profiles the new block's parent: the leading k-1 choices
// replayed once, observing the varying victim.
func (w *walker) startBlock(k int) {
	w.blockValid = true
	w.blockK = k
	w.blockVictims = append(w.blockVictims[:0], w.victims[:k]...)
	w.blockDigits = append(w.blockDigits[:0], w.digits[:k]...)
	w.blockLead = w.blockLead[:0]
	for j := 0; j < k-1; j++ {
		w.blockLead = append(w.blockLead, w.s.decodeChoice(w.victims[j], w.digits[j]))
	}
	w.parentRes, w.prof, w.parentErr = w.tg.runProfiled(w.blockLead, w.victims[k-1])
	w.rep.EngineRuns++
	w.cache = make(map[effKey]*cachedRun, 8)
}

// buildVec materializes the current index's vector into the scratch slice:
// the block's leading choices plus the varying last choice.
func (w *walker) buildVec(k int) {
	w.vec = w.vec[:0]
	for j := 0; j < k-1; j++ {
		w.vec = append(w.vec, w.s.decodeChoice(w.victims[j], w.digits[j]))
	}
	w.vec = append(w.vec, w.s.decodeChoice(w.victims[k-1], w.digits[k-1]))
}

func (tg Target) newReport(mode string, raw int64) *Report {
	return &Report{
		Protocol: tg.Protocol, N: tg.N, T: tg.T,
		MaxCrashes: tg.MaxCrashes, Bounds: tg.Bounds,
		Mode: mode, RawSpace: raw,
		WorstWork:     Extreme{Value: -1},
		WorstMessages: Extreme{Value: -1},
		WorstRounds:   Extreme{Value: -1},
		WorstEffort:   Extreme{Value: -1},
	}
}
