package explore

import (
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/sim"
)

// Bounds are the per-run certification limits for a target; zero fields are
// unchecked (baseline protocols certify completion and invariants only).
// Effort is the paper's combined measure, work + messages.
type Bounds struct {
	Work     int64
	Messages int64
	Rounds   int64
	Effort   int64
}

// Target is one (protocol, n, t, f) instance under certification. NewProcs
// must build fresh process bodies per run (protocol state is single-use);
// runs execute through internal/core's pooled engines.
type Target struct {
	Protocol     string
	N, T         int
	MaxCrashes   int
	SingleActive bool
	// MaxRound aborts runaway executions; an abort is reported as a
	// violation. 0 means the engine default.
	MaxRound int64
	NewProcs func() (core.Procs, error)
	Bounds   Bounds
}

// NewTarget builds a certification target for a named protocol (the
// cmd/doall names: a, b, c, c-lowmsg, d, single-checkpoint, naive).
// maxCrashes is the f the bounds assume; use t-1 or less to preserve the
// one-survivor guarantee. Protocols A-D get the paper's bounds with this
// reproduction's model-adjusted round constants; the baselines certify the
// completion guarantee and the single-active invariant only.
func NewTarget(protocol string, n, t, maxCrashes int) (Target, error) {
	if t <= 0 || n < 0 {
		return Target{}, fmt.Errorf("explore: bad instance n=%d t=%d", n, t)
	}
	if maxCrashes < 0 || maxCrashes >= t {
		return Target{}, fmt.Errorf("explore: maxCrashes = %d, want 0..t-1", maxCrashes)
	}
	tg := Target{Protocol: protocol, N: n, T: t, MaxCrashes: maxCrashes, SingleActive: true}
	nPrime := int64(max(n, t))
	rootT := float64(t) * math.Sqrt(float64(t))
	logT := max(group.CeilLog2(t), 1)
	f := maxCrashes
	switch protocol {
	case "a":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolAProcs(core.ABConfig{N: n, T: t}) }
		tg.Bounds = Bounds{
			Work:     3 * nPrime,
			Messages: int64(9 * rootT),
			Rounds:   core.ProtocolARoundBound(n, t),
		}
	case "b":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolBProcs(core.ABConfig{N: n, T: t}) }
		tg.Bounds = Bounds{
			Work:     3 * nPrime,
			Messages: int64(10 * rootT),
			Rounds:   core.ProtocolBRoundBound(n, t),
		}
	case "c":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolCProcs(core.CConfig{N: n, T: t}) }
		tg.Bounds = Bounds{
			Work:     int64(n + 2*t),
			Messages: int64(n + 8*t*logT),
			Rounds:   core.ProtocolCRoundBound(n, t, 1),
		}
	case "c-lowmsg":
		every := max((n+t-1)/t, 1)
		tg.NewProcs = func() (core.Procs, error) {
			return core.ProtocolCProcs(core.CConfig{N: n, T: t, ReportEvery: every})
		}
		tg.Bounds = Bounds{
			Work:     int64(2 * (n + 2*t)),
			Messages: int64(10 * t * logT),
			Rounds:   core.ProtocolCRoundBound(n, t, every),
		}
	case "d":
		tg.NewProcs = func() (core.Procs, error) { return core.ProtocolDProcs(core.DConfig{N: n, T: t}) }
		tg.SingleActive = false
		// Theorem 4.1(2): arbitrary schedules may force the revert to
		// Protocol A, so certify against the reverted bounds.
		tg.Bounds = Bounds{
			Work:     int64(4 * max(n, t)),
			Messages: int64((4*f+2)*t*t) + int64(9*rootT/(2*math.Sqrt2)),
			Rounds:   core.ProtocolDRoundBound(n, t, f),
		}
	case "single-checkpoint":
		tg.NewProcs = func() (core.Procs, error) {
			scripts, err := core.SingleCheckpointScripts(n, t)
			return core.Procs{Scripts: scripts}, err
		}
	case "naive":
		tg.NewProcs = func() (core.Procs, error) {
			scripts, err := core.NaiveSpreadScripts(core.NaiveConfig{N: n, T: t})
			return core.Procs{Scripts: scripts}, err
		}
	default:
		return Target{}, fmt.Errorf("explore: unknown protocol %q", protocol)
	}
	if b := tg.Bounds; b.Work > 0 {
		tg.Bounds.Effort = satAdd(b.Work, b.Messages)
		// A runaway execution must terminate the walk: abort well past the
		// certified round bound and report the abort as a violation. A
		// saturated round bound (Protocol C at larger n + t) keeps the
		// engine default instead.
		if b.Rounds < countSat/4 {
			tg.MaxRound = 4 * b.Rounds
		}
	}
	return tg, nil
}

// DefaultDepth probes the target failure-free and returns an action-depth
// horizon covering every process's committed actions plus slack for the
// extra takeover chores a crash schedule can induce.
func (tg Target) DefaultDepth() (int, error) {
	res, _, err := tg.runVector(nil)
	if err != nil {
		return 0, err
	}
	depth := int64(0)
	for _, p := range res.PerProc {
		if p.Actions > depth {
			depth = p.Actions
		}
	}
	return int(depth) + 2, nil
}

// runVector replays one decision vector on a pooled engine.
func (tg Target) runVector(vec Vector) (sim.Result, *Adversary, error) {
	procs, err := tg.NewProcs()
	if err != nil {
		return sim.Result{}, nil, err
	}
	adv := vec.Adversary()
	opt := core.RunOptions{Adversary: adv, MaxRound: tg.MaxRound}
	if tg.SingleActive {
		opt.MaxActive = 1
	}
	res, err := core.RunProcs(tg.N, tg.T, procs, opt)
	return res, adv, err
}

// Violation is one certification failure, with the schedule that caused it
// as a replayable vector.
type Violation struct {
	Vector string
	Reason string
}

// Certification is the verdict on one replayed schedule.
type Certification struct {
	Vector     Vector
	Result     sim.Result
	Violations []Violation
	// Collapsed reports that the execution coincides with a canonically
	// smaller vector's: a planned fault never fired or a delivery choice
	// extended past the action's send list.
	Collapsed bool
}

// Certify replays one schedule and checks the completion guarantee, the
// invariants (via the engine) and the target's bounds.
func (tg Target) Certify(vec Vector) Certification {
	cert := Certification{Vector: vec}
	res, adv, err := tg.runVector(vec)
	cert.Result = res
	fail := func(format string, args ...any) {
		cert.Violations = append(cert.Violations, Violation{
			Vector: vec.String(), Reason: fmt.Sprintf(format, args...),
		})
	}
	if err != nil {
		fail("run error: %v", err)
		return cert
	}
	cert.Collapsed = res.Crashes < vec.Crashes() || adv.OverDelivered() || adv.UnfiredFaults()
	if err := core.CheckCompletion(res); err != nil {
		fail("%v", err)
	}
	check := func(name string, measured, bound int64) {
		if bound > 0 && measured > bound {
			fail("%s %d exceeds bound %d", name, measured, bound)
		}
	}
	check("work", res.WorkTotal, tg.Bounds.Work)
	check("messages", res.Messages, tg.Bounds.Messages)
	check("rounds", res.Rounds, tg.Bounds.Rounds)
	check("effort", res.Effort(), tg.Bounds.Effort)
	return cert
}

// Extreme is the worst value of one metric over a walk, with the schedule
// that realized it. Value is -1 until something is observed.
type Extreme struct {
	Value   int64
	Vector  string
	Crashes int
}

func (e *Extreme) observe(value int64, vec Vector, crashes int) {
	// Strict improvement only: on ties the first vector in index order wins,
	// which keeps reports independent of sharding.
	if value > e.Value {
		e.Value, e.Vector, e.Crashes = value, vec.String(), crashes
	}
}

// maxViolations caps the violations retained verbatim in a report; the
// count keeps the full total.
const maxViolations = 16

// Report aggregates a schedule-space walk.
type Report struct {
	Protocol   string
	N, T       int
	MaxCrashes int
	Bounds     Bounds
	// Schedules counts certified executions; Collapsed counts those
	// coinciding with a canonically smaller vector's execution (still
	// certified).
	Schedules int64
	Collapsed int64
	// ByCrashes histograms executions by crashes actually fired.
	ByCrashes []int64
	// WorstX are the worst observed metrics with their replayable vectors.
	WorstWork     Extreme
	WorstMessages Extreme
	WorstRounds   Extreme
	WorstEffort   Extreme
	// Violations retains the first maxViolations failures in index order;
	// ViolationCount is the full total. A clean certification has 0.
	Violations     []Violation
	ViolationCount int64
}

func (r *Report) observe(cert Certification) {
	r.Schedules++
	if cert.Collapsed {
		r.Collapsed++
	}
	crashes := cert.Result.Crashes
	for len(r.ByCrashes) <= crashes {
		r.ByCrashes = append(r.ByCrashes, 0)
	}
	r.ByCrashes[crashes]++
	res := cert.Result
	r.WorstWork.observe(res.WorkTotal, cert.Vector, crashes)
	r.WorstMessages.observe(res.Messages, cert.Vector, crashes)
	r.WorstRounds.observe(res.Rounds, cert.Vector, crashes)
	r.WorstEffort.observe(res.Effort(), cert.Vector, crashes)
	r.ViolationCount += int64(len(cert.Violations))
	for _, v := range cert.Violations {
		if len(r.Violations) < maxViolations {
			r.Violations = append(r.Violations, v)
		}
	}
}

// merge folds b (a later shard) into r; shards are merged in index order so
// the fold is deterministic for every worker count.
func (r *Report) merge(b *Report) {
	r.Schedules += b.Schedules
	r.Collapsed += b.Collapsed
	for len(r.ByCrashes) < len(b.ByCrashes) {
		r.ByCrashes = append(r.ByCrashes, 0)
	}
	for i, c := range b.ByCrashes {
		r.ByCrashes[i] += c
	}
	mergeExtreme := func(a *Extreme, b Extreme) {
		if b.Value > a.Value { // ties keep the earlier shard's vector
			*a = b
		}
	}
	mergeExtreme(&r.WorstWork, b.WorstWork)
	mergeExtreme(&r.WorstMessages, b.WorstMessages)
	mergeExtreme(&r.WorstRounds, b.WorstRounds)
	mergeExtreme(&r.WorstEffort, b.WorstEffort)
	for _, v := range b.Violations {
		if len(r.Violations) < maxViolations {
			r.Violations = append(r.Violations, v)
		}
	}
	r.ViolationCount += b.ViolationCount
}

// Options configures a schedule-space walk.
type Options struct {
	// Jobs caps the parallel shards (0 = GOMAXPROCS, 1 = sequential); the
	// report is identical for every value.
	Jobs int
	// MaxSchedules refuses spaces larger than this (default 1<<22).
	MaxSchedules int64
}

func (o Options) maxSchedules() int64 {
	if o.MaxSchedules > 0 {
		return o.MaxSchedules
	}
	return 1 << 22
}

// shardSize is the fixed per-shard schedule count. It must not depend on
// the worker count: shard boundaries define which vector a tie-broken
// extreme reports, and those are pinned byte-identical across -jobs.
const shardSize = 1024

// Enumerate exhaustively walks and certifies every schedule in the space,
// fanning shards out via the deterministic batch runner over pooled
// engines.
func (tg Target) Enumerate(space Space, opt Options) (*Report, error) {
	norm, err := space.normalize()
	if err != nil {
		return nil, err
	}
	count := norm.count()
	if count > opt.maxSchedules() {
		return nil, fmt.Errorf("explore: space has %d schedules, above the %d limit (shrink depth/crashes or raise MaxSchedules)",
			count, opt.maxSchedules())
	}
	shards := int((count + shardSize - 1) / shardSize)
	workers := opt.Jobs
	parts := batch.Map(workers, shards, func(si int) *Report {
		rep := tg.newReport()
		lo := int64(si) * shardSize
		hi := min(lo+shardSize, count)
		for i := lo; i < hi; i++ {
			rep.observe(tg.Certify(norm.vectorAt(i)))
		}
		return rep
	})
	out := tg.newReport()
	for _, p := range parts {
		out.merge(p)
	}
	return out, nil
}

func (tg Target) newReport() *Report {
	return &Report{
		Protocol: tg.Protocol, N: tg.N, T: tg.T,
		MaxCrashes: tg.MaxCrashes, Bounds: tg.Bounds,
		WorstWork:     Extreme{Value: -1},
		WorstMessages: Extreme{Value: -1},
		WorstRounds:   Extreme{Value: -1},
		WorstEffort:   Extreme{Value: -1},
	}
}
