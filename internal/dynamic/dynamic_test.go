package dynamic

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

// spread injects units round-robin over processes and phases.
func spread(units, t, phases int) []Injection {
	inj := make([]Injection, units)
	for u := 1; u <= units; u++ {
		inj[u-1] = Injection{
			Phase:   1 + (u-1)%phases,
			Process: (u - 1) % t,
			Unit:    u,
		}
	}
	return inj
}

func runDyn(t *testing.T, cfg Config, adv sim.Adversary) sim.Result {
	t.Helper()
	scripts, err := Scripts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg.Units, cfg.T, scripts, core.RunOptions{
		Adversary: adv, DetailedMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDynamicFailureFree(t *testing.T) {
	// Work arriving over 4 phases at different sites all gets done, exactly
	// once, spread across the pool.
	cfg := Config{T: 8, Units: 64, Phases: 5, Injections: spread(64, 8, 4)}
	res := runDyn(t, cfg, nil)
	if !res.Complete() {
		t.Fatalf("distinct = %d of %d", res.WorkDistinct, 64)
	}
	if res.WorkTotal != 64 {
		t.Fatalf("work = %d, want exactly 64", res.WorkTotal)
	}
	if res.Survivors != 8 {
		t.Fatalf("survivors = %d", res.Survivors)
	}
}

func TestDynamicLateArrivals(t *testing.T) {
	// Everything arrives at a single site in the penultimate phase.
	var inj []Injection
	for u := 1; u <= 16; u++ {
		inj = append(inj, Injection{Phase: 3, Process: 5, Unit: u})
	}
	cfg := Config{T: 8, Units: 16, Phases: 4, Injections: inj}
	res := runDyn(t, cfg, nil)
	if !res.Complete() {
		t.Fatal("late arrivals not completed")
	}
}

func TestDynamicCrashesAfterSharing(t *testing.T) {
	// Sites crash after their arrivals have gone through one agreement
	// phase: the work must survive them.
	cfg := Config{T: 8, Units: 32, Phases: 5, Injections: spread(32, 8, 3)}
	// Phase 1 ends within ~ (32/8 + a few) rounds; crash sites 0..2 late in
	// the run, after everything they know has been shared.
	adv := adversary.NewSchedule(
		adversary.Crash{PID: 0, Round: 20},
		adversary.Crash{PID: 1, Round: 24},
		adversary.Crash{PID: 2, Round: 28},
	)
	res := runDyn(t, cfg, adv)
	if res.Survivors == 0 {
		t.Fatal("everyone died")
	}
	if !res.Complete() {
		t.Fatalf("distinct = %d of 32", res.WorkDistinct)
	}
}

func TestDynamicLostWithOnlyKnower(t *testing.T) {
	// A unit whose only knower dies before the next agreement phase is
	// lost — the documented boundary of the guarantee.
	inj := []Injection{{Phase: 2, Process: 3, Unit: 1}}
	cfg := Config{T: 4, Units: 1, Phases: 3, Injections: inj}
	// Process 3 receives the unit before phase 2 and is crashed at the
	// very same round it would first broadcast.
	adv := adversary.NewSchedule(adversary.Crash{PID: 3, AtAction: 2, KeepWork: false})
	res := runDyn(t, cfg, adv)
	if res.Complete() {
		t.Skip("crash landed after the share; schedule-dependent")
	}
	if res.WorkDistinct != 0 {
		t.Fatalf("distinct = %d, want 0", res.WorkDistinct)
	}
}

func TestDynamicRandomSweep(t *testing.T) {
	// Random crashes; every unit known to a process surviving its next
	// agreement phase must be done. We conservatively verify the weaker,
	// always-checkable property: runs terminate, and failure-free reruns of
	// the surviving schedule complete.
	for seed := int64(0); seed < 10; seed++ {
		cfg := Config{T: 6, Units: 24, Phases: 5, Injections: spread(24, 6, 3)}
		res := runDyn(t, cfg, adversary.NewRandom(0.01, 3, seed))
		if res.Survivors > 0 && res.Crashes == 0 && !res.Complete() {
			t.Fatalf("seed %d: failure-free run incomplete", seed)
		}
	}
}

func TestDynamicPhaseMessageShape(t *testing.T) {
	// Failure-free: phase 1's agreement costs 2 broadcasts per process and
	// later phases 3 (their grace round cannot terminate), as in Protocol D.
	cfg := Config{T: 4, Units: 8, Phases: 2, Injections: spread(8, 4, 2)}
	res := runDyn(t, cfg, nil)
	want := int64((2 + 3) * 4 * 3) // broadcasts × t × (t-1)
	if res.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Messages, want)
	}
}

func TestDynamicValidation(t *testing.T) {
	if _, err := Scripts(Config{T: 0, Units: 1, Phases: 1}); err == nil {
		t.Fatal("want error for t=0")
	}
	if _, err := Scripts(Config{T: 2, Units: 1, Phases: 1,
		Injections: []Injection{{Phase: 2, Process: 0, Unit: 1}}}); err == nil {
		t.Fatal("want error for injection after last phase")
	}
	if _, err := Scripts(Config{T: 2, Units: 1, Phases: 1,
		Injections: []Injection{{Phase: 1, Process: 9, Unit: 1}}}); err == nil {
		t.Fatal("want error for unknown process")
	}
	if _, err := Scripts(Config{T: 2, Units: 1, Phases: 1,
		Injections: []Injection{{Phase: 1, Process: 0, Unit: 5}}}); err == nil {
		t.Fatal("want error for unit out of range")
	}
}
