// Package dynamic implements the paper's §4 remark (the variant IBM
// patented, [9] in the paper): "a more realistic scenario, where work is
// continually coming in to different sites of the system, and is not
// initially common knowledge... the idea is to run Eventual Byzantine
// Agreement periodically."
//
// Each unit of work arrives at a single site. Every period, the processes
// run an agreement phase that merges what arrived and what was completed —
// views carry (known, done, T) and are merged by union — then split the
// agreed outstanding units evenly, as in Protocol D, and work for one
// period.
//
// Guarantee (the natural adaptation of the paper's): every unit that
// arrives at a process that survives its next agreement phase is performed,
// provided at least one process survives overall. A unit whose only knower
// crashes before telling anyone is irrecoverably lost, exactly like a
// message to the outside world from a crashed process.
package dynamic

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/sim"
)

// Injection delivers one unit of work to one site just before the given
// phase (1-based).
type Injection struct {
	Phase   int
	Process int
	Unit    int
}

// View is the dynamic variant's agreement broadcast: known and done unit
// sets, the live set T, and the decided flag — Protocol D's (S, T, done)
// with S split into its two halves, merged by union instead of
// intersection.
type View struct {
	Phase int
	Known []uint64
	Done  []uint64
	T     []uint64
	Dec   bool
}

// Kind implements sim.Kinder.
func (View) Kind() string { return "dyn-view" }

// Config parameterises a dynamic-work run.
type Config struct {
	// T is the number of processes; Units the total number of unit IDs that
	// will ever arrive (for accounting).
	T, Units int
	// Injections is the arrival schedule.
	Injections []Injection
	// Phases is how many inject-agree-work periods to run. All units must
	// arrive before the final phase.
	Phases int
	// Exec performs one unit of work (default: sim.Proc.StepWork).
	Exec core.WorkExecutor
}

// Scripts builds the per-process scripts of a dynamic-work run.
func Scripts(cfg Config) (func(id int) sim.Script, error) {
	if cfg.T <= 0 || cfg.Units < 0 || cfg.Phases <= 0 {
		return nil, fmt.Errorf("dynamic: invalid config %+v", cfg)
	}
	ex := cfg.Exec
	if ex == nil {
		ex = func(p *sim.Proc, u int) { p.StepWork(u) }
	}
	arrivals := make(map[int]map[int][]int) // phase -> process -> units
	for _, inj := range cfg.Injections {
		if inj.Phase < 1 || inj.Phase > cfg.Phases {
			return nil, fmt.Errorf("dynamic: injection %+v outside phases 1..%d", inj, cfg.Phases)
		}
		if inj.Process < 0 || inj.Process >= cfg.T {
			return nil, fmt.Errorf("dynamic: injection %+v to unknown process", inj)
		}
		if inj.Unit < 1 || inj.Unit > cfg.Units {
			return nil, fmt.Errorf("dynamic: injection %+v unit out of range", inj)
		}
		if arrivals[inj.Phase] == nil {
			arrivals[inj.Phase] = make(map[int][]int)
		}
		arrivals[inj.Phase][inj.Process] = append(arrivals[inj.Phase][inj.Process], inj.Unit)
	}
	for _, byProc := range arrivals {
		for _, units := range byProc {
			sort.Ints(units)
		}
	}
	return func(j int) sim.Script {
		return func(p *sim.Proc) {
			runSite(p, cfg, ex, arrivals, j)
		}
	}, nil
}

// runSite is one process of the dynamic variant.
func runSite(p *sim.Proc, cfg Config, ex core.WorkExecutor, arrivals map[int]map[int][]int, j int) {
	known := bitset.New(cfg.Units+1, false)
	done := bitset.New(cfg.Units+1, false)
	t := bitset.New(cfg.T, true)
	buf := make(map[int][]view)
	for phase := 1; phase <= cfg.Phases; phase++ {
		// New work arrives at this site.
		for _, u := range arrivals[phase][j] {
			known.Add(u)
		}
		// Agreement on (known, done, T).
		known, done, t = agree(p, cfg, j, phase, known, done, t, phase > 1, buf)
		if !t.Has(j) {
			panic(fmt.Sprintf("dynamic: correct process %d dropped from T", j))
		}
		// Work period: split the agreed outstanding units by rank.
		outstanding := known.Clone()
		outstanding.Subtract(done.Words())
		units := outstanding.Members()
		chunk := 0
		if len(units) > 0 {
			chunk = (len(units) + t.Count() - 1) / t.Count()
		}
		rank := t.RankOf(j)
		lo := min(rank*chunk, len(units))
		hi := min(lo+chunk, len(units))
		for k := lo; k < hi; k++ {
			ex(p, units[k])
			done.Add(units[k])
		}
		for k := hi - lo; k < chunk; k++ {
			p.StepIdle()
		}
	}
}

type view struct {
	View
	sender int
}

// agree mirrors Protocol D's EBA-style phase, with union merges over all
// three sets.
func agree(p *sim.Proc, cfg Config, j, phase int, known, done, t *bitset.Set, grace bool, buf map[int][]view) (*bitset.Set, *bitset.Set, *bitset.Set) {
	u := t.Clone()
	tNew := bitset.New(cfg.T, false)
	tNew.Add(j)
	kCur, dCur := known.Clone(), done.Clone()
	ctr := 1
	if grace {
		ctr = 0
	}
	bcast(p, cfg, j, phase, u, kCur, dCur, tNew, false)
	for {
		views := collect(p, phase, buf)
		uPrev := u.Clone()
		heard := make(map[int]bool, len(views))
		decided := false
		for _, v := range views {
			heard[v.sender] = true
			if v.Dec {
				kCur, dCur, tNew = bitset.From(v.Known, cfg.Units+1), bitset.From(v.Done, cfg.Units+1), bitset.From(v.T, cfg.T)
				decided = true
			} else if !decided {
				kCur.Union(v.Known)
				dCur.Union(v.Done)
				tNew.Union(v.T)
			}
		}
		if !decided {
			for _, i := range uPrev.Members() {
				if i != j && !heard[i] && ctr >= 1 {
					u.Remove(i)
				}
			}
			if u.Equal(uPrev) && ctr >= 1 {
				decided = true
			}
		}
		if decided {
			bcast(p, cfg, j, phase, u, kCur, dCur, tNew, true)
			return kCur, dCur, tNew
		}
		ctr++
		bcast(p, cfg, j, phase, u, kCur, dCur, tNew, false)
	}
}

// bcast sends the (known, done, T) view to every other member of u as one
// broadcast record; the word slices are copy-on-write shared snapshots, so
// all recipients read the same frozen words.
func bcast(p *sim.Proc, cfg Config, j, phase int, u, known, done, t *bitset.Set, dec bool) {
	v := View{
		Phase: phase,
		Known: known.Shared(), Done: done.Shared(), T: t.Shared(),
		Dec: dec,
	}
	p.StepBroadcast(u.Members(), v)
}

func collect(p *sim.Proc, phase int, buf map[int][]view) []view {
	views := buf[phase]
	delete(buf, phase)
	for _, m := range p.WaitUntil(p.Now()) {
		v, ok := m.Payload.(View)
		if !ok {
			continue
		}
		switch {
		case v.Phase == phase:
			views = append(views, view{View: v, sender: m.From})
		case v.Phase > phase:
			buf[v.Phase] = append(buf[v.Phase], view{View: v, sender: m.From})
		}
	}
	return views
}
