package sim

// Unit tests for the extended fault alphabet: send omission (Verdict.Omit),
// transient message loss (DeliveryAdversary), crash recovery
// (Verdict.RestartAt / Restarter over Recoverable steppers) and rate
// degradation (Verdict.Slow, the Slowed wrapper).

import (
	"testing"
)

// recStepper is a Recoverable test process: one work unit per round until
// limit, then halt. The whole state is value-typed, so a shallow copy is a
// complete checkpoint — the same shape the protocol A/B machines use.
type recStepper struct {
	limit int
	done  int
}

func (s *recStepper) Step(p *Proc) Yield {
	if s.done >= s.limit {
		return Yield{Kind: YieldHalt}
	}
	s.done++
	return Yield{Kind: YieldAction, Action: Action{WorkUnit: s.done}}
}

func (s *recStepper) Snapshot() any    { cp := *s; return &cp }
func (s *recStepper) Restore(snap any) { *s = *snap.(*recStepper) }

// restartSched extends the round-crash schedule with a restart schedule.
type restartSched struct {
	scheduleAdv
	restarts map[int64][]int
}

func (s restartSched) ScheduledRestarts(r int64) []int { return s.restarts[r] }

func (s restartSched) NextScheduledRestart(after int64) int64 {
	next := int64(-1)
	for r := range s.restarts {
		if r > after && (next < 0 || r < next) {
			next = r
		}
	}
	return next
}

func TestRestartFromActionCrash(t *testing.T) {
	// Crash at the 2nd action with the work kept; the checkpoint is the
	// post-action state, so the revived process continues with unit 3.
	adv := &scriptedAdversary{
		pid: 0, atCount: 2,
		verdict: Verdict{Crash: true, KeepWork: true, RestartAt: 5},
	}
	res, err := NewStepper(Config{NumProcs: 1, NumUnits: 4, Adversary: adv}, func(int) Stepper {
		return &recStepper{limit: 4}
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashes != 1 || res.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", res.Crashes, res.Restarts)
	}
	if res.WorkTotal != 4 || res.WorkDistinct != 4 || !res.Complete() {
		t.Fatalf("work=%d distinct=%d complete=%v, want 4/4/true",
			res.WorkTotal, res.WorkDistinct, res.Complete())
	}
	st := res.PerProc[0]
	if st.Status != StatusTerminated || st.Restarts != 1 {
		t.Fatalf("proc 0 = %+v, want terminated with 1 restart", st)
	}
	// Down rounds 2-4, revived at 5: units 3,4 at rounds 5,6, halt at 7.
	if st.RetireRound != 7 {
		t.Fatalf("retire round = %d, want 7", st.RetireRound)
	}
	if res.Survivors != 1 {
		t.Fatalf("survivors = %d, want 1", res.Survivors)
	}
}

func TestRestartAfterLostWorkNeverRedoes(t *testing.T) {
	// KeepWork=false discards the unit of the crashing action, but the
	// checkpoint — taken after the action committed — believes it was
	// performed. The revived process moves on and the unit stays missing:
	// crash recovery composes with work loss exactly as documented.
	adv := &scriptedAdversary{
		pid: 0, atCount: 2,
		verdict: Verdict{Crash: true, KeepWork: false, RestartAt: 5},
	}
	res, err := NewStepper(Config{NumProcs: 1, NumUnits: 4, Adversary: adv}, func(int) Stepper {
		return &recStepper{limit: 4}
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WorkTotal != 3 || res.WorkDistinct != 3 || res.Complete() {
		t.Fatalf("work=%d distinct=%d complete=%v, want 3/3/false",
			res.WorkTotal, res.WorkDistinct, res.Complete())
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
}

func TestRestartIgnoredForScript(t *testing.T) {
	// A goroutine stack cannot be checkpointed: script-backed processes are
	// not Recoverable and a restart request must leave them crashed without
	// hanging the run loop.
	adv := &scriptedAdversary{
		pid: 0, atCount: 1,
		verdict: Verdict{Crash: true, RestartAt: 5},
	}
	res, err := New(Config{NumProcs: 1, NumUnits: 2, Adversary: adv}, func(int) Script {
		return func(p *Proc) {
			p.StepWork(1)
			p.StepWork(2)
			p.Halt()
		}
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashes != 1 || res.Restarts != 0 {
		t.Fatalf("crashes=%d restarts=%d, want 1/0", res.Crashes, res.Restarts)
	}
	if res.PerProc[0].Status != StatusCrashed {
		t.Fatalf("status = %v, want crashed", res.PerProc[0].Status)
	}
}

func TestScheduledRoundRestart(t *testing.T) {
	// Round-triggered crash at 2, restart scheduled by the Restarter at 6.
	// The checkpoint is taken inside crash() because the restart schedule is
	// opaque to the engine.
	adv := restartSched{
		scheduleAdv: scheduleAdv{at: map[int64][]int{2: {0}}},
		restarts:    map[int64][]int{6: {0}},
	}
	res, err := NewStepper(Config{NumProcs: 1, NumUnits: 3, Adversary: adv}, func(int) Stepper {
		return &recStepper{limit: 3}
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashes != 1 || res.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", res.Crashes, res.Restarts)
	}
	if res.WorkTotal != 3 || !res.Complete() {
		t.Fatalf("work=%d complete=%v, want 3/true", res.WorkTotal, res.Complete())
	}
	// Units 1,2 at rounds 0,1; down 2-5; unit 3 at 6; halt at 7.
	if res.PerProc[0].RetireRound != 7 {
		t.Fatalf("retire round = %d, want 7", res.PerProc[0].RetireRound)
	}
}

func TestRestartThenRecrash(t *testing.T) {
	// Crash at round 1, revive at 3, crash again at 4 with no further
	// restart: the second crash takes a fresh checkpoint (the first was
	// consumed) and the process ends down.
	adv := restartSched{
		scheduleAdv: scheduleAdv{at: map[int64][]int{1: {0}, 4: {0}}},
		restarts:    map[int64][]int{3: {0}},
	}
	res, err := NewStepper(Config{NumProcs: 1, NumUnits: 5, Adversary: adv}, func(int) Stepper {
		return &recStepper{limit: 5}
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashes != 2 || res.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 2/1", res.Crashes, res.Restarts)
	}
	// Unit 1 at round 0; down 1-2; unit 2 at 3; down for good at 4.
	if res.WorkTotal != 2 || res.Complete() {
		t.Fatalf("work=%d complete=%v, want 2/false", res.WorkTotal, res.Complete())
	}
	if res.PerProc[0].Status != StatusCrashed || res.PerProc[0].RetireRound != 4 {
		t.Fatalf("proc 0 = %+v, want crashed at 4", res.PerProc[0])
	}
}

func TestRestartBoundsFastForward(t *testing.T) {
	// With every live process asleep far in the future, the engine
	// fast-forwards — but never past a pending restart round.
	adv := &scriptedAdversary{
		pid: 0, atCount: 1,
		verdict: Verdict{Crash: true, KeepWork: true, RestartAt: 40},
	}
	res, err := NewStepper(Config{NumProcs: 2, NumUnits: 2, Adversary: adv}, func(id int) Stepper {
		if id == 0 {
			return &recStepper{limit: 2}
		}
		slept := false
		return funcStepper(func(p *Proc) Yield {
			if !slept {
				slept = true
				return Yield{Kind: YieldSleep, Until: 100}
			}
			return Yield{Kind: YieldHalt}
		})
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Restarts != 1 || !res.Complete() {
		t.Fatalf("restarts=%d complete=%v, want 1/true", res.Restarts, res.Complete())
	}
	// Revived at 40, unit 2 at 40, halt at 41.
	if res.PerProc[0].RetireRound != 41 {
		t.Fatalf("proc 0 retired at %d, want 41", res.PerProc[0].RetireRound)
	}
	if res.Rounds != 100 {
		t.Fatalf("rounds = %d, want 100", res.Rounds)
	}
	if res.Events > 12 {
		t.Fatalf("events = %d, expected fast-forward over the down stretch", res.Events)
	}
}

func TestOmitSuppressesUnselectedSends(t *testing.T) {
	// Send omission: the Deliver mask filters the virtual send list exactly
	// like a crash verdict, but the process survives with its work.
	for _, tc := range []struct {
		name     string
		deliver  []bool
		messages int64
		omitted  int64
		want     map[int]bool
	}{
		{"prefix-1", []bool{true}, 1, 2, map[int]bool{1: true}},
		{"nothing", nil, 0, 3, map[int]bool{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			adv := &scriptedAdversary{
				pid: 0, atCount: 1,
				verdict: Verdict{Omit: true, Deliver: tc.deliver},
			}
			received := make(map[int]bool)
			res := run(t, Config{NumProcs: 4, NumUnits: 1, Adversary: adv}, func(id int) Script {
				if id == 0 {
					return func(p *Proc) {
						p.StepSend(
							Send{To: 1, Payload: "x"},
							Send{To: 2, Payload: "x"},
							Send{To: 3, Payload: "x"},
						)
						p.StepWork(1) // the omission must not have killed us
						p.Halt()
					}
				}
				return func(p *Proc) {
					if len(p.WaitUntil(10)) > 0 {
						received[p.ID()] = true
					}
					p.Halt()
				}
			})
			for pid := 1; pid <= 3; pid++ {
				if received[pid] != tc.want[pid] {
					t.Fatalf("received = %v, want %v", received, tc.want)
				}
			}
			if res.Messages != tc.messages || res.Omitted != tc.omitted {
				t.Fatalf("messages=%d omitted=%d, want %d/%d",
					res.Messages, res.Omitted, tc.messages, tc.omitted)
			}
			if res.Crashes != 0 || res.Survivors != 4 || res.WorkTotal != 1 {
				t.Fatalf("crashes=%d survivors=%d work=%d, want 0/4/1",
					res.Crashes, res.Survivors, res.WorkTotal)
			}
		})
	}
}

func TestDeliveryDropLosesMessageInTransit(t *testing.T) {
	// The dropper fires at delivery time: the sender has already paid for
	// the message (it counts in Messages) but the recipient never sees it.
	adv := &dropFirstTo{to: 1}
	var got []string
	res := run(t, Config{NumProcs: 2, NumUnits: 0, Adversary: adv}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.StepSend(Send{To: 1, Payload: "a"})
				p.StepSend(Send{To: 1, Payload: "b"})
				p.Halt()
			}
		}
		return func(p *Proc) {
			for len(got) == 0 {
				for _, m := range p.WaitUntil(10) {
					got = append(got, m.Payload.(string))
				}
				if p.Now() >= 10 {
					break
				}
			}
			p.Halt()
		}
	})
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("received %v, want [b]", got)
	}
	if res.Messages != 2 || res.Dropped != 1 {
		t.Fatalf("messages=%d dropped=%d, want 2/1", res.Messages, res.Dropped)
	}
}

// dropFirstTo drops the first delivery bound for a fixed recipient.
type dropFirstTo struct {
	NopAdversary
	to      int
	dropped bool
}

func (d *dropFirstTo) OnDeliver(_ int64, m Message) bool {
	if m.To == d.to && !d.dropped {
		d.dropped = true
		return false
	}
	return true
}

// verdictSeq returns a fixed verdict per committed-action ordinal of one
// process.
type verdictSeq struct {
	NopAdversary
	pid      int
	verdicts map[int]Verdict
	seen     int
}

func (a *verdictSeq) OnAction(_ int64, pid int, _ Action) Verdict {
	if pid != a.pid {
		return Survive()
	}
	a.seen++
	return a.verdicts[a.seen]
}

func TestSlowdownQuartersRate(t *testing.T) {
	// Factor 3 from the first action: each committed action is followed by
	// 2 stalled rounds, so actions land at rounds 0, 3, 6.
	adv := &verdictSeq{pid: 0, verdicts: map[int]Verdict{1: {Slow: 3}}}
	var acted []int64
	res, err := NewStepper(Config{NumProcs: 1, NumUnits: 3, Adversary: adv}, func(int) Stepper {
		return funcStepper(func(p *Proc) Yield {
			if len(acted) == 3 {
				return Yield{Kind: YieldHalt}
			}
			acted = append(acted, p.Now())
			return Yield{Kind: YieldAction, Action: Action{WorkUnit: len(acted)}}
		})
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(acted) != 3 || acted[0] != 0 || acted[1] != 3 || acted[2] != 6 {
		t.Fatalf("actions at %v, want [0 3 6]", acted)
	}
	if res.PerProc[0].RetireRound != 9 {
		t.Fatalf("retire round = %d, want 9 (stall after the last action)", res.PerProc[0].RetireRound)
	}
	if !res.Complete() {
		t.Fatal("slowdown must not lose work")
	}
}

func TestSlowdownRestoredByFactorOne(t *testing.T) {
	// Slow persists until another verdict changes it; factor 1 restores
	// full speed.
	adv := &verdictSeq{pid: 0, verdicts: map[int]Verdict{1: {Slow: 3}, 2: {Slow: 1}}}
	var acted []int64
	_, err := NewStepper(Config{NumProcs: 1, NumUnits: 3, Adversary: adv}, func(int) Stepper {
		return funcStepper(func(p *Proc) Yield {
			if len(acted) == 3 {
				return Yield{Kind: YieldHalt}
			}
			acted = append(acted, p.Now())
			return Yield{Kind: YieldAction, Action: Action{WorkUnit: len(acted)}}
		})
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(acted) != 3 || acted[0] != 0 || acted[1] != 3 || acted[2] != 4 {
		t.Fatalf("actions at %v, want [0 3 4]", acted)
	}
}

func TestStalledProcKeepsMailUntilStallEnds(t *testing.T) {
	// A stall is a slow processor, not a sleep: mail delivered mid-stall is
	// retained but must not cut the stall short.
	adv := &verdictSeq{pid: 0, verdicts: map[int]Verdict{1: {Slow: 4}}}
	gotAt := int64(-1)
	_, err := NewStepper(Config{NumProcs: 2, NumUnits: 1, Adversary: adv}, func(id int) Stepper {
		if id == 0 {
			started := false
			return funcStepper(func(p *Proc) Yield {
				if !started {
					started = true
					return Yield{Kind: YieldAction, Action: Action{WorkUnit: 1}}
				}
				if msgs := p.Drain(); len(msgs) > 0 {
					gotAt = p.Now()
				}
				return Yield{Kind: YieldHalt}
			})
		}
		sent := false
		return funcStepper(func(p *Proc) Yield {
			if !sent {
				sent = true
				// Sent at round 0, delivered at round 1 — mid-stall.
				return Yield{Kind: YieldAction, Action: Action{Sends: []Send{{To: 0, Payload: "hi"}}}}
			}
			return Yield{Kind: YieldHalt}
		})
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotAt != 4 {
		t.Fatalf("stalled proc read mail at round %d, want 4 (stall end)", gotAt)
	}
}

func TestSlowedWrapperPadsRounds(t *testing.T) {
	// Slowed(st, 3) interleaves 2 idle actions after each productive one:
	// units at rounds 0 and 3, halt at 6.
	res, err := NewStepper(Config{NumProcs: 1, NumUnits: 2}, func(int) Stepper {
		return Slowed(&recStepper{limit: 2}, 3)
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WorkTotal != 2 || !res.Complete() {
		t.Fatalf("work=%d complete=%v, want 2/true", res.WorkTotal, res.Complete())
	}
	if res.PerProc[0].RetireRound != 6 {
		t.Fatalf("retire round = %d, want 6", res.PerProc[0].RetireRound)
	}
}

func TestSlowedWrapperRecoverable(t *testing.T) {
	// The wrapper forwards Recoverable and checkpoints its pad counter, so
	// a restart resumes mid-degradation-cycle.
	adv := &scriptedAdversary{
		pid: 0, atCount: 1,
		verdict: Verdict{Crash: true, KeepWork: true, RestartAt: 4},
	}
	res, err := NewStepper(Config{NumProcs: 1, NumUnits: 2, Adversary: adv}, func(int) Stepper {
		return Slowed(&recStepper{limit: 2}, 3)
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Restarts != 1 || res.WorkTotal != 2 || !res.Complete() {
		t.Fatalf("restarts=%d work=%d complete=%v, want 1/2/true",
			res.Restarts, res.WorkTotal, res.Complete())
	}
	// Unit 1 at round 0 (crash; pad 2 checkpointed), revived at 4: pads at
	// 4,5, unit 2 at 6, pads at 7,8, halt at 9.
	if res.PerProc[0].RetireRound != 9 {
		t.Fatalf("retire round = %d, want 9", res.PerProc[0].RetireRound)
	}
}
