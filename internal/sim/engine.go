package sim

import (
	"errors"
	"fmt"
	"sort"
)

// Engines drive processes on either of two substrates: blocking Scripts in
// goroutines (New) or zero-goroutine Steppers called directly on the
// engine's stack (NewStepper). See stepper.go and DESIGN.md "Execution
// substrates".

// Config parameterises an Engine.
type Config struct {
	// NumProcs is the number of processes t (IDs 0..t-1).
	NumProcs int
	// NumUnits is the number of work units n (IDs 1..n). Units outside
	// 1..NumUnits still count toward WorkTotal but not toward completion.
	NumUnits int
	// Adversary injects crash failures. nil means no failures.
	Adversary Adversary
	// MaxRound aborts runs that exceed this round (0 = a large default).
	MaxRound int64
	// MaxActive, when > 0, makes the engine verify after every round that at
	// most MaxActive processes have SetActive(true). Single-active protocols
	// (A, B, C) set this to 1 in tests.
	MaxActive int
	// Bandwidth, when > 0, caps the point-to-point messages each process may
	// transmit per round (the congested-clique model): an action's sends past
	// the cap are queued on the sender and transmitted by later rounds' pump
	// phase in commit order, competing with that round's fresh sends for the
	// same budget. 0 means unlimited. See DESIGN.md "Bandwidth cap".
	Bandwidth int
	// DetailedMetrics enables per-kind message counting.
	DetailedMetrics bool
	// Tracer, when non-nil, receives one event per committed action.
	Tracer func(Event)
}

// Event is a trace record of one committed action.
type Event struct {
	Round    int64
	PID      int
	Label    string
	Work     int
	Sent     int
	Crashed  bool
	Halted   bool
	Activity string
}

// Result aggregates the metrics of a completed run.
type Result struct {
	// WorkTotal counts units of work performed, with multiplicity.
	WorkTotal int64
	// WorkDistinct counts distinct units in 1..NumUnits performed.
	WorkDistinct int
	// Messages counts point-to-point messages transmitted.
	Messages int64
	// MessagesByKind breaks Messages down per payload kind (only when
	// Config.DetailedMetrics is set).
	MessagesByKind map[string]int64
	// Rounds is the round by which every process had retired.
	Rounds int64
	// CompletedRound is the first round at which all units had been
	// performed, or -1 if the run ended incomplete.
	CompletedRound int64
	// Survivors is the number of processes that terminated voluntarily.
	Survivors int
	// Crashes is the number of times the adversary crashed a process (a
	// restarted process may crash again; each crash counts).
	Crashes int
	// Restarts counts crash-recovery revivals (Verdict.RestartAt and
	// Restarter schedules that actually restored a process).
	Restarts int64
	// Dropped counts messages the adversary suppressed at delivery time
	// (DeliveryAdversary verdicts); they are included in Messages, which
	// counts transmissions.
	Dropped int64
	// Omitted counts sends suppressed by send-omission verdicts
	// (Verdict.Omit); unlike Dropped these never transmitted and are not in
	// Messages.
	Omitted int64
	// Deferred counts sends postponed by the bandwidth cap
	// (Config.Bandwidth), each counted once at the commit that overflowed the
	// budget. A deferred send that later transmits also counts in Messages; a
	// deferred send dropped by a crash of its sender counts here only.
	Deferred int64
	// Events counts script resumptions, i.e. the simulation work actually
	// done; Rounds/Events measures the fast-forward speedup.
	Events int64
	// PerProc holds per-process statistics indexed by PID.
	PerProc []ProcStats
}

// Effort is work plus messages, the paper's combined cost measure.
func (r Result) Effort() int64 { return r.WorkTotal + r.Messages }

// Complete reports whether every unit of work was performed.
func (r Result) Complete() bool { return r.CompletedRound >= 0 }

// ProcStats summarises one process's run.
type ProcStats struct {
	Status      Status
	Work        int64
	Sent        int64
	RetireRound int64
	// Actions counts the actions this process committed — the adversary's
	// decision points: OnAction is consulted exactly once per committed
	// action. Schedule-space exploration (internal/explore) uses the
	// failure-free Actions horizon to bound its action-indexed crash choices.
	Actions int64
	// Restarts counts this process's crash-recovery revivals.
	Restarts int64
	// Deferred counts this process's sends postponed by the bandwidth cap.
	Deferred int64
}

// Engine coordinates the lock-step execution of all process scripts.
//
// Scheduling state is maintained incrementally rather than recomputed by
// O(t) scans every round: live and activeCount track process counts, runq
// tracks the set of processes runnable this round, and sleepers orders
// future wake times in a min-heap with lazy invalidation. Because every
// send commits for delivery exactly one round later, pending messages live
// in a single flat buffer (recycled between rounds) instead of a
// round-indexed map.
type Engine struct {
	cfg   Config
	procs []*Proc
	// allProcs retains every Proc ever built by this engine (slab-allocated)
	// so Reset can rearm them — inbox and scratch buffers included — instead
	// of reallocating; procs is allProcs[:cfg.NumProcs].
	allProcs []*Proc
	now      int64

	pendingNext []Message // point-to-point messages committed this round, due next round
	spare       []Message // recycled backing buffer for pendingNext
	// pendingBcast holds one shared record per committed broadcast, due next
	// round like every send: a t-recipient broadcast costs one record here
	// instead of t Messages. Delivery expands each record into the
	// recipients' inboxes (the Message values merely reference the record's
	// shared payload).
	pendingBcast []bcastRec
	spareBcast   []bcastRec // recycled backing buffer for pendingBcast
	// pendingUnsorted is set at append time if a commit ever lands behind a
	// higher sender PID; deliver then restores ascending-PID order. Commits
	// run in ascending PID order within a round, so this stays false and the
	// per-round sortedness scan is avoided.
	pendingUnsorted bool

	runq        runSet   // processes to resume this round
	sleepers    wakeHeap // (wakeAt, pid), stale entries discarded on pop
	restartq    wakeHeap // (restartAt, pid) from Verdict.RestartAt, stale on pop
	live        int      // processes with StatusRunning
	activeCount int      // live processes with SetActive(true)

	// Optional adversary extensions, resolved once per Reset by type
	// assertion on cfg.Adversary (nil when not implemented).
	dropper   DeliveryAdversary
	restarter Restarter

	unitsDone    []bool
	distinctDone int
	metrics      Result
	err          error
}

// ErrRoundLimit is returned when a run exceeds Config.MaxRound.
var ErrRoundLimit = errors.New("sim: round limit exceeded")

// ErrDeadlock is returned when live processes remain but no future event can
// ever wake any of them.
var ErrDeadlock = errors.New("sim: deadlock, all processes asleep forever")

// New builds an engine; scripts(id) supplies the body of each process. Each
// script runs in its own goroutine behind a ScriptStepper shim.
func New(cfg Config, scripts func(id int) Script) *Engine {
	return NewStepper(cfg, func(id int) Stepper { return ScriptStepper(scripts(id)) })
}

// NewStepper builds an engine over state-machine process bodies; steppers(id)
// supplies each process's Stepper. Substrates may be mixed by returning
// ScriptStepper-wrapped scripts for some IDs.
func NewStepper(cfg Config, steppers func(id int) Stepper) *Engine {
	e := &Engine{}
	e.Reset(cfg, steppers)
	return e
}

// Reset rearms the engine for a fresh run, recycling every piece of run
// state a previous run left behind — the Proc objects and their inbox and
// scratch buffers, the run queue, the sleeper heap, the next-round message
// buffers and the units table — so sweeps that reuse one engine per worker
// pay near-zero setup allocation per run. A Reset engine is
// indistinguishable from a NewStepper one: the reuse-determinism tests pin
// byte-identical Results. Safe after a completed, failed or aborted Run;
// not safe concurrently with one.
func (e *Engine) Reset(cfg Config, steppers func(id int) Stepper) {
	if cfg.Adversary == nil {
		cfg.Adversary = NopAdversary{}
	}
	if cfg.MaxRound == 0 {
		cfg.MaxRound = Forever
	}
	e.cfg = cfg
	e.now = 0
	e.err = nil
	e.live = cfg.NumProcs
	e.activeCount = 0
	e.distinctDone = 0
	e.pendingUnsorted = false
	// The recycled buffers were scrubbed of stale references when the
	// previous Run ended (see scrub); truncation is all that is left to do.
	e.pendingNext = e.pendingNext[:0]
	e.spare = e.spare[:0]
	e.pendingBcast = e.pendingBcast[:0]
	e.spareBcast = e.spareBcast[:0]
	e.sleepers = e.sleepers[:0]
	e.restartq = e.restartq[:0]
	e.dropper, _ = cfg.Adversary.(DeliveryAdversary)
	e.restarter, _ = cfg.Adversary.(Restarter)
	e.runq.reset(cfg.NumProcs)
	if n := cfg.NumUnits + 1; n <= cap(e.unitsDone) {
		e.unitsDone = e.unitsDone[:n]
		clear(e.unitsDone)
	} else {
		e.unitsDone = make([]bool, n)
	}
	// A fresh Result every run: the previous one escaped to the caller and
	// must not observe this run's counters (or map writes).
	e.metrics = Result{CompletedRound: -1}
	if cfg.NumUnits == 0 {
		e.metrics.CompletedRound = 0
	}
	if cfg.DetailedMetrics {
		e.metrics.MessagesByKind = make(map[string]int64)
	}
	if cfg.NumProcs > len(e.allProcs) {
		slab := make([]Proc, cfg.NumProcs-len(e.allProcs))
		for i := range slab {
			e.allProcs = append(e.allProcs, &slab[i])
		}
	}
	e.procs = e.allProcs[:cfg.NumProcs]
	for id, p := range e.procs {
		p.rearm(e, id, steppers(id))
		e.runq.add(id)
	}
}

// Run executes the simulation until every process has retired, then returns
// the aggregated metrics. Reset rearms the engine for another run.
func (e *Engine) Run() (Result, error) {
	defer func() {
		e.killAll()
		e.scrub()
	}()
	for e.live > 0 || e.restartPending() {
		if e.now > e.cfg.MaxRound {
			e.fail(fmt.Errorf("%w: round %d > %d", ErrRoundLimit, e.now, e.cfg.MaxRound))
			break
		}
		// Revivals precede this round's scheduled crashes and deliveries, so
		// a restarted process can be re-crashed the same round and receives
		// the messages already in flight to it.
		e.restartDue()
		e.crashScheduled()
		e.deliver()
		e.wakeSleepers()
		e.pumpDeferred()
		e.stepRunnable()
		if e.err != nil {
			break
		}
		if err := e.checkInvariants(); err != nil {
			e.fail(err)
			break
		}
		next := e.nextRound()
		if next == Forever {
			if e.live > 0 {
				e.fail(ErrDeadlock)
			}
			break
		}
		e.now = next
	}
	e.finalize()
	return e.metrics, e.err
}

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// crashScheduled applies adversary-scheduled crashes at the start of a round.
func (e *Engine) crashScheduled() {
	for _, pid := range e.cfg.Adversary.ScheduledCrashes(e.now) {
		if pid < 0 || pid >= len(e.procs) {
			continue
		}
		p := e.procs[pid]
		if p.status != StatusRunning {
			continue
		}
		e.crash(p)
	}
}

// restartDue revives crashed processes whose scheduled restart round has
// arrived: verdict-scheduled restarts first (heap order), then the
// adversary's round schedule. Stale heap entries (non-recoverable crash, or
// the process restarted earlier via the schedule) are discarded on pop.
func (e *Engine) restartDue() {
	for len(e.restartq) > 0 && e.restartq[0].at <= e.now {
		entry := e.restartq.popTop()
		e.restart(entry.pid)
	}
	if e.restarter != nil {
		for _, pid := range e.restarter.ScheduledRestarts(e.now) {
			if pid >= 0 && pid < len(e.procs) {
				e.restart(pid)
			}
		}
	}
}

// restart revives one crashed process from its crash checkpoint. Requests
// that cannot be honoured — the process is not crashed, or holds no
// checkpoint (non-Recoverable stepper) — are ignored.
func (e *Engine) restart(pid int) {
	p := e.procs[pid]
	if p.status != StatusCrashed || !p.restoreState() {
		return
	}
	p.status = StatusRunning
	p.sleeping = false
	p.stalled = false
	p.slowFactor = 0
	p.retireRound = 0
	p.inbox = p.inbox[:0]
	p.restarts++
	e.live++
	e.metrics.Restarts++
	e.runq.add(pid) // the revived process steps in its restart round
}

// restartPending reports whether a scheduled restart can still revive some
// process once live hits zero, popping stale restart-queue entries so a
// dead queue cannot keep the run loop spinning.
func (e *Engine) restartPending() bool {
	for len(e.restartq) > 0 {
		p := e.procs[e.restartq[0].pid]
		if p.status != StatusCrashed || !p.hasSnap {
			e.restartq.popTop()
			continue
		}
		return true
	}
	return e.restarter != nil && e.restarter.NextScheduledRestart(e.now-1) >= 0
}

// bcastRec is one committed broadcast awaiting delivery: the single shared
// record behind what recipients see as ordinary Messages. to is referenced
// from the committing action (see Broadcast); the sender cannot step — and
// so cannot reuse its scratch — before the record is delivered.
type bcastRec struct {
	from    int
	sentAt  int64
	payload any
	to      []int
}

// deliver moves the messages committed last round into inboxes. Every send
// is due exactly one round after commit, so both buffers are due now;
// recipients gaining mail become runnable. Point-to-point messages and
// broadcast records are merged by sender PID, expanding each record per
// recipient, so inboxes observe the exact (delivery round, sender) order of
// the flat per-send plane.
func (e *Engine) deliver() {
	msgs, recs := e.pendingNext, e.pendingBcast
	if len(msgs) == 0 && len(recs) == 0 {
		return
	}
	// Commits happen in ascending PID order within a round, so both buffers
	// are already sorted by sender; commit flags the rare violation at
	// append time instead of re-scanning the whole buffer every round.
	if e.pendingUnsorted {
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].from < recs[j].from })
		e.pendingUnsorted = false
	}
	mi, ri := 0, 0
	for mi < len(msgs) || ri < len(recs) {
		// On a PID tie the explicit sends go first, matching the action's
		// virtual send order (Sends, then the broadcast).
		if mi < len(msgs) && (ri >= len(recs) || msgs[mi].From <= recs[ri].from) {
			m := msgs[mi]
			mi++
			e.deposit(m)
			continue
		}
		r := recs[ri]
		ri++
		for _, to := range r.to {
			e.deposit(Message{From: r.from, To: to, SentAt: r.sentAt, Payload: r.payload})
		}
	}
	e.pendingNext = e.spare[:0]
	e.spare = msgs[:0]
	// Drop the record references (payloads, recipient slices) before
	// recycling so a pooled engine does not retain them across runs.
	for i := range recs {
		recs[i] = bcastRec{}
	}
	e.pendingBcast = e.spareBcast[:0]
	e.spareBcast = recs[:0]
}

// deposit appends one delivered message to its recipient's inbox, first
// consulting the delivery adversary (transient loss). A stalled recipient
// (rate degradation) keeps the mail but is not woken by it: the stall is a
// slow processor, not a sleep it can be prodded out of.
func (e *Engine) deposit(m Message) {
	p := e.procs[m.To]
	if p.status != StatusRunning {
		return
	}
	if e.dropper != nil && !e.dropper.OnDeliver(e.now, m) {
		e.metrics.Dropped++
		return
	}
	p.inbox = append(p.inbox, m)
	if !p.stalled {
		e.runq.add(m.To)
	}
}

// wakeSleepers moves every sleeper whose wake time has arrived onto the run
// queue. Stale heap entries (the process was woken early by a message and
// re-slept, or retired) are recognised by re-checking the process state.
func (e *Engine) wakeSleepers() {
	for len(e.sleepers) > 0 && e.sleepers[0].at <= e.now {
		entry := e.sleepers.popTop()
		p := e.procs[entry.pid]
		if p.status == StatusRunning && p.sleeping && p.wakeAt <= e.now {
			e.runq.add(entry.pid)
		}
	}
}

// budgetLeft returns the process's remaining transmissions this round under
// the bandwidth cap, lazily resetting the per-round meter on first use each
// round.
func (e *Engine) budgetLeft(p *Proc) int {
	if p.sentRound != e.now {
		p.sentRound = e.now
		p.sentInRound = 0
	}
	return e.cfg.Bandwidth - p.sentInRound
}

// transmit books one capped-mode message onto the next-round buffer:
// Messages and the per-process meter advance at transmission, not commit, so
// a queued send that never transmits (sender crashed) is never counted sent.
func (e *Engine) transmit(p *Proc, m Message) {
	e.metrics.Messages++
	p.msgsSent++
	p.sentInRound++
	if e.metrics.MessagesByKind != nil {
		e.metrics.MessagesByKind[payloadKind(m.Payload)]++
	}
	if n := len(e.pendingNext); n > 0 && e.pendingNext[n-1].From > p.id {
		e.pendingUnsorted = true
	}
	e.pendingNext = append(e.pendingNext, m)
}

// pumpDeferred drains each process's bandwidth-deferred send queue into the
// next-round buffer, up to the round's budget, in ascending PID order. It
// runs before the round's steps, so backlog transmits ahead of (and meters
// against the same budget as) the sends this round's actions commit. Crashes
// drop the sender's queue, so only live and voluntarily-retired processes
// pump here; a terminated process's tail keeps draining because the messages
// were committed while it ran.
func (e *Engine) pumpDeferred() {
	if e.cfg.Bandwidth <= 0 {
		return
	}
	for _, p := range e.procs {
		q := p.sendq
		if len(q) == 0 {
			continue
		}
		i := 0
		for i < len(q) && e.budgetLeft(p) > 0 {
			e.transmit(p, q[i])
			i++
		}
		if i > 0 {
			rest := copy(q, q[i:])
			clear(q[rest:]) // drop moved payload references
			p.sendq = q[:rest]
		}
	}
}

// stepRunnable resumes, in ID order, every process on the run queue.
func (e *Engine) stepRunnable() {
	e.runq.forEachAscending(func(pid int) bool {
		p := e.procs[pid]
		if p.status != StatusRunning {
			return true
		}
		p.sleeping = false
		p.stalled = false
		e.resumeProc(p)
		return e.err == nil
	})
}

// resumeProc hands control to one process until it yields — a direct Step
// call for steppers, a channel round-trip for shim-backed scripts — then
// applies the yield (action/sleep/halt) to engine state.
func (e *Engine) resumeProc(p *Proc) {
	y, pv, panicked := stepProc(p)
	e.metrics.Events++
	if panicked {
		p.status = StatusCrashed
		e.setInactive(p)
		p.retireRound = e.now
		e.live--
		e.runq.remove(p.id)
		e.fail(fmt.Errorf("sim: proc %d panicked: %v", p.id, pv))
		return
	}
	switch y.Kind {
	case YieldAction:
		e.commit(p, y.Action)
	case YieldSleep:
		p.sleeping = true
		p.wakeAt = y.Until
		e.runq.remove(p.id)
		e.sleepers.push(wakeEntry{at: y.Until, pid: p.id})
	case YieldHalt:
		p.status = StatusTerminated
		e.setInactive(p)
		p.retireRound = e.now
		e.live--
		e.runq.remove(p.id)
		e.trace(p, Action{}, false, true)
	}
}

// stepProc runs one step, converting a panic in the process body (from
// either substrate; the shim re-raises script panics after its goroutine
// unwinds) into a value so the engine can fail deterministically.
func stepProc(p *Proc) (y Yield, pv any, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			pv, panicked = r, true
		}
	}()
	y = p.stepper.Step(p)
	return y, nil, false
}

// commit applies an action, consulting the adversary for crash verdicts.
func (e *Engine) commit(p *Proc, a Action) {
	p.actions++
	verdict := e.cfg.Adversary.OnAction(e.now, p.id, a)
	keepWork := true
	sends := a.Sends
	bcast := a.Broadcast
	if verdict.Crash {
		keepWork = verdict.KeepWork
		// Crash mid-action: Deliver indexes the action's virtual send list
		// (explicit sends, then the broadcast per recipient), so subset
		// verdicts apply per recipient against the broadcast record. The
		// rare surviving subset is materialized as plain messages.
		sends, bcast = nil, Broadcast{}
		for i, n := 0, a.SendCount(); i < n && i < len(verdict.Deliver); i++ {
			if verdict.Deliver[i] {
				sends = append(sends, a.SendAt(i))
			}
		}
	} else if verdict.Omit {
		// Send omission: same Deliver-mask filtering as a crash, but the
		// process lives on and keeps its work. Suppressed sends never
		// transmit (they are invisible to Messages) and are tallied.
		n := a.SendCount()
		sends, bcast = nil, Broadcast{}
		for i := 0; i < n && i < len(verdict.Deliver); i++ {
			if verdict.Deliver[i] {
				sends = append(sends, a.SendAt(i))
			}
		}
		e.metrics.Omitted += int64(n - len(sends))
	}
	if a.WorkUnit > 0 && keepWork {
		e.metrics.WorkTotal++
		p.workDone++
		if a.WorkUnit < len(e.unitsDone) && !e.unitsDone[a.WorkUnit] {
			e.unitsDone[a.WorkUnit] = true
			e.distinctDone++
			if e.distinctDone == e.cfg.NumUnits && e.metrics.CompletedRound < 0 {
				e.metrics.CompletedRound = e.now
			}
		}
	}
	if e.cfg.Bandwidth > 0 {
		if !e.commitCapped(p, sends, bcast) {
			return
		}
	} else {
		if len(sends) > 0 || len(bcast.To) > 0 {
			if n := len(e.pendingNext); n > 0 && e.pendingNext[n-1].From > p.id {
				e.pendingUnsorted = true
			}
			if n := len(e.pendingBcast); n > 0 && e.pendingBcast[n-1].from > p.id {
				e.pendingUnsorted = true
			}
		}
		// Per-kind counts are accumulated per run of equal kinds rather than
		// one map update per send; a whole broadcast costs a single map
		// operation.
		var runKind string
		var runCount int64
		for _, s := range sends {
			if s.To < 0 || s.To >= len(e.procs) {
				if runCount > 0 { // keep MessagesByKind consistent with Messages
					e.metrics.MessagesByKind[runKind] += runCount
				}
				e.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", p.id, s.To))
				return
			}
			e.metrics.Messages++
			p.msgsSent++
			if e.metrics.MessagesByKind != nil {
				if k := payloadKind(s.Payload); k == runKind {
					runCount++
				} else {
					if runCount > 0 {
						e.metrics.MessagesByKind[runKind] += runCount
					}
					runKind, runCount = k, 1
				}
			}
			e.pendingNext = append(e.pendingNext, Message{
				From: p.id, To: s.To, SentAt: e.now, Payload: s.Payload,
			})
		}
		if runCount > 0 {
			e.metrics.MessagesByKind[runKind] += runCount
		}
		if len(bcast.To) > 0 {
			// One shared record regardless of fanout. Counters still advance
			// per recipient (a broadcast is len(To) point-to-point messages in
			// the model), mirroring the flat plane's valid-prefix accounting on
			// the invalid-PID failure path.
			var counted int64
			for _, to := range bcast.To {
				if to < 0 || to >= len(e.procs) {
					if counted > 0 && e.metrics.MessagesByKind != nil {
						e.metrics.MessagesByKind[payloadKind(bcast.Payload)] += counted
					}
					e.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", p.id, to))
					return
				}
				counted++
				e.metrics.Messages++
				p.msgsSent++
			}
			if e.metrics.MessagesByKind != nil {
				e.metrics.MessagesByKind[payloadKind(bcast.Payload)] += counted
			}
			e.pendingBcast = append(e.pendingBcast, bcastRec{
				from: p.id, sentAt: e.now, payload: bcast.Payload, to: bcast.To,
			})
		}
	}
	e.trace(p, a, verdict.Crash, false)
	if verdict.Crash {
		e.crash(p)
		if verdict.RestartAt > e.now && p.snapshotState() {
			e.restartq.push(wakeEntry{at: verdict.RestartAt, pid: p.id})
		}
		return
	}
	if verdict.Slow > 0 {
		p.slowFactor = verdict.Slow
	}
	if p.slowFactor > 1 {
		// Rate degradation: the action committed, but the next one is
		// slowFactor rounds away instead of one. The stall is modelled as a
		// sleep that mail cannot cut short (see deposit).
		p.sleeping, p.stalled = true, true
		p.wakeAt = e.now + int64(p.slowFactor)
		e.runq.remove(p.id)
		e.sleepers.push(wakeEntry{at: p.wakeAt, pid: p.id})
	}
}

// commitCapped books an action's sends under the bandwidth cap: the virtual
// send list (explicit sends, then the broadcast per recipient) is walked in
// order, transmitting while this round's budget lasts and queueing the
// remainder on the sender. Broadcasts flatten to plain messages — a deferred
// shared record would alias the sender's recipient scratch across rounds —
// and the flat order matches the uncapped delivery merge exactly. Recipient
// validation stays at commit with the uncapped path's error text and
// valid-prefix accounting. Reports false when the run has failed.
func (e *Engine) commitCapped(p *Proc, sends []Send, bcast Broadcast) bool {
	for _, s := range sends {
		if s.To < 0 || s.To >= len(e.procs) {
			e.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", p.id, s.To))
			return false
		}
		e.sendCapped(p, Message{From: p.id, To: s.To, SentAt: e.now, Payload: s.Payload})
	}
	for _, to := range bcast.To {
		if to < 0 || to >= len(e.procs) {
			e.fail(fmt.Errorf("sim: proc %d sent to invalid pid %d", p.id, to))
			return false
		}
		e.sendCapped(p, Message{From: p.id, To: to, SentAt: e.now, Payload: bcast.Payload})
	}
	return true
}

// sendCapped transmits one committed message if the sender has budget left
// this round, deferring it otherwise. Deferred is counted here, once, at the
// overflowing commit.
func (e *Engine) sendCapped(p *Proc, m Message) {
	if e.budgetLeft(p) > 0 {
		e.transmit(p, m)
		return
	}
	p.sendq = append(p.sendq, m)
	p.deferred++
	e.metrics.Deferred++
}

// crash marks a process crashed. For stepper-backed processes this is a pure
// state flip; only the goroutine shim has anything to release. When the
// adversary can schedule restarts by round (Restarter), every Recoverable
// process is checkpointed here — the round schedule is opaque, so any crash
// might be revived later. Verdict.RestartAt checkpoints in commit instead.
func (e *Engine) crash(p *Proc) {
	p.status = StatusCrashed
	e.setInactive(p)
	p.retireRound = e.now
	p.inbox = p.inbox[:0] // drop undelivered mail, keep the buffer for reuse
	p.sendq = p.sendq[:0] // bandwidth-deferred sends die with the sender
	e.live--
	e.runq.remove(p.id)
	e.metrics.Crashes++
	if e.restarter != nil {
		p.snapshotState()
	}
	if p.shim != nil {
		p.shim.kill()
	}
}

// setInactive clears a retiring process's active flag, keeping the
// incremental active count in step.
func (e *Engine) setInactive(p *Proc) {
	if p.active {
		p.active = false
		e.activeCount--
	}
}

func (e *Engine) trace(p *Proc, a Action, crashed, halted bool) {
	if e.cfg.Tracer == nil {
		return
	}
	e.cfg.Tracer(Event{
		Round: e.now, PID: p.id, Label: p.label,
		Work: a.WorkUnit, Sent: a.SendCount(),
		Crashed: crashed, Halted: halted,
	})
}

func (e *Engine) checkInvariants() error {
	if e.cfg.MaxActive <= 0 {
		return nil
	}
	if e.activeCount > e.cfg.MaxActive {
		return fmt.Errorf("sim: invariant violated at round %d: %d active processes (max %d)",
			e.now, e.activeCount, e.cfg.MaxActive)
	}
	return nil
}

// nextRound chooses the next round to simulate, fast-forwarding over quiet
// stretches in which every live process sleeps.
func (e *Engine) nextRound() int64 {
	if e.runq.count > 0 || len(e.pendingNext) > 0 || len(e.pendingBcast) > 0 {
		// Someone acted this round (and so runs again next round), gained
		// mail, or has mail in flight.
		return e.now + 1
	}
	next := Forever
	for len(e.sleepers) > 0 {
		top := e.sleepers[0]
		p := e.procs[top.pid]
		if p.status != StatusRunning || !p.sleeping || p.wakeAt != top.at {
			e.sleepers.popTop() // stale entry
			continue
		}
		next = top.at
		break
	}
	if c := e.cfg.Adversary.NextScheduledCrash(e.now); c >= 0 && c < next {
		next = c
	}
	// Pending revivals bound the jump too; stale restart entries cost one
	// extra (cheap) visited round rather than an eager heap fixup.
	if len(e.restartq) > 0 && e.restartq[0].at < next {
		next = e.restartq[0].at
	}
	if e.restarter != nil {
		if r := e.restarter.NextScheduledRestart(e.now); r >= 0 && r < next {
			next = r
		}
	}
	if next <= e.now {
		next = e.now + 1
	}
	return next
}

func (e *Engine) finalize() {
	e.metrics.Rounds = e.now
	e.metrics.WorkDistinct = e.distinctDone
	e.metrics.PerProc = make([]ProcStats, len(e.procs))
	last := int64(0)
	for i, p := range e.procs {
		e.metrics.PerProc[i] = ProcStats{
			Status: p.status, Work: p.workDone, Sent: p.msgsSent,
			RetireRound: p.retireRound, Actions: p.actions,
			Restarts: p.restarts, Deferred: p.deferred,
		}
		if p.status != StatusRunning {
			if p.retireRound > last {
				last = p.retireRound
			}
			if p.status == StatusTerminated {
				e.metrics.Survivors++
			}
		}
	}
	if e.err == nil {
		e.metrics.Rounds = last
	}
}

// killAll retires every still-running process (used on abort paths). Stepper
// procs are a state flip each; script shims additionally release their
// goroutines.
func (e *Engine) killAll() {
	for _, p := range e.procs {
		if p.status == StatusRunning {
			p.status = StatusCrashed
			if p.shim != nil {
				p.shim.kill()
			}
		}
	}
}

// scrubSlice zeroes a recycled buffer through its full capacity — dropping
// the payload references parked in the cap region — and truncates it.
func scrubSlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	clear(s[:cap(s)])
	return s[:0]
}

// scrub runs at the end of every Run: it releases every payload reference
// the run parked in the engine's recycled buffers (next-round messages and
// records, inboxes, send scratch), so an idle engine sitting in a pool does
// not keep the previous run's data alive.
//
// Only the current run's procs need scrubbing: allProcs beyond
// cfg.NumProcs were scrubbed at the end of the last run that used them and
// have not been rearmed since (Reset touches procs[:NumProcs] only), so a
// small run on a pooled engine with a large-shape history stays O(t), not
// O(max t ever seen) — schedule-space walks recycle one engine across
// thousands of tiny runs and would otherwise pay the large shape each time.
func (e *Engine) scrub() {
	e.pendingNext = scrubSlice(e.pendingNext)
	e.spare = scrubSlice(e.spare)
	e.pendingBcast = scrubSlice(e.pendingBcast)
	e.spareBcast = scrubSlice(e.spareBcast)
	for _, p := range e.procs {
		p.inbox = scrubSlice(p.inbox)
		p.inboxSpare = scrubSlice(p.inboxSpare)
		p.sendScratch = scrubSlice(p.sendScratch)
		p.sendq = scrubSlice(p.sendq)
		p.stepper = nil
		p.shim = nil
		p.tap = nil
		p.snap = nil
		p.hasSnap = false
	}
}
