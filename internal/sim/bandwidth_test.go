package sim

// Unit tests for the congested-clique bandwidth cap (Config.Bandwidth): the
// per-round outbound budget, the deferred-send queue and its pump phase,
// crash interaction, and the capped commit path's validation. Cross-plane
// and cross-substrate agreement is pinned elsewhere (core substrate suite,
// live conformance suite); these pin the engine-level semantics directly.

import (
	"strings"
	"testing"
)

// sendBurst is a stepper that emits one action with burst sends to the same
// recipient, then idles (so deferred sends can still pump while the sender
// is alive but quiet) until haltAt.
type sendBurst struct {
	to     int
	burst  int
	haltAt int64
	sent   bool
}

func (s *sendBurst) Step(p *Proc) Yield {
	if !s.sent {
		s.sent = true
		sends := make([]Send, s.burst)
		for i := range sends {
			sends[i] = Send{To: s.to, Payload: i}
		}
		return Yield{Kind: YieldAction, Action: Action{Sends: sends}}
	}
	if p.Now() >= s.haltAt {
		return Yield{Kind: YieldHalt}
	}
	return Yield{Kind: YieldAction, Action: Action{}}
}

// collector drains its inbox every round, recording each message's arrival
// round, until deadline.
type collector struct {
	deadline int64
	arrivals *[]int64
	payloads *[]any
}

func (c *collector) Step(p *Proc) Yield {
	for _, m := range p.Drain() {
		*c.arrivals = append(*c.arrivals, p.Now())
		*c.payloads = append(*c.payloads, m.Payload)
	}
	if p.Now() >= c.deadline {
		return Yield{Kind: YieldHalt}
	}
	return Yield{Kind: YieldAction, Action: Action{}}
}

func TestBandwidthCapDefersOverBudget(t *testing.T) {
	// One action sends 3 messages under a budget of 1: one transmits at the
	// commit round, the other two pump out on the following rounds.
	var arrivals []int64
	var payloads []any
	res, err := NewStepper(Config{NumProcs: 2, NumUnits: 0, Bandwidth: 1}, func(id int) Stepper {
		if id == 0 {
			return &sendBurst{to: 1, burst: 3, haltAt: 8}
		}
		return &collector{deadline: 8, arrivals: &arrivals, payloads: &payloads}
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Messages != 3 {
		t.Fatalf("messages = %d, want 3 (every deferred send eventually transmits)", res.Messages)
	}
	if res.Deferred != 2 || res.PerProc[0].Deferred != 2 {
		t.Fatalf("deferred = %d (proc 0: %d), want 2/2", res.Deferred, res.PerProc[0].Deferred)
	}
	// Commit at round 0 transmits one message (delivered round 1); the queue
	// pumps one per round after that.
	if len(arrivals) != 3 || arrivals[0] != 1 || arrivals[1] != 2 || arrivals[2] != 3 {
		t.Fatalf("arrival rounds = %v, want [1 2 3]", arrivals)
	}
	// Transmission preserves commit order.
	for i, pl := range payloads {
		if pl != i {
			t.Fatalf("payloads = %v, want commit order [0 1 2]", payloads)
		}
	}
}

func TestBandwidthCapBroadcastFlattens(t *testing.T) {
	// A broadcast under the cap is booked as flat per-recipient messages:
	// with budget 1, recipient 1 hears at round 1 and recipient 2 at round 2,
	// and per-kind counting still sees every copy.
	var arr1, arr2 []int64
	var pay1, pay2 []any
	res, err := NewStepper(Config{NumProcs: 3, NumUnits: 0, Bandwidth: 1, DetailedMetrics: true},
		func(id int) Stepper {
			switch id {
			case 0:
				return funcStepper(func(p *Proc) Yield {
					if p.Now() == 0 {
						return Yield{Kind: YieldAction, Action: Action{
							Broadcast: p.BroadcastTo([]int{1, 2}, "tok"),
						}}
					}
					if p.Now() >= 4 {
						return Yield{Kind: YieldHalt}
					}
					return Yield{Kind: YieldAction, Action: Action{}}
				})
			case 1:
				return &collector{deadline: 6, arrivals: &arr1, payloads: &pay1}
			default:
				return &collector{deadline: 6, arrivals: &arr2, payloads: &pay2}
			}
		}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Messages != 2 || res.Deferred != 1 {
		t.Fatalf("messages/deferred = %d/%d, want 2/1", res.Messages, res.Deferred)
	}
	if res.MessagesByKind["string"] != 2 {
		t.Fatalf("by-kind = %v, want string:2", res.MessagesByKind)
	}
	if len(arr1) != 1 || arr1[0] != 1 || pay1[0] != "tok" {
		t.Fatalf("recipient 1 arrivals %v payloads %v, want [1]/[tok]", arr1, pay1)
	}
	if len(arr2) != 1 || arr2[0] != 2 || pay2[0] != "tok" {
		t.Fatalf("recipient 2 arrivals %v payloads %v, want [2]/[tok]", arr2, pay2)
	}
}

func TestBandwidthCrashDropsDeferredQueue(t *testing.T) {
	// The sender defers 2 of its 3 sends, then a scheduled crash at round 1
	// kills it: the queue dies with the sender, so only the round-0
	// transmission is ever delivered — but Deferred still records the
	// overflow (it counts deferrals, not losses).
	var arrivals []int64
	var payloads []any
	adv := scheduleAdv{at: map[int64][]int{1: {0}}}
	res, err := NewStepper(Config{NumProcs: 2, NumUnits: 0, Bandwidth: 1, Adversary: adv},
		func(id int) Stepper {
			if id == 0 {
				return &sendBurst{to: 1, burst: 3, haltAt: 8}
			}
			return &collector{deadline: 8, arrivals: &arrivals, payloads: &payloads}
		}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Messages != 1 {
		t.Fatalf("messages = %d, want 1 (deferred sends die with the sender)", res.Messages)
	}
	if res.Deferred != 2 {
		t.Fatalf("deferred = %d, want 2", res.Deferred)
	}
	if len(arrivals) != 1 || arrivals[0] != 1 {
		t.Fatalf("arrivals = %v, want [1]", arrivals)
	}
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
}

func TestBandwidthBudgetResetsPerRound(t *testing.T) {
	// A process sending exactly the budget every round never defers: the
	// per-round meter must reset between rounds.
	var arrivals []int64
	var payloads []any
	res, err := NewStepper(Config{NumProcs: 2, NumUnits: 0, Bandwidth: 2}, func(id int) Stepper {
		if id == 0 {
			round := 0
			return funcStepper(func(p *Proc) Yield {
				if round++; round > 3 {
					return Yield{Kind: YieldHalt}
				}
				return Yield{Kind: YieldAction, Action: Action{Sends: []Send{
					{To: 1, Payload: "a"}, {To: 1, Payload: "b"},
				}}}
			})
		}
		return &collector{deadline: 8, arrivals: &arrivals, payloads: &payloads}
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Messages != 6 || res.Deferred != 0 {
		t.Fatalf("messages/deferred = %d/%d, want 6/0 (budget is per round)", res.Messages, res.Deferred)
	}
	if len(arrivals) != 6 {
		t.Fatalf("arrivals = %v, want 6 deliveries", arrivals)
	}
}

func TestBandwidthCapInvalidPID(t *testing.T) {
	// The capped commit path keeps the uncapped path's validation and error
	// text, for both explicit sends and broadcast recipients.
	for name, action := range map[string]Action{
		"send":      {Sends: []Send{{To: 9, Payload: "x"}}},
		"broadcast": {Broadcast: Broadcast{To: []int{9}, Payload: "x"}},
	} {
		t.Run(name, func(t *testing.T) {
			action := action
			_, err := NewStepper(Config{NumProcs: 2, NumUnits: 0, Bandwidth: 1}, func(id int) Stepper {
				if id == 0 {
					return funcStepper(func(p *Proc) Yield {
						return Yield{Kind: YieldAction, Action: action}
					})
				}
				return funcStepper(func(p *Proc) Yield { return Yield{Kind: YieldHalt} })
			}).Run()
			if err == nil || !strings.Contains(err.Error(), "sim: proc 0 sent to invalid pid 9") {
				t.Fatalf("err = %v, want invalid-pid failure", err)
			}
		})
	}
}

func TestBandwidthOmittedSendsSpendNoBudget(t *testing.T) {
	// An omission verdict suppresses sends before the cap sees them: nothing
	// transmits, nothing defers, and the budget is untouched for the pump.
	adv := &scriptedAdversary{pid: 0, atCount: 1, verdict: Verdict{Omit: true}}
	res, err := NewStepper(Config{NumProcs: 2, NumUnits: 0, Bandwidth: 1, Adversary: adv},
		func(id int) Stepper {
			if id == 0 {
				return &sendBurst{to: 1, burst: 2, haltAt: 4}
			}
			return funcStepper(func(p *Proc) Yield {
				if p.Now() >= 4 {
					return Yield{Kind: YieldHalt}
				}
				return Yield{Kind: YieldAction, Action: Action{}}
			})
		}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Messages != 0 || res.Deferred != 0 || res.Omitted != 2 {
		t.Fatalf("messages/deferred/omitted = %d/%d/%d, want 0/0/2",
			res.Messages, res.Deferred, res.Omitted)
	}
}
