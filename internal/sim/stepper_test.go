package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// funcStepper adapts a plain function for test steppers.
type funcStepper func(p *Proc) Yield

func (f funcStepper) Step(p *Proc) Yield { return f(p) }

// scheduleAdv crashes fixed PIDs at fixed rounds (minimal in-package
// adversary; the real ones live in internal/adversary).
type scheduleAdv struct {
	NopAdversary
	at map[int64][]int
}

func (s scheduleAdv) ScheduledCrashes(r int64) []int { return s.at[r] }

func (s scheduleAdv) NextScheduledCrash(after int64) int64 {
	next := int64(-1)
	for r := range s.at {
		if r > after && (next < 0 || r < next) {
			next = r
		}
	}
	return next
}

// toy is the reference process used by the substrate tests: sleep until round
// 2·id, perform unit id+1, broadcast a token to everyone, then halt. It is
// implemented once per substrate; all engines must produce identical Results.
func toyScript(id, t int) Script {
	return func(p *Proc) {
		for p.Now() < int64(2*id) {
			p.WaitUntil(int64(2 * id))
		}
		p.StepWork(id + 1)
		to := make([]int, t)
		for i := range to {
			to[i] = i
		}
		p.StepSend(p.Broadcast(to, "tok")...)
	}
}

type toyStepper struct {
	id, t int
	state int
}

func (s *toyStepper) Step(p *Proc) Yield {
	for {
		switch s.state {
		case 0:
			if p.HasMail() {
				p.Drain()
			}
			if p.Now() < int64(2*s.id) {
				return Yield{Kind: YieldSleep, Until: int64(2 * s.id)}
			}
			s.state = 1
		case 1:
			s.state = 2
			return Yield{Kind: YieldAction, Action: Action{WorkUnit: s.id + 1}}
		case 2:
			to := make([]int, s.t)
			for i := range to {
				to[i] = i
			}
			s.state = 3
			return Yield{Kind: YieldAction, Action: Action{Sends: p.Broadcast(to, "tok")}}
		default:
			return Yield{Kind: YieldHalt}
		}
	}
}

func toyConfig(t int, adv Adversary) Config {
	return Config{NumProcs: t, NumUnits: t, Adversary: adv, DetailedMetrics: true}
}

// TestMixedSubstrateDeterminism runs the toy protocol on all-script,
// all-stepper and mixed engines and requires identical Results.
func TestMixedSubstrateDeterminism(t *testing.T) {
	const procs = 9
	mkAdv := func() Adversary {
		return scheduleAdv{at: map[int64][]int{3: {4}, 7: {procs - 1}}}
	}
	runWith := func(pick func(id int) Stepper) Result {
		t.Helper()
		res, err := NewStepper(toyConfig(procs, mkAdv()), pick).Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	allScript := runWith(func(id int) Stepper { return ScriptStepper(toyScript(id, procs)) })
	allStepper := runWith(func(id int) Stepper { return &toyStepper{id: id, t: procs} })
	mixed := runWith(func(id int) Stepper {
		if id%2 == 0 {
			return &toyStepper{id: id, t: procs}
		}
		return ScriptStepper(toyScript(id, procs))
	})
	if !reflect.DeepEqual(allScript, allStepper) {
		t.Fatalf("script vs stepper:\n%+v\n%+v", allScript, allStepper)
	}
	if !reflect.DeepEqual(allScript, mixed) {
		t.Fatalf("script vs mixed:\n%+v\n%+v", allScript, mixed)
	}
	if allScript.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", allScript.Crashes)
	}
}

// TestStepperPanicSurfacesAsError mirrors the script-panic test on the
// direct-call substrate: a panic inside Step must fail the run, not crash
// the engine's goroutine or hang.
func TestStepperPanicSurfacesAsError(t *testing.T) {
	steps := 0
	_, err := NewStepper(Config{NumProcs: 2, NumUnits: 2}, func(id int) Stepper {
		if id == 1 {
			return funcStepper(func(p *Proc) Yield {
				steps++
				if steps == 3 {
					panic("boom at step 3")
				}
				return Yield{Kind: YieldAction, Action: Action{WorkUnit: 1}}
			})
		}
		return funcStepper(func(p *Proc) Yield {
			return Yield{Kind: YieldAction, Action: Action{WorkUnit: 2}}
		})
	}).Run()
	if err == nil || !strings.Contains(err.Error(), "proc 1 panicked") ||
		!strings.Contains(err.Error(), "boom at step 3") {
		t.Fatalf("err = %v, want proc 1 panic", err)
	}
}

// TestStepperCrashMidSleep schedules a crash for a stepper that is asleep;
// the crash is a state flip (no goroutine to kill) and the run completes.
func TestStepperCrashMidSleep(t *testing.T) {
	adv := scheduleAdv{at: map[int64][]int{5: {1}}}
	res, err := NewStepper(Config{NumProcs: 2, NumUnits: 1, Adversary: adv}, func(id int) Stepper {
		if id == 1 {
			return funcStepper(func(p *Proc) Yield {
				return Yield{Kind: YieldSleep, Until: 100} // never wakes: crashed at 5
			})
		}
		done := false
		return funcStepper(func(p *Proc) Yield {
			if done {
				return Yield{Kind: YieldHalt}
			}
			done = true
			return Yield{Kind: YieldAction, Action: Action{WorkUnit: 1}}
		})
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashes != 1 || res.PerProc[1].Status != StatusCrashed {
		t.Fatalf("sleeping stepper not crashed: %+v", res)
	}
	if res.PerProc[1].RetireRound != 5 {
		t.Fatalf("crash round = %d, want 5", res.PerProc[1].RetireRound)
	}
	if res.Survivors != 1 || !res.Complete() {
		t.Fatalf("survivor result wrong: %+v", res)
	}
}

// TestStepperKillAllAfterRoundLimit aborts a run of immortal steppers via
// MaxRound; killAll must retire them as state flips and the error must be
// ErrRoundLimit.
func TestStepperKillAllAfterRoundLimit(t *testing.T) {
	res, err := NewStepper(Config{NumProcs: 4, NumUnits: 0, MaxRound: 10}, func(id int) Stepper {
		return funcStepper(func(p *Proc) Yield {
			return Yield{Kind: YieldAction, Action: Action{WorkUnit: 1}}
		})
	}).Run()
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	// The abort Result snapshots state at the limit (before the deferred
	// killAll retires the procs), so the processes still read as running —
	// the point is that Run returned at all, with every stepper retired by
	// an O(1) state flip.
	for pid, ps := range res.PerProc {
		if ps.Status != StatusRunning {
			t.Fatalf("proc %d status = %v in abort snapshot", pid, ps.Status)
		}
	}
}

// TestStepperKillAllMixed aborts a mixed engine: the shim-backed script
// goroutines must be released (no leak/hang) alongside the stepper flips.
func TestStepperKillAllMixed(t *testing.T) {
	_, err := NewStepper(Config{NumProcs: 4, NumUnits: 0, MaxRound: 8}, func(id int) Stepper {
		if id%2 == 0 {
			return funcStepper(func(p *Proc) Yield {
				return Yield{Kind: YieldAction, Action: Action{WorkUnit: 1}}
			})
		}
		return ScriptStepper(func(p *Proc) {
			for {
				p.StepWork(1)
			}
		})
	}).Run()
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

// TestStepperBlockingCallPanics: blocking Proc methods are script-side only
// and must fail loudly (not deadlock) when called from a stepper.
func TestStepperBlockingCallPanics(t *testing.T) {
	_, err := NewStepper(Config{NumProcs: 1, NumUnits: 1}, func(id int) Stepper {
		return funcStepper(func(p *Proc) Yield {
			p.StepWork(1) // illegal: would block the engine on itself
			return Yield{}
		})
	}).Run()
	if err == nil || !strings.Contains(err.Error(), "return a Yield") {
		t.Fatalf("err = %v, want stepper-misuse panic", err)
	}
}

// TestInboxBufferRecycling exercises the double-buffered inbox: payloads
// drained in round r must stay intact while new deliveries land, across
// enough rounds to cycle both buffers repeatedly.
func TestInboxBufferRecycling(t *testing.T) {
	const rounds = 8
	var got []string
	res, err := NewStepper(Config{NumProcs: 2, NumUnits: 0}, func(id int) Stepper {
		sent := 0
		if id == 0 { // sender: one tagged message per round
			return funcStepper(func(p *Proc) Yield {
				if sent == rounds {
					return Yield{Kind: YieldHalt}
				}
				sent++
				pay := strings.Repeat("x", sent) // distinguishable payloads
				return Yield{Kind: YieldAction, Action: Action{Sends: []Send{{To: 1, Payload: pay}}}}
			})
		}
		return funcStepper(func(p *Proc) Yield {
			for _, m := range p.Drain() {
				got = append(got, m.Payload.(string))
			}
			if len(got) == rounds {
				return Yield{Kind: YieldHalt}
			}
			return Yield{Kind: YieldSleep, Until: Forever - 1}
		})
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != rounds {
		t.Fatalf("received %d messages, want %d", len(got), rounds)
	}
	for i, s := range got {
		if len(s) != i+1 {
			t.Fatalf("message %d corrupted: %q", i, s)
		}
	}
	if res.Survivors != 2 {
		t.Fatalf("survivors = %d", res.Survivors)
	}
}
