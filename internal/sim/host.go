package sim

// This file is the substrate boundary between a process and whatever runs
// it. A Proc historically belonged to the Engine; the Host interface
// abstracts the four things a process body actually needs from its runtime —
// the shape of the run, the current round, and active-flag bookkeeping — so
// that other execution planes (internal/live's goroutine-per-process plane)
// can drive the very same Stepper state machines through the very same Proc
// handle. The Engine is one Host; a live coordinator is another.

// Host is the execution plane a Proc belongs to. Engine implements it for
// the synchronous single-threaded simulator; internal/live implements it for
// the concurrent plane. AddActive must be safe for however the host
// schedules its processes (the Engine alternates strictly, so a plain field
// suffices there; a concurrent host needs an atomic).
type Host interface {
	// NumProcs returns t, the number of processes in the run.
	NumProcs() int
	// NumUnits returns n, the number of work units.
	NumUnits() int
	// Round returns the current round number.
	Round() int64
	// AddActive adjusts the count of processes flagged active by SetActive;
	// the host checks it against the at-most-MaxActive invariant.
	AddActive(delta int)
}

// NumProcs implements Host.
func (e *Engine) NumProcs() int { return e.cfg.NumProcs }

// NumUnits implements Host.
func (e *Engine) NumUnits() int { return e.cfg.NumUnits }

// Round implements Host.
func (e *Engine) Round() int64 { return e.now }

// AddActive implements Host. Strict alternation (scripts block the engine,
// steppers run on its stack) makes the unsynchronised count race-free.
func (e *Engine) AddActive(delta int) { e.activeCount += delta }

// NewHostedProc builds a Proc owned by an external Host rather than by an
// Engine: the handle that lets another execution plane run a Stepper (or a
// ScriptStepper-wrapped Script) unchanged. The plane owns scheduling,
// delivery and metrics itself; the Proc carries only the process-local state
// (inbox, scratch buffers, active flag, label). Between TryStep calls the
// plane may Deliver messages and read Label; everything else on the Proc
// belongs to the process body.
func NewHostedProc(h Host, id int, st Stepper) *Proc {
	p := &Proc{}
	p.rearm(h, id, st)
	return p
}

// TryStep runs one Step of the process body on the caller's stack (resuming
// the script goroutine for shim-backed procs), converting a panic in the
// body into a returned value exactly as the Engine does, so external hosts
// share the simulator's failure path.
func (p *Proc) TryStep() (y Yield, panicVal any, panicked bool) {
	return stepProc(p)
}

// Deliver appends one message to the process's inbox. External hosts call it
// between steps — never while the process body runs — mirroring the
// engine's start-of-round delivery; the next Drain returns delivered
// messages in append order.
func (p *Proc) Deliver(m Message) { p.inbox = append(p.inbox, m) }

// Label returns the process's current state label (see SetLabel). External
// hosts read it between steps when building trace events.
func (p *Proc) Label() string { return p.label }

// Active reports whether the process currently flags itself active (see
// SetActive). External hosts read it between steps — a remote worker host
// relays it to its coordinator with every yield frame so the at-most-active
// invariant can be checked across process boundaries.
func (p *Proc) Active() bool { return p.active }

// SnapshotState checkpoints the process body for crash recovery, reporting
// whether the stepper is Recoverable. External hosts call it at crash time
// when a restart may follow, exactly as the engine's crash path does; an
// existing (unconsumed) checkpoint is kept rather than overwritten.
func (p *Proc) SnapshotState() bool { return p.snapshotState() }

// RestoreState rewinds the process body to the checkpoint taken by
// SnapshotState, consuming it; false means no checkpoint was held. External
// hosts call it when reviving a crashed process.
func (p *Proc) RestoreState() bool { return p.restoreState() }

// DropMail discards the undrained inbox, keeping the buffer for reuse.
// External hosts call it when crashing a process, as the engine does, so a
// later restart cannot observe pre-crash mail.
func (p *Proc) DropMail() { p.inbox = p.inbox[:0] }

// Release frees the script goroutine behind a shim-backed Proc; it is a
// no-op for native steppers. External hosts must call it when retiring a
// process (crash, halt or plane shutdown), as the Engine's crash/killAll
// paths do internally.
func (p *Proc) Release() {
	if p.shim != nil {
		p.shim.kill()
	}
}

// Rehost readies a recycled Proc for a new run under the given host — the
// external-plane counterpart of the engine's internal rearm, keeping the
// inbox and scratch buffer capacities the process accumulated. Pooled hosts
// call it instead of NewHostedProc when reusing Procs across runs; a Proc
// must be Scrubbed (run over, worker gone) before it is rehosted.
func (p *Proc) Rehost(h Host, id int, st Stepper) { p.rearm(h, id, st) }

// Scrub releases every reference a finished run parked in the process's
// recycled buffers (inbox, send scratch, stepper, shim, checkpoint),
// mirroring the engine's end-of-run scrub, so a Proc idling in a pool does
// not keep the run's payloads alive. The buffers themselves keep their
// capacity for the next Rehost.
func (p *Proc) Scrub() {
	p.inbox = scrubSlice(p.inbox)
	p.inboxSpare = scrubSlice(p.inboxSpare)
	p.sendScratch = scrubSlice(p.sendScratch)
	p.sendq = scrubSlice(p.sendq)
	p.stepper = nil
	p.shim = nil
	p.tap = nil
	p.snap = nil
	p.hasSnap = false
}
