package sim

import (
	"fmt"
	"runtime"
)

// Script is the body of a simulated process. It runs in its own goroutine and
// interacts with the engine exclusively through the methods of its Proc. A
// script that returns is treated as if it called Halt.
type Script func(p *Proc)

type yieldKind int

const (
	yieldAction yieldKind = iota + 1
	yieldSleep
	yieldHalt
	yieldPanic
)

type yieldMsg struct {
	kind     yieldKind
	action   Action
	until    int64
	panicVal any
}

type resumeMsg struct {
	kill bool
}

// Proc is the engine-side handle and process-side context of one process.
// All exported methods except those documented otherwise must be called only
// from the process's own script goroutine or Step method.
type Proc struct {
	id      int
	host    Host // the execution plane that owns this process (see host.go)
	stepper Stepper
	shim    *goShim // non-nil iff stepper is the goroutine-backed Script shim

	// Engine-owned state; the process body only touches these while it
	// holds control (strict alternation makes this race-free).
	status   Status
	sleeping bool
	wakeAt   int64
	active   bool
	label    string
	tap      func(Message)

	// inbox holds delivered-but-undrained messages; inboxSpare is the buffer
	// returned by the previous drain, recycled as the next append target so
	// steady-state delivery allocates nothing.
	inbox      []Message
	inboxSpare []Message
	// sendScratch backs Broadcast so per-checkpoint broadcasts reuse one
	// buffer per process; pidScratch likewise backs BroadcastTo's filtered
	// recipient lists.
	sendScratch []Send
	pidScratch  []int

	// Bandwidth cap (Config.Bandwidth): sendq holds committed-but-
	// untransmitted messages awaiting budget, in commit order; sentInRound
	// meters this round's transmissions, lazily restamped per round via
	// sentRound; deferred totals the sends that ever overflowed the budget.
	sendq       []Message
	sentRound   int64
	sentInRound int
	deferred    int64

	// Rate degradation (Verdict.Slow): slowFactor is the persistent factor
	// (0/1 = full speed); stalled marks the process as serving its k-1
	// post-action stall rounds, during which incoming mail must not wake it.
	slowFactor int
	stalled    bool
	// Crash recovery: snap holds the checkpoint taken at crash time for a
	// possible restart (Verdict.RestartAt / Restarter). Only Recoverable
	// steppers can be checkpointed.
	snap    any
	hasSnap bool

	retireRound int64
	workDone    int64
	msgsSent    int64
	actions     int64
	restarts    int64
}

// snapshotState checkpoints the process body for a possible restart,
// reporting whether the stepper supports it (shim-backed scripts do not).
// An existing checkpoint is left in place: the first crash wins until a
// restart consumes it.
func (p *Proc) snapshotState() bool {
	if p.hasSnap {
		return true
	}
	r, ok := p.stepper.(Recoverable)
	if !ok {
		return false
	}
	p.snap = r.Snapshot()
	p.hasSnap = true
	return true
}

// restoreState rewinds the process body to its crash checkpoint, consuming
// it — a later crash of the restarted process takes a fresh checkpoint.
func (p *Proc) restoreState() bool {
	if !p.hasSnap {
		return false
	}
	p.stepper.(Recoverable).Restore(p.snap)
	p.snap = nil
	p.hasSnap = false
	return true
}

// rearm readies a (possibly recycled) Proc for a new run under the given
// host, keeping the inbox and scratch buffer capacities it accumulated.
func (p *Proc) rearm(h Host, id int, st Stepper) {
	p.id = id
	p.host = h
	p.stepper = st
	p.shim = nil
	if sp, ok := st.(shimHolder); ok {
		p.shim = sp.scriptShim()
	}
	p.status = StatusRunning
	p.sleeping = false
	p.wakeAt = 0
	p.active = false
	p.label = ""
	p.tap = nil
	p.inbox = p.inbox[:0]
	p.inboxSpare = p.inboxSpare[:0]
	p.sendq = p.sendq[:0]
	p.sentRound = -1
	p.sentInRound = 0
	p.deferred = 0
	p.slowFactor = 0
	p.stalled = false
	p.snap = nil
	p.hasSnap = false
	p.retireRound = 0
	p.workDone = 0
	p.msgsSent = 0
	p.actions = 0
	p.restarts = 0
}

// ID returns the process identifier (0-based).
func (p *Proc) ID() int { return p.id }

// N returns the total number of processes in the system.
func (p *Proc) N() int { return p.host.NumProcs() }

// Units returns the total number of work units.
func (p *Proc) Units() int { return p.host.NumUnits() }

// Now returns the current round number.
func (p *Proc) Now() int64 { return p.host.Round() }

// SetActive flags this process as "the active process" for the at-most-one-
// active invariant check. Protocols in which a single process works at a time
// call SetActive(true) on takeover and the engine verifies uniqueness.
// The engine's incremental active count is updated here; strict alternation
// (the engine is blocked while the script runs, and steppers run on the
// engine's stack) makes that race-free.
func (p *Proc) SetActive(v bool) {
	if p.active == v {
		return
	}
	p.active = v
	if v {
		p.host.AddActive(1)
	} else {
		p.host.AddActive(-1)
	}
}

// SetLabel attaches a short human-readable state label, used in traces.
func (p *Proc) SetLabel(l string) { p.label = l }

// SetTap registers an observer invoked for every message this process
// drains, before the draining code sees it. Layered protocols use it to
// watch for messages that the inner protocol would otherwise discard (e.g.
// the agreement reduction adopting values carried alongside checkpoint
// traffic). Must be called from the process's own body.
func (p *Proc) SetTap(f func(Message)) { p.tap = f }

// StepWork performs one unit of work and ends the round.
func (p *Proc) StepWork(unit int) {
	if unit <= 0 {
		panic(fmt.Sprintf("sim: proc %d: StepWork with non-positive unit %d", p.id, unit))
	}
	p.yield(yieldMsg{kind: yieldAction, action: Action{WorkUnit: unit}})
}

// StepSend transmits the given messages and ends the round.
func (p *Proc) StepSend(sends ...Send) {
	p.yield(yieldMsg{kind: yieldAction, action: Action{Sends: sends}})
}

// StepWorkSend performs one unit of work, transmits messages, and ends the
// round. (The model allows one unit of work plus one round of communication
// per time unit.)
func (p *Proc) StepWorkSend(unit int, sends ...Send) {
	if unit <= 0 {
		panic(fmt.Sprintf("sim: proc %d: StepWorkSend with non-positive unit %d", p.id, unit))
	}
	p.yield(yieldMsg{kind: yieldAction, action: Action{WorkUnit: unit, Sends: sends}})
}

// StepIdle consumes one round doing nothing. Protocols use it to pad phases
// to a common length.
func (p *Proc) StepIdle() {
	p.yield(yieldMsg{kind: yieldAction})
}

// Broadcast builds one Send per recipient, skipping the sender itself. The
// returned slice is backed by a per-process scratch buffer: it is valid until
// this process's next Broadcast call, which is always after the engine has
// consumed the previous batch (sends are copied into messages when the
// action commits).
//
// Prefer BroadcastTo / StepBroadcast: a Broadcast-valued action costs the
// engine one shared record instead of one boxed Message per recipient.
func (p *Proc) Broadcast(to []int, payload any) []Send {
	sends := p.sendScratch[:0]
	for _, dst := range to {
		if dst == p.id {
			continue
		}
		sends = append(sends, Send{To: dst, Payload: payload})
	}
	p.sendScratch = sends
	return sends
}

// BroadcastTo builds the broadcast half of an Action: payload addressed to
// every PID in to except the caller itself. The recipient list is backed by
// a per-process scratch buffer, which is safe to hand to the engine: the
// committed record is delivered before this process can step (and so reuse
// the scratch) again. Valid until the process's next BroadcastTo call.
func (p *Proc) BroadcastTo(to []int, payload any) Broadcast {
	rcpts := p.pidScratch[:0]
	for _, dst := range to {
		if dst == p.id {
			continue
		}
		rcpts = append(rcpts, dst)
	}
	p.pidScratch = rcpts
	if len(rcpts) == 0 {
		return Broadcast{}
	}
	return Broadcast{To: rcpts, Payload: payload}
}

// StepBroadcast transmits payload to every PID in to except the caller and
// ends the round. An empty recipient list still consumes the round (like an
// empty StepSend), keeping lock-step protocols aligned.
func (p *Proc) StepBroadcast(to []int, payload any) {
	p.yield(yieldMsg{kind: yieldAction, action: Action{Broadcast: p.BroadcastTo(to, payload)}})
}

// WaitUntil blocks until at least one message has been delivered or the
// current round reaches deadline, whichever happens first, and returns all
// delivered messages (possibly none, on timeout). It consumes no rounds by
// itself: a sleeping process is free. Messages are returned in deterministic
// (delivery round, sender) order. Script-side only; steppers return a
// YieldSleep and call Drain on their next Step instead.
func (p *Proc) WaitUntil(deadline int64) []Message {
	if len(p.inbox) > 0 || p.host.Round() >= deadline {
		return p.drain()
	}
	p.yield(yieldMsg{kind: yieldSleep, until: deadline})
	return p.drain()
}

// Halt terminates the process voluntarily. It never returns. Script-side
// only; steppers return a YieldHalt instead.
func (p *Proc) Halt() {
	p.mustShim("Halt").toEngine <- yieldMsg{kind: yieldHalt}
	runtime.Goexit()
}

// HasMail reports whether delivered messages are waiting to be drained.
func (p *Proc) HasMail() bool { return len(p.inbox) > 0 }

// Drain returns and clears the messages delivered so far, in deterministic
// (delivery round, sender) order. It is the stepper-side counterpart of the
// receive half of WaitUntil. The returned slice is backed by a recycled
// buffer valid until the drain after next.
func (p *Proc) Drain() []Message { return p.drain() }

func (p *Proc) drain() []Message {
	msgs := p.inbox
	p.inbox = p.inboxSpare[:0]
	p.inboxSpare = msgs
	if p.tap != nil {
		for i := range msgs {
			p.tap(msgs[i])
		}
	}
	return msgs
}

func (p *Proc) yield(y yieldMsg) {
	sh := p.mustShim("Step*/WaitUntil")
	sh.toEngine <- y
	sig := <-sh.resume
	if sig.kill {
		runtime.Goexit()
	}
}

func (p *Proc) mustShim(method string) *goShim {
	if p.shim == nil {
		panic(fmt.Sprintf("sim: proc %d: %s called from a Stepper; return a Yield instead", p.id, method))
	}
	return p.shim
}
