package sim

import "math/bits"

// runSet is a dense bitset of process IDs that are runnable in the current
// round. The engine maintains it incrementally — a bit is set exactly when
// the process is live and either not sleeping, holding undrained mail, or
// past its wake time — so the per-round scheduling scan touches words, not
// processes.
type runSet struct {
	words []uint64
	count int
}

func newRunSet(n int) runSet {
	return runSet{words: make([]uint64, (n+63)/64)}
}

// reset empties the set and resizes it for n processes, reusing the word
// buffer when it is large enough.
func (s *runSet) reset(n int) {
	need := (n + 63) / 64
	if need <= cap(s.words) {
		s.words = s.words[:need]
		clear(s.words)
	} else {
		s.words = make([]uint64, need)
	}
	s.count = 0
}

func (s *runSet) add(i int) {
	w, b := i>>6, uint64(1)<<(i&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.count++
	}
}

func (s *runSet) remove(i int) {
	w, b := i>>6, uint64(1)<<(i&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.count--
	}
}

// forEachAscending visits the set bits in increasing ID order, snapshotting
// one word at a time. Callers may clear bits (including the visited one)
// during the visit; newly set bits in already-passed words are not revisited
// this round, which matches the engine's one-resume-per-round semantics.
func (s *runSet) forEachAscending(visit func(i int) bool) {
	for w := range s.words {
		word := s.words[w]
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if !visit(i) {
				return
			}
		}
	}
}

// wakeEntry is one scheduled wake-up in the sleeper heap. Entries are never
// removed eagerly: when a sleeper is woken early (by a message) or dies, its
// entry goes stale and is discarded on pop by re-checking the process state.
type wakeEntry struct {
	at  int64
	pid int
}

// wakeHeap is a min-heap of wake times, ordered by (round, pid) so that
// scheduling decisions stay deterministic. It is hand-rolled rather than
// built on container/heap to avoid boxing an entry per push on the hot path.
type wakeHeap []wakeEntry

func (h wakeHeap) less(i, j int) bool {
	return h[i].at < h[j].at || (h[i].at == h[j].at && h[i].pid < h[j].pid)
}

func (h *wakeHeap) push(e wakeEntry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *wakeHeap) popTop() wakeEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}
