package sim

// Cheap state fingerprinting for execution results. Schedule-space
// exploration (internal/explore) compares replays at decision horizons —
// two vectors whose executions coincide up to their last divergent choice
// share one replay — and needs an O(t) commutative-free digest to assert
// that sharing held, without hauling full Result values through checkpoint
// files.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Fingerprint digests the result — every aggregate plus the per-process
// stats, in PID order — into one FNV-1a word. Two results with equal
// fingerprints are equal for certification purposes; MessagesByKind is a
// DetailedMetrics-only breakdown of Messages and is excluded, as is the
// Events counter (a scheduler-effort measure, not an execution observable).
func (r Result) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range []int64{
		r.WorkTotal, int64(r.WorkDistinct), r.Messages, r.Rounds,
		r.CompletedRound, int64(r.Survivors), int64(r.Crashes),
		r.Restarts, r.Dropped, r.Omitted, r.Deferred, int64(len(r.PerProc)),
	} {
		h = fnvMix(h, uint64(v))
	}
	for _, p := range r.PerProc {
		h = fnvMix(h, uint64(int64(p.Status)))
		h = fnvMix(h, uint64(p.Work))
		h = fnvMix(h, uint64(p.Sent))
		h = fnvMix(h, uint64(p.RetireRound))
		h = fnvMix(h, uint64(p.Actions))
		h = fnvMix(h, uint64(p.Restarts))
		h = fnvMix(h, uint64(p.Deferred))
	}
	return h
}
